/**
 * @file
 * Quickstart: the paper's Figure 3 program, in the C++ Alchemy API.
 *
 * Declares an anomaly-detection model (F1 objective, DNN family), targets
 * a Taurus switch constrained to 1 GPkt/s / 500 ns on a 16x16 grid,
 * schedules the single model, and lets Homunculus search, train, check
 * feasibility, and emit the Spatial program.
 *
 * Run: ./quickstart
 */
#include <iostream>
#include <sstream>

#include "core/generate.hpp"
#include "data/anomaly_generator.hpp"

int
main()
{
    using namespace homunculus;

    // --- @DataLoader: load and preprocess the training data. -----------
    data::DataLoaderFn loader = [] {
        data::AnomalyConfig config;
        config.numSamples = 2000;
        config.seed = 42;
        return data::generateAnomalySplit(config);
    };

    // --- Model: objective metric, algorithm pool, loader. --------------
    core::ModelSpec model;
    model.name = "anomaly_detection";
    model.optimizationMetric = core::Metric::kF1;
    model.algorithms = {core::Algorithm::kDnn};
    model.dataLoader = loader;

    // --- Platforms.Taurus() with performance + resource constraints. ---
    core::PlatformHandle platform = core::Platforms::taurus();
    platform.constrain({/*minThroughputGpps=*/1.0, /*maxLatencyNs=*/500.0},
                       {/*gridRows=*/16, /*gridCols=*/16, /*matTables=*/{}});

    // --- Schedule the model and generate code. --------------------------
    platform.schedule(model);

    core::GenerateOptions options;
    options.bo.numInitSamples = 4;
    options.bo.numIterations = 8;

    core::GenerationResult result = core::generate(platform, options);
    const core::GeneratedModel *generated = result.find("anomaly_detection");

    std::cout << "=== Homunculus quickstart ===\n"
              << "algorithm : " << core::algorithmName(generated->algorithm)
              << "\n"
              << "F1 score  : " << generated->objective << "\n"
              << "params    : " << generated->model.paramCount() << "\n"
              << "resources : " << generated->report.summary() << "\n\n"
              << "--- generated Spatial program (first 25 lines) ---\n";
    std::istringstream code(generated->code);
    std::string line;
    for (int i = 0; i < 25 && std::getline(code, line); ++i)
        std::cout << line << "\n";
    return 0;
}
