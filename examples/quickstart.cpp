/**
 * @file
 * Quickstart: the paper's Figure 3 program, in the C++ Alchemy API.
 *
 * Declares an anomaly-detection model (F1 objective, DNN family), targets
 * a Taurus switch constrained to 1 GPkt/s / 500 ns on a 16x16 grid,
 * schedules the single model, and compiles it with the staged Compiler
 * session API — observing each stage (loadData -> selectFamilies ->
 * searchFamilies -> pickWinner -> emit) as it completes.
 *
 * Run: ./quickstart
 */
#include <iostream>
#include <sstream>

#include "core/compiler.hpp"
#include "data/anomaly_generator.hpp"

int
main()
{
    using namespace homunculus;

    // --- @DataLoader: load and preprocess the training data. -----------
    data::DataLoaderFn loader = [] {
        data::AnomalyConfig config;
        config.numSamples = 2000;
        config.seed = 42;
        return data::generateAnomalySplit(config);
    };

    // --- Model: objective metric, algorithm pool, loader. --------------
    core::ModelSpec model;
    model.name = "anomaly_detection";
    model.optimizationMetric = core::Metric::kF1;
    model.algorithms = {core::Algorithm::kDnn};
    model.dataLoader = loader;

    // --- Platforms.Taurus() with performance + resource constraints. ---
    core::PlatformHandle platform = core::Platforms::taurus();
    platform.constrain({/*minThroughputGpps=*/1.0, /*maxLatencyNs=*/500.0},
                       {/*gridRows=*/16, /*gridCols=*/16});

    // --- Schedule the model and compile. --------------------------------
    platform.schedule(model);

    core::CompileOptions options;
    options.bo.numInitSamples = 4;
    options.bo.numIterations = 8;
    options.jobs = 2;  // family searches run on a small thread pool.
    options.observer = [](const core::ProgressEvent &event) {
        // Stage transitions only; per-evaluation events stay quiet.
        if (event.stage != core::Stage::kSearchFamilies)
            std::cout << "  [" << core::stageName(event.stage) << "] "
                      << event.specName << " " << event.message << "\n";
        else if (event.evalsDone == event.evalsTotal)
            std::cout << "  [searchFamilies] " << event.specName << "/"
                      << event.family << " done (" << event.evalsTotal
                      << " evaluations)\n";
    };

    std::cout << "=== Homunculus quickstart ===\n";
    core::Compiler compiler(options);
    core::Result<core::CompileReport> result = compiler.compile(platform);
    if (!result.isOk()) {
        std::cerr << "compile failed: " << result.status().toString()
                  << "\n";
        return 1;
    }
    const core::GeneratedModel *generated =
        result->find("anomaly_detection");

    std::cout << "algorithm : " << core::algorithmName(generated->algorithm)
              << "\n"
              << "F1 score  : " << generated->objective << "\n"
              << "params    : " << generated->model.paramCount() << "\n"
              << "resources : " << generated->report.summary() << "\n\n"
              << "--- generated Spatial program (first 25 lines) ---\n";
    std::istringstream code(generated->code);
    std::string line;
    for (int i = 0; i < 25 && std::getline(code, line); ++i)
        std::cout << line << "\n";
    return 0;
}
