/**
 * @file
 * Bytes-to-verdict: the full data-plane path from raw packets.
 *
 * Everything the switch pipeline does, end to end in simulation:
 * raw IoT packets are serialized to wire format, re-parsed (Figure 5's
 * "Packet Parsing" stage), run through the feature extractor ("Feature
 * Extraction"), and the resulting dataset drives a Homunculus search
 * whose winner then classifies fresh packets straight from bytes.
 *
 * Run: ./raw_packet_pipeline
 */
#include <iostream>

#include "core/compiler.hpp"
#include "ml/metrics.hpp"
#include "ml/preprocess.hpp"
#include "net/feature_extract.hpp"

int
main()
{
    using namespace homunculus;

    std::cout << "=== Homunculus raw-packet pipeline ===\n\n";

    // ---- Generate raw packets and build the dataset from bytes. ---------
    net::IotPacketConfig packet_config;
    packet_config.numPackets = 4000;
    auto packets = net::generateIotPackets(packet_config);

    net::FeatureExtractor extractor;
    auto dataset = net::datasetFromPackets(packets, extractor);
    std::cout << "parsed " << dataset.numSamples() << "/" << packets.size()
              << " packets into " << dataset.numFeatures()
              << " features x " << dataset.numClasses << " classes\n";

    auto split = ml::stratifiedSplit(dataset, 0.3, 7);
    ml::StandardScaler scaler;
    split.train.x = scaler.fitTransform(split.train.x);
    split.test.x = scaler.transform(split.test.x);
    // Record the fit so the artifact carries true scaler provenance.
    split.scalerMeans = scaler.means();
    split.scalerStds = scaler.stddevs();

    // ---- Search a model for the Taurus target. ---------------------------
    core::ModelSpec spec;
    spec.name = "raw_packet_tc";
    spec.optimizationMetric = core::Metric::kF1;
    spec.algorithms = {core::Algorithm::kDnn};
    spec.dataLoader = [split] { return split; };

    auto platform = core::Platforms::taurus();
    platform.constrain({1.0, 500.0}, {16, 16});
    core::CompileOptions options;
    options.bo.numInitSamples = 4;
    options.bo.numIterations = 8;
    auto generated =
        core::searchSpec(spec, platform, options, split).value();

    std::cout << "winner: " << generated.model.paramCount() << " params, "
              << generated.report.summary() << "\n"
              << "macro F1 on held-out packets: " << generated.objective
              << "\n\n";

    // ---- Classify fresh packets straight from their wire bytes. ---------
    net::IotPacketConfig fresh_config;
    fresh_config.numPackets = 10;
    fresh_config.seed = 4242;
    auto fresh = net::generateIotPackets(fresh_config);

    std::cout << "per-packet verdicts from raw bytes:\n";
    std::size_t correct = 0;
    for (const auto &labeled : fresh) {
        auto bytes = net::serialize(labeled.packet);
        auto features = extractor.extractFromWire(bytes);
        if (!features)
            continue;
        math::Matrix row(1, features->size());
        for (std::size_t c = 0; c < features->size(); ++c)
            row(0, c) = (*features)[c];
        row = scaler.transform(row);
        int verdict =
            platform.platform().evaluate(generated.model, row).front();
        correct += (verdict == labeled.deviceClass) ? 1 : 0;
        std::cout << "  " << bytes.size() << "B packet -> class " << verdict
                  << " (truth " << labeled.deviceClass << ")\n";
    }
    std::cout << correct << "/" << fresh.size() << " correct\n";
    return 0;
}
