/**
 * @file
 * Anomaly detection end-to-end: the paper's running example (§3) with
 * every compiler stage surfaced.
 *
 * Walks through what generate() does internally — candidate selection,
 * design-space creation, the BO search trace, feasibility reports from
 * the Taurus backend, and finally both the winning Spatial program and
 * the per-packet simulation of the deployed model — so users can see
 * each Figure 2 stage rather than just the final binary.
 *
 * Run: ./anomaly_detection
 */
#include <iostream>

#include "backends/mapreduce_sim.hpp"
#include "core/compiler.hpp"
#include "core/design_space.hpp"
#include "data/anomaly_generator.hpp"
#include "ml/metrics.hpp"

int
main()
{
    using namespace homunculus;

    std::cout << "=== Homunculus anomaly-detection walkthrough ===\n\n";

    // ---- Alchemy program -------------------------------------------------
    core::ModelSpec spec;
    spec.name = "anomaly_detection";
    spec.optimizationMetric = core::Metric::kF1;
    spec.dataLoader = [] {
        data::AnomalyConfig config;
        config.numSamples = 3000;
        config.noiseLevel = 1.2;
        config.stealthFraction = 0.1;
        return data::generateAnomalySplit(config);
    };

    auto platform = core::Platforms::taurus();
    platform.constrain({1.0, 500.0}, {16, 16});

    // ---- Stage 1: candidate selection (paper §3.2.1) -------------------
    ml::DataSplit split = spec.dataLoader();
    auto candidates = core::selectCandidates(
        spec, platform.platform(), split.train.numFeatures(),
        split.train.numClasses);
    std::cout << "candidate algorithm families on "
              << platform.platform().name() << ":";
    for (auto algorithm : candidates)
        std::cout << " " << core::algorithmName(algorithm);
    std::cout << "\n";

    // ---- Stage 2: design-space creation (paper §3.2.2) ------------------
    auto space = core::buildDesignSpace(core::Algorithm::kDnn, spec,
                                        platform.platform());
    std::cout << "DNN design space: " << space.size()
              << " variables, ~" << space.cardinalityEstimate()
              << " discrete configurations\n\n";

    // ---- Stage 3: BO-guided search (paper §3.2.3-4) ---------------------
    spec.algorithms = {core::Algorithm::kDnn};
    core::CompileOptions options;
    options.bo.numInitSamples = 4;
    options.bo.numIterations = 10;
    auto outcome = core::searchSpec(spec, platform, options, split);
    if (!outcome.isOk()) {
        std::cerr << "search failed: " << outcome.status().toString()
                  << "\n";
        return 1;
    }
    const core::GeneratedModel &generated = outcome.value();

    std::cout << "search trace (F1 / feasible / CUs):\n";
    for (const auto &record : generated.searchHistory.history) {
        std::cout << "  " << (record.fromWarmup ? "[warm]" : "[bo]  ")
                  << " f1=" << record.result.objective
                  << " feasible=" << (record.result.feasible ? "y" : "n")
                  << " cus=" << record.result.metrics.at("cus") << "\n";
    }

    std::cout << "\nwinner: " << core::algorithmName(generated.algorithm)
              << " with " << generated.model.paramCount() << " params, "
              << generated.report.summary() << "\n\n";

    // ---- Stage 4: deploy on the cycle-approximate simulator -------------
    backends::MapReduceSimulator sim;
    auto stream = sim.runStream(generated.model, split.test.x);
    double f1 = ml::f1ForTask(split.test.y, stream.labels,
                              split.test.numClasses);
    std::cout << "simulated deployment: " << split.test.numSamples()
              << " packets, latency " << stream.latencyNs
              << " ns, throughput " << stream.throughputGpps
              << " GPkt/s, F1 " << f1 << "\n\n";

    // ---- Stage 5: the generated Spatial program --------------------------
    std::cout << "--- generated Spatial (head) ---\n";
    std::size_t printed = 0, pos = 0;
    while (printed < 12 && pos != std::string::npos) {
        std::size_t next = generated.code.find('\n', pos);
        std::cout << generated.code.substr(pos, next - pos) << "\n";
        pos = next == std::string::npos ? next : next + 1;
        ++printed;
    }
    return 0;
}
