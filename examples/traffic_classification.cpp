/**
 * @file
 * Traffic classification on a MAT-based switch (the paper's IIsy-backend
 * scenario, §5.2.2).
 *
 * Shows candidate pruning in action: the DNN family is unsupported on a
 * MAT pipeline, so Homunculus searches the classical families (KMeans,
 * SVM, decision tree) and emits a P4 program whose tables encode the
 * winning model. Also demonstrates the resource trade: the same spec
 * compiled under a 4-table and a 12-table budget.
 *
 * Run: ./traffic_classification
 */
#include <iostream>

#include "core/compiler.hpp"
#include "data/iot_traffic_generator.hpp"

namespace {

void
compileUnderBudget(std::size_t tables)
{
    using namespace homunculus;

    backends::MatConfig mat_config;
    mat_config.numTables = tables;
    auto platform = core::Platforms::tofino(mat_config);
    platform.constrain({1.0, 600.0}, {{}, {}, tables});

    core::ModelSpec spec;
    spec.name = "iot_traffic_classification";
    spec.optimizationMetric = core::Metric::kF1;
    spec.dataLoader = [] {
        data::IotTrafficConfig config;
        config.numSamples = 3000;
        config.noiseLevel = 0.8;
        return data::generateIotTrafficSplit(config);
    };
    platform.schedule(spec);

    core::CompileOptions options;
    options.bo.numInitSamples = 4;
    options.bo.numIterations = 8;
    options.jobs = 2;  // kmeans/svm/tree searches run concurrently.

    core::Compiler compiler(options);
    auto result = compiler.compile(platform);
    if (!result.isOk()) {
        std::cerr << "compile failed: " << result.status().toString()
                  << "\n";
        return;
    }
    const auto *model = result->find(spec.name);

    std::cout << "--- budget: " << tables << " MATs ---\n"
              << "winning family : "
              << core::algorithmName(model->algorithm) << "\n"
              << "F1 (quantized) : " << model->objective << "\n"
              << "tables used    : " << model->report.matTables << " ("
              << model->report.matEntries << " entries)\n"
              << "latency        : " << model->report.latencyNs << " ns\n\n";

    if (tables == 12) {
        std::cout << "--- generated P4 (head) ---\n";
        std::size_t printed = 0, pos = 0;
        while (printed < 18 && pos != std::string::npos) {
            std::size_t next = model->code.find('\n', pos);
            std::cout << model->code.substr(pos, next - pos) << "\n";
            pos = next == std::string::npos ? next : next + 1;
            ++printed;
        }
        std::cout << "\n";
    }
}

}  // namespace

int
main()
{
    std::cout << "=== Homunculus traffic classification on a MAT switch "
                 "===\n\n";
    compileUnderBudget(4);
    compileUnderBudget(12);
    return 0;
}
