/**
 * @file
 * Multi-application scheduling: the > and | composition operators and
 * model fusion (paper §3.1, §3.2.5, §5.1.3).
 *
 * Deploys an anomaly detector and a traffic classifier on one Taurus
 * switch in different topologies, prints the composed resource/latency
 * envelope per strategy, and then demonstrates dataset fusion on two
 * tenants with overlapping feature sets.
 *
 * Run: ./multi_app_chaining
 */
#include <iostream>

#include "core/compiler.hpp"
#include "core/fusion.hpp"
#include "data/anomaly_generator.hpp"
#include "data/iot_traffic_generator.hpp"

int
main()
{
    using namespace homunculus;

    std::cout << "=== Homunculus multi-application scheduling ===\n\n";

    core::ModelSpec ad;
    ad.name = "ad";
    ad.optimizationMetric = core::Metric::kF1;
    ad.algorithms = {core::Algorithm::kDnn};
    ad.dataLoader = [] {
        data::AnomalyConfig config;
        config.numSamples = 1500;
        return data::generateAnomalySplit(config);
    };

    core::ModelSpec tc = ad;
    tc.name = "tc";
    tc.dataLoader = [] {
        data::IotTrafficConfig config;
        config.numSamples = 1500;
        return data::generateIotTrafficSplit(config);
    };

    // ---- Schedule both sequentially and in parallel. ---------------------
    auto platform = core::Platforms::taurus();
    platform.constrain({1.0, 500.0}, {16, 16});
    platform.schedule(ad > tc);          // inline AD before TC.
    platform.schedule(ad | tc);          // independent parallel apps.

    core::CompileOptions options;
    options.bo.numInitSamples = 3;
    options.bo.numIterations = 5;
    options.jobs = 2;
    core::Compiler compiler(options);
    auto compiled = compiler.compile(platform);
    if (!compiled.isOk()) {
        std::cerr << "compile failed: " << compiled.status().toString()
                  << "\n";
        return 1;
    }
    const core::CompileReport &result = compiled.value();

    for (std::size_t i = 0; i < result.scheduleResources.size(); ++i) {
        const auto &resources = result.scheduleResources[i];
        std::cout << "schedule " << platform.schedules()[i].notation()
                  << ":\n"
                  << "  CUs " << resources.computeUnits << ", MUs "
                  << resources.memoryUnits << ", latency "
                  << resources.latencyNs << " ns, throughput "
                  << resources.throughputGpps << " GPkt/s\n";
    }
    std::cout << "\nnote: CU/MU totals are identical across strategies "
                 "(Table 3); only latency composes differently.\n\n";

    // ---- Fusion: two tenants, same feature schema. -----------------------
    auto full = ad.dataLoader();
    auto [tenant_a, tenant_b] = core::halveSplit(full, 11);
    auto overlap =
        core::assessFeatureOverlap(tenant_a.train, tenant_b.train);
    std::cout << "tenant feature overlap: " << overlap.fraction * 100
              << "% -> "
              << (core::shouldFuse(tenant_a.train, tenant_b.train)
                      ? "fusing into a single model"
                      : "keeping separate models")
              << "\n";

    auto fused = core::fuseSplits(tenant_a, tenant_b);
    core::ModelSpec fused_spec = ad;
    fused_spec.name = "ad_fused";
    fused_spec.dataLoader = [fused] { return fused; };
    auto fused_platform = core::Platforms::taurus();
    fused_platform.constrain({1.0, 500.0}, {16, 16});
    auto fused_model =
        core::searchSpec(fused_spec, fused_platform, options, fused)
            .value();
    std::cout << "fused model: " << fused_model.model.paramCount()
              << " params, F1 " << fused_model.objective << ", "
              << fused_model.report.summary() << "\n";
    return 0;
}
