/**
 * @file
 * Botnet detection with per-packet reaction time (paper §5.1.1-§5.1.2).
 *
 * FlowLens aggregates packet-size / inter-arrival histograms for up to
 * 3600 s before classifying a flow. This example trains on flow-level
 * flowmarkers but evaluates on *partial* histograms after k packets,
 * showing how quickly a line-rate model starts catching botnet flows —
 * the reaction-time argument that motivates per-packet ML.
 *
 * Run: ./botnet_detection
 */
#include <iomanip>
#include <iostream>

#include "core/compiler.hpp"
#include "data/flowmarker.hpp"
#include "ml/metrics.hpp"
#include "ml/preprocess.hpp"

int
main()
{
    using namespace homunculus;

    std::cout << "=== Homunculus botnet detection: reaction time vs. "
                 "flow aggregation ===\n\n";

    // ---- Generate P2P traces and featurize. -----------------------------
    data::P2pTraceConfig trace_config;
    trace_config.numFlows = 500;
    auto flows = data::generateP2pFlows(trace_config);
    auto marker_config = data::homunculusCompressedConfig();
    std::cout << "flowmarker: " << marker_config.plBins << " PL bins + "
              << marker_config.iptBins << " IPT bins = "
              << marker_config.totalBins() << " features ("
              << data::flowLensOriginalConfig().totalBins()
              << " in original FlowLens -> "
              << data::flowLensOriginalConfig().totalBins() /
                     marker_config.totalBins()
              << "x compression)\n\n";

    std::size_t train_count = flows.size() * 7 / 10;
    std::vector<data::Flow> train_flows(flows.begin(),
                                        flows.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                train_count));
    std::vector<data::Flow> test_flows(
        flows.begin() + static_cast<std::ptrdiff_t>(train_count),
        flows.end());

    // ---- Train on full flow-level histograms. ----------------------------
    ml::DataSplit split;
    split.train = data::buildFlowLevelDataset(train_flows, marker_config);
    split.test = data::buildFlowLevelDataset(test_flows, marker_config);
    ml::StandardScaler scaler;
    split.train.x = scaler.fitTransform(split.train.x);
    split.test.x = scaler.transform(split.test.x);
    // Record the fit so the artifact carries true scaler provenance.
    split.scalerMeans = scaler.means();
    split.scalerStds = scaler.stddevs();

    core::ModelSpec spec;
    spec.name = "botnet_detection";
    spec.optimizationMetric = core::Metric::kF1;
    spec.algorithms = {core::Algorithm::kDnn};
    spec.maxHiddenLayers = 6;
    spec.maxNeuronsPerLayer = 16;
    spec.dataLoader = [split] { return split; };

    auto platform = core::Platforms::taurus();
    platform.constrain({1.0, 500.0}, {16, 16});
    core::CompileOptions options;
    options.bo.numInitSamples = 4;
    options.bo.numIterations = 8;
    auto generated =
        core::searchSpec(spec, platform, options, split).value();

    std::cout << "model: " << generated.model.paramCount() << " params, "
              << generated.report.summary() << "\n"
              << "flow-complete F1: " << generated.objective << "\n\n";

    // ---- Reaction time: F1 after the first k packets. --------------------
    std::cout << "per-packet partial-histogram F1 (reaction time):\n";
    std::cout << "  k packets   F1\n";
    for (std::size_t k : {1, 2, 4, 8, 16, 32}) {
        std::vector<std::vector<double>> rows;
        std::vector<int> labels;
        for (const auto &flow : test_flows) {
            rows.push_back(
                data::computeFlowMarker(flow, marker_config, k));
            labels.push_back(flow.botnet ? 1 : 0);
        }
        auto x = scaler.transform(math::Matrix::fromRows(rows));
        auto predicted = platform.platform().evaluate(generated.model, x);
        double f1 = ml::f1Score(labels, predicted, 1);
        std::cout << "  " << std::setw(9) << k << "   " << f1 << "\n";
    }

    std::cout << "\nreaction time: a FlowLens-style aggregator waits up "
                 "to 3600 s per flow;\nthe per-packet model issues its "
                 "first verdict after one packet (~"
              << generated.report.latencyNs << " ns in the pipeline).\n";
    return 0;
}
