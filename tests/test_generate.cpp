/**
 * @file
 * Integration tests: the full generate() pipeline on all three backends.
 *
 * Budgets are kept small so the suite stays fast; the benches exercise
 * the paper-scale budgets.
 */
#include <gtest/gtest.h>

#include "core/generate.hpp"
#include "ml/metrics.hpp"
#include "data/anomaly_generator.hpp"
#include "data/iot_traffic_generator.hpp"

namespace hcore = homunculus::core;
namespace hd = homunculus::data;

namespace {

hcore::ModelSpec
adSpec(std::size_t samples = 1200)
{
    hcore::ModelSpec spec;
    spec.name = "ad";
    spec.optimizationMetric = hcore::Metric::kF1;
    spec.algorithms = {hcore::Algorithm::kDnn};
    spec.dataLoader = [samples] {
        hd::AnomalyConfig config;
        config.numSamples = samples;
        return hd::generateAnomalySplit(config);
    };
    return spec;
}

hcore::GenerateOptions
tinyBudget()
{
    hcore::GenerateOptions options;
    options.bo.numInitSamples = 3;
    options.bo.numIterations = 4;
    return options;
}

}  // namespace

TEST(Generate, EndToEndOnTaurusProducesFeasibleDnn)
{
    auto platform = hcore::Platforms::taurus();
    platform.constrain({1.0, 500.0}, {16, 16, {}});
    platform.schedule(adSpec());

    auto result = hcore::generate(platform, tinyBudget());
    ASSERT_TRUE(result.success);
    const auto *model = result.find("ad");
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->algorithm, hcore::Algorithm::kDnn);
    EXPECT_TRUE(model->report.feasible);
    EXPECT_GT(model->objective, 0.5);
    EXPECT_FALSE(model->code.empty());
    EXPECT_NE(model->code.find("@spatial"), std::string::npos);
}

TEST(Generate, EndToEndOnMatPrunesDnnAndStillSucceeds)
{
    auto platform = hcore::Platforms::tofino();
    hcore::ModelSpec spec;
    spec.name = "tc";
    spec.optimizationMetric = hcore::Metric::kF1;
    // Empty pool: let candidate selection do the pruning.
    spec.dataLoader = [] {
        hd::IotTrafficConfig config;
        config.numSamples = 1000;
        return hd::generateIotTrafficSplit(config);
    };
    platform.schedule(spec);

    auto result = hcore::generate(platform, tinyBudget());
    ASSERT_TRUE(result.success);
    const auto *model = result.find("tc");
    ASSERT_NE(model, nullptr);
    EXPECT_NE(model->algorithm, hcore::Algorithm::kDnn);
    EXPECT_TRUE(model->report.feasible);
    EXPECT_GT(model->report.matTables, 0u);
    EXPECT_NE(model->code.find("control MlIngress"), std::string::npos);
}

TEST(Generate, EndToEndOnFpga)
{
    auto platform = hcore::Platforms::fpga();
    platform.schedule(adSpec(800));
    auto result = hcore::generate(platform, tinyBudget());
    ASSERT_TRUE(result.success);
    const auto *model = result.find("ad");
    ASSERT_NE(model, nullptr);
    EXPECT_GT(model->report.powerWatts, 15.131);
    EXPECT_GT(model->report.lutPercent, 5.36);
}

TEST(Generate, ScheduleResourcesAccountForAllLeaves)
{
    auto platform = hcore::Platforms::taurus();
    auto a = adSpec(600);
    a.name = "ad_a";
    auto b = adSpec(600);
    b.name = "ad_b";
    platform.schedule(a > b);

    auto result = hcore::generate(platform, tinyBudget());
    ASSERT_TRUE(result.success);
    ASSERT_EQ(result.models.size(), 2u);
    ASSERT_EQ(result.scheduleResources.size(), 1u);
    const auto &total = result.scheduleResources[0];
    EXPECT_EQ(total.computeUnits,
              result.models[0].report.computeUnits +
                  result.models[1].report.computeUnits);
}

TEST(Generate, SearchHistoryIsUsableForRegretPlots)
{
    auto platform = hcore::Platforms::taurus();
    platform.schedule(adSpec(800));
    auto options = tinyBudget();
    auto result = hcore::generate(platform, options);
    const auto *model = result.find("ad");
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->searchHistory.history.size(),
              options.bo.numInitSamples + options.bo.numIterations);
    auto series = model->searchHistory.bestSoFarSeries();
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_GE(series[i], series[i - 1] - 1e-12);
}

TEST(Generate, MissingDataLoaderThrows)
{
    auto platform = hcore::Platforms::taurus();
    hcore::ModelSpec broken;
    broken.name = "no_loader";
    platform.schedule(broken);
    EXPECT_THROW(hcore::generate(platform, tinyBudget()),
                 std::runtime_error);
}

TEST(Generate, ObjectiveComesFromQuantizedBackendEvaluation)
{
    // The reported objective must equal re-running the winner's IR
    // through the platform simulator — not the float model.
    auto platform = hcore::Platforms::taurus();
    auto spec = adSpec(1000);
    platform.schedule(spec);
    auto result = hcore::generate(platform, tinyBudget());
    const auto *model = result.find("ad");
    ASSERT_NE(model, nullptr);

    auto split = spec.dataLoader();
    auto predictions =
        platform.platform().evaluate(model->model, split.test.x);
    double f1 = homunculus::ml::f1ForTask(split.test.y, predictions,
                                          split.test.numClasses);
    EXPECT_NEAR(f1, model->objective, 1e-12);
}
