/**
 * @file
 * Robustness / failure-injection suite.
 *
 * Parsers and simulators face adversarial inputs in a real deployment;
 * these tests fuzz the packet parser with random and bit-flipped
 * buffers, feed degenerate data to the loaders and models, and verify
 * the documented error behavior (clean nullopt / exception, never UB).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "data/flowmarker.hpp"
#include "data/loaders.hpp"
#include "ir/model_ir.hpp"
#include "ir/serialize.hpp"
#include "ml/mlp.hpp"
#include "net/feature_extract.hpp"
#include "opt/search_space.hpp"
#include "runtime/model_registry.hpp"

namespace hc = homunculus::common;
namespace hn = homunculus::net;
namespace hd = homunculus::data;
namespace ml = homunculus::ml;
namespace hi = homunculus::ir;
namespace hm = homunculus::math;
namespace ho = homunculus::opt;

TEST(Fuzz, PacketParserSurvivesRandomBuffers)
{
    hc::Rng rng(1);
    for (int trial = 0; trial < 2000; ++trial) {
        auto size = static_cast<std::size_t>(rng.uniformInt(0, 200));
        std::vector<std::uint8_t> buffer(size);
        for (auto &byte : buffer)
            byte = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        // Must never crash; almost always rejects (checksum).
        auto parsed = hn::parse(buffer);
        if (parsed) {
            // If it parsed, the wire round-trip must agree.
            EXPECT_LE(parsed->wireSize(), buffer.size());
        }
    }
}

TEST(Fuzz, PacketParserSurvivesBitFlips)
{
    hn::RawPacket packet;
    packet.ipv4.protocol = hn::kProtoUdp;
    hn::UdpHeader udp;
    udp.srcPort = 1000;
    udp.dstPort = 2000;
    packet.udp = udp;
    packet.payload.assign(40, 0x55);
    auto pristine = serialize(packet);

    hc::Rng rng(2);
    std::size_t accepted = 0;
    for (int trial = 0; trial < 1000; ++trial) {
        auto bytes = pristine;
        auto pos = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(bytes.size()) - 1));
        bytes[pos] ^= static_cast<std::uint8_t>(
            1 << rng.uniformInt(0, 7));
        if (hn::parse(bytes))
            ++accepted;
    }
    // Flips inside the IPv4 header are caught by the checksum; flips in
    // payload/transport are legitimately accepted. Never a crash.
    EXPECT_GT(accepted, 0u);
    EXPECT_LT(accepted, 1000u);
}

TEST(Fuzz, FeatureExtractorNeverProducesNonFinite)
{
    hc::Rng rng(3);
    hn::FeatureExtractor extractor;
    for (int trial = 0; trial < 300; ++trial) {
        hn::RawPacket packet;
        packet.ipv4.ttl = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        packet.ipv4.tos = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        if (rng.bernoulli(0.5)) {
            packet.ipv4.protocol = hn::kProtoTcp;
            packet.tcp = hn::TcpHeader{};
        } else {
            packet.ipv4.protocol = hn::kProtoUdp;
            packet.udp = hn::UdpHeader{};
        }
        packet.payload.resize(
            static_cast<std::size_t>(rng.uniformInt(0, 1400)));
        for (auto &byte : packet.payload)
            byte = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        for (double f : extractor.extract(packet)) {
            EXPECT_TRUE(std::isfinite(f));
        }
    }
}

TEST(Robustness, CsvRejectsHostileInputsCleanly)
{
    EXPECT_THROW(hc::parseCsv("a,b\nx,y\n", true), std::runtime_error);
    EXPECT_THROW(hc::parseCsv("1,2\n3,4,5\n", false), std::runtime_error);
    EXPECT_THROW(hd::datasetFromCsv("", false), std::runtime_error);
    EXPECT_THROW(hd::datasetFromCsv("1,-1\n", false), std::runtime_error);
    // Whitespace-only content.
    EXPECT_THROW(hd::datasetFromCsv("   \n  \n", false),
                 std::runtime_error);
    // Header-only is an empty dataset.
    EXPECT_THROW(hd::datasetFromCsv("a,b\n", true), std::runtime_error);
}

TEST(Robustness, ExecuteIrHandlesExtremeFeatureValues)
{
    ml::MlpConfig config;
    config.inputDim = 4;
    config.hiddenLayers = {6};
    config.numClasses = 3;
    ml::Mlp mlp(config);
    auto ir = hi::lowerMlp(mlp, hc::FixedPointFormat::q88(), "m");

    // Saturating fixed point must absorb infinities of input magnitude.
    for (double magnitude : {1e3, 1e6, 1e9, -1e9}) {
        std::vector<double> features(4, magnitude);
        int label = hi::executeIr(ir, features);
        EXPECT_GE(label, 0);
        EXPECT_LT(label, 3);
    }
}

TEST(Robustness, MlpRejectsMisshapenInputs)
{
    ml::MlpConfig config;
    config.inputDim = 3;
    config.hiddenLayers = {4};
    config.numClasses = 2;
    ml::Mlp mlp(config);
    hm::Matrix wrong_width(5, 2, 0.0);
    EXPECT_DEATH(mlp.predict(wrong_width), "width mismatch");
}

TEST(Robustness, DatasetValidationCatchesCorruption)
{
    ml::Dataset data;
    data.x = hm::Matrix(4, 2, 1.0);
    data.y = {0, 1, 0};  // one label short.
    data.numClasses = 2;
    EXPECT_THROW(data.validate(), std::runtime_error);

    data.y = {0, 1, 0, 5};  // out-of-range label.
    EXPECT_THROW(data.validate(), std::runtime_error);

    data.y = {0, 1, 0, 1};
    data.featureNames = {"only_one"};  // width mismatch.
    EXPECT_THROW(data.validate(), std::runtime_error);
}

TEST(Robustness, SearchSpaceEncodeUnknownCategoricalFallsBackToZero)
{
    ho::SearchSpace space;
    space.addCategorical("act", {"relu", "tanh"});
    ho::Configuration config;
    config.set("act", std::string("swish"));  // not in the option list.
    auto row = space.encode(config);
    EXPECT_DOUBLE_EQ(row[0], 0.0);
}

TEST(Robustness, QuantizedTreeHandlesThresholdSaturation)
{
    // A tree whose threshold exceeds the Q8.8 range must still classify
    // deterministically after saturation.
    hi::ModelIr ir;
    ir.kind = hi::ModelKind::kDecisionTree;
    ir.inputDim = 1;
    ir.numClasses = 2;
    ir.treeDepth = 1;
    hi::IrTreeNode root;
    root.isLeaf = false;
    root.feature = 0;
    root.threshold = hc::FixedPointFormat::q88().quantize(1e9);  // max.
    root.left = 1;
    root.right = 2;
    hi::IrTreeNode left, right;
    left.classLabel = 0;
    right.classLabel = 1;
    ir.treeNodes = {root, left, right};
    ir.validate();

    // Everything representable compares <= saturated max -> class 0.
    EXPECT_EQ(hi::executeIr(ir, {0.0}), 0);
    EXPECT_EQ(hi::executeIr(ir, {100.0}), 0);
    EXPECT_EQ(hi::executeIr(ir, {1e12}), 0);
}

TEST(Robustness, EmptyFlowVectorRejectedByBuilders)
{
    EXPECT_THROW(hd::buildFlowLevelDataset(
                     {}, hd::homunculusCompressedConfig()),
                 std::runtime_error);
    EXPECT_THROW(hd::buildPerPacketDataset(
                     {}, hd::homunculusCompressedConfig()),
                 std::runtime_error);
}

// ----------------------------------------------- artifact fuzzing

namespace {

/** A valid v3 artifact exercising every optional section: MLP layers,
 *  scaler provenance, and a lowering-audit line. */
std::string
referenceArtifact()
{
    hc::Rng rng(99);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kMlp;
    model.inputDim = 4;
    model.numClasses = 3;
    std::size_t prev = 4;
    for (std::size_t width : {std::size_t{6}, std::size_t{3}}) {
        hi::QuantizedLayer layer;
        layer.inputDim = prev;
        layer.outputDim = width;
        layer.weights.resize(prev * width);
        layer.biases.resize(width);
        for (auto &w : layer.weights)
            w = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        for (auto &b : layer.biases)
            b = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        model.layers.push_back(std::move(layer));
        prev = width;
    }
    model.passes = {"dedup-tables"};
    model.scalerMeans = {0.5, -1.25, 3.0, 0.0};
    model.scalerStds = {1.0, 2.0, 0.5, 4.0};
    model.scalerRecorded = true;
    model.validate();
    return hi::serializeModel(model);
}

/** Corrupt artifacts must surface as clean "ir: ..." runtime_errors —
 *  never a bare library exception, never an abort, and (checked at the
 *  registry) never a half-parsed model. */
void
expectCleanOutcome(const std::string &text)
{
    try {
        hi::ModelIr model = hi::deserializeModel(text);
        model.validate();  // a parse that "succeeds" is a real model.
    } catch (const std::runtime_error &e) {
        EXPECT_EQ(std::string(e.what()).rfind("ir: ", 0), 0u)
            << "leaked diagnostic: " << e.what();
    }
}

}  // namespace

TEST(Fuzz, TruncatedArtifactsAlwaysSurfaceCleanIrErrors)
{
    std::string text = referenceArtifact();
    // Every proper prefix is missing at least the 'end' sentinel.
    for (std::size_t n = 0; n < text.size(); n += 7) {
        std::string truncated = text.substr(0, n);
        try {
            hi::deserializeModel(truncated);
            FAIL() << "prefix of " << n << " bytes parsed as a model";
        } catch (const std::runtime_error &e) {
            ASSERT_EQ(std::string(e.what()).rfind("ir: ", 0), 0u)
                << "at prefix " << n << ": " << e.what();
        }
    }
}

TEST(Fuzz, BitFlippedArtifactsNeverCrashTheDeserializer)
{
    const std::string pristine = referenceArtifact();
    hc::Rng rng(7);
    for (int trial = 0; trial < 2000; ++trial) {
        std::string text = pristine;
        auto byte = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(text.size()) - 1));
        text[byte] = static_cast<char>(
            text[byte] ^ (1 << rng.uniformInt(0, 7)));
        expectCleanOutcome(text);
    }
}

TEST(Fuzz, TagShuffledArtifactsNeverLoadHalfParsedModels)
{
    const std::string pristine = referenceArtifact();
    std::vector<std::string> lines;
    std::string line;
    std::istringstream in(pristine);
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_GT(lines.size(), 4u);

    hc::Rng rng(13);
    for (int trial = 0; trial < 500; ++trial) {
        // Shuffle the body (keep the magic header in place): tags now
        // arrive in orders the writer never emits — weights before
        // their layer, 'end' mid-stream, duplicated-section orders.
        std::vector<std::string> shuffled(lines.begin() + 1, lines.end());
        for (std::size_t i = shuffled.size(); i > 1; --i)
            std::swap(shuffled[i - 1],
                      shuffled[static_cast<std::size_t>(rng.uniformInt(
                          0, static_cast<std::int64_t>(i) - 1))]);
        std::string text = lines.front() + "\n";
        for (const std::string &body_line : shuffled)
            text += body_line + "\n";
        expectCleanOutcome(text);
    }
}

TEST(Fuzz, RegistryLoadFileRejectsCorruptArtifactsWithoutSideEffects)
{
    const std::string pristine = referenceArtifact();
    std::string dir = ::testing::TempDir();
    auto write = [&](const std::string &name, const std::string &text) {
        std::string path = dir + "/" + name;
        std::ofstream out(path);
        out << text;
        return path;
    };

    homunculus::runtime::ModelRegistry registry;
    std::string truncated =
        write("truncated.hir", pristine.substr(0, pristine.size() / 2));
    std::string garbled = pristine;
    garbled.replace(garbled.find("format"), 8, "formaX 9");
    std::string bad_tag = write("garbled.hir", garbled);
    std::string bad_format = pristine;
    bad_format.replace(bad_format.find("format 8 8"),
                       std::string("format 8 8").size(), "format 40 40");
    std::string bad_q = write("bad_q.hir", bad_format);

    for (const std::string &path : {truncated, bad_tag, bad_q}) {
        try {
            registry.loadFile("m", path);
            FAIL() << path << " loaded";
        } catch (const std::runtime_error &e) {
            EXPECT_EQ(std::string(e.what()).rfind("ir: ", 0), 0u)
                << path << ": " << e.what();
        }
        // A failed load leaves no half-registered model behind.
        EXPECT_FALSE(registry.contains("m"));
    }

    // And the pristine artifact still round-trips through the same
    // path — the hardening rejects corruption, not artifacts.
    std::string good = write("good.hir", pristine);
    EXPECT_EQ(registry.loadFile("m", good), 1u);
    EXPECT_TRUE(registry.contains("m"));
}
