/**
 * @file
 * Unit tests for decision trees and random forests.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

namespace ml = homunculus::ml;
namespace hm = homunculus::math;

namespace {

ml::Dataset
makeAxisAligned(std::size_t n, std::uint64_t seed)
{
    homunculus::common::Rng rng(seed);
    ml::Dataset data;
    data.x = hm::Matrix(n, 2);
    data.y.resize(n);
    data.numClasses = 2;
    for (std::size_t i = 0; i < n; ++i) {
        data.x(i, 0) = rng.uniform(0, 10);
        data.x(i, 1) = rng.uniform(0, 10);
        data.y[i] = (data.x(i, 0) > 5.0) ? 1 : 0;
    }
    return data;
}

/** Nonlinear regression target for the forest surrogate tests. */
void
makeRegression(std::size_t n, std::uint64_t seed, hm::Matrix &x,
               std::vector<double> &y)
{
    homunculus::common::Rng rng(seed);
    x = hm::Matrix(n, 2);
    y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(-3, 3);
        x(i, 1) = rng.uniform(-3, 3);
        y[i] = std::sin(x(i, 0)) + 0.5 * x(i, 1);
    }
}

}  // namespace

TEST(DecisionTree, LearnsAxisAlignedSplit)
{
    auto data = makeAxisAligned(300, 1);
    ml::DecisionTreeClassifier tree(ml::TreeConfig{});
    tree.train(data);
    EXPECT_GT(ml::accuracy(data.y, tree.predict(data.x)), 0.98);
    // A single threshold on feature 0 suffices: shallow tree expected.
    EXPECT_LE(tree.depth(), 3u);
}

TEST(DecisionTree, RespectsMaxDepth)
{
    auto data = makeAxisAligned(400, 2);
    // Make labels noisy so the tree wants depth.
    for (std::size_t i = 0; i < data.y.size(); i += 7)
        data.y[i] ^= 1;
    ml::TreeConfig config;
    config.maxDepth = 2;
    ml::DecisionTreeClassifier tree(config);
    tree.train(data);
    EXPECT_LE(tree.depth(), 2u);
}

TEST(DecisionTree, NodeAndLeafCountsConsistent)
{
    auto data = makeAxisAligned(200, 3);
    ml::DecisionTreeClassifier tree(ml::TreeConfig{});
    tree.train(data);
    // Binary tree: nodes = 2 * leaves - 1.
    EXPECT_EQ(tree.nodeCount(), 2 * tree.leafCount() - 1);
}

TEST(DecisionTree, PredictProbaSumsToOne)
{
    auto data = makeAxisAligned(150, 4);
    ml::DecisionTreeClassifier tree(ml::TreeConfig{});
    tree.train(data);
    auto probs = tree.predictProbaPoint(data.x.row(0));
    double total = 0.0;
    for (double p : probs)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DecisionTree, PureLeafStopsSplitting)
{
    ml::Dataset data;
    data.x = hm::Matrix::fromRows({{1}, {2}, {3}, {4}});
    data.y = {0, 0, 0, 0};
    data.numClasses = 2;
    ml::DecisionTreeClassifier tree(ml::TreeConfig{});
    tree.train(data);
    EXPECT_EQ(tree.nodeCount(), 1u);
    EXPECT_EQ(tree.depth(), 0u);
}

TEST(RegressionTree, FitsSmoothFunction)
{
    hm::Matrix x;
    std::vector<double> y;
    makeRegression(500, 5, x, y);
    ml::TreeConfig config;
    config.maxDepth = 10;
    ml::DecisionTreeRegressor tree(config);
    tree.train(x, y);
    double sse = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
        double err = tree.predictPoint(x.row(i)) - y[i];
        sse += err * err;
    }
    EXPECT_LT(sse / static_cast<double>(x.rows()), 0.05);
}

TEST(RegressionTree, ConstantTargetYieldsSingleLeaf)
{
    hm::Matrix x = hm::Matrix::fromRows({{1}, {2}, {3}});
    std::vector<double> y = {4.0, 4.0, 4.0};
    ml::DecisionTreeRegressor tree(ml::TreeConfig{});
    tree.train(x, y);
    EXPECT_EQ(tree.nodeCount(), 1u);
    EXPECT_DOUBLE_EQ(tree.predictPoint({9.0}), 4.0);
}

TEST(RandomForest, RegressorBeatsMeanPredictor)
{
    hm::Matrix x;
    std::vector<double> y;
    makeRegression(400, 6, x, y);
    ml::ForestConfig config;
    config.numTrees = 20;
    ml::RandomForestRegressor forest(config);
    forest.train(x, y);

    double mean_y = 0.0;
    for (double v : y)
        mean_y += v;
    mean_y /= static_cast<double>(y.size());

    double sse_forest = 0.0, sse_mean = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
        double err = forest.predictPoint(x.row(i)) - y[i];
        sse_forest += err * err;
        sse_mean += (mean_y - y[i]) * (mean_y - y[i]);
    }
    EXPECT_LT(sse_forest, 0.3 * sse_mean);
}

TEST(RandomForest, VarianceIsNonNegativeAndInformative)
{
    hm::Matrix x;
    std::vector<double> y;
    makeRegression(300, 7, x, y);
    ml::ForestConfig config;
    config.numTrees = 15;
    ml::RandomForestRegressor forest(config);
    forest.train(x, y);

    // In-distribution point: finite variance.
    auto pred_in = forest.predictWithVariance({0.0, 0.0});
    EXPECT_GE(pred_in.variance, 0.0);
    // Far out-of-distribution: trees disagree at least as much on average.
    auto pred_out = forest.predictWithVariance({100.0, -100.0});
    EXPECT_GE(pred_out.variance, 0.0);
}

TEST(RandomForest, ClassifierLearnsAndVotes)
{
    auto data = makeAxisAligned(300, 8);
    ml::ForestConfig config;
    config.numTrees = 15;
    ml::RandomForestClassifier forest(config);
    forest.train(data);
    EXPECT_GT(ml::accuracy(data.y, forest.predict(data.x)), 0.95);

    auto probs = forest.predictProbaPoint(data.x.row(0));
    double total = 0.0;
    for (double p : probs)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RandomForest, DeterministicGivenSeed)
{
    hm::Matrix x;
    std::vector<double> y;
    makeRegression(200, 9, x, y);
    ml::ForestConfig config;
    config.numTrees = 8;
    config.seed = 31;
    ml::RandomForestRegressor a(config), b(config);
    a.train(x, y);
    b.train(x, y);
    for (std::size_t i = 0; i < 20; ++i)
        EXPECT_DOUBLE_EQ(a.predictPoint(x.row(i)), b.predictPoint(x.row(i)));
}
