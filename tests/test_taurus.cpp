/**
 * @file
 * Unit tests for the Taurus platform model and MapReduce simulator.
 */
#include <gtest/gtest.h>

#include "backends/mapreduce_sim.hpp"
#include "backends/taurus.hpp"
#include "common/rng.hpp"

namespace hb = homunculus::backends;
namespace hi = homunculus::ir;
namespace ml = homunculus::ml;
namespace hm = homunculus::math;
namespace hc = homunculus::common;

namespace {

/** A trained-ish MLP IR with the given layer plan (random weights). */
hi::ModelIr
makeMlpIr(std::size_t input_dim, std::vector<std::size_t> hidden,
          int classes = 2, std::uint64_t seed = 1)
{
    ml::MlpConfig config;
    config.inputDim = input_dim;
    config.hiddenLayers = std::move(hidden);
    config.numClasses = classes;
    config.seed = seed;
    ml::Mlp mlp(config);
    return hi::lowerMlp(mlp, hc::FixedPointFormat::q88(), "test");
}

}  // namespace

TEST(TaurusModel, BiggerLayersConsumeMoreCus)
{
    hb::TaurusConfig config;
    auto small = taurusMappingCost(config, makeMlpIr(7, {8}));
    auto large = taurusMappingCost(config, makeMlpIr(7, {32}));
    EXPECT_GT(large.cus, small.cus);
}

TEST(TaurusModel, MoreLayersConsumeMoreMus)
{
    hb::TaurusConfig config;
    // Same parameter ballpark, different depth: buffer MUs per layer make
    // the deeper model memory-hungrier (Table 2's Hom-BD observation).
    auto shallow = taurusMappingCost(config, makeMlpIr(30, {10, 10}));
    auto deep = taurusMappingCost(
        config, makeMlpIr(30, {4, 4, 4, 4, 4, 4, 4, 4}));
    EXPECT_GT(deep.mus - 2 * 8, 0u);
    EXPECT_GT(static_cast<double>(deep.mus) / deep.cus,
              static_cast<double>(shallow.mus) / shallow.cus);
}

TEST(TaurusModel, LatencyGrowsWithDepth)
{
    hb::TaurusConfig config;
    auto shallow = taurusMappingCost(config, makeMlpIr(7, {8}));
    auto deep = taurusMappingCost(config, makeMlpIr(7, {8, 8, 8, 8}));
    EXPECT_GT(deep.fillCycles, shallow.fillCycles);
}

TEST(TaurusModel, OversizedModelRaisesInitiationInterval)
{
    hb::TaurusConfig config;
    config.gridRows = 4;
    config.gridCols = 4;  // tiny grid: 16 CUs.
    auto cost = taurusMappingCost(config, makeMlpIr(30, {32, 32, 32}));
    EXPECT_GT(cost.ii, 1.0);
}

TEST(TaurusPlatform, FeasibleSmallModelMeetsEnvelope)
{
    hb::TaurusPlatform platform;
    auto report = platform.estimate(makeMlpIr(7, {12, 8}));
    EXPECT_TRUE(report.feasible) << report.infeasibleReason;
    EXPECT_GE(report.throughputGpps, 1.0);
    EXPECT_LE(report.latencyNs, 500.0);
    EXPECT_GT(report.computeUnits, 0u);
    EXPECT_GT(report.memoryUnits, 0u);
}

TEST(TaurusPlatform, HugeModelIsInfeasibleWithReason)
{
    hb::TaurusConfig config;
    config.gridRows = 4;
    config.gridCols = 4;
    hb::TaurusPlatform platform(config);
    auto report = platform.estimate(makeMlpIr(30, {32, 32, 32, 32}));
    EXPECT_FALSE(report.feasible);
    EXPECT_FALSE(report.infeasibleReason.empty());
}

TEST(TaurusPlatform, SupportsAllFamilies)
{
    hb::TaurusPlatform platform;
    for (auto kind : {hi::ModelKind::kMlp, hi::ModelKind::kKMeans,
                      hi::ModelKind::kSvm, hi::ModelKind::kDecisionTree})
        EXPECT_EQ(platform.supports(kind),
                  hb::AlgorithmSupport::kSupported);
}

TEST(TaurusPlatform, TighterLatencyBudgetFlipsFeasibility)
{
    hb::TaurusPlatform platform;
    auto ir = makeMlpIr(7, {16, 16, 16});
    auto relaxed = platform.estimate(ir);
    EXPECT_TRUE(relaxed.feasible);

    platform.setConstraints({1.0, /*maxLatencyNs=*/10.0});
    auto tight = platform.estimate(ir);
    EXPECT_FALSE(tight.feasible);
}

TEST(MapReduceSim, LabelsMatchReferenceExecutor)
{
    auto ir = makeMlpIr(5, {6, 4}, 3);
    hb::MapReduceSimulator sim;
    hc::Rng rng(3);
    hm::Matrix x(20, 5);
    for (double &v : x.data())
        v = rng.gaussian(0, 1);
    auto stream = sim.runStream(ir, x);
    auto reference = hi::executeIrBatch(ir, x);
    EXPECT_EQ(stream.labels, reference);
}

TEST(MapReduceSim, StreamCyclesAreFillPlusII)
{
    auto ir = makeMlpIr(7, {8});
    hb::TaurusConfig config;
    hb::MapReduceSimulator sim(config);
    hm::Matrix x(10, 7, 0.1);
    auto stream = sim.runStream(ir, x);
    auto cost = taurusMappingCost(config, ir);
    EXPECT_DOUBLE_EQ(stream.totalCycles,
                     cost.fillCycles + 9.0 * cost.ii);
    EXPECT_DOUBLE_EQ(stream.latencyNs, cost.fillCycles / config.clockGhz);
}

TEST(MapReduceSim, SinglePacketCyclesEqualFill)
{
    auto ir = makeMlpIr(4, {4});
    hb::MapReduceSimulator sim;
    auto result = sim.runPacket(ir, {0.1, 0.2, 0.3, 0.4});
    auto cost = taurusMappingCost(sim.config(), ir);
    EXPECT_DOUBLE_EQ(result.cycles, cost.fillCycles);
}

TEST(TaurusPlatform, EvaluateMatchesSimulator)
{
    auto ir = makeMlpIr(4, {6});
    hb::TaurusPlatform platform;
    hc::Rng rng(9);
    hm::Matrix x(15, 4);
    for (double &v : x.data())
        v = rng.gaussian(0, 1);
    EXPECT_EQ(platform.evaluate(ir, x), hi::executeIrBatch(ir, x));
}
