/**
 * @file
 * Tests for the multi-model serving plane: ModelRegistry versioning
 * and atomic hot swap (pinned epochs keep executing the plan they
 * started with, bit-identically), unload-when-idle / unload-while-
 * pinned safety, Router spec validation, label-driven DAG chaining
 * with per-request traces and the chain-depth cap, and the routed
 * runtime::Server — lane→model attribution in ServerStats and
 * swap-under-load verdict exactness against whichever plan version
 * admitted each batch. The swap/lookup and server handoffs run under
 * TSAN in CI.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ir/exec_plan.hpp"
#include "math/matrix.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/router.hpp"
#include "runtime/server.hpp"

namespace hc = homunculus::common;
namespace hi = homunculus::ir;
namespace hm = homunculus::math;
namespace hr = homunculus::runtime;

namespace {

/** A small deterministic MLP of the given shape. */
hi::ModelIr
mlpModel(std::uint64_t seed, std::size_t input_dim, std::size_t classes)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kMlp;
    model.inputDim = input_dim;
    model.numClasses = static_cast<int>(classes);
    std::size_t prev = input_dim;
    for (std::size_t width : {std::size_t{12}, classes}) {
        hi::QuantizedLayer layer;
        layer.inputDim = prev;
        layer.outputDim = width;
        layer.weights.resize(prev * width);
        layer.biases.resize(width);
        for (auto &w : layer.weights)
            w = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        for (auto &b : layer.biases)
            b = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        model.layers.push_back(std::move(layer));
        prev = width;
    }
    model.validate();
    return model;
}

/** Deterministic feature rows in the extractor-ish value range. */
hm::Matrix
featureRows(std::uint64_t seed, std::size_t rows, std::size_t cols)
{
    hc::Rng rng(seed);
    hm::Matrix x(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            x(r, c) = rng.uniform(-2.0, 2.0);
    return x;
}

std::vector<hr::Request>
requestsFrom(const hm::Matrix &x)
{
    std::vector<hr::Request> requests(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        requests[r].id = r + 1;
        requests[r].features = x.row(r);
    }
    return requests;
}

}  // namespace

// ----------------------------------------------------------- ModelRegistry

TEST(ModelRegistry, LoadAssignsVersionsAndFirstBecomesActive)
{
    hr::ModelRegistry registry;
    EXPECT_FALSE(registry.contains("m"));
    EXPECT_EQ(registry.load("m", mlpModel(1, 4, 3)), 1u);
    EXPECT_EQ(registry.load("m", mlpModel(2, 4, 3)), 2u);
    EXPECT_EQ(registry.load("other", mlpModel(3, 6, 2)), 1u);

    EXPECT_TRUE(registry.contains("m"));
    EXPECT_EQ(registry.activeVersion("m"), 1u);  // later loads stay idle.
    EXPECT_EQ(registry.active("m")->version, 1u);
    EXPECT_EQ(registry.active("m")->inputDim(), 4u);
    EXPECT_EQ(registry.active("m")->numClasses(), 3);
    EXPECT_EQ(registry.versions("m"),
              (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(registry.names(),
              (std::vector<std::string>{"m", "other"}));

    EXPECT_THROW(registry.active("nope"), std::out_of_range);
    EXPECT_THROW(registry.load("", mlpModel(4, 4, 3)),
                 std::runtime_error);
    EXPECT_EQ(registry.version("m", 7), nullptr);
    EXPECT_EQ(registry.version("nope", 1), nullptr);
}

TEST(ModelRegistry, RejectsNonDropInReplacements)
{
    hr::ModelRegistry registry;
    registry.load("m", mlpModel(1, 4, 3));
    // A swap can never hand the router a plan the admitted rows don't
    // fit, so version 2+ must match version 1's schema exactly.
    EXPECT_THROW(registry.load("m", mlpModel(2, 5, 3)),
                 std::runtime_error);  // width differs.
    EXPECT_THROW(registry.load("m", mlpModel(3, 4, 2)),
                 std::runtime_error);  // label space differs.
    EXPECT_EQ(registry.versions("m"),
              (std::vector<std::uint64_t>{1}));
}

TEST(ModelRegistry, SwapFlipsActiveAndValidatesTargets)
{
    hr::ModelRegistry registry;
    registry.load("m", mlpModel(1, 4, 3));
    registry.load("m", mlpModel(2, 4, 3));

    EXPECT_EQ(registry.swap("m", 2), 1u);  // returns the previous.
    EXPECT_EQ(registry.activeVersion("m"), 2u);
    EXPECT_EQ(registry.swap("m", 2), 2u);  // re-swap is a no-op.

    EXPECT_THROW(registry.swap("nope", 1), std::out_of_range);
    EXPECT_THROW(registry.swap("m", 9), std::out_of_range);
    // A failed swap of an unknown name must not create a phantom entry.
    EXPECT_FALSE(registry.contains("nope"));
}

TEST(ModelRegistry, PinnedEpochSurvivesSwapWithBitIdenticalLabels)
{
    hi::ModelIr v1 = mlpModel(10, 5, 3);
    hi::ModelIr v2 = mlpModel(20, 5, 3);
    hr::ModelRegistry registry;
    registry.load("m", v1);
    registry.load("m", v2);
    hm::Matrix x = featureRows(99, 200, 5);

    std::shared_ptr<const hr::ModelEpoch> pinned = registry.active("m");
    registry.swap("m", 2);

    // The pin still executes exactly the v1 plan it started with,
    // while fresh lookups get v2 — there is no in-between state.
    EXPECT_EQ(pinned->version, 1u);
    EXPECT_EQ(pinned->engine.run(x),
              hr::InferenceEngine::fromModel(v1, {}).run(x));
    EXPECT_EQ(registry.active("m")->version, 2u);
    EXPECT_EQ(registry.active("m")->engine.run(x),
              hr::InferenceEngine::fromModel(v2, {}).run(x));
}

TEST(ModelRegistry, UnloadRefusesActiveAndPinsKeepEpochsAlive)
{
    hi::ModelIr v2 = mlpModel(2, 4, 3);
    hr::ModelRegistry registry;
    registry.load("m", mlpModel(1, 4, 3));
    registry.load("m", v2);

    EXPECT_THROW(registry.unload("m", 1), std::invalid_argument);

    // Force-unload the idle v2 while a pin holds it: the table entry
    // disappears immediately, the epoch itself lives on under the pin.
    std::shared_ptr<const hr::ModelEpoch> pinned =
        registry.version("m", 2);
    ASSERT_NE(pinned, nullptr);
    EXPECT_TRUE(registry.unload("m", 2));
    EXPECT_EQ(registry.version("m", 2), nullptr);
    EXPECT_FALSE(registry.unload("m", 2));  // already gone.
    EXPECT_FALSE(registry.unload("nope", 1));

    hm::Matrix x = featureRows(7, 64, 4);
    EXPECT_EQ(pinned->engine.run(x),
              hr::InferenceEngine::fromModel(v2, {}).run(x));
}

TEST(ModelRegistry, UnloadIdleSkipsPinnedVersionsUntilReleased)
{
    hr::ModelRegistry registry;
    registry.load("m", mlpModel(1, 4, 3));
    registry.load("m", mlpModel(2, 4, 3));
    registry.swap("m", 2);

    std::shared_ptr<const hr::ModelEpoch> pinned =
        registry.version("m", 1);
    // v1 is retired but pinned; v2 is active: nothing to collect yet.
    EXPECT_EQ(registry.unloadIdle("m"), 0u);
    EXPECT_NE(registry.version("m", 1), nullptr);

    pinned.reset();
    EXPECT_EQ(registry.unloadIdle("m"), 1u);
    EXPECT_EQ(registry.version("m", 1), nullptr);
    EXPECT_EQ(registry.versions("m"),
              (std::vector<std::uint64_t>{2}));
    EXPECT_EQ(registry.unloadIdle("nope"), 0u);
}

TEST(ModelRegistry, SwapUnderConcurrentLookupsServesOneVersionPerPin)
{
    hi::ModelIr v1 = mlpModel(11, 5, 3);
    hi::ModelIr v2 = mlpModel(22, 5, 3);
    auto registry = std::make_shared<hr::ModelRegistry>();
    registry->load("m", v1);
    registry->load("m", v2);
    hm::Matrix x = featureRows(5, 64, 5);
    std::vector<int> ref1 = hr::InferenceEngine::fromModel(v1, {}).run(x);
    std::vector<int> ref2 = hr::InferenceEngine::fromModel(v2, {}).run(x);
    ASSERT_NE(ref1, ref2);  // the versions are distinguishable.

    // One thread flips the active version continuously; the consumer
    // pins and executes. Every pinned batch must match the reference
    // of exactly the version it pinned — never a mix, never a torn
    // plan. (This is the handoff TSAN watches.)
    std::atomic<bool> stop{false};
    std::thread swapper([&] {
        std::uint64_t next = 2;
        while (!stop.load()) {
            registry->swap("m", next);
            next = next == 2 ? 1 : 2;
        }
    });
    // At least 300 pinned batches, and keep pinning (bounded by wall
    // clock, yielding) until both versions were observed — on a
    // single-core host the consumer can otherwise outrun the swapper's
    // first scheduling slice entirely.
    std::set<std::uint64_t> seen;
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (int i = 0;
         i < 300 || (seen.size() < 2 &&
                     std::chrono::steady_clock::now() < deadline);
         ++i) {
        std::shared_ptr<const hr::ModelEpoch> epoch =
            registry->active("m");
        seen.insert(epoch->version);
        EXPECT_EQ(epoch->engine.run(x),
                  epoch->version == 1 ? ref1 : ref2);
        if (seen.size() < 2)
            std::this_thread::yield();
    }
    stop.store(true);
    swapper.join();
    EXPECT_EQ(seen, (std::set<std::uint64_t>{1, 2}));
}

// ------------------------------------------------------------------ Router

TEST(Router, ValidatesSpecAgainstRegistry)
{
    auto registry = std::make_shared<hr::ModelRegistry>();
    registry->load("a", mlpModel(1, 4, 3));
    registry->load("b", mlpModel(2, 4, 3));
    registry->load("wide", mlpModel(3, 5, 3));

    auto make = [&](hr::RouteConfig config) {
        return hr::Router(registry, std::move(config));
    };
    hr::RouteConfig ok;
    ok.defaultModel = "a";
    ok.laneModels = {"", "b"};
    ok.chain = {{"a", 1, "b"}};
    EXPECT_NO_THROW(make(ok));

    EXPECT_THROW(hr::Router(nullptr, ok), std::runtime_error);
    hr::RouteConfig bad = ok;
    bad.defaultModel = "";
    EXPECT_THROW(make(bad), std::runtime_error);
    bad = ok;
    bad.laneModels = {"a", "nope"};
    EXPECT_THROW(make(bad), std::runtime_error);
    bad = ok;
    bad.laneModels = {"a", "wide"};  // schema mismatch.
    EXPECT_THROW(make(bad), std::runtime_error);
    bad = ok;
    bad.chain = {{"a", 3, "b"}};  // label outside a's 3 classes.
    EXPECT_THROW(make(bad), std::runtime_error);
    bad = ok;
    bad.chain = {{"a", 1, "b"}, {"a", 1, "a"}};  // duplicate rule.
    EXPECT_THROW(make(bad), std::runtime_error);
    bad = ok;
    bad.maxChainDepth = 0;
    EXPECT_THROW(make(bad), std::runtime_error);

    hr::Router router = make(ok);
    EXPECT_EQ(router.inputDim(), 4u);
    EXPECT_EQ(router.models(), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(router.modelForLane(0), "a");   // empty binding.
    EXPECT_EQ(router.modelForLane(1), "b");
    EXPECT_EQ(router.modelForLane(9), "a");   // past the list.
}

TEST(Router, ChainsRowsByLabelWithTracesAgainstAManualReference)
{
    hi::ModelIr front_ir = mlpModel(5, 4, 3);
    hi::ModelIr deep_ir = mlpModel(6, 4, 3);
    auto registry = std::make_shared<hr::ModelRegistry>();
    registry->load("front", front_ir);
    registry->load("deep", deep_ir);

    hm::Matrix x = featureRows(77, 128, 4);
    hr::InferenceEngine front_ref =
        hr::InferenceEngine::fromModel(front_ir, {});
    hr::InferenceEngine deep_ref =
        hr::InferenceEngine::fromModel(deep_ir, {});
    std::vector<int> front_labels = front_ref.run(x);
    // Chain on a label the front model actually emits for these rows.
    int hot = front_labels.front();

    hr::RouteConfig route;
    route.defaultModel = "front";
    route.chain = {{"front", hot, "deep"}};
    hr::Router router(registry, route);

    std::vector<hr::Request> requests = requestsFrom(x);
    std::vector<int> labels;
    std::vector<hr::RouteTrace> traces;
    std::vector<hr::RouteStepStats> steps;
    hr::Router::Scratch scratch;
    router.runBatch(router.snapshot(), /*lane=*/0, requests.data(),
                    requests.size(), labels, &traces, steps, scratch);

    ASSERT_EQ(labels.size(), x.rows());
    ASSERT_EQ(traces.size(), x.rows());
    std::size_t chained = 0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        std::vector<double> row = x.row(r);
        if (front_labels[r] == hot) {
            // front said `hot` -> the deep model owns the verdict.
            ++chained;
            EXPECT_EQ(labels[r],
                      deep_ref.plan().runRow(row.data(), row.size()));
            ASSERT_EQ(traces[r].hops.size(), 2u);
            EXPECT_EQ(traces[r].hops[0].model, "front");
            EXPECT_EQ(traces[r].hops[0].label, hot);
            EXPECT_EQ(traces[r].hops[1].model, "deep");
            EXPECT_EQ(traces[r].hops[1].label, labels[r]);
        } else {
            EXPECT_EQ(labels[r], front_labels[r]);
            ASSERT_EQ(traces[r].hops.size(), 1u);
            EXPECT_EQ(traces[r].hops[0].model, "front");
        }
        for (const hr::RouteHop &hop : traces[r].hops)
            EXPECT_EQ(hop.version, 1u);
    }
    ASSERT_GT(chained, 0u);

    // Step accounting: one front execution over every row, one deep
    // execution over exactly the chained rows.
    ASSERT_EQ(steps.size(), 2u);
    EXPECT_EQ(steps[0].model, 0u);
    EXPECT_EQ(steps[0].rows, x.rows());
    EXPECT_EQ(steps[1].model, 1u);
    EXPECT_EQ(steps[1].rows, chained);
}

TEST(Router, MaxChainDepthBoundsRuleCycles)
{
    hi::ModelIr ir = mlpModel(5, 4, 3);
    auto registry = std::make_shared<hr::ModelRegistry>();
    registry->load("m", ir);
    hm::Matrix x = featureRows(77, 32, 4);
    std::vector<int> ref = hr::InferenceEngine::fromModel(ir, {}).run(x);
    int hot = ref.front();

    // A self-loop rule: without the depth cap a `hot`-labeled row
    // would re-enter the same deterministic model forever.
    hr::RouteConfig route;
    route.defaultModel = "m";
    route.chain = {{"m", hot, "m"}};
    route.maxChainDepth = 3;
    hr::Router router(registry, route);

    std::vector<hr::Request> requests = requestsFrom(x);
    std::vector<int> labels;
    std::vector<hr::RouteTrace> traces;
    std::vector<hr::RouteStepStats> steps;
    hr::Router::Scratch scratch;
    router.runBatch(router.snapshot(), 0, requests.data(),
                    requests.size(), labels, &traces, steps, scratch);

    for (std::size_t r = 0; r < x.rows(); ++r) {
        EXPECT_EQ(labels[r], ref[r]);  // re-running can't change it.
        EXPECT_EQ(traces[r].hops.size(),
                  ref[r] == hot ? 3u : 1u);
    }
}

// ----------------------------------------------------- routed Server

TEST(ServerRouting, LaneBindingsAttributePerModelStats)
{
    hi::ModelIr a_ir = mlpModel(31, 4, 3);
    hi::ModelIr b_ir = mlpModel(32, 4, 3);
    auto registry = std::make_shared<hr::ModelRegistry>();
    registry->load("a", a_ir);
    registry->load("b", b_ir);

    hr::RouteConfig route;
    route.defaultModel = "a";
    route.laneModels = {"a", "b"};

    hr::ServerConfig config;
    config.queue.maxBatch = 32;
    config.queue.maxDelayUs = 200;
    config.extraLanes = {config.queue};

    std::mutex verdict_mutex;
    std::map<std::uint64_t, int> verdicts;
    std::map<std::uint64_t, std::size_t> request_lane;
    hr::Server server(registry, route, config,
                      [&](const hr::Request &request, int verdict) {
                          std::lock_guard<std::mutex> lock(verdict_mutex);
                          verdicts[request.id] = verdict;
                          request_lane[request.id] = request.lane;
                      });

    hm::Matrix x0 = featureRows(41, 150, 4);
    hm::Matrix x1 = featureRows(42, 90, 4);
    std::map<std::uint64_t, std::size_t> ticket_row0, ticket_row1;
    for (std::size_t r = 0; r < x0.rows(); ++r)
        ticket_row0[server.submit(x0.row(r), 0).ticket] = r;
    for (std::size_t r = 0; r < x1.rows(); ++r)
        ticket_row1[server.submit(x1.row(r), 1).ticket] = r;
    hr::ServerStats stats = server.stop();

    // Lane→model attribution: every lane-0 row ran (only) model a,
    // every lane-1 row ran model b.
    ASSERT_EQ(stats.models.size(), 2u);
    EXPECT_EQ(stats.models[0].name, "a");
    EXPECT_EQ(stats.models[0].rowsServed, x0.rows());
    EXPECT_EQ(stats.models[0].activeVersion, 1u);
    EXPECT_GT(stats.models[0].batches, 0u);
    EXPECT_EQ(stats.models[1].name, "b");
    EXPECT_EQ(stats.models[1].rowsServed, x1.rows());
    ASSERT_EQ(stats.lanes.size(), 2u);
    EXPECT_EQ(stats.lanes[0].rowsServed, x0.rows());
    EXPECT_EQ(stats.lanes[1].rowsServed, x1.rows());

    // And the verdicts are each lane's own model, bit-identical to a
    // single-threaded run.
    std::vector<int> ref0 = hr::InferenceEngine::fromModel(a_ir, {}).run(x0);
    std::vector<int> ref1 = hr::InferenceEngine::fromModel(b_ir, {}).run(x1);
    ASSERT_EQ(verdicts.size(), x0.rows() + x1.rows());
    for (const auto &[ticket, row] : ticket_row0) {
        EXPECT_EQ(verdicts.at(ticket), ref0[row]);
        EXPECT_EQ(request_lane.at(ticket), 0u);
    }
    for (const auto &[ticket, row] : ticket_row1)
        EXPECT_EQ(verdicts.at(ticket), ref1[row]);
}

TEST(ServerRouting, HotSwapUnderLoadKeepsEveryBatchOnItsPinnedVersion)
{
    hi::ModelIr front_v1 = mlpModel(51, 4, 3);
    hi::ModelIr front_v2 = mlpModel(52, 4, 3);
    hi::ModelIr deep_ir = mlpModel(53, 4, 3);
    auto registry = std::make_shared<hr::ModelRegistry>();
    registry->load("front", front_v1);
    registry->load("front", front_v2);
    registry->load("deep", deep_ir);

    hr::RouteConfig route;
    route.defaultModel = "front";
    route.chain = {{"front", 1, "deep"}};

    hr::ServerConfig config;
    config.queue.maxBatch = 64;
    config.queue.maxDelayUs = 200;

    // Capture the raw features and full route trace of every request;
    // the verdict exactness check replays each hop single-threaded
    // through the exact plan version the trace says executed it.
    struct Observed
    {
        std::vector<double> features;
        hr::RouteTrace trace;
    };
    std::mutex trace_mutex;
    std::vector<Observed> observed;
    hr::Server server(
        registry, route, config, {},
        [&](const hr::Request &request, const hr::RouteTrace &trace) {
            std::lock_guard<std::mutex> lock(trace_mutex);
            observed.push_back({request.features, trace});
        });

    hm::Matrix x = featureRows(404, 2000, 4);
    for (std::size_t r = 0; r < 1000; ++r)
        server.submit(x.row(r));
    // Let the batcher drain pre-swap rows onto v1-pinned batches, then
    // flip mid-run: later batches pin v2, in-flight ones finish on v1.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    registry->swap("front", 2);
    for (std::size_t r = 1000; r < x.rows(); ++r)
        server.submit(x.row(r));
    hr::ServerStats stats = server.stop();
    EXPECT_EQ(stats.rowsServed, x.rows());

    std::set<std::uint64_t> front_versions;
    std::lock_guard<std::mutex> lock(trace_mutex);
    ASSERT_EQ(observed.size(), x.rows());
    for (const Observed &entry : observed) {
        ASSERT_FALSE(entry.trace.hops.empty());
        for (const hr::RouteHop &hop : entry.trace.hops) {
            if (hop.model == "front")
                front_versions.insert(hop.version);
            std::shared_ptr<const hr::ModelEpoch> epoch =
                registry->version(hop.model, hop.version);
            ASSERT_NE(epoch, nullptr);
            EXPECT_EQ(hop.label,
                      epoch->engine.plan().runRow(
                          entry.features.data(), entry.features.size()));
        }
    }
    // The swap actually landed mid-run: batches executed both front
    // versions, each bit-identically to its own pinned plan.
    EXPECT_EQ(front_versions, (std::set<std::uint64_t>{1, 2}));
}
