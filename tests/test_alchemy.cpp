/**
 * @file
 * Tests for the Alchemy DSL constructs: schedule composition, platform
 * handles, design-space creation, candidate selection, fusion.
 */
#include <gtest/gtest.h>

#include "core/design_space.hpp"
#include "core/fusion.hpp"
#include "core/schedule.hpp"
#include "data/anomaly_generator.hpp"

namespace hcore = homunculus::core;
namespace hb = homunculus::backends;
namespace ml = homunculus::ml;

namespace {

hcore::ModelSpec
spec(const std::string &name)
{
    hcore::ModelSpec s;
    s.name = name;
    return s;
}

}  // namespace

TEST(Schedule, OperatorsBuildExpectedShapes)
{
    auto a = spec("a"), b = spec("b"), c = spec("c"), d = spec("d");

    auto seq = a > b > c > d;
    EXPECT_EQ(seq.kind, hcore::ScheduleNode::Kind::kSequential);
    EXPECT_EQ(seq.modelCount(), 4u);
    EXPECT_EQ(seq.children.size(), 4u);  // flattened chain.

    auto par = a | b | c | d;
    EXPECT_EQ(par.kind, hcore::ScheduleNode::Kind::kParallel);
    EXPECT_EQ(par.children.size(), 4u);

    auto diamond = hcore::leaf(a) > (b | c) > hcore::leaf(d);
    EXPECT_EQ(diamond.modelCount(), 4u);
    EXPECT_EQ(diamond.kind, hcore::ScheduleNode::Kind::kSequential);
}

TEST(Schedule, NotationMatchesPaperSyntax)
{
    auto a = spec("a"), b = spec("b"), c = spec("c");
    auto node = hcore::leaf(a) > (b | c);
    EXPECT_EQ(node.notation(), "(a > (b | c))");
}

TEST(Schedule, LeafSpecsInOrder)
{
    auto a = spec("a"), b = spec("b"), c = spec("c");
    auto node = (a | b) > hcore::leaf(c);
    auto leaves = node.leafSpecs();
    ASSERT_EQ(leaves.size(), 3u);
    EXPECT_EQ(leaves[0]->name, "a");
    EXPECT_EQ(leaves[2]->name, "c");
}

TEST(Schedule, ComposeResourcesSumsAndStrategiesAgree)
{
    auto a = spec("a"), b = spec("b"), c = spec("c"), d = spec("d");
    std::map<std::string, hb::ResourceReport> reports;
    for (const auto &name : {"a", "b", "c", "d"}) {
        hb::ResourceReport report;
        report.computeUnits = 6;
        report.memoryUnits = 6;
        report.latencyNs = 40.0;
        report.throughputGpps = 1.0;
        reports[name] = report;
    }

    auto seq = hcore::composeResources(a > b > c > d, reports);
    auto par = hcore::composeResources(a | b | c | d, reports);
    auto mix =
        hcore::composeResources(hcore::leaf(a) > (b | c) > hcore::leaf(d),
                                reports);

    // Table 3's claim: resource totals are strategy-independent.
    EXPECT_EQ(seq.computeUnits, 24u);
    EXPECT_EQ(par.computeUnits, 24u);
    EXPECT_EQ(mix.computeUnits, 24u);
    EXPECT_EQ(seq.memoryUnits, par.memoryUnits);
    EXPECT_EQ(par.memoryUnits, mix.memoryUnits);

    // Latency composes additively / max-wise.
    EXPECT_DOUBLE_EQ(seq.latencyNs, 160.0);
    EXPECT_DOUBLE_EQ(par.latencyNs, 40.0);
    EXPECT_DOUBLE_EQ(mix.latencyNs, 120.0);

    // Throughput is min across members (paper §3.2.1).
    EXPECT_DOUBLE_EQ(seq.throughputGpps, 1.0);
}

TEST(Schedule, ComposeMissingReportThrows)
{
    auto a = spec("a"), b = spec("b");
    std::map<std::string, hb::ResourceReport> reports;
    reports["a"] = {};
    EXPECT_THROW(hcore::composeResources(a > b, reports),
                 std::runtime_error);
}

TEST(Alchemy, IoMapVariants)
{
    auto identity = hcore::IoMap::identity();
    std::vector<double> features = {1.0, 2.0};
    EXPECT_EQ(identity.mapper(features, 1), features);

    auto append = hcore::IoMap::appendLabel();
    auto mapped = append.mapper(features, 3);
    ASSERT_EQ(mapped.size(), 3u);
    EXPECT_DOUBLE_EQ(mapped[2], 3.0);
}

TEST(Alchemy, PlatformHandleConstrainReshapesTaurus)
{
    auto handle = hcore::Platforms::taurus();
    handle.constrain({2.0, 300.0}, {8, 8, {}});
    const auto *taurus = dynamic_cast<const hb::TaurusPlatform *>(
        &handle.platform());
    ASSERT_NE(taurus, nullptr);
    EXPECT_EQ(taurus->config().gridRows, 8u);
    EXPECT_DOUBLE_EQ(handle.platform().constraints().minThroughputGpps, 2.0);
    EXPECT_DOUBLE_EQ(handle.platform().constraints().maxLatencyNs, 300.0);
}

TEST(Alchemy, PlatformHandleConstrainReshapesMat)
{
    auto handle = hcore::Platforms::tofino();
    handle.constrain({1.0, 600.0}, {{}, {}, 5});
    const auto *mat =
        dynamic_cast<const hb::MatPlatform *>(&handle.platform());
    ASSERT_NE(mat, nullptr);
    EXPECT_EQ(mat->config().numTables, 5u);
}

TEST(Alchemy, ConstrainCapsMatEntriesBudget)
{
    auto handle = hcore::Platforms::tofino();
    hcore::ResourceBudget budget;
    budget.matTables = 6;
    budget.matEntriesPerTable = 128;
    handle.constrain({1.0, 600.0}, budget);
    const auto *mat =
        dynamic_cast<const hb::MatPlatform *>(&handle.platform());
    ASSERT_NE(mat, nullptr);
    EXPECT_EQ(mat->config().numTables, 6u);
    EXPECT_EQ(mat->config().entriesPerTable, 128u);
    EXPECT_DOUBLE_EQ(handle.platform().constraints().maxLatencyNs, 600.0);
}

TEST(Alchemy, ConstrainCapsFpgaBudgets)
{
    // Regression: budgets used to reshape only Taurus grids and MAT
    // tables; FPGA caps were silently dropped.
    auto handle = hcore::Platforms::fpga();
    hcore::ResourceBudget budget;
    budget.fpgaLutPercent = 6.0;
    budget.fpgaFfPercent = 8.0;
    budget.fpgaPowerWatts = 40.0;
    handle.constrain(handle.platform().constraints(), budget);

    const auto *fpga =
        dynamic_cast<const hb::FpgaPlatform *>(&handle.platform());
    ASSERT_NE(fpga, nullptr);
    EXPECT_DOUBLE_EQ(fpga->config().lutBudgetPercent, 6.0);
    EXPECT_DOUBLE_EQ(fpga->config().ffBudgetPercent, 8.0);
    EXPECT_DOUBLE_EQ(fpga->config().powerBudgetWatts, 40.0);

    // A model whose LUT usage exceeds the 6% cap must now be rejected
    // even though it fits the physical device with room to spare.
    homunculus::ir::ModelIr ir;
    ir.kind = homunculus::ir::ModelKind::kMlp;
    ir.inputDim = 20;
    homunculus::ir::QuantizedLayer layer;
    layer.inputDim = 20;
    layer.outputDim = 20;
    layer.weights.assign(400, 1);
    layer.biases.assign(20, 1);
    ir.layers.push_back(layer);

    auto capped = fpga->estimate(ir);
    EXPECT_FALSE(capped.feasible);
    EXPECT_NE(capped.infeasibleReason.find("budget"), std::string::npos);

    auto uncapped = hcore::Platforms::fpga();
    auto report = uncapped.platform().estimate(ir);
    EXPECT_TRUE(report.feasible);
}

TEST(Alchemy, ConstrainIgnoresIrrelevantBudgetFields)
{
    // A MAT/FPGA budget on a Taurus handle leaves the platform instance
    // untouched (no rebuild) while still applying the perf envelope.
    auto handle = hcore::Platforms::taurus();
    const auto *before = &handle.platform();
    hcore::ResourceBudget budget;
    budget.matTables = 4;
    budget.fpgaLutPercent = 10.0;
    handle.constrain({2.0, 250.0}, budget);
    EXPECT_EQ(&handle.platform(), before);
    EXPECT_DOUBLE_EQ(handle.platform().constraints().minThroughputGpps,
                     2.0);
}

TEST(Alchemy, NamesRoundTrip)
{
    for (auto algorithm : hcore::allAlgorithms())
        EXPECT_FALSE(hcore::algorithmName(algorithm).empty());
    EXPECT_EQ(hcore::metricName(hcore::Metric::kVMeasure), "v_measure");
}

TEST(DesignSpace, DnnSpaceScalesWithSpecBounds)
{
    auto handle = hcore::Platforms::taurus();
    hcore::ModelSpec s = spec("m");
    s.maxHiddenLayers = 3;
    s.maxNeuronsPerLayer = 16;
    auto space = hcore::buildDesignSpace(hcore::Algorithm::kDnn, s,
                                         handle.platform());
    // num_layers + 3 widths + lr + batch + activation.
    EXPECT_EQ(space.size(), 1u + 3u + 3u);
    EXPECT_NE(space.find("width_2"), nullptr);
    EXPECT_EQ(space.find("width_3"), nullptr);
}

TEST(DesignSpace, KMeansClusterBoundCappedByMatBudget)
{
    hb::MatConfig config;
    config.numTables = 3;
    auto handle = hcore::Platforms::tofino(config);
    auto space = hcore::buildDesignSpace(hcore::Algorithm::kKMeans,
                                         spec("m"), handle.platform());
    const auto *param = space.find("num_clusters");
    ASSERT_NE(param, nullptr);
    const auto &domain = std::get<homunculus::opt::IntDomain>(param->domain);
    EXPECT_EQ(domain.hi, 3);
}

TEST(Candidates, MatTargetPrunesDnn)
{
    auto handle = hcore::Platforms::tofino();
    auto candidates =
        hcore::selectCandidates(spec("m"), handle.platform(), 7, 2);
    for (auto algorithm : candidates)
        EXPECT_NE(algorithm, hcore::Algorithm::kDnn);
    EXPECT_FALSE(candidates.empty());
}

TEST(Candidates, TaurusKeepsEveryFamily)
{
    auto handle = hcore::Platforms::taurus();
    auto candidates =
        hcore::selectCandidates(spec("m"), handle.platform(), 7, 2);
    EXPECT_EQ(candidates.size(), hcore::allAlgorithms().size());
}

TEST(Candidates, SpecPoolIsRespected)
{
    auto handle = hcore::Platforms::taurus();
    hcore::ModelSpec s = spec("m");
    s.algorithms = {hcore::Algorithm::kSvm};
    auto candidates =
        hcore::selectCandidates(s, handle.platform(), 7, 2);
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_EQ(candidates[0], hcore::Algorithm::kSvm);
}

TEST(Fusion, OverlapAssessment)
{
    ml::Dataset a, b;
    a.featureNames = {"x", "y", "z"};
    b.featureNames = {"y", "z", "w"};
    auto overlap = hcore::assessFeatureOverlap(a, b);
    EXPECT_EQ(overlap.shared.size(), 2u);
    EXPECT_NEAR(overlap.fraction, 0.5, 1e-12);
    EXPECT_FALSE(hcore::shouldFuse(a, b));

    b.featureNames = {"x", "y", "z"};
    EXPECT_TRUE(hcore::shouldFuse(a, b));
}

TEST(Fusion, HalveAndFuseRoundTrip)
{
    homunculus::data::AnomalyConfig config;
    config.numSamples = 400;
    auto full = homunculus::data::generateAnomalySplit(config);
    auto [part1, part2] = hcore::halveSplit(full, 5);
    EXPECT_NEAR(static_cast<double>(part1.train.numSamples()),
                static_cast<double>(part2.train.numSamples()), 1.0);

    auto fused = hcore::fuseSplits(part1, part2);
    EXPECT_EQ(fused.train.numSamples(), full.train.numSamples());
    EXPECT_EQ(fused.test.numSamples(), full.test.numSamples());
}
