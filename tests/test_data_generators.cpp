/**
 * @file
 * Unit tests for the synthetic dataset generators, flowmarkers, loaders.
 */
#include <gtest/gtest.h>

#include "data/anomaly_generator.hpp"
#include "data/flowmarker.hpp"
#include "data/iot_traffic_generator.hpp"
#include "data/loaders.hpp"
#include "data/p2p_traces.hpp"
#include "math/stats.hpp"

namespace hd = homunculus::data;
namespace ml = homunculus::ml;

TEST(AnomalyGenerator, ShapesAndLabels)
{
    hd::AnomalyConfig config;
    config.numSamples = 500;
    auto data = hd::generateAnomalyDataset(config);
    EXPECT_EQ(data.numSamples(), 500u);
    EXPECT_EQ(data.numFeatures(), 7u);
    EXPECT_EQ(data.numClasses, 2);
    EXPECT_NO_THROW(data.validate());
    // Both classes present, malicious share near the configured fraction.
    double frac = static_cast<double>(data.countLabel(1)) / 500.0;
    EXPECT_NEAR(frac, config.maliciousFraction, 0.1);
}

TEST(AnomalyGenerator, DeterministicInSeed)
{
    hd::AnomalyConfig config;
    config.numSamples = 100;
    auto a = hd::generateAnomalyDataset(config);
    auto b = hd::generateAnomalyDataset(config);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.x(i, 0), b.x(i, 0));
}

TEST(AnomalyGenerator, ClassesAreSeparableButNotTrivially)
{
    hd::AnomalyConfig config;
    config.numSamples = 2000;
    auto data = hd::generateAnomalyDataset(config);
    // serror_rate (feature 5) should be higher for malicious on average —
    // the DoS component guarantees a signal.
    double benign_sum = 0, mal_sum = 0;
    std::size_t benign_n = 0, mal_n = 0;
    for (std::size_t i = 0; i < data.numSamples(); ++i) {
        if (data.y[i] == 0) {
            benign_sum += data.x(i, 5);
            ++benign_n;
        } else {
            mal_sum += data.x(i, 5);
            ++mal_n;
        }
    }
    EXPECT_GT(mal_sum / static_cast<double>(mal_n),
              benign_sum / static_cast<double>(benign_n));
}

TEST(AnomalyGenerator, SplitIsStandardized)
{
    hd::AnomalyConfig config;
    config.numSamples = 800;
    auto split = hd::generateAnomalySplit(config);
    auto col = split.train.x.col(1);
    EXPECT_NEAR(homunculus::math::mean(col), 0.0, 1e-6);
    EXPECT_NEAR(homunculus::math::stddev(col), 1.0, 1e-6);
}

TEST(IotGenerator, ShapesAndClassRange)
{
    hd::IotTrafficConfig config;
    config.numSamples = 600;
    config.numDeviceClasses = 5;
    auto data = hd::generateIotTrafficDataset(config);
    EXPECT_EQ(data.numFeatures(), 7u);
    EXPECT_EQ(data.numClasses, 5);
    EXPECT_NO_THROW(data.validate());
    auto counts = data.classCounts();
    for (auto c : counts)
        EXPECT_GT(c, 60u);  // roughly balanced.
}

TEST(IotGenerator, RejectsBadClassCounts)
{
    hd::IotTrafficConfig config;
    config.numDeviceClasses = 1;
    EXPECT_THROW(hd::generateIotTrafficDataset(config), std::runtime_error);
    config.numDeviceClasses = 9;
    EXPECT_THROW(hd::generateIotTrafficDataset(config), std::runtime_error);
}

TEST(IotGenerator, CameraPacketsLargerThanSensor)
{
    hd::IotTrafficConfig config;
    config.numSamples = 2000;
    auto data = hd::generateIotTrafficDataset(config);
    double camera_sum = 0, sensor_sum = 0;
    std::size_t camera_n = 0, sensor_n = 0;
    for (std::size_t i = 0; i < data.numSamples(); ++i) {
        if (data.y[i] == 0) {
            camera_sum += data.x(i, 0);
            ++camera_n;
        } else if (data.y[i] == 1) {
            sensor_sum += data.x(i, 0);
            ++sensor_n;
        }
    }
    EXPECT_GT(camera_sum / static_cast<double>(camera_n),
              sensor_sum / static_cast<double>(sensor_n));
}

TEST(P2pTraces, FlowPropertiesMatchArchetypes)
{
    hd::P2pTraceConfig config;
    config.numFlows = 200;
    auto flows = hd::generateP2pFlows(config);
    EXPECT_EQ(flows.size(), 200u);

    double botnet_pkts = 0, benign_pkts = 0;
    double botnet_dur = 0, benign_dur = 0;
    std::size_t botnet_n = 0, benign_n = 0;
    for (const auto &flow : flows) {
        EXPECT_FALSE(flow.packets.empty());
        // Timestamps sorted.
        for (std::size_t i = 1; i < flow.packets.size(); ++i)
            EXPECT_GE(flow.packets[i].timestampSec,
                      flow.packets[i - 1].timestampSec);
        if (flow.botnet) {
            botnet_pkts += static_cast<double>(flow.packets.size());
            botnet_dur += flow.durationSec();
            ++botnet_n;
        } else {
            benign_pkts += static_cast<double>(flow.packets.size());
            benign_dur += flow.durationSec();
            ++benign_n;
        }
    }
    ASSERT_GT(botnet_n, 0u);
    ASSERT_GT(benign_n, 0u);
    // Botnet: low volume, high duration (the PeerRush signature).
    EXPECT_LT(botnet_pkts / botnet_n, benign_pkts / benign_n);
    EXPECT_GT(botnet_dur / botnet_n, benign_dur / benign_n);
}

TEST(FlowMarker, BinningAndTotals)
{
    hd::Flow flow;
    flow.botnet = false;
    flow.packets = {{0.0, 100.0}, {600.0, 100.0}, {601.0, 1400.0}};
    hd::FlowMarkerConfig config;  // 23 PL x 64B, 7 IPT x 512s.
    auto marker = hd::computeFlowMarker(flow, config);
    ASSERT_EQ(marker.size(), 30u);
    // PL: two packets in bin 1 (64..128), one in bin 21 (1344..1408).
    EXPECT_DOUBLE_EQ(marker[1], 2.0);
    EXPECT_DOUBLE_EQ(marker[21], 1.0);
    // IPT: gap 600s -> bin 1; gap 1s -> bin 0.
    EXPECT_DOUBLE_EQ(marker[23 + 1], 1.0);
    EXPECT_DOUBLE_EQ(marker[23 + 0], 1.0);
}

TEST(FlowMarker, PartialPrefixMonotone)
{
    hd::P2pTraceConfig config;
    config.numFlows = 10;
    auto flows = hd::generateP2pFlows(config);
    hd::FlowMarkerConfig marker_config;
    for (const auto &flow : flows) {
        auto partial = hd::computeFlowMarker(flow, marker_config, 3);
        auto full = hd::computeFlowMarker(flow, marker_config);
        double partial_total = 0, full_total = 0;
        for (std::size_t b = 0; b < marker_config.plBins; ++b) {
            partial_total += partial[b];
            full_total += full[b];
            EXPECT_LE(partial[b], full[b]);
        }
        EXPECT_LE(partial_total,
                  std::min<double>(3.0, full_total) + 1e-9);
    }
}

TEST(FlowMarker, CompressedSchemeIsFiveTimesSmaller)
{
    auto original = hd::flowLensOriginalConfig();
    auto compressed = hd::homunculusCompressedConfig();
    EXPECT_EQ(original.totalBins(), 151u);
    EXPECT_EQ(compressed.totalBins(), 30u);
    EXPECT_GE(original.totalBins() / compressed.totalBins(), 5u);
}

TEST(FlowMarker, DatasetBuildersProduceLabeledRows)
{
    hd::P2pTraceConfig config;
    config.numFlows = 40;
    auto flows = hd::generateP2pFlows(config);
    auto marker_config = hd::homunculusCompressedConfig();

    auto flow_level = hd::buildFlowLevelDataset(flows, marker_config);
    EXPECT_EQ(flow_level.numSamples(), 40u);
    EXPECT_EQ(flow_level.numFeatures(), 30u);
    EXPECT_NO_THROW(flow_level.validate());

    auto per_packet = hd::buildPerPacketDataset(flows, marker_config, 5);
    EXPECT_GT(per_packet.numSamples(), flow_level.numSamples());
    EXPECT_NO_THROW(per_packet.validate());
}

TEST(FlowMarker, ClassHistogramsDiverge)
{
    hd::P2pTraceConfig config;
    config.numFlows = 300;
    auto flows = hd::generateP2pFlows(config);
    auto histograms =
        hd::averageClassHistograms(flows, hd::homunculusCompressedConfig());

    // Figure 6's observation: benign P2P has far more large packets
    // (heavy tail) while botnet mass concentrates in small-size bins.
    double benign_tail = 0, botnet_tail = 0;
    for (std::size_t b = 10; b < histograms.benignPl.size(); ++b) {
        benign_tail += histograms.benignPl[b];
        botnet_tail += histograms.botnetPl[b];
    }
    EXPECT_GT(benign_tail, botnet_tail);

    // Botnet inter-arrival mass does NOT all sit in the first bin.
    double botnet_late_ipt = 0;
    for (std::size_t b = 1; b < histograms.botnetIpt.size(); ++b)
        botnet_late_ipt += histograms.botnetIpt[b];
    EXPECT_GT(botnet_late_ipt, 0.0);
}

TEST(Loaders, CsvDatasetRoundTrip)
{
    ml::Dataset data;
    data.x = homunculus::math::Matrix::fromRows({{1.5, 2.0}, {3.0, -1.0}});
    data.y = {0, 1};
    data.numClasses = 2;
    data.featureNames = {"f0", "f1"};

    std::string csv = hd::datasetToCsv(data);
    auto parsed = hd::datasetFromCsv(csv, /*has_header=*/true);
    EXPECT_EQ(parsed.numSamples(), 2u);
    EXPECT_EQ(parsed.numClasses, 2);
    EXPECT_DOUBLE_EQ(parsed.x(1, 1), -1.0);
    EXPECT_EQ(parsed.y[1], 1);
    EXPECT_EQ(parsed.featureNames, data.featureNames);
}

TEST(Loaders, RejectsFractionalLabels)
{
    EXPECT_THROW(hd::datasetFromCsv("1.0,0.5\n", false), std::runtime_error);
}

TEST(Loaders, RejectsTooNarrowTables)
{
    EXPECT_THROW(hd::datasetFromCsv("1\n2\n", false), std::runtime_error);
}
