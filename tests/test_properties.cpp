/**
 * @file
 * Parameterized property suites (TEST_P sweeps) over framework-wide
 * invariants: backend simulators agree with the reference executor for
 * random models, resource models are monotone, quantization error decays
 * with precision, and schedule composition is permutation-invariant.
 */
#include <gtest/gtest.h>

#include "backends/mat_platform.hpp"
#include "backends/taurus.hpp"
#include "common/rng.hpp"
#include "core/schedule.hpp"
#include "ir/model_ir.hpp"
#include "ml/metrics.hpp"

namespace hb = homunculus::backends;
namespace hi = homunculus::ir;
namespace ml = homunculus::ml;
namespace hm = homunculus::math;
namespace hc = homunculus::common;
namespace hcore = homunculus::core;

// ---------------------------------------------------------------------
// Property: for ANY random MLP shape, the Taurus simulator must agree
// with the reference fixed-point executor, and the mapping cost must be
// monotone under layer widening.
// ---------------------------------------------------------------------

struct MlpShape
{
    std::size_t inputDim;
    std::vector<std::size_t> hidden;
    int classes;
};

class MlpShapeProperty : public ::testing::TestWithParam<MlpShape>
{
};

TEST_P(MlpShapeProperty, SimulatorAgreesWithReferenceExecutor)
{
    const MlpShape &shape = GetParam();
    ml::MlpConfig config;
    config.inputDim = shape.inputDim;
    config.hiddenLayers = shape.hidden;
    config.numClasses = shape.classes;
    config.seed = 13 * shape.inputDim + shape.hidden.size();
    ml::Mlp mlp(config);
    auto ir = hi::lowerMlp(mlp, hc::FixedPointFormat::q88(), "prop");

    hc::Rng rng(shape.inputDim * 101);
    hm::Matrix x(25, shape.inputDim);
    for (double &v : x.data())
        v = rng.gaussian(0, 1.5);

    hb::TaurusPlatform platform;
    EXPECT_EQ(platform.evaluate(ir, x), hi::executeIrBatch(ir, x));
}

TEST_P(MlpShapeProperty, WideningEveryLayerNeverReducesResources)
{
    const MlpShape &shape = GetParam();
    auto build = [&](std::size_t extra) {
        ml::MlpConfig config;
        config.inputDim = shape.inputDim;
        for (std::size_t h : shape.hidden)
            config.hiddenLayers.push_back(h + extra);
        config.numClasses = shape.classes;
        ml::Mlp mlp(config);
        return hi::lowerMlp(mlp, hc::FixedPointFormat::q88(), "prop");
    };
    hb::TaurusConfig config;
    auto base = taurusMappingCost(config, build(0));
    auto wide = taurusMappingCost(config, build(8));
    EXPECT_GE(wide.cus, base.cus);
    EXPECT_GE(wide.mus, base.mus);
    EXPECT_GE(wide.fillCycles, base.fillCycles);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MlpShapeProperty,
    ::testing::Values(MlpShape{3, {4}, 2}, MlpShape{7, {16, 8}, 2},
                      MlpShape{7, {10, 10, 5}, 5},
                      MlpShape{30, {10, 10, 10, 10}, 2},
                      MlpShape{30, {6, 6, 6, 6, 6, 6, 6, 6}, 2},
                      MlpShape{5, {32}, 3}, MlpShape{12, {2, 2}, 2}));

// ---------------------------------------------------------------------
// Property: for ANY cluster count, the MAT pipeline classifies exactly
// like the reference KMeans executor and consumes exactly k tables.
// ---------------------------------------------------------------------

class KMeansMatProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(KMeansMatProperty, PipelineEquivalentAndTableCountExact)
{
    std::size_t k = GetParam();
    hc::Rng rng(k * 7 + 1);
    hm::Matrix x(120, 4);
    for (double &v : x.data())
        v = rng.gaussian(0, 4.0);

    ml::KMeansConfig config;
    config.numClusters = k;
    config.seed = k;
    ml::KMeans kmeans(config);
    kmeans.fit(x);
    auto ir = hi::lowerKMeans(kmeans, hc::FixedPointFormat::q88(), "km", 4);

    auto pipeline = hb::MatPipeline::compileKMeans(ir);
    EXPECT_EQ(pipeline.numTables(), std::max<std::size_t>(k, 2));
    auto reference = hi::executeIrBatch(ir, x);
    for (std::size_t i = 0; i < x.rows(); ++i)
        EXPECT_EQ(pipeline.process(x.row(i)), reference[i]);
}

INSTANTIATE_TEST_SUITE_P(ClusterCounts, KMeansMatProperty,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

// ---------------------------------------------------------------------
// Property: quantization error decreases monotonically with fractional
// bits, for any reasonable weight scale.
// ---------------------------------------------------------------------

class QuantizationProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(QuantizationProperty, ErrorShrinksWithPrecision)
{
    double scale = GetParam();
    hc::Rng rng(static_cast<std::uint64_t>(scale * 1000));
    std::vector<double> weights;
    for (int i = 0; i < 500; ++i)
        weights.push_back(rng.gaussian(0, scale));

    double prev_error = 1e300;
    for (int frac : {2, 4, 6, 8, 10, 12}) {
        hc::FixedPointFormat fmt(8, frac);
        double error = fmt.meanAbsError(weights);
        EXPECT_LE(error, prev_error + 1e-12) << "frac=" << frac;
        prev_error = error;
    }
}

INSTANTIATE_TEST_SUITE_P(WeightScales, QuantizationProperty,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0));

// ---------------------------------------------------------------------
// Property: schedule resource totals are invariant under composition
// strategy and operand order — only latency changes.
// ---------------------------------------------------------------------

class SchedulePermutationProperty
    : public ::testing::TestWithParam<std::size_t>
{
  protected:
    static hcore::ModelSpec spec(const std::string &name)
    {
        hcore::ModelSpec s;
        s.name = name;
        return s;
    }
};

TEST_P(SchedulePermutationProperty, TotalsInvariantAcrossStrategies)
{
    std::size_t n = GetParam();
    std::vector<hcore::ModelSpec> specs;
    std::map<std::string, hb::ResourceReport> reports;
    hc::Rng rng(n);
    for (std::size_t i = 0; i < n; ++i) {
        specs.push_back(spec("m" + std::to_string(i)));
        hb::ResourceReport report;
        report.computeUnits = static_cast<std::size_t>(
            rng.uniformInt(1, 40));
        report.memoryUnits = static_cast<std::size_t>(
            rng.uniformInt(1, 60));
        report.latencyNs = rng.uniform(10, 100);
        report.throughputGpps = 1.0;
        reports[specs.back().name] = report;
    }

    hcore::ScheduleNode seq = hcore::leaf(specs[0]);
    hcore::ScheduleNode par = hcore::leaf(specs[0]);
    for (std::size_t i = 1; i < n; ++i) {
        seq = std::move(seq) > specs[i];
        par = std::move(par) | specs[i];
    }
    auto seq_resources = hcore::composeResources(seq, reports);
    auto par_resources = hcore::composeResources(par, reports);
    EXPECT_EQ(seq_resources.computeUnits, par_resources.computeUnits);
    EXPECT_EQ(seq_resources.memoryUnits, par_resources.memoryUnits);
    EXPECT_GE(seq_resources.latencyNs, par_resources.latencyNs);
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, SchedulePermutationProperty,
                         ::testing::Values(2, 3, 4, 6, 8));

// ---------------------------------------------------------------------
// Property: SVM MAT pipelines approximate the exact model better as the
// bin count grows, across class counts.
// ---------------------------------------------------------------------

class SvmBinningProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(SvmBinningProperty, FinerBinsTrackExactModel)
{
    int classes = GetParam();
    hc::Rng rng(static_cast<std::uint64_t>(classes) * 31);
    ml::Dataset data;
    data.x = hm::Matrix(300, 3);
    data.y.resize(300);
    data.numClasses = classes;
    for (std::size_t i = 0; i < 300; ++i) {
        int label = static_cast<int>(i % static_cast<std::size_t>(classes));
        for (std::size_t f = 0; f < 3; ++f)
            data.x(i, f) = rng.gaussian(1.5 * label, 0.5);
        data.y[i] = label;
    }
    ml::LinearSvm svm(ml::SvmConfig{});
    svm.train(data);
    auto ir = hi::lowerSvm(svm, hc::FixedPointFormat::q88(), "svm", 3);
    auto exact = svm.predict(data.x);

    auto pipeline = hb::MatPipeline::compileSvm(ir, 256);
    std::vector<int> approx(data.numSamples());
    for (std::size_t i = 0; i < data.numSamples(); ++i)
        approx[i] = pipeline.process(data.x.row(i));
    EXPECT_GT(ml::accuracy(exact, approx), 0.85) << classes << " classes";
}

INSTANTIATE_TEST_SUITE_P(ClassCounts, SvmBinningProperty,
                         ::testing::Values(2, 3, 4, 5));
