/**
 * @file
 * Tests for the BackendRegistry: built-in self-registration, typed and
 * numeric construction params, duplicate/unknown handling, and plugin
 * registration without touching core/.
 */
#include <gtest/gtest.h>

#include "backends/fpga.hpp"
#include "backends/mat_platform.hpp"
#include "backends/registry.hpp"
#include "backends/taurus.hpp"
#include "core/alchemy.hpp"

namespace hb = homunculus::backends;
namespace hcore = homunculus::core;

TEST(Registry, BuiltinsSelfRegister)
{
    auto &registry = hb::BackendRegistry::instance();
    for (const char *name : {"taurus", "tofino", "tofino-mat", "fpga"})
        EXPECT_TRUE(registry.contains(name)) << name;

    auto names = registry.names();
    EXPECT_GE(names.size(), 4u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, CreateByName)
{
    auto &registry = hb::BackendRegistry::instance();
    auto taurus = registry.create("taurus");
    ASSERT_NE(taurus, nullptr);
    EXPECT_EQ(taurus->name(), "taurus");

    auto fpga = registry.create("fpga");
    ASSERT_NE(fpga, nullptr);
    EXPECT_EQ(fpga->name(), "fpga");
}

TEST(Registry, NumericKnobsConfigureTheBackend)
{
    hb::BackendParams params;
    params.numeric["tables"] = 5;
    params.numeric["entries"] = 256;
    auto platform = hb::BackendRegistry::instance().create("tofino", params);
    ASSERT_NE(platform, nullptr);
    const auto *mat = dynamic_cast<const hb::MatPlatform *>(platform.get());
    ASSERT_NE(mat, nullptr);
    EXPECT_EQ(mat->config().numTables, 5u);
    EXPECT_EQ(mat->config().entriesPerTable, 256u);

    params = {};
    params.numeric["grid_rows"] = 4;
    params.numeric["grid_cols"] = 8;
    platform = hb::BackendRegistry::instance().create("taurus", params);
    const auto *taurus =
        dynamic_cast<const hb::TaurusPlatform *>(platform.get());
    ASSERT_NE(taurus, nullptr);
    EXPECT_EQ(taurus->config().gridRows, 4u);
    EXPECT_EQ(taurus->config().gridCols, 8u);
}

TEST(Registry, TypedConfigWinsOverNumericKnobs)
{
    hb::TaurusConfig config;
    config.gridRows = 3;
    config.gridCols = 5;
    hb::BackendParams params;
    params.typedConfig = config;
    params.numeric["grid_rows"] = 12;  // ignored: typed config wins.
    auto platform = hb::BackendRegistry::instance().create("taurus", params);
    const auto *taurus =
        dynamic_cast<const hb::TaurusPlatform *>(platform.get());
    ASSERT_NE(taurus, nullptr);
    EXPECT_EQ(taurus->config().gridRows, 3u);
    EXPECT_EQ(taurus->config().gridCols, 5u);
}

TEST(Registry, UnknownNameReturnsNullAndListsKnownNames)
{
    auto &registry = hb::BackendRegistry::instance();
    EXPECT_EQ(registry.create("netronome"), nullptr);
    std::string message = registry.unknownTargetMessage("netronome");
    EXPECT_NE(message.find("netronome"), std::string::npos);
    EXPECT_NE(message.find("taurus"), std::string::npos);
    EXPECT_NE(message.find("fpga"), std::string::npos);
}

TEST(Registry, DuplicateRegistrationIsRejected)
{
    auto &registry = hb::BackendRegistry::instance();
    bool added = registry.registerFactory(
        "taurus", [](const hb::BackendParams &) -> hb::PlatformPtr {
            return nullptr;
        });
    EXPECT_FALSE(added);
    // The original factory must be intact.
    EXPECT_NE(registry.create("taurus"), nullptr);
}

TEST(Registry, BuiltinRegistrationHooksAreIdempotent)
{
    // A second direct call must not clobber or duplicate anything.
    hb::registerBuiltinBackends();
    hb::registerBuiltinBackends();
    auto names = hb::BackendRegistry::instance().names();
    EXPECT_EQ(std::count(names.begin(), names.end(), "taurus"), 1);
}

TEST(Registry, PluginBackendPlugsInWithoutTouchingCore)
{
    auto &registry = hb::BackendRegistry::instance();
    ASSERT_TRUE(registry.registerFactory(
        "test-smartnic", [](const hb::BackendParams &params) {
            hb::FpgaConfig config;
            config.lineRateGpps = params.numberOr("line_rate", 0.2);
            return std::make_shared<hb::FpgaPlatform>(config);
        }));

    // Resolvable through the same paths as the built-ins.
    auto handle = hcore::Platforms::byName("test-smartnic");
    ASSERT_TRUE(handle.isOk());
    EXPECT_EQ(handle->platform().name(), "fpga");

    EXPECT_TRUE(registry.unregisterFactory("test-smartnic"));
    EXPECT_FALSE(registry.contains("test-smartnic"));
    EXPECT_FALSE(registry.unregisterFactory("test-smartnic"));
}

TEST(Registry, PlatformsByNameReportsNotFound)
{
    auto handle = hcore::Platforms::byName("no-such-target");
    ASSERT_FALSE(handle.isOk());
    EXPECT_EQ(handle.status().code(), hcore::StatusCode::kNotFound);
    EXPECT_NE(handle.status().message().find("known platforms"),
              std::string::npos);
}
