/**
 * @file
 * Tests for the unified telemetry layer: MetricRegistry instrument
 * resolution (stable pointers, label canonicalization, kind-collision
 * errors), counter exactness under multi-threaded increments (runs
 * under TSAN in CI), Histogram reservoir percentile parity with the
 * math::percentileNearestRank convention the legacy stats structs
 * used, MetricsSnapshot merge arithmetic (the one true cross-shard
 * merge), TraceSink ring semantics (wrap, intern table, oldest-first
 * snapshot), and the --serve-stats-json golden keys. The
 * ServerStats-as-view equivalence is pinned end-to-end: a serving run
 * must report stop() stats bit-identical to what its own registry
 * snapshot says.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ir/exec_plan.hpp"
#include "math/stats.hpp"
#include "runtime/server.hpp"
#include "runtime/telemetry.hpp"

namespace hc = homunculus::common;
namespace hi = homunculus::ir;
namespace hm = homunculus::math;
namespace hr = homunculus::runtime;
namespace ht = homunculus::runtime::telemetry;

namespace {

/** A small deterministic MLP of the given shape. */
hi::ModelIr
mlpModel(std::uint64_t seed, std::size_t input_dim, std::size_t classes)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kMlp;
    model.inputDim = input_dim;
    model.numClasses = static_cast<int>(classes);
    std::size_t prev = input_dim;
    for (std::size_t width : {std::size_t{12}, classes}) {
        hi::QuantizedLayer layer;
        layer.inputDim = prev;
        layer.outputDim = width;
        layer.weights.resize(prev * width);
        layer.biases.resize(width);
        for (auto &w : layer.weights)
            w = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        for (auto &b : layer.biases)
            b = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        model.layers.push_back(std::move(layer));
        prev = width;
    }
    model.validate();
    return model;
}

}  // namespace

// ----------------------------------------------------------- MetricRegistry

TEST(Telemetry, RegistryResolvesStableInstrumentsByNameAndLabels)
{
    ht::MetricRegistry registry;
    ht::Counter &a = registry.counter("queue.accepted", {{"lane", "0"}});
    ht::Counter &b = registry.counter("queue.accepted", {{"lane", "0"}});
    ht::Counter &c = registry.counter("queue.accepted", {{"lane", "1"}});
    EXPECT_EQ(&a, &b);  // same (name, labels) = same instrument.
    EXPECT_NE(&a, &c);

    // Label order must not matter — the key set is canonicalized.
    ht::Counter &x = registry.counter(
        "x", {{"b", "2"}, {"a", "1"}});
    ht::Counter &y = registry.counter(
        "x", {{"a", "1"}, {"b", "2"}});
    EXPECT_EQ(&x, &y);

    // Unlabeled and labeled instruments of one name coexist.
    ht::Counter &bare = registry.counter("queue.accepted");
    EXPECT_NE(&bare, &a);

    // Re-requesting a name+labels as a different kind is a logic error,
    // not a silent second instrument.
    EXPECT_THROW(registry.gauge("queue.accepted", {{"lane", "0"}}),
                 std::logic_error);
    EXPECT_THROW(registry.histogram("queue.accepted", {{"lane", "0"}}),
                 std::logic_error);
}

TEST(Telemetry, CountersAreExactUnderConcurrentIncrements)
{
    ht::MetricRegistry registry;
    ht::Counter &counter = registry.counter("hits");
    ht::Gauge &gauge = registry.gauge("level");

    constexpr int kThreads = 8;
    constexpr int kPerThread = 10'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&counter, &gauge] {
            for (int i = 0; i < kPerThread; ++i) {
                counter.add();
                gauge.add(2);
                gauge.add(-1);
            }
        });
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(gauge.value(),
              static_cast<std::int64_t>(kThreads) * kPerThread);

    const ht::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counterValue("hits"),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Telemetry, HistogramPercentilesMatchTheLegacyNearestRank)
{
    ht::MetricRegistry registry;
    ht::Histogram &hist = registry.histogram("latency_us");

    hc::Rng rng(99);
    std::vector<double> reference;
    for (int i = 0; i < 5000; ++i) {
        double v = rng.uniform(0.0, 10'000.0);
        reference.push_back(v);
        hist.observe(v);
    }
    EXPECT_EQ(hist.count(), 5000u);
    EXPECT_EQ(hist.samples().size(), 5000u);  // below the reservoir cap.

    // Below capacity the reservoir retains everything, so percentiles
    // must be exactly the legacy math::percentileNearestRank values
    // (which takes a fraction; the instrument speaks percentiles).
    for (double p : {50.0, 90.0, 99.0})
        EXPECT_DOUBLE_EQ(hist.percentile(p),
                         hm::percentileNearestRank(reference, p / 100.0));

    const ht::MetricsSnapshot snap = registry.snapshot();
    const ht::MetricsSnapshot::Entry *entry = snap.find("latency_us");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->count, 5000u);
    EXPECT_DOUBLE_EQ(entry->percentile(99.0),
                     hm::percentileNearestRank(reference, 0.99));

    ht::Histogram &empty = registry.histogram("never_observed");
    EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
}

TEST(Telemetry, ReservoirStaysBoundedPastCapacity)
{
    ht::MetricRegistry registry;
    ht::Histogram &hist = registry.histogram("big");
    const std::size_t total = ht::kHistogramReservoirSize + 5000;
    for (std::size_t i = 0; i < total; ++i)
        hist.observe(static_cast<double>(i));
    EXPECT_EQ(hist.count(), total);  // seen-count is not capped,
    EXPECT_EQ(hist.samples().size(),
              ht::kHistogramReservoirSize);  // the sample is.
}

// --------------------------------------------------------- snapshot merge

TEST(Telemetry, SnapshotMergeSumsCountersAndConcatenatesSamples)
{
    ht::MetricRegistry shard0;
    ht::MetricRegistry shard1;
    shard0.counter("rows", {{"lane", "0"}}).add(10);
    shard1.counter("rows", {{"lane", "0"}}).add(32);
    shard1.counter("rows", {{"lane", "1"}}).add(7);  // only shard 1.
    shard0.gauge("depth").set(4);
    shard1.gauge("depth").set(5);
    shard0.histogram("lat").observe(1.0);
    shard0.histogram("lat").observe(2.0);
    shard1.histogram("lat").observe(3.0);

    ht::MetricsSnapshot merged = shard0.snapshot();
    merged.merge(shard1.snapshot());

    EXPECT_EQ(merged.counterValue("rows", {{"lane", "0"}}), 42u);
    EXPECT_EQ(merged.counterValue("rows", {{"lane", "1"}}), 7u);
    EXPECT_EQ(merged.sumCounters("rows"), 49u);

    const ht::MetricsSnapshot::Entry *depth = merged.find("depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_EQ(depth->gauge, 9);  // cross-shard gauges sum (depths do).

    const ht::MetricsSnapshot::Entry *lat = merged.find("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, 3u);
    EXPECT_EQ(lat->samples.size(), 3u);

    // Absent names read as zero, never as a lookup error.
    EXPECT_EQ(merged.counterValue("no.such"), 0u);
    EXPECT_EQ(merged.find("no.such"), nullptr);
}

TEST(Telemetry, WithLabelKeepsShardSlicesDistinctAcrossMerge)
{
    ht::MetricRegistry shard0;
    ht::MetricRegistry shard1;
    shard0.counter("rows").add(10);
    shard1.counter("rows").add(32);

    ht::MetricsSnapshot merged =
        shard0.snapshot().withLabel("shard", "0");
    merged.merge(shard1.snapshot().withLabel("shard", "1"));

    // Tagged slices stay separate entries; the sum view sees both.
    EXPECT_EQ(merged.counterValue("rows", {{"shard", "0"}}), 10u);
    EXPECT_EQ(merged.counterValue("rows", {{"shard", "1"}}), 32u);
    EXPECT_EQ(merged.sumCounters("rows"), 42u);
}

// --------------------------------------------------------------- TraceSink

TEST(TraceSink, RecordsWrapAndSnapshotOldestFirst)
{
    ht::TraceSink sink(8);
    EXPECT_EQ(sink.capacity(), 8u);

    std::uint16_t front = sink.internModel("front");
    std::uint16_t deep = sink.internModel("deep");
    EXPECT_NE(front, deep);
    EXPECT_EQ(sink.internModel("front"), front);  // intern is stable.
    EXPECT_EQ(sink.modelName(front), "front");
    EXPECT_EQ(sink.modelName(9999), "?");

    for (std::uint64_t i = 0; i < 11; ++i) {
        ht::RequestSpan span;
        span.ticket = i;
        span.lane = static_cast<std::uint32_t>(i % 2);
        span.hops[0] = front;
        span.hopCount = 1;
        span.outcome = ht::SpanOutcome::kServed;
        span.latencyUs = static_cast<double>(i);
        sink.record(span);
    }
    EXPECT_EQ(sink.recorded(), 11u);

    // 11 spans through an 8-slot ring: tickets 3..10 survive, in order.
    std::vector<ht::RequestSpan> spans = sink.snapshot();
    ASSERT_EQ(spans.size(), 8u);
    for (std::size_t i = 0; i < spans.size(); ++i)
        EXPECT_EQ(spans[i].ticket, 3u + i);

    EXPECT_STREQ(ht::spanOutcomeName(ht::SpanOutcome::kServed), "served");
    EXPECT_STREQ(ht::spanOutcomeName(ht::SpanOutcome::kFailed), "failed");
    EXPECT_STREQ(ht::spanOutcomeName(ht::SpanOutcome::kDropped),
                 "dropped");
}

TEST(TraceSink, ServerRecordsOneSpanPerServedRequest)
{
    auto model = mlpModel(21, 4, 3);
    ht::TraceSink sink(64);
    hr::ServerConfig config;
    config.queue.maxBatch = 16;
    config.queue.maxDelayUs = 200;
    config.trace = &sink;
    hr::Server server(hr::InferenceEngine::fromModel(model, {}), config);

    std::vector<std::uint64_t> tickets;
    for (int i = 0; i < 40; ++i) {
        hr::SubmitResult result =
            server.submit(std::vector<double>(4, i * 0.1));
        ASSERT_TRUE(result.admitted());
        tickets.push_back(result.ticket);
    }
    server.stop();

    EXPECT_EQ(sink.recorded(), 40u);
    std::vector<ht::RequestSpan> spans = sink.snapshot();
    ASSERT_EQ(spans.size(), 40u);
    for (const ht::RequestSpan &span : spans) {
        EXPECT_EQ(span.outcome, ht::SpanOutcome::kServed);
        EXPECT_EQ(span.lane, 0u);
        EXPECT_GE(span.flushedAtUs, span.enqueuedAtUs);
        EXPECT_GE(span.latencyUs, 0.0);
        EXPECT_EQ(span.hopCount, 0u);  // single-model: no routed hops.
    }
    // Every admitted ticket shows up in exactly one span.
    std::vector<std::uint64_t> span_tickets;
    for (const ht::RequestSpan &span : spans)
        span_tickets.push_back(span.ticket);
    std::sort(span_tickets.begin(), span_tickets.end());
    EXPECT_EQ(span_tickets, tickets);
}

// --------------------------------------------- ServerStats as a view

TEST(Telemetry, ServerStatsAreAViewOverTheRegistrySnapshot)
{
    auto model = mlpModel(22, 4, 3);
    auto metrics = std::make_shared<ht::MetricRegistry>();
    hr::ServerConfig config;
    config.queue.maxBatch = 8;
    config.queue.maxDelayUs = 500;
    config.metrics = metrics;
    hr::Server server(hr::InferenceEngine::fromModel(model, {}), config);

    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(
            server.submit(std::vector<double>(4, i * 0.01)).admitted());
    hr::ServerStats stats = server.stop();

    // The struct the caller sees and the registry the instruments live
    // in must agree exactly — the struct is materialized from it.
    const ht::MetricsSnapshot snap = metrics->snapshot();
    EXPECT_EQ(stats.rowsServed, snap.counterValue("server.rows_served"));
    EXPECT_EQ(stats.batches, snap.counterValue("server.batches"));
    EXPECT_EQ(stats.queue.accepted,
              snap.counterValue("queue.accepted", {{"lane", "0"}}));
    EXPECT_EQ(stats.queue.sizeFlushes,
              snap.counterValue("queue.size_flushes", {{"lane", "0"}}));
    const ht::MetricsSnapshot::Entry *lat =
        snap.find("server.request_latency_us");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, 100u);
    EXPECT_DOUBLE_EQ(stats.p50RequestLatencyUs, lat->percentile(50.0));
    EXPECT_DOUBLE_EQ(stats.p99RequestLatencyUs, lat->percentile(99.0));
}

// ------------------------------------------------------------ JSON export

TEST(Telemetry, ServeStatsJsonCarriesSchemaMetricsAndSpans)
{
    ht::MetricRegistry registry;
    registry.counter("queue.accepted", {{"lane", "0"}}).add(123);
    registry.gauge("depth").set(-4);
    registry.histogram("server.request_latency_us").observe(10.0);
    registry.histogram("server.request_latency_us").observe(20.0);

    ht::TraceSink sink(4);
    std::uint16_t id = sink.internModel("front");
    ht::RequestSpan span;
    span.ticket = 7;
    span.lane = 1;
    span.hops[0] = id;
    span.hopCount = 1;
    span.retries = 2;
    span.outcome = ht::SpanOutcome::kFailed;
    span.latencyUs = 41.5;
    sink.record(span);

    std::ostringstream out;
    ht::writeServeStatsJson(out, registry.snapshot(), &sink);
    const std::string json = out.str();

    EXPECT_NE(json.find(ht::kServeStatsSchema), std::string::npos);
    EXPECT_NE(json.find("\"queue.accepted\""), std::string::npos);
    EXPECT_NE(json.find("\"value\": 123"), std::string::npos);
    EXPECT_NE(json.find("\"labels\": {\"lane\": \"0\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"gauge\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    EXPECT_NE(json.find("\"spans_recorded\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"hops\": [\"front\"]"), std::string::npos);
    EXPECT_NE(json.find("\"outcome\": \"failed\""), std::string::npos);
    EXPECT_NE(json.find("\"retries\": 2"), std::string::npos);

    // No spans section content without a sink, but the dump still
    // carries the schema and metrics.
    std::ostringstream bare;
    ht::writeServeStatsJson(bare, registry.snapshot(), nullptr);
    EXPECT_NE(bare.str().find(ht::kServeStatsSchema), std::string::npos);
    EXPECT_NE(bare.str().find("\"spans_recorded\": 0"),
              std::string::npos);
}
