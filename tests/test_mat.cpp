/**
 * @file
 * Unit tests for the MAT pipeline interpreter and MAT platform.
 */
#include <gtest/gtest.h>

#include "backends/mat_platform.hpp"
#include "common/rng.hpp"
#include "ml/metrics.hpp"

namespace hb = homunculus::backends;
namespace hi = homunculus::ir;
namespace ml = homunculus::ml;
namespace hm = homunculus::math;
namespace hc = homunculus::common;

namespace {

ml::Dataset
makeBlobs(std::size_t n, int classes, std::uint64_t seed)
{
    hc::Rng rng(seed);
    ml::Dataset data;
    data.x = hm::Matrix(n, 3);
    data.y.resize(n);
    data.numClasses = classes;
    for (std::size_t i = 0; i < n; ++i) {
        int label = static_cast<int>(i % static_cast<std::size_t>(classes));
        for (std::size_t f = 0; f < 3; ++f)
            data.x(i, f) =
                rng.gaussian(3.0 * label * (f == 0 ? 1.0 : -0.5), 0.4);
        data.y[i] = label;
    }
    return data;
}

hi::ModelIr
fitKMeansIr(const hm::Matrix &x, std::size_t k)
{
    ml::KMeansConfig config;
    config.numClusters = k;
    ml::KMeans kmeans(config);
    kmeans.fit(x);
    return hi::lowerKMeans(kmeans, hc::FixedPointFormat::q88(), "km",
                           x.cols());
}

}  // namespace

TEST(MatPipeline, KMeansUsesOneTablePerCluster)
{
    auto data = makeBlobs(120, 3, 1);
    auto ir = fitKMeansIr(data.x, 4);
    auto pipeline = hb::MatPipeline::compileKMeans(ir);
    EXPECT_EQ(pipeline.numTables(), 4u);
}

TEST(MatPipeline, KMeansAgreesWithReferenceExecutor)
{
    auto data = makeBlobs(150, 3, 2);
    auto ir = fitKMeansIr(data.x, 3);
    auto pipeline = hb::MatPipeline::compileKMeans(ir);
    auto reference = hi::executeIrBatch(ir, data.x);
    for (std::size_t i = 0; i < data.numSamples(); ++i)
        EXPECT_EQ(pipeline.process(data.x.row(i)), reference[i]);
}

TEST(MatPipeline, SvmUsesOneTablePerFeature)
{
    auto data = makeBlobs(150, 2, 3);
    ml::LinearSvm svm(ml::SvmConfig{});
    svm.train(data);
    auto ir = hi::lowerSvm(svm, hc::FixedPointFormat::q88(), "svm", 3);
    auto pipeline = hb::MatPipeline::compileSvm(ir, 64);
    EXPECT_EQ(pipeline.numTables(), 3u);
    EXPECT_EQ(pipeline.totalEntries(), 3u * 64u);
}

TEST(MatPipeline, SvmRangeBinningApproximatesModel)
{
    auto data = makeBlobs(400, 2, 4);
    ml::LinearSvm svm(ml::SvmConfig{});
    svm.train(data);
    auto ir = hi::lowerSvm(svm, hc::FixedPointFormat::q88(), "svm", 3);
    auto pipeline = hb::MatPipeline::compileSvm(ir, 128);
    std::vector<int> table_pred(data.numSamples());
    for (std::size_t i = 0; i < data.numSamples(); ++i)
        table_pred[i] = pipeline.process(data.x.row(i));
    auto exact = svm.predict(data.x);
    // Binning the feature domain into 128 ranges costs little accuracy.
    EXPECT_GT(ml::accuracy(exact, table_pred), 0.9);
}

TEST(MatPipeline, SvmCoarserBinsAreWorseOrEqual)
{
    auto data = makeBlobs(400, 2, 5);
    ml::LinearSvm svm(ml::SvmConfig{});
    svm.train(data);
    auto ir = hi::lowerSvm(svm, hc::FixedPointFormat::q88(), "svm", 3);
    auto exact = svm.predict(data.x);

    auto accuracy_with_bins = [&](std::size_t bins) {
        auto pipeline = hb::MatPipeline::compileSvm(ir, bins);
        std::vector<int> pred(data.numSamples());
        for (std::size_t i = 0; i < data.numSamples(); ++i)
            pred[i] = pipeline.process(data.x.row(i));
        return ml::accuracy(exact, pred);
    };
    EXPECT_GE(accuracy_with_bins(256) + 0.02, accuracy_with_bins(4));
}

TEST(MatPipeline, TreeUsesOneTablePerLevel)
{
    auto data = makeBlobs(300, 2, 6);
    ml::TreeConfig config;
    config.maxDepth = 4;
    ml::DecisionTreeClassifier tree(config);
    tree.train(data);
    auto ir =
        hi::lowerDecisionTree(tree, hc::FixedPointFormat::q88(), "dt", 3);
    auto pipeline = hb::MatPipeline::compileTree(ir);
    EXPECT_EQ(pipeline.numTables(), tree.depth() + 1);
}

TEST(MatPipeline, TreeWalkMatchesReferenceExecutor)
{
    auto data = makeBlobs(300, 3, 7);
    ml::TreeConfig config;
    config.maxDepth = 5;
    ml::DecisionTreeClassifier tree(config);
    tree.train(data);
    auto ir =
        hi::lowerDecisionTree(tree, hc::FixedPointFormat::q88(), "dt", 3);
    auto pipeline = hb::MatPipeline::compileTree(ir);
    auto reference = hi::executeIrBatch(ir, data.x);
    for (std::size_t i = 0; i < data.numSamples(); ++i)
        EXPECT_EQ(pipeline.process(data.x.row(i)), reference[i])
            << "row " << i;
}

// ----------------------------------- bucketized binary-search entry walk

TEST(MatPipeline, IndexedWalkMatchesLinearReferenceDifferentially)
{
    // The bucketized binary-search index (process / processBatch) must
    // reproduce the linear first-match reference walk (processLinear)
    // bit-for-bit on every family, including out-of-range keys that
    // saturate into the outermost SVM bins.
    hc::Rng rng(77);
    auto random_rows = [&](std::size_t n, std::size_t d) {
        hm::Matrix x(n, d);
        for (double &v : x.data())
            v = rng.uniform(-140.0, 140.0);
        return x;
    };

    auto data = makeBlobs(300, 3, 11);
    ml::LinearSvm svm(ml::SvmConfig{});
    svm.train(data);
    auto svm_ir = hi::lowerSvm(svm, hc::FixedPointFormat::q88(), "svm", 3);
    ml::TreeConfig tree_config;
    tree_config.maxDepth = 6;
    ml::DecisionTreeClassifier tree(tree_config);
    tree.train(data);
    auto tree_ir =
        hi::lowerDecisionTree(tree, hc::FixedPointFormat::q88(), "dt", 3);

    std::vector<hb::MatPipeline> pipelines;
    pipelines.push_back(hb::MatPipeline::compileSvm(svm_ir, 64));
    pipelines.push_back(hb::MatPipeline::compileSvm(svm_ir, 7));
    pipelines.push_back(hb::MatPipeline::compileTree(tree_ir));
    pipelines.push_back(
        hb::MatPipeline::compileKMeans(fitKMeansIr(data.x, 5)));

    for (const auto &pipeline : pipelines) {
        auto x = random_rows(500, 3);
        auto batch = pipeline.processBatch(x);
        for (std::size_t i = 0; i < x.rows(); ++i) {
            int linear = pipeline.processLinear(x.row(i));
            EXPECT_EQ(pipeline.process(x.row(i)), linear) << "row " << i;
            EXPECT_EQ(batch[i], linear) << "row " << i;
        }
    }
}

TEST(MatPipeline, CompiledTablesCarryAVerifiedLookupIndex)
{
    auto data = makeBlobs(200, 2, 12);
    ml::LinearSvm svm(ml::SvmConfig{});
    svm.train(data);
    auto ir = hi::lowerSvm(svm, hc::FixedPointFormat::q88(), "svm", 3);
    auto pipeline = hb::MatPipeline::compileSvm(ir, 32);
    for (const auto &table : pipeline.tables()) {
        // SVM bins install in ascending order, so the range index
        // verifies; they are ranges, so the exact-group index must not.
        EXPECT_TRUE(table.rangeIndexed) << table.name;
        EXPECT_FALSE(table.groupIndexed) << table.name;
        ASSERT_EQ(table.orderedHi.size(), table.entries.size());
        for (std::size_t i = 0; i < table.entries.size(); ++i)
            EXPECT_EQ(table.orderedHi[i], table.entries[i].hi);
    }

    ml::TreeConfig tree_config;
    tree_config.maxDepth = 4;
    ml::DecisionTreeClassifier tree(tree_config);
    tree.train(data);
    auto tree_ir =
        hi::lowerDecisionTree(tree, hc::FixedPointFormat::q88(), "dt", 3);
    auto tree_pipeline = hb::MatPipeline::compileTree(tree_ir);
    for (const auto &table : tree_pipeline.tables()) {
        // Tree entries are exact state matches: the group index
        // verifies, sorted ascending, permutation mapping back.
        EXPECT_TRUE(table.groupIndexed) << table.name;
        ASSERT_EQ(table.sortedLo.size(), table.entries.size());
        for (std::size_t i = 1; i < table.sortedLo.size(); ++i)
            EXPECT_LE(table.sortedLo[i - 1], table.sortedLo[i]);
        for (std::size_t i = 0; i < table.sortedLo.size(); ++i)
            EXPECT_EQ(table.sortedLo[i],
                      table.entries[table.sortedOrder[i]].lo);
    }
}

TEST(MatPlatform, DnnIsUnsupportedAndExplained)
{
    hb::MatPlatform platform;
    EXPECT_EQ(platform.supports(hi::ModelKind::kMlp),
              hb::AlgorithmSupport::kUnsupported);

    ml::MlpConfig config;
    config.inputDim = 4;
    config.hiddenLayers = {8};
    config.numClasses = 2;
    ml::Mlp mlp(config);
    auto ir = hi::lowerMlp(mlp, hc::FixedPointFormat::q88(), "dnn");
    auto report = platform.estimate(ir);
    EXPECT_FALSE(report.feasible);
    EXPECT_NE(report.infeasibleReason.find("DNN"), std::string::npos);
}

TEST(MatPlatform, TableBudgetGatesKMeans)
{
    auto data = makeBlobs(150, 3, 8);
    auto ir = fitKMeansIr(data.x, 6);

    hb::MatConfig small;
    small.numTables = 4;
    hb::MatPlatform tight(small);
    EXPECT_FALSE(tight.estimate(ir).feasible);

    hb::MatConfig large;
    large.numTables = 8;
    hb::MatPlatform roomy(large);
    EXPECT_TRUE(roomy.estimate(ir).feasible);
}

TEST(MatPlatform, LatencyScalesWithTables)
{
    auto data = makeBlobs(150, 3, 9);
    hb::MatPlatform platform;
    auto two = platform.estimate(fitKMeansIr(data.x, 2));
    auto five = platform.estimate(fitKMeansIr(data.x, 5));
    EXPECT_GT(five.latencyNs, two.latencyNs);
    EXPECT_DOUBLE_EQ(two.throughputGpps, five.throughputGpps);
}

TEST(MatPlatform, EvaluateMatchesPipelineProcess)
{
    auto data = makeBlobs(60, 2, 10);
    auto ir = fitKMeansIr(data.x, 3);
    hb::MatPlatform platform;
    auto labels = platform.evaluate(ir, data.x);
    auto pipeline = platform.compile(ir);
    for (std::size_t i = 0; i < data.numSamples(); ++i)
        EXPECT_EQ(labels[i], pipeline.process(data.x.row(i)));
}
