/**
 * @file
 * Unit tests for classification and clustering metrics.
 */
#include <gtest/gtest.h>

#include "ml/metrics.hpp"

namespace ml = homunculus::ml;

TEST(Metrics, ConfusionMatrixEntries)
{
    std::vector<int> truth = {0, 0, 1, 1, 1};
    std::vector<int> pred = {0, 1, 1, 1, 0};
    auto cm = ml::confusionMatrix(truth, pred, 2);
    EXPECT_EQ(cm[0][0], 1u);
    EXPECT_EQ(cm[0][1], 1u);
    EXPECT_EQ(cm[1][0], 1u);
    EXPECT_EQ(cm[1][1], 2u);
}

TEST(Metrics, AccuracyPerfectAndZero)
{
    EXPECT_DOUBLE_EQ(ml::accuracy({1, 0, 1}, {1, 0, 1}), 1.0);
    EXPECT_DOUBLE_EQ(ml::accuracy({1, 0}, {0, 1}), 0.0);
}

TEST(Metrics, PrecisionRecallF1KnownCase)
{
    // TP=2, FP=1, FN=1 for class 1.
    std::vector<int> truth = {1, 1, 1, 0, 0};
    std::vector<int> pred = {1, 1, 0, 1, 0};
    EXPECT_NEAR(ml::precision(truth, pred, 1), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(ml::recall(truth, pred, 1), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(ml::f1Score(truth, pred, 1), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, F1ZeroWhenNoPositivePredictions)
{
    std::vector<int> truth = {1, 1, 0};
    std::vector<int> pred = {0, 0, 0};
    EXPECT_DOUBLE_EQ(ml::precision(truth, pred, 1), 0.0);
    EXPECT_DOUBLE_EQ(ml::f1Score(truth, pred, 1), 0.0);
}

TEST(Metrics, MacroF1AveragesClasses)
{
    std::vector<int> truth = {0, 0, 1, 1};
    std::vector<int> pred = {0, 0, 0, 0};
    // class 0: P=0.5, R=1 -> F1=2/3; class 1: 0.
    EXPECT_NEAR(ml::macroF1(truth, pred, 2), (2.0 / 3.0) / 2.0, 1e-12);
}

TEST(Metrics, F1ForTaskDispatchesOnClassCount)
{
    std::vector<int> truth = {0, 1, 1};
    std::vector<int> pred = {0, 1, 1};
    EXPECT_DOUBLE_EQ(ml::f1ForTask(truth, pred, 2),
                     ml::f1Score(truth, pred, 1));
    std::vector<int> truth3 = {0, 1, 2};
    std::vector<int> pred3 = {0, 1, 2};
    EXPECT_DOUBLE_EQ(ml::f1ForTask(truth3, pred3, 3), 1.0);
}

TEST(Metrics, LengthMismatchThrows)
{
    EXPECT_THROW(ml::accuracy({0, 1}, {0}), std::runtime_error);
    EXPECT_THROW(ml::accuracy({}, {}), std::runtime_error);
}

TEST(Metrics, VMeasurePerfectClustering)
{
    std::vector<int> truth = {0, 0, 1, 1, 2, 2};
    std::vector<int> clusters = {5, 5, 3, 3, 9, 9};  // relabeled but exact.
    EXPECT_NEAR(ml::homogeneity(truth, clusters), 1.0, 1e-12);
    EXPECT_NEAR(ml::completeness(truth, clusters), 1.0, 1e-12);
    EXPECT_NEAR(ml::vMeasure(truth, clusters), 1.0, 1e-12);
}

TEST(Metrics, VMeasureSingleClusterHasZeroHomogeneity)
{
    std::vector<int> truth = {0, 0, 1, 1};
    std::vector<int> clusters = {0, 0, 0, 0};
    EXPECT_NEAR(ml::homogeneity(truth, clusters), 0.0, 1e-12);
    // Single cluster is trivially complete.
    EXPECT_NEAR(ml::completeness(truth, clusters), 1.0, 1e-12);
    EXPECT_NEAR(ml::vMeasure(truth, clusters), 0.0, 1e-12);
}

TEST(Metrics, VMeasureOversplitLosesCompleteness)
{
    std::vector<int> truth = {0, 0, 0, 0};
    std::vector<int> clusters = {0, 1, 2, 3};
    EXPECT_NEAR(ml::homogeneity(truth, clusters), 1.0, 1e-12);
    EXPECT_NEAR(ml::completeness(truth, clusters), 0.0, 1e-12);
}

TEST(Metrics, VMeasureMonotoneInClusterQuality)
{
    std::vector<int> truth = {0, 0, 0, 1, 1, 1};
    std::vector<int> good = {0, 0, 0, 1, 1, 1};
    std::vector<int> noisy = {0, 0, 1, 1, 1, 0};
    EXPECT_GT(ml::vMeasure(truth, good), ml::vMeasure(truth, noisy));
}
