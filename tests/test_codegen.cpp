/**
 * @file
 * Structural tests for the Spatial and P4 code generators.
 *
 * Golden-string tests would be brittle; instead these pin the structural
 * invariants the paper's template methodology guarantees: one template
 * instantiation per layer/table, parameter counts matching the IR, and
 * the fixed scaffolding (parser, apply block, type alias) being present.
 */
#include <gtest/gtest.h>

#include "backends/p4_codegen.hpp"
#include "backends/spatial_codegen.hpp"
#include "ml/kmeans.hpp"
#include "ml/mlp.hpp"
#include "ml/svm.hpp"

namespace hb = homunculus::backends;
namespace hi = homunculus::ir;
namespace ml = homunculus::ml;
namespace hm = homunculus::math;
namespace hc = homunculus::common;

namespace {

std::size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    std::size_t count = 0, pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
        ++count;
        pos += needle.size();
    }
    return count;
}

hi::ModelIr
makeMlpIr(std::vector<std::size_t> hidden)
{
    ml::MlpConfig config;
    config.inputDim = 7;
    config.hiddenLayers = std::move(hidden);
    config.numClasses = 2;
    ml::Mlp mlp(config);
    return hi::lowerMlp(mlp, hc::FixedPointFormat::q88(), "ad_model");
}

hi::ModelIr
makeKMeansIr(std::size_t k)
{
    hm::Matrix x(40, 3);
    for (std::size_t i = 0; i < 40; ++i)
        for (std::size_t f = 0; f < 3; ++f)
            x(i, f) = static_cast<double>((i * 7 + f * 3) % 11);
    ml::KMeansConfig config;
    config.numClusters = k;
    ml::KMeans kmeans(config);
    kmeans.fit(x);
    return hi::lowerKMeans(kmeans, hc::FixedPointFormat::q88(), "tc_model",
                           3);
}

hi::ModelIr
makeSvmIr()
{
    ml::Dataset data;
    data.x = hm::Matrix(60, 4);
    data.y.resize(60);
    data.numClasses = 3;
    for (std::size_t i = 0; i < 60; ++i) {
        data.y[i] = static_cast<int>(i % 3);
        for (std::size_t f = 0; f < 4; ++f)
            data.x(i, f) = static_cast<double>(data.y[i]) - 1.0 +
                           0.01 * static_cast<double>(f);
    }
    ml::LinearSvm svm(ml::SvmConfig{});
    svm.train(data);
    return hi::lowerSvm(svm, hc::FixedPointFormat::q88(), "svm_model", 4);
}

}  // namespace

TEST(SpatialCodegen, MlpHasOneDenseTemplatePerLayer)
{
    auto ir = makeMlpIr({16, 8});
    hb::SpatialCodegen codegen;
    std::string code = codegen.generate(ir);
    EXPECT_EQ(countOccurrences(code, "---- dense layer"), 3u);
    EXPECT_EQ(countOccurrences(code, "Reduce(Reg[T])"), 3u);
    // One weight LUT and one bias LUT per layer.
    EXPECT_NE(code.find("val w0"), std::string::npos);
    EXPECT_NE(code.find("val w2"), std::string::npos);
    EXPECT_NE(code.find("val b1"), std::string::npos);
}

TEST(SpatialCodegen, EmitsQ88TypeAliasAndScaffolding)
{
    auto ir = makeMlpIr({4});
    hb::SpatialCodegen codegen;
    std::string code = codegen.generate(ir);
    EXPECT_NE(code.find("FixPt[TRUE, _8, _8]"), std::string::npos);
    EXPECT_NE(code.find("@spatial object ad_model"), std::string::npos);
    EXPECT_NE(code.find("Accel(*)"), std::string::npos);
    EXPECT_NE(code.find("StreamIn"), std::string::npos);
    EXPECT_NE(code.find("StreamOut"), std::string::npos);
}

TEST(SpatialCodegen, ReluLowersToMax)
{
    auto ir = makeMlpIr({4});
    ir.activation = ml::Activation::kRelu;
    hb::SpatialCodegen codegen;
    EXPECT_NE(codegen.generate(ir).find("max("), std::string::npos);
}

TEST(SpatialCodegen, WeightCountMatchesIr)
{
    auto ir = makeMlpIr({5});
    hb::SpatialCodegen codegen;
    std::string code = codegen.generate(ir);
    // Every quantized scalar appears as an N.to[T] literal; each hidden
    // layer's Foreach body adds one ReLU 0.to[T] constant.
    std::size_t hidden_layers = ir.layers.size() - 1;
    EXPECT_EQ(countOccurrences(code, ".to[T]"),
              ir.paramCount() + hidden_layers);
}

TEST(SpatialCodegen, KMeansTemplateHasCentroidPerCluster)
{
    auto ir = makeKMeansIr(4);
    hb::SpatialCodegen codegen;
    std::string code = codegen.generate(ir);
    EXPECT_EQ(countOccurrences(code, "val centroid"), 4u);
    EXPECT_NE(code.find("arg-min"), std::string::npos);
}

TEST(SpatialCodegen, SvmTemplateHasWeightsPerClass)
{
    auto ir = makeSvmIr();
    hb::SpatialCodegen codegen;
    std::string code = codegen.generate(ir);
    EXPECT_EQ(countOccurrences(code, "val svmW"), 3u);
    EXPECT_NE(code.find("arg-max"), std::string::npos);
}

TEST(P4Codegen, SvmEmitsOneTablePerFeatureWithEntries)
{
    auto ir = makeSvmIr();
    hb::P4Codegen codegen(16);
    std::string code = codegen.generate(ir);
    EXPECT_EQ(countOccurrences(code, "table svm_feature_"), 4u);
    // 4 features x 16 bins = 64 range entries.
    EXPECT_EQ(countOccurrences(code, " .. "), 64u);
    EXPECT_NE(code.find("const entries"), std::string::npos);
}

TEST(P4Codegen, KMeansEmitsOneTablePerCluster)
{
    auto ir = makeKMeansIr(3);
    hb::P4Codegen codegen;
    std::string code = codegen.generate(ir);
    EXPECT_EQ(countOccurrences(code, "table kmeans_cluster_"), 3u);
    EXPECT_NE(code.find("arg-min"), std::string::npos);
}

TEST(P4Codegen, ScaffoldingPresent)
{
    auto ir = makeKMeansIr(2);
    hb::P4Codegen codegen;
    std::string code = codegen.generate(ir);
    EXPECT_NE(code.find("#include <v1model.p4>"), std::string::npos);
    EXPECT_NE(code.find("parser FeatureParser"), std::string::npos);
    EXPECT_NE(code.find("control MlIngress"), std::string::npos);
    EXPECT_NE(code.find("apply {"), std::string::npos);
    // One header field per feature.
    EXPECT_EQ(countOccurrences(code, "bit<16> f"), ir.inputDim);
}

TEST(P4Codegen, RejectsDnn)
{
    auto ir = makeMlpIr({4});
    hb::P4Codegen codegen;
    EXPECT_THROW(codegen.generate(ir), std::runtime_error);
}

TEST(P4Codegen, ApplyBlockListsTablesInOrder)
{
    auto ir = makeSvmIr();
    hb::P4Codegen codegen(8);
    std::string code = codegen.generate(ir);
    std::size_t apply_pos = code.find("apply {");
    ASSERT_NE(apply_pos, std::string::npos);
    std::size_t prev = apply_pos;
    for (std::size_t f = 0; f < 4; ++f) {
        std::size_t pos =
            code.find("svm_feature_" + std::to_string(f) + ".apply()",
                      apply_pos);
        ASSERT_NE(pos, std::string::npos);
        EXPECT_GT(pos, prev);
        prev = pos;
    }
}
