/**
 * @file
 * Tests for the bounded lock-free MPSC ring behind RequestQueue's
 * submit fast path: FIFO order, full/empty/wraparound edges, the
 * lvalue-preserving tryPush contract, and multi-producer interleaving
 * (every pushed value arrives exactly once, per-producer subsequences
 * stay ordered). The concurrent cases run under TSAN in CI
 * (MpscRing* is in the sanitizer filter).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/mpsc_ring.hpp"

namespace hr = homunculus::runtime;

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(hr::MpscRing<int>(1).capacity(), 2u);
    EXPECT_EQ(hr::MpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(hr::MpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(hr::MpscRing<int>(64).capacity(), 64u);
    EXPECT_EQ(hr::MpscRing<int>(65).capacity(), 128u);
}

TEST(MpscRing, PopOnEmptyFailsAndPushPopRoundTripsFifo)
{
    hr::MpscRing<int> ring(8);
    int out = -1;
    EXPECT_FALSE(ring.canPop());
    EXPECT_FALSE(ring.tryPop(out));
    for (int i = 0; i < 5; ++i) {
        int value = i;
        ASSERT_TRUE(ring.tryPush(value));
    }
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(ring.tryPop(out));
}

TEST(MpscRing, FullRingRejectsWithoutConsumingTheValue)
{
    hr::MpscRing<std::vector<int>> ring(4);
    for (int i = 0; i < 4; ++i) {
        std::vector<int> row{i, i, i};
        ASSERT_TRUE(ring.tryPush(row));
    }
    // Full: the push fails and the caller keeps its value intact —
    // that is what lets RequestQueue retry or shed without a copy.
    std::vector<int> keeper{9, 9, 9};
    EXPECT_FALSE(ring.tryPush(keeper));
    EXPECT_EQ(keeper, (std::vector<int>{9, 9, 9}));

    std::vector<int> out;
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out, (std::vector<int>{0, 0, 0}));
    // One slot freed: the same value now goes in.
    EXPECT_TRUE(ring.tryPush(keeper));
}

TEST(MpscRing, WrapAroundStaysFifoAcrossManyLaps)
{
    // Capacity 4 with 1000 values: every slot's sequence number laps
    // 250 times; any wraparound bug in the seq arithmetic shows up as
    // a reorder, a loss, or a bogus full/empty.
    hr::MpscRing<int> ring(4);
    int out = -1;
    int next_push = 0, next_pop = 0;
    while (next_pop < 1000) {
        while (next_push < 1000) {
            int value = next_push;
            if (!ring.tryPush(value))
                break;
            ++next_push;
        }
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out, next_pop);
        ++next_pop;
    }
    EXPECT_FALSE(ring.canPop());
}

TEST(MpscRing, MultiProducerDeliversEverythingOncePerProducerOrdered)
{
    // 4 producers x 5000 values, value = producer * stride + i. The
    // consumer records arrival order; afterwards: exact multiset (no
    // loss, no duplication) and each producer's subsequence arrives in
    // its own push order (reservation order is the ring's FIFO).
    constexpr std::uint64_t kProducers = 4;
    constexpr std::uint64_t kPerProducer = 5000;
    constexpr std::uint64_t kStride = 1u << 20;
    hr::MpscRing<std::uint64_t> ring(256);

    std::vector<std::uint64_t> seen;
    seen.reserve(kProducers * kPerProducer);
    std::thread consumer([&] {
        std::uint64_t out = 0;
        while (seen.size() < kProducers * kPerProducer) {
            if (ring.tryPop(out))
                seen.push_back(out);
            else
                std::this_thread::yield();
        }
    });
    std::vector<std::thread> producers;
    for (std::uint64_t p = 0; p < kProducers; ++p)
        producers.emplace_back([&ring, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                std::uint64_t value = p * kStride + i;
                while (!ring.tryPush(value))
                    std::this_thread::yield();
            }
        });
    for (std::thread &t : producers)
        t.join();
    consumer.join();

    ASSERT_EQ(seen.size(), kProducers * kPerProducer);
    std::vector<std::uint64_t> next(kProducers, 0);
    for (std::uint64_t value : seen) {
        std::uint64_t p = value / kStride;
        ASSERT_LT(p, kProducers);
        EXPECT_EQ(value % kStride, next[p]) << "producer " << p
                                            << " reordered";
        ++next[p];
    }
    for (std::uint64_t p = 0; p < kProducers; ++p)
        EXPECT_EQ(next[p], kPerProducer);
}
