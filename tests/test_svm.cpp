/**
 * @file
 * Unit tests for the linear SVM.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ml/metrics.hpp"
#include "ml/svm.hpp"

namespace ml = homunculus::ml;
namespace hm = homunculus::math;

namespace {

ml::Dataset
makeSeparable(std::size_t n, int classes, std::uint64_t seed)
{
    homunculus::common::Rng rng(seed);
    ml::Dataset data;
    data.x = hm::Matrix(n, 2);
    data.y.resize(n);
    data.numClasses = classes;
    for (std::size_t i = 0; i < n; ++i) {
        int label = static_cast<int>(i % static_cast<std::size_t>(classes));
        double angle = 2.0 * 3.14159265 * label / classes;
        data.x(i, 0) = 4.0 * std::cos(angle) + rng.gaussian(0, 0.4);
        data.x(i, 1) = 4.0 * std::sin(angle) + rng.gaussian(0, 0.4);
        data.y[i] = label;
    }
    return data;
}

}  // namespace

TEST(LinearSvm, LearnsBinarySeparableData)
{
    auto data = makeSeparable(300, 2, 1);
    ml::LinearSvm svm(ml::SvmConfig{});
    svm.train(data);
    EXPECT_GT(ml::accuracy(data.y, svm.predict(data.x)), 0.95);
}

TEST(LinearSvm, LearnsMulticlassOneVsRest)
{
    auto data = makeSeparable(600, 4, 2);
    ml::SvmConfig config;
    config.epochs = 80;
    ml::LinearSvm svm(config);
    svm.train(data);
    EXPECT_GT(ml::accuracy(data.y, svm.predict(data.x)), 0.9);
}

TEST(LinearSvm, DecisionFunctionShape)
{
    auto data = makeSeparable(100, 3, 3);
    ml::LinearSvm svm(ml::SvmConfig{});
    svm.train(data);
    auto scores = svm.decisionFunction(data.x);
    EXPECT_EQ(scores.rows(), 100u);
    EXPECT_EQ(scores.cols(), 3u);
}

TEST(LinearSvm, ParamCountMatchesShape)
{
    auto data = makeSeparable(60, 3, 4);
    ml::LinearSvm svm(ml::SvmConfig{});
    svm.train(data);
    EXPECT_EQ(svm.paramCount(), 3u * (2u + 1u));
}

TEST(LinearSvm, DeterministicGivenSeed)
{
    auto data = makeSeparable(150, 2, 5);
    ml::SvmConfig config;
    config.seed = 42;
    ml::LinearSvm a(config), b(config);
    a.train(data);
    b.train(data);
    for (std::size_t c = 0; c < 2; ++c)
        for (std::size_t f = 0; f < 2; ++f)
            EXPECT_DOUBLE_EQ(a.weights()(c, f), b.weights()(c, f));
}

TEST(LinearSvm, TrainingLossDecreasesFromStart)
{
    auto data = makeSeparable(300, 2, 6);
    ml::SvmConfig one_epoch;
    one_epoch.epochs = 1;
    ml::LinearSvm early(one_epoch);
    double loss_early = early.train(data);

    ml::SvmConfig many_epochs;
    many_epochs.epochs = 50;
    ml::LinearSvm late(many_epochs);
    double loss_late = late.train(data);
    EXPECT_LT(loss_late, loss_early);
}

TEST(LinearSvm, RegularizationShrinksWeights)
{
    auto data = makeSeparable(200, 2, 7);
    ml::SvmConfig weak;
    weak.regularization = 1e-6;
    ml::SvmConfig strong;
    strong.regularization = 0.5;
    ml::LinearSvm svm_weak(weak), svm_strong(strong);
    svm_weak.train(data);
    svm_strong.train(data);

    auto norm = [](const hm::Matrix &w) {
        double total = 0.0;
        for (double v : w.data())
            total += v * v;
        return total;
    };
    EXPECT_LT(norm(svm_strong.weights()), norm(svm_weak.weights()));
}

TEST(LinearSvm, PredictBeforeTrainPanics)
{
    ml::LinearSvm svm(ml::SvmConfig{});
    hm::Matrix x(1, 2, 0.0);
    EXPECT_DEATH(svm.predict(x), "decisionFunction before train");
}
