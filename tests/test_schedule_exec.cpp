/**
 * @file
 * Tests for schedule *execution* (executeSchedule) and the pipeline
 * replay harness — the runtime halves of the composition story.
 */
#include <gtest/gtest.h>

#include "backends/taurus.hpp"
#include "common/rng.hpp"
#include "core/pipeline_harness.hpp"
#include "core/schedule.hpp"
#include "ml/metrics.hpp"

namespace hcore = homunculus::core;
namespace hb = homunculus::backends;
namespace hi = homunculus::ir;
namespace ml = homunculus::ml;
namespace hm = homunculus::math;
namespace hn = homunculus::net;
namespace hc = homunculus::common;

namespace {

/** Train a small MLP on blobs and lower it. */
hi::ModelIr
trainedIr(std::size_t input_dim, int classes, std::uint64_t seed)
{
    hc::Rng rng(seed);
    ml::Dataset data;
    data.x = hm::Matrix(300, input_dim);
    data.y.resize(300);
    data.numClasses = classes;
    for (std::size_t i = 0; i < 300; ++i) {
        int label = static_cast<int>(i % static_cast<std::size_t>(classes));
        for (std::size_t f = 0; f < input_dim; ++f)
            data.x(i, f) = rng.gaussian(2.0 * label, 0.4);
        data.y[i] = label;
    }
    ml::MlpConfig config;
    config.inputDim = input_dim;
    config.hiddenLayers = {8};
    config.numClasses = classes;
    config.epochs = 30;
    config.seed = seed;
    ml::Mlp mlp(config);
    mlp.train(data);
    return hi::lowerMlp(mlp, hc::FixedPointFormat::q88(), "m");
}

hcore::ModelSpec
spec(const std::string &name)
{
    hcore::ModelSpec s;
    s.name = name;
    return s;
}

}  // namespace

TEST(ExecuteSchedule, SingleLeafMatchesPlatformEvaluate)
{
    auto ir = trainedIr(3, 2, 1);
    hb::TaurusPlatform platform;
    hc::Rng rng(2);
    hm::Matrix x(20, 3);
    for (double &v : x.data())
        v = rng.gaussian(1.0, 1.0);

    std::map<std::string, hi::ModelIr> models{{"a", ir}};
    auto node = hcore::leaf(spec("a"));
    EXPECT_EQ(hcore::executeSchedule(node, models, platform, x),
              platform.evaluate(ir, x));
}

TEST(ExecuteSchedule, SequentialIdentityMapPassesSameFeatures)
{
    auto ir_a = trainedIr(3, 2, 3);
    auto ir_b = trainedIr(3, 2, 4);
    hb::TaurusPlatform platform;
    hc::Rng rng(5);
    hm::Matrix x(15, 3);
    for (double &v : x.data())
        v = rng.gaussian(0.0, 1.0);

    std::map<std::string, hi::ModelIr> models{{"a", ir_a}, {"b", ir_b}};
    auto node = spec("a") > spec("b");
    // Identity IoMap: final verdict equals running b alone.
    EXPECT_EQ(hcore::executeSchedule(node, models, platform, x),
              platform.evaluate(ir_b, x));
}

TEST(ExecuteSchedule, AppendLabelMapWidensDownstreamInput)
{
    auto ir_a = trainedIr(3, 2, 6);
    auto ir_b = trainedIr(4, 2, 7);  // expects the appended label.
    hb::TaurusPlatform platform;
    hc::Rng rng(8);
    hm::Matrix x(10, 3);
    for (double &v : x.data())
        v = rng.gaussian(0.0, 1.0);

    std::map<std::string, hi::ModelIr> models{{"a", ir_a}, {"b", ir_b}};
    auto node = spec("a") > spec("b");
    node.ioMap = hcore::IoMap::appendLabel();
    auto verdicts = hcore::executeSchedule(node, models, platform, x);
    EXPECT_EQ(verdicts.size(), 10u);
    for (int v : verdicts) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 2);
    }
}

TEST(ExecuteSchedule, ParallelBranchesReturnLastBranchVerdict)
{
    auto ir_a = trainedIr(3, 2, 9);
    auto ir_b = trainedIr(3, 2, 10);
    hb::TaurusPlatform platform;
    hc::Rng rng(11);
    hm::Matrix x(12, 3);
    for (double &v : x.data())
        v = rng.gaussian(0.0, 1.0);

    std::map<std::string, hi::ModelIr> models{{"a", ir_a}, {"b", ir_b}};
    auto node = spec("a") | spec("b");
    EXPECT_EQ(hcore::executeSchedule(node, models, platform, x),
              platform.evaluate(ir_b, x));
}

TEST(ExecuteSchedule, MissingModelThrows)
{
    hb::TaurusPlatform platform;
    std::map<std::string, hi::ModelIr> models;
    hm::Matrix x(1, 3, 0.0);
    EXPECT_THROW(
        hcore::executeSchedule(hcore::leaf(spec("ghost")), models,
                               platform, x),
        std::runtime_error);
}

// ----------------------------------------------------------- harness ---

TEST(PipelineHarness, ReplaysParsedPacketsEndToEnd)
{
    hn::IotPacketConfig config;
    config.numPackets = 400;
    auto packets = hn::generateIotPackets(config);
    hn::FeatureExtractor extractor;
    auto dataset = datasetFromPackets(packets, extractor);

    ml::StandardScaler scaler;
    ml::Dataset scaled = dataset;
    scaled.x = scaler.fitTransform(dataset.x);

    ml::MlpConfig mlp_config;
    mlp_config.inputDim = dataset.numFeatures();
    mlp_config.numClasses = dataset.numClasses;
    mlp_config.hiddenLayers = {12};
    mlp_config.epochs = 30;
    ml::Mlp mlp(mlp_config);
    mlp.train(scaled);
    auto ir = hi::lowerMlp(mlp, hc::FixedPointFormat::q88(), "tc");

    hcore::PipelineHarness harness(
        ir, std::make_shared<hb::TaurusPlatform>(), scaler, extractor);

    std::vector<hn::RawPacket> raw;
    std::vector<int> truth;
    for (const auto &labeled : packets) {
        raw.push_back(labeled.packet);
        truth.push_back(labeled.deviceClass);
    }
    auto stats = harness.replay(raw);
    EXPECT_EQ(stats.packetsOffered, 400u);
    EXPECT_EQ(stats.packetsClassified, 400u);
    EXPECT_GT(stats.modelThroughputGpps, 0.0);
    EXPECT_GT(stats.modelLatencyNs, 0.0);
    // Separable archetypes: the deployed model should be quite accurate.
    EXPECT_GT(ml::accuracy(truth, stats.verdicts), 0.8);
}

TEST(PipelineHarness, WireReplayDropsMalformedFrames)
{
    hn::IotPacketConfig config;
    config.numPackets = 50;
    auto packets = hn::generateIotPackets(config);
    hn::FeatureExtractor extractor;
    auto dataset = datasetFromPackets(packets, extractor);

    ml::StandardScaler scaler;
    scaler.fit(dataset.x);
    auto ir = trainedIr(hn::kNumTcFeatures, dataset.numClasses, 21);

    hcore::PipelineHarness harness(
        ir, std::make_shared<hb::TaurusPlatform>(), scaler, extractor);

    std::vector<std::vector<std::uint8_t>> frames;
    for (const auto &labeled : packets)
        frames.push_back(serialize(labeled.packet));
    // Corrupt every fifth frame's IPv4 header.
    for (std::size_t i = 0; i < frames.size(); i += 5)
        frames[i][hn::EthernetHeader::kWireSize + 8] ^= 0xFF;

    auto stats = harness.replayWire(frames);
    EXPECT_EQ(stats.packetsOffered, 50u);
    EXPECT_EQ(stats.packetsParsed, 40u);
    EXPECT_NEAR(stats.parseRate(), 0.8, 1e-9);
    EXPECT_EQ(stats.verdicts.size(), 40u);
}

TEST(PipelineHarness, NullPlatformRejected)
{
    auto ir = trainedIr(3, 2, 30);
    EXPECT_THROW(hcore::PipelineHarness(ir, nullptr, {}),
                 std::runtime_error);
}
