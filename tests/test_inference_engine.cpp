/**
 * @file
 * Tests for the multi-core streaming inference runtime: chunked
 * parallel-for semantics, InferenceEngine determinism at every jobs
 * width, concurrent execution of one shared plan, per-format
 * quantization caching (bit-exactness included), EvalOptions plumbing
 * through the backends, caller-scratch runRow, StreamHarness
 * end-of-trace drain, and inferJobs determinism through searchSpec.
 *
 * The concurrency tests double as the TSAN workload: CI runs this
 * binary under -fsanitize=thread (see .github/workflows/ci.yml).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>

#include "backends/fpga.hpp"
#include "backends/mat_platform.hpp"
#include "backends/taurus.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/compiler.hpp"
#include "core/generate.hpp"
#include "data/anomaly_generator.hpp"
#include "net/feature_extract.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/quant_cache.hpp"
#include "runtime/stream_harness.hpp"

namespace hb = homunculus::backends;
namespace hc = homunculus::common;
namespace hcore = homunculus::core;
namespace hi = homunculus::ir;
namespace hm = homunculus::math;
namespace hn = homunculus::net;
namespace hr = homunculus::runtime;
namespace ml = homunculus::ml;

namespace {

hm::Matrix
randomFeatures(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    hc::Rng rng(seed);
    hm::Matrix x(rows, cols);
    for (double &v : x.data())
        v = rng.uniform(-140.0, 140.0);  // exercises saturated quantization.
    return x;
}

std::int32_t
randomWord(hc::Rng &rng)
{
    return static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
}

hi::ModelIr
randomMlpIr(std::size_t input_dim, std::vector<std::size_t> widths,
            int classes, std::uint64_t seed)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kMlp;
    model.inputDim = input_dim;
    model.numClasses = classes;
    widths.push_back(static_cast<std::size_t>(classes));
    std::size_t prev = input_dim;
    for (std::size_t width : widths) {
        hi::QuantizedLayer layer;
        layer.inputDim = prev;
        layer.outputDim = width;
        layer.weights.resize(prev * width);
        layer.biases.resize(width);
        for (auto &w : layer.weights)
            w = randomWord(rng);
        for (auto &b : layer.biases)
            b = randomWord(rng);
        model.layers.push_back(std::move(layer));
        prev = width;
    }
    model.validate();
    return model;
}

hi::ModelIr
randomKMeansIr(std::size_t input_dim, std::size_t k, std::uint64_t seed)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kKMeans;
    model.inputDim = input_dim;
    model.numClasses = static_cast<int>(k);
    for (std::size_t c = 0; c < k; ++c) {
        std::vector<std::int32_t> centroid(input_dim);
        for (auto &v : centroid)
            v = randomWord(rng);
        model.centroids.push_back(std::move(centroid));
    }
    model.validate();
    return model;
}

hi::ModelIr
randomSvmIr(std::size_t input_dim, int classes, std::uint64_t seed)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kSvm;
    model.inputDim = input_dim;
    model.numClasses = classes;
    for (int c = 0; c < classes; ++c) {
        std::vector<std::int32_t> weights(input_dim);
        for (auto &v : weights)
            v = randomWord(rng);
        model.svmWeights.push_back(std::move(weights));
        model.svmBiases.push_back(randomWord(rng));
    }
    model.validate();
    return model;
}

hi::ModelIr
randomTreeIr(std::size_t input_dim, std::size_t depth, int classes,
             std::uint64_t seed)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kDecisionTree;
    model.inputDim = input_dim;
    model.numClasses = classes;
    model.treeDepth = depth;
    std::function<int(std::size_t)> build = [&](std::size_t level) -> int {
        int index = static_cast<int>(model.treeNodes.size());
        model.treeNodes.emplace_back();
        if (level == depth) {
            model.treeNodes[static_cast<std::size_t>(index)].classLabel =
                static_cast<int>(rng.uniformInt(0, classes - 1));
            return index;
        }
        auto &fill = model.treeNodes[static_cast<std::size_t>(index)];
        fill.isLeaf = false;
        fill.feature = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(input_dim) - 1));
        fill.threshold = randomWord(rng);
        int left = build(level + 1);
        int right = build(level + 1);
        model.treeNodes[static_cast<std::size_t>(index)].left = left;
        model.treeNodes[static_cast<std::size_t>(index)].right = right;
        return index;
    };
    build(0);
    model.validate();
    return model;
}

std::vector<hi::ModelIr>
allFamilies(std::uint64_t seed)
{
    return {
        randomMlpIr(6, {16, 8}, 3, seed),
        randomKMeansIr(7, 5, seed + 1),
        randomSvmIr(6, 4, seed + 2),
        randomTreeIr(5, 4, 3, seed + 3),
    };
}

}  // namespace

// ------------------------------------------------------ parallelForChunks

TEST(ParallelForChunks, CoversEveryIndexExactlyOnce)
{
    for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        std::vector<std::atomic<int>> hits(1000);
        std::atomic<bool> bad_worker{false};
        hc::parallelForChunks(
            jobs, hits.size(), 64,
            [&](std::size_t begin, std::size_t end, std::size_t worker) {
                if (worker >= hc::effectiveJobs(jobs))
                    bad_worker = true;
                for (std::size_t i = begin; i < end; ++i)
                    hits[i].fetch_add(1);
            });
        EXPECT_FALSE(bad_worker.load());
        for (const auto &hit : hits)
            EXPECT_EQ(hit.load(), 1);
    }
}

TEST(ParallelForChunks, ChunkBoundariesAreContiguousAndSized)
{
    // Single-threaded so ordering is observable: chunks must arrive in
    // order, sized chunk_size except the tail.
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    hc::parallelForChunks(1, 10, 4,
                          [&](std::size_t begin, std::size_t end,
                              std::size_t worker) {
                              EXPECT_EQ(worker, 0u);
                              chunks.emplace_back(begin, end);
                          });
    std::vector<std::pair<std::size_t, std::size_t>> expected = {
        {0, 4}, {4, 8}, {8, 10}};
    EXPECT_EQ(chunks, expected);
}

TEST(ParallelForChunks, RethrowsLowestChunkFailure)
{
    try {
        hc::parallelForChunks(
            4, 100, 10,
            [&](std::size_t begin, std::size_t, std::size_t) {
                if (begin == 30 || begin == 70)
                    throw std::runtime_error("chunk " +
                                             std::to_string(begin));
            });
        FAIL() << "expected parallelForChunks to throw";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "chunk 30");
    }
}

TEST(ParallelForChunks, EdgeCases)
{
    // count == 0 is a no-op; chunk_size == 0 is a contract violation.
    hc::parallelForChunks(4, 0, 16,
                          [](std::size_t, std::size_t, std::size_t) {
                              FAIL() << "no chunks expected";
                          });
    EXPECT_THROW(hc::parallelForChunks(
                     4, 10, 0,
                     [](std::size_t, std::size_t, std::size_t) {}),
                 std::invalid_argument);
}

// ------------------------------------------------------- InferenceEngine

TEST(InferenceEngine, BitIdenticalAcrossJobsWidths)
{
    for (const hi::ModelIr &model : allFamilies(101)) {
        auto x = randomFeatures(5003, model.inputDim, 7);  // odd: drain.
        auto plan = hi::ExecutablePlan::compile(model);
        auto reference = plan.run(x);
        for (std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{3}, std::size_t{8}}) {
            hr::EngineOptions options;
            options.jobs = jobs;
            options.minRowsToShard = 1;  // force sharding even here.
            options.maxShardRows = 512;
            hr::InferenceEngine engine(plan, options);
            EXPECT_EQ(engine.run(x), reference)
                << hi::modelKindName(model.kind) << " jobs " << jobs;
        }
        // Default options (small batches stay inline) agree too.
        hr::InferenceEngine inline_engine(plan, {});
        EXPECT_EQ(inline_engine.run(x), reference);
    }
}

TEST(InferenceEngine, ConcurrentRunsOnOneSharedPlan)
{
    // Many threads execute one engine (one immutable plan) at once, each
    // itself sharding across workers — the TSAN-audited hot path.
    auto model = randomMlpIr(9, {12, 10}, 4, 311);
    hr::EngineOptions options;
    options.jobs = 2;
    options.minRowsToShard = 1;
    options.maxShardRows = 256;
    hr::InferenceEngine engine = hr::InferenceEngine::fromModel(model,
                                                               options);
    auto x = randomFeatures(3001, model.inputDim, 17);
    auto reference = hi::ExecutablePlan::compile(model).run(x);

    std::vector<std::vector<int>> results(4);
    std::vector<std::thread> threads;
    threads.reserve(results.size());
    for (auto &result : results)
        threads.emplace_back(
            [&engine, &x, &result] { result = engine.run(x); });
    for (auto &thread : threads)
        thread.join();
    for (const auto &result : results)
        EXPECT_EQ(result, reference);
}

TEST(InferenceEngine, EmptyBatchAndWidthMismatch)
{
    auto engine = hr::InferenceEngine::fromModel(randomSvmIr(4, 3, 7), {});
    EXPECT_TRUE(engine.run(hm::Matrix()).empty());
    EXPECT_THROW(engine.run(randomFeatures(3, 5, 1)), std::runtime_error);
}

TEST(InferenceEngine, QuantizedInputMatchesDoublePath)
{
    for (const hi::ModelIr &model : allFamilies(211)) {
        auto x = randomFeatures(2500, model.inputDim, 19);
        auto plan = hi::ExecutablePlan::compile(model);
        auto reference = plan.run(x);

        hi::QuantizedMatrix qx(x, model.format);
        EXPECT_EQ(plan.run(qx), reference)
            << hi::modelKindName(model.kind);
        hr::EngineOptions options;
        options.jobs = 4;
        options.minRowsToShard = 1;
        hr::InferenceEngine engine(plan, options);
        EXPECT_EQ(engine.run(qx), reference)
            << hi::modelKindName(model.kind);
    }

    // Format mismatch is rejected, not silently misread.
    auto model = randomSvmIr(4, 3, 23);
    hi::QuantizedMatrix wrong(randomFeatures(8, 4, 3),
                              hc::FixedPointFormat(12, 4));
    EXPECT_THROW(hi::ExecutablePlan::compile(model).run(wrong),
                 std::runtime_error);
}

TEST(ExecPlanScratch, CallerScratchRunRowMatchesAndReuses)
{
    for (const hi::ModelIr &model : allFamilies(83)) {
        auto x = randomFeatures(64, model.inputDim, 5);
        auto plan = hi::ExecutablePlan::compile(model);
        hi::ExecutablePlan::Scratch scratch;  // reused across all rows.
        for (std::size_t r = 0; r < x.rows(); ++r) {
            auto row = x.row(r);
            EXPECT_EQ(plan.runRow(row.data(), row.size(), scratch),
                      hi::executeIr(model, row));
        }
    }
}

// ------------------------------------------------------------ QuantCache

TEST(QuantCache, SharesOneQuantizationPerFormat)
{
    auto x = randomFeatures(600, 5, 29);
    hr::QuantCache cache(x);
    EXPECT_TRUE(cache.covers(x));
    hm::Matrix other = x;
    EXPECT_FALSE(cache.covers(other));  // identity, not value equality.

    const auto &q88_a = cache.get(hc::FixedPointFormat::q88());
    const auto &q88_b = cache.get(hc::FixedPointFormat::q88());
    EXPECT_EQ(&q88_a, &q88_b);
    EXPECT_EQ(cache.entries(), 1u);
    const auto &q124 = cache.get(hc::FixedPointFormat(12, 4));
    EXPECT_NE(&q88_a, &q124);
    EXPECT_EQ(cache.entries(), 2u);

    // Bit-exactness guard: cached words equal direct quantization.
    for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t c = 0; c < x.cols(); ++c)
            EXPECT_EQ(q88_a.rowPtr(r)[c],
                      hc::FixedPointFormat::q88().quantize(x(r, c)));
}

TEST(QuantCache, ConcurrentGetIsSafeAndStable)
{
    auto x = randomFeatures(400, 6, 31);
    hr::QuantCache cache(x);
    std::vector<const hi::QuantizedMatrix *> seen(8, nullptr);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < seen.size(); ++t)
        threads.emplace_back([&cache, &seen, t] {
            seen[t] = &cache.get(hc::FixedPointFormat::q88());
        });
    for (auto &thread : threads)
        thread.join();
    for (const auto *ptr : seen)
        EXPECT_EQ(ptr, seen[0]);
    EXPECT_EQ(cache.entries(), 1u);
}

// --------------------------------------------- EvalOptions through stack

TEST(EvalOptions, PlatformsPredictIdenticallyAtAnyJobsWidthAndWithCache)
{
    hb::TaurusPlatform taurus;
    hb::FpgaPlatform fpga;
    hb::MatPlatform mat;
    for (const hi::ModelIr &model : allFamilies(401)) {
        auto x = randomFeatures(2600, model.inputDim, 37);
        hr::QuantCache cache(x);
        hb::EvalOptions parallel_cached;
        parallel_cached.jobs = 4;
        parallel_cached.quantCache = &cache;

        auto reference = taurus.evaluate(model, x);
        EXPECT_EQ(taurus.evaluate(model, x, parallel_cached), reference);
        EXPECT_EQ(fpga.evaluate(model, x, parallel_cached), reference);
        if (mat.supports(model.kind) == hb::AlgorithmSupport::kSupported) {
            auto mat_reference = mat.evaluate(model, x);
            EXPECT_EQ(mat.evaluate(model, x, parallel_cached),
                      mat_reference);
        }
        EXPECT_GE(cache.entries(), 1u);
    }
}

TEST(EvalOptions, SearchSpecBitIdenticalAcrossInferJobs)
{
    hcore::ModelSpec spec;
    spec.name = "ad";
    spec.optimizationMetric = hcore::Metric::kF1;
    spec.algorithms = {hcore::Algorithm::kDecisionTree};
    homunculus::data::AnomalyConfig config;
    config.numSamples = 700;
    auto split = homunculus::data::generateAnomalySplit(config);

    auto run_with = [&](std::size_t infer_jobs) {
        auto platform = hcore::Platforms::taurus();
        platform.constrain({1.0, 500.0}, {16, 16});
        hcore::CompileOptions options;
        options.bo.numInitSamples = 2;
        options.bo.numIterations = 3;
        options.inferJobs = infer_jobs;
        return hcore::searchSpec(spec, platform, options, split).value();
    };

    hcore::GeneratedModel one = run_with(1);
    hcore::GeneratedModel four = run_with(4);
    EXPECT_EQ(one.objective, four.objective);
    EXPECT_EQ(one.algorithm, four.algorithm);
    EXPECT_EQ(one.model.treeNodes.size(), four.model.treeNodes.size());
    EXPECT_EQ(one.searchHistory.history.size(),
              four.searchHistory.history.size());
}

// ---------------------------------------------------------- StreamHarness

namespace {

/** A 7-feature model matching the packet extractor's schema. */
hi::ModelIr
tcModel(std::uint64_t seed)
{
    return randomMlpIr(hn::kNumTcFeatures, {12, 8}, 5, seed);
}

std::vector<hn::RawPacket>
iotTrace(std::size_t count, std::uint64_t seed)
{
    hn::IotPacketConfig config;
    config.numPackets = count;
    config.seed = seed;
    std::vector<hn::RawPacket> packets;
    packets.reserve(count);
    for (auto &labeled : hn::generateIotPackets(config))
        packets.push_back(std::move(labeled.packet));
    return packets;
}

}  // namespace

TEST(StreamHarness, DrainsPartialFinalBatchInTraceOrder)
{
    auto model = tcModel(83);
    // 997 packets with batch 256: 3 full batches + a 229-row drain.
    auto packets = iotTrace(997, 5);

    hr::StreamConfig config;
    config.batchRows = 256;
    hr::StreamHarness harness(hr::InferenceEngine::fromModel(model, {}),
                              hn::FeatureExtractor(), std::nullopt,
                              config);
    hr::StreamStats stats = harness.replay(packets);

    EXPECT_EQ(stats.packetsOffered, 997u);
    EXPECT_EQ(stats.packetsParsed, 997u);
    EXPECT_EQ(stats.rowsClassified, 997u);
    EXPECT_EQ(stats.batches, 4u);
    ASSERT_EQ(stats.verdicts.size(), 997u);

    // Verdicts match the engine run over the whole extracted matrix.
    hn::FeatureExtractor extractor;
    hm::Matrix features(packets.size(), hn::kNumTcFeatures);
    for (std::size_t r = 0; r < packets.size(); ++r) {
        auto row = extractor.extract(packets[r]);
        for (std::size_t c = 0; c < row.size(); ++c)
            features(r, c) = row[c];
    }
    EXPECT_EQ(stats.verdicts,
              hi::ExecutablePlan::compile(model).run(features));
}

TEST(StreamHarness, PipelinedMatchesSequentialReplay)
{
    auto model = tcModel(89);
    auto packets = iotTrace(1500, 11);

    hr::EngineOptions engine_options;
    engine_options.jobs = 2;
    engine_options.minRowsToShard = 1;
    hr::StreamConfig pipelined;
    pipelined.batchRows = 200;
    pipelined.pipelined = true;
    hr::StreamConfig sequential = pipelined;
    sequential.pipelined = false;

    hr::StreamHarness a(hr::InferenceEngine::fromModel(model,
                                                       engine_options),
                        hn::FeatureExtractor(), std::nullopt, pipelined);
    hr::StreamHarness b(hr::InferenceEngine::fromModel(model,
                                                       engine_options),
                        hn::FeatureExtractor(), std::nullopt, sequential);
    hr::StreamStats sa = a.replay(packets);
    hr::StreamStats sb = b.replay(packets);
    EXPECT_EQ(sa.verdicts, sb.verdicts);
    EXPECT_EQ(sa.batches, sb.batches);
    EXPECT_EQ(sa.rowsClassified, sb.rowsClassified);
    EXPECT_GT(sa.rowsPerSec, 0.0);
    EXPECT_GE(sa.p99BatchLatencyUs, sa.p50BatchLatencyUs);
}

TEST(StreamHarness, WirePathDropsMalformedFramesOnly)
{
    auto model = tcModel(97);
    auto packets = iotTrace(300, 13);
    std::vector<std::vector<std::uint8_t>> frames;
    frames.reserve(packets.size() + 1);
    for (const auto &packet : packets)
        frames.push_back(hn::serialize(packet));
    frames.push_back({0xde, 0xad});  // truncated garbage frame.

    hr::StreamConfig config;
    config.batchRows = 128;
    hr::StreamHarness harness(hr::InferenceEngine::fromModel(model, {}),
                              hn::FeatureExtractor(), std::nullopt,
                              config);
    hr::StreamStats stats = harness.replayWire(frames);
    EXPECT_EQ(stats.packetsOffered, 301u);
    EXPECT_EQ(stats.packetsParsed, 300u);
    EXPECT_EQ(stats.rowsClassified, 300u);
}

TEST(StreamHarness, RejectsMismatchedModelAndEmptyTraceIsClean)
{
    // 5-feature model cannot consume the 7-feature extractor schema.
    EXPECT_THROW(
        hr::StreamHarness(
            hr::InferenceEngine::fromModel(randomMlpIr(5, {8}, 2, 3), {}),
            hn::FeatureExtractor()),
        std::runtime_error);

    hr::StreamHarness harness(
        hr::InferenceEngine::fromModel(tcModel(7), {}),
        hn::FeatureExtractor());
    hr::StreamStats stats = harness.replay({});
    EXPECT_EQ(stats.rowsClassified, 0u);
    EXPECT_EQ(stats.batches, 0u);
    EXPECT_TRUE(stats.verdicts.empty());
}
