/**
 * @file
 * Tests for runtime::Executor, the persistent worker pool under every
 * parallel dispatch: lifecycle (lazy start, resize/restart, shutdown),
 * deterministic lowest-index exception rethrow under pool reuse,
 * concurrent submitters sharing one pool, nested-dispatch inlining (the
 * oversubscription fix), and the spawn-count guarantee — zero thread
 * creations per batch once the pool is warm.
 *
 * These run under TSAN in CI alongside the engine/harness tests.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "runtime/executor.hpp"
#include "runtime/inference_engine.hpp"

namespace hc = homunculus::common;
namespace hi = homunculus::ir;
namespace hm = homunculus::math;
namespace hr = homunculus::runtime;

namespace {

/** Sum 0..count-1 via a dispatch, checking worker-id bounds. */
void
expectDispatchCovers(hr::Executor &executor, std::size_t width,
                     std::size_t count)
{
    std::vector<std::atomic<int>> hits(count);
    std::atomic<bool> bad_worker{false};
    executor.run(width, count,
                 [&](std::size_t task, std::size_t worker) {
                     if (worker >= executor.resolve(width))
                         bad_worker = true;
                     hits[task].fetch_add(1);
                 });
    EXPECT_FALSE(bad_worker.load());
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

}  // namespace

TEST(Executor, LazyStartAndDispatchAtSeveralWidths)
{
    hr::Executor executor(4);
    EXPECT_EQ(executor.parallelism(), 4u);
    EXPECT_EQ(executor.liveWorkers(), 0u);  // nothing spawned yet.

    expectDispatchCovers(executor, 1, 100);
    EXPECT_EQ(executor.liveWorkers(), 0u);  // width 1 stays inline.

    expectDispatchCovers(executor, 4, 1000);
    EXPECT_GT(executor.liveWorkers(), 0u);
    expectDispatchCovers(executor, 0, 1000);  // 0 resolves to target.
    expectDispatchCovers(executor, 3, 7);     // width > tasks clamps.
}

TEST(Executor, RestartAfterResizeAndShutdown)
{
    hr::Executor executor(4);
    expectDispatchCovers(executor, 4, 500);
    EXPECT_GT(executor.liveWorkers(), 0u);

    executor.resize(2);
    EXPECT_EQ(executor.parallelism(), 2u);
    EXPECT_EQ(executor.liveWorkers(), 0u);  // restart dropped workers.
    expectDispatchCovers(executor, 0, 500);  // respawns lazily at 2.
    EXPECT_LE(executor.liveWorkers(), 1u);   // caller + 1 helper.

    executor.shutdown();
    EXPECT_EQ(executor.liveWorkers(), 0u);
    expectDispatchCovers(executor, 2, 500);  // usable after shutdown.
}

TEST(Executor, LowestIndexExceptionDeterministicUnderReuse)
{
    // The same pool serves many failing dispatches back to back; the
    // rethrown error must always be task 3's, never a later one, and a
    // worker that captured an exception must survive for the next job.
    hr::Executor executor(4);
    for (int round = 0; round < 20; ++round) {
        try {
            executor.run(4, 64, [](std::size_t task, std::size_t) {
                if (task == 3 || task == 40)
                    throw std::runtime_error("task " +
                                             std::to_string(task));
            });
            FAIL() << "expected the dispatch to throw";
        } catch (const std::runtime_error &error) {
            EXPECT_STREQ(error.what(), "task 3");
        }
    }
    expectDispatchCovers(executor, 4, 256);  // pool still healthy.
}

TEST(Executor, ConcurrentSubmittersShareOnePool)
{
    hr::Executor executor(4);
    constexpr std::size_t kSubmitters = 6;
    constexpr std::size_t kTasks = 400;
    std::vector<std::uint64_t> sums(kSubmitters, 0);
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (std::size_t s = 0; s < kSubmitters; ++s)
        submitters.emplace_back([&executor, &sums, s] {
            std::vector<std::uint64_t> partial(kTasks, 0);
            for (int round = 0; round < 5; ++round) {
                executor.run(3, kTasks,
                             [&](std::size_t task, std::size_t) {
                                 partial[task] = task + 1;
                             });
            }
            sums[s] = std::accumulate(partial.begin(), partial.end(),
                                      std::uint64_t{0});
        });
    for (auto &thread : submitters)
        thread.join();
    for (std::uint64_t sum : sums)
        EXPECT_EQ(sum, std::uint64_t{kTasks} * (kTasks + 1) / 2);
}

TEST(Executor, NestedDispatchRunsInlineOnPoolWorkers)
{
    // A dispatch issued from inside a pool worker must not fan out
    // again (the oversubscription/deadlock guard): its tasks run on the
    // issuing worker with slot 0. Repeated nesting must neither grow
    // the pool nor deadlock.
    hr::Executor executor(4);
    expectDispatchCovers(executor, 4, 16);  // warm up the pool.
    std::size_t warm_workers = executor.liveWorkers();
    std::uint64_t warm_spawned = hr::Executor::threadsSpawned();

    std::atomic<int> inner_total{0};
    std::atomic<bool> inner_nonzero_slot{false};
    executor.run(4, 32, [&](std::size_t, std::size_t) {
        if (hr::Executor::onWorkerThread()) {
            // Nested section from a pool worker: must inline.
            executor.run(4, 8, [&](std::size_t, std::size_t slot) {
                if (slot != 0)
                    inner_nonzero_slot = true;
                inner_total.fetch_add(1);
            });
        } else {
            // The submitting thread participates too; nested dispatches
            // from it may fan out — also fine. Count the same work.
            executor.run(1, 8, [&](std::size_t, std::size_t) {
                inner_total.fetch_add(1);
            });
        }
    });
    EXPECT_EQ(inner_total.load(), 32 * 8);
    EXPECT_FALSE(inner_nonzero_slot.load());
    EXPECT_EQ(executor.liveWorkers(), warm_workers);
    EXPECT_EQ(hr::Executor::threadsSpawned(), warm_spawned);
}

TEST(Executor, ParallelForShimsUseTheProcessDefaultPool)
{
    // Warm the default pool, then check repeated shim dispatches create
    // no threads at all.
    hc::parallelFor(4, 64, [](std::size_t) {});
    std::uint64_t warm = hr::Executor::threadsSpawned();
    for (int round = 0; round < 50; ++round) {
        hc::parallelFor(4, 64, [](std::size_t) {});
        hc::parallelForChunks(4, 4096, 256,
                              [](std::size_t, std::size_t,
                                 std::size_t) {});
    }
    EXPECT_EQ(hr::Executor::threadsSpawned(), warm);
    EXPECT_EQ(hc::effectiveJobs(0),
              hr::Executor::processDefault().parallelism());
}

// The acceptance bar behind the whole refactor: after warm-up, a
// serving-style stream of small batches through the engine performs
// zero thread creations per batch.
TEST(Executor, EngineBatchesSpawnNoThreadsAfterWarmup)
{
    hi::ModelIr model;
    model.kind = hi::ModelKind::kSvm;
    model.inputDim = 8;
    model.numClasses = 3;
    for (int c = 0; c < 3; ++c) {
        model.svmWeights.push_back(
            std::vector<std::int32_t>(8, 100 * (c + 1)));
        model.svmBiases.push_back(c);
    }
    model.validate();

    hr::EngineOptions options;
    options.jobs = 4;
    options.minRowsToShard = 1;  // shard even 64-row batches.
    options.maxShardRows = 16;
    hr::InferenceEngine engine = hr::InferenceEngine::fromModel(model,
                                                               options);
    hm::Matrix batch(64, 8);
    for (std::size_t r = 0; r < batch.rows(); ++r)
        for (std::size_t c = 0; c < batch.cols(); ++c)
            batch(r, c) = static_cast<double>(r) * 0.25 -
                          static_cast<double>(c);

    std::vector<int> reference = engine.run(batch);  // warm-up batch.
    std::uint64_t warm = hr::Executor::threadsSpawned();
    for (int round = 0; round < 100; ++round)
        EXPECT_EQ(engine.run(batch), reference);
    EXPECT_EQ(hr::Executor::threadsSpawned(), warm)
        << "engine batches must not spawn threads after warm-up";
}
