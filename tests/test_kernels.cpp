/**
 * @file
 * Differential tests for the vectorized kernel layer (src/kernels/).
 *
 * The kernel contract is bit-exactness: every dispatch target (AVX2,
 * NEON, scalar) must reproduce the reference interpreter's labels AND
 * its intermediate saturation semantics on every model family, every
 * Q-format width, and every awkward shape (odd row counts, odd feature
 * widths — the vector-tail cases). These tests pin that contract by
 * running each available target against the scalar interpreter, plus
 * the dispatch-resolution rules (env override, bogus-value rejection,
 * force/reset).
 *
 * Suite names all start with "Kernel" so the CI thread-sanitizer job's
 * --gtest_filter picks them up.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>

#include "backends/mat_pipeline.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "ir/exec_plan.hpp"
#include "kernels/kernel_dispatch.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/model_registry.hpp"

namespace hb = homunculus::backends;
namespace hc = homunculus::common;
namespace hi = homunculus::ir;
namespace hk = homunculus::kernels;
namespace hm = homunculus::math;
namespace hr = homunculus::runtime;
namespace ml = homunculus::ml;

namespace {

/** Restores (or unsets) HOMUNCULUS_KERNELS and re-resolves on exit, so
 *  a test that pokes the env can never leak into its neighbors. */
class KernelEnvGuard
{
  public:
    KernelEnvGuard()
    {
        const char *value = std::getenv("HOMUNCULUS_KERNELS");
        had_ = value != nullptr;
        if (had_)
            saved_ = value;
    }

    ~KernelEnvGuard()
    {
        if (had_)
            setenv("HOMUNCULUS_KERNELS", saved_.c_str(), 1);
        else
            unsetenv("HOMUNCULUS_KERNELS");
        hk::KernelDispatch::reset();
    }

  private:
    bool had_ = false;
    std::string saved_;
};

/** Random features spanning past any format's range (saturation). */
hm::Matrix
randomFeatures(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    hc::Rng rng(seed);
    hm::Matrix x(rows, cols);
    for (double &v : x.data())
        v = rng.uniform(-140.0, 140.0);
    return x;
}

/** Random raw word inside @p format's representable range. */
std::int32_t
randomWord(hc::Rng &rng, const hc::FixedPointFormat &format)
{
    std::int64_t hi_word = (std::int64_t{1} << (format.totalBits() - 1)) - 1;
    return static_cast<std::int32_t>(rng.uniformInt(-hi_word - 1, hi_word));
}

hi::ModelIr
randomMlpIr(const hc::FixedPointFormat &format, std::size_t input_dim,
            std::vector<std::size_t> widths, int classes,
            ml::Activation activation, std::uint64_t seed)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kMlp;
    model.format = format;
    model.inputDim = input_dim;
    model.numClasses = classes;
    model.activation = activation;
    widths.push_back(static_cast<std::size_t>(classes));
    std::size_t prev = input_dim;
    for (std::size_t width : widths) {
        hi::QuantizedLayer layer;
        layer.inputDim = prev;
        layer.outputDim = width;
        layer.weights.resize(prev * width);
        layer.biases.resize(width);
        for (auto &w : layer.weights)
            w = randomWord(rng, format);
        for (auto &b : layer.biases)
            b = randomWord(rng, format);
        model.layers.push_back(std::move(layer));
        prev = width;
    }
    model.validate();
    return model;
}

hi::ModelIr
randomKMeansIr(const hc::FixedPointFormat &format, std::size_t input_dim,
               std::size_t k, std::uint64_t seed)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kKMeans;
    model.format = format;
    model.inputDim = input_dim;
    model.numClasses = static_cast<int>(k);
    for (std::size_t c = 0; c < k; ++c) {
        std::vector<std::int32_t> centroid(input_dim);
        for (auto &v : centroid)
            v = randomWord(rng, format);
        model.centroids.push_back(std::move(centroid));
    }
    model.validate();
    return model;
}

hi::ModelIr
randomSvmIr(const hc::FixedPointFormat &format, std::size_t input_dim,
            int classes, std::uint64_t seed)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kSvm;
    model.format = format;
    model.inputDim = input_dim;
    model.numClasses = classes;
    for (int c = 0; c < classes; ++c) {
        std::vector<std::int32_t> weights(input_dim);
        for (auto &v : weights)
            v = randomWord(rng, format);
        model.svmWeights.push_back(std::move(weights));
        model.svmBiases.push_back(randomWord(rng, format));
    }
    model.validate();
    return model;
}

hi::ModelIr
randomTreeIr(const hc::FixedPointFormat &format, std::size_t input_dim,
             std::size_t depth, int classes, std::uint64_t seed)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kDecisionTree;
    model.format = format;
    model.inputDim = input_dim;
    model.numClasses = classes;
    model.treeDepth = depth;
    std::function<int(std::size_t)> build = [&](std::size_t level) -> int {
        int index = static_cast<int>(model.treeNodes.size());
        model.treeNodes.emplace_back();
        if (level == depth) {
            model.treeNodes[static_cast<std::size_t>(index)].classLabel =
                static_cast<int>(rng.uniformInt(0, classes - 1));
            return index;
        }
        auto &fill = model.treeNodes[static_cast<std::size_t>(index)];
        fill.isLeaf = false;
        fill.feature = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(input_dim) - 1));
        fill.threshold = randomWord(rng, format);
        int left = build(level + 1);
        int right = build(level + 1);
        model.treeNodes[static_cast<std::size_t>(index)].left = left;
        model.treeNodes[static_cast<std::size_t>(index)].right = right;
        return index;
    };
    build(0);
    model.validate();
    return model;
}

/** One model of each family at @p format. */
std::vector<hi::ModelIr>
allFamilies(const hc::FixedPointFormat &format, std::uint64_t seed)
{
    return {
        randomMlpIr(format, 6, {16, 8}, 3, ml::Activation::kRelu, seed),
        randomMlpIr(format, 5, {12}, 4, ml::Activation::kTanh, seed + 1),
        randomKMeansIr(format, 7, 5, seed + 2),
        randomSvmIr(format, 6, 4, seed + 3),
        randomTreeIr(format, 5, 4, 3, seed + 4),
    };
}

std::vector<int>
interpretRows(const hi::ModelIr &model, const hm::Matrix &x)
{
    std::vector<int> labels(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r)
        labels[r] = hi::executeIr(model, x.row(r));
    return labels;
}

/**
 * The differential core: compile @p model once, pin the plan to each
 * target this host can run, and demand the interpreter's exact labels
 * from every one of them.
 */
void
expectAllTargetsMatchInterpreter(const hi::ModelIr &model,
                                 const hm::Matrix &x,
                                 const std::string &what)
{
    auto reference = interpretRows(model, x);
    for (hk::KernelTarget target : hk::KernelDispatch::available()) {
        auto plan = hi::ExecutablePlan::compile(model);
        plan.forceKernelTarget(target);
        EXPECT_EQ(plan.run(x), reference)
            << what << " diverges on target "
            << hk::kernelTargetName(target) << " (format Q"
            << model.format.integerBits() << "."
            << model.format.fracBits() << ")";
    }
}

/** Q-format ladder across the kernel gating tiers: int8 path
 *  (<= 8 bits), int16/narrow path (<= 16), wide fallback (> 16). */
std::vector<hc::FixedPointFormat>
formatLadder()
{
    return {
        {1, 1},    // 2-bit: extreme saturation everywhere.
        {2, 1},    // 3-bit, asymmetric.
        {2, 2},    // 4-bit.
        {4, 3},    // 7-bit, odd split.
        {4, 4},    // 8-bit: widest int8-path format.
        {5, 4},    // 9-bit: first int16-path format.
        {6, 6},    // 12-bit.
        {8, 8},    // Q8.8, the deployment default.
        {9, 8},    // 17-bit: first wide-fallback format.
        {10, 10},  // 20-bit.
        {12, 12},  // 24-bit.
    };
}

}  // namespace

TEST(KernelDispatch, ScalarIsAlwaysAvailable)
{
    auto available = hk::KernelDispatch::available();
    bool has_scalar = false;
    for (hk::KernelTarget target : available) {
        has_scalar = has_scalar || target == hk::KernelTarget::kScalar;
        // Every available target resolves to a fully populated table.
        const hk::KernelOps *ops = hk::KernelDispatch::find(target);
        ASSERT_NE(ops, nullptr);
        EXPECT_EQ(ops->target, target);
        EXPECT_NE(ops->denseI32, nullptr);
        EXPECT_NE(ops->denseI16, nullptr);
        EXPECT_NE(ops->argmaxI32, nullptr);
        EXPECT_NE(ops->argmaxI16, nullptr);
        EXPECT_NE(ops->treeTraverse, nullptr);
        EXPECT_NE(ops->squaredDist, nullptr);
        EXPECT_NE(ops->kmeansArgmin, nullptr);
        EXPECT_NE(ops->svmArgmaxNarrow, nullptr);
        EXPECT_NE(ops->rangeLowerBound, nullptr);
    }
    EXPECT_TRUE(has_scalar);
}

TEST(KernelDispatch, ParseTargetNamesAndRejections)
{
    EXPECT_EQ(hk::parseKernelTarget("scalar"), hk::KernelTarget::kScalar);
    EXPECT_EQ(hk::parseKernelTarget("avx2"), hk::KernelTarget::kAvx2);
    EXPECT_EQ(hk::parseKernelTarget("neon"), hk::KernelTarget::kNeon);
    EXPECT_THROW(hk::parseKernelTarget("bogus"), std::runtime_error);
    // "auto" is a resolution policy, not a table.
    EXPECT_THROW(hk::parseKernelTarget("auto"), std::runtime_error);
    EXPECT_STREQ(hk::kernelTargetName(hk::KernelTarget::kScalar), "scalar");
    EXPECT_STREQ(hk::kernelTargetName(hk::KernelTarget::kAvx2), "avx2");
    EXPECT_STREQ(hk::kernelTargetName(hk::KernelTarget::kNeon), "neon");
}

TEST(KernelDispatch, ForceWinsAndResetRestores)
{
    KernelEnvGuard guard;
    hk::KernelDispatch::force(hk::KernelTarget::kScalar);
    EXPECT_EQ(hk::KernelDispatch::active(), hk::KernelTarget::kScalar);
    EXPECT_STREQ(hk::KernelDispatch::provenance(), "forced");
    EXPECT_EQ(hk::KernelDispatch::ops().target, hk::KernelTarget::kScalar);
    // force() beats even an explicit env pin.
    setenv("HOMUNCULUS_KERNELS", "scalar", 1);
    hk::KernelDispatch::reset();
    hk::KernelDispatch::force(hk::KernelTarget::kScalar);
    EXPECT_STREQ(hk::KernelDispatch::provenance(), "forced");
}

TEST(KernelDispatch, BogusEnvValueIsAnErrorNotAFallback)
{
    KernelEnvGuard guard;
    setenv("HOMUNCULUS_KERNELS", "bogus", 1);
    hk::KernelDispatch::reset();
    EXPECT_THROW(hk::KernelDispatch::ops(), std::runtime_error);
    // "auto" in the env means the probe, never a parse error.
    setenv("HOMUNCULUS_KERNELS", "auto", 1);
    hk::KernelDispatch::reset();
    EXPECT_NO_THROW(hk::KernelDispatch::ops());
    EXPECT_STREQ(hk::KernelDispatch::provenance(), "auto");
    setenv("HOMUNCULUS_KERNELS", "scalar", 1);
    hk::KernelDispatch::reset();
    EXPECT_EQ(hk::KernelDispatch::active(), hk::KernelTarget::kScalar);
    EXPECT_STREQ(hk::KernelDispatch::provenance(), "env");
}

TEST(KernelDispatch, ForcingAnUnavailableTargetThrows)
{
    KernelEnvGuard guard;
    auto available = hk::KernelDispatch::available();
    for (int i = 0; i < hk::kNumKernelTargets; ++i) {
        auto target = static_cast<hk::KernelTarget>(i);
        bool is_available = false;
        for (hk::KernelTarget t : available)
            is_available = is_available || t == target;
        if (is_available)
            continue;
        EXPECT_THROW(hk::KernelDispatch::force(target), std::runtime_error);
        EXPECT_EQ(hk::KernelDispatch::find(target), nullptr);
    }
}

TEST(KernelDiff, AllFamiliesAllTargetsAcrossFormatLadder)
{
    for (const hc::FixedPointFormat &format : formatLadder()) {
        std::uint64_t seed = 100 + static_cast<std::uint64_t>(
                                       format.totalBits());
        for (const hi::ModelIr &model : allFamilies(format, seed)) {
            auto x = randomFeatures(97, model.inputDim, seed * 3 + 1);
            expectAllTargetsMatchInterpreter(
                model, x, hi::modelKindName(model.kind));
        }
    }
}

TEST(KernelDiff, VectorTailsOddRowCountsAndWidths)
{
    // Row counts straddling every lane width in play (8, 16) plus the
    // chunk remainders; feature widths that never divide a vector.
    const std::size_t row_counts[] = {1, 2, 7, 8, 9, 15, 16, 17, 31, 65};
    const hc::FixedPointFormat formats[] = {{4, 4}, {8, 8}};
    for (const hc::FixedPointFormat &format : formats) {
        for (std::size_t rows : row_counts) {
            auto mlp = randomMlpIr(format, 5, {9}, 3,
                                   ml::Activation::kRelu, rows * 7 + 1);
            auto tree = randomTreeIr(format, 3, 5, 4, rows * 7 + 2);
            auto kmeans = randomKMeansIr(format, 13, 3, rows * 7 + 3);
            auto svm = randomSvmIr(format, 17, 3, rows * 7 + 4);
            for (const hi::ModelIr *model : {&mlp, &tree, &kmeans, &svm}) {
                auto x = randomFeatures(rows, model->inputDim,
                                        rows * 11 + 5);
                expectAllTargetsMatchInterpreter(
                    *model, x, hi::modelKindName(model->kind));
            }
        }
    }
}

TEST(KernelDiff, SingleOutputAndSingleFeatureEdges)
{
    // Degenerate dims: 1 feature, 1-wide hidden layer, 2 classes.
    const hc::FixedPointFormat format(4, 4);
    auto mlp = randomMlpIr(format, 1, {1}, 2, ml::Activation::kRelu, 901);
    auto svm = randomSvmIr(format, 1, 2, 902);
    auto kmeans = randomKMeansIr(format, 1, 2, 903);
    for (const hi::ModelIr *model : {&mlp, &svm, &kmeans}) {
        auto x = randomFeatures(33, model->inputDim, 904);
        expectAllTargetsMatchInterpreter(*model, x,
                                         hi::modelKindName(model->kind));
    }
}

TEST(KernelMat, BatchWalkMatchesPerRowOnEveryTarget)
{
    KernelEnvGuard guard;
    // 600 rows spans one full 512-row pool shard plus a remainder, and
    // several 64-row chunks with a tail chunk.
    const hc::FixedPointFormat formats[] = {
        {4, 4},    // int8-tier model words.
        {8, 8},    // narrow (vectorized distance path).
        {10, 10},  // wide: the int64 reference path must kick in.
    };
    for (const hc::FixedPointFormat &format : formats) {
        std::vector<hi::ModelIr> models = {
            randomKMeansIr(format, 5, 4, 31),
            randomSvmIr(format, 5, 3, 37),
            randomTreeIr(format, 4, 3, 3, 41),
        };
        for (const hi::ModelIr &model : models) {
            auto x = randomFeatures(600, model.inputDim, 17);
            hb::MatPipeline pipeline = [&] {
                switch (model.kind) {
                  case hi::ModelKind::kKMeans:
                    return hb::MatPipeline::compileKMeans(model);
                  case hi::ModelKind::kSvm:
                    return hb::MatPipeline::compileSvm(model, 16);
                  default:
                    return hb::MatPipeline::compileTree(model);
                }
            }();
            std::vector<int> per_row(x.rows());
            for (std::size_t r = 0; r < x.rows(); ++r)
                per_row[r] = pipeline.process(x.row(r));
            for (hk::KernelTarget target : hk::KernelDispatch::available()) {
                // Per-pipeline pin (no process-global force/reset
                // dance): only this pipeline's walk changes target.
                pipeline.forceKernelTarget(target);
                EXPECT_EQ(pipeline.processBatch(x), per_row)
                    << hi::modelKindName(model.kind) << " on "
                    << hk::kernelTargetName(target) << " (format Q"
                    << format.integerBits() << "." << format.fracBits()
                    << ")";
            }
        }
    }
}

TEST(KernelEngine, ForceScalarOptionPinsOnlyThatEngine)
{
    const hc::FixedPointFormat format(4, 4);
    auto model = randomMlpIr(format, 6, {10}, 3, ml::Activation::kRelu, 71);
    auto x = randomFeatures(300, model.inputDim, 72);

    hr::EngineOptions scalar_options;
    scalar_options.forceScalarKernels = true;
    hr::InferenceEngine pinned =
        hr::InferenceEngine::fromModel(model, scalar_options);
    hr::InferenceEngine dispatched = hr::InferenceEngine::fromModel(model);

    ASSERT_NE(pinned.plan().forcedKernels(), nullptr);
    EXPECT_EQ(pinned.plan().forcedKernels()->target,
              hk::KernelTarget::kScalar);
    // The sibling engine keeps following the process-wide dispatch.
    EXPECT_EQ(dispatched.plan().forcedKernels(), nullptr);
    EXPECT_EQ(pinned.run(x), dispatched.run(x));
    EXPECT_EQ(pinned.run(x), interpretRows(model, x));
}

TEST(KernelEngine, RegistryPerLoadOverridePinsScalar)
{
    const hc::FixedPointFormat format(8, 8);
    auto model = randomSvmIr(format, 6, 3, 81);
    hr::ModelRegistry registry;
    hr::EngineOptions pinned_options;
    pinned_options.forceScalarKernels = true;
    std::uint64_t v1 = registry.load("svm", model);
    std::uint64_t v2 = registry.load("svm", model, true, pinned_options);
    auto dispatched = registry.version("svm", v1);
    auto pinned = registry.version("svm", v2);
    EXPECT_EQ(dispatched->engine.plan().forcedKernels(), nullptr);
    ASSERT_NE(pinned->engine.plan().forcedKernels(), nullptr);
    auto x = randomFeatures(128, model.inputDim, 82);
    EXPECT_EQ(pinned->engine.run(x), dispatched->engine.run(x));
}
