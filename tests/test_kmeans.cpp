/**
 * @file
 * Unit tests for KMeans clustering.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/kmeans.hpp"
#include "ml/metrics.hpp"

namespace ml = homunculus::ml;
namespace hm = homunculus::math;

namespace {

/** k well-separated gaussian blobs with ground-truth labels. */
std::pair<hm::Matrix, std::vector<int>>
makeClusters(std::size_t k, std::size_t per_cluster, std::uint64_t seed)
{
    homunculus::common::Rng rng(seed);
    hm::Matrix x(k * per_cluster, 2);
    std::vector<int> labels(k * per_cluster);
    for (std::size_t c = 0; c < k; ++c) {
        double cx = 10.0 * static_cast<double>(c);
        for (std::size_t i = 0; i < per_cluster; ++i) {
            std::size_t row = c * per_cluster + i;
            x(row, 0) = rng.gaussian(cx, 0.5);
            x(row, 1) = rng.gaussian(cx / 2.0, 0.5);
            labels[row] = static_cast<int>(c);
        }
    }
    return {x, labels};
}

}  // namespace

TEST(KMeans, RecoversWellSeparatedClusters)
{
    auto [x, truth] = makeClusters(3, 50, 1);
    ml::KMeansConfig config;
    config.numClusters = 3;
    config.seed = 2;
    ml::KMeans kmeans(config);
    kmeans.fit(x);
    auto assignments = kmeans.predict(x);
    EXPECT_NEAR(ml::vMeasure(truth, assignments), 1.0, 1e-9);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters)
{
    auto [x, truth] = makeClusters(4, 40, 3);
    (void)truth;
    double prev = 1e300;
    for (std::size_t k : {1, 2, 4, 8}) {
        ml::KMeansConfig config;
        config.numClusters = k;
        config.seed = 4;
        ml::KMeans kmeans(config);
        double inertia = kmeans.fit(x);
        EXPECT_LE(inertia, prev + 1e-9);
        prev = inertia;
    }
}

TEST(KMeans, CentroidShapeMatchesConfig)
{
    auto [x, truth] = makeClusters(3, 20, 5);
    (void)truth;
    ml::KMeansConfig config;
    config.numClusters = 3;
    ml::KMeans kmeans(config);
    kmeans.fit(x);
    EXPECT_EQ(kmeans.centroids().rows(), 3u);
    EXPECT_EQ(kmeans.centroids().cols(), 2u);
}

TEST(KMeans, ClampsClusterCountToSampleCount)
{
    hm::Matrix x = hm::Matrix::fromRows({{0, 0}, {1, 1}});
    ml::KMeansConfig config;
    config.numClusters = 10;
    ml::KMeans kmeans(config);
    kmeans.fit(x);
    EXPECT_EQ(kmeans.centroids().rows(), 2u);
}

TEST(KMeans, DeterministicGivenSeed)
{
    auto [x, truth] = makeClusters(3, 30, 6);
    (void)truth;
    ml::KMeansConfig config;
    config.numClusters = 3;
    config.seed = 77;
    ml::KMeans a(config), b(config);
    a.fit(x);
    b.fit(x);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_DOUBLE_EQ(a.centroids()(r, c), b.centroids()(r, c));
}

TEST(KMeans, PredictPointMatchesBatch)
{
    auto [x, truth] = makeClusters(2, 25, 8);
    (void)truth;
    ml::KMeansConfig config;
    config.numClusters = 2;
    ml::KMeans kmeans(config);
    kmeans.fit(x);
    auto batch = kmeans.predict(x);
    for (std::size_t i = 0; i < x.rows(); ++i)
        EXPECT_EQ(batch[i], kmeans.predictPoint(x.row(i)));
}

TEST(KMeans, ConvergesBeforeMaxIterationsOnEasyData)
{
    auto [x, truth] = makeClusters(2, 50, 9);
    (void)truth;
    ml::KMeansConfig config;
    config.numClusters = 2;
    config.maxIterations = 100;
    ml::KMeans kmeans(config);
    kmeans.fit(x);
    EXPECT_LT(kmeans.iterationsRun(), 100u);
}

TEST(KMeans, SingleClusterCentroidIsMean)
{
    hm::Matrix x = hm::Matrix::fromRows({{0, 0}, {2, 2}, {4, 4}});
    ml::KMeansConfig config;
    config.numClusters = 1;
    ml::KMeans kmeans(config);
    kmeans.fit(x);
    EXPECT_NEAR(kmeans.centroids()(0, 0), 2.0, 1e-9);
    EXPECT_NEAR(kmeans.centroids()(0, 1), 2.0, 1e-9);
}
