/**
 * @file
 * Unit tests for Dataset, splits, and preprocessing.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.hpp"
#include "ml/preprocess.hpp"

namespace ml = homunculus::ml;
namespace hm = homunculus::math;

namespace {

ml::Dataset
makeToyDataset(std::size_t n = 100)
{
    ml::Dataset data;
    data.x = hm::Matrix(n, 3);
    data.y.resize(n);
    data.numClasses = 2;
    data.featureNames = {"a", "b", "c"};
    for (std::size_t i = 0; i < n; ++i) {
        data.x(i, 0) = static_cast<double>(i);
        data.x(i, 1) = static_cast<double>(i % 7);
        data.x(i, 2) = -1.0;
        data.y[i] = static_cast<int>(i % 2);
    }
    return data;
}

}  // namespace

TEST(Dataset, CountsAndValidation)
{
    auto data = makeToyDataset();
    EXPECT_EQ(data.numSamples(), 100u);
    EXPECT_EQ(data.numFeatures(), 3u);
    EXPECT_EQ(data.countLabel(0), 50u);
    EXPECT_EQ(data.classCounts(), (std::vector<std::size_t>{50, 50}));
    EXPECT_NO_THROW(data.validate());
}

TEST(Dataset, ValidateRejectsBadLabels)
{
    auto data = makeToyDataset();
    data.y[3] = 7;
    EXPECT_THROW(data.validate(), std::runtime_error);
}

TEST(Dataset, SelectSamplesKeepsAlignment)
{
    auto data = makeToyDataset();
    auto subset = data.selectSamples({5, 10, 15});
    EXPECT_EQ(subset.numSamples(), 3u);
    EXPECT_DOUBLE_EQ(subset.x(1, 0), 10.0);
    EXPECT_EQ(subset.y[1], 0);
    EXPECT_EQ(subset.featureNames, data.featureNames);
}

TEST(Dataset, SelectFeaturesKeepsNames)
{
    auto data = makeToyDataset();
    auto narrow = data.selectFeatures({2, 0});
    EXPECT_EQ(narrow.numFeatures(), 2u);
    EXPECT_EQ(narrow.featureNames, (std::vector<std::string>{"c", "a"}));
    EXPECT_DOUBLE_EQ(narrow.x(4, 1), 4.0);
}

TEST(Dataset, ConcatStacksRows)
{
    auto a = makeToyDataset(10);
    auto b = makeToyDataset(5);
    auto both = a.concat(b);
    EXPECT_EQ(both.numSamples(), 15u);
    EXPECT_EQ(both.y.size(), 15u);
    EXPECT_DOUBLE_EQ(both.x(12, 0), 2.0);
}

TEST(Split, TrainTestPartitionIsComplete)
{
    auto data = makeToyDataset(100);
    auto split = ml::trainTestSplit(data, 0.3, 1);
    EXPECT_EQ(split.test.numSamples(), 30u);
    EXPECT_EQ(split.train.numSamples(), 70u);
}

TEST(Split, TrainTestDeterministicInSeed)
{
    auto data = makeToyDataset(50);
    auto a = ml::trainTestSplit(data, 0.2, 9);
    auto b = ml::trainTestSplit(data, 0.2, 9);
    for (std::size_t i = 0; i < a.test.numSamples(); ++i)
        EXPECT_DOUBLE_EQ(a.test.x(i, 0), b.test.x(i, 0));
}

TEST(Split, StratifiedPreservesClassBalance)
{
    auto data = makeToyDataset(200);
    auto split = ml::stratifiedSplit(data, 0.25, 3);
    auto test_counts = split.test.classCounts();
    EXPECT_EQ(test_counts[0], test_counts[1]);
    auto train_counts = split.train.classCounts();
    EXPECT_EQ(train_counts[0], train_counts[1]);
}

TEST(Split, RejectsDegenerateFractions)
{
    auto data = makeToyDataset(10);
    EXPECT_THROW(ml::trainTestSplit(data, 0.0, 1), std::runtime_error);
    EXPECT_THROW(ml::trainTestSplit(data, 1.0, 1), std::runtime_error);
    EXPECT_THROW(ml::stratifiedSplit(data, -0.5, 1), std::runtime_error);
}

TEST(Preprocess, StandardScalerZeroMeanUnitVar)
{
    auto data = makeToyDataset(64);
    ml::StandardScaler scaler;
    auto scaled = scaler.fitTransform(data.x);
    auto col = scaled.col(0);
    double mean = 0.0;
    for (double v : col)
        mean += v;
    mean /= static_cast<double>(col.size());
    EXPECT_NEAR(mean, 0.0, 1e-9);
}

TEST(Preprocess, StandardScalerHandlesConstantColumn)
{
    auto data = makeToyDataset(32);
    ml::StandardScaler scaler;
    auto scaled = scaler.fitTransform(data.x);
    // Column 2 is constant (-1): stddev guard keeps output finite.
    for (std::size_t i = 0; i < scaled.rows(); ++i)
        EXPECT_TRUE(std::isfinite(scaled(i, 2)));
}

TEST(Preprocess, MinMaxBoundsToUnitInterval)
{
    auto data = makeToyDataset(32);
    ml::MinMaxScaler scaler;
    auto scaled = scaler.fitTransform(data.x);
    for (std::size_t i = 0; i < scaled.rows(); ++i)
        for (std::size_t c = 0; c < scaled.cols(); ++c) {
            EXPECT_GE(scaled(i, c), 0.0);
            EXPECT_LE(scaled(i, c), 1.0);
        }
}

TEST(Preprocess, TransformUsesTrainStatisticsOnly)
{
    auto data = makeToyDataset(64);
    auto split = ml::trainTestSplit(data, 0.25, 5);
    auto scaled = ml::standardizeSplit(split);
    // Test rows transformed with train stats: widths preserved.
    EXPECT_EQ(scaled.test.numFeatures(), split.test.numFeatures());
    EXPECT_EQ(scaled.train.numSamples(), split.train.numSamples());
}

TEST(Preprocess, OneHotShapeAndContent)
{
    auto encoded = ml::oneHot({0, 2, 1}, 3);
    EXPECT_EQ(encoded.rows(), 3u);
    EXPECT_EQ(encoded.cols(), 3u);
    EXPECT_DOUBLE_EQ(encoded(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(encoded(1, 2), 1.0);
    EXPECT_DOUBLE_EQ(encoded(1, 0), 0.0);
    EXPECT_THROW(ml::oneHot({3}, 3), std::runtime_error);
}
