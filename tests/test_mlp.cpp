/**
 * @file
 * Unit tests for the MLP: shapes, training convergence, determinism.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"

namespace ml = homunculus::ml;
namespace hm = homunculus::math;

namespace {

/** Two gaussian blobs, linearly separable with margin. */
ml::Dataset
makeBlobs(std::size_t n, std::uint64_t seed, double separation = 3.0)
{
    homunculus::common::Rng rng(seed);
    ml::Dataset data;
    data.x = hm::Matrix(n, 2);
    data.y.resize(n);
    data.numClasses = 2;
    for (std::size_t i = 0; i < n; ++i) {
        int label = static_cast<int>(i % 2);
        double cx = label == 0 ? -separation / 2 : separation / 2;
        data.x(i, 0) = rng.gaussian(cx, 0.7);
        data.x(i, 1) = rng.gaussian(label == 0 ? -1.0 : 1.0, 0.7);
        data.y[i] = label;
    }
    return data;
}

/** XOR-style dataset: not linearly separable. */
ml::Dataset
makeXor(std::size_t n, std::uint64_t seed)
{
    homunculus::common::Rng rng(seed);
    ml::Dataset data;
    data.x = hm::Matrix(n, 2);
    data.y.resize(n);
    data.numClasses = 2;
    for (std::size_t i = 0; i < n; ++i) {
        double a = rng.uniform(-1, 1);
        double b = rng.uniform(-1, 1);
        data.x(i, 0) = a;
        data.x(i, 1) = b;
        data.y[i] = (a * b > 0) ? 1 : 0;
    }
    return data;
}

}  // namespace

TEST(MlpConfig, ParamCountFormula)
{
    ml::MlpConfig config;
    config.inputDim = 7;
    config.hiddenLayers = {10, 10, 5};
    config.numClasses = 2;
    // 7*10+10 + 10*10+10 + 10*5+5 + 5*2+2 = 80+110+55+12 = 257.
    EXPECT_EQ(config.paramCount(), 257u);
    EXPECT_EQ(config.layerDims(),
              (std::vector<std::size_t>{7, 10, 10, 5, 2}));
}

TEST(MlpConfig, NoHiddenLayersIsLogisticRegression)
{
    ml::MlpConfig config;
    config.inputDim = 4;
    config.numClasses = 3;
    EXPECT_EQ(config.paramCount(), 4u * 3u + 3u);
}

TEST(Mlp, PredictShapes)
{
    ml::MlpConfig config;
    config.inputDim = 2;
    config.hiddenLayers = {4};
    config.numClasses = 2;
    ml::Mlp mlp(config);
    auto data = makeBlobs(10, 1);
    auto proba = mlp.predictProba(data.x);
    EXPECT_EQ(proba.rows(), 10u);
    EXPECT_EQ(proba.cols(), 2u);
    auto labels = mlp.predict(data.x);
    EXPECT_EQ(labels.size(), 10u);
}

TEST(Mlp, SoftmaxRowsSumToOne)
{
    ml::MlpConfig config;
    config.inputDim = 2;
    config.hiddenLayers = {6};
    config.numClasses = 3;
    ml::Mlp mlp(config);
    hm::Matrix x(5, 2, 0.3);
    auto proba = mlp.predictProba(x);
    for (std::size_t r = 0; r < proba.rows(); ++r) {
        double total = 0.0;
        for (std::size_t c = 0; c < proba.cols(); ++c) {
            total += proba(r, c);
            EXPECT_GE(proba(r, c), 0.0);
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST(Mlp, LearnsLinearlySeparableBlobs)
{
    auto train = makeBlobs(400, 2);
    auto test = makeBlobs(200, 3);
    ml::MlpConfig config;
    config.inputDim = 2;
    config.hiddenLayers = {8};
    config.numClasses = 2;
    config.epochs = 40;
    ml::Mlp mlp(config);
    mlp.train(train);
    EXPECT_GT(ml::accuracy(test.y, mlp.predict(test.x)), 0.95);
}

TEST(Mlp, LearnsXorWithHiddenLayer)
{
    auto train = makeXor(600, 4);
    auto test = makeXor(300, 5);
    ml::MlpConfig config;
    config.inputDim = 2;
    config.hiddenLayers = {16, 8};
    config.numClasses = 2;
    config.epochs = 80;
    config.learningRate = 0.01;
    ml::Mlp mlp(config);
    mlp.train(train);
    EXPECT_GT(ml::accuracy(test.y, mlp.predict(test.x)), 0.9);
}

TEST(Mlp, TrainingReducesLoss)
{
    auto data = makeBlobs(300, 6);
    ml::MlpConfig config;
    config.inputDim = 2;
    config.hiddenLayers = {8};
    config.numClasses = 2;
    config.epochs = 30;
    ml::Mlp mlp(config);
    double before = mlp.loss(data);
    mlp.train(data);
    EXPECT_LT(mlp.loss(data), before);
}

TEST(Mlp, DeterministicGivenSeed)
{
    auto data = makeBlobs(200, 7);
    ml::MlpConfig config;
    config.inputDim = 2;
    config.hiddenLayers = {6};
    config.numClasses = 2;
    config.epochs = 10;
    config.seed = 99;
    ml::Mlp a(config), b(config);
    a.train(data);
    b.train(data);
    for (std::size_t l = 0; l < a.weights().size(); ++l)
        for (std::size_t i = 0; i < a.weights()[l].size(); ++i)
            EXPECT_DOUBLE_EQ(a.weights()[l].data()[i],
                             b.weights()[l].data()[i]);
}

TEST(Mlp, SgdFallbackAlsoLearns)
{
    auto data = makeBlobs(400, 8);
    ml::MlpConfig config;
    config.inputDim = 2;
    config.hiddenLayers = {8};
    config.numClasses = 2;
    config.epochs = 60;
    config.useAdam = false;
    config.learningRate = 0.05;
    ml::Mlp mlp(config);
    mlp.train(data);
    EXPECT_GT(ml::accuracy(data.y, mlp.predict(data.x)), 0.9);
}

TEST(Mlp, SetParametersRoundTrip)
{
    ml::MlpConfig config;
    config.inputDim = 2;
    config.hiddenLayers = {3};
    config.numClasses = 2;
    ml::Mlp mlp(config);
    auto weights = mlp.weights();
    auto biases = mlp.biases();
    weights[0](0, 0) = 42.0;
    mlp.setParameters(weights, biases);
    EXPECT_DOUBLE_EQ(mlp.weights()[0](0, 0), 42.0);
}

TEST(Mlp, ActivationNamesRoundTrip)
{
    for (auto act : {ml::Activation::kRelu, ml::Activation::kTanh,
                     ml::Activation::kSigmoid}) {
        EXPECT_EQ(ml::activationFromName(ml::activationName(act)), act);
    }
    EXPECT_THROW(ml::activationFromName("bogus"), std::runtime_error);
}

TEST(Mlp, TanhActivationTrains)
{
    auto data = makeBlobs(300, 10);
    ml::MlpConfig config;
    config.inputDim = 2;
    config.hiddenLayers = {8};
    config.numClasses = 2;
    config.activation = ml::Activation::kTanh;
    config.epochs = 40;
    ml::Mlp mlp(config);
    mlp.train(data);
    EXPECT_GT(ml::accuracy(data.y, mlp.predict(data.x)), 0.9);
}
