/**
 * @file
 * Round-trip and error tests for the ModelIr artifact format, including
 * the end-to-end property that a deserialized artifact classifies
 * identically to the original on every backend.
 */
#include <gtest/gtest.h>

#include "backends/mat_platform.hpp"
#include "backends/taurus.hpp"
#include "common/rng.hpp"
#include "ir/serialize.hpp"
#include "ml/kmeans.hpp"
#include "ml/svm.hpp"

namespace hi = homunculus::ir;
namespace ml = homunculus::ml;
namespace hm = homunculus::math;
namespace hc = homunculus::common;
namespace hb = homunculus::backends;

namespace {

ml::Dataset
makeBlobs(std::size_t n, int classes, std::uint64_t seed)
{
    hc::Rng rng(seed);
    ml::Dataset data;
    data.x = hm::Matrix(n, 3);
    data.y.resize(n);
    data.numClasses = classes;
    for (std::size_t i = 0; i < n; ++i) {
        int label = static_cast<int>(i % static_cast<std::size_t>(classes));
        for (std::size_t f = 0; f < 3; ++f)
            data.x(i, f) = rng.gaussian(2.0 * label, 0.5);
        data.y[i] = label;
    }
    return data;
}

hi::ModelIr
mlpIr(std::uint64_t seed = 1)
{
    ml::MlpConfig config;
    config.inputDim = 3;
    config.hiddenLayers = {6, 4};
    config.numClasses = 3;
    config.seed = seed;
    ml::Mlp mlp(config);
    mlp.train(makeBlobs(150, 3, seed));
    return hi::lowerMlp(mlp, hc::FixedPointFormat::q88(), "roundtrip");
}

}  // namespace

TEST(Serialize, MlpRoundTripIsExact)
{
    auto original = mlpIr();
    auto restored = hi::deserializeModel(hi::serializeModel(original));
    EXPECT_EQ(restored.kind, original.kind);
    EXPECT_EQ(restored.name, original.name);
    EXPECT_EQ(restored.inputDim, original.inputDim);
    EXPECT_EQ(restored.numClasses, original.numClasses);
    EXPECT_EQ(restored.activation, original.activation);
    ASSERT_EQ(restored.layers.size(), original.layers.size());
    for (std::size_t l = 0; l < original.layers.size(); ++l) {
        EXPECT_EQ(restored.layers[l].weights, original.layers[l].weights);
        EXPECT_EQ(restored.layers[l].biases, original.layers[l].biases);
    }
}

TEST(Serialize, RestoredMlpClassifiesIdentically)
{
    auto original = mlpIr(2);
    auto restored = hi::deserializeModel(hi::serializeModel(original));
    auto data = makeBlobs(100, 3, 9);
    EXPECT_EQ(hi::executeIrBatch(restored, data.x),
              hi::executeIrBatch(original, data.x));

    // Same verdicts through the Taurus simulator too.
    hb::TaurusPlatform taurus;
    EXPECT_EQ(taurus.evaluate(restored, data.x),
              taurus.evaluate(original, data.x));
}

TEST(Serialize, KMeansRoundTripThroughMatPipeline)
{
    auto data = makeBlobs(120, 3, 4);
    ml::KMeansConfig config;
    config.numClusters = 3;
    ml::KMeans kmeans(config);
    kmeans.fit(data.x);
    auto original =
        hi::lowerKMeans(kmeans, hc::FixedPointFormat::q88(), "km", 3);
    auto restored = hi::deserializeModel(hi::serializeModel(original));

    hb::MatPlatform mat;
    EXPECT_EQ(mat.evaluate(restored, data.x),
              mat.evaluate(original, data.x));
    EXPECT_EQ(mat.estimate(restored).matTables,
              mat.estimate(original).matTables);
}

TEST(Serialize, SvmRoundTrip)
{
    auto data = makeBlobs(150, 2, 5);
    ml::LinearSvm svm(ml::SvmConfig{});
    svm.train(data);
    auto original = hi::lowerSvm(svm, hc::FixedPointFormat::q88(), "svm", 3);
    auto restored = hi::deserializeModel(hi::serializeModel(original));
    EXPECT_EQ(restored.svmWeights, original.svmWeights);
    EXPECT_EQ(restored.svmBiases, original.svmBiases);
}

TEST(Serialize, TreeRoundTrip)
{
    auto data = makeBlobs(200, 2, 6);
    ml::TreeConfig config;
    config.maxDepth = 4;
    ml::DecisionTreeClassifier tree(config);
    tree.train(data);
    auto original =
        hi::lowerDecisionTree(tree, hc::FixedPointFormat::q88(), "dt", 3);
    auto restored = hi::deserializeModel(hi::serializeModel(original));
    ASSERT_EQ(restored.treeNodes.size(), original.treeNodes.size());
    EXPECT_EQ(restored.treeDepth, original.treeDepth);
    EXPECT_EQ(hi::executeIrBatch(restored, data.x),
              hi::executeIrBatch(original, data.x));
}

TEST(Serialize, NonDefaultFormatSurvives)
{
    ml::MlpConfig config;
    config.inputDim = 3;
    config.hiddenLayers = {4};
    config.numClasses = 2;
    ml::Mlp mlp(config);
    auto original = hi::lowerMlp(mlp, hc::FixedPointFormat(6, 10), "q610");
    auto restored = hi::deserializeModel(hi::serializeModel(original));
    EXPECT_EQ(restored.format.integerBits(), 6);
    EXPECT_EQ(restored.format.fracBits(), 10);
}

TEST(Serialize, FileSaveLoadRoundTrip)
{
    auto original = mlpIr(7);
    std::string path = ::testing::TempDir() + "hom_ir_artifact.txt";
    hi::saveModel(path, original);
    auto restored = hi::loadModel(path);
    EXPECT_EQ(restored.paramCount(), original.paramCount());
    auto data = makeBlobs(50, 3, 11);
    EXPECT_EQ(hi::executeIrBatch(restored, data.x),
              hi::executeIrBatch(original, data.x));
}

TEST(Serialize, RejectsBadHeaderAndTruncation)
{
    EXPECT_THROW(hi::deserializeModel("not-an-artifact v1\nend\n"),
                 std::runtime_error);
    auto text = hi::serializeModel(mlpIr(8));
    // Remove the trailing "end\n".
    text.resize(text.size() - 4);
    EXPECT_THROW(hi::deserializeModel(text), std::runtime_error);
}

TEST(Serialize, RejectsUnknownTagsAndInvalidModels)
{
    EXPECT_THROW(
        hi::deserializeModel("homunculus-ir v1\nbogus_tag 1\nend\n"),
        std::runtime_error);
    // Structurally broken model: MLP with no layers fails validate().
    EXPECT_THROW(hi::deserializeModel("homunculus-ir v1\nkind dnn\n"
                                      "input_dim 3\nnum_classes 2\nend\n"),
                 std::runtime_error);
    EXPECT_THROW(hi::loadModel("/nonexistent/path/model.txt"),
                 std::runtime_error);
}

// ------------------------------------------- scaler provenance (ir v3)

TEST(Serialize, ScalerMomentsRoundTripExactly)
{
    auto original = mlpIr(13);
    original.scalerMeans = {1.5, -0.25, 3.141592653589793};
    original.scalerStds = {0.5, 2.0, 1e-6};
    original.validate();

    std::string text = hi::serializeModel(original);
    EXPECT_NE(text.find("homunculus-ir v3"), std::string::npos);
    EXPECT_NE(text.find("scaler_means"), std::string::npos);
    EXPECT_NE(text.find("scaler_stds"), std::string::npos);

    auto restored = hi::deserializeModel(text);
    ASSERT_TRUE(restored.hasScaler());
    // %.17g serialization must round-trip every double bit-for-bit.
    EXPECT_EQ(restored.scalerMeans, original.scalerMeans);
    EXPECT_EQ(restored.scalerStds, original.scalerStds);
}

TEST(Serialize, ModelsWithoutScalerOmitTheLinesAndLegacyVersionsParse)
{
    auto original = mlpIr(17);
    ASSERT_FALSE(original.hasScaler());
    std::string text = hi::serializeModel(original);
    EXPECT_EQ(text.find("scaler_"), std::string::npos);

    // v1 and v2 artifacts (no scaler lines) still parse: rewrite the
    // header of a fresh serialization to the older versions.
    for (const char *version : {"v1", "v2"}) {
        std::string legacy = text;
        legacy.replace(legacy.find("v3"), 2, version);
        auto restored = hi::deserializeModel(legacy);
        EXPECT_FALSE(restored.hasScaler());
        EXPECT_EQ(restored.paramCount(), original.paramCount());
    }
}

TEST(Serialize, RawFeatureProvenanceRoundTripsAsScalerNone)
{
    // "Trained on raw features" is provenance too: recorded models
    // without moments serialize a scaler_none marker, so serving can
    // tell them apart from legacy artifacts (which may refit on the
    // trace) — and never invents a scaler for them.
    auto original = mlpIr(23);
    original.scalerRecorded = true;
    ASSERT_FALSE(original.hasScaler());

    std::string text = hi::serializeModel(original);
    EXPECT_NE(text.find("scaler_none"), std::string::npos);
    auto restored = hi::deserializeModel(text);
    EXPECT_TRUE(restored.scalerRecorded);
    EXPECT_FALSE(restored.hasScaler());

    // Legacy artifacts keep unknown provenance.
    auto legacy = hi::deserializeModel(hi::serializeModel(mlpIr(23)));
    EXPECT_FALSE(legacy.scalerRecorded);
}

TEST(Serialize, RejectsInconsistentScalerMoments)
{
    auto model = mlpIr(19);
    model.scalerMeans = {1.0, 2.0};  // width 2 != inputDim 3.
    model.scalerStds = {1.0, 1.0};
    EXPECT_THROW(hi::serializeModel(model), std::runtime_error);

    model.scalerMeans = {1.0, 2.0, 3.0};
    model.scalerStds = {1.0, 0.0, 1.0};  // zero std.
    EXPECT_THROW(hi::serializeModel(model), std::runtime_error);

    model.scalerStds = {1.0, 1.0, 1.0};
    EXPECT_NO_THROW(hi::serializeModel(model));
}
