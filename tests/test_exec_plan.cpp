/**
 * @file
 * Differential tests pinning ir::ExecutablePlan to the scalar reference
 * interpreter (ir::executeIr), plus the semantics-preservation contract
 * of the IR pass pipeline (prune-dead / fold-constants invariance).
 *
 * These tests are the compile-then-execute architecture's safety net:
 * every family must predict bit-identically under the plan, the batch
 * shim, every plan-backed platform simulator, and the MAT batch walk —
 * and the optimization passes must never change a prediction.
 */
#include <gtest/gtest.h>

#include <functional>

#include "backends/fpga.hpp"
#include "backends/mat_pipeline.hpp"
#include "backends/mat_platform.hpp"
#include "backends/mapreduce_sim.hpp"
#include "backends/taurus.hpp"
#include "common/rng.hpp"
#include "ir/exec_plan.hpp"
#include "ir/passes.hpp"
#include "ir/serialize.hpp"

namespace hb = homunculus::backends;
namespace hc = homunculus::common;
namespace hi = homunculus::ir;
namespace hm = homunculus::math;
namespace ml = homunculus::ml;

namespace {

/** Random feature matrix spanning the Q8.8 range (with saturation). */
hm::Matrix
randomFeatures(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    hc::Rng rng(seed);
    hm::Matrix x(rows, cols);
    for (double &v : x.data())
        v = rng.uniform(-140.0, 140.0);  // exercises saturated quantization.
    return x;
}

std::int32_t
randomWord(hc::Rng &rng)
{
    return static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
}

/** Random quantized MLP IR (weights drawn directly in the raw domain). */
hi::ModelIr
randomMlpIr(std::size_t input_dim, std::vector<std::size_t> widths,
            int classes, ml::Activation activation, std::uint64_t seed)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kMlp;
    model.inputDim = input_dim;
    model.numClasses = classes;
    model.activation = activation;
    widths.push_back(static_cast<std::size_t>(classes));
    std::size_t prev = input_dim;
    for (std::size_t width : widths) {
        hi::QuantizedLayer layer;
        layer.inputDim = prev;
        layer.outputDim = width;
        layer.weights.resize(prev * width);
        layer.biases.resize(width);
        for (auto &w : layer.weights)
            w = randomWord(rng);
        for (auto &b : layer.biases)
            b = randomWord(rng);
        model.layers.push_back(std::move(layer));
        prev = width;
    }
    model.validate();
    return model;
}

hi::ModelIr
randomKMeansIr(std::size_t input_dim, std::size_t k, std::uint64_t seed)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kKMeans;
    model.inputDim = input_dim;
    model.numClasses = static_cast<int>(k);
    for (std::size_t c = 0; c < k; ++c) {
        std::vector<std::int32_t> centroid(input_dim);
        for (auto &v : centroid)
            v = randomWord(rng);
        model.centroids.push_back(std::move(centroid));
    }
    model.validate();
    return model;
}

hi::ModelIr
randomSvmIr(std::size_t input_dim, int classes, std::uint64_t seed)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kSvm;
    model.inputDim = input_dim;
    model.numClasses = classes;
    for (int c = 0; c < classes; ++c) {
        std::vector<std::int32_t> weights(input_dim);
        for (auto &v : weights)
            v = randomWord(rng);
        model.svmWeights.push_back(std::move(weights));
        model.svmBiases.push_back(randomWord(rng));
    }
    model.validate();
    return model;
}

/** Random complete binary tree of the given depth. */
hi::ModelIr
randomTreeIr(std::size_t input_dim, std::size_t depth, int classes,
             std::uint64_t seed)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kDecisionTree;
    model.inputDim = input_dim;
    model.numClasses = classes;
    model.treeDepth = depth;

    std::function<int(std::size_t)> build = [&](std::size_t level) -> int {
        int index = static_cast<int>(model.treeNodes.size());
        model.treeNodes.emplace_back();
        if (level == depth) {
            model.treeNodes[static_cast<std::size_t>(index)].classLabel =
                static_cast<int>(rng.uniformInt(0, classes - 1));
            return index;
        }
        auto &fill = model.treeNodes[static_cast<std::size_t>(index)];
        fill.isLeaf = false;
        fill.feature = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(input_dim) - 1));
        fill.threshold = randomWord(rng);
        int left = build(level + 1);
        int right = build(level + 1);
        model.treeNodes[static_cast<std::size_t>(index)].left = left;
        model.treeNodes[static_cast<std::size_t>(index)].right = right;
        return index;
    };
    build(0);
    model.validate();
    return model;
}

std::vector<hi::ModelIr>
allFamilies(std::uint64_t seed)
{
    return {
        randomMlpIr(6, {16, 8}, 3, ml::Activation::kRelu, seed),
        randomMlpIr(5, {12}, 4, ml::Activation::kTanh, seed + 1),
        randomMlpIr(4, {8}, 2, ml::Activation::kSigmoid, seed + 2),
        randomKMeansIr(7, 5, seed + 3),
        randomSvmIr(6, 4, seed + 4),
        randomTreeIr(5, 4, 3, seed + 5),
    };
}

std::vector<int>
interpretRows(const hi::ModelIr &model, const hm::Matrix &x)
{
    std::vector<int> labels(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r)
        labels[r] = hi::executeIr(model, x.row(r));
    return labels;
}

}  // namespace

TEST(ExecPlan, BitIdenticalToInterpreterAcrossFamilies)
{
    for (std::uint64_t seed : {11ull, 29ull, 47ull}) {
        for (const hi::ModelIr &model : allFamilies(seed)) {
            auto x = randomFeatures(257, model.inputDim, seed * 7 + 1);
            auto plan = hi::ExecutablePlan::compile(model);
            EXPECT_EQ(plan.run(x), interpretRows(model, x))
                << "family " << hi::modelKindName(model.kind) << " seed "
                << seed;
        }
    }
}

TEST(ExecPlan, RunRowMatchesInterpreterPerRow)
{
    for (const hi::ModelIr &model : allFamilies(83)) {
        auto x = randomFeatures(32, model.inputDim, 5);
        auto plan = hi::ExecutablePlan::compile(model);
        for (std::size_t r = 0; r < x.rows(); ++r) {
            auto row = x.row(r);
            EXPECT_EQ(plan.runRow(row.data(), row.size()),
                      hi::executeIr(model, row));
        }
    }
}

TEST(ExecPlan, ExecuteIrBatchShimMatchesScalarInterpreter)
{
    for (const hi::ModelIr &model : allFamilies(101)) {
        auto x = randomFeatures(100, model.inputDim, 9);
        EXPECT_EQ(hi::executeIrBatch(model, x), interpretRows(model, x));
    }
}

TEST(ExecPlan, EmptyBatchAndWidthMismatch)
{
    auto model = randomSvmIr(4, 3, 7);
    auto plan = hi::ExecutablePlan::compile(model);
    EXPECT_TRUE(plan.run(hm::Matrix()).empty());
    auto bad = randomFeatures(3, 5, 1);
    EXPECT_THROW(plan.run(bad), std::runtime_error);
    std::vector<double> row(5, 0.0);
    EXPECT_THROW(plan.runRow(row.data(), row.size()), std::runtime_error);
}

TEST(ExecPlan, PlanBackedPlatformsMatchInterpreter)
{
    hb::TaurusPlatform taurus;
    hb::FpgaPlatform fpga;
    hb::MapReduceSimulator sim;
    for (const hi::ModelIr &model : allFamilies(211)) {
        auto x = randomFeatures(128, model.inputDim, 13);
        auto reference = interpretRows(model, x);
        EXPECT_EQ(taurus.evaluate(model, x), reference);
        EXPECT_EQ(fpga.evaluate(model, x), reference);
        EXPECT_EQ(sim.runStream(model, x).labels, reference);
    }
}

TEST(ExecPlan, MatBatchWalkMatchesPerRowProcess)
{
    hb::MatPlatform mat;
    std::vector<hi::ModelIr> models = {
        randomKMeansIr(5, 4, 31),
        randomSvmIr(5, 3, 37),
        randomTreeIr(4, 3, 3, 41),
    };
    for (const hi::ModelIr &model : models) {
        auto x = randomFeatures(100, model.inputDim, 17);
        hb::MatPipeline pipeline = [&] {
            switch (model.kind) {
              case hi::ModelKind::kKMeans:
                return hb::MatPipeline::compileKMeans(model);
              case hi::ModelKind::kSvm:
                return hb::MatPipeline::compileSvm(model, 16);
              default:
                return hb::MatPipeline::compileTree(model);
            }
        }();
        std::vector<int> per_row(x.rows());
        for (std::size_t r = 0; r < x.rows(); ++r)
            per_row[r] = pipeline.process(x.row(r));
        EXPECT_EQ(pipeline.processBatch(x), per_row);
        EXPECT_EQ(mat.evaluate(model, x), per_row);
    }
}

TEST(Passes, LoweringRecordsQuantizeAndValidate)
{
    hc::Rng rng(3);
    ml::Dataset data;
    data.x = hm::Matrix(60, 3);
    data.y.resize(60);
    data.numClasses = 2;
    for (std::size_t i = 0; i < 60; ++i) {
        data.y[i] = static_cast<int>(i % 2);
        for (std::size_t f = 0; f < 3; ++f)
            data.x(i, f) = rng.gaussian(data.y[i] ? 1.5 : -1.5, 0.5);
    }
    ml::MlpConfig config;
    config.inputDim = 3;
    config.hiddenLayers = {4};
    config.numClasses = 2;
    ml::Mlp mlp(config);
    mlp.train(data);

    auto model = hi::lowerMlp(mlp, hc::FixedPointFormat::q88(), "m");
    ASSERT_EQ(model.passes.size(), 2u);
    EXPECT_EQ(model.passes[0], "quantize");
    EXPECT_EQ(model.passes[1], "validate");
}

TEST(Passes, UnknownPassNameIsRegistryAware)
{
    hi::PassManager manager;
    try {
        manager.append("no-such-pass");
        FAIL() << "expected append to throw";
    } catch (const std::runtime_error &error) {
        EXPECT_NE(std::string(error.what()).find("fold-constants"),
                  std::string::npos);
        EXPECT_NE(std::string(error.what()).find("prune-dead"),
                  std::string::npos);
    }
}

TEST(Passes, PruneDeadDropsUnreachableTreeNodesInvariantly)
{
    auto model = randomTreeIr(5, 4, 3, 53);
    // Orphan a subtree: point an internal node's children at one leaf.
    for (auto &node : model.treeNodes) {
        if (!node.isLeaf &&
            !model.treeNodes[static_cast<std::size_t>(node.left)].isLeaf) {
            node.right = node.left;
            break;
        }
    }
    auto x = randomFeatures(200, model.inputDim, 19);
    auto before = interpretRows(model, x);
    std::size_t nodes_before = model.treeNodes.size();

    hi::PassManager::optimizationPipeline().run(model);
    EXPECT_LT(model.treeNodes.size(), nodes_before);
    EXPECT_EQ(interpretRows(model, x), before);
    EXPECT_EQ(hi::ExecutablePlan::compile(model).run(x), before);
}

TEST(Passes, PruneDeadDropsDeadMlpUnitsInvariantly)
{
    auto model = randomMlpIr(5, {10, 6}, 3, ml::Activation::kRelu, 59);
    // Kill hidden unit 2 of layer 0 on the output side and unit 4 on the
    // input side (zero incoming weights + zero bias).
    auto &layer0 = model.layers[0];
    auto &layer1 = model.layers[1];
    for (std::size_t k = 0; k < layer1.outputDim; ++k)
        layer1.weights[2 * layer1.outputDim + k] = 0;
    for (std::size_t i = 0; i < layer0.inputDim; ++i)
        layer0.weights[i * layer0.outputDim + 4] = 0;
    layer0.biases[4] = 0;

    auto x = randomFeatures(200, model.inputDim, 23);
    auto before = interpretRows(model, x);
    std::size_t params_before = model.paramCount();

    hi::PassManager::optimizationPipeline().run(model);
    EXPECT_LT(model.paramCount(), params_before);
    EXPECT_EQ(model.layers[0].outputDim, 8u);
    EXPECT_EQ(interpretRows(model, x), before);
    EXPECT_EQ(hi::ExecutablePlan::compile(model).run(x), before);
}

TEST(Passes, RegisteredQuantizeIsIdentityOnLoweredArtifacts)
{
    for (hi::ModelIr model : allFamilies(97)) {
        auto x = randomFeatures(100, model.inputDim, 7);
        auto before = interpretRows(model, x);
        hi::PassManager manager;
        EXPECT_FALSE(manager.append("quantize").run(model));
        EXPECT_EQ(interpretRows(model, x), before);
    }

    // A hand-patched out-of-range word is forced back onto the format.
    auto rogue = randomSvmIr(4, 3, 97);
    rogue.svmWeights[0][0] = 1 << 20;
    hi::PassManager manager;
    EXPECT_TRUE(manager.append("quantize").run(rogue));
    EXPECT_EQ(rogue.svmWeights[0][0], 32767);
}

TEST(Passes, FoldConstantsCollapsesSameLabelSplits)
{
    // A split whose leaves agree is a constant; folding plus pruning
    // leaves a smaller tree with identical predictions.
    hi::ModelIr model;
    model.kind = hi::ModelKind::kDecisionTree;
    model.inputDim = 2;
    model.numClasses = 2;
    model.treeDepth = 2;
    auto internal = [](std::size_t f, std::int32_t thr, int l, int r) {
        hi::IrTreeNode node;
        node.isLeaf = false;
        node.feature = f;
        node.threshold = thr;
        node.left = l;
        node.right = r;
        return node;
    };
    auto leafNode = [](int label) {
        hi::IrTreeNode node;
        node.classLabel = label;
        return node;
    };
    model.treeNodes = {
        internal(0, 100, 1, 2),   // root
        internal(1, -50, 3, 4),   // folds: both children are label 1.
        leafNode(0),
        leafNode(1),
        leafNode(1),
    };
    model.validate();

    auto x = randomFeatures(200, model.inputDim, 29);
    auto before = interpretRows(model, x);

    bool changed = hi::PassManager::optimizationPipeline().run(model);
    EXPECT_TRUE(changed);
    EXPECT_EQ(model.treeNodes.size(), 3u);
    EXPECT_EQ(model.treeDepth, 1u);
    EXPECT_EQ(interpretRows(model, x), before);
}

TEST(Passes, OptimizationPipelineInvariantOnRandomModels)
{
    for (std::uint64_t seed : {61ull, 67ull}) {
        for (hi::ModelIr model : allFamilies(seed)) {
            auto x = randomFeatures(150, model.inputDim, seed + 2);
            auto before = interpretRows(model, x);
            hi::PassManager::optimizationPipeline().run(model);
            EXPECT_NO_THROW(model.validate());
            EXPECT_EQ(interpretRows(model, x), before)
                << "family " << hi::modelKindName(model.kind);
            EXPECT_EQ(hi::ExecutablePlan::compile(model).run(x), before);
        }
    }
}

TEST(Passes, DumpHookFiresPerPass)
{
    auto model = randomTreeIr(4, 3, 2, 71);
    hi::PassManager manager = hi::PassManager::optimizationPipeline();
    std::vector<std::string> seen;
    manager.setDumpHook(
        [&](const std::string &name, const hi::ModelIr &dumped) {
            EXPECT_NO_THROW(dumped.validate());
            seen.push_back(name);
        });
    manager.run(model);
    EXPECT_EQ(seen, manager.passNames());
}

TEST(Passes, SerializedArtifactRoundTripsPassMetadata)
{
    auto model = randomSvmIr(4, 3, 79);
    hi::PassManager::optimizationPipeline().run(model);
    ASSERT_FALSE(model.passes.empty());

    std::string text = hi::serializeModel(model);
    EXPECT_NE(text.find("homunculus-ir v3"), std::string::npos);
    EXPECT_NE(text.find("passes validate prune-dead"), std::string::npos);

    auto restored = hi::deserializeModel(text);
    EXPECT_EQ(restored.passes, model.passes);
}
