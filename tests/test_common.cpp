/**
 * @file
 * Unit tests for the common substrate: rng, strings, csv, fixed point,
 * table printing.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/csv.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "common/table_printer.hpp"

namespace hc = homunculus::common;

// ---------------------------------------------------------------- Rng ---

TEST(Rng, DeterministicAcrossInstances)
{
    hc::Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    hc::Rng a(1), b(2);
    int differences = 0;
    for (int i = 0; i < 50; ++i)
        if (a.uniform() != b.uniform())
            ++differences;
    EXPECT_GT(differences, 40);
}

TEST(Rng, UniformRespectsBounds)
{
    hc::Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(-2.5, 3.5);
        EXPECT_GE(v, -2.5);
        EXPECT_LT(v, 3.5);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    hc::Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t v = rng.uniformInt(0, 4);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 4);
        saw_lo |= (v == 0);
        saw_hi |= (v == 4);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    hc::Rng rng(11);
    double sum = 0.0, sumsq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.gaussian(5.0, 2.0);
        sum += v;
        sumsq += v * v;
    }
    double mean = sum / n;
    double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ParetoIsHeavyTailedAboveScale)
{
    hc::Rng rng(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.pareto(100.0, 1.5), 100.0);
}

TEST(Rng, CategoricalRespectsWeights)
{
    hc::Rng rng(17);
    std::vector<double> weights = {0.0, 10.0, 0.0};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, PermutationIsAPermutation)
{
    hc::Rng rng(19);
    auto perm = rng.permutation(50);
    std::vector<bool> seen(50, false);
    for (std::size_t idx : perm) {
        ASSERT_LT(idx, 50u);
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
    }
}

TEST(Rng, ForkProducesIndependentStream)
{
    hc::Rng parent(23);
    hc::Rng child = parent.fork();
    // Child stream differs from what the parent produces next.
    EXPECT_NE(parent.uniform(), child.uniform());
}

// ------------------------------------------------------------- strings ---

TEST(StringUtil, SplitAndJoinRoundTrip)
{
    std::string text = "a,b,,c";
    auto parts = hc::split(text, ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(hc::join(parts, ","), text);
}

TEST(StringUtil, TrimRemovesEdgesOnly)
{
    EXPECT_EQ(hc::trim("  a b  "), "a b");
    EXPECT_EQ(hc::trim(""), "");
    EXPECT_EQ(hc::trim("   "), "");
}

TEST(StringUtil, FormatBehavesLikePrintf)
{
    EXPECT_EQ(hc::format("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
}

TEST(StringUtil, StartsWithAndLower)
{
    EXPECT_TRUE(hc::startsWith("homunculus", "hom"));
    EXPECT_FALSE(hc::startsWith("hom", "homunculus"));
    EXPECT_EQ(hc::toLower("AbC"), "abc");
}

TEST(StringUtil, ReplaceAllNonOverlapping)
{
    EXPECT_EQ(hc::replaceAll("aaa", "aa", "b"), "ba");
    EXPECT_EQ(hc::replaceAll("x{N}y{N}", "{N}", "7"), "x7y7");
}

TEST(StringUtil, IndentPrefixesEveryLine)
{
    EXPECT_EQ(hc::indent("a\nb", 2), "  a\n  b");
}

// ----------------------------------------------------------------- csv ---

TEST(Csv, ParseWithHeader)
{
    auto table = hc::parseCsv("x,y\n1,2\n3,4\n", true);
    ASSERT_EQ(table.header.size(), 2u);
    EXPECT_EQ(table.header[1], "y");
    ASSERT_EQ(table.numRows(), 2u);
    EXPECT_DOUBLE_EQ(table.rows[1][0], 3.0);
}

TEST(Csv, ParseRejectsNonNumeric)
{
    EXPECT_THROW(hc::parseCsv("1,abc\n", false), std::runtime_error);
}

TEST(Csv, ParseRejectsRaggedRows)
{
    EXPECT_THROW(hc::parseCsv("1,2\n3\n", false), std::runtime_error);
}

TEST(Csv, WriteParseRoundTrip)
{
    hc::CsvTable table;
    table.header = {"a", "b"};
    table.rows = {{1.5, -2.25}, {0.0, 1e6}};
    auto parsed = hc::parseCsv(hc::writeCsv(table), true);
    ASSERT_EQ(parsed.numRows(), 2u);
    EXPECT_DOUBLE_EQ(parsed.rows[0][1], -2.25);
    EXPECT_DOUBLE_EQ(parsed.rows[1][1], 1e6);
}

// --------------------------------------------------------- fixed point ---

TEST(FixedPoint, RoundTripSmallValues)
{
    auto fmt = hc::FixedPointFormat::q88();
    for (double v : {0.0, 1.0, -1.0, 0.5, -0.25, 100.0, -100.0})
        EXPECT_NEAR(fmt.roundTrip(v), v, fmt.resolution());
}

TEST(FixedPoint, SaturatesAtRangeEdges)
{
    auto fmt = hc::FixedPointFormat::q88();
    EXPECT_DOUBLE_EQ(fmt.roundTrip(1e9), fmt.maxValue());
    EXPECT_DOUBLE_EQ(fmt.roundTrip(-1e9), fmt.minValue());
}

TEST(FixedPoint, ResolutionMatchesFracBits)
{
    hc::FixedPointFormat fmt(4, 12);
    EXPECT_DOUBLE_EQ(fmt.resolution(), std::pow(2.0, -12));
}

TEST(FixedPoint, MultiplyMatchesRealArithmetic)
{
    auto fmt = hc::FixedPointFormat::q88();
    double a = 1.5, b = -2.25;
    auto qa = fmt.quantize(a);
    auto qb = fmt.quantize(b);
    EXPECT_NEAR(fmt.dequantize(fmt.multiply(qa, qb)), a * b,
                4 * fmt.resolution());
}

TEST(FixedPoint, AddSaturatesInsteadOfWrapping)
{
    auto fmt = hc::FixedPointFormat::q88();
    auto max_raw = fmt.quantize(fmt.maxValue());
    EXPECT_EQ(fmt.add(max_raw, max_raw), max_raw);
}

TEST(FixedPoint, MeanAbsErrorShrinksWithMoreFracBits)
{
    std::vector<double> values;
    for (int i = 0; i < 100; ++i)
        values.push_back(std::sin(i * 0.37) * 3.0);
    hc::FixedPointFormat coarse(8, 4), fine(8, 12);
    EXPECT_LT(fine.meanAbsError(values), coarse.meanAbsError(values));
}

// ------------------------------------------------------- table printer ---

TEST(TablePrinter, AlignsColumnsAndKeepsRows)
{
    hc::TablePrinter printer({"name", "value"});
    printer.addRow({"alpha", "1"});
    printer.addRow({"b", "22.5"});
    std::string out = printer.render();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22.5"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinter, CellFormatting)
{
    EXPECT_EQ(hc::TablePrinter::cell(3.14159, 2), "3.14");
    EXPECT_EQ(hc::TablePrinter::cell(static_cast<long long>(42)), "42");
}
