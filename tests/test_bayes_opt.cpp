/**
 * @file
 * Tests for the constrained Bayesian optimizer.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "opt/bayes_opt.hpp"

namespace ho = homunculus::opt;

namespace {

/** Smooth 2-D bowl with the optimum at (3, -2); maximize the negative. */
ho::EvalResult
bowl(const ho::Configuration &config)
{
    double x = config.real("x");
    double y = config.real("y");
    ho::EvalResult result;
    result.objective = -((x - 3.0) * (x - 3.0) + (y + 2.0) * (y + 2.0));
    result.feasible = true;
    return result;
}

ho::SearchSpace
bowlSpace()
{
    ho::SearchSpace space;
    space.addReal("x", -10.0, 10.0);
    space.addReal("y", -10.0, 10.0);
    return space;
}

}  // namespace

TEST(BayesOpt, HistoryLengthIsWarmupPlusIterations)
{
    ho::BoConfig config;
    config.numInitSamples = 4;
    config.numIterations = 6;
    ho::BayesianOptimizer optimizer(bowlSpace(), config);
    auto result = optimizer.optimize(bowl);
    EXPECT_EQ(result.history.size(), 10u);
    int warmup = 0;
    for (const auto &record : result.history)
        if (record.fromWarmup)
            ++warmup;
    EXPECT_EQ(warmup, 4);
}

TEST(BayesOpt, BestSoFarIsMonotoneNonDecreasing)
{
    ho::BoConfig config;
    config.numInitSamples = 5;
    config.numIterations = 10;
    ho::BayesianOptimizer optimizer(bowlSpace(), config);
    auto result = optimizer.optimize(bowl);
    auto series = result.bestSoFarSeries();
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_GE(series[i], series[i - 1] - 1e-12);
}

TEST(BayesOpt, FindsNearOptimumOnSmoothBowl)
{
    ho::BoConfig config;
    config.numInitSamples = 8;
    config.numIterations = 25;
    config.seed = 5;
    ho::BayesianOptimizer optimizer(bowlSpace(), config);
    auto result = optimizer.optimize(bowl);
    ASSERT_TRUE(result.foundFeasible);
    // Optimum is 0; random-uniform over [-10,10]^2 averages around -70.
    EXPECT_GT(result.bestResult.objective, -8.0);
}

TEST(BayesOpt, RespectsFeasibilityConstraints)
{
    // Only the x > 5 half-space is feasible; the optimum there is x = 5.
    auto constrained = [](const ho::Configuration &config) {
        double x = config.real("x");
        ho::EvalResult result;
        result.objective = -x;
        result.feasible = x > 5.0;
        return result;
    };
    ho::SearchSpace space;
    space.addReal("x", 0.0, 10.0);
    ho::BoConfig config;
    config.numInitSamples = 6;
    config.numIterations = 20;
    ho::BayesianOptimizer optimizer(space, config);
    auto result = optimizer.optimize(constrained);
    ASSERT_TRUE(result.foundFeasible);
    EXPECT_GT(result.bestConfig.real("x"), 5.0);
    // And the optimizer pushed toward the boundary, not just anywhere.
    EXPECT_LT(result.bestConfig.real("x"), 8.0);
}

TEST(BayesOpt, DeterministicGivenSeed)
{
    ho::BoConfig config;
    config.numInitSamples = 4;
    config.numIterations = 8;
    config.seed = 77;
    ho::BayesianOptimizer a(bowlSpace(), config);
    ho::BayesianOptimizer b(bowlSpace(), config);
    auto ra = a.optimize(bowl);
    auto rb = b.optimize(bowl);
    ASSERT_EQ(ra.history.size(), rb.history.size());
    for (std::size_t i = 0; i < ra.history.size(); ++i)
        EXPECT_DOUBLE_EQ(ra.history[i].result.objective,
                         rb.history[i].result.objective);
}

TEST(BayesOpt, AllInfeasibleReportsNoFeasible)
{
    auto hopeless = [](const ho::Configuration &) {
        ho::EvalResult result;
        result.objective = 1.0;
        result.feasible = false;
        return result;
    };
    ho::BoConfig config;
    config.numInitSamples = 3;
    config.numIterations = 4;
    ho::BayesianOptimizer optimizer(bowlSpace(), config);
    auto result = optimizer.optimize(hopeless);
    EXPECT_FALSE(result.foundFeasible);
    EXPECT_EQ(result.history.size(), 7u);
}

TEST(BayesOpt, BeatsRandomSearchOnAverage)
{
    // Aggregate over seeds to keep the comparison statistically stable.
    double bo_total = 0.0, random_total = 0.0;
    const int trials = 10;
    const std::size_t budget = 30;
    for (int trial = 0; trial < trials; ++trial) {
        ho::BoConfig config;
        config.numInitSamples = 6;
        config.numIterations = budget - config.numInitSamples;
        config.seed = 100 + static_cast<std::uint64_t>(trial);
        ho::BayesianOptimizer optimizer(bowlSpace(), config);
        bo_total += optimizer.optimize(bowl).bestResult.objective;

        auto random = ho::randomSearch(bowlSpace(), bowl, budget, true,
                                       200 + static_cast<std::uint64_t>(
                                                 trial));
        random_total += random.bestResult.objective;
    }
    // BO should match or beat random search on average; allow a small
    // slack because 10 trials still carry sampling noise.
    EXPECT_GE(bo_total, random_total - 0.1 * std::fabs(random_total));
}

TEST(RandomSearch, TracksBestAndHistory)
{
    auto result = ho::randomSearch(bowlSpace(), bowl, 15, true, 3);
    EXPECT_TRUE(result.foundFeasible);
    EXPECT_EQ(result.history.size(), 15u);
    auto series = result.bestSoFarSeries();
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_GE(series[i], series[i - 1] - 1e-12);
}

TEST(BayesOpt, MinimizationModeWorks)
{
    auto cost = [](const ho::Configuration &config) {
        double x = config.real("x");
        ho::EvalResult result;
        result.objective = (x - 4.0) * (x - 4.0);
        result.feasible = true;
        return result;
    };
    ho::SearchSpace space;
    space.addReal("x", -10.0, 10.0);
    ho::BoConfig config;
    config.maximize = false;
    config.numInitSamples = 6;
    config.numIterations = 18;
    ho::BayesianOptimizer optimizer(space, config);
    auto result = optimizer.optimize(cost);
    EXPECT_LT(result.bestResult.objective, 2.0);
}
