/**
 * @file
 * Unit tests for ModelIr lowering, validation, and the reference
 * fixed-point executor.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ir/model_ir.hpp"
#include "ml/metrics.hpp"

namespace hi = homunculus::ir;
namespace ml = homunculus::ml;
namespace hm = homunculus::math;
namespace hc = homunculus::common;

namespace {

ml::Dataset
makeBlobs(std::size_t n, std::uint64_t seed)
{
    hc::Rng rng(seed);
    ml::Dataset data;
    data.x = hm::Matrix(n, 3);
    data.y.resize(n);
    data.numClasses = 2;
    for (std::size_t i = 0; i < n; ++i) {
        int label = static_cast<int>(i % 2);
        for (std::size_t f = 0; f < 3; ++f)
            data.x(i, f) = rng.gaussian(label == 0 ? -1.5 : 1.5, 0.5);
        data.y[i] = label;
    }
    return data;
}

}  // namespace

TEST(ModelIr, LowerMlpPreservesShapeAndParams)
{
    ml::MlpConfig config;
    config.inputDim = 3;
    config.hiddenLayers = {5};
    config.numClasses = 2;
    ml::Mlp mlp(config);
    auto data = makeBlobs(100, 1);
    mlp.train(data);

    auto ir = hi::lowerMlp(mlp, hc::FixedPointFormat::q88(), "m");
    EXPECT_EQ(ir.kind, hi::ModelKind::kMlp);
    EXPECT_EQ(ir.layers.size(), 2u);
    EXPECT_EQ(ir.paramCount(), config.paramCount());
    EXPECT_EQ(ir.hiddenLayerCount(), 1u);
    EXPECT_EQ(ir.maxLayerMacs(), 15u);
    EXPECT_NO_THROW(ir.validate());
}

TEST(ModelIr, QuantizedMlpMatchesFloatOnEasyData)
{
    ml::MlpConfig config;
    config.inputDim = 3;
    config.hiddenLayers = {8};
    config.numClasses = 2;
    config.epochs = 40;
    ml::Mlp mlp(config);
    auto data = makeBlobs(400, 2);
    mlp.train(data);

    auto ir = hi::lowerMlp(mlp, hc::FixedPointFormat::q88(), "m");
    auto quantized = hi::executeIrBatch(ir, data.x);
    auto floating = mlp.predict(data.x);
    // Q8.8 quantization flips at most a small fraction of decisions on a
    // well-separated task.
    EXPECT_GT(ml::accuracy(floating, quantized), 0.97);
}

TEST(ModelIr, LowerKMeansExecutesNearestCentroid)
{
    ml::KMeansConfig config;
    config.numClusters = 3;
    ml::KMeans kmeans(config);
    auto x = hm::Matrix::fromRows(
        {{0, 0}, {0.2, 0}, {10, 10}, {10.2, 10}, {-10, 5}, {-10.2, 5}});
    kmeans.fit(x);
    auto ir = hi::lowerKMeans(kmeans, hc::FixedPointFormat::q88(), "km", 2);
    EXPECT_NO_THROW(ir.validate());
    auto assignments = hi::executeIrBatch(ir, x);
    // Points in the same blob land in the same cluster.
    EXPECT_EQ(assignments[0], assignments[1]);
    EXPECT_EQ(assignments[2], assignments[3]);
    EXPECT_EQ(assignments[4], assignments[5]);
    EXPECT_NE(assignments[0], assignments[2]);
}

TEST(ModelIr, LowerSvmAgreesWithFloatModel)
{
    auto data = makeBlobs(300, 3);
    ml::LinearSvm svm(ml::SvmConfig{});
    svm.train(data);
    auto ir = hi::lowerSvm(svm, hc::FixedPointFormat::q88(), "svm", 3);
    EXPECT_NO_THROW(ir.validate());
    auto quantized = hi::executeIrBatch(ir, data.x);
    auto floating = svm.predict(data.x);
    EXPECT_GT(ml::accuracy(floating, quantized), 0.95);
}

TEST(ModelIr, LowerTreeAgreesWithFloatModelExactlyOffGrid)
{
    auto data = makeBlobs(300, 4);
    ml::TreeConfig config;
    config.maxDepth = 5;
    ml::DecisionTreeClassifier tree(config);
    tree.train(data);
    auto ir =
        hi::lowerDecisionTree(tree, hc::FixedPointFormat::q88(), "dt", 3);
    EXPECT_NO_THROW(ir.validate());
    EXPECT_EQ(ir.treeDepth, tree.depth());
    EXPECT_EQ(ir.treeNodes.size(), tree.nodeCount());

    auto quantized = hi::executeIrBatch(ir, data.x);
    auto floating = tree.predict(data.x);
    // Thresholds move by at most one quantization step; blob data rarely
    // sits within 1/256 of a threshold.
    EXPECT_GT(ml::accuracy(floating, quantized), 0.97);
}

TEST(ModelIr, ValidateCatchesBrokenLayerChain)
{
    hi::ModelIr ir;
    ir.kind = hi::ModelKind::kMlp;
    ir.inputDim = 3;
    ir.numClasses = 2;
    hi::QuantizedLayer layer;
    layer.inputDim = 4;  // != inputDim.
    layer.outputDim = 2;
    layer.weights.assign(8, 0);
    layer.biases.assign(2, 0);
    ir.layers.push_back(layer);
    EXPECT_THROW(ir.validate(), std::runtime_error);
}

TEST(ModelIr, ValidateCatchesBadTreeChildren)
{
    hi::ModelIr ir;
    ir.kind = hi::ModelKind::kDecisionTree;
    ir.inputDim = 2;
    ir.numClasses = 2;
    hi::IrTreeNode node;
    node.isLeaf = false;
    node.left = 5;  // out of range.
    node.right = 6;
    ir.treeNodes.push_back(node);
    EXPECT_THROW(ir.validate(), std::runtime_error);
}

TEST(ModelIr, ExecuteRejectsWidthMismatch)
{
    auto data = makeBlobs(50, 5);
    ml::LinearSvm svm(ml::SvmConfig{});
    svm.train(data);
    auto ir = hi::lowerSvm(svm, hc::FixedPointFormat::q88(), "svm", 3);
    EXPECT_THROW(hi::executeIr(ir, {1.0, 2.0}), std::runtime_error);
}

TEST(ModelIr, KindNamesAreStable)
{
    EXPECT_EQ(hi::modelKindName(hi::ModelKind::kMlp), "dnn");
    EXPECT_EQ(hi::modelKindName(hi::ModelKind::kKMeans), "kmeans");
    EXPECT_EQ(hi::modelKindName(hi::ModelKind::kSvm), "svm");
    EXPECT_EQ(hi::modelKindName(hi::ModelKind::kDecisionTree),
              "decision_tree");
}
