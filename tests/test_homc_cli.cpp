/**
 * @file
 * Tests for homc's command-line contract (tools/homc_cli.*): strict
 * unknown-flag rejection with a did-you-mean hint, numeric-value
 * validation (no more uncaught std::stoull aborts on "--jobs banana"),
 * the serving-lane flags, and the lane policy/routing helpers.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "homc_cli.hpp"

namespace ht = homunculus::tools;
namespace hr = homunculus::runtime;

namespace {

/** Run parseArgs over a brace-list of flags (argv[0] included). */
ht::ParseResult
parse(std::initializer_list<const char *> args, ht::CliOptions &options,
      std::string &errors)
{
    std::vector<const char *> argv{"homc"};
    argv.insert(argv.end(), args.begin(), args.end());
    std::ostringstream err;
    ht::ParseResult result = ht::parseArgs(
        static_cast<int>(argv.size()), argv.data(), options, err);
    errors = err.str();
    return result;
}

}  // namespace

TEST(HomcCli, UnknownFlagIsAnErrorWithNearestMatchHint)
{
    ht::CliOptions options;
    std::string errors;
    // The motivating bug: a typo'd flag was accepted and ignored, so
    // the run silently used the default policy.
    EXPECT_EQ(parse({"--app", "ad", "--serve-max-dely-us", "250"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("unknown flag '--serve-max-dely-us'"),
              std::string::npos)
        << errors;
    EXPECT_NE(errors.find("did you mean '--serve-max-delay-us'"),
              std::string::npos)
        << errors;
}

TEST(HomcCli, UnknownFlagFarFromEverythingGetsNoHint)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "ad", "--frobnicate", "1"}, options,
                    errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("unknown flag '--frobnicate'"),
              std::string::npos);
    EXPECT_EQ(errors.find("did you mean"), std::string::npos) << errors;
}

TEST(HomcCli, NonNumericValueForNumericFlagIsAFriendlyError)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "ad", "--jobs", "banana"}, options,
                    errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("--jobs expects"), std::string::npos)
        << errors;
    EXPECT_NE(errors.find("banana"), std::string::npos) << errors;
}

TEST(HomcCli, TrailingGarbageAndNegativesAreRejected)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "ad", "--init", "12abc"}, options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("--init expects"), std::string::npos);

    // std::stoull would happily wrap "-5" into a huge depth.
    EXPECT_EQ(parse({"--app", "ad", "--serve-depth", "-5"}, options,
                    errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("--serve-depth expects"), std::string::npos);
}

TEST(HomcCli, BadDoubleIsRejected)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "ad", "--serve-rate", "fast"}, options,
                    errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("--serve-rate expects a number"),
              std::string::npos)
        << errors;
    EXPECT_EQ(parse({"--app", "ad", "--throughput", "2.5"}, options,
                    errors),
              ht::ParseResult::kOk);
    EXPECT_DOUBLE_EQ(options.throughputGpps, 2.5);
    EXPECT_TRUE(options.throughputSet);
}

TEST(HomcCli, HelpShortCircuits)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--help"}, options, errors), ht::ParseResult::kHelp);
    EXPECT_EQ(parse({"-h"}, options, errors), ht::ParseResult::kHelp);
}

TEST(HomcCli, ListModesNeedNoApp)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--list-platforms"}, options, errors),
              ht::ParseResult::kOk);
    EXPECT_TRUE(options.listPlatforms);
}

TEST(HomcCli, MissingAppIsStillAnError)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--jobs", "2"}, options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("need --app or --train/--test"),
              std::string::npos);
}

TEST(HomcCli, ServeLaneFlagsParseAndBuildPolicies)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "tc", "--serve", "iot:100",
                     "--serve-lanes", "2", "--serve-backpressure",
                     "early-drop", "--serve-lane-delays-us", "250,2000",
                     "--serve-lane-depths", "128,8192",
                     "--serve-lane-batches", "16,1024",
                     "--serve-block-timeout-us", "5000",
                     "--serve-probe-every", "8"},
                    options, errors),
              ht::ParseResult::kOk)
        << errors;
    EXPECT_EQ(options.serveLanes, 2u);
    EXPECT_EQ(options.serveBackpressure,
              hr::BackpressureMode::kEarlyDrop);
    EXPECT_EQ(options.serveBlockTimeoutUs, 5000u);

    auto lanes = ht::lanePolicies(options);
    ASSERT_EQ(lanes.size(), 2u);
    EXPECT_EQ(lanes[0].maxBatch, 16u);
    EXPECT_EQ(lanes[0].maxDelayUs, 250u);
    EXPECT_EQ(lanes[0].maxDepth, 128u);
    EXPECT_EQ(lanes[1].maxBatch, 1024u);
    EXPECT_EQ(lanes[1].maxDelayUs, 2000u);
    EXPECT_EQ(lanes[1].maxDepth, 8192u);

    // Frame routing: every 8th frame probes lane 0, the rest bulk.
    EXPECT_EQ(ht::laneForFrame(0, options), 0u);
    EXPECT_EQ(ht::laneForFrame(1, options), 1u);
    EXPECT_EQ(ht::laneForFrame(8, options), 0u);
    EXPECT_EQ(ht::laneForFrame(9, options), 1u);
}

TEST(HomcCli, LanesDefaultToTheSingleLaneFlags)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "tc", "--serve", "iot:10",
                     "--serve-lanes", "3", "--serve-max-batch", "64",
                     "--serve-max-delay-us", "750", "--serve-depth",
                     "333"},
                    options, errors),
              ht::ParseResult::kOk);
    auto lanes = ht::lanePolicies(options);
    ASSERT_EQ(lanes.size(), 3u);
    for (const auto &lane : lanes) {
        EXPECT_EQ(lane.maxBatch, 64u);
        EXPECT_EQ(lane.maxDelayUs, 750u);
        EXPECT_EQ(lane.maxDepth, 333u);
    }
    // Single-lane routing sends everything to lane 0.
    ht::CliOptions single;
    EXPECT_EQ(ht::laneForFrame(5, single), 0u);
}

TEST(HomcCli, LaneListLengthMustMatchLaneCount)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "tc", "--serve-lanes", "2",
                     "--serve-lane-delays-us", "1,2,3"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("lists 3 lanes but --serve-lanes is 2"),
              std::string::npos)
        << errors;
}

TEST(HomcCli, BackpressureModeMustBeKnown)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "tc", "--serve-backpressure", "yolo"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("shed|block|early-drop"), std::string::npos)
        << errors;

    EXPECT_EQ(parse({"--app", "tc", "--serve-backpressure", "block"},
                    options, errors),
              ht::ParseResult::kOk);
    EXPECT_EQ(options.serveBackpressure,
              hr::BackpressureMode::kBlockWithTimeout);
}

TEST(HomcCli, ZeroLanesAndZeroProbeEveryAreRejected)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "tc", "--serve-lanes", "0"}, options,
                    errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("--serve-lanes"), std::string::npos);

    ht::CliOptions fresh;  // the first parse left serveLanes at 0.
    EXPECT_EQ(parse({"--app", "tc", "--serve-probe-every", "0"}, fresh,
                    errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("--serve-probe-every"), std::string::npos);
}

TEST(HomcCli, EveryDocumentedFlagIsConsumed)
{
    // A sweep over the full surface: if a take* call is missing for a
    // flag, it would now be reported as unknown — the exact regression
    // this suite pins.
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app",  "ad",      "--platform", "taurus",
                     "--algorithms", "svm,kmeans",
                     "--init", "2",       "--iters",    "3",
                     "--jobs", "2",       "--infer-jobs", "2",
                     "--grid", "8",       "--tables",   "4",
                     "--throughput", "1.5", "--latency", "400",
                     "--seed", "42",      "--out",      "/tmp/x.p4",
                     "--save", "/tmp/x.ir", "--pareto", "cus",
                     "--replay", "iot:10", "--replay-batch", "64",
                     "--serve", "iot:10", "--serve-rate", "1000",
                     "--serve-max-batch", "32", "--serve-max-delay-us",
                     "500", "--serve-depth", "64",
                     "--serve-model", "a=/tmp/a.ir",
                     "--serve-model", "b=/tmp/b.ir",
                     "--serve-fault", "engine.run:0.01",
                     "--serve-retry-depth", "3",
                     "--serve-fallback", "a=b",
                     "--serve-breaker-threshold", "2",
                     "--serve-deadline-us", "800",
                     "--serve-shards", "2",
                     "--serve-aging-us", "150"},
                    options, errors),
              ht::ParseResult::kOk)
        << errors;
    EXPECT_EQ(options.seed, 42u);
    EXPECT_EQ(options.replayBatch, 64u);
    EXPECT_DOUBLE_EQ(options.serveRate, 1000.0);
    EXPECT_EQ(options.serveMaxDelayUs, 500u);
    EXPECT_EQ(options.serveFaults.size(), 1u);
    EXPECT_EQ(options.serveRetryDepth, 3u);
    EXPECT_EQ(options.serveFallbacks.size(), 1u);
    EXPECT_EQ(options.serveBreakerThreshold, 2u);
    EXPECT_EQ(options.serveDeadlineUs, 800u);
    EXPECT_EQ(options.serveShards, 2u);
    EXPECT_EQ(options.serveAgingUs, 150u);
}

TEST(HomcCli, MisspelledBooleanFlagGetsAHintAndSwallowsNothing)
{
    // A typo'd no-value flag must not consume the next token as its
    // value (which used to shift the blame onto a later valid
    // argument) and must still get the did-you-mean treatment.
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--progess", "--app", "ad"}, options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("unknown flag '--progess'"),
              std::string::npos)
        << errors;
    EXPECT_NE(errors.find("did you mean '--progress'"),
              std::string::npos)
        << errors;

    EXPECT_EQ(parse({"--app", "ad", "--replay-rw"}, options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("did you mean '--replay-raw'"),
              std::string::npos)
        << errors;
}

TEST(HomcCli, ValueFlagAtEndOfLineReportsMissingValue)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "ad", "--jobs"}, options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("--jobs expects a value"), std::string::npos)
        << errors;
}

TEST(HomcCli, EveryRegisteredValueFlagHasAHandler)
{
    // Guards the flag-table/handler sync: an entry in the known-flag
    // table without a matching take* call would survive to the
    // leftover check and report drift instead of parsing.
    for (const std::string &flag : ht::knownValueFlags()) {
        ht::CliOptions options;
        std::string errors;
        parse({"--app", "ad", ("--" + flag).c_str(), "1"}, options,
              errors);
        EXPECT_EQ(errors.find("flag-table drift"), std::string::npos)
            << "flag --" << flag << ": " << errors;
        EXPECT_EQ(errors.find("unknown flag"), std::string::npos)
            << "flag --" << flag << ": " << errors;
    }
}

TEST(HomcCli, BulkLanesRoundRobinByBulkOrdinal)
{
    // 3 lanes with probe-every 2: the non-probe (odd) indices must
    // alternate lanes 1 and 2 — routing by global index modulo 2 would
    // send every one of them to the same lane.
    ht::CliOptions options;
    std::string errors;
    ASSERT_EQ(parse({"--app", "tc", "--serve-lanes", "3",
                     "--serve-probe-every", "2"},
                    options, errors),
              ht::ParseResult::kOk);
    EXPECT_EQ(ht::laneForFrame(0, options), 0u);  // probe.
    EXPECT_EQ(ht::laneForFrame(1, options), 1u);
    EXPECT_EQ(ht::laneForFrame(2, options), 0u);  // probe.
    EXPECT_EQ(ht::laneForFrame(3, options), 2u);
    EXPECT_EQ(ht::laneForFrame(4, options), 0u);  // probe.
    EXPECT_EQ(ht::laneForFrame(5, options), 1u);
    EXPECT_EQ(ht::laneForFrame(7, options), 2u);

    std::size_t lane1 = 0, lane2 = 0;
    for (std::size_t i = 0; i < 1000; ++i) {
        std::size_t lane = ht::laneForFrame(i, options);
        lane1 += lane == 1;
        lane2 += lane == 2;
    }
    EXPECT_EQ(lane1, 250u);  // even split of the 500 bulk frames.
    EXPECT_EQ(lane2, 250u);
}

TEST(HomcCli, ServeFaultFlagsParseRepeatablyWithRetryDepth)
{
    ht::CliOptions options;
    std::string errors;
    ASSERT_EQ(parse({"--app", "tc", "--serve", "iot:10",
                     "--serve-fault", "engine.run:0.01",
                     "--serve-fault", "router.hop:0.5:9",
                     "--serve-retry-depth", "4"},
                    options, errors),
              ht::ParseResult::kOk)
        << errors;
    ASSERT_EQ(options.serveFaults.size(), 2u);
    EXPECT_EQ(options.serveFaults[0], "engine.run:0.01");
    EXPECT_EQ(options.serveFaults[1], "router.hop:0.5:9");
    EXPECT_EQ(options.serveRetryDepth, 4u);
}

TEST(HomcCli, MalformedServeFaultSpecsErrorAtParseTime)
{
    // A typo'd spec must fail the parse, not blow up (or silently arm
    // nothing) once serving has already started.
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "tc", "--serve", "iot:10",
                     "--serve-fault", "engine.run"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("homc: --serve-fault:"), std::string::npos)
        << errors;

    EXPECT_EQ(parse({"--app", "tc", "--serve", "iot:10",
                     "--serve-fault", "engine.run:2.0"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("rate must be in [0, 1]"), std::string::npos)
        << errors;
}

TEST(HomcCli, FaultAndRetryFlagsRequireServe)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "tc", "--serve-fault", "engine.run:0.1"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("require --serve"), std::string::npos)
        << errors;

    EXPECT_EQ(parse({"--app", "tc", "--serve-retry-depth", "2"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("require --serve"), std::string::npos)
        << errors;
}

TEST(HomcCli, ServeFallbackParsesModelAndStaticLabelDestinations)
{
    ht::CliOptions options;
    std::string errors;
    ASSERT_EQ(parse({"--app", "tc", "--serve", "iot:10",
                     "--serve-model", "a=/tmp/a.ir",
                     "--serve-model", "b=/tmp/b.ir",
                     "--serve-fallback", "a=b,b=2",
                     "--serve-breaker-threshold", "5",
                     "--serve-deadline-us", "750"},
                    options, errors),
              ht::ParseResult::kOk)
        << errors;
    ASSERT_EQ(options.serveFallbacks.size(), 2u);
    EXPECT_EQ(options.serveFallbacks[0].model, "a");
    EXPECT_EQ(options.serveFallbacks[0].toModel, "b");
    EXPECT_EQ(options.serveFallbacks[0].label, -1);
    EXPECT_EQ(options.serveFallbacks[1].model, "b");
    EXPECT_TRUE(options.serveFallbacks[1].toModel.empty());
    EXPECT_EQ(options.serveFallbacks[1].label, 2);
    EXPECT_EQ(options.serveBreakerThreshold, 5u);
    EXPECT_EQ(options.serveDeadlineUs, 750u);
}

TEST(HomcCli, MalformedServeFallbackEntriesAreRejected)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "tc", "--serve", "iot:10",
                     "--serve-model", "a=/tmp/a.ir",
                     "--serve-fallback", "a"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("MODEL=NAME|LABEL"), std::string::npos)
        << errors;
}

TEST(HomcCli, ServeFallbackReferencingAnUnloadedModelIsRejected)
{
    // Catch the dangling reference at the flag, where the error can
    // name it, instead of letting the router throw mid-run.
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "tc", "--serve", "iot:10",
                     "--serve-model", "a=/tmp/a.ir",
                     "--serve-fallback", "a=ghost"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("references model 'ghost'"),
              std::string::npos)
        << errors;
    EXPECT_NE(errors.find("no --serve-model loads it"),
              std::string::npos)
        << errors;
}

TEST(HomcCli, BreakerAndDeadlineFlagsRequireServeModel)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "tc", "--serve", "iot:10",
                     "--serve-breaker-threshold", "3"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("require --serve-model"), std::string::npos)
        << errors;

    EXPECT_EQ(parse({"--app", "tc", "--serve", "iot:10",
                     "--serve-deadline-us", "500"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("require --serve-model"), std::string::npos)
        << errors;
}

TEST(HomcCli, NonNumericFaultToleranceValuesAreRejected)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "tc", "--serve", "iot:10",
                     "--serve-retry-depth", "banana"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(
        errors.find(
            "--serve-retry-depth expects a non-negative integer"),
        std::string::npos)
        << errors;

    EXPECT_EQ(parse({"--app", "tc", "--serve", "iot:10",
                     "--serve-model", "a=/tmp/a.ir",
                     "--serve-deadline-us", "-5"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("--serve-deadline-us expects a non-negative "
                          "integer"),
              std::string::npos)
        << errors;
}

TEST(HomcCli, MisspelledFaultFlagGetsAHint)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "tc", "--serve", "iot:10",
                     "--serve-falt", "engine.run:0.1"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("did you mean '--serve-fault'"),
              std::string::npos)
        << errors;
}

TEST(HomcCli, ServeShardAndAgingFlagsParseWithServe)
{
    ht::CliOptions options;
    std::string errors;
    ASSERT_EQ(parse({"--app", "tc", "--serve", "iot:10",
                     "--serve-shards", "4",
                     "--serve-aging-us", "250"},
                    options, errors),
              ht::ParseResult::kOk)
        << errors;
    EXPECT_EQ(options.serveShards, 4u);
    EXPECT_EQ(options.serveAgingUs, 250u);
}

TEST(HomcCli, ZeroServeShardsIsRejected)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "tc", "--serve", "iot:10",
                     "--serve-shards", "0"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("at least 1 shard"), std::string::npos)
        << errors;
}

TEST(HomcCli, ShardAndAgingFlagsRequireServe)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "tc", "--serve-shards", "2"}, options,
                    errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("require --serve"), std::string::npos)
        << errors;

    EXPECT_EQ(parse({"--app", "tc", "--serve-aging-us", "100"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("require --serve"), std::string::npos)
        << errors;

    // --serve-shards 1 is the default single-server door; saying it
    // explicitly without --serve stays harmless.
    ht::CliOptions fresh;
    EXPECT_EQ(parse({"--app", "tc", "--serve-shards", "1"}, fresh,
                    errors),
              ht::ParseResult::kOk)
        << errors;
}

TEST(HomcCli, MisspelledShardFlagGetsAHint)
{
    ht::CliOptions options;
    std::string errors;
    EXPECT_EQ(parse({"--app", "tc", "--serve", "iot:10",
                     "--serve-shard", "2"},
                    options, errors),
              ht::ParseResult::kError);
    EXPECT_NE(errors.find("did you mean '--serve-shards'"),
              std::string::npos)
        << errors;
}
