/**
 * @file
 * Unit tests for the mixed search space and acquisition functions.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "opt/acquisition.hpp"
#include "opt/search_space.hpp"

namespace ho = homunculus::opt;
namespace hc = homunculus::common;

namespace {

ho::SearchSpace
makeSpace()
{
    ho::SearchSpace space;
    space.addReal("lr", 1e-4, 1e-1, /*log_scale=*/true);
    space.addInteger("layers", 1, 6);
    space.addOrdinal("batch", {16, 32, 64});
    space.addCategorical("act", {"relu", "tanh"});
    return space;
}

}  // namespace

TEST(SearchSpace, SampleRespectsAllDomains)
{
    auto space = makeSpace();
    hc::Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        auto config = space.sample(rng);
        double lr = config.real("lr");
        EXPECT_GE(lr, 1e-4);
        EXPECT_LE(lr, 1e-1);
        auto layers = config.integer("layers");
        EXPECT_GE(layers, 1);
        EXPECT_LE(layers, 6);
        double batch = config.real("batch");
        EXPECT_TRUE(batch == 16 || batch == 32 || batch == 64);
        const auto &act = config.categorical("act");
        EXPECT_TRUE(act == "relu" || act == "tanh");
    }
}

TEST(SearchSpace, LogScaleCoversDecades)
{
    ho::SearchSpace space;
    space.addReal("lr", 1e-4, 1e-1, /*log_scale=*/true);
    hc::Rng rng(2);
    int low_decade = 0;
    for (int i = 0; i < 500; ++i)
        if (space.sample(rng).real("lr") < 1e-3)
            ++low_decade;
    // Log-uniform gives each decade ~1/3 of the mass; linear would give
    // the bottom decade < 1%.
    EXPECT_GT(low_decade, 100);
}

TEST(SearchSpace, EncodeWidthAndCategoricalIndex)
{
    auto space = makeSpace();
    ho::Configuration config;
    config.set("lr", 0.01);
    config.set("layers", std::int64_t{3});
    config.set("batch", 32.0);
    config.set("act", std::string("tanh"));
    auto row = space.encode(config);
    ASSERT_EQ(row.size(), 4u);
    EXPECT_DOUBLE_EQ(row[3], 1.0);  // "tanh" is option index 1.
}

TEST(SearchSpace, PerturbChangesAtMostOneDimension)
{
    auto space = makeSpace();
    hc::Rng rng(3);
    auto base = space.sample(rng);
    auto base_row = space.encode(base);
    for (int i = 0; i < 50; ++i) {
        auto perturbed = space.perturb(base, rng);
        auto row = space.encode(perturbed);
        int changed = 0;
        for (std::size_t d = 0; d < row.size(); ++d)
            if (row[d] != base_row[d])
                ++changed;
        EXPECT_LE(changed, 1);
    }
}

TEST(SearchSpace, FindAndParamAccessors)
{
    auto space = makeSpace();
    EXPECT_EQ(space.size(), 4u);
    EXPECT_NE(space.find("lr"), nullptr);
    EXPECT_EQ(space.find("missing"), nullptr);
    EXPECT_EQ(space.param(1).name, "layers");
}

TEST(SearchSpace, CardinalityCountsDiscreteDomains)
{
    ho::SearchSpace space;
    space.addInteger("a", 1, 4);
    space.addOrdinal("b", {1, 2, 3});
    space.addCategorical("c", {"x", "y"});
    EXPECT_DOUBLE_EQ(space.cardinalityEstimate(), 4.0 * 3.0 * 2.0);
}

TEST(SearchSpace, RejectsInvalidDomains)
{
    ho::SearchSpace space;
    EXPECT_THROW(space.addReal("x", 2.0, 1.0), std::runtime_error);
    EXPECT_THROW(space.addReal("x", -1.0, 1.0, true), std::runtime_error);
    EXPECT_THROW(space.addInteger("x", 5, 2), std::runtime_error);
    EXPECT_THROW(space.addOrdinal("x", {}), std::runtime_error);
    EXPECT_THROW(space.addCategorical("x", {}), std::runtime_error);
}

TEST(Configuration, TypedAccessorsAndErrors)
{
    ho::Configuration config;
    config.set("i", std::int64_t{7});
    config.set("r", 2.5);
    config.set("s", std::string("relu"));
    EXPECT_EQ(config.integer("i"), 7);
    EXPECT_DOUBLE_EQ(config.real("i"), 7.0);  // numeric coercion.
    EXPECT_DOUBLE_EQ(config.real("r"), 2.5);
    EXPECT_EQ(config.categorical("s"), "relu");
    EXPECT_THROW(config.real("missing"), std::runtime_error);
    EXPECT_THROW(config.categorical("r"), std::runtime_error);
    EXPECT_FALSE(config.toString().empty());
}

// ---------------------------------------------------------- acquisition ---

TEST(Acquisition, EiZeroWhenCertainAndWorse)
{
    EXPECT_DOUBLE_EQ(
        homunculus::opt::expectedImprovement(0.5, 0.0, 0.9, true), 0.0);
}

TEST(Acquisition, EiPositiveWhenCertainAndBetter)
{
    double ei = homunculus::opt::expectedImprovement(0.9, 0.0, 0.5, true,
                                                     0.0);
    EXPECT_NEAR(ei, 0.4, 1e-12);
}

TEST(Acquisition, EiGrowsWithUncertainty)
{
    double low = homunculus::opt::expectedImprovement(0.5, 0.01, 0.6, true);
    double high = homunculus::opt::expectedImprovement(0.5, 0.5, 0.6, true);
    EXPECT_GT(high, low);
}

TEST(Acquisition, EiMinimizationMirrorsMaximization)
{
    double max_side =
        homunculus::opt::expectedImprovement(0.8, 0.1, 0.5, true, 0.0);
    double min_side =
        homunculus::opt::expectedImprovement(0.2, 0.1, 0.5, false, 0.0);
    EXPECT_NEAR(max_side, min_side, 1e-12);
}

TEST(Acquisition, ConfidenceBoundOrdersByOptimism)
{
    double a = homunculus::opt::confidenceBound(0.5, 0.04, true);
    double b = homunculus::opt::confidenceBound(0.5, 0.16, true);
    EXPECT_GT(b, a);
}
