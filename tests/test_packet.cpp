/**
 * @file
 * Unit tests for the packet substrate: wire (de)serialization, checksum,
 * feature extraction, and the bytes-to-dataset front-end.
 */
#include <gtest/gtest.h>

#include "net/feature_extract.hpp"
#include "net/packet.hpp"

namespace hn = homunculus::net;

namespace {

hn::RawPacket
makeTcpPacket()
{
    hn::RawPacket packet;
    packet.eth.src = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
    packet.eth.dst = {0x02, 0x00, 0x00, 0x00, 0x00, 0x02};
    packet.ipv4.ttl = 63;
    packet.ipv4.tos = 0x10;
    packet.ipv4.protocol = hn::kProtoTcp;
    packet.ipv4.srcAddr = 0x0A000001;
    packet.ipv4.dstAddr = 0x0A000002;
    hn::TcpHeader tcp;
    tcp.srcPort = 44321;
    tcp.dstPort = 443;
    tcp.seq = 12345;
    tcp.flags = 0x18;
    packet.tcp = tcp;
    packet.payload = {1, 2, 3, 4, 5};
    return packet;
}

}  // namespace

TEST(Packet, TcpSerializeParseRoundTrip)
{
    auto original = makeTcpPacket();
    auto bytes = serialize(original);
    EXPECT_EQ(bytes.size(), original.wireSize());

    auto parsed = hn::parse(bytes, 1.5);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->eth.src, original.eth.src);
    EXPECT_EQ(parsed->ipv4.ttl, 63);
    EXPECT_EQ(parsed->ipv4.tos, 0x10);
    EXPECT_EQ(parsed->ipv4.srcAddr, 0x0A000001u);
    ASSERT_TRUE(parsed->tcp.has_value());
    EXPECT_EQ(parsed->tcp->srcPort, 44321);
    EXPECT_EQ(parsed->tcp->dstPort, 443);
    EXPECT_EQ(parsed->tcp->seq, 12345u);
    EXPECT_EQ(parsed->payload, original.payload);
    EXPECT_DOUBLE_EQ(parsed->timestampSec, 1.5);
}

TEST(Packet, UdpSerializeParseRoundTrip)
{
    hn::RawPacket packet;
    packet.ipv4.protocol = hn::kProtoUdp;
    hn::UdpHeader udp;
    udp.srcPort = 5004;
    udp.dstPort = 5005;
    packet.udp = udp;
    packet.payload.assign(100, 0xAB);

    auto parsed = hn::parse(serialize(packet));
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(parsed->udp.has_value());
    EXPECT_EQ(parsed->udp->dstPort, 5005);
    EXPECT_EQ(parsed->udp->length, 108);  // 8 header + 100 payload.
    EXPECT_EQ(parsed->payload.size(), 100u);
}

TEST(Packet, ChecksumDetectsCorruption)
{
    auto bytes = serialize(makeTcpPacket());
    // Flip a bit inside the IPv4 header (TTL byte).
    bytes[hn::EthernetHeader::kWireSize + 8] ^= 0xFF;
    EXPECT_FALSE(hn::parse(bytes).has_value());
}

TEST(Packet, ParseRejectsTruncatedBuffers)
{
    auto bytes = serialize(makeTcpPacket());
    std::vector<std::uint8_t> truncated(bytes.begin(), bytes.begin() + 20);
    EXPECT_FALSE(hn::parse(truncated).has_value());
    EXPECT_FALSE(hn::parse({}).has_value());
}

TEST(Packet, ParseRejectsNonIpv4)
{
    auto bytes = serialize(makeTcpPacket());
    bytes[12] = 0x86;  // EtherType -> 0x86DD (IPv6).
    bytes[13] = 0xDD;
    EXPECT_FALSE(hn::parse(bytes).has_value());
}

TEST(Packet, Ipv4ChecksumKnownVector)
{
    // RFC 1071 example-style check: checksum of a buffer then verify
    // that including the checksum yields zero.
    auto bytes = serialize(makeTcpPacket());
    const std::uint8_t *ipv4 = bytes.data() + hn::EthernetHeader::kWireSize;
    // Checksum over the header including the stored checksum is 0.
    EXPECT_EQ(hn::ipv4Checksum(ipv4, hn::Ipv4Header::kWireSize), 0);
}

TEST(FeatureExtract, FeatureVectorShapeAndRanges)
{
    hn::FeatureExtractor extractor;
    auto features = extractor.extract(makeTcpPacket());
    ASSERT_EQ(features.size(), hn::kNumTcFeatures);
    EXPECT_DOUBLE_EQ(features[0], makeTcpPacket().wireSize());
    EXPECT_DOUBLE_EQ(features[1], 63.0);
    EXPECT_DOUBLE_EQ(features[2], 6.0);
    EXPECT_GE(features[3], 0.0);
    EXPECT_LT(features[3], 8.0);  // default port buckets.
    EXPECT_GE(features[5], 0.0);
    EXPECT_LE(features[5], 1.0);
    EXPECT_GE(features[6], 0.0);
    EXPECT_LE(features[6], 1.0);
}

TEST(FeatureExtract, EntropyOrdersRandomAboveConstant)
{
    hn::FeatureExtractor extractor;
    auto constant = makeTcpPacket();
    constant.payload.assign(64, 0x42);
    auto random_pkt = makeTcpPacket();
    random_pkt.payload.resize(64);
    for (std::size_t i = 0; i < 64; ++i)
        random_pkt.payload[i] = static_cast<std::uint8_t>(i * 37 + 11);
    double h_const = extractor.extract(constant)[6];
    double h_random = extractor.extract(random_pkt)[6];
    EXPECT_LT(h_const, h_random);
    EXPECT_NEAR(h_const, 0.0, 1e-9);
}

TEST(FeatureExtract, WirePathMatchesDirectExtraction)
{
    hn::FeatureExtractor extractor;
    auto packet = makeTcpPacket();
    auto direct = extractor.extract(packet);
    auto via_wire = extractor.extractFromWire(serialize(packet));
    ASSERT_TRUE(via_wire.has_value());
    EXPECT_EQ(*via_wire, direct);
}

TEST(FeatureExtract, MalformedWireYieldsNullopt)
{
    hn::FeatureExtractor extractor;
    EXPECT_FALSE(extractor.extractFromWire({1, 2, 3}).has_value());
}

TEST(IotPackets, GeneratorProducesParsableLabeledPackets)
{
    hn::IotPacketConfig config;
    config.numPackets = 300;
    auto packets = hn::generateIotPackets(config);
    EXPECT_EQ(packets.size(), 300u);
    for (const auto &labeled : packets) {
        EXPECT_GE(labeled.deviceClass, 0);
        EXPECT_LT(labeled.deviceClass, 5);
        EXPECT_TRUE(hn::parse(serialize(labeled.packet)).has_value());
    }
}

TEST(IotPackets, DatasetFromPacketsIsLearnable)
{
    hn::IotPacketConfig config;
    config.numPackets = 800;
    auto packets = hn::generateIotPackets(config);
    hn::FeatureExtractor extractor;
    auto data = datasetFromPackets(packets, extractor);
    EXPECT_EQ(data.numSamples(), 800u);
    EXPECT_EQ(data.numFeatures(), hn::kNumTcFeatures);
    EXPECT_EQ(data.numClasses, 5);

    // Camera (class 0, big UDP) vs thermostat (class 4, small TCP) are
    // separable on size alone.
    double camera_mean = 0, thermo_mean = 0;
    std::size_t camera_n = 0, thermo_n = 0;
    for (std::size_t i = 0; i < data.numSamples(); ++i) {
        if (data.y[i] == 0) {
            camera_mean += data.x(i, 0);
            ++camera_n;
        } else if (data.y[i] == 4) {
            thermo_mean += data.x(i, 0);
            ++thermo_n;
        }
    }
    ASSERT_GT(camera_n, 0u);
    ASSERT_GT(thermo_n, 0u);
    EXPECT_GT(camera_mean / static_cast<double>(camera_n),
              thermo_mean / static_cast<double>(thermo_n));
}

TEST(IotPackets, DeterministicInSeed)
{
    hn::IotPacketConfig config;
    config.numPackets = 50;
    auto a = hn::generateIotPackets(config);
    auto b = hn::generateIotPackets(config);
    for (std::size_t i = 0; i < 50; ++i) {
        EXPECT_EQ(a[i].deviceClass, b[i].deviceClass);
        EXPECT_EQ(serialize(a[i].packet), serialize(b[i].packet));
    }
}
