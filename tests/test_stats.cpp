/**
 * @file
 * Unit tests for scalar statistics helpers.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.hpp"

namespace hm = homunculus::math;

TEST(Stats, MeanVarianceStddev)
{
    std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(hm::mean(v), 5.0);
    EXPECT_NEAR(hm::variance(v), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(hm::stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, EmptyAndDegenerateInputs)
{
    EXPECT_DOUBLE_EQ(hm::mean({}), 0.0);
    EXPECT_DOUBLE_EQ(hm::variance({1.0}), 0.0);
}

TEST(Stats, MedianAndQuantiles)
{
    std::vector<double> v = {3, 1, 2};
    EXPECT_DOUBLE_EQ(hm::median(v), 2.0);
    EXPECT_DOUBLE_EQ(hm::quantile({1, 2, 3, 4}, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(hm::quantile({1, 2, 3, 4}, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(hm::quantile({0, 10}, 0.25), 2.5);
}

TEST(Stats, MinMax)
{
    std::vector<double> v = {3, -1, 2};
    EXPECT_DOUBLE_EQ(hm::minValue(v), -1.0);
    EXPECT_DOUBLE_EQ(hm::maxValue(v), 3.0);
}

TEST(Stats, EntropyUniformIsLogN)
{
    EXPECT_NEAR(hm::entropy({1, 1, 1, 1}), std::log(4.0), 1e-12);
    EXPECT_DOUBLE_EQ(hm::entropy({5, 0, 0}), 0.0);
    EXPECT_DOUBLE_EQ(hm::entropy({}), 0.0);
}

TEST(Stats, NormalPdfCdfKnownValues)
{
    EXPECT_NEAR(hm::normalPdf(0.0), 0.3989422804, 1e-9);
    EXPECT_NEAR(hm::normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(hm::normalCdf(1.96), 0.975, 1e-3);
    EXPECT_NEAR(hm::normalCdf(-1.96), 0.025, 1e-3);
}

TEST(Stats, PearsonCorrelation)
{
    std::vector<double> a = {1, 2, 3, 4};
    std::vector<double> b = {2, 4, 6, 8};
    EXPECT_NEAR(hm::pearson(a, b), 1.0, 1e-12);
    std::vector<double> c = {8, 6, 4, 2};
    EXPECT_NEAR(hm::pearson(a, c), -1.0, 1e-12);
    EXPECT_DOUBLE_EQ(hm::pearson(a, {1, 1, 1, 1}), 0.0);
}

TEST(Stats, HistogramBinningAndEdges)
{
    std::vector<double> v = {0.0, 0.5, 0.99, 1.0, 2.0};
    auto h = hm::histogram(v, 0.0, 2.0, 2);
    ASSERT_EQ(h.size(), 2u);
    EXPECT_EQ(h[0], 3u);  // 0.0, 0.5, 0.99
    EXPECT_EQ(h[1], 2u);  // 1.0, 2.0 (top edge lands in last bin)
}

TEST(Stats, HistogramIgnoresOutOfRange)
{
    auto h = hm::histogram({-1.0, 5.0, 0.5}, 0.0, 1.0, 1);
    EXPECT_EQ(h[0], 1u);
}
