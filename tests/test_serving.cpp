/**
 * @file
 * Tests for the async serving front-end: RequestQueue size/deadline
 * flush and bounded-depth shedding, priority lanes (strict priority
 * among ready lanes, cross-lane deadline ordering, no starvation of
 * drained lanes), the three backpressure modes (shed /
 * block-with-timeout / early-drop), the maxDelayUs overflow clamp,
 * drain-on-close semantics, and runtime::Server end-to-end verdict
 * correctness (batching never changes labels — verdicts are
 * bit-identical to one plan run over the same rows) including per-lane
 * statistics and typed submit results. The scale-out section pins the
 * lock-free admission door: exact shed-vs-admit accounting under
 * multi-producer contention, FIFO arrival-order grants for blocked
 * producers, and opt-in fairness aging (off by default) that lets a
 * starving bulk lane preempt strict priority. The producer/batcher
 * handoffs run under TSAN in CI.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "ir/exec_plan.hpp"
#include "net/feature_extract.hpp"
#include "net/packet.hpp"
#include "runtime/request_queue.hpp"
#include "runtime/server.hpp"

namespace hc = homunculus::common;
namespace hi = homunculus::ir;
namespace hm = homunculus::math;
namespace hn = homunculus::net;
namespace hr = homunculus::runtime;
namespace ml = homunculus::ml;

namespace {

using Clock = std::chrono::steady_clock;

hr::Request
makeRequest(std::uint64_t id, std::size_t dim)
{
    hr::Request request;
    request.id = id;
    request.features.assign(dim, static_cast<double>(id));
    return request;
}

/** A small MLP consuming the packet extractor's schema. */
hi::ModelIr
tcModel(std::uint64_t seed)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kMlp;
    model.inputDim = hn::kNumTcFeatures;
    model.numClasses = 4;
    std::size_t prev = model.inputDim;
    for (std::size_t width : {std::size_t{10}, std::size_t{4}}) {
        hi::QuantizedLayer layer;
        layer.inputDim = prev;
        layer.outputDim = width;
        layer.weights.resize(prev * width);
        layer.biases.resize(width);
        for (auto &w : layer.weights)
            w = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        for (auto &b : layer.biases)
            b = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        model.layers.push_back(std::move(layer));
        prev = width;
    }
    model.validate();
    return model;
}

}  // namespace

// ----------------------------------------------------------- RequestQueue

TEST(RequestQueue, SizeFlushPreservesArrivalOrder)
{
    hr::QueuePolicy policy;
    policy.maxBatch = 8;
    policy.maxDelayUs = 60'000'000;  // deadline can't fire in this test.
    hr::RequestQueue queue(policy);

    for (std::uint64_t i = 0; i < 20; ++i)
        EXPECT_EQ(queue.push(makeRequest(i, 3)), hr::Admission::kAdmitted);

    auto first = queue.pop();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->reason, hr::FlushReason::kSize);
    ASSERT_EQ(first->requests.size(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(first->requests[i].id, i);

    auto second = queue.pop();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->requests.front().id, 8u);
    EXPECT_EQ(queue.depth(), 4u);  // 4 rows below the size trigger left.
    EXPECT_EQ(queue.counters().sizeFlushes, 2u);
}

TEST(RequestQueue, DeadlineFlushReleasesPartialBatch)
{
    hr::QueuePolicy policy;
    policy.maxBatch = 1024;      // size trigger unreachable here.
    policy.maxDelayUs = 20'000;  // 20 ms — CI-proof margin.
    hr::RequestQueue queue(policy);

    auto started = Clock::now();
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(queue.push(makeRequest(i, 3)), hr::Admission::kAdmitted);
    auto batch = queue.pop();
    double waited_us = std::chrono::duration<double, std::micro>(
                           Clock::now() - started)
                           .count();

    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->reason, hr::FlushReason::kDeadline);
    EXPECT_EQ(batch->requests.size(), 5u);
    // The flush must wait roughly maxDelay: not (much) less, and the
    // upper bound is loose only to survive loaded CI machines.
    EXPECT_GE(waited_us, 15'000.0);
    EXPECT_LT(waited_us, 2'000'000.0);
    EXPECT_EQ(queue.counters().deadlineFlushes, 1u);
}

TEST(RequestQueue, AdmissionControlShedsBeyondDepth)
{
    hr::QueuePolicy policy;
    policy.maxBatch = 64;        // > depth: no size flush interferes.
    policy.maxDelayUs = 60'000'000;
    policy.maxDepth = 10;
    hr::RequestQueue queue(policy);

    std::size_t admitted = 0, shed = 0;
    for (std::uint64_t i = 0; i < 25; ++i)
        hr::admitted(queue.push(makeRequest(i, 3))) ? ++admitted : ++shed;
    EXPECT_EQ(admitted, 10u);
    EXPECT_EQ(shed, 15u);
    EXPECT_EQ(queue.depth(), 10u);
    EXPECT_EQ(queue.counters().accepted, 10u);
    EXPECT_EQ(queue.counters().shed, 15u);

    // Draining reopens admission for new arrivals.
    queue.close();
    auto drained = queue.pop();
    ASSERT_TRUE(drained.has_value());
    EXPECT_EQ(drained->requests.size(), 10u);
}

TEST(RequestQueue, CloseDrainsEverythingThenReportsExhaustion)
{
    hr::QueuePolicy policy;
    policy.maxBatch = 4;
    policy.maxDelayUs = 60'000'000;
    hr::RequestQueue queue(policy);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(queue.push(makeRequest(i, 2)), hr::Admission::kAdmitted);
    queue.close();
    EXPECT_EQ(queue.push(makeRequest(99, 2)),
              hr::Admission::kRejectedClosed);  // closed door.

    // 10 rows at maxBatch 4: two full batches + a 2-row drain tail.
    std::size_t rows = 0;
    std::size_t batches = 0;
    while (auto batch = queue.pop()) {
        rows += batch->requests.size();
        ++batches;
        if (batch->requests.size() < 4)
            EXPECT_EQ(batch->reason, hr::FlushReason::kDrain);
    }
    EXPECT_EQ(rows, 10u);
    EXPECT_EQ(batches, 3u);
    EXPECT_EQ(queue.counters().rejectedClosed, 1u);
    EXPECT_FALSE(queue.pop().has_value());  // stays exhausted.
}

TEST(RequestQueue, ConsumerBlockedOnEmptyQueueWakesOnPushAndClose)
{
    hr::QueuePolicy policy;
    policy.maxBatch = 2;
    policy.maxDelayUs = 60'000'000;
    hr::RequestQueue queue(policy);

    std::thread producer([&queue] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        queue.push(makeRequest(1, 2));
        queue.push(makeRequest(2, 2));
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        queue.close();
    });
    auto batch = queue.pop();          // blocks until the size flush.
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->requests.size(), 2u);
    EXPECT_FALSE(queue.pop().has_value());  // wakes on close.
    producer.join();
}

// ----------------------------------------------------------------- Server

TEST(Server, VerdictsBitIdenticalToOnePlanRun)
{
    auto model = tcModel(17);
    hc::Rng rng(23);
    constexpr std::size_t kRows = 3000;
    hm::Matrix features(kRows, model.inputDim);
    for (double &v : features.data())
        v = rng.uniform(-4.0, 4.0);

    std::mutex verdict_mutex;
    std::map<std::uint64_t, int> verdicts;
    hr::ServerConfig config;
    config.queue.maxBatch = 256;
    config.queue.maxDelayUs = 500;
    config.queue.maxDepth = 0;  // unbounded: no shedding in this test.
    hr::EngineOptions engine_options;
    engine_options.jobs = 2;
    engine_options.minRowsToShard = 1;
    hr::Server server(
        hr::InferenceEngine::fromModel(model, engine_options), config,
        [&](const hr::Request &request, int verdict) {
            std::lock_guard<std::mutex> lock(verdict_mutex);
            verdicts[request.id] = verdict;
        });

    std::vector<std::uint64_t> tickets(kRows);
    for (std::size_t r = 0; r < kRows; ++r) {
        hr::SubmitResult result = server.submit(features.row(r));
        ASSERT_TRUE(result.admitted());
        tickets[r] = result.ticket;
    }
    hr::ServerStats stats = server.stop();

    EXPECT_EQ(stats.rowsServed, kRows);
    EXPECT_EQ(stats.queue.accepted, kRows);
    EXPECT_EQ(stats.queue.shed, 0u);
    EXPECT_GT(stats.batches, 0u);
    EXPECT_GE(stats.p99RequestLatencyUs, stats.p50RequestLatencyUs);

    auto reference = hi::ExecutablePlan::compile(model).run(features);
    ASSERT_EQ(verdicts.size(), kRows);
    for (std::size_t r = 0; r < kRows; ++r)
        EXPECT_EQ(verdicts.at(tickets[r]), reference[r]) << "row " << r;
}

TEST(Server, AppliesStoredScalerLikeTheTrainingTransform)
{
    auto model = tcModel(31);
    model.scalerMeans.assign(model.inputDim, 2.0);
    model.scalerStds.assign(model.inputDim, 0.5);
    model.validate();

    hc::Rng rng(37);
    constexpr std::size_t kRows = 200;
    hm::Matrix raw(kRows, model.inputDim);
    for (double &v : raw.data())
        v = rng.uniform(-3.0, 3.0);

    std::mutex verdict_mutex;
    std::map<std::uint64_t, int> verdicts;
    hr::ServerConfig config;
    config.queue.maxBatch = 64;
    config.queue.maxDepth = 0;
    hr::Server server(
        hr::InferenceEngine::fromModel(model, {}), config,
        [&](const hr::Request &request, int verdict) {
            std::lock_guard<std::mutex> lock(verdict_mutex);
            verdicts[request.id] = verdict;
        },
        ml::StandardScaler::fromMoments(model.scalerMeans,
                                        model.scalerStds));

    std::vector<std::uint64_t> tickets(kRows);
    for (std::size_t r = 0; r < kRows; ++r)
        tickets[r] = server.submit(raw.row(r)).ticket;
    server.stop();

    // Reference: scale manually, then run the plan once.
    hm::Matrix scaled = raw;
    for (std::size_t r = 0; r < kRows; ++r)
        for (std::size_t c = 0; c < scaled.cols(); ++c)
            scaled(r, c) = (scaled(r, c) - 2.0) / 0.5;
    auto reference = hi::ExecutablePlan::compile(model).run(scaled);
    for (std::size_t r = 0; r < kRows; ++r)
        EXPECT_EQ(verdicts.at(tickets[r]), reference[r]);
}

TEST(Server, ShedsWhenDepthExceededAndCountsIt)
{
    auto model = tcModel(41);
    hr::ServerConfig config;
    // maxBatch above maxDepth and a long deadline: the batcher cannot
    // flush before the burst fills the bounded queue, so the overflow
    // deterministically sheds.
    config.queue.maxBatch = 4096;
    config.queue.maxDelayUs = 200'000;
    config.queue.maxDepth = 32;
    hr::Server server(hr::InferenceEngine::fromModel(model, {}), config);

    std::size_t admitted = 0, shed = 0;
    std::vector<double> row(model.inputDim, 1.0);
    for (int i = 0; i < 100; ++i)
        server.submit(row).admitted() ? ++admitted : ++shed;
    hr::ServerStats stats = server.stop();

    EXPECT_EQ(admitted, 32u);
    EXPECT_EQ(shed, 68u);
    EXPECT_EQ(stats.queue.shed, 68u);
    EXPECT_EQ(stats.rowsServed, 32u);  // admitted rows all drain.
}

TEST(Server, WireFramesServeAndMalformedFramesDrop)
{
    auto model = tcModel(43);
    hn::IotPacketConfig packet_config;
    packet_config.numPackets = 300;
    packet_config.seed = 7;

    std::mutex verdict_mutex;
    std::size_t delivered = 0;
    hr::ServerConfig config;
    config.queue.maxBatch = 128;
    config.queue.maxDepth = 0;
    hr::Server server(
        hr::InferenceEngine::fromModel(model, {}), config,
        [&](const hr::Request &, int) {
            std::lock_guard<std::mutex> lock(verdict_mutex);
            ++delivered;
        });

    for (const auto &labeled : hn::generateIotPackets(packet_config))
        EXPECT_TRUE(
            server.submitFrame(hn::serialize(labeled.packet)).admitted());
    EXPECT_EQ(server.submitFrame({0xde, 0xad}).status,
              hr::SubmitStatus::kMalformed);

    hr::ServerStats stats = server.stop();
    EXPECT_EQ(stats.rowsServed, 300u);
    EXPECT_EQ(stats.malformedFrames, 1u);
    EXPECT_EQ(delivered, 300u);
}

TEST(Server, RejectsUnfittedOrMismatchedScalerAndBadRowWidth)
{
    auto model = tcModel(47);
    EXPECT_THROW(hr::Server(hr::InferenceEngine::fromModel(model, {}),
                            {}, {}, ml::StandardScaler()),
                 std::runtime_error);

    hr::Server server(hr::InferenceEngine::fromModel(model, {}), {});
    EXPECT_THROW(server.submit(std::vector<double>(3, 0.0)),
                 std::runtime_error);
    server.stop();
}

// ------------------------------------------------- lanes + backpressure

TEST(RequestQueue, MaxDelayClampPreventsDeadlineOverflow)
{
    // Regression: enqueuedAt + microseconds(maxDelayUs) used to wrap
    // for huge values, turning the deadline negative and flushing
    // every row immediately. The policy now clamps at construction.
    hr::QueuePolicy policy;
    policy.maxBatch = 1024;
    policy.maxDelayUs = std::numeric_limits<std::uint64_t>::max();
    hr::RequestQueue queue(policy);
    EXPECT_EQ(queue.policy().maxDelayUs, hr::kMaxQueueDelayUs);

    // Behavioral half: with two rows pending and a (clamped) one-hour
    // deadline, pop() must still be waiting when close() arrives —
    // an overflowed deadline would release a kDeadline batch at once.
    EXPECT_EQ(queue.push(makeRequest(1, 2)), hr::Admission::kAdmitted);
    EXPECT_EQ(queue.push(makeRequest(2, 2)), hr::Admission::kAdmitted);
    auto started = Clock::now();
    std::thread closer([&queue] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        queue.close();
    });
    auto batch = queue.pop();
    double waited_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - started)
            .count();
    closer.join();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->reason, hr::FlushReason::kDrain);
    EXPECT_EQ(batch->requests.size(), 2u);
    EXPECT_GE(waited_ms, 20.0);
}

TEST(RequestQueue, StrictPriorityAmongReadyLanes)
{
    hr::QueueConfig config;
    hr::QueuePolicy probe;
    probe.maxBatch = 4;
    probe.maxDelayUs = 60'000'000;
    hr::QueuePolicy bulk = probe;
    config.lanes = {probe, bulk};
    hr::RequestQueue queue(config);

    // Bulk becomes size-ready first, then probe: the probe batch must
    // still come out before any bulk batch.
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(queue.push(makeRequest(100 + i, 2), 1),
                  hr::Admission::kAdmitted);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(queue.push(makeRequest(i, 2), 0),
                  hr::Admission::kAdmitted);

    auto first = queue.pop();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->lane, 0u);
    EXPECT_EQ(first->reason, hr::FlushReason::kSize);
    EXPECT_EQ(first->requests.front().id, 0u);
    EXPECT_EQ(first->requests.front().lane, 0u);

    auto second = queue.pop();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->lane, 1u);
    EXPECT_EQ(second->requests.front().id, 100u);
    EXPECT_EQ(queue.depth(0), 0u);
    EXPECT_EQ(queue.depth(1), 4u);
    EXPECT_EQ(queue.counters(0).sizeFlushes, 1u);
    EXPECT_EQ(queue.counters(1).sizeFlushes, 1u);
}

TEST(RequestQueue, IdleHighPriorityLaneDoesNotStarveLowerLanes)
{
    hr::QueueConfig config;
    hr::QueuePolicy lane;
    lane.maxBatch = 2;
    lane.maxDelayUs = 60'000'000;
    config.lanes = {lane, lane, lane};
    hr::RequestQueue queue(config);

    EXPECT_EQ(queue.push(makeRequest(7, 2), 2), hr::Admission::kAdmitted);
    EXPECT_EQ(queue.push(makeRequest(8, 2), 2), hr::Admission::kAdmitted);
    auto batch = queue.pop();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->lane, 2u);
    EXPECT_EQ(batch->requests.size(), 2u);
}

TEST(RequestQueue, EarliestDeadlineAcrossLanesWinsWhenNoneSizeReady)
{
    // Lane 0 has the longer delay budget: a waiting consumer must wake
    // for lane 1's earlier deadline even though lane 0 outranks it.
    hr::QueueConfig config;
    hr::QueuePolicy slow;
    slow.maxBatch = 1024;
    slow.maxDelayUs = 60'000'000;  // lane 0: ~never.
    hr::QueuePolicy fast = slow;
    fast.maxDelayUs = 20'000;      // lane 1: 20 ms.
    config.lanes = {slow, fast};
    hr::RequestQueue queue(config);

    EXPECT_EQ(queue.push(makeRequest(1, 2), 0), hr::Admission::kAdmitted);
    EXPECT_EQ(queue.push(makeRequest(2, 2), 1), hr::Admission::kAdmitted);

    auto batch = queue.pop();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->lane, 1u);
    EXPECT_EQ(batch->reason, hr::FlushReason::kDeadline);
    EXPECT_EQ(batch->requests.front().id, 2u);
    EXPECT_EQ(queue.depth(0), 1u);
}

TEST(RequestQueue, DrainReleasesHighestPriorityLaneFirst)
{
    hr::QueueConfig config;
    hr::QueuePolicy lane;
    lane.maxBatch = 1024;
    lane.maxDelayUs = 60'000'000;
    config.lanes = {lane, lane};
    hr::RequestQueue queue(config);
    EXPECT_EQ(queue.push(makeRequest(2, 2), 1), hr::Admission::kAdmitted);
    EXPECT_EQ(queue.push(makeRequest(1, 2), 0), hr::Admission::kAdmitted);
    queue.close();

    auto first = queue.pop();
    auto second = queue.pop();
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(first->lane, 0u);
    EXPECT_EQ(second->lane, 1u);
    EXPECT_EQ(first->reason, hr::FlushReason::kDrain);
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(RequestQueue, EarlyDropShedsRowsPastTheirBudgetDeterministically)
{
    hr::QueueConfig config;
    hr::QueuePolicy lane;
    lane.maxBatch = 1024;
    lane.maxDelayUs = 60'000'000;  // no deadline flush in this test.
    lane.dropAfterUs = 1000;       // 1 ms budget, exceeded by sleeping.
    config.lanes = {lane};
    config.backpressure = hr::BackpressureMode::kEarlyDrop;
    hr::RequestQueue queue(config);

    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(queue.push(makeRequest(i, 2)), hr::Admission::kAdmitted);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    // Every admitted row is now ~20 ms past a 1 ms budget: the drain
    // flush drops them all and pop() reports clean exhaustion instead
    // of serving hopelessly late rows.
    EXPECT_FALSE(queue.pop().has_value());
    EXPECT_EQ(queue.counters().earlyDropped, 5u);
    EXPECT_EQ(queue.counters().drainFlushes, 0u);
    EXPECT_EQ(queue.depth(), 0u);
}

TEST(RequestQueue, EarlyDropServesFreshRowsUntouched)
{
    hr::QueueConfig config;
    hr::QueuePolicy lane;
    lane.maxBatch = 1024;
    lane.maxDelayUs = 10'000;       // 10 ms deadline flush...
    lane.dropAfterUs = 60'000'000;  // ...far inside a huge drop budget.
    config.lanes = {lane};
    config.backpressure = hr::BackpressureMode::kEarlyDrop;
    hr::RequestQueue queue(config);

    for (std::uint64_t i = 0; i < 3; ++i)
        EXPECT_EQ(queue.push(makeRequest(i, 2)), hr::Admission::kAdmitted);
    auto batch = queue.pop();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->reason, hr::FlushReason::kDeadline);
    EXPECT_EQ(batch->requests.size(), 3u);
    EXPECT_EQ(queue.counters().earlyDropped, 0u);
}

TEST(RequestQueue, DefaultDropBudgetIsTwiceMaxDelayWithAFloor)
{
    hr::QueuePolicy lane;
    lane.maxDelayUs = 750;
    EXPECT_EQ(lane.effectiveDropAfterUs(), 1500u);
    lane.dropAfterUs = 9000;
    EXPECT_EQ(lane.effectiveDropAfterUs(), 9000u);

    // maxDelayUs 0 ("flush immediately") must not double into a zero
    // drop budget — that would early-drop every admitted row.
    hr::QueuePolicy immediate;
    immediate.maxDelayUs = 0;
    EXPECT_EQ(immediate.effectiveDropAfterUs(), hr::kMinDropBudgetUs);
    immediate.dropAfterUs = 200;  // explicit sub-floor values too.
    EXPECT_EQ(immediate.effectiveDropAfterUs(), hr::kMinDropBudgetUs);
}

TEST(RequestQueue, BlockWithTimeoutUnblocksWhenAFlushFreesSpace)
{
    hr::QueueConfig config;
    hr::QueuePolicy lane;
    lane.maxBatch = 4;
    lane.maxDelayUs = 60'000'000;
    lane.maxDepth = 4;
    config.lanes = {lane};
    config.backpressure = hr::BackpressureMode::kBlockWithTimeout;
    config.blockTimeoutUs = 60'000'000;  // practically forever.
    hr::RequestQueue queue(config);

    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(queue.push(makeRequest(i, 2)), hr::Admission::kAdmitted);

    hr::Admission fifth = hr::Admission::kShed;
    std::thread producer([&] {
        fifth = queue.push(makeRequest(99, 2));  // blocks: lane full.
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(queue.depth(), 4u);  // still blocked, nothing admitted.

    auto batch = queue.pop();      // size flush frees the lane...
    producer.join();               // ...which unblocks the producer.
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->requests.size(), 4u);
    EXPECT_EQ(fifth, hr::Admission::kAdmitted);
    EXPECT_EQ(queue.depth(), 1u);
    EXPECT_EQ(queue.counters().accepted, 5u);
    EXPECT_EQ(queue.counters().blockTimeouts, 0u);
    queue.close();
}

TEST(RequestQueue, BlockWithTimeoutGivesUpAndCountsIt)
{
    hr::QueueConfig config;
    hr::QueuePolicy lane;
    lane.maxBatch = 64;
    lane.maxDelayUs = 60'000'000;
    lane.maxDepth = 2;
    config.lanes = {lane};
    config.backpressure = hr::BackpressureMode::kBlockWithTimeout;
    config.blockTimeoutUs = 5'000;  // 5 ms, then give up.
    hr::RequestQueue queue(config);

    EXPECT_EQ(queue.push(makeRequest(1, 2)), hr::Admission::kAdmitted);
    EXPECT_EQ(queue.push(makeRequest(2, 2)), hr::Admission::kAdmitted);
    auto started = Clock::now();
    EXPECT_EQ(queue.push(makeRequest(3, 2)), hr::Admission::kTimedOut);
    double waited_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - started)
            .count();
    EXPECT_GE(waited_ms, 4.0);  // actually waited the bound out.
    EXPECT_EQ(queue.counters().shed, 1u);
    EXPECT_EQ(queue.counters().blockTimeouts, 1u);
}

TEST(RequestQueue, BlockedProducerFailsFastOnClose)
{
    hr::QueueConfig config;
    hr::QueuePolicy lane;
    lane.maxBatch = 64;
    lane.maxDelayUs = 60'000'000;
    lane.maxDepth = 1;
    config.lanes = {lane};
    config.backpressure = hr::BackpressureMode::kBlockWithTimeout;
    config.blockTimeoutUs = 60'000'000;
    hr::RequestQueue queue(config);

    EXPECT_EQ(queue.push(makeRequest(1, 2)), hr::Admission::kAdmitted);
    hr::Admission second = hr::Admission::kAdmitted;
    std::thread producer(
        [&] { second = queue.push(makeRequest(2, 2)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    producer.join();
    EXPECT_EQ(second, hr::Admission::kRejectedClosed);
}

TEST(RequestQueue, PushToUnknownLaneThrows)
{
    hr::RequestQueue queue;  // one lane.
    EXPECT_THROW(queue.push(makeRequest(1, 2), 1), std::out_of_range);
}

// --------------------------------------------------- Server, multi-lane

TEST(Server, TwoLaneServingKeepsVerdictsAndAttributesLaneStats)
{
    auto model = tcModel(53);
    hc::Rng rng(59);
    constexpr std::size_t kRows = 600;  // 300 per lane.
    hm::Matrix features(kRows, model.inputDim);
    for (double &v : features.data())
        v = rng.uniform(-4.0, 4.0);

    hr::ServerConfig config;
    config.queue.maxBatch = 32;        // probe lane: small batches.
    config.queue.maxDelayUs = 500;
    config.queue.maxDepth = 0;
    hr::QueuePolicy bulk;
    bulk.maxBatch = 128;
    bulk.maxDelayUs = 5'000;
    bulk.maxDepth = 0;
    config.extraLanes = {bulk};

    std::mutex verdict_mutex;
    std::map<std::uint64_t, int> verdicts;
    std::map<std::uint64_t, std::size_t> verdict_lanes;
    hr::Server server(
        hr::InferenceEngine::fromModel(model, {}), config,
        [&](const hr::Request &request, int verdict) {
            std::lock_guard<std::mutex> lock(verdict_mutex);
            verdicts[request.id] = verdict;
            verdict_lanes[request.id] = request.lane;
        });
    ASSERT_EQ(server.lanes(), 2u);

    std::vector<std::uint64_t> tickets(kRows);
    for (std::size_t r = 0; r < kRows; ++r) {
        hr::SubmitResult result =
            server.submit(features.row(r), r % 2);
        ASSERT_TRUE(result.admitted());
        tickets[r] = result.ticket;
    }
    hr::ServerStats stats = server.stop();

    EXPECT_EQ(stats.rowsServed, kRows);
    ASSERT_EQ(stats.lanes.size(), 2u);
    EXPECT_EQ(stats.lanes[0].rowsServed, kRows / 2);
    EXPECT_EQ(stats.lanes[1].rowsServed, kRows / 2);
    EXPECT_EQ(stats.lanes[0].queue.accepted, kRows / 2);
    EXPECT_EQ(stats.lanes[1].queue.accepted, kRows / 2);
    EXPECT_GT(stats.lanes[0].batches + stats.lanes[1].batches, 0u);

    auto reference = hi::ExecutablePlan::compile(model).run(features);
    ASSERT_EQ(verdicts.size(), kRows);
    for (std::size_t r = 0; r < kRows; ++r) {
        EXPECT_EQ(verdicts.at(tickets[r]), reference[r]) << "row " << r;
        EXPECT_EQ(verdict_lanes.at(tickets[r]), r % 2);
    }
}

TEST(Server, StopWithZeroRowsServedReportsZeroedPercentiles)
{
    auto model = tcModel(61);
    hr::Server server(hr::InferenceEngine::fromModel(model, {}), {});
    hr::ServerStats stats = server.stop();
    EXPECT_EQ(stats.rowsServed, 0u);
    EXPECT_EQ(stats.batches, 0u);
    EXPECT_EQ(stats.meanBatchRows, 0.0);
    EXPECT_EQ(stats.p50BatchLatencyUs, 0.0);
    EXPECT_EQ(stats.p99BatchLatencyUs, 0.0);
    EXPECT_EQ(stats.p50RequestLatencyUs, 0.0);
    EXPECT_EQ(stats.p99RequestLatencyUs, 0.0);
    ASSERT_EQ(stats.lanes.size(), 1u);
    EXPECT_EQ(stats.lanes[0].rowsServed, 0u);
    EXPECT_EQ(stats.lanes[0].p99RequestLatencyUs, 0.0);
}

TEST(Server, SubmitDistinguishesShedFromMalformedFromClosed)
{
    auto model = tcModel(67);
    hn::IotPacketConfig packet_config;
    packet_config.numPackets = 3;
    packet_config.seed = 11;
    auto packets = hn::generateIotPackets(packet_config);

    hr::ServerConfig config;
    // One-row lane and a batcher that cannot flush during the test
    // (size trigger far above depth, deadline far away): the second
    // well-formed frame deterministically sheds.
    config.queue.maxBatch = 4096;
    config.queue.maxDelayUs = 60'000'000;
    config.queue.maxDepth = 1;
    hr::Server server(hr::InferenceEngine::fromModel(model, {}), config);

    EXPECT_EQ(server.submitFrame(hn::serialize(packets[0].packet)).status,
              hr::SubmitStatus::kAdmitted);
    EXPECT_EQ(server.submitFrame(hn::serialize(packets[1].packet)).status,
              hr::SubmitStatus::kShed);
    EXPECT_EQ(server.submitFrame({0xba, 0xad}).status,
              hr::SubmitStatus::kMalformed);
    hr::ServerStats stats = server.stop();
    EXPECT_EQ(stats.malformedFrames, 1u);
    EXPECT_EQ(stats.queue.shed, 1u);
    EXPECT_EQ(stats.rowsServed, 1u);

    // Post-stop submits report the closed door, not a shed.
    EXPECT_EQ(server.submitFrame(hn::serialize(packets[2].packet)).status,
              hr::SubmitStatus::kRejectedClosed);
}

TEST(Server, SubmitToUnknownLaneThrows)
{
    auto model = tcModel(71);
    hr::Server server(hr::InferenceEngine::fromModel(model, {}), {});
    std::vector<double> row(model.inputDim, 0.0);
    EXPECT_THROW(server.submit(row, 7), std::out_of_range);
    server.stop();
}

// ------------------------------------------------------ drop visibility

TEST(RequestQueue, OnDropReportsTicketLaneAndWaitForAgedOutRows)
{
    hr::QueueConfig config;
    hr::QueuePolicy lane;
    lane.maxBatch = 1024;
    lane.maxDelayUs = 60'000'000;  // no deadline flush in this test.
    lane.dropAfterUs = 1000;       // 1 ms budget, exceeded by sleeping.
    config.lanes = {lane};
    config.backpressure = hr::BackpressureMode::kEarlyDrop;
    std::vector<std::tuple<std::uint64_t, std::size_t, std::uint64_t>>
        drops;
    config.onDrop = [&](std::uint64_t ticket, std::size_t from_lane,
                        std::uint64_t waited_us) {
        drops.emplace_back(ticket, from_lane, waited_us);
    };
    hr::RequestQueue queue(config);

    for (std::uint64_t i = 10; i < 15; ++i)
        EXPECT_EQ(queue.push(makeRequest(i, 2)), hr::Admission::kAdmitted);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    EXPECT_FALSE(queue.pop().has_value());

    // One callback per aged-out row, with its admission ticket, its
    // lane, and a wait at least the budget it blew.
    ASSERT_EQ(drops.size(), 5u);
    for (std::size_t i = 0; i < drops.size(); ++i) {
        EXPECT_EQ(std::get<0>(drops[i]), 10 + i);
        EXPECT_EQ(std::get<1>(drops[i]), 0u);
        EXPECT_GE(std::get<2>(drops[i]), 1000u);
    }
    EXPECT_EQ(queue.counters().earlyDropped, 5u);
}

TEST(RequestQueue, OnDropNotInvokedForDoorSheds)
{
    hr::QueueConfig config;
    hr::QueuePolicy lane;
    lane.maxBatch = 8;
    lane.maxDepth = 1;
    config.lanes = {lane};
    config.backpressure = hr::BackpressureMode::kShed;
    std::size_t drops = 0;
    config.onDrop = [&](std::uint64_t, std::size_t, std::uint64_t) {
        ++drops;
    };
    hr::RequestQueue queue(config);

    EXPECT_EQ(queue.push(makeRequest(1, 2)), hr::Admission::kAdmitted);
    // The producer learns about this synchronously via kShed — routing
    // it through onDrop too would double-report the same row.
    EXPECT_EQ(queue.push(makeRequest(2, 2)), hr::Admission::kShed);
    queue.close();
    EXPECT_TRUE(queue.pop().has_value());
    EXPECT_EQ(drops, 0u);
}

TEST(RequestQueue, OnDropRunsOutsideTheLockAndMayRetryViaPush)
{
    hr::QueueConfig config;
    hr::QueuePolicy lane;
    lane.maxBatch = 2;
    lane.maxDelayUs = 60'000'000;
    lane.dropAfterUs = 1000;
    config.lanes = {lane};
    config.backpressure = hr::BackpressureMode::kEarlyDrop;
    hr::RequestQueue *queue_ptr = nullptr;
    std::vector<std::uint64_t> retried;
    config.onDrop = [&](std::uint64_t ticket, std::size_t, std::uint64_t) {
        // The documented producer reaction: retry the dropped request.
        // This re-enters push() from inside the callback — it must not
        // deadlock on the queue mutex.
        retried.push_back(ticket);
        queue_ptr->push(makeRequest(ticket + 100, 2));
    };
    hr::RequestQueue queue(config);
    queue_ptr = &queue;

    EXPECT_EQ(queue.push(makeRequest(1, 2)), hr::Admission::kAdmitted);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(queue.push(makeRequest(2, 2)), hr::Admission::kAdmitted);
    EXPECT_EQ(queue.push(makeRequest(3, 2)), hr::Admission::kAdmitted);

    // Size flush: the stale front row drops (firing the retry), the two
    // fresh rows serve, and the retried row is queued behind them.
    auto batch = queue.pop();
    ASSERT_TRUE(batch.has_value());
    ASSERT_EQ(batch->requests.size(), 2u);
    EXPECT_EQ(batch->requests[0].id, 2u);
    EXPECT_EQ(batch->requests[1].id, 3u);
    ASSERT_EQ(retried.size(), 1u);
    EXPECT_EQ(retried[0], 1u);
    EXPECT_EQ(queue.depth(), 1u);
}

TEST(Server, OnDropSurfacesEarlyDropsToTheProducer)
{
    auto model = tcModel(29);
    hr::ServerConfig config;
    config.queue.maxBatch = 1024;
    config.queue.maxDelayUs = 60'000'000;  // only the drain flushes.
    config.queue.dropAfterUs = 1000;
    config.backpressure = hr::BackpressureMode::kEarlyDrop;
    std::mutex drop_mutex;
    std::vector<std::uint64_t> dropped;
    config.onDrop = [&](std::uint64_t ticket, std::size_t,
                        std::uint64_t) {
        std::lock_guard<std::mutex> lock(drop_mutex);
        dropped.push_back(ticket);
    };
    hr::Server server(hr::InferenceEngine::fromModel(model, {}), config);

    std::vector<double> row(model.inputDim, 0.5);
    hr::SubmitResult first = server.submit(row);
    hr::SubmitResult second = server.submit(row);
    ASSERT_TRUE(first.admitted());
    ASSERT_TRUE(second.admitted());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    hr::ServerStats stats = server.stop();

    // Both rows aged out before the drain flush: the producer heard
    // about each by ticket instead of diffing counters after the fact.
    EXPECT_EQ(stats.queue.earlyDropped, 2u);
    EXPECT_EQ(stats.rowsServed, 0u);
    std::lock_guard<std::mutex> lock(drop_mutex);
    ASSERT_EQ(dropped.size(), 2u);
    EXPECT_EQ(dropped[0], first.ticket);
    EXPECT_EQ(dropped[1], second.ticket);
}

// --------------------------------------- scale-out fast path (MPSC door)

TEST(RequestQueue, ShedVsAdmitDeterministicUnderContention)
{
    // 8 producers hammer one depth-10 lane with no consumer running.
    // The atomic depth-ticket door must make the outcome exact under
    // any interleaving: exactly maxDepth admissions, everything else
    // shed, counters and depth agreeing — never an over-admit from a
    // check/increment race.
    hr::QueueConfig config;
    hr::QueuePolicy lane;
    lane.maxBatch = 1024;
    lane.maxDelayUs = 60'000'000;
    lane.maxDepth = 10;
    config.lanes = {lane};
    hr::RequestQueue queue(config);

    constexpr std::size_t kProducers = 8;
    constexpr std::uint64_t kPerProducer = 200;
    std::atomic<std::size_t> admitted{0}, shed{0};
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p)
        producers.emplace_back([&queue, &admitted, &shed, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                auto verdict = queue.push(
                    makeRequest(p * kPerProducer + i, 2));
                hr::admitted(verdict) ? ++admitted : ++shed;
            }
        });
    for (std::thread &t : producers)
        t.join();

    EXPECT_EQ(admitted.load(), 10u);
    EXPECT_EQ(shed.load(), kProducers * kPerProducer - 10u);
    EXPECT_EQ(queue.depth(), 10u);
    EXPECT_EQ(queue.counters().accepted, 10u);
    EXPECT_EQ(queue.counters().shed, kProducers * kPerProducer - 10u);

    // The admitted rows drain intact.
    queue.close();
    auto batch = queue.pop();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->requests.size(), 10u);
}

TEST(RequestQueue, BlockedProducersAdmitInArrivalOrder)
{
    // Depth-1 lane in block mode, three producers arriving 40 ms
    // apart while the lane stays full: the space grants must go to the
    // FIFO head, so rows are admitted in arrival order (a later
    // producer can never slip past an earlier waiter when a slot
    // frees), pinned here by popping one row at a time.
    hr::QueueConfig config;
    hr::QueuePolicy lane;
    lane.maxBatch = 1;
    lane.maxDelayUs = 60'000'000;
    lane.maxDepth = 1;
    config.lanes = {lane};
    config.backpressure = hr::BackpressureMode::kBlockWithTimeout;
    config.blockTimeoutUs = 60'000'000;
    hr::RequestQueue queue(config);

    EXPECT_EQ(queue.push(makeRequest(0, 2)), hr::Admission::kAdmitted);
    std::vector<std::thread> producers;
    for (std::uint64_t p = 0; p < 3; ++p)
        producers.emplace_back([&queue, p] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(40 * (p + 1)));
            EXPECT_EQ(queue.push(makeRequest(100 + p, 2)),
                      hr::Admission::kAdmitted);
        });
    // All three producers are parked before the first pop.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    std::vector<std::uint64_t> served;
    for (int i = 0; i < 4; ++i) {
        auto batch = queue.pop();
        ASSERT_TRUE(batch.has_value());
        ASSERT_EQ(batch->requests.size(), 1u);
        served.push_back(batch->requests.front().id);
    }
    for (std::thread &t : producers)
        t.join();
    EXPECT_EQ(served,
              (std::vector<std::uint64_t>{0, 100, 101, 102}));
    EXPECT_EQ(queue.counters().accepted, 4u);
    EXPECT_EQ(queue.counters().blockTimeouts, 0u);
}

TEST(RequestQueue, FairnessAgingLetsOverdueBulkLanePreemptPriority)
{
    // Bulk (lane 1) rows sit 30 ms past a 5 ms deadline — far beyond
    // the 1 ms aging budget — while probe (lane 0) is size-ready.
    // Strict priority would serve probe first forever; aging hands the
    // starving bulk lane this flush and tags it in agedFlushes.
    hr::QueueConfig config;
    hr::QueuePolicy probe;
    probe.maxBatch = 4;
    probe.maxDelayUs = 60'000'000;
    hr::QueuePolicy bulk;
    bulk.maxBatch = 1024;
    bulk.maxDelayUs = 5'000;
    config.lanes = {probe, bulk};
    config.fairnessAgingUs = 1'000;
    hr::RequestQueue queue(config);

    EXPECT_EQ(queue.push(makeRequest(200, 2), 1), hr::Admission::kAdmitted);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(queue.push(makeRequest(i, 2), 0),
                  hr::Admission::kAdmitted);

    auto first = queue.pop();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->lane, 1u);
    EXPECT_EQ(first->reason, hr::FlushReason::kDeadline);
    EXPECT_EQ(first->requests.front().id, 200u);
    EXPECT_GE(queue.counters(1).agedFlushes, 1u);
    EXPECT_EQ(queue.counters(1).deadlineFlushes, 1u);

    auto second = queue.pop();  // priority resumes once bulk is served.
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->lane, 0u);
    EXPECT_EQ(queue.counters(0).agedFlushes, 0u);
}

TEST(RequestQueue, StrictPriorityHoldsWhenAgingDisabled)
{
    // Same starving-bulk setup with the default fairnessAgingUs = 0:
    // the probe lane must still win every flush — aging is opt-in and
    // the PR 8 ordering stays bit-for-bit without it.
    hr::QueueConfig config;
    hr::QueuePolicy probe;
    probe.maxBatch = 4;
    probe.maxDelayUs = 60'000'000;
    hr::QueuePolicy bulk;
    bulk.maxBatch = 1024;
    bulk.maxDelayUs = 5'000;
    config.lanes = {probe, bulk};
    hr::RequestQueue queue(config);

    EXPECT_EQ(queue.push(makeRequest(200, 2), 1), hr::Admission::kAdmitted);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(queue.push(makeRequest(i, 2), 0),
                  hr::Admission::kAdmitted);

    auto first = queue.pop();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->lane, 0u);
    EXPECT_EQ(first->reason, hr::FlushReason::kSize);
    EXPECT_EQ(queue.counters(0).agedFlushes, 0u);
    EXPECT_EQ(queue.counters(1).agedFlushes, 0u);
}

// ------------------------------------------- failure-path wire frames

TEST(Server, MalformedFrameReportsAPerTicketFailure)
{
    auto model = tcModel(51);
    hr::ServerConfig config;
    config.queue.maxBatch = 64;
    config.queue.maxDelayUs = 500;
    config.extraLanes = {config.queue};

    std::mutex failure_mutex;
    std::vector<std::tuple<std::uint64_t, std::size_t, std::string>>
        failures;
    config.onFailure = [&](std::uint64_t ticket, std::size_t lane,
                           const std::string &error) {
        std::lock_guard<std::mutex> lock(failure_mutex);
        failures.emplace_back(ticket, lane, error);
    };
    hr::Server server(hr::InferenceEngine::fromModel(model, {}), config);

    // A malformed frame gets a real ticket from the shared sequence and
    // an onFailure notification under it — not an anonymous counter
    // tick — so frame producers can correlate the rejection.
    hr::SubmitResult bad = server.submitFrame({0xde, 0xad, 0xbe}, 1);
    EXPECT_EQ(bad.status, hr::SubmitStatus::kMalformed);
    EXPECT_FALSE(bad.admitted());
    EXPECT_NE(bad.ticket, 0u);

    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(std::get<0>(failures[0]), bad.ticket);
    EXPECT_EQ(std::get<1>(failures[0]), 1u);
    EXPECT_NE(std::get<2>(failures[0]).find("malformed"),
              std::string::npos);

    // The ticket really came from the admission sequence: the next
    // admitted row draws a later one.
    hn::IotPacketConfig packet_config;
    packet_config.numPackets = 1;
    packet_config.seed = 3;
    auto packets = hn::generateIotPackets(packet_config);
    hr::SubmitResult good =
        server.submitFrame(hn::serialize(packets[0].packet));
    ASSERT_TRUE(good.admitted());
    EXPECT_GT(good.ticket, bad.ticket);

    hr::ServerStats stats = server.stop();
    EXPECT_EQ(stats.malformedFrames, 1u);
    EXPECT_EQ(stats.failedRows, 0u);  // never admitted != failed.
    EXPECT_EQ(stats.rowsServed, 1u);
}

TEST(Server, ThrowingMalformedFailureSinkIsCountedNotFatal)
{
    auto model = tcModel(52);
    hr::ServerConfig config;
    config.onFailure = [](std::uint64_t, std::size_t,
                          const std::string &) {
        throw std::runtime_error("sink exploded");
    };
    hr::Server server(hr::InferenceEngine::fromModel(model, {}), config);

    EXPECT_EQ(server.submitFrame({0x01}).status,
              hr::SubmitStatus::kMalformed);
    hr::ServerStats stats = server.stop();
    EXPECT_EQ(stats.malformedFrames, 1u);
    EXPECT_EQ(stats.callbackErrors, 1u);
}

// ----------------------------------- routed wire frames + epoch scaler

TEST(ServerRouting, WireFramesStandardizeWithTheEpochScaler)
{
    // The routed server has no producer-side scaler (models may have
    // different training moments); wire frames must instead be scaled
    // inside the router with the *epoch's* artifact scaler. Pinned
    // differentially: routed submitFrame verdicts == extract + scale +
    // one engine run by hand.
    auto model = tcModel(53);
    model.scalerMeans.assign(hn::kNumTcFeatures, 0.0);
    model.scalerStds.assign(hn::kNumTcFeatures, 1.0);
    for (std::size_t c = 0; c < hn::kNumTcFeatures; ++c) {
        model.scalerMeans[c] = 0.5 + 0.25 * static_cast<double>(c);
        model.scalerStds[c] = 2.0 + 0.5 * static_cast<double>(c);
    }
    model.scalerRecorded = true;

    hn::IotPacketConfig packet_config;
    packet_config.numPackets = 400;
    packet_config.seed = 11;
    auto packets = hn::generateIotPackets(packet_config);

    // Reference: the same extractor schema, the same scaling the epoch
    // carries, one engine batch.
    hn::FeatureExtractor ref_extractor;
    hm::Matrix scaled(packets.size(), hn::kNumTcFeatures);
    for (std::size_t r = 0; r < packets.size(); ++r) {
        std::vector<double> features =
            ref_extractor.extract(packets[r].packet);
        for (std::size_t c = 0; c < hn::kNumTcFeatures; ++c)
            scaled(r, c) = (features[c] - model.scalerMeans[c]) /
                           model.scalerStds[c];
    }
    std::vector<int> expected(packets.size());
    hr::InferenceEngine ref_engine =
        hr::InferenceEngine::fromModel(model, {});
    ref_engine.run(scaled, expected.data());

    auto registry = std::make_shared<hr::ModelRegistry>();
    registry->load("m", model);
    hr::RouteConfig route;
    route.defaultModel = "m";

    hr::ServerConfig config;
    config.queue.maxBatch = 64;
    config.queue.maxDelayUs = 500;
    std::mutex verdict_mutex;
    std::map<std::uint64_t, int> verdicts;
    hr::Server server(registry, route, config,
                      [&](const hr::Request &request, int verdict) {
                          std::lock_guard<std::mutex> lock(verdict_mutex);
                          verdicts[request.id] = verdict;
                      });

    std::vector<std::uint64_t> tickets(packets.size());
    for (std::size_t i = 0; i < packets.size(); ++i) {
        hr::SubmitResult result =
            server.submitFrame(hn::serialize(packets[i].packet));
        ASSERT_TRUE(result.admitted());
        tickets[i] = result.ticket;
    }
    server.stop();

    ASSERT_EQ(verdicts.size(), packets.size());
    for (std::size_t i = 0; i < packets.size(); ++i)
        EXPECT_EQ(verdicts[tickets[i]], expected[i]) << "frame " << i;

    // And the scaler is load-bearing: the same frames served raw give
    // a different verdict somewhere, or this test would pass with the
    // epoch scaler silently dropped.
    std::vector<int> raw_labels(packets.size());
    hm::Matrix raw(packets.size(), hn::kNumTcFeatures);
    for (std::size_t r = 0; r < packets.size(); ++r) {
        std::vector<double> features =
            ref_extractor.extract(packets[r].packet);
        for (std::size_t c = 0; c < hn::kNumTcFeatures; ++c)
            raw(r, c) = features[c];
    }
    ref_engine.run(raw, raw_labels.data());
    EXPECT_NE(raw_labels, expected);
}
