/**
 * @file
 * Tests for the async serving front-end: RequestQueue size/deadline
 * flush and bounded-depth shedding, drain-on-close semantics, and
 * runtime::Server end-to-end verdict correctness (batching never
 * changes labels — verdicts are bit-identical to one plan run over the
 * same rows). The producer/batcher handoffs run under TSAN in CI.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ir/exec_plan.hpp"
#include "net/feature_extract.hpp"
#include "net/packet.hpp"
#include "runtime/request_queue.hpp"
#include "runtime/server.hpp"

namespace hc = homunculus::common;
namespace hi = homunculus::ir;
namespace hm = homunculus::math;
namespace hn = homunculus::net;
namespace hr = homunculus::runtime;
namespace ml = homunculus::ml;

namespace {

using Clock = std::chrono::steady_clock;

hr::Request
makeRequest(std::uint64_t id, std::size_t dim)
{
    hr::Request request;
    request.id = id;
    request.features.assign(dim, static_cast<double>(id));
    return request;
}

/** A small MLP consuming the packet extractor's schema. */
hi::ModelIr
tcModel(std::uint64_t seed)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kMlp;
    model.inputDim = hn::kNumTcFeatures;
    model.numClasses = 4;
    std::size_t prev = model.inputDim;
    for (std::size_t width : {std::size_t{10}, std::size_t{4}}) {
        hi::QuantizedLayer layer;
        layer.inputDim = prev;
        layer.outputDim = width;
        layer.weights.resize(prev * width);
        layer.biases.resize(width);
        for (auto &w : layer.weights)
            w = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        for (auto &b : layer.biases)
            b = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        model.layers.push_back(std::move(layer));
        prev = width;
    }
    model.validate();
    return model;
}

}  // namespace

// ----------------------------------------------------------- RequestQueue

TEST(RequestQueue, SizeFlushPreservesArrivalOrder)
{
    hr::QueuePolicy policy;
    policy.maxBatch = 8;
    policy.maxDelayUs = 60'000'000;  // deadline can't fire in this test.
    hr::RequestQueue queue(policy);

    for (std::uint64_t i = 0; i < 20; ++i)
        EXPECT_TRUE(queue.push(makeRequest(i, 3)));

    auto first = queue.pop();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->reason, hr::FlushReason::kSize);
    ASSERT_EQ(first->requests.size(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(first->requests[i].id, i);

    auto second = queue.pop();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->requests.front().id, 8u);
    EXPECT_EQ(queue.depth(), 4u);  // 4 rows below the size trigger left.
    EXPECT_EQ(queue.counters().sizeFlushes, 2u);
}

TEST(RequestQueue, DeadlineFlushReleasesPartialBatch)
{
    hr::QueuePolicy policy;
    policy.maxBatch = 1024;      // size trigger unreachable here.
    policy.maxDelayUs = 20'000;  // 20 ms — CI-proof margin.
    hr::RequestQueue queue(policy);

    auto started = Clock::now();
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_TRUE(queue.push(makeRequest(i, 3)));
    auto batch = queue.pop();
    double waited_us = std::chrono::duration<double, std::micro>(
                           Clock::now() - started)
                           .count();

    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->reason, hr::FlushReason::kDeadline);
    EXPECT_EQ(batch->requests.size(), 5u);
    // The flush must wait roughly maxDelay: not (much) less, and the
    // upper bound is loose only to survive loaded CI machines.
    EXPECT_GE(waited_us, 15'000.0);
    EXPECT_LT(waited_us, 2'000'000.0);
    EXPECT_EQ(queue.counters().deadlineFlushes, 1u);
}

TEST(RequestQueue, AdmissionControlShedsBeyondDepth)
{
    hr::QueuePolicy policy;
    policy.maxBatch = 64;        // > depth: no size flush interferes.
    policy.maxDelayUs = 60'000'000;
    policy.maxDepth = 10;
    hr::RequestQueue queue(policy);

    std::size_t admitted = 0, shed = 0;
    for (std::uint64_t i = 0; i < 25; ++i)
        queue.push(makeRequest(i, 3)) ? ++admitted : ++shed;
    EXPECT_EQ(admitted, 10u);
    EXPECT_EQ(shed, 15u);
    EXPECT_EQ(queue.depth(), 10u);
    EXPECT_EQ(queue.counters().accepted, 10u);
    EXPECT_EQ(queue.counters().shed, 15u);

    // Draining reopens admission for new arrivals.
    queue.close();
    auto drained = queue.pop();
    ASSERT_TRUE(drained.has_value());
    EXPECT_EQ(drained->requests.size(), 10u);
}

TEST(RequestQueue, CloseDrainsEverythingThenReportsExhaustion)
{
    hr::QueuePolicy policy;
    policy.maxBatch = 4;
    policy.maxDelayUs = 60'000'000;
    hr::RequestQueue queue(policy);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_TRUE(queue.push(makeRequest(i, 2)));
    queue.close();
    EXPECT_FALSE(queue.push(makeRequest(99, 2)));  // closed door.

    // 10 rows at maxBatch 4: two full batches + a 2-row drain tail.
    std::size_t rows = 0;
    std::size_t batches = 0;
    while (auto batch = queue.pop()) {
        rows += batch->requests.size();
        ++batches;
        if (batch->requests.size() < 4)
            EXPECT_EQ(batch->reason, hr::FlushReason::kDrain);
    }
    EXPECT_EQ(rows, 10u);
    EXPECT_EQ(batches, 3u);
    EXPECT_EQ(queue.counters().rejectedClosed, 1u);
    EXPECT_FALSE(queue.pop().has_value());  // stays exhausted.
}

TEST(RequestQueue, ConsumerBlockedOnEmptyQueueWakesOnPushAndClose)
{
    hr::QueuePolicy policy;
    policy.maxBatch = 2;
    policy.maxDelayUs = 60'000'000;
    hr::RequestQueue queue(policy);

    std::thread producer([&queue] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        queue.push(makeRequest(1, 2));
        queue.push(makeRequest(2, 2));
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        queue.close();
    });
    auto batch = queue.pop();          // blocks until the size flush.
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->requests.size(), 2u);
    EXPECT_FALSE(queue.pop().has_value());  // wakes on close.
    producer.join();
}

// ----------------------------------------------------------------- Server

TEST(Server, VerdictsBitIdenticalToOnePlanRun)
{
    auto model = tcModel(17);
    hc::Rng rng(23);
    constexpr std::size_t kRows = 3000;
    hm::Matrix features(kRows, model.inputDim);
    for (double &v : features.data())
        v = rng.uniform(-4.0, 4.0);

    std::mutex verdict_mutex;
    std::map<std::uint64_t, int> verdicts;
    hr::ServerConfig config;
    config.queue.maxBatch = 256;
    config.queue.maxDelayUs = 500;
    config.queue.maxDepth = 0;  // unbounded: no shedding in this test.
    hr::EngineOptions engine_options;
    engine_options.jobs = 2;
    engine_options.minRowsToShard = 1;
    hr::Server server(
        hr::InferenceEngine::fromModel(model, engine_options), config,
        [&](const hr::Request &request, int verdict) {
            std::lock_guard<std::mutex> lock(verdict_mutex);
            verdicts[request.id] = verdict;
        });

    std::vector<std::uint64_t> tickets(kRows);
    for (std::size_t r = 0; r < kRows; ++r) {
        auto ticket = server.submit(features.row(r));
        ASSERT_TRUE(ticket.has_value());
        tickets[r] = *ticket;
    }
    hr::ServerStats stats = server.stop();

    EXPECT_EQ(stats.rowsServed, kRows);
    EXPECT_EQ(stats.queue.accepted, kRows);
    EXPECT_EQ(stats.queue.shed, 0u);
    EXPECT_GT(stats.batches, 0u);
    EXPECT_GE(stats.p99RequestLatencyUs, stats.p50RequestLatencyUs);

    auto reference = hi::ExecutablePlan::compile(model).run(features);
    ASSERT_EQ(verdicts.size(), kRows);
    for (std::size_t r = 0; r < kRows; ++r)
        EXPECT_EQ(verdicts.at(tickets[r]), reference[r]) << "row " << r;
}

TEST(Server, AppliesStoredScalerLikeTheTrainingTransform)
{
    auto model = tcModel(31);
    model.scalerMeans.assign(model.inputDim, 2.0);
    model.scalerStds.assign(model.inputDim, 0.5);
    model.validate();

    hc::Rng rng(37);
    constexpr std::size_t kRows = 200;
    hm::Matrix raw(kRows, model.inputDim);
    for (double &v : raw.data())
        v = rng.uniform(-3.0, 3.0);

    std::mutex verdict_mutex;
    std::map<std::uint64_t, int> verdicts;
    hr::ServerConfig config;
    config.queue.maxBatch = 64;
    config.queue.maxDepth = 0;
    hr::Server server(
        hr::InferenceEngine::fromModel(model, {}), config,
        [&](const hr::Request &request, int verdict) {
            std::lock_guard<std::mutex> lock(verdict_mutex);
            verdicts[request.id] = verdict;
        },
        ml::StandardScaler::fromMoments(model.scalerMeans,
                                        model.scalerStds));

    std::vector<std::uint64_t> tickets(kRows);
    for (std::size_t r = 0; r < kRows; ++r)
        tickets[r] = *server.submit(raw.row(r));
    server.stop();

    // Reference: scale manually, then run the plan once.
    hm::Matrix scaled = raw;
    for (std::size_t r = 0; r < kRows; ++r)
        for (std::size_t c = 0; c < scaled.cols(); ++c)
            scaled(r, c) = (scaled(r, c) - 2.0) / 0.5;
    auto reference = hi::ExecutablePlan::compile(model).run(scaled);
    for (std::size_t r = 0; r < kRows; ++r)
        EXPECT_EQ(verdicts.at(tickets[r]), reference[r]);
}

TEST(Server, ShedsWhenDepthExceededAndCountsIt)
{
    auto model = tcModel(41);
    hr::ServerConfig config;
    // maxBatch above maxDepth and a long deadline: the batcher cannot
    // flush before the burst fills the bounded queue, so the overflow
    // deterministically sheds.
    config.queue.maxBatch = 4096;
    config.queue.maxDelayUs = 200'000;
    config.queue.maxDepth = 32;
    hr::Server server(hr::InferenceEngine::fromModel(model, {}), config);

    std::size_t admitted = 0, shed = 0;
    std::vector<double> row(model.inputDim, 1.0);
    for (int i = 0; i < 100; ++i)
        server.submit(row) ? ++admitted : ++shed;
    hr::ServerStats stats = server.stop();

    EXPECT_EQ(admitted, 32u);
    EXPECT_EQ(shed, 68u);
    EXPECT_EQ(stats.queue.shed, 68u);
    EXPECT_EQ(stats.rowsServed, 32u);  // admitted rows all drain.
}

TEST(Server, WireFramesServeAndMalformedFramesDrop)
{
    auto model = tcModel(43);
    hn::IotPacketConfig packet_config;
    packet_config.numPackets = 300;
    packet_config.seed = 7;

    std::mutex verdict_mutex;
    std::size_t delivered = 0;
    hr::ServerConfig config;
    config.queue.maxBatch = 128;
    config.queue.maxDepth = 0;
    hr::Server server(
        hr::InferenceEngine::fromModel(model, {}), config,
        [&](const hr::Request &, int) {
            std::lock_guard<std::mutex> lock(verdict_mutex);
            ++delivered;
        });

    for (const auto &labeled : hn::generateIotPackets(packet_config))
        EXPECT_TRUE(
            server.submitFrame(hn::serialize(labeled.packet)).has_value());
    EXPECT_FALSE(server.submitFrame({0xde, 0xad}).has_value());

    hr::ServerStats stats = server.stop();
    EXPECT_EQ(stats.rowsServed, 300u);
    EXPECT_EQ(stats.malformedFrames, 1u);
    EXPECT_EQ(delivered, 300u);
}

TEST(Server, RejectsUnfittedOrMismatchedScalerAndBadRowWidth)
{
    auto model = tcModel(47);
    EXPECT_THROW(hr::Server(hr::InferenceEngine::fromModel(model, {}),
                            {}, {}, ml::StandardScaler()),
                 std::runtime_error);

    hr::Server server(hr::InferenceEngine::fromModel(model, {}), {});
    EXPECT_THROW(server.submit(std::vector<double>(3, 0.0)),
                 std::runtime_error);
    server.stop();
}
