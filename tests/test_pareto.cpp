/**
 * @file
 * Unit tests for the Pareto front and multi-objective BO mode.
 */
#include <gtest/gtest.h>

#include "opt/bayes_opt.hpp"
#include "opt/pareto.hpp"

namespace ho = homunculus::opt;

namespace {

ho::ParetoPoint
point(double objective, double cost)
{
    ho::ParetoPoint p;
    p.objective = objective;
    p.cost = cost;
    return p;
}

}  // namespace

TEST(Pareto, DominationDefinition)
{
    EXPECT_TRUE(ho::dominates(point(0.9, 10), point(0.8, 20)));
    EXPECT_TRUE(ho::dominates(point(0.9, 10), point(0.9, 20)));
    EXPECT_TRUE(ho::dominates(point(0.9, 10), point(0.8, 10)));
    EXPECT_FALSE(ho::dominates(point(0.9, 10), point(0.9, 10)));  // equal.
    EXPECT_FALSE(ho::dominates(point(0.9, 20), point(0.8, 10)));  // trade.
}

TEST(Pareto, InsertKeepsOnlyNonDominated)
{
    ho::ParetoFront front;
    EXPECT_TRUE(front.insert(point(0.5, 50)));
    EXPECT_TRUE(front.insert(point(0.8, 80)));   // trade-off: kept.
    EXPECT_TRUE(front.insert(point(0.3, 10)));   // cheap: kept.
    EXPECT_EQ(front.size(), 3u);

    // Dominates the 0.5/50 point: evicts it.
    EXPECT_TRUE(front.insert(point(0.6, 40)));
    EXPECT_EQ(front.size(), 3u);

    // Dominated by 0.6/40: rejected.
    EXPECT_FALSE(front.insert(point(0.55, 45)));
    EXPECT_EQ(front.size(), 3u);
}

TEST(Pareto, DuplicateCoordinatesRejected)
{
    ho::ParetoFront front;
    EXPECT_TRUE(front.insert(point(0.5, 5)));
    EXPECT_FALSE(front.insert(point(0.5, 5)));
}

TEST(Pareto, SortedByCostIsAscendingAndObjectiveAscending)
{
    ho::ParetoFront front;
    front.insert(point(0.9, 90));
    front.insert(point(0.5, 20));
    front.insert(point(0.7, 50));
    auto sorted = front.sortedByCost();
    ASSERT_EQ(sorted.size(), 3u);
    for (std::size_t i = 1; i < sorted.size(); ++i) {
        EXPECT_GT(sorted[i].cost, sorted[i - 1].cost);
        // On a clean front, higher cost must buy higher objective.
        EXPECT_GT(sorted[i].objective, sorted[i - 1].objective);
    }
}

TEST(Pareto, HypervolumeKnownValue)
{
    ho::ParetoFront front;
    front.insert(point(0.5, 2.0));
    front.insert(point(1.0, 4.0));
    // Reference (0, 6): rect1 = (6-2)*(0.5-0) = 2; rect2 = (6-4)*(1-0.5)=1.
    EXPECT_NEAR(front.hypervolume(0.0, 6.0), 3.0, 1e-12);
}

TEST(Pareto, HypervolumeGrowsWithBetterPoints)
{
    ho::ParetoFront a, b;
    a.insert(point(0.5, 3.0));
    b.insert(point(0.5, 3.0));
    b.insert(point(0.9, 5.0));
    EXPECT_GT(b.hypervolume(0.0, 10.0), a.hypervolume(0.0, 10.0));
}

TEST(Pareto, ScalarizeEndpoints)
{
    // weight 1: pure objective; weight 0: pure (negative) cost.
    EXPECT_NEAR(ho::scalarize(0.8, 30, 0.0, 1.0, 0.0, 100.0, 1.0), 0.8,
                1e-12);
    EXPECT_NEAR(ho::scalarize(0.8, 30, 0.0, 1.0, 0.0, 100.0, 0.0), -0.3,
                1e-12);
}

TEST(MultiObjectiveBo, FrontCoversTheTradeOff)
{
    // Synthetic trade-off: objective = x, cost = x^2 (higher quality is
    // quadratically more expensive). Every x is Pareto-optimal, so the
    // front should spread across the range rather than cluster at max x.
    auto objective = [](const ho::Configuration &config) {
        double x = config.real("x");
        ho::EvalResult result;
        result.objective = x;
        result.feasible = true;
        result.metrics["cost"] = x * x;
        return result;
    };
    ho::SearchSpace space;
    space.addReal("x", 0.0, 1.0);

    ho::BoConfig config;
    config.numInitSamples = 8;
    config.numIterations = 20;
    config.costMetricKey = "cost";
    ho::BayesianOptimizer optimizer(space, config);
    auto result = optimizer.optimize(objective);

    ASSERT_GE(result.front.size(), 5u);
    auto sorted = result.front.sortedByCost();
    EXPECT_LT(sorted.front().objective, 0.5);  // a cheap point exists.
    EXPECT_GT(sorted.back().objective, 0.8);   // a high-quality point too.
}

TEST(MultiObjectiveBo, FrontOnlyHoldsFeasiblePoints)
{
    auto objective = [](const ho::Configuration &config) {
        double x = config.real("x");
        ho::EvalResult result;
        result.objective = x;
        result.feasible = x < 0.5;
        result.metrics["cost"] = x;
        return result;
    };
    ho::SearchSpace space;
    space.addReal("x", 0.0, 1.0);

    ho::BoConfig config;
    config.numInitSamples = 6;
    config.numIterations = 10;
    config.costMetricKey = "cost";
    ho::BayesianOptimizer optimizer(space, config);
    auto result = optimizer.optimize(objective);
    for (const auto &p : result.front.points())
        EXPECT_LT(p.objective, 0.5);
}

TEST(MultiObjectiveBo, SingleObjectiveModeLeavesFrontEmpty)
{
    auto objective = [](const ho::Configuration &config) {
        ho::EvalResult result;
        result.objective = config.real("x");
        result.feasible = true;
        return result;
    };
    ho::SearchSpace space;
    space.addReal("x", 0.0, 1.0);
    ho::BoConfig config;
    config.numInitSamples = 3;
    config.numIterations = 3;
    ho::BayesianOptimizer optimizer(space, config);
    auto result = optimizer.optimize(objective);
    EXPECT_TRUE(result.front.empty());
}
