/**
 * @file
 * Tests for the staged Compiler / CompileSession API: stage ordering,
 * Status propagation, progress observation, cooperative cancellation,
 * and bit-identical results across search-pool widths.
 */
#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "core/compiler.hpp"
#include "core/generate.hpp"
#include "data/anomaly_generator.hpp"

namespace hcore = homunculus::core;
namespace hd = homunculus::data;

namespace {

hcore::ModelSpec
adSpec(std::size_t samples = 900)
{
    hcore::ModelSpec spec;
    spec.name = "ad";
    spec.optimizationMetric = hcore::Metric::kF1;
    spec.algorithms = {hcore::Algorithm::kDnn};
    spec.dataLoader = [samples] {
        hd::AnomalyConfig config;
        config.numSamples = samples;
        return hd::generateAnomalySplit(config);
    };
    return spec;
}

hcore::CompileOptions
tinyOptions()
{
    hcore::CompileOptions options;
    options.bo.numInitSamples = 3;
    options.bo.numIterations = 4;
    return options;
}

}  // namespace

TEST(CompilerSession, StagesMustRunInOrder)
{
    auto platform = hcore::Platforms::taurus();
    platform.constrain({1.0, 500.0}, {16, 16});
    platform.schedule(adSpec());

    hcore::Compiler compiler(tinyOptions());
    hcore::CompileSession session = compiler.openSession(platform);
    EXPECT_EQ(session.completedStage(), hcore::Stage::kIdle);

    // Every stage but the first is premature right now.
    EXPECT_EQ(session.selectFamilies().code(),
              hcore::StatusCode::kFailedPrecondition);
    EXPECT_EQ(session.searchFamilies().code(),
              hcore::StatusCode::kFailedPrecondition);
    EXPECT_EQ(session.pickWinner().code(),
              hcore::StatusCode::kFailedPrecondition);
    EXPECT_EQ(session.emit().code(),
              hcore::StatusCode::kFailedPrecondition);

    ASSERT_TRUE(session.loadData().isOk());
    EXPECT_EQ(session.completedStage(), hcore::Stage::kLoadData);
    EXPECT_EQ(session.specNames(), std::vector<std::string>{"ad"});
    // Stages are single-use.
    EXPECT_EQ(session.loadData().code(),
              hcore::StatusCode::kFailedPrecondition);

    ASSERT_TRUE(session.selectFamilies().isOk());
    ASSERT_NE(session.familiesFor("ad"), nullptr);
    EXPECT_EQ(session.familiesFor("ad")->size(), 1u);

    // run() finishes whatever remains.
    ASSERT_TRUE(session.run().isOk());
    EXPECT_EQ(session.completedStage(), hcore::Stage::kEmit);
    const auto *model = session.report().find("ad");
    ASSERT_NE(model, nullptr);
    EXPECT_TRUE(model->report.feasible);
    EXPECT_FALSE(model->code.empty());

    ASSERT_NE(session.searchesFor("ad"), nullptr);
    EXPECT_EQ(session.searchesFor("ad")->size(), 1u);
}

TEST(CompilerSession, CompileMatchesLegacyGenerateShim)
{
    auto spec = adSpec();

    auto platform_new = hcore::Platforms::taurus();
    platform_new.constrain({1.0, 500.0}, {16, 16});
    platform_new.schedule(spec);
    hcore::Compiler compiler(tinyOptions());
    auto compiled = compiler.compile(platform_new);
    ASSERT_TRUE(compiled.isOk());

    auto platform_old = hcore::Platforms::taurus();
    platform_old.constrain({1.0, 500.0}, {16, 16});
    platform_old.schedule(spec);
    hcore::GenerateOptions legacy;
    legacy.bo.numInitSamples = 3;
    legacy.bo.numIterations = 4;
    auto generated = hcore::generate(platform_old, legacy);
    ASSERT_TRUE(generated.success);

    const auto *model_new = compiled->find("ad");
    const auto *model_old = generated.find("ad");
    ASSERT_NE(model_new, nullptr);
    ASSERT_NE(model_old, nullptr);
    EXPECT_EQ(model_new->algorithm, model_old->algorithm);
    EXPECT_EQ(model_new->objective, model_old->objective);  // bit-exact.
    EXPECT_EQ(model_new->code, model_old->code);
    EXPECT_EQ(model_new->model.paramCount(), model_old->model.paramCount());
}

TEST(CompilerSession, ResultsBitIdenticalAcrossJobs)
{
    // Empty pool on Taurus -> all four families are searched, which is
    // where thread-count nondeterminism would show up.
    auto spec = adSpec(700);
    spec.algorithms.clear();

    auto run = [&](std::size_t jobs) {
        auto platform = hcore::Platforms::taurus();
        platform.constrain({1.0, 500.0}, {16, 16});
        platform.schedule(spec);
        auto options = tinyOptions();
        options.jobs = jobs;
        hcore::Compiler compiler(options);
        auto compiled = compiler.compile(platform);
        EXPECT_TRUE(compiled.isOk()) << compiled.status().toString();
        return compiled.value();
    };

    hcore::CompileReport serial = run(1);
    hcore::CompileReport parallel = run(4);

    const auto *model_serial = serial.find("ad");
    const auto *model_parallel = parallel.find("ad");
    ASSERT_NE(model_serial, nullptr);
    ASSERT_NE(model_parallel, nullptr);

    EXPECT_EQ(model_serial->algorithm, model_parallel->algorithm);
    EXPECT_EQ(model_serial->objective, model_parallel->objective);
    EXPECT_EQ(model_serial->code, model_parallel->code);

    // Every family's full trace must match evaluation by evaluation.
    ASSERT_EQ(model_serial->perAlgorithm.size(), 4u);
    ASSERT_EQ(model_parallel->perAlgorithm.size(), 4u);
    for (const auto &[family, trace] : model_serial->perAlgorithm) {
        const auto &other = model_parallel->perAlgorithm.at(family);
        ASSERT_EQ(trace.history.size(), other.history.size()) << family;
        for (std::size_t i = 0; i < trace.history.size(); ++i) {
            EXPECT_EQ(trace.history[i].result.objective,
                      other.history[i].result.objective)
                << family << " eval " << i;
            EXPECT_EQ(trace.history[i].result.feasible,
                      other.history[i].result.feasible)
                << family << " eval " << i;
        }
        EXPECT_EQ(trace.bestSoFarSeries(), other.bestSoFarSeries())
            << family;
    }
}

TEST(CompilerSession, CancellationMidSearchReturnsCancelled)
{
    auto platform = hcore::Platforms::taurus();
    platform.constrain({1.0, 500.0}, {16, 16});
    platform.schedule(adSpec());

    auto options = tinyOptions();
    hcore::CancellationToken token = options.cancelToken;
    options.observer = [token](const hcore::ProgressEvent &event) {
        // Cancel once the search is underway but far from finished.
        if (event.stage == hcore::Stage::kSearchFamilies &&
            event.evalsDone >= 2)
            token.requestCancel();
    };

    hcore::Compiler compiler(options);
    hcore::CompileSession session = compiler.openSession(platform);
    hcore::Status status = session.run();
    EXPECT_EQ(status.code(), hcore::StatusCode::kCancelled);
    // The search stage did not complete, and no winner was picked.
    EXPECT_EQ(session.completedStage(), hcore::Stage::kSelectFamilies);
    EXPECT_TRUE(session.report().models.empty());
}

TEST(CompilerSession, CancelBeforeRunShortCircuitsEveryStage)
{
    auto platform = hcore::Platforms::taurus();
    platform.schedule(adSpec());
    auto options = tinyOptions();
    options.cancelToken.requestCancel();
    hcore::Compiler compiler(options);
    hcore::CompileSession session = compiler.openSession(platform);
    EXPECT_EQ(session.loadData().code(), hcore::StatusCode::kCancelled);
    EXPECT_EQ(session.run().code(), hcore::StatusCode::kCancelled);

    // reset() re-arms the shared token, so the same Compiler can open a
    // fresh, workable session afterwards.
    options.cancelToken.reset();
    hcore::CompileSession fresh = compiler.openSession(platform);
    EXPECT_TRUE(fresh.loadData().isOk());
}

TEST(CompilerSession, InfeasibleEnvelopeYieldsInfeasibleStatus)
{
    auto platform = hcore::Platforms::taurus();
    // 50 GPkt/s at 1 ns is beyond any mapping the grid can produce.
    platform.constrain({50.0, 1.0}, {4, 4});
    platform.schedule(adSpec(600));

    hcore::Compiler compiler(tinyOptions());
    auto compiled = compiler.compile(platform);
    ASSERT_FALSE(compiled.isOk());
    EXPECT_EQ(compiled.status().code(), hcore::StatusCode::kInfeasible);
    // Whether candidate selection or winner picking rejects it, the
    // diagnostics must name the failing spec.
    EXPECT_NE(compiled.status().toString().find("ad"), std::string::npos);
    EXPECT_FALSE(compiled.status().context().empty());

    // The legacy shim surfaces the same failure as its usual exception.
    auto platform_old = hcore::Platforms::taurus();
    platform_old.constrain({50.0, 1.0}, {4, 4});
    platform_old.schedule(adSpec(600));
    hcore::GenerateOptions legacy;
    legacy.bo.numInitSamples = 3;
    legacy.bo.numIterations = 4;
    EXPECT_THROW(hcore::generate(platform_old, legacy),
                 std::runtime_error);
}

TEST(CompilerSession, MissingLoaderYieldsInvalidArgument)
{
    auto platform = hcore::Platforms::taurus();
    hcore::ModelSpec broken;
    broken.name = "no_loader";
    platform.schedule(broken);

    hcore::Compiler compiler(tinyOptions());
    hcore::CompileSession session = compiler.openSession(platform);
    hcore::Status status = session.loadData();
    EXPECT_EQ(status.code(), hcore::StatusCode::kInvalidArgument);
    ASSERT_EQ(status.context().size(), 1u);
    EXPECT_NE(status.context()[0].find("no_loader"), std::string::npos);
}

TEST(CompilerSession, ProgressObserverSeesStagesInOrder)
{
    auto platform = hcore::Platforms::taurus();
    platform.constrain({1.0, 500.0}, {16, 16});
    platform.schedule(adSpec(600));

    std::mutex mutex;
    std::vector<hcore::Stage> stages;
    auto options = tinyOptions();
    options.jobs = 2;
    options.observer = [&](const hcore::ProgressEvent &event) {
        std::lock_guard<std::mutex> lock(mutex);
        stages.push_back(event.stage);
    };

    hcore::Compiler compiler(options);
    ASSERT_TRUE(compiler.compile(platform).isOk());

    ASSERT_FALSE(stages.empty());
    // Monotone: once a later stage appears, earlier ones never recur.
    for (std::size_t i = 1; i < stages.size(); ++i)
        EXPECT_GE(static_cast<int>(stages[i]),
                  static_cast<int>(stages[i - 1]));
    EXPECT_EQ(stages.front(), hcore::Stage::kLoadData);
    EXPECT_EQ(stages.back(), hcore::Stage::kEmit);
}

TEST(CompilerSession, SearchSpecMatchesSessionWinner)
{
    auto spec = adSpec(700);
    auto split = spec.dataLoader();

    auto platform = hcore::Platforms::taurus();
    platform.constrain({1.0, 500.0}, {16, 16});
    auto direct =
        hcore::searchSpec(spec, platform, tinyOptions(), split);
    ASSERT_TRUE(direct.isOk());

    auto platform_session = hcore::Platforms::taurus();
    platform_session.constrain({1.0, 500.0}, {16, 16});
    platform_session.schedule(spec);
    hcore::Compiler compiler(tinyOptions());
    auto compiled = compiler.compile(platform_session);
    ASSERT_TRUE(compiled.isOk());

    const auto *session_model = compiled->find("ad");
    ASSERT_NE(session_model, nullptr);
    EXPECT_EQ(direct->objective, session_model->objective);
    EXPECT_EQ(direct->algorithm, session_model->algorithm);
    EXPECT_EQ(direct->code, session_model->code);
}
