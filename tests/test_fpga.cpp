/**
 * @file
 * Unit tests for the FPGA resource/power model.
 */
#include <gtest/gtest.h>

#include "backends/fpga.hpp"
#include "ml/mlp.hpp"

namespace hb = homunculus::backends;
namespace hi = homunculus::ir;
namespace ml = homunculus::ml;
namespace hc = homunculus::common;

namespace {

hi::ModelIr
makeMlpIr(std::size_t input_dim, std::vector<std::size_t> hidden,
          std::uint64_t seed = 1)
{
    ml::MlpConfig config;
    config.inputDim = input_dim;
    config.hiddenLayers = std::move(hidden);
    config.numClasses = 2;
    config.seed = seed;
    ml::Mlp mlp(config);
    return hi::lowerMlp(mlp, hc::FixedPointFormat::q88(), "fpga_test");
}

}  // namespace

TEST(Fpga, LoopbackMatchesTable5Baseline)
{
    hb::FpgaPlatform platform;
    auto loopback = platform.loopbackReport();
    EXPECT_DOUBLE_EQ(loopback.lutPercent, 5.36);
    EXPECT_DOUBLE_EQ(loopback.ffPercent, 3.64);
    EXPECT_DOUBLE_EQ(loopback.bramPercent, 4.15);
    EXPECT_DOUBLE_EQ(loopback.powerWatts, 15.131);
    EXPECT_TRUE(loopback.feasible);
}

TEST(Fpga, ModelsCostMoreThanLoopback)
{
    hb::FpgaPlatform platform;
    auto loopback = platform.loopbackReport();
    auto report = platform.estimate(makeMlpIr(7, {16, 8}));
    EXPECT_GT(report.lutPercent, loopback.lutPercent);
    EXPECT_GT(report.ffPercent, loopback.ffPercent);
    EXPECT_GT(report.powerWatts, loopback.powerWatts);
    EXPECT_GE(report.bramPercent, loopback.bramPercent);
}

TEST(Fpga, MoreParamsMoreLutsMorePower)
{
    hb::FpgaPlatform platform;
    auto small = platform.estimate(makeMlpIr(7, {8}));
    auto large = platform.estimate(makeMlpIr(7, {32, 32}));
    EXPECT_GT(large.lutPercent, small.lutPercent);
    EXPECT_GT(large.powerWatts, small.powerWatts);
}

TEST(Fpga, BramConstantUntilThreshold)
{
    hb::FpgaPlatform platform;
    auto small = platform.estimate(makeMlpIr(7, {16}));
    EXPECT_DOUBLE_EQ(small.bramPercent, 4.15);
    // A model beyond the spill threshold uses extra BRAM blocks.
    auto big = platform.estimate(makeMlpIr(30, {128, 64}));
    EXPECT_GT(big.bramPercent, 4.15);
}

TEST(Fpga, InfeasibleWhenUtilizationExceedsDevice)
{
    hb::FpgaConfig config;
    config.lutPerParam = 2.0;  // pathological calibration for the test.
    hb::FpgaPlatform platform(config);
    auto report = platform.estimate(makeMlpIr(7, {32, 32}));
    EXPECT_FALSE(report.feasible);
    EXPECT_NE(report.infeasibleReason.find("100%"), std::string::npos);
}

TEST(Fpga, EvaluateUsesQuantizedSemantics)
{
    hb::FpgaPlatform platform;
    auto ir = makeMlpIr(4, {6});
    homunculus::math::Matrix x(10, 4, 0.25);
    EXPECT_EQ(platform.evaluate(ir, x), hi::executeIrBatch(ir, x));
}

TEST(Fpga, SupportsEveryFamily)
{
    hb::FpgaPlatform platform;
    for (auto kind : {hi::ModelKind::kMlp, hi::ModelKind::kKMeans,
                      hi::ModelKind::kSvm, hi::ModelKind::kDecisionTree})
        EXPECT_EQ(platform.supports(kind), hb::AlgorithmSupport::kSupported);
}
