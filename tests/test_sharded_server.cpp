/**
 * @file
 * Tests for runtime::ShardedServer, the scale-out serving front door:
 * flow affinity (one flow key -> one shard, forever, with per-flow
 * verdict order preserved), verdict bit-exactness against a single
 * plan run, globally unique tickets with shard recovery, merged
 * ServerStats (counters summed, percentiles recomputed from the
 * concatenated reservoirs), consistent-hash spread across shards, and
 * the routed (registry-backed) form. The multi-shard submit/verdict
 * paths run under TSAN in CI (ShardedServer* is in the filter).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "net/feature_extract.hpp"
#include "net/packet.hpp"
#include "runtime/sharded_server.hpp"

namespace hc = homunculus::common;
namespace hi = homunculus::ir;
namespace hm = homunculus::math;
namespace hn = homunculus::net;
namespace hr = homunculus::runtime;

namespace {

/** A small deterministic MLP of the given shape. */
hi::ModelIr
mlpModel(std::uint64_t seed, std::size_t input_dim, std::size_t classes)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kMlp;
    model.inputDim = input_dim;
    model.numClasses = static_cast<int>(classes);
    std::size_t prev = input_dim;
    for (std::size_t width : {std::size_t{12}, classes}) {
        hi::QuantizedLayer layer;
        layer.inputDim = prev;
        layer.outputDim = width;
        layer.weights.resize(prev * width);
        layer.biases.resize(width);
        for (auto &w : layer.weights)
            w = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        for (auto &b : layer.biases)
            b = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        model.layers.push_back(std::move(layer));
        prev = width;
    }
    model.validate();
    return model;
}

/** Deterministic feature rows in the extractor-ish value range. */
hm::Matrix
featureRows(std::uint64_t seed, std::size_t rows, std::size_t cols)
{
    hc::Rng rng(seed);
    hm::Matrix x(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            x(r, c) = rng.uniform(-2.0, 2.0);
    return x;
}

/** Fast-flush sharded config: @p shards shards, no admission limit. */
hr::ShardedServerConfig
shardedConfig(std::size_t shards)
{
    hr::ShardedServerConfig config;
    config.shards = shards;
    config.server.queue.maxBatch = 32;
    config.server.queue.maxDelayUs = 200;
    config.server.queue.maxDepth = 0;
    return config;
}

/** A parsed TCP packet with the given 5-tuple fields. */
hn::RawPacket
tuplePacket(std::uint32_t src_addr, std::uint32_t dst_addr,
            std::uint16_t src_port, std::uint16_t dst_port)
{
    hn::RawPacket packet;
    packet.ipv4.protocol = 6;  // TCP.
    packet.ipv4.srcAddr = src_addr;
    packet.ipv4.dstAddr = dst_addr;
    hn::TcpHeader tcp;
    tcp.srcPort = src_port;
    tcp.dstPort = dst_port;
    packet.tcp = tcp;
    return packet;
}

}  // namespace

TEST(ShardedServer, FlowKeyIsStablePerTupleAndSplitsDistinctFlows)
{
    auto a1 = hr::flowKey(tuplePacket(0x0a000001, 0x0a000002, 443, 5000));
    auto a2 = hr::flowKey(tuplePacket(0x0a000001, 0x0a000002, 443, 5000));
    EXPECT_EQ(a1, a2);  // frames of one flow share the key.
    EXPECT_NE(a1, hr::flowKey(tuplePacket(0x0a000001, 0x0a000002, 443,
                                          5001)));  // port differs.
    EXPECT_NE(a1, hr::flowKey(tuplePacket(0x0a000003, 0x0a000002, 443,
                                          5000)));  // address differs.
}

TEST(ShardedServer, ConsistentHashSpreadsFlowsAcrossEveryShard)
{
    auto model = mlpModel(3, 4, 3);
    hr::ShardedServer server(hr::InferenceEngine::fromModel(model, {}),
                             shardedConfig(4));
    ASSERT_EQ(server.shards(), 4u);

    std::vector<std::size_t> flows_per_shard(4, 0);
    constexpr std::size_t kFlows = 1000;
    for (std::uint64_t key = 0; key < kFlows; ++key) {
        std::size_t shard = server.shardFor(key);
        ASSERT_LT(shard, 4u);
        EXPECT_EQ(server.shardFor(key), shard);  // stable per key.
        ++flows_per_shard[shard];
    }
    // splitmix64 placement: every shard owns a healthy slice — no
    // empty shard, no shard hoarding most of the key space.
    for (std::size_t shard = 0; shard < 4; ++shard) {
        EXPECT_GT(flows_per_shard[shard], kFlows / 20);
        EXPECT_LT(flows_per_shard[shard], (kFlows * 6) / 10);
    }
    server.stop();
}

TEST(ShardedServer, FlowAffinityKeepsPerFlowVerdictOrderOnOneShard)
{
    auto model = mlpModel(5, 4, 3);
    constexpr std::size_t kFlows = 24;
    constexpr std::size_t kRowsPerFlow = 40;

    // The callback only records raw tickets: a shard's batcher can
    // serve a row before submit() even returns to this thread, so the
    // ticket -> (flow, seq) resolution has to wait until after stop().
    std::mutex mutex;
    std::map<std::uint64_t, std::pair<std::uint64_t, std::size_t>> sent;
    std::vector<std::uint64_t> served;
    hr::ShardedServer server(
        hr::InferenceEngine::fromModel(model, {}), shardedConfig(4),
        [&](const hr::Request &request, int) {
            std::lock_guard<std::mutex> lock(mutex);
            served.push_back(request.id);
        });

    hm::Matrix x = featureRows(7, kRowsPerFlow, 4);
    std::set<std::uint64_t> tickets;
    for (std::size_t seq = 0; seq < kRowsPerFlow; ++seq)
        for (std::uint64_t flow = 0; flow < kFlows; ++flow) {
            std::uint64_t key = 0x9000 + flow * 131;
            hr::SubmitResult result = server.submit(key, x.row(seq));
            ASSERT_TRUE(result.admitted());
            // The ticket's high bits name the issuing shard, which must
            // be the flow's ring owner; tickets never collide across
            // shards.
            EXPECT_EQ(hr::ShardedServer::shardOfTicket(result.ticket),
                      server.shardFor(key));
            EXPECT_TRUE(tickets.insert(result.ticket).second);
            std::lock_guard<std::mutex> lock(mutex);
            sent[result.ticket] = {flow, seq};
        }
    server.stop();

    std::map<std::uint64_t, std::vector<std::size_t>> arrival_order;
    for (std::uint64_t ticket : served) {
        auto [flow, seq] = sent.at(ticket);
        arrival_order[flow].push_back(seq);
    }

    // One flow -> one shard -> one batcher: each flow's verdicts come
    // back in exactly its submission order, with nothing lost.
    ASSERT_EQ(arrival_order.size(), kFlows);
    for (const auto &[flow, order] : arrival_order) {
        ASSERT_EQ(order.size(), kRowsPerFlow) << "flow " << flow;
        for (std::size_t seq = 0; seq < kRowsPerFlow; ++seq)
            ASSERT_EQ(order[seq], seq) << "flow " << flow
                                       << " reordered";
    }
}

TEST(ShardedServer, VerdictsBitIdenticalToOnePlanRun)
{
    auto model = mlpModel(11, 4, 3);
    constexpr std::size_t kRows = 2000;
    hm::Matrix x = featureRows(13, kRows, 4);

    std::mutex mutex;
    std::map<std::uint64_t, int> verdicts;
    hr::ShardedServer server(
        hr::InferenceEngine::fromModel(model, {}), shardedConfig(3),
        [&](const hr::Request &request, int verdict) {
            std::lock_guard<std::mutex> lock(mutex);
            verdicts[request.id] = verdict;
        });

    std::map<std::uint64_t, std::size_t> ticket_row;
    for (std::size_t r = 0; r < kRows; ++r) {
        // Many distinct flows so every shard serves a slice.
        hr::SubmitResult result = server.submit(r * 2654435761u, x.row(r));
        ASSERT_TRUE(result.admitted());
        ticket_row[result.ticket] = r;
    }
    hr::ServerStats stats = server.stop();

    // Sharding is a routing decision, never a verdict decision: every
    // row classifies exactly as one plan run over the same matrix.
    std::vector<int> reference =
        hr::InferenceEngine::fromModel(model, {}).run(x);
    ASSERT_EQ(verdicts.size(), kRows);
    for (const auto &[ticket, row] : ticket_row)
        ASSERT_EQ(verdicts.at(ticket), reference[row]) << "row " << row;
    EXPECT_EQ(stats.rowsServed, kRows);
}

TEST(ShardedServer, StopMergesShardStatsAndKeepsPerShardSlices)
{
    auto model = mlpModel(17, 4, 3);
    constexpr std::size_t kRows = 600;
    hm::Matrix x = featureRows(19, kRows, 4);

    hr::ShardedServer server(hr::InferenceEngine::fromModel(model, {}),
                             shardedConfig(4));
    for (std::size_t r = 0; r < kRows; ++r)
        ASSERT_TRUE(server.submit(r * 0x9e3779b9u, x.row(r)).admitted());
    // Malformed frames are counted at the sharded front door — no
    // shard ever sees an unparseable frame.
    EXPECT_EQ(server.submitFrame({0xde, 0xad}).status,
              hr::SubmitStatus::kMalformed);

    hr::ServerStats merged = server.stop();
    const std::vector<hr::ServerStats> &per_shard = server.shardStats();
    ASSERT_EQ(per_shard.size(), 4u);

    std::size_t rows_sum = 0, batches_sum = 0, accepted_sum = 0;
    for (const hr::ServerStats &shard : per_shard) {
        rows_sum += shard.rowsServed;
        batches_sum += shard.batches;
        accepted_sum += shard.queue.accepted;
    }
    EXPECT_EQ(merged.rowsServed, kRows);
    EXPECT_EQ(rows_sum, kRows);
    EXPECT_EQ(merged.batches, batches_sum);
    EXPECT_EQ(merged.queue.accepted, accepted_sum);
    EXPECT_EQ(merged.malformedFrames, 1u);
    EXPECT_GT(merged.p50RequestLatencyUs, 0.0);
    EXPECT_GE(merged.p99RequestLatencyUs, merged.p50RequestLatencyUs);
    EXPECT_GT(merged.p50BatchLatencyUs, 0.0);
    // The merged percentiles come from the concatenated reservoirs.
    EXPECT_EQ(merged.requestLatencySamplesUs.size(), kRows);

    // stop() is idempotent and keeps returning the merged view.
    EXPECT_EQ(server.stop().rowsServed, kRows);
}

TEST(ShardedServer, RoutedShardsShareTheRegistryAndLaneBindings)
{
    hi::ModelIr a_ir = mlpModel(31, 4, 3);
    hi::ModelIr b_ir = mlpModel(32, 4, 3);
    auto registry = std::make_shared<hr::ModelRegistry>();
    registry->load("a", a_ir);
    registry->load("b", b_ir);

    hr::RouteConfig route;
    route.defaultModel = "a";
    route.laneModels = {"a", "b"};

    hr::ShardedServerConfig config = shardedConfig(2);
    config.server.extraLanes = {config.server.queue};

    std::mutex mutex;
    std::map<std::uint64_t, int> verdicts;
    hr::ShardedServer server(
        registry, route, config,
        [&](const hr::Request &request, int verdict) {
            std::lock_guard<std::mutex> lock(mutex);
            verdicts[request.id] = verdict;
        });

    hm::Matrix x0 = featureRows(41, 120, 4);
    hm::Matrix x1 = featureRows(42, 80, 4);
    std::map<std::uint64_t, std::size_t> ticket_row0, ticket_row1;
    for (std::size_t r = 0; r < x0.rows(); ++r)
        ticket_row0[server.submit(r * 7919u, x0.row(r), 0).ticket] = r;
    for (std::size_t r = 0; r < x1.rows(); ++r)
        ticket_row1[server.submit(r * 104729u, x1.row(r), 1).ticket] = r;
    hr::ServerStats stats = server.stop();

    // Each lane's rows ran its bound model on whichever shard owned
    // the flow; merged model slices sum across shards.
    std::vector<int> ref0 = hr::InferenceEngine::fromModel(a_ir, {}).run(x0);
    std::vector<int> ref1 = hr::InferenceEngine::fromModel(b_ir, {}).run(x1);
    ASSERT_EQ(verdicts.size(), x0.rows() + x1.rows());
    for (const auto &[ticket, row] : ticket_row0)
        EXPECT_EQ(verdicts.at(ticket), ref0[row]);
    for (const auto &[ticket, row] : ticket_row1)
        EXPECT_EQ(verdicts.at(ticket), ref1[row]);

    ASSERT_EQ(stats.models.size(), 2u);
    EXPECT_EQ(stats.models[0].name, "a");
    EXPECT_EQ(stats.models[0].rowsServed, x0.rows());
    EXPECT_EQ(stats.models[1].name, "b");
    EXPECT_EQ(stats.models[1].rowsServed, x1.rows());
    ASSERT_EQ(stats.lanes.size(), 2u);
    EXPECT_EQ(stats.lanes[0].rowsServed, x0.rows());
    EXPECT_EQ(stats.lanes[1].rowsServed, x1.rows());
}

TEST(ShardedServer, WireFramesRouteByFiveTupleWithVerdictsServed)
{
    auto model = mlpModel(23, hn::kNumTcFeatures, 4);
    hn::IotPacketConfig packet_config;
    packet_config.numPackets = 200;
    packet_config.seed = 7;

    std::mutex mutex;
    std::size_t delivered = 0;
    hr::ShardedServer server(
        hr::InferenceEngine::fromModel(model, {}), shardedConfig(2),
        [&](const hr::Request &, int) {
            std::lock_guard<std::mutex> lock(mutex);
            ++delivered;
        });

    for (const auto &labeled : hn::generateIotPackets(packet_config)) {
        hr::SubmitResult result =
            server.submitFrame(hn::serialize(labeled.packet));
        ASSERT_TRUE(result.admitted());
        // The frame's ticket shard matches its parsed flow key's ring
        // owner — frames of one flow serialize onto one batcher.
        EXPECT_EQ(hr::ShardedServer::shardOfTicket(result.ticket),
                  server.shardFor(hr::flowKey(labeled.packet)));
    }
    hr::ServerStats stats = server.stop();
    EXPECT_EQ(stats.rowsServed, 200u);
    EXPECT_EQ(stats.malformedFrames, 0u);
    EXPECT_EQ(delivered, 200u);
}

// --------------------------------------------- front-door failure path

TEST(ShardedServer, MalformedFrameGetsAFrontDoorTicketAndFailureCall)
{
    auto model = mlpModel(23, hn::kNumTcFeatures, 3);
    hr::ShardedServerConfig config = shardedConfig(2);

    std::mutex failure_mutex;
    std::vector<std::pair<std::uint64_t, std::size_t>> failures;
    config.server.onFailure = [&](std::uint64_t ticket, std::size_t lane,
                                  const std::string &error) {
        std::lock_guard<std::mutex> lock(failure_mutex);
        EXPECT_NE(error.find("malformed"), std::string::npos);
        failures.emplace_back(ticket, lane);
    };
    hr::ShardedServer server(hr::InferenceEngine::fromModel(model, {}),
                             config);

    hr::SubmitResult first = server.submitFrame({0xba, 0xad}, 1);
    hr::SubmitResult second = server.submitFrame({0x00});
    EXPECT_EQ(first.status, hr::SubmitStatus::kMalformed);
    EXPECT_EQ(second.status, hr::SubmitStatus::kMalformed);

    // Front-door tickets live in their own namespace — shardOfTicket
    // recovers shards() (not any real shard), and the sequence is
    // monotone like every other ticket sequence.
    EXPECT_EQ(hr::ShardedServer::shardOfTicket(first.ticket),
              server.shards());
    EXPECT_EQ(hr::ShardedServer::shardOfTicket(second.ticket),
              server.shards());
    EXPECT_GT(second.ticket, first.ticket);

    ASSERT_EQ(failures.size(), 2u);
    EXPECT_EQ(failures[0], std::make_pair(first.ticket,
                                          std::size_t{1}));
    EXPECT_EQ(failures[1], std::make_pair(second.ticket,
                                          std::size_t{0}));

    hr::ServerStats stats = server.stop();
    EXPECT_EQ(stats.malformedFrames, 2u);
    EXPECT_EQ(stats.failedRows, 0u);  // rejected at parse != admitted.
}

TEST(ShardedServer, MetricsSnapshotTagsShardsAndSumsToMergedStats)
{
    auto model = mlpModel(29, 4, 3);
    constexpr std::size_t kRows = 400;
    hm::Matrix x = featureRows(31, kRows, 4);

    hr::ShardedServer server(hr::InferenceEngine::fromModel(model, {}),
                             shardedConfig(2));
    for (std::size_t r = 0; r < kRows; ++r)
        ASSERT_TRUE(server.submit(r * 0x9e3779b9u, x.row(r)).admitted());
    EXPECT_EQ(server.submitFrame({0xff}).status,
              hr::SubmitStatus::kMalformed);
    hr::ServerStats merged = server.stop();

    namespace ht = homunculus::runtime::telemetry;
    const ht::MetricsSnapshot snap = server.metricsSnapshot();

    // Per-shard slices carry their own label and sum to the merged
    // struct — the same arithmetic ShardedServer::stop used.
    std::uint64_t served = 0;
    for (std::size_t s = 0; s < server.shards(); ++s)
        served += snap.counterValue(
            "server.rows_served", {{"shard", std::to_string(s)}});
    EXPECT_EQ(served, merged.rowsServed);
    EXPECT_EQ(snap.sumCounters("server.rows_served"), merged.rowsServed);
    EXPECT_EQ(snap.sumCounters("queue.accepted"), merged.queue.accepted);

    // The malformed frame was rejected at the front door, so its count
    // lives in the {shard=front} slice, not in any shard's.
    EXPECT_EQ(snap.counterValue("server.malformed_frames",
                                {{"shard", "front"}}),
              1u);
    for (std::size_t s = 0; s < server.shards(); ++s)
        EXPECT_EQ(snap.counterValue("server.malformed_frames",
                                    {{"shard", std::to_string(s)}}),
                  0u);
}
