/**
 * @file
 * Unit tests for the dense matrix kernels.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "math/matrix.hpp"

namespace hm = homunculus::math;

TEST(Matrix, ConstructionAndIndexing)
{
    hm::Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    m(0, 1) = -2.0;
    EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, FromRowsAndRowColAccess)
{
    auto m = hm::Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    EXPECT_EQ(m.row(1), (std::vector<double>{4, 5, 6}));
    EXPECT_EQ(m.col(2), (std::vector<double>{3, 6}));
}

TEST(Matrix, IdentityMatmulIsIdentityOp)
{
    auto m = hm::Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    auto result = m.matmul(hm::Matrix::identity(2));
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_DOUBLE_EQ(result(r, c), m(r, c));
}

TEST(Matrix, MatmulKnownValues)
{
    auto a = hm::Matrix::fromRows({{1, 2}, {3, 4}});
    auto b = hm::Matrix::fromRows({{5, 6}, {7, 8}});
    auto c = a.matmul(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, TransposeInvolution)
{
    auto m = hm::Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    auto tt = m.transposed().transposed();
    EXPECT_EQ(tt.rows(), m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            EXPECT_DOUBLE_EQ(tt(r, c), m(r, c));
}

TEST(Matrix, ElementwiseOps)
{
    auto a = hm::Matrix::fromRows({{1, 2}, {3, 4}});
    auto b = hm::Matrix::fromRows({{10, 20}, {30, 40}});
    auto sum = a + b;
    EXPECT_DOUBLE_EQ(sum(1, 1), 44.0);
    auto diff = b - a;
    EXPECT_DOUBLE_EQ(diff(0, 0), 9.0);
    auto scaled = a * 2.0;
    EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
    auto had = a.hadamard(b);
    EXPECT_DOUBLE_EQ(had(0, 1), 40.0);
}

TEST(Matrix, MapAppliesFunction)
{
    auto m = hm::Matrix::fromRows({{-1, 2}});
    auto relu = m.map([](double v) { return v > 0 ? v : 0.0; });
    EXPECT_DOUBLE_EQ(relu(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(relu(0, 1), 2.0);
}

TEST(Matrix, AddRowVectorBroadcasts)
{
    auto m = hm::Matrix::fromRows({{1, 1}, {2, 2}});
    m.addRowVector({10, 20});
    EXPECT_DOUBLE_EQ(m(0, 1), 21.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 12.0);
}

TEST(Matrix, ReductionsAndArgmax)
{
    auto m = hm::Matrix::fromRows({{1, 5, 3}, {2, 2, 8}});
    EXPECT_DOUBLE_EQ(m.sum(), 21.0);
    EXPECT_EQ(m.colSums(), (std::vector<double>{3, 7, 11}));
    EXPECT_EQ(m.argmaxRow(0), 1u);
    EXPECT_EQ(m.argmaxRow(1), 2u);
    EXPECT_NEAR(m.frobeniusNorm(), std::sqrt(1 + 25 + 9 + 4 + 4 + 64), 1e-12);
}

TEST(Matrix, SelectRowsAndCols)
{
    auto m = hm::Matrix::fromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
    auto rows = m.selectRows({2, 0});
    EXPECT_DOUBLE_EQ(rows(0, 0), 7.0);
    EXPECT_DOUBLE_EQ(rows(1, 2), 3.0);
    auto cols = m.selectCols({1});
    EXPECT_EQ(cols.cols(), 1u);
    EXPECT_DOUBLE_EQ(cols(2, 0), 8.0);
}

TEST(Matrix, VstackConcatenatesRows)
{
    auto a = hm::Matrix::fromRows({{1, 2}});
    auto b = hm::Matrix::fromRows({{3, 4}, {5, 6}});
    auto stacked = a.vstack(b);
    EXPECT_EQ(stacked.rows(), 3u);
    EXPECT_DOUBLE_EQ(stacked(2, 1), 6.0);
}

TEST(VectorOps, DotDistanceAxpy)
{
    std::vector<double> a = {1, 2, 3}, b = {4, 5, 6};
    EXPECT_DOUBLE_EQ(hm::dot(a, b), 32.0);
    EXPECT_DOUBLE_EQ(hm::squaredDistance(a, b), 27.0);
    EXPECT_NEAR(hm::l2Distance(a, b), std::sqrt(27.0), 1e-12);
    hm::axpy(2.0, a, b);
    EXPECT_EQ(b, (std::vector<double>{6, 9, 12}));
}
