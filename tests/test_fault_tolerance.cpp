/**
 * @file
 * Fault-tolerant serving suite: FaultInjector determinism and spec
 * parsing, the supervised batcher (per-batch failure containment,
 * bisect-retry poison isolation, guarded callbacks, the
 * served+failed+dropped == accepted resolution invariant), and the
 * router's circuit breakers (open / half-open / close transitions,
 * model and static-label fallbacks, deadline-truncated chains) — the
 * breaker-under-concurrent-swap test runs under TSAN in CI.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "math/matrix.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/router.hpp"
#include "runtime/server.hpp"

namespace hc = homunculus::common;
namespace hi = homunculus::ir;
namespace hm = homunculus::math;
namespace hr = homunculus::runtime;
namespace hf = homunculus::runtime::faults;

namespace {

/** A small deterministic MLP of the given shape. */
hi::ModelIr
mlpModel(std::uint64_t seed, std::size_t input_dim, std::size_t classes)
{
    hc::Rng rng(seed);
    hi::ModelIr model;
    model.kind = hi::ModelKind::kMlp;
    model.inputDim = input_dim;
    model.numClasses = static_cast<int>(classes);
    std::size_t prev = input_dim;
    for (std::size_t width : {std::size_t{12}, classes}) {
        hi::QuantizedLayer layer;
        layer.inputDim = prev;
        layer.outputDim = width;
        layer.weights.resize(prev * width);
        layer.biases.resize(width);
        for (auto &w : layer.weights)
            w = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        for (auto &b : layer.biases)
            b = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        model.layers.push_back(std::move(layer));
        prev = width;
    }
    model.validate();
    return model;
}

/** Deterministic feature rows in the extractor-ish value range. */
hm::Matrix
featureRows(std::uint64_t seed, std::size_t rows, std::size_t cols)
{
    hc::Rng rng(seed);
    hm::Matrix x(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            x(r, c) = rng.uniform(-2.0, 2.0);
    return x;
}

std::vector<hr::Request>
requestsFrom(const hm::Matrix &x)
{
    std::vector<hr::Request> requests(x.rows());
    auto now = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < x.rows(); ++r) {
        requests[r].id = r + 1;
        requests[r].features = x.row(r);
        requests[r].enqueuedAt = now;
    }
    return requests;
}

/** Thread-safe served/failed collectors for resolution-invariant
 *  checks. */
struct Outcomes
{
    std::mutex mutex;
    std::map<std::uint64_t, int> verdicts;
    std::set<std::uint64_t> failed;

    hr::Server::VerdictFn verdictSink()
    {
        return [this](const hr::Request &request, int verdict) {
            std::lock_guard<std::mutex> lock(mutex);
            verdicts[request.id] = verdict;
        };
    }

    hr::FailureFn failureSink()
    {
        return [this](std::uint64_t ticket, std::size_t,
                      const std::string &) {
            std::lock_guard<std::mutex> lock(mutex);
            failed.insert(ticket);
        };
    }
};

}  // namespace

// --------------------------------------------------- FaultInjector

TEST(FaultInjector, ParseSpecAcceptsSiteRateSeedEntries)
{
    auto sites = hf::FaultInjector::parseSpec(
        "engine.run:0.01, router.hop:1:99 ,queue.flush:0");
    ASSERT_EQ(sites.size(), 3u);
    EXPECT_EQ(sites[0].site, "engine.run");
    EXPECT_DOUBLE_EQ(sites[0].rate, 0.01);
    EXPECT_EQ(sites[0].seed, hf::kDefaultFaultSeed);
    EXPECT_EQ(sites[1].site, "router.hop");
    EXPECT_DOUBLE_EQ(sites[1].rate, 1.0);
    EXPECT_EQ(sites[1].seed, 99u);
    EXPECT_DOUBLE_EQ(sites[2].rate, 0.0);

    EXPECT_THROW(hf::FaultInjector::parseSpec("engine.run"),
                 std::runtime_error);
    EXPECT_THROW(hf::FaultInjector::parseSpec("engine.run:banana"),
                 std::runtime_error);
    EXPECT_THROW(hf::FaultInjector::parseSpec("engine.run:1.5"),
                 std::runtime_error);
    EXPECT_THROW(hf::FaultInjector::parseSpec("engine.run:-0.1"),
                 std::runtime_error);
    EXPECT_THROW(hf::FaultInjector::parseSpec("engine.run:0.5:-3"),
                 std::runtime_error);
    EXPECT_THROW(hf::FaultInjector::parseSpec(":0.5"),
                 std::runtime_error);
    EXPECT_THROW(hf::FaultInjector::parseSpec("a:0.5:1:extra"),
                 std::runtime_error);
}

TEST(FaultInjector, DecisionSequenceIsAPureFunctionOfSeed)
{
    auto sequence = [](std::uint64_t seed, std::size_t n) {
        hf::FaultInjector injector;
        injector.arm("s", 0.3, seed);
        std::vector<bool> fires;
        for (std::size_t i = 0; i < n; ++i)
            fires.push_back(injector.shouldFail("s"));
        return fires;
    };
    auto a = sequence(42, 512);
    EXPECT_EQ(a, sequence(42, 512));  // replayable run-to-run.
    EXPECT_NE(a, sequence(43, 512));  // and actually seed-dependent.

    // ~30% of draws fire — it is a rate, not a countdown.
    std::size_t fired = 0;
    for (bool f : a)
        fired += f;
    EXPECT_GT(fired, 512 * 0.2);
    EXPECT_LT(fired, 512 * 0.4);
}

TEST(FaultInjector, RateEndpointsAndCountersAndDisarm)
{
    hf::FaultInjector injector;
    EXPECT_FALSE(injector.armed());
    EXPECT_NO_THROW(injector.maybe("anything"));  // disarmed = free.

    injector.arm("never", 0.0);
    injector.arm("always", 1.0);
    for (int i = 0; i < 64; ++i) {
        EXPECT_FALSE(injector.shouldFail("never"));
        EXPECT_NO_THROW(injector.maybe("unarmed.site"));
    }
    EXPECT_THROW(injector.maybe("always"), hf::FaultInjectedError);
    try {
        injector.maybe("always");
    } catch (const hf::FaultInjectedError &e) {
        EXPECT_EQ(e.site(), "always");
        EXPECT_NE(std::string(e.what()).find("always"),
                  std::string::npos);
    }
    EXPECT_EQ(injector.checked("never"), 64u);
    EXPECT_EQ(injector.fired("never"), 0u);
    EXPECT_EQ(injector.checked("always"), 2u);
    EXPECT_EQ(injector.fired("always"), 2u);
    EXPECT_EQ(injector.checked("unarmed.site"), 0u);

    EXPECT_THROW(injector.arm("bad", 1.5), std::runtime_error);
    EXPECT_THROW(injector.arm("", 0.5), std::runtime_error);

    injector.disarm("always");
    EXPECT_TRUE(injector.armed());  // "never" is still armed.
    injector.disarm();
    EXPECT_FALSE(injector.armed());
    EXPECT_NO_THROW(injector.maybe("always"));
}

// ------------------------------------------------------ ServerFault

TEST(ServerFault, InjectedEngineFaultsFailBatchesNotTheServer)
{
    hi::ModelIr ir = mlpModel(7, 4, 3);
    hf::FaultInjector injector;
    injector.arm(hf::kSiteEngineRun, 0.3, 11);

    hr::ServerConfig config;
    config.queue.maxBatch = 16;
    config.queue.maxDelayUs = 1'000'000;  // size-only flushes.
    config.injector = &injector;
    Outcomes outcomes;
    config.onFailure = outcomes.failureSink();
    hr::Server server(hr::InferenceEngine::fromModel(ir, {}), config,
                      outcomes.verdictSink());

    hm::Matrix x = featureRows(5, 160, 4);
    std::vector<std::uint64_t> tickets;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        hr::SubmitResult result = server.submit(x.row(r));
        ASSERT_TRUE(result.admitted());
        tickets.push_back(result.ticket);
    }
    hr::ServerStats stats = server.stop();

    // The injector fired (rate 0.3 over 10+ batches) yet the server
    // survived to serve the rest, and every admitted request resolved
    // exactly once.
    EXPECT_GT(stats.failedBatches, 0u);
    EXPECT_GT(stats.failedRows, 0u);
    EXPECT_GT(stats.rowsServed, 0u);
    EXPECT_EQ(stats.rowsServed + stats.failedRows,
              static_cast<std::size_t>(stats.queue.accepted));
    EXPECT_EQ(outcomes.verdicts.size(), stats.rowsServed);
    EXPECT_EQ(outcomes.failed.size(), stats.failedRows);
    for (std::uint64_t ticket : tickets) {
        bool served = outcomes.verdicts.count(ticket) > 0;
        bool failed = outcomes.failed.count(ticket) > 0;
        EXPECT_TRUE(served != failed) << "ticket " << ticket;
    }

    // Non-failed rows are bit-identical to the fault-free plan.
    hr::InferenceEngine reference = hr::InferenceEngine::fromModel(ir, {});
    std::vector<int> expected = reference.run(x);
    for (std::size_t r = 0; r < x.rows(); ++r)
        if (auto it = outcomes.verdicts.find(tickets[r]);
            it != outcomes.verdicts.end())
            EXPECT_EQ(it->second, expected[r]);
}

TEST(ServerFault, SameSeedFailsTheSameRequests)
{
    hi::ModelIr ir = mlpModel(7, 4, 3);
    hm::Matrix x = featureRows(5, 160, 4);

    auto failedTickets = [&] {
        hf::FaultInjector injector;
        injector.arm(hf::kSiteEngineRun, 0.25, 77);
        hr::ServerConfig config;
        config.queue.maxBatch = 16;
        config.queue.maxDelayUs = 1'000'000;
        config.injector = &injector;
        Outcomes outcomes;
        config.onFailure = outcomes.failureSink();
        hr::Server server(hr::InferenceEngine::fromModel(ir, {}), config);
        for (std::size_t r = 0; r < x.rows(); ++r)
            server.submit(x.row(r));
        server.stop();
        return outcomes.failed;
    };

    std::set<std::uint64_t> first = failedTickets();
    EXPECT_FALSE(first.empty());
    // Size-only flushes make batch composition deterministic, and the
    // injector's draws are a pure function of (seed, check ordinal) —
    // so the very same requests fail on a replay.
    EXPECT_EQ(first, failedTickets());
}

TEST(ServerFault, BisectRetryIsolatesThePoisonRow)
{
    hi::ModelIr ir = mlpModel(7, 4, 3);
    hr::ServerConfig config;
    config.queue.maxBatch = 64;
    config.queue.maxDelayUs = 1'000'000;
    config.retryDepth = 6;  // log2(64): bisect down to singletons.
    Outcomes outcomes;
    config.onFailure = outcomes.failureSink();
    hr::Server server(hr::InferenceEngine::fromModel(ir, {}), config,
                      outcomes.verdictSink());

    hm::Matrix x = featureRows(5, 64, 4);
    x(37, 2) = std::numeric_limits<double>::quiet_NaN();  // poison.
    std::uint64_t poison_ticket = 0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        hr::SubmitResult result = server.submit(x.row(r));
        if (r == 37)
            poison_ticket = result.ticket;
    }
    hr::ServerStats stats = server.stop();

    // Exactly the poison row failed; its 63 batchmates were served.
    EXPECT_EQ(stats.failedRows, 1u);
    EXPECT_EQ(stats.rowsServed, 63u);
    EXPECT_GT(stats.retriedBatches, 0u);
    ASSERT_EQ(outcomes.failed.size(), 1u);
    EXPECT_EQ(*outcomes.failed.begin(), poison_ticket);
    EXPECT_EQ(outcomes.verdicts.size(), 63u);
    EXPECT_EQ(stats.lanes.at(0).rowsFailed, 1u);
}

TEST(ServerFault, WithoutRetryDepthThePoisonRowSinksItsWholeBatch)
{
    hi::ModelIr ir = mlpModel(7, 4, 3);
    hr::ServerConfig config;
    config.queue.maxBatch = 64;
    config.queue.maxDelayUs = 1'000'000;
    Outcomes outcomes;
    config.onFailure = outcomes.failureSink();
    hr::Server server(hr::InferenceEngine::fromModel(ir, {}), config,
                      outcomes.verdictSink());

    hm::Matrix x = featureRows(5, 64, 4);
    x(37, 2) = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t r = 0; r < x.rows(); ++r)
        server.submit(x.row(r));
    hr::ServerStats stats = server.stop();

    EXPECT_EQ(stats.failedRows, 64u);
    EXPECT_EQ(stats.retriedBatches, 0u);
    EXPECT_EQ(outcomes.failed.size(), 64u);
    // Every failure carries the thrown error text.
    EXPECT_EQ(stats.failedBatches, 1u);
}

TEST(ServerFault, ThrowingVerdictCallbackLosesNothingElse)
{
    hi::ModelIr ir = mlpModel(7, 4, 3);
    hr::ServerConfig config;
    config.queue.maxBatch = 16;
    config.queue.maxDelayUs = 1'000'000;

    std::mutex mutex;
    std::map<std::uint64_t, int> verdicts;
    std::atomic<bool> thrown{false};
    // The regression: a throwing verdict sink used to unwind the
    // batcher thread, silently killing every later verdict.
    hr::Server server(
        hr::InferenceEngine::fromModel(ir, {}), config,
        [&](const hr::Request &request, int verdict) {
            if (!thrown.exchange(true))
                throw std::runtime_error("verdict sink exploded");
            std::lock_guard<std::mutex> lock(mutex);
            verdicts[request.id] = verdict;
        });

    hm::Matrix x = featureRows(5, 160, 4);
    for (std::size_t r = 0; r < x.rows(); ++r)
        ASSERT_TRUE(server.submit(x.row(r)).admitted());
    hr::ServerStats stats = server.stop();

    EXPECT_EQ(stats.rowsServed, x.rows());  // the batch still served.
    EXPECT_EQ(stats.failedRows, 0u);
    EXPECT_EQ(stats.callbackErrors, 1u);
    EXPECT_EQ(verdicts.size(), x.rows() - 1);  // only the throw lost.
}

// ---------------------------------------------------------- Breaker

namespace {

/** Registry with models "a" and "b" plus a Router over them. */
struct BreakerRig
{
    hi::ModelIr a_ir = mlpModel(31, 4, 3);
    hi::ModelIr b_ir = mlpModel(32, 4, 3);
    std::shared_ptr<hr::ModelRegistry> registry =
        std::make_shared<hr::ModelRegistry>();

    explicit BreakerRig(hr::RouteConfig route)
    {
        registry->load("a", a_ir);
        registry->load("b", b_ir);
        router.emplace(registry, std::move(route));
    }

    std::optional<hr::Router> router;
    std::vector<int> labels;
    std::vector<hr::RouteTrace> traces;
    std::vector<hr::RouteStepStats> steps;
    hr::Router::Scratch scratch;

    hr::RouteBatchOutcome run(const std::vector<hr::Request> &requests,
                              hf::FaultInjector *injector)
    {
        return router->runBatch(router->snapshot(), 0, requests.data(),
                                requests.size(), labels, &traces, steps,
                                scratch, injector);
    }
};

}  // namespace

TEST(Breaker, ValidatesFallbackRules)
{
    auto make = [](hr::RouteConfig route) {
        route.defaultModel = "a";
        BreakerRig rig(std::move(route));
    };
    hr::RouteConfig both;
    both.fallbacks = {{"a", "b", 2}};
    EXPECT_THROW(make(both), std::runtime_error);
    hr::RouteConfig neither;
    neither.fallbacks = {{"a", "", -1}};
    EXPECT_THROW(make(neither), std::runtime_error);
    hr::RouteConfig duplicate;
    duplicate.fallbacks = {{"a", "b", -1}, {"a", "", 1}};
    EXPECT_THROW(make(duplicate), std::runtime_error);
    hr::RouteConfig self_loop;
    self_loop.fallbacks = {{"a", "a", -1}};
    EXPECT_THROW(make(self_loop), std::runtime_error);
    hr::RouteConfig bad_label;
    bad_label.fallbacks = {{"a", "", 3}};  // 3-class model: labels 0-2.
    EXPECT_THROW(make(bad_label), std::runtime_error);
    hr::RouteConfig good;
    good.fallbacks = {{"a", "b", -1}};
    EXPECT_NO_THROW(make(good));
}

TEST(Breaker, OpensAfterThresholdAndRoutesToFallbackModel)
{
    hr::RouteConfig route;
    route.defaultModel = "a";
    route.breakerThreshold = 2;
    route.breakerCooldownUs = 3'600'000'000ull;  // stays open.
    route.fallbacks = {{"a", "b", -1}};
    BreakerRig rig(route);

    hf::FaultInjector injector;
    injector.arm("router.hop.a", 1.0, 1);  // a always fails.

    hm::Matrix x = featureRows(41, 24, 4);
    std::vector<hr::Request> requests = requestsFrom(x);
    // Two failures open the breaker; each one surfaces to the caller
    // (the Server supervisor owns the batch outcome).
    EXPECT_THROW(rig.run(requests, &injector), hf::FaultInjectedError);
    EXPECT_THROW(rig.run(requests, &injector), hf::FaultInjectedError);
    hr::BreakerSnapshot snap = rig.router->breaker(0);
    EXPECT_EQ(snap.state, hr::BreakerState::kOpen);
    EXPECT_EQ(snap.opens, 1u);
    EXPECT_EQ(snap.failures, 2u);

    // While open, the whole group re-routes to b — verdicts are b's,
    // bit-identical to running b directly.
    hr::RouteBatchOutcome outcome = rig.run(requests, &injector);
    EXPECT_EQ(outcome.fallbackRows, x.rows());
    std::vector<int> expected =
        hr::InferenceEngine::fromModel(rig.b_ir, {}).run(x);
    ASSERT_EQ(rig.labels.size(), x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        EXPECT_EQ(rig.labels[r], expected[r]);
        ASSERT_EQ(rig.traces[r].hops.size(), 1u);
        EXPECT_EQ(rig.traces[r].hops[0].model, "b");
    }
    EXPECT_EQ(rig.router->breaker(0).fallbackRows, x.rows());
    EXPECT_EQ(hr::breakerStateName(hr::BreakerState::kOpen),
              std::string("open"));
}

TEST(Breaker, StaticLabelFallbackResolvesRowsImmediately)
{
    hr::RouteConfig route;
    route.defaultModel = "a";
    route.breakerThreshold = 1;
    route.breakerCooldownUs = 3'600'000'000ull;
    route.fallbacks = {{"a", "", 2}};
    BreakerRig rig(route);

    hf::FaultInjector injector;
    injector.arm("router.hop.a", 1.0, 1);
    hm::Matrix x = featureRows(42, 8, 4);
    std::vector<hr::Request> requests = requestsFrom(x);
    EXPECT_THROW(rig.run(requests, &injector), hf::FaultInjectedError);

    hr::RouteBatchOutcome outcome = rig.run(requests, &injector);
    EXPECT_EQ(outcome.fallbackRows, x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        EXPECT_EQ(rig.labels[r], 2);  // the static verdict.
        ASSERT_EQ(rig.traces[r].hops.size(), 1u);
        EXPECT_EQ(rig.traces[r].hops[0].model, "a");
        EXPECT_EQ(rig.traces[r].hops[0].label, 2);
    }
}

TEST(Breaker, OpenWithoutFallbackFailsTheBatch)
{
    hr::RouteConfig route;
    route.defaultModel = "a";
    route.breakerThreshold = 1;
    route.breakerCooldownUs = 3'600'000'000ull;
    BreakerRig rig(route);

    hf::FaultInjector injector;
    injector.arm("router.hop.a", 1.0, 1);
    std::vector<hr::Request> requests =
        requestsFrom(featureRows(43, 4, 4));
    EXPECT_THROW(rig.run(requests, &injector), hf::FaultInjectedError);
    // Open + no fallback: the router refuses the batch outright (the
    // Server supervisor turns this into per-request failures).
    EXPECT_THROW(rig.run(requests, &injector), std::runtime_error);
}

TEST(Breaker, HalfOpenProbeClosesOnSuccessReopensOnFailure)
{
    hr::RouteConfig route;
    route.defaultModel = "a";
    route.breakerThreshold = 1;
    route.breakerCooldownUs = 1'000;  // 1 ms.
    route.fallbacks = {{"a", "b", -1}};
    BreakerRig rig(route);

    hf::FaultInjector injector;
    injector.arm("router.hop.a", 1.0, 1);
    hm::Matrix x = featureRows(44, 8, 4);
    std::vector<hr::Request> requests = requestsFrom(x);
    EXPECT_THROW(rig.run(requests, &injector), hf::FaultInjectedError);
    EXPECT_EQ(rig.router->breaker(0).state, hr::BreakerState::kOpen);

    // Cooldown elapses while a is still broken: the probe batch fails
    // and the breaker reopens for another cooldown.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_THROW(rig.run(requests, &injector), hf::FaultInjectedError);
    hr::BreakerSnapshot reopened = rig.router->breaker(0);
    EXPECT_EQ(reopened.state, hr::BreakerState::kOpen);
    EXPECT_EQ(reopened.opens, 2u);
    EXPECT_EQ(reopened.probes, 1u);

    // Cooldown elapses after a recovers: the probe succeeds and the
    // breaker closes — a owns its traffic again.
    injector.disarm("router.hop.a");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    hr::RouteBatchOutcome outcome = rig.run(requests, &injector);
    EXPECT_EQ(outcome.fallbackRows, 0u);
    hr::BreakerSnapshot closed = rig.router->breaker(0);
    EXPECT_EQ(closed.state, hr::BreakerState::kClosed);
    EXPECT_EQ(closed.probes, 2u);
    std::vector<int> expected =
        hr::InferenceEngine::fromModel(rig.a_ir, {}).run(x);
    for (std::size_t r = 0; r < x.rows(); ++r)
        EXPECT_EQ(rig.labels[r], expected[r]);
}

TEST(Breaker, DeadlineTruncatesChainHopsButNeverTheEntryHop)
{
    hi::ModelIr front_ir = mlpModel(51, 4, 3);
    hi::ModelIr deep_ir = mlpModel(52, 4, 3);
    auto registry = std::make_shared<hr::ModelRegistry>();
    registry->load("front", front_ir);
    registry->load("deep", deep_ir);

    hm::Matrix x = featureRows(45, 64, 4);
    std::vector<int> front_labels =
        hr::InferenceEngine::fromModel(front_ir, {}).run(x);
    int hot = front_labels.front();
    std::size_t hot_rows = 0;
    for (int label : front_labels)
        hot_rows += label == hot;

    hr::RouteConfig route;
    route.defaultModel = "front";
    route.chain = {{"front", hot, "deep"}};
    route.deadlineUs = 1'000;  // 1 ms chain budget from admission.
    hr::Router router(registry, route);

    // Rows admitted 10 ms ago are over budget before the second hop:
    // they keep the entry hop's label and are counted, not dropped.
    std::vector<hr::Request> requests = requestsFrom(x);
    for (hr::Request &request : requests)
        request.enqueuedAt -= std::chrono::milliseconds(10);
    std::vector<int> labels;
    std::vector<hr::RouteTrace> traces;
    std::vector<hr::RouteStepStats> steps;
    hr::Router::Scratch scratch;
    hr::RouteBatchOutcome outcome =
        router.runBatch(router.snapshot(), 0, requests.data(),
                        requests.size(), labels, &traces, steps, scratch);

    EXPECT_EQ(outcome.deadlineTruncated, hot_rows);
    ASSERT_GT(hot_rows, 0u);
    for (std::size_t r = 0; r < x.rows(); ++r) {
        EXPECT_EQ(labels[r], front_labels[r]);  // entry hop always ran.
        EXPECT_EQ(traces[r].hops.size(), 1u);   // escalation skipped.
    }

    // Fresh admissions fit the budget: the chain runs normally.
    std::vector<hr::Request> fresh = requestsFrom(x);
    hr::RouteBatchOutcome unbounded =
        router.runBatch(router.snapshot(), 0, fresh.data(), fresh.size(),
                        labels, &traces, steps, scratch);
    EXPECT_EQ(unbounded.deadlineTruncated, 0u);
    std::size_t chained = 0;
    for (std::size_t r = 0; r < x.rows(); ++r)
        chained += traces[r].hops.size() == 2;
    EXPECT_EQ(chained, hot_rows);
}

TEST(Breaker, TransitionsUnderConcurrentSwapKeepTheResolutionInvariant)
{
    hi::ModelIr a_v1 = mlpModel(61, 4, 3);
    hi::ModelIr a_v2 = mlpModel(62, 4, 3);
    hi::ModelIr b_ir = mlpModel(63, 4, 3);
    auto registry = std::make_shared<hr::ModelRegistry>();
    registry->load("a", a_v1);
    registry->load("a", a_v2);
    registry->load("b", b_ir);

    hr::RouteConfig route;
    route.defaultModel = "a";
    route.breakerThreshold = 2;
    route.breakerCooldownUs = 500;
    route.fallbacks = {{"a", "b", -1}};

    hf::FaultInjector injector;
    injector.arm("router.hop.a", 0.4, 9);

    hr::ServerConfig config;
    config.queue.maxBatch = 32;
    config.queue.maxDelayUs = 200;
    config.queue.maxDepth = 0;  // unbounded: nothing sheds.
    config.injector = &injector;
    Outcomes outcomes;
    config.onFailure = outcomes.failureSink();
    hr::Server server(registry, route, config, outcomes.verdictSink());

    // A writer flips a's active version while batches fail, open the
    // breaker, fall back to b, half-open, and recover — the TSAN run
    // checks the breaker bookkeeping races with swap/snapshot on
    // nothing.
    std::atomic<bool> done{false};
    std::thread swapper([&] {
        std::uint64_t version = 2;
        while (!done.load()) {
            registry->swap("a", version);
            version = version == 2 ? 1 : 2;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });

    hm::Matrix x = featureRows(46, 2000, 4);
    std::size_t admitted = 0;
    for (std::size_t r = 0; r < x.rows(); ++r)
        admitted += server.submit(x.row(r)).admitted();
    hr::ServerStats stats = server.stop();
    done.store(true);
    swapper.join();

    EXPECT_EQ(admitted, x.rows());
    EXPECT_EQ(stats.rowsServed + stats.failedRows, admitted);
    EXPECT_EQ(outcomes.verdicts.size() + outcomes.failed.size(),
              admitted);
    // The fault rate (0.4 per a-hop) guarantees both outcomes and at
    // least one open/fallback cycle on this much traffic.
    EXPECT_GT(stats.failedRows, 0u);
    EXPECT_GT(stats.rowsServed, 0u);
    ASSERT_EQ(stats.models.size(), 2u);
    EXPECT_EQ(stats.models[0].name, "a");
    EXPECT_GT(stats.models[0].breakerOpens, 0u);
    EXPECT_GT(stats.fallbackRows, 0u);
    EXPECT_EQ(stats.models[1].name, "b");
    EXPECT_GT(stats.models[1].rowsServed, 0u);
}

// --------------------------------------- compile-pipeline fault sites

#include "core/compiler.hpp"
#include "data/anomaly_generator.hpp"
#include "runtime/quant_cache.hpp"
#include "runtime/telemetry.hpp"

namespace {

namespace hcore = homunculus::core;
namespace hd = homunculus::data;
namespace ht = homunculus::runtime::telemetry;

/** A tiny anomaly-detection compile spec (fast search). */
hcore::ModelSpec
tinyAdSpec()
{
    hcore::ModelSpec spec;
    spec.name = "ad";
    spec.optimizationMetric = hcore::Metric::kF1;
    spec.algorithms = {hcore::Algorithm::kDnn};
    spec.dataLoader = [] {
        hd::AnomalyConfig config;
        config.numSamples = 600;
        return hd::generateAnomalySplit(config);
    };
    return spec;
}

hcore::CompileOptions
tinyCompileOptions()
{
    hcore::CompileOptions options;
    options.bo.numInitSamples = 2;
    options.bo.numIterations = 2;
    return options;
}

/** Disarms the global injector on scope exit — compile-site tests arm
 *  the process-global instance, and leaking an armed site would fail
 *  unrelated tests in the same process. */
struct GlobalDisarm
{
    ~GlobalDisarm() { hf::FaultInjector::global().disarm(); }
};

}  // namespace

TEST(CompileFault, InjectedSearchFaultSurfacesAsAnInternalStatus)
{
    GlobalDisarm guard;
    auto platform = hcore::Platforms::taurus();
    platform.constrain({1.0, 500.0}, {16, 16});
    platform.schedule(tinyAdSpec());

    hcore::Compiler compiler(tinyCompileOptions());
    hcore::CompileSession session = compiler.openSession(platform);
    ASSERT_TRUE(session.loadData().isOk());
    ASSERT_TRUE(session.selectFamilies().isOk());

    const std::uint64_t fired_before =
        ht::MetricRegistry::global()
            .snapshot()
            .counterValue("faults.fired",
                          {{"site", hf::kSiteCompileSearch}});
    hf::FaultInjector::global().arm(hf::kSiteCompileSearch, 1.0);
    hcore::Status status = session.searchFamilies();
    hf::FaultInjector::global().disarm();

    // The session API's contract: stage errors are Status, never a
    // throw escaping the call.
    EXPECT_EQ(status.code(), hcore::StatusCode::kInternal);
    EXPECT_NE(status.message().find(hf::kSiteCompileSearch),
              std::string::npos);
    // And the fire was mirrored into the global telemetry registry.
    EXPECT_EQ(ht::MetricRegistry::global().snapshot().counterValue(
                  "faults.fired", {{"site", hf::kSiteCompileSearch}}),
              fired_before + 1);
}

TEST(CompileFault, DisarmedCompileSearchSiteCompilesClean)
{
    GlobalDisarm guard;
    auto platform = hcore::Platforms::taurus();
    platform.constrain({1.0, 500.0}, {16, 16});
    platform.schedule(tinyAdSpec());

    // Rate 0.0 armed: the site is consulted but never fires — the
    // pipeline must be byte-for-byte a normal compile.
    hf::FaultInjector::global().arm(hf::kSiteCompileSearch, 0.0);
    hcore::Compiler compiler(tinyCompileOptions());
    auto compiled = compiler.compile(platform);
    ASSERT_TRUE(compiled.isOk());
    EXPECT_NE(compiled->find("ad"), nullptr);
    EXPECT_GT(hf::FaultInjector::global().checked(
                  hf::kSiteCompileSearch),
              0u);
}

TEST(CompileFault, QuantizeCacheFaultFoldsIntoTheSearchStatus)
{
    GlobalDisarm guard;
    auto platform = hcore::Platforms::taurus();
    platform.constrain({1.0, 500.0}, {16, 16});
    platform.schedule(tinyAdSpec());

    // cache.quantize throws on the first cache *miss* inside the
    // family-search workers; the worker catches it and the stage folds
    // it into a non-OK Status naming the search failure.
    hf::FaultInjector::global().arm(hf::kSiteCacheQuantize, 1.0);
    hcore::Compiler compiler(tinyCompileOptions());
    hcore::CompileSession session = compiler.openSession(platform);
    ASSERT_TRUE(session.loadData().isOk());
    ASSERT_TRUE(session.selectFamilies().isOk());
    hcore::Status status = session.searchFamilies();
    hf::FaultInjector::global().disarm();

    EXPECT_FALSE(status.isOk());
    EXPECT_NE(status.toString().find("fault-injected"),
              std::string::npos);
}

TEST(CompileFault, QuantCacheHitsNeverConsultTheInjector)
{
    GlobalDisarm guard;
    hm::Matrix x(8, 3);
    for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            x(r, c) = static_cast<double>(r) + 0.1 * c;
    hr::QuantCache cache(x);
    homunculus::common::FixedPointFormat format(4, 4);

    // Warm the entry while disarmed...
    const auto &first = cache.get(format);
    // ...then arm at rate 1.0: a hit is a memoized read and cannot
    // fail, so the armed site must not fire.
    hf::FaultInjector::global().arm(hf::kSiteCacheQuantize, 1.0);
    const auto &again = cache.get(format);
    EXPECT_EQ(&first, &again);
    // A *miss* under the armed site does fire.
    homunculus::common::FixedPointFormat other(6, 2);
    EXPECT_THROW(cache.get(other), hf::FaultInjectedError);
}
