/**
 * @file
 * homc's command-line surface, split out of the driver so it is
 * testable: option struct, strict argument parsing (unknown flags are
 * an error with a nearest-match hint, non-numeric values for numeric
 * flags are an error instead of an uncaught std::stoull abort), and
 * the serving-lane policy builder.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "runtime/request_queue.hpp"
#include "runtime/router.hpp"

namespace homunculus::tools {

/**
 * homc's default determinism seed. Kept numerically identical to
 * bench::kBenchSeed (homc.cpp static_asserts the two match) without
 * pulling the bench substrate into this library.
 */
constexpr std::uint64_t kDefaultSeed = 2206'05592;

/** Everything homc's flags can say. */
struct CliOptions
{
    std::string app;
    std::string trainCsv, testCsv;
    std::string platform = "taurus";
    std::string algorithms;
    std::string outPath;
    std::string savePath;
    std::string paretoMetric;
    std::string passes;
    std::string dumpPass;   ///< dump filter; empty = every pass.
    std::string replay;     ///< iot:N or a hex-frame trace file.
    std::size_t replayBatch = 1024;
    bool replayRaw = false;
    std::string serve;      ///< async-serving trace (iot:N or file).
    double serveRate = 0.0;             ///< arrival rows/s (0 = max).
    std::size_t serveMaxBatch = 1024;   ///< queue size trigger.
    std::uint64_t serveMaxDelayUs = 1000;  ///< queue deadline trigger.
    std::size_t serveDepth = 8192;      ///< admission bound (0 = inf).
    std::size_t serveLanes = 1;         ///< priority lanes (lane 0 first).
    runtime::BackpressureMode serveBackpressure =
        runtime::BackpressureMode::kShed;
    std::uint64_t serveBlockTimeoutUs = 10'000;  ///< block mode bound.
    /** Per-lane overrides, comma-separated, one entry per lane; empty
     *  lists fall back to the single-lane --serve-max-* values. */
    std::vector<std::uint64_t> serveLaneDelaysUs;
    std::vector<std::size_t> serveLaneDepths;
    std::vector<std::size_t> serveLaneBatches;
    /** Every Nth --serve frame goes to lane 0 (the probe lane); the
     *  rest round-robin over the remaining lanes. */
    std::size_t serveProbeEvery = 16;
    /**
     * Registry serving: (name, artifact path) pairs from repeatable
     * --serve-model NAME=FILE flags, in the order given. Non-empty
     * switches --serve to the multi-model plane (ModelRegistry +
     * Router) and skips the compile; the first name is the default
     * model. Loading one name repeatedly stacks versions (v1, v2, ...).
     */
    std::vector<std::pair<std::string, std::string>> serveModels;
    /** Per-lane entry-model names (comma list, one per lane; an empty
     *  entry falls back to the default model). */
    std::vector<std::string> serveLaneModels;
    /** Chain rules from --serve-chain FROM:LABEL=TO entries. */
    std::vector<runtime::ChainRule> serveChain;
    /** Hot-swap test hook (--serve-swap-after N:NAME=V): after frame
     *  N is submitted, swap NAME's active plan to version V. 0 = off. */
    std::size_t serveSwapAfter = 0;
    std::string serveSwapModel;
    std::uint64_t serveSwapVersion = 0;
    /** Fault-injection specs from repeatable --serve-fault
     *  SITE:RATE[:SEED] flags; validated at parse time, armed on the
     *  global injector by the driver. */
    std::vector<std::string> serveFaults;
    /** Bisect-retry depth for failed serving batches (0 = a failed
     *  batch fails whole). */
    std::size_t serveRetryDepth = 0;
    /** Open-breaker fallbacks from --serve-fallback MODEL=NAME|LABEL
     *  entries (an all-digits right side is a static verdict label). */
    std::vector<runtime::FallbackRule> serveFallbacks;
    /** Consecutive failures that open a model's circuit breaker; 0
     *  defers to the driver default (3 when fallbacks are given). */
    std::size_t serveBreakerThreshold = 0;
    /** Per-request chain deadline in us (0 = unbounded). */
    std::uint64_t serveDeadlineUs = 0;
    /** Serving shards (--serve-shards): 1 = one Server; > 1 runs a
     *  ShardedServer with flow-affine consistent-hash routing and
     *  per-shard + merged stats. */
    std::size_t serveShards = 1;
    /** Lane-fairness aging budget in us (--serve-aging-us): 0 keeps
     *  strict priority; > 0 lets a lane overdue past its own deadline
     *  by this much preempt higher-priority ready lanes. */
    std::uint64_t serveAgingUs = 0;
    /** End-of-run telemetry dump (--serve-stats-json PATH): the merged
     *  metric snapshot + request spans as schema-pinned JSON
     *  (telemetry::kServeStatsSchema). "-" writes to stdout. */
    std::string serveStatsJson;
    /** Periodic stats line (--serve-stats-every N): every N submitted
     *  frames, one counters line on stderr (0 = off). */
    std::size_t serveStatsEvery = 0;
    bool dumpIr = false;
    /** Kernel dispatch pin from --kernel (auto|scalar|avx2|neon; empty
     *  = leave the dispatch to its probe / HOMUNCULUS_KERNELS). */
    std::string kernel;
    bool listKernels = false;
    std::size_t init = 5;
    std::size_t iters = 15;
    std::size_t jobs = 1;
    std::size_t inferJobs = 1;
    std::size_t grid = 16;
    std::size_t tables = 12;
    double throughputGpps = 1.0;
    double latencyNs = 500.0;
    bool throughputSet = false;
    bool latencySet = false;
    bool listPlatforms = false;
    bool progress = false;
    bool listPasses = false;
    std::uint64_t seed = kDefaultSeed;
};

/** How parseArgs() ended. */
enum class ParseResult
{
    kOk,     ///< options populated; run the compiler.
    kHelp,   ///< --help/-h: print usage, exit 0.
    kError,  ///< bad flag/value; message already on @p err, exit 2.
};

/**
 * Parse argv into @p options. Strict: every flag must be known (a
 * misspelled flag errors with a did-you-mean hint instead of being
 * silently ignored) and every numeric value must parse completely
 * ("--jobs banana" errors instead of aborting). Diagnostics go to
 * @p err.
 */
ParseResult parseArgs(int argc, const char *const *argv,
                      CliOptions &options, std::ostream &err);

/**
 * The --serve lane policies: lane i takes its maxBatch / maxDelayUs /
 * maxDepth from the per-lane list when given (parseArgs guarantees
 * list length == serveLanes), else from the single-lane defaults.
 */
std::vector<runtime::QueuePolicy> lanePolicies(const CliOptions &options);

/** Lane for the i-th --serve frame: every probe-every-th frame is a
 *  probe (lane 0), the rest round-robin over lanes 1..N-1. */
std::size_t laneForFrame(std::size_t index, const CliOptions &options);

/** The value-taking flags parseArgs accepts (for tests: every entry
 *  must be consumed by a take* handler, or parsing reports drift). */
std::vector<std::string> knownValueFlags();

/** The flag reference printed on --help and usage errors. */
void printUsage(std::ostream &out);

}  // namespace homunculus::tools
