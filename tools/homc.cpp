/**
 * @file
 * homc — the Homunculus command-line compiler driver.
 *
 * Compiles one of the built-in applications (or a CSV dataset) for a
 * chosen data-plane target and writes the generated platform program.
 * Targets resolve through the BackendRegistry, so any registered
 * platform — built-in or plugin — is addressable via --platform.
 *
 * Flag parsing (strict: unknown flags error with a did-you-mean hint,
 * numeric values are validated) lives in homc_cli.{hpp,cpp}; run
 * `homc --help` for the full reference. Highlights:
 *
 *   homc --app ad|tc|bd            built-in synthetic application
 *   homc --train t.csv --test e.csv   or: bring your own CSV data
 *        [--platform NAME]         target (default taurus)
 *        [--replay TRACE]          replay a packet trace through the
 *                                  winner on the streaming runtime
 *        [--serve TRACE]           async serving mode through the
 *                                  multi-lane admission queue:
 *                                  --serve-lanes N priority lanes with
 *                                  per-lane --serve-lane-delays-us /
 *                                  -depths / -batches policies,
 *                                  --serve-backpressure
 *                                  shed|block|early-drop, and
 *                                  --serve-probe-every routing every
 *                                  Nth frame to the probe lane
 *        [--serve-model NAME=FILE] multi-model serving from saved
 *                                  artifacts (ModelRegistry + Router,
 *                                  no compile): --serve-lane-models
 *                                  lane bindings, --serve-chain
 *                                  label-driven chaining, and the
 *                                  --serve-swap-after hot-swap hook
 *   homc --list-platforms          enumerate the backend registry
 *   homc --list-passes             enumerate the IR pass registry
 */
#include <cctype>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "backends/registry.hpp"
#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "data/loaders.hpp"
#include "homc_cli.hpp"
#include "ir/passes.hpp"
#include "kernels/kernel_dispatch.hpp"
#include "ir/serialize.hpp"
#include "runtime/server.hpp"
#include "runtime/sharded_server.hpp"
#include "runtime/stream_harness.hpp"
#include "runtime/telemetry.hpp"

namespace {

using namespace homunculus;
using tools::CliOptions;

// homc_cli duplicates the seed literal to avoid linking the bench
// substrate; pin the two here, where both headers are visible.
static_assert(tools::kDefaultSeed == bench::kBenchSeed,
              "homc default seed drifted from bench::kBenchSeed");

core::ModelSpec
buildSpec(const CliOptions &options)
{
    core::ModelSpec spec;
    if (!options.app.empty()) {
        if (options.app == "ad") {
            spec = bench::appSpec(bench::App::kAd);
        } else if (options.app == "tc") {
            spec = bench::appSpec(bench::App::kTc);
        } else if (options.app == "bd") {
            spec = bench::appSpec(bench::App::kBd);
        } else {
            throw std::runtime_error("unknown --app '" + options.app + "'");
        }
        spec.algorithms.clear();  // CLI pool decides below.
    } else {
        spec.name = "csv_model";
        spec.optimizationMetric = core::Metric::kF1;
        spec.dataLoader = data::csvLoader(options.trainCsv, options.testCsv,
                                          /*has_header=*/true);
    }

    if (!options.algorithms.empty()) {
        for (const auto &name :
             common::split(options.algorithms, ',')) {
            std::string trimmed = common::trim(name);
            if (trimmed == "dnn")
                spec.algorithms.push_back(core::Algorithm::kDnn);
            else if (trimmed == "svm")
                spec.algorithms.push_back(core::Algorithm::kSvm);
            else if (trimmed == "kmeans")
                spec.algorithms.push_back(core::Algorithm::kKMeans);
            else if (trimmed == "decision_tree")
                spec.algorithms.push_back(core::Algorithm::kDecisionTree);
            else
                throw std::runtime_error("unknown algorithm '" + trimmed +
                                         "'");
        }
    }
    return spec;
}

core::Result<core::PlatformHandle>
buildPlatform(const CliOptions &options)
{
    core::Result<core::PlatformHandle> handle =
        core::Platforms::byName(options.platform);
    if (!handle.isOk())
        return handle;

    // --grid/--tables flow through the ResourceBudget alone; each
    // backend applies the fields that describe its fabric and ignores
    // the rest.
    core::ResourceBudget budget;
    budget.gridRows = options.grid;
    budget.gridCols = options.grid;
    budget.matTables = options.tables;

    // Every backend ships its own default envelope (the FPGA NIC path,
    // for instance, tolerates far more latency than a switch ASIC); only
    // override the parts the user asked for.
    backends::PerfConstraints perf = handle->platform().constraints();
    if (options.throughputSet)
        perf.minThroughputGpps = options.throughputGpps;
    if (options.latencySet)
        perf.maxLatencyNs = options.latencyNs;
    handle->constrain(perf, budget);
    return handle;
}

/** One provenance line for the serving summaries: which kernel table
 *  inference dispatches to, and why it was picked. */
void
printKernelLine(std::ostream &out)
{
    out << "kernel    : "
        << kernels::kernelTargetName(kernels::KernelDispatch::active())
        << " (" << kernels::KernelDispatch::provenance() << ")\n";
}

/** Decode one hex-encoded frame line (whitespace tolerated). */
std::vector<std::uint8_t>
decodeHexFrame(const std::string &line)
{
    std::string hex;
    hex.reserve(line.size());
    for (char c : line)
        if (!std::isspace(static_cast<unsigned char>(c)))
            hex.push_back(c);
    if (hex.size() % 2 != 0)
        throw std::runtime_error("hex frame has odd digit count");
    std::vector<std::uint8_t> bytes(hex.size() / 2);
    for (std::size_t i = 0; i < bytes.size(); ++i)
        bytes[i] = static_cast<std::uint8_t>(
            std::stoul(hex.substr(2 * i, 2), nullptr, 16));
    return bytes;
}

/**
 * Load --replay's trace as wire frames: "iot:N" generates N synthetic
 * IoT packets (serialized, so the replay exercises the full parse path),
 * anything else is a file of hex-encoded frames, one per line.
 */
std::vector<std::vector<std::uint8_t>>
loadReplayTrace(const std::string &trace)
{
    std::vector<std::vector<std::uint8_t>> frames;
    if (common::startsWith(trace, "iot:")) {
        net::IotPacketConfig config;
        config.numPackets = std::stoull(trace.substr(4));
        config.seed = bench::kBenchSeed ^ 0x5EAFull;
        for (const auto &labeled : net::generateIotPackets(config))
            frames.push_back(net::serialize(labeled.packet));
        return frames;
    }
    std::ifstream in(trace);
    if (!in)
        throw std::runtime_error("cannot read trace file '" + trace + "'");
    std::string line;
    while (std::getline(in, line)) {
        if (common::trim(line).empty())
            continue;
        frames.push_back(decodeHexFrame(line));
    }
    return frames;
}

/**
 * Resolve the serving-time feature scaler. Artifacts since
 * homunculus-ir v3 record the provenance either way: stored moments win,
 * and a model recorded as trained on raw features is served raw — no
 * scaler is invented for it. Only legacy artifacts (no provenance at
 * all) fall back to refitting statistics on the trace itself, the old
 * approximation. --replay-raw disables scaling entirely.
 * @p provenance receives a printable description of the choice.
 */
std::optional<ml::StandardScaler>
resolveServingScaler(const CliOptions &options,
                     const homunculus::ir::ModelIr &model,
                     const std::vector<std::vector<std::uint8_t>> &frames,
                     std::string &provenance)
{
    if (options.replayRaw) {
        provenance = "raw (unscaled)";
        return std::nullopt;
    }
    if (model.hasScaler()) {
        provenance = "artifact (training-time)";
        return ml::StandardScaler::fromMoments(model.scalerMeans,
                                               model.scalerStds);
    }
    if (model.scalerRecorded) {
        provenance = "artifact (model trained on raw features)";
        return std::nullopt;
    }
    provenance = "trace-refit (artifact predates ir v3)";
    net::FeatureExtractor extractor;
    std::vector<std::vector<double>> rows;
    for (const auto &frame : frames)
        if (auto features = extractor.extractFromWire(frame))
            rows.push_back(std::move(*features));
    if (rows.empty())
        return std::nullopt;
    math::Matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r)
        for (std::size_t c = 0; c < rows[r].size(); ++c)
            m(r, c) = rows[r][c];
    ml::StandardScaler fitted;
    fitted.fit(m);
    return fitted;
}

/** Serving mode: replay a trace through the winner on the streaming
 *  runtime and print rows/s + micro-batch latency percentiles. */
void
runReplay(const CliOptions &options, const homunculus::ir::ModelIr &model)
{
    auto frames = loadReplayTrace(options.replay);
    std::cout << "\nreplay    : " << options.replay << " ("
              << frames.size() << " frames, batch "
              << options.replayBatch << ", "
              << (options.inferJobs == 0
                      ? std::string("auto")
                      : std::to_string(options.inferJobs))
              << " infer jobs)\n";

    runtime::EngineOptions engine_options;
    engine_options.jobs = options.inferJobs;
    // The operator already sized the micro-batch with --replay-batch;
    // shard every batch rather than second-guessing with the engine's
    // default inline threshold (sub-256-row batches still run inline
    // because they produce a single shard).
    engine_options.minRowsToShard = 1;
    net::FeatureExtractor extractor;

    std::string scaler_provenance;
    std::optional<ml::StandardScaler> scaler =
        resolveServingScaler(options, model, frames, scaler_provenance);
    std::cout << "scaler    : " << scaler_provenance << "\n";
    printKernelLine(std::cout);

    runtime::StreamConfig stream_config;
    stream_config.batchRows = options.replayBatch;
    runtime::StreamHarness harness(
        runtime::InferenceEngine::fromModel(model, engine_options),
        extractor, std::move(scaler), stream_config);
    runtime::StreamStats stats = harness.replayWire(frames);

    std::map<int, std::size_t> verdict_counts;
    for (int verdict : stats.verdicts)
        ++verdict_counts[verdict];
    std::cout << common::format(
        "served    : %zu/%zu packets in %zu batches, %.0f rows/s\n",
        stats.rowsClassified, stats.packetsOffered, stats.batches,
        stats.rowsPerSec);
    std::cout << common::format(
        "latency   : p50 %.1f us / p99 %.1f us per batch "
        "(extract %.3fs, infer %.3fs, wall %.3fs)\n",
        stats.p50BatchLatencyUs, stats.p99BatchLatencyUs,
        stats.extractSeconds, stats.inferSeconds, stats.wallSeconds);
    std::cout << "verdicts  :";
    for (const auto &[verdict, count] : verdict_counts)
        std::cout << " class " << verdict << " x" << count;
    std::cout << "\n";
}

/**
 * Arm the global fault injector from --serve-fault specs (the
 * HOMUNCULUS_FAULTS env var is applied by the injector itself on first
 * use) and say what is armed, so a faulted run is visible in the log.
 */
void
armServeFaults(const CliOptions &options)
{
    auto &injector = runtime::faults::FaultInjector::global();
    for (const std::string &spec : options.serveFaults)
        injector.armSpec(spec);
    if (!injector.armed())
        return;
    std::cout << "faults    : armed";
    for (const runtime::faults::FaultSite &site : injector.sites())
        std::cout << common::format(
            " %s:%g:%llu", site.site.c_str(), site.rate,
            static_cast<unsigned long long>(site.seed));
    std::cout << "\n";
}

/** The post-run fault-tolerance summary both serving modes print. */
void
printFaultSummary(const runtime::ServerStats &stats)
{
    std::cout << common::format(
        "failures  : %zu rows in %zu batches (%zu bisect retries, "
        "%zu callback errors, %zu deadline-truncated, "
        "%zu fallback rows)\n",
        stats.failedRows, stats.failedBatches, stats.retriedBatches,
        stats.callbackErrors, stats.deadlineTruncated,
        stats.fallbackRows);
    auto &injector = runtime::faults::FaultInjector::global();
    if (!injector.armed())
        return;
    std::cout << "faults    :";
    for (const runtime::faults::FaultSite &site : injector.sites())
        std::cout << common::format(
            " %s fired %llu/%llu", site.site.c_str(),
            static_cast<unsigned long long>(injector.fired(site.site)),
            static_cast<unsigned long long>(
                injector.checked(site.site)));
    std::cout << "\n";
}

/** Per-shard stats lines both serving modes print after stop() when
 *  --serve-shards splits the front door. */
void
printShardLines(const runtime::ShardedServer &server)
{
    const std::vector<runtime::ServerStats> &per_shard =
        server.shardStats();
    for (std::size_t shard = 0; shard < per_shard.size(); ++shard) {
        const runtime::ServerStats &ss = per_shard[shard];
        std::cout << common::format(
            "shard %zu   : served %zu rows in %zu batches (%llu shed, "
            "%llu dropped), request p50 %.1f us / p99 %.1f us\n",
            shard, ss.rowsServed, ss.batches,
            static_cast<unsigned long long>(ss.queue.shed),
            static_cast<unsigned long long>(ss.queue.earlyDropped),
            ss.p50RequestLatencyUs, ss.p99RequestLatencyUs);
    }
}

/** The serve-header shards/aging lines (only when the knobs are on). */
void
printScaleOutLines(const CliOptions &options)
{
    if (options.serveShards > 1)
        std::cout << common::format(
            "shards    : %zu (flow-affine 5-tuple consistent hashing)\n",
            options.serveShards);
    if (options.serveAgingUs != 0)
        std::cout << common::format(
            "aging     : %llu us lane-fairness budget\n",
            static_cast<unsigned long long>(options.serveAgingUs));
}

/** The span ring behind --serve-stats-json (nullptr when the dump is
 *  off — servers then skip span recording entirely). */
std::unique_ptr<runtime::telemetry::TraceSink>
makeTraceSink(const CliOptions &options)
{
    if (options.serveStatsJson.empty())
        return nullptr;
    return std::make_unique<runtime::telemetry::TraceSink>(8192);
}

/** One live counters line on stderr (--serve-stats-every), read from
 *  the same registry instruments the final stats materialize from. */
void
printStatsLine(std::size_t frames,
               const runtime::telemetry::MetricsSnapshot &snap)
{
    std::cerr << common::format(
        "stats     : frames=%zu accepted=%llu served=%llu shed=%llu "
        "dropped=%llu failed=%llu malformed=%llu\n",
        frames,
        static_cast<unsigned long long>(
            snap.sumCounters("queue.accepted")),
        static_cast<unsigned long long>(
            snap.sumCounters("server.rows_served")),
        static_cast<unsigned long long>(snap.sumCounters("queue.shed")),
        static_cast<unsigned long long>(
            snap.sumCounters("queue.early_dropped")),
        static_cast<unsigned long long>(
            snap.sumCounters("server.failed_rows")),
        static_cast<unsigned long long>(
            snap.sumCounters("server.malformed_frames")));
}

/**
 * The --serve-stats-json dump: the serving-plane snapshot (per-shard
 * labeled when sharded) merged with the process-global registry —
 * engine throughput, fault fires, model-registry events — plus the
 * retained request spans. "-" writes to stdout.
 */
void
dumpServeStats(const CliOptions &options,
               runtime::telemetry::MetricsSnapshot snapshot,
               const runtime::telemetry::TraceSink *sink)
{
    if (options.serveStatsJson.empty())
        return;
    snapshot.merge(
        runtime::telemetry::MetricRegistry::global().snapshot());
    if (options.serveStatsJson == "-") {
        runtime::telemetry::writeServeStatsJson(std::cout, snapshot,
                                                sink);
        return;
    }
    std::ofstream out(options.serveStatsJson);
    if (!out)
        throw std::runtime_error(
            "homc: cannot write --serve-stats-json file '" +
            options.serveStatsJson + "'");
    runtime::telemetry::writeServeStatsJson(out, snapshot, sink);
    std::cout << "stats-json: " << options.serveStatsJson << "\n";
}

/**
 * Async serving mode: feed the trace into runtime::Server as an
 * open-loop arrival process at --serve-rate rows/s (0 = as fast as
 * submission runs) and report admission, batching-policy, and latency
 * statistics — per lane when --serve-lanes splits the trace into a
 * probe lane and bulk lanes. Unlike --replay (whole trace, fixed
 * micro-batches), this exercises the per-lane deadline-vs-size batcher
 * and the configured backpressure mode.
 */
void
runServe(const CliOptions &options, const homunculus::ir::ModelIr &model)
{
    auto frames = loadReplayTrace(options.serve);
    std::vector<runtime::QueuePolicy> lanes = tools::lanePolicies(options);
    std::cout << "\nserve     : " << options.serve << " ("
              << frames.size() << " frames, " << lanes.size()
              << (lanes.size() == 1 ? " lane, " : " lanes, ")
              << runtime::backpressureModeName(options.serveBackpressure)
              << " backpressure, rate "
              << (options.serveRate <= 0.0
                      ? std::string("max")
                      : common::format("%.0f/s", options.serveRate))
              << ")\n";
    for (std::size_t lane = 0; lane < lanes.size(); ++lane)
        std::cout << common::format(
            "lane %zu    : maxBatch %zu, maxDelay %llu us, depth %zu\n",
            lane, lanes[lane].maxBatch,
            static_cast<unsigned long long>(lanes[lane].maxDelayUs),
            lanes[lane].maxDepth);
    printScaleOutLines(options);

    std::string scaler_provenance;
    std::optional<ml::StandardScaler> scaler =
        resolveServingScaler(options, model, frames, scaler_provenance);
    std::cout << "scaler    : " << scaler_provenance << "\n";
    printKernelLine(std::cout);

    runtime::EngineOptions engine_options;
    engine_options.jobs = options.inferJobs;
    engine_options.minRowsToShard = 1;

    runtime::ServerConfig server_config;
    server_config.queue = lanes.front();
    server_config.extraLanes.assign(lanes.begin() + 1, lanes.end());
    server_config.backpressure = options.serveBackpressure;
    server_config.blockTimeoutUs = options.serveBlockTimeoutUs;
    server_config.retryDepth = options.serveRetryDepth;
    server_config.fairnessAgingUs = options.serveAgingUs;
    armServeFaults(options);
    auto trace_sink = makeTraceSink(options);
    server_config.trace = trace_sink.get();

    std::mutex verdict_mutex;
    std::map<int, std::size_t> verdict_counts;
    auto on_verdict = [&](const runtime::Request &, int verdict) {
        std::lock_guard<std::mutex> lock(verdict_mutex);
        ++verdict_counts[verdict];
    };
    // --serve-shards > 1 swaps the single Server for a ShardedServer
    // front door; frames still enter via submitFrame, which keys each
    // one by its 5-tuple so a flow sticks to one shard.
    std::unique_ptr<runtime::Server> server;
    std::unique_ptr<runtime::ShardedServer> sharded;
    if (options.serveShards > 1) {
        runtime::ShardedServerConfig sharded_config;
        sharded_config.shards = options.serveShards;
        sharded_config.server = server_config;
        sharded = std::make_unique<runtime::ShardedServer>(
            runtime::InferenceEngine::fromModel(model, engine_options),
            sharded_config, on_verdict, std::move(scaler));
    } else {
        server = std::make_unique<runtime::Server>(
            runtime::InferenceEngine::fromModel(model, engine_options),
            server_config, on_verdict, std::move(scaler));
    }

    using Clock = std::chrono::steady_clock;
    auto started = Clock::now();
    for (std::size_t i = 0; i < frames.size(); ++i) {
        if (options.serveRate > 0.0) {
            // Open-loop pacing: submit frame i at its scheduled arrival
            // time regardless of how the server is keeping up.
            auto due = started + std::chrono::duration_cast<
                                     Clock::duration>(
                                     std::chrono::duration<double>(
                                         static_cast<double>(i) /
                                         options.serveRate));
            std::this_thread::sleep_until(due);
        }
        std::size_t lane = tools::laneForFrame(i, options);
        if (sharded)
            sharded->submitFrame(frames[i], lane);
        else
            server->submitFrame(frames[i], lane);
        if (options.serveStatsEvery != 0 &&
            (i + 1) % options.serveStatsEvery == 0)
            printStatsLine(i + 1,
                           sharded ? sharded->metricsSnapshot()
                                   : server->metrics().snapshot());
    }
    runtime::ServerStats stats = sharded ? sharded->stop()
                                         : server->stop();

    std::cout << common::format(
        "admitted  : %llu rows (%llu shed, %llu early-dropped, "
        "%zu malformed) in %zu batches (mean %.1f rows)\n",
        static_cast<unsigned long long>(stats.queue.accepted),
        static_cast<unsigned long long>(stats.queue.shed),
        static_cast<unsigned long long>(stats.queue.earlyDropped),
        stats.malformedFrames, stats.batches, stats.meanBatchRows);
    std::cout << common::format(
        "flushes   : %llu size / %llu deadline / %llu drain\n",
        static_cast<unsigned long long>(stats.queue.sizeFlushes),
        static_cast<unsigned long long>(stats.queue.deadlineFlushes),
        static_cast<unsigned long long>(stats.queue.drainFlushes));
    std::cout << common::format(
        "latency   : request p50 %.1f us / p99 %.1f us, batch infer "
        "p50 %.1f us / p99 %.1f us (wall %.3fs)\n",
        stats.p50RequestLatencyUs, stats.p99RequestLatencyUs,
        stats.p50BatchLatencyUs, stats.p99BatchLatencyUs,
        stats.wallSeconds);
    if (stats.lanes.size() > 1)
        for (std::size_t lane = 0; lane < stats.lanes.size(); ++lane) {
            const runtime::LaneStats &ls = stats.lanes[lane];
            std::cout << common::format(
                "lane %zu    : served %zu (%llu shed, %llu dropped), "
                "request p50 %.1f us / p99 %.1f us\n",
                lane, ls.rowsServed,
                static_cast<unsigned long long>(ls.queue.shed),
                static_cast<unsigned long long>(ls.queue.earlyDropped),
                ls.p50RequestLatencyUs, ls.p99RequestLatencyUs);
        }
    if (sharded)
        printShardLines(*sharded);
    printFaultSummary(stats);
    dumpServeStats(options,
                   sharded ? sharded->metricsSnapshot()
                           : server->metrics().snapshot(),
                   trace_sink.get());
    std::cout << "verdicts  :";
    for (const auto &[verdict, count] : verdict_counts)
        std::cout << " class " << verdict << " x" << count;
    std::cout << "\n";
}

/**
 * Multi-model serving mode (--serve-model): load pre-compiled
 * homunculus-ir artifacts into a ModelRegistry, bind lanes and chain
 * rules through a Router, and feed the trace exactly like runServe —
 * no compile happens at all. The --serve-swap-after hook hot-swaps a
 * model's active plan mid-run; batches in flight finish on the version
 * that admitted them, the next batch picks up the new one. Per-model
 * stats print after the per-lane block.
 */
void
runServeRegistry(const CliOptions &options)
{
    auto frames = loadReplayTrace(options.serve);
    std::vector<runtime::QueuePolicy> lanes = tools::lanePolicies(options);
    std::cout << "\nserve     : " << options.serve << " ("
              << frames.size() << " frames, " << lanes.size()
              << (lanes.size() == 1 ? " lane, " : " lanes, ")
              << runtime::backpressureModeName(options.serveBackpressure)
              << " backpressure, rate "
              << (options.serveRate <= 0.0
                      ? std::string("max")
                      : common::format("%.0f/s", options.serveRate))
              << ")\n";
    for (std::size_t lane = 0; lane < lanes.size(); ++lane)
        std::cout << common::format(
            "lane %zu    : maxBatch %zu, maxDelay %llu us, depth %zu\n",
            lane, lanes[lane].maxBatch,
            static_cast<unsigned long long>(lanes[lane].maxDelayUs),
            lanes[lane].maxDepth);
    printScaleOutLines(options);

    printKernelLine(std::cout);
    runtime::EngineOptions engine_options;
    engine_options.jobs = options.inferJobs;
    engine_options.minRowsToShard = 1;
    auto registry =
        std::make_shared<runtime::ModelRegistry>(engine_options);
    for (const auto &[name, path] : options.serveModels) {
        std::uint64_t version = registry->loadFile(name, path);
        auto epoch = registry->version(name, version);
        std::cout << common::format(
            "model     : %s v%llu <- %s (%zu features, %d classes, "
            "scaler %s)\n",
            name.c_str(), static_cast<unsigned long long>(version),
            path.c_str(), epoch->inputDim(), epoch->numClasses(),
            epoch->scaler ? "artifact" : "raw");
    }

    runtime::RouteConfig route;
    route.defaultModel = options.serveModels.front().first;
    route.laneModels = options.serveLaneModels;
    route.chain = options.serveChain;
    for (const runtime::ChainRule &rule : options.serveChain)
        std::cout << "chain     : " << rule.fromModel << " label "
                  << rule.label << " -> " << rule.toModel << "\n";
    // Fallbacks only matter once a breaker can open, so giving any
    // --serve-fallback turns the breakers on at a default threshold
    // unless --serve-breaker-threshold says otherwise.
    route.breakerThreshold =
        options.serveBreakerThreshold != 0 ? options.serveBreakerThreshold
        : options.serveFallbacks.empty()   ? 0
                                           : 3;
    route.fallbacks = options.serveFallbacks;
    route.deadlineUs = options.serveDeadlineUs;
    for (const runtime::FallbackRule &rule : options.serveFallbacks) {
        std::cout << "fallback  : " << rule.model << " -> ";
        if (rule.toModel.empty())
            std::cout << "label " << rule.label;
        else
            std::cout << rule.toModel;
        std::cout << common::format(" (breaker threshold %zu)\n",
                                    route.breakerThreshold);
    }

    runtime::ServerConfig server_config;
    server_config.queue = lanes.front();
    server_config.extraLanes.assign(lanes.begin() + 1, lanes.end());
    server_config.backpressure = options.serveBackpressure;
    server_config.blockTimeoutUs = options.serveBlockTimeoutUs;
    server_config.retryDepth = options.serveRetryDepth;
    server_config.fairnessAgingUs = options.serveAgingUs;
    armServeFaults(options);
    auto trace_sink = makeTraceSink(options);
    server_config.trace = trace_sink.get();

    std::mutex verdict_mutex;
    std::map<int, std::size_t> verdict_counts;
    auto on_verdict = [&](const runtime::Request &, int verdict) {
        std::lock_guard<std::mutex> lock(verdict_mutex);
        ++verdict_counts[verdict];
    };
    // Sharded registry serving: shards share the registry (a hot swap
    // hits every shard at its next batch) but each runs its own Router.
    std::unique_ptr<runtime::Server> server;
    std::unique_ptr<runtime::ShardedServer> sharded;
    if (options.serveShards > 1) {
        runtime::ShardedServerConfig sharded_config;
        sharded_config.shards = options.serveShards;
        sharded_config.server = server_config;
        sharded = std::make_unique<runtime::ShardedServer>(
            registry, route, sharded_config, on_verdict);
    } else {
        server = std::make_unique<runtime::Server>(
            registry, route, server_config, on_verdict);
    }

    using Clock = std::chrono::steady_clock;
    auto started = Clock::now();
    bool swapped = false;
    auto fire_swap = [&](std::size_t after_frames) {
        std::uint64_t previous = registry->swap(
            options.serveSwapModel, options.serveSwapVersion);
        swapped = true;
        std::cout << common::format(
            "swap      : %s v%llu -> v%llu after %zu frames\n",
            options.serveSwapModel.c_str(),
            static_cast<unsigned long long>(previous),
            static_cast<unsigned long long>(options.serveSwapVersion),
            after_frames);
    };
    for (std::size_t i = 0; i < frames.size(); ++i) {
        if (options.serveRate > 0.0) {
            auto due = started + std::chrono::duration_cast<
                                     Clock::duration>(
                                     std::chrono::duration<double>(
                                         static_cast<double>(i) /
                                         options.serveRate));
            std::this_thread::sleep_until(due);
        }
        std::size_t lane = tools::laneForFrame(i, options);
        if (sharded)
            sharded->submitFrame(frames[i], lane);
        else
            server->submitFrame(frames[i], lane);
        if (options.serveSwapAfter != 0 && !swapped &&
            i + 1 >= options.serveSwapAfter)
            fire_swap(i + 1);
        if (options.serveStatsEvery != 0 &&
            (i + 1) % options.serveStatsEvery == 0)
            printStatsLine(i + 1,
                           sharded ? sharded->metricsSnapshot()
                                   : server->metrics().snapshot());
    }
    // A trace shorter than N still honors the hook (exercised last).
    if (options.serveSwapAfter != 0 && !swapped)
        fire_swap(frames.size());
    runtime::ServerStats stats = sharded ? sharded->stop()
                                         : server->stop();

    std::cout << common::format(
        "admitted  : %llu rows (%llu shed, %llu early-dropped, "
        "%zu malformed) in %zu batches (mean %.1f rows)\n",
        static_cast<unsigned long long>(stats.queue.accepted),
        static_cast<unsigned long long>(stats.queue.shed),
        static_cast<unsigned long long>(stats.queue.earlyDropped),
        stats.malformedFrames, stats.batches, stats.meanBatchRows);
    std::cout << common::format(
        "latency   : request p50 %.1f us / p99 %.1f us, batch "
        "p50 %.1f us / p99 %.1f us (wall %.3fs)\n",
        stats.p50RequestLatencyUs, stats.p99RequestLatencyUs,
        stats.p50BatchLatencyUs, stats.p99BatchLatencyUs,
        stats.wallSeconds);
    if (stats.lanes.size() > 1)
        for (std::size_t lane = 0; lane < stats.lanes.size(); ++lane) {
            const runtime::LaneStats &ls = stats.lanes[lane];
            std::cout << common::format(
                "lane %zu    : served %zu (%llu shed, %llu dropped), "
                "request p50 %.1f us / p99 %.1f us\n",
                lane, ls.rowsServed,
                static_cast<unsigned long long>(ls.queue.shed),
                static_cast<unsigned long long>(ls.queue.earlyDropped),
                ls.p50RequestLatencyUs, ls.p99RequestLatencyUs);
        }
    for (const runtime::ModelStats &ms : stats.models) {
        std::cout << common::format(
            "model %s: %zu rows / %zu steps, step p50 %.1f us / "
            "p99 %.1f us (active v%llu)",
            ms.name.c_str(), ms.rowsServed, ms.batches,
            ms.p50StepLatencyUs, ms.p99StepLatencyUs,
            static_cast<unsigned long long>(ms.activeVersion));
        if (route.breakerThreshold != 0)
            std::cout << common::format(
                ", breaker %s (%llu opens, %llu fallback rows)",
                ms.breakerState.c_str(),
                static_cast<unsigned long long>(ms.breakerOpens),
                static_cast<unsigned long long>(ms.breakerFallbackRows));
        std::cout << "\n";
    }
    if (sharded)
        printShardLines(*sharded);
    printFaultSummary(stats);
    dumpServeStats(options,
                   sharded ? sharded->metricsSnapshot()
                           : server->metrics().snapshot(),
                   trace_sink.get());
    std::cout << "verdicts  :";
    for (const auto &[verdict, count] : verdict_counts)
        std::cout << " class " << verdict << " x" << count;
    std::cout << "\n";
}

/** Registry-aware pass-name check, mirroring the --list-platforms style. */
bool
knownPass(const std::string &name)
{
    return ir::PassRegistry::instance().find(name) != nullptr;
}

std::string
knownPassList()
{
    std::string joined;
    for (const auto &name : ir::PassRegistry::instance().names()) {
        if (!joined.empty())
            joined += ", ";
        joined += name;
    }
    return joined;
}

}  // namespace

int
main(int argc, char **argv)
{
    CliOptions options;
    switch (tools::parseArgs(argc, argv, options, std::cerr)) {
      case tools::ParseResult::kHelp:
        tools::printUsage(std::cout);
        return 0;
      case tools::ParseResult::kError:
        tools::printUsage(std::cerr);
        return 2;
      case tools::ParseResult::kOk:
        break;
    }

    // Pin the kernel table before anything compiles or serves, so every
    // summary line and every inference below reflects the pin. "auto"
    // explicitly restores the probe/env resolution (a no-op unless
    // something forced earlier in this process).
    if (!options.kernel.empty()) {
        try {
            if (options.kernel == "auto")
                kernels::KernelDispatch::reset();
            else
                kernels::KernelDispatch::force(
                    kernels::parseKernelTarget(options.kernel));
        } catch (const std::exception &error) {
            std::cerr << "homc: --kernel " << options.kernel << ": "
                      << error.what() << "\n";
            return 2;
        }
    }
    if (options.listKernels) {
        try {
            const auto available = kernels::KernelDispatch::available();
            auto is_available = [&](kernels::KernelTarget target) {
                for (kernels::KernelTarget t : available)
                    if (t == target)
                        return true;
                return false;
            };
            kernels::KernelTarget active =
                kernels::KernelDispatch::active();
            for (int i = 0; i < kernels::kNumKernelTargets; ++i) {
                auto target = static_cast<kernels::KernelTarget>(i);
                std::cout << kernels::kernelTargetName(target) << "  "
                          << (is_available(target) ? "available"
                                                   : "unavailable");
                if (target == active)
                    std::cout << "  active ("
                              << kernels::KernelDispatch::provenance()
                              << ")";
                std::cout << "\n";
            }
        } catch (const std::exception &error) {
            // A bogus HOMUNCULUS_KERNELS makes resolution itself throw;
            // surface it as the listing's diagnostic.
            std::cerr << "homc: " << error.what() << "\n";
            return 2;
        }
        return 0;
    }

    if (options.listPlatforms) {
        for (const auto &name : backends::BackendRegistry::instance().names())
            std::cout << name << "\n";
        return 0;
    }
    if (options.listPasses) {
        for (const auto &name : ir::PassRegistry::instance().names()) {
            const ir::PassInfo *pass = ir::PassRegistry::instance().find(name);
            std::cout << name << "  " << pass->description << "\n";
        }
        return 0;
    }

    if (!options.passes.empty()) {
        for (const auto &name : common::split(options.passes, ',')) {
            std::string trimmed = common::trim(name);
            if (!knownPass(trimmed)) {
                std::cerr << "homc: unknown pass '" << trimmed
                          << "' (known passes: " << knownPassList() << ")\n";
                return 2;
            }
        }
    }
    if (!options.dumpPass.empty() && !knownPass(options.dumpPass)) {
        std::cerr << "homc: unknown pass '" << options.dumpPass
                  << "' (known passes: " << knownPassList() << ")\n";
        return 2;
    }

    if (!options.serveModels.empty()) {
        // Registry serving runs pre-compiled artifacts straight into
        // the multi-model plane — no spec, no search, no compile.
        try {
            runServeRegistry(options);
        } catch (const std::exception &error) {
            std::cerr << "homc: " << error.what() << "\n";
            return 1;
        }
        return 0;
    }

    try {
        core::ModelSpec spec = buildSpec(options);
        core::Result<core::PlatformHandle> platform =
            buildPlatform(options);
        if (!platform.isOk()) {
            std::cerr << "homc: " << platform.status().message() << "\n";
            return 2;
        }
        platform->schedule(spec);

        core::CompileOptions compile_options;
        compile_options.bo.numInitSamples = options.init;
        compile_options.bo.numIterations = options.iters;
        compile_options.bo.costMetricKey = options.paretoMetric;
        compile_options.seed = options.seed;
        compile_options.jobs = options.jobs;
        compile_options.inferJobs = options.inferJobs;
        if (!options.passes.empty()) {
            for (const auto &name : common::split(options.passes, ','))
                compile_options.emitPasses.push_back(common::trim(name));
        }
        if (options.dumpIr) {
            std::string filter = options.dumpPass;
            compile_options.passDump =
                [filter](const std::string &pass_name,
                         const ir::ModelIr &model) {
                    if (!filter.empty() && filter != pass_name)
                        return;
                    std::cout << "-- ir for '" << model.name
                              << "' after pass " << pass_name << " --\n"
                              << ir::serializeModel(model);
                };
        }
        if (options.progress) {
            compile_options.observer =
                [](const core::ProgressEvent &event) {
                    std::cout << "[" << core::stageName(event.stage) << "] "
                              << event.specName;
                    if (!event.family.empty())
                        std::cout << "/" << event.family << " "
                                  << event.evalsDone << "/"
                                  << event.evalsTotal;
                    if (!event.message.empty())
                        std::cout << " " << event.message;
                    std::cout << "\n";
                };
        }

        std::cout << "homc: compiling '" << spec.name << "' for "
                  << platform->platform().name() << " ("
                  << options.init + options.iters << " evaluations, "
                  << (options.jobs == 0 ? std::string("auto")
                                        : std::to_string(options.jobs))
                  << " jobs)\n";

        core::Compiler compiler(compile_options);
        core::Result<core::CompileReport> compiled =
            compiler.compile(platform.value());
        if (!compiled.isOk()) {
            std::cerr << "homc: compile failed: "
                      << compiled.status().toString() << "\n";
            return 1;
        }
        const auto &model = compiled->models.front();

        std::cout << "winner    : " << core::algorithmName(model.algorithm)
                  << " (" << model.model.paramCount() << " params)\n"
                  << "objective : " << model.objective << " ("
                  << core::metricName(spec.optimizationMetric) << ")\n"
                  << "resources : " << model.report.summary() << "\n";

        if (!options.paretoMetric.empty() &&
            !model.searchHistory.front.empty()) {
            std::cout << "pareto front (" << options.paretoMetric
                      << " vs objective):\n";
            for (const auto &point :
                 model.searchHistory.front.sortedByCost()) {
                std::cout << "  " << point.cost << " -> "
                          << point.objective << "\n";
            }
        }

        if (!options.savePath.empty()) {
            ir::saveModel(options.savePath, model.model);
            std::cout << "artifact  : " << options.savePath << "\n";
        }
        if (!options.outPath.empty()) {
            std::ofstream out(options.outPath);
            if (!out)
                throw std::runtime_error("cannot write " + options.outPath);
            out << model.code;
            std::cout << "program   : " << options.outPath << " ("
                      << model.code.size() << " bytes)\n";
        }
        if (!options.replay.empty())
            runReplay(options, model.model);
        if (!options.serve.empty())
            runServe(options, model.model);
    } catch (const std::exception &error) {
        std::cerr << "homc: " << error.what() << "\n";
        return 1;
    }
    return 0;
}
