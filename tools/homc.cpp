/**
 * @file
 * homc — the Homunculus command-line compiler driver.
 *
 * Compiles one of the built-in applications (or a CSV dataset) for a
 * chosen data-plane target and writes the generated platform program.
 * Targets resolve through the BackendRegistry, so any registered
 * platform — built-in or plugin — is addressable via --platform.
 *
 * Usage:
 *   homc --app ad|tc|bd            built-in synthetic application
 *   homc --train t.csv --test e.csv   or: bring your own CSV data
 *        [--platform NAME]         target (default taurus); see
 *                                  --list-platforms for the known names
 *        [--algorithms dnn,svm,kmeans,decision_tree]
 *        [--init N] [--iters N]    search budget (default 5 / 15)
 *        [--jobs N]                parallel family searches (default 1;
 *                                  0 = one per hardware thread)
 *        [--infer-jobs N]          row-shard width for candidate scoring
 *                                  and --replay inference (default 1;
 *                                  0 = one per hardware thread)
 *        [--grid N]                Taurus grid side (default 16)
 *        [--tables N]              MAT stage budget (default 12)
 *        [--throughput G] [--latency NS]   performance envelope
 *        [--seed N]                determinism seed
 *        [--out FILE]              write the generated program here
 *        [--save FILE]             write the compiled model artifact
 *        [--pareto cus|mus|mat_tables]     multi-objective cost metric
 *        [--passes LIST]           emit-stage IR passes (default:
 *                                  the optimization pipeline); see
 *                                  --list-passes for the known names
 *        [--dump-ir[=PASS]]        print the artifact after each emit
 *                                  pass (or only after PASS)
 *        [--progress]              print per-stage progress events
 *        [--replay TRACE]          serving mode: after compiling, replay
 *                                  a packet trace through the winner via
 *                                  the streaming runtime. TRACE is
 *                                  iot:N (N synthetic IoT packets) or a
 *                                  file of hex-encoded frames, one per
 *                                  line. Reports rows/s and p50/p99
 *                                  micro-batch latency.
 *        [--replay-batch N]        replay micro-batch rows (default 1024)
 *        [--replay-raw]            skip feature standardization on
 *                                  replay/serve
 *        [--serve TRACE]           async serving mode: feed the trace
 *                                  through the runtime::Server admission
 *                                  queue (size-or-deadline batching,
 *                                  bounded-depth shedding) and report
 *                                  request/batch latency percentiles
 *        [--serve-rate RPS]        open-loop arrival rate (0 = max)
 *        [--serve-max-batch N]     flush at N rows (default 1024)
 *        [--serve-max-delay-us N]  flush at N us queueing (default 1000)
 *        [--serve-depth N]         shed beyond N queued rows (0 = inf)
 *   homc --list-platforms          enumerate the backend registry
 *   homc --list-passes             enumerate the IR pass registry
 */
#include <cctype>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "backends/registry.hpp"
#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "data/loaders.hpp"
#include "ir/passes.hpp"
#include "ir/serialize.hpp"
#include "runtime/server.hpp"
#include "runtime/stream_harness.hpp"

namespace {

using namespace homunculus;

struct CliOptions
{
    std::string app;
    std::string trainCsv, testCsv;
    std::string platform = "taurus";
    std::string algorithms;
    std::string outPath;
    std::string savePath;
    std::string paretoMetric;
    std::string passes;
    std::string dumpPass;   ///< dump filter; empty = every pass.
    std::string replay;     ///< iot:N or a hex-frame trace file.
    std::size_t replayBatch = 1024;
    bool replayRaw = false;
    std::string serve;      ///< async-serving trace (iot:N or file).
    double serveRate = 0.0;           ///< arrival rows/s (0 = max).
    std::size_t serveMaxBatch = 1024;   ///< queue size trigger.
    std::size_t serveMaxDelayUs = 1000; ///< queue deadline trigger.
    std::size_t serveDepth = 8192;      ///< admission bound (0 = inf).
    bool dumpIr = false;
    std::size_t init = 5;
    std::size_t iters = 15;
    std::size_t jobs = 1;
    std::size_t inferJobs = 1;
    std::size_t grid = 16;
    std::size_t tables = 12;
    double throughputGpps = 1.0;
    double latencyNs = 500.0;
    bool throughputSet = false;
    bool latencySet = false;
    bool listPlatforms = false;
    bool progress = false;
    bool listPasses = false;
    std::uint64_t seed = bench::kBenchSeed;
};

void
printUsage()
{
    std::cout <<
        "homc — Homunculus data-plane ML compiler\n"
        "  --app ad|tc|bd           built-in application\n"
        "  --train FILE --test FILE CSV data (last column = label)\n"
        "  --platform NAME          target backend (see --list-platforms)\n"
        "  --list-platforms         enumerate registered backends\n"
        "  --algorithms LIST        comma-separated family pool\n"
        "  --init N --iters N       search budget\n"
        "  --jobs N                 parallel family searches (0 = #cores)\n"
        "  --infer-jobs N           row-shard width for scoring + replay\n"
        "                           (0 = #cores)\n"
        "  --replay TRACE           serving mode: replay iot:N or a\n"
        "                           hex-frame file through the winner\n"
        "  --replay-batch N         replay micro-batch rows (default 1024)\n"
        "  --replay-raw             skip feature standardization on replay\n"
        "                           and --serve\n"
        "  --serve TRACE            async serving mode: feed the trace\n"
        "                           through the admission queue + \n"
        "                           size-or-deadline batcher\n"
        "  --serve-rate RPS         arrival rate, rows/s (0 = max speed)\n"
        "  --serve-max-batch N      flush at N rows (default 1024)\n"
        "  --serve-max-delay-us N   flush at N us queueing (default 1000)\n"
        "  --serve-depth N          shed beyond N queued rows (0 = inf)\n"
        "  --grid N                 Taurus grid side\n"
        "  --tables N               MAT stage budget\n"
        "  --throughput GPPS --latency NS\n"
        "  --pareto METRIC          multi-objective cost (cus|mus|...)\n"
        "  --passes LIST            emit-stage IR passes (--list-passes)\n"
        "  --dump-ir[=PASS]         print the IR after each emit pass\n"
        "  --list-passes            enumerate registered IR passes\n"
        "  --progress               print compile-stage progress\n"
        "  --seed N --out FILE --save ARTIFACT\n";
}

bool
parseArgs(int argc, char **argv, CliOptions &options)
{
    std::map<std::string, std::string> flags;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return false;
        if (arg == "--list-platforms") {
            options.listPlatforms = true;
            continue;
        }
        if (arg == "--list-passes") {
            options.listPasses = true;
            continue;
        }
        if (arg == "--progress") {
            options.progress = true;
            continue;
        }
        if (arg == "--dump-ir") {
            options.dumpIr = true;
            continue;
        }
        if (arg == "--replay-raw") {
            options.replayRaw = true;
            continue;
        }
        if (common::startsWith(arg, "--dump-ir=")) {
            options.dumpIr = true;
            options.dumpPass = arg.substr(std::string("--dump-ir=").size());
            continue;
        }
        if (!common::startsWith(arg, "--") || i + 1 >= argc) {
            std::cerr << "homc: bad argument '" << arg << "'\n";
            return false;
        }
        flags[arg.substr(2)] = argv[++i];
    }

    auto take = [&](const char *name, std::string &into) {
        auto it = flags.find(name);
        if (it != flags.end())
            into = it->second;
    };
    auto take_size = [&](const char *name, std::size_t &into) {
        auto it = flags.find(name);
        if (it != flags.end())
            into = static_cast<std::size_t>(std::stoull(it->second));
    };
    take("app", options.app);
    take("train", options.trainCsv);
    take("test", options.testCsv);
    take("platform", options.platform);
    take("algorithms", options.algorithms);
    take("out", options.outPath);
    take("save", options.savePath);
    take("pareto", options.paretoMetric);
    take("passes", options.passes);
    take("replay", options.replay);
    take_size("replay-batch", options.replayBatch);
    take("serve", options.serve);
    take_size("serve-max-batch", options.serveMaxBatch);
    take_size("serve-max-delay-us", options.serveMaxDelayUs);
    take_size("serve-depth", options.serveDepth);
    if (flags.count("serve-rate"))
        options.serveRate = std::stod(flags["serve-rate"]);
    take_size("init", options.init);
    take_size("iters", options.iters);
    take_size("jobs", options.jobs);
    take_size("infer-jobs", options.inferJobs);
    take_size("grid", options.grid);
    take_size("tables", options.tables);
    if (flags.count("throughput")) {
        options.throughputGpps = std::stod(flags["throughput"]);
        options.throughputSet = true;
    }
    if (flags.count("latency")) {
        options.latencyNs = std::stod(flags["latency"]);
        options.latencySet = true;
    }
    if (flags.count("seed"))
        options.seed = std::stoull(flags["seed"]);

    if (options.listPlatforms || options.listPasses)
        return true;
    if (options.app.empty() && options.trainCsv.empty()) {
        std::cerr << "homc: need --app or --train/--test\n";
        return false;
    }
    return true;
}

core::ModelSpec
buildSpec(const CliOptions &options)
{
    core::ModelSpec spec;
    if (!options.app.empty()) {
        if (options.app == "ad") {
            spec = bench::appSpec(bench::App::kAd);
        } else if (options.app == "tc") {
            spec = bench::appSpec(bench::App::kTc);
        } else if (options.app == "bd") {
            spec = bench::appSpec(bench::App::kBd);
        } else {
            throw std::runtime_error("unknown --app '" + options.app + "'");
        }
        spec.algorithms.clear();  // CLI pool decides below.
    } else {
        spec.name = "csv_model";
        spec.optimizationMetric = core::Metric::kF1;
        spec.dataLoader = data::csvLoader(options.trainCsv, options.testCsv,
                                          /*has_header=*/true);
    }

    if (!options.algorithms.empty()) {
        for (const auto &name :
             common::split(options.algorithms, ',')) {
            std::string trimmed = common::trim(name);
            if (trimmed == "dnn")
                spec.algorithms.push_back(core::Algorithm::kDnn);
            else if (trimmed == "svm")
                spec.algorithms.push_back(core::Algorithm::kSvm);
            else if (trimmed == "kmeans")
                spec.algorithms.push_back(core::Algorithm::kKMeans);
            else if (trimmed == "decision_tree")
                spec.algorithms.push_back(core::Algorithm::kDecisionTree);
            else
                throw std::runtime_error("unknown algorithm '" + trimmed +
                                         "'");
        }
    }
    return spec;
}

core::Result<core::PlatformHandle>
buildPlatform(const CliOptions &options)
{
    core::Result<core::PlatformHandle> handle =
        core::Platforms::byName(options.platform);
    if (!handle.isOk())
        return handle;

    // --grid/--tables flow through the ResourceBudget alone; each
    // backend applies the fields that describe its fabric and ignores
    // the rest.
    core::ResourceBudget budget;
    budget.gridRows = options.grid;
    budget.gridCols = options.grid;
    budget.matTables = options.tables;

    // Every backend ships its own default envelope (the FPGA NIC path,
    // for instance, tolerates far more latency than a switch ASIC); only
    // override the parts the user asked for.
    backends::PerfConstraints perf = handle->platform().constraints();
    if (options.throughputSet)
        perf.minThroughputGpps = options.throughputGpps;
    if (options.latencySet)
        perf.maxLatencyNs = options.latencyNs;
    handle->constrain(perf, budget);
    return handle;
}

/** Decode one hex-encoded frame line (whitespace tolerated). */
std::vector<std::uint8_t>
decodeHexFrame(const std::string &line)
{
    std::string hex;
    hex.reserve(line.size());
    for (char c : line)
        if (!std::isspace(static_cast<unsigned char>(c)))
            hex.push_back(c);
    if (hex.size() % 2 != 0)
        throw std::runtime_error("hex frame has odd digit count");
    std::vector<std::uint8_t> bytes(hex.size() / 2);
    for (std::size_t i = 0; i < bytes.size(); ++i)
        bytes[i] = static_cast<std::uint8_t>(
            std::stoul(hex.substr(2 * i, 2), nullptr, 16));
    return bytes;
}

/**
 * Load --replay's trace as wire frames: "iot:N" generates N synthetic
 * IoT packets (serialized, so the replay exercises the full parse path),
 * anything else is a file of hex-encoded frames, one per line.
 */
std::vector<std::vector<std::uint8_t>>
loadReplayTrace(const std::string &trace)
{
    std::vector<std::vector<std::uint8_t>> frames;
    if (common::startsWith(trace, "iot:")) {
        net::IotPacketConfig config;
        config.numPackets = std::stoull(trace.substr(4));
        config.seed = bench::kBenchSeed ^ 0x5EAFull;
        for (const auto &labeled : net::generateIotPackets(config))
            frames.push_back(net::serialize(labeled.packet));
        return frames;
    }
    std::ifstream in(trace);
    if (!in)
        throw std::runtime_error("cannot read trace file '" + trace + "'");
    std::string line;
    while (std::getline(in, line)) {
        if (common::trim(line).empty())
            continue;
        frames.push_back(decodeHexFrame(line));
    }
    return frames;
}

/**
 * Resolve the serving-time feature scaler. Artifacts since
 * homunculus-ir v3 record the provenance either way: stored moments win,
 * and a model recorded as trained on raw features is served raw — no
 * scaler is invented for it. Only legacy artifacts (no provenance at
 * all) fall back to refitting statistics on the trace itself, the old
 * approximation. --replay-raw disables scaling entirely.
 * @p provenance receives a printable description of the choice.
 */
std::optional<ml::StandardScaler>
resolveServingScaler(const CliOptions &options,
                     const homunculus::ir::ModelIr &model,
                     const std::vector<std::vector<std::uint8_t>> &frames,
                     std::string &provenance)
{
    if (options.replayRaw) {
        provenance = "raw (unscaled)";
        return std::nullopt;
    }
    if (model.hasScaler()) {
        provenance = "artifact (training-time)";
        return ml::StandardScaler::fromMoments(model.scalerMeans,
                                               model.scalerStds);
    }
    if (model.scalerRecorded) {
        provenance = "artifact (model trained on raw features)";
        return std::nullopt;
    }
    provenance = "trace-refit (artifact predates ir v3)";
    net::FeatureExtractor extractor;
    std::vector<std::vector<double>> rows;
    for (const auto &frame : frames)
        if (auto features = extractor.extractFromWire(frame))
            rows.push_back(std::move(*features));
    if (rows.empty())
        return std::nullopt;
    math::Matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r)
        for (std::size_t c = 0; c < rows[r].size(); ++c)
            m(r, c) = rows[r][c];
    ml::StandardScaler fitted;
    fitted.fit(m);
    return fitted;
}

/** Serving mode: replay a trace through the winner on the streaming
 *  runtime and print rows/s + micro-batch latency percentiles. */
void
runReplay(const CliOptions &options, const homunculus::ir::ModelIr &model)
{
    auto frames = loadReplayTrace(options.replay);
    std::cout << "\nreplay    : " << options.replay << " ("
              << frames.size() << " frames, batch "
              << options.replayBatch << ", "
              << (options.inferJobs == 0
                      ? std::string("auto")
                      : std::to_string(options.inferJobs))
              << " infer jobs)\n";

    runtime::EngineOptions engine_options;
    engine_options.jobs = options.inferJobs;
    // The operator already sized the micro-batch with --replay-batch;
    // shard every batch rather than second-guessing with the engine's
    // default inline threshold (sub-256-row batches still run inline
    // because they produce a single shard).
    engine_options.minRowsToShard = 1;
    net::FeatureExtractor extractor;

    std::string scaler_provenance;
    std::optional<ml::StandardScaler> scaler =
        resolveServingScaler(options, model, frames, scaler_provenance);
    std::cout << "scaler    : " << scaler_provenance << "\n";

    runtime::StreamConfig stream_config;
    stream_config.batchRows = options.replayBatch;
    runtime::StreamHarness harness(
        runtime::InferenceEngine::fromModel(model, engine_options),
        extractor, std::move(scaler), stream_config);
    runtime::StreamStats stats = harness.replayWire(frames);

    std::map<int, std::size_t> verdict_counts;
    for (int verdict : stats.verdicts)
        ++verdict_counts[verdict];
    std::cout << common::format(
        "served    : %zu/%zu packets in %zu batches, %.0f rows/s\n",
        stats.rowsClassified, stats.packetsOffered, stats.batches,
        stats.rowsPerSec);
    std::cout << common::format(
        "latency   : p50 %.1f us / p99 %.1f us per batch "
        "(extract %.3fs, infer %.3fs, wall %.3fs)\n",
        stats.p50BatchLatencyUs, stats.p99BatchLatencyUs,
        stats.extractSeconds, stats.inferSeconds, stats.wallSeconds);
    std::cout << "verdicts  :";
    for (const auto &[verdict, count] : verdict_counts)
        std::cout << " class " << verdict << " x" << count;
    std::cout << "\n";
}

/**
 * Async serving mode: feed the trace into runtime::Server as an
 * open-loop arrival process at --serve-rate rows/s (0 = as fast as
 * submission runs) and report admission, batching-policy, and latency
 * statistics. Unlike --replay (whole trace, fixed micro-batches), this
 * exercises the deadline-vs-size batcher and bounded-queue shedding.
 */
void
runServe(const CliOptions &options, const homunculus::ir::ModelIr &model)
{
    auto frames = loadReplayTrace(options.serve);
    std::cout << "\nserve     : " << options.serve << " ("
              << frames.size() << " frames, maxBatch "
              << options.serveMaxBatch << ", maxDelay "
              << options.serveMaxDelayUs << " us, depth "
              << options.serveDepth << ", rate "
              << (options.serveRate <= 0.0
                      ? std::string("max")
                      : common::format("%.0f/s", options.serveRate))
              << ")\n";

    std::string scaler_provenance;
    std::optional<ml::StandardScaler> scaler =
        resolveServingScaler(options, model, frames, scaler_provenance);
    std::cout << "scaler    : " << scaler_provenance << "\n";

    runtime::EngineOptions engine_options;
    engine_options.jobs = options.inferJobs;
    engine_options.minRowsToShard = 1;

    runtime::ServerConfig server_config;
    server_config.queue.maxBatch = options.serveMaxBatch;
    server_config.queue.maxDelayUs = options.serveMaxDelayUs;
    server_config.queue.maxDepth = options.serveDepth;

    std::mutex verdict_mutex;
    std::map<int, std::size_t> verdict_counts;
    runtime::Server server(
        runtime::InferenceEngine::fromModel(model, engine_options),
        server_config,
        [&](const runtime::Request &, int verdict) {
            std::lock_guard<std::mutex> lock(verdict_mutex);
            ++verdict_counts[verdict];
        },
        std::move(scaler));

    using Clock = std::chrono::steady_clock;
    auto started = Clock::now();
    for (std::size_t i = 0; i < frames.size(); ++i) {
        if (options.serveRate > 0.0) {
            // Open-loop pacing: submit frame i at its scheduled arrival
            // time regardless of how the server is keeping up.
            auto due = started + std::chrono::duration_cast<
                                     Clock::duration>(
                                     std::chrono::duration<double>(
                                         static_cast<double>(i) /
                                         options.serveRate));
            std::this_thread::sleep_until(due);
        }
        server.submitFrame(frames[i]);
    }
    runtime::ServerStats stats = server.stop();

    std::cout << common::format(
        "admitted  : %llu rows (%llu shed, %zu malformed) in %zu "
        "batches (mean %.1f rows)\n",
        static_cast<unsigned long long>(stats.queue.accepted),
        static_cast<unsigned long long>(stats.queue.shed),
        stats.malformedFrames, stats.batches, stats.meanBatchRows);
    std::cout << common::format(
        "flushes   : %llu size / %llu deadline / %llu drain\n",
        static_cast<unsigned long long>(stats.queue.sizeFlushes),
        static_cast<unsigned long long>(stats.queue.deadlineFlushes),
        static_cast<unsigned long long>(stats.queue.drainFlushes));
    std::cout << common::format(
        "latency   : request p50 %.1f us / p99 %.1f us, batch infer "
        "p50 %.1f us / p99 %.1f us (wall %.3fs)\n",
        stats.p50RequestLatencyUs, stats.p99RequestLatencyUs,
        stats.p50BatchLatencyUs, stats.p99BatchLatencyUs,
        stats.wallSeconds);
    std::cout << "verdicts  :";
    for (const auto &[verdict, count] : verdict_counts)
        std::cout << " class " << verdict << " x" << count;
    std::cout << "\n";
}

/** Registry-aware pass-name check, mirroring the --list-platforms style. */
bool
knownPass(const std::string &name)
{
    return ir::PassRegistry::instance().find(name) != nullptr;
}

std::string
knownPassList()
{
    std::string joined;
    for (const auto &name : ir::PassRegistry::instance().names()) {
        if (!joined.empty())
            joined += ", ";
        joined += name;
    }
    return joined;
}

}  // namespace

int
main(int argc, char **argv)
{
    CliOptions options;
    if (!parseArgs(argc, argv, options)) {
        printUsage();
        return 2;
    }

    if (options.listPlatforms) {
        for (const auto &name : backends::BackendRegistry::instance().names())
            std::cout << name << "\n";
        return 0;
    }
    if (options.listPasses) {
        for (const auto &name : ir::PassRegistry::instance().names()) {
            const ir::PassInfo *pass = ir::PassRegistry::instance().find(name);
            std::cout << name << "  " << pass->description << "\n";
        }
        return 0;
    }

    if (!options.passes.empty()) {
        for (const auto &name : common::split(options.passes, ',')) {
            std::string trimmed = common::trim(name);
            if (!knownPass(trimmed)) {
                std::cerr << "homc: unknown pass '" << trimmed
                          << "' (known passes: " << knownPassList() << ")\n";
                return 2;
            }
        }
    }
    if (!options.dumpPass.empty() && !knownPass(options.dumpPass)) {
        std::cerr << "homc: unknown pass '" << options.dumpPass
                  << "' (known passes: " << knownPassList() << ")\n";
        return 2;
    }

    try {
        core::ModelSpec spec = buildSpec(options);
        core::Result<core::PlatformHandle> platform =
            buildPlatform(options);
        if (!platform.isOk()) {
            std::cerr << "homc: " << platform.status().message() << "\n";
            return 2;
        }
        platform->schedule(spec);

        core::CompileOptions compile_options;
        compile_options.bo.numInitSamples = options.init;
        compile_options.bo.numIterations = options.iters;
        compile_options.bo.costMetricKey = options.paretoMetric;
        compile_options.seed = options.seed;
        compile_options.jobs = options.jobs;
        compile_options.inferJobs = options.inferJobs;
        if (!options.passes.empty()) {
            for (const auto &name : common::split(options.passes, ','))
                compile_options.emitPasses.push_back(common::trim(name));
        }
        if (options.dumpIr) {
            std::string filter = options.dumpPass;
            compile_options.passDump =
                [filter](const std::string &pass_name,
                         const ir::ModelIr &model) {
                    if (!filter.empty() && filter != pass_name)
                        return;
                    std::cout << "-- ir for '" << model.name
                              << "' after pass " << pass_name << " --\n"
                              << ir::serializeModel(model);
                };
        }
        if (options.progress) {
            compile_options.observer =
                [](const core::ProgressEvent &event) {
                    std::cout << "[" << core::stageName(event.stage) << "] "
                              << event.specName;
                    if (!event.family.empty())
                        std::cout << "/" << event.family << " "
                                  << event.evalsDone << "/"
                                  << event.evalsTotal;
                    if (!event.message.empty())
                        std::cout << " " << event.message;
                    std::cout << "\n";
                };
        }

        std::cout << "homc: compiling '" << spec.name << "' for "
                  << platform->platform().name() << " ("
                  << options.init + options.iters << " evaluations, "
                  << (options.jobs == 0 ? std::string("auto")
                                        : std::to_string(options.jobs))
                  << " jobs)\n";

        core::Compiler compiler(compile_options);
        core::Result<core::CompileReport> compiled =
            compiler.compile(platform.value());
        if (!compiled.isOk()) {
            std::cerr << "homc: compile failed: "
                      << compiled.status().toString() << "\n";
            return 1;
        }
        const auto &model = compiled->models.front();

        std::cout << "winner    : " << core::algorithmName(model.algorithm)
                  << " (" << model.model.paramCount() << " params)\n"
                  << "objective : " << model.objective << " ("
                  << core::metricName(spec.optimizationMetric) << ")\n"
                  << "resources : " << model.report.summary() << "\n";

        if (!options.paretoMetric.empty() &&
            !model.searchHistory.front.empty()) {
            std::cout << "pareto front (" << options.paretoMetric
                      << " vs objective):\n";
            for (const auto &point :
                 model.searchHistory.front.sortedByCost()) {
                std::cout << "  " << point.cost << " -> "
                          << point.objective << "\n";
            }
        }

        if (!options.savePath.empty()) {
            ir::saveModel(options.savePath, model.model);
            std::cout << "artifact  : " << options.savePath << "\n";
        }
        if (!options.outPath.empty()) {
            std::ofstream out(options.outPath);
            if (!out)
                throw std::runtime_error("cannot write " + options.outPath);
            out << model.code;
            std::cout << "program   : " << options.outPath << " ("
                      << model.code.size() << " bytes)\n";
        }
        if (!options.replay.empty())
            runReplay(options, model.model);
        if (!options.serve.empty())
            runServe(options, model.model);
    } catch (const std::exception &error) {
        std::cerr << "homc: " << error.what() << "\n";
        return 1;
    }
    return 0;
}
