#include "homc_cli.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <stdexcept>

#include "common/string_util.hpp"
#include "runtime/fault_injector.hpp"

namespace homunculus::tools {

namespace {

/** Value-taking flags (without the leading "--"). */
const char *const kValueFlags[] = {
    "app",           "train",
    "test",          "platform",
    "algorithms",    "out",
    "save",          "pareto",
    "passes",        "replay",
    "replay-batch",  "serve",
    "serve-rate",    "serve-max-batch",
    "serve-max-delay-us",  "serve-depth",
    "serve-lanes",   "serve-backpressure",
    "serve-block-timeout-us", "serve-probe-every",
    "serve-lane-delays-us",   "serve-lane-depths",
    "serve-lane-batches",
    "serve-model",   "serve-lane-models",
    "serve-chain",   "serve-swap-after",
    "serve-fault",   "serve-retry-depth",
    "serve-fallback", "serve-breaker-threshold",
    "serve-deadline-us", "serve-shards",
    "serve-aging-us", "serve-stats-json",
    "serve-stats-every",
    "init",          "iters",
    "jobs",          "infer-jobs",
    "grid",          "tables",
    "throughput",    "latency",
    "seed",          "kernel",
};

/** Flags that take no value (for the did-you-mean pool). */
const char *const kBoolFlags[] = {
    "help",        "list-platforms", "list-passes", "progress",
    "dump-ir",     "replay-raw",     "list-kernels",
};

/** Classic edit distance, small strings only. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t subst = prev[j - 1] + (a[i - 1] != b[j - 1]);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

bool
isValueFlag(const std::string &name)
{
    for (const char *flag : kValueFlags)
        if (name == flag)
            return true;
    return false;
}

/** Closest known flag to @p name, or empty when nothing is near. */
std::string
nearestFlag(const std::string &name)
{
    std::string best;
    std::size_t best_distance = 4;  // past this a hint misleads.
    auto consider = [&](const std::string &candidate) {
        std::size_t distance = editDistance(name, candidate);
        if (distance < best_distance) {
            best_distance = distance;
            best = candidate;
        }
    };
    for (const char *flag : kValueFlags)
        consider(flag);
    for (const char *flag : kBoolFlags)
        consider(flag);
    return best;
}

/** Unsigned integer, full-string, no sign tricks ("-5" would wrap). */
bool
parseU64(const std::string &flag, const std::string &text,
         std::uint64_t &into, std::ostream &err)
{
    try {
        if (text.empty() || text.find('-') != std::string::npos)
            throw std::invalid_argument(text);
        std::size_t consumed = 0;
        into = std::stoull(text, &consumed);
        if (consumed != text.size())
            throw std::invalid_argument(text);
        return true;
    } catch (const std::exception &) {
        err << "homc: --" << flag
            << " expects a non-negative integer, got '" << text << "'\n";
        return false;
    }
}

bool
parseSize(const std::string &flag, const std::string &text,
          std::size_t &into, std::ostream &err)
{
    std::uint64_t value = 0;
    if (!parseU64(flag, text, value, err))
        return false;
    into = static_cast<std::size_t>(value);
    return true;
}

bool
parseDouble(const std::string &flag, const std::string &text,
            double &into, std::ostream &err)
{
    try {
        std::size_t consumed = 0;
        into = std::stod(text, &consumed);
        if (consumed != text.size())
            throw std::invalid_argument(text);
        return true;
    } catch (const std::exception &) {
        err << "homc: --" << flag << " expects a number, got '" << text
            << "'\n";
        return false;
    }
}

/** Comma-separated unsigned list ("250,2000"). */
bool
parseU64List(const std::string &flag, const std::string &text,
             std::vector<std::uint64_t> &into, std::ostream &err)
{
    into.clear();
    for (const std::string &field : common::split(text, ',')) {
        std::uint64_t value = 0;
        if (!parseU64(flag, common::trim(field), value, err))
            return false;
        into.push_back(value);
    }
    return true;
}

bool
parseSizeList(const std::string &flag, const std::string &text,
              std::vector<std::size_t> &into, std::ostream &err)
{
    std::vector<std::uint64_t> wide;
    if (!parseU64List(flag, text, wide, err))
        return false;
    into.assign(wide.begin(), wide.end());
    return true;
}

}  // namespace

std::vector<std::string>
knownValueFlags()
{
    return {std::begin(kValueFlags), std::end(kValueFlags)};
}

ParseResult
parseArgs(int argc, const char *const *argv, CliOptions &options,
          std::ostream &err)
{
    std::map<std::string, std::string> flags;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return ParseResult::kHelp;
        if (arg == "--list-platforms") {
            options.listPlatforms = true;
            continue;
        }
        if (arg == "--list-passes") {
            options.listPasses = true;
            continue;
        }
        if (arg == "--progress") {
            options.progress = true;
            continue;
        }
        if (arg == "--dump-ir") {
            options.dumpIr = true;
            continue;
        }
        if (arg == "--replay-raw") {
            options.replayRaw = true;
            continue;
        }
        if (arg == "--list-kernels") {
            options.listKernels = true;
            continue;
        }
        if (common::startsWith(arg, "--dump-ir=")) {
            options.dumpIr = true;
            options.dumpPass = arg.substr(std::string("--dump-ir=").size());
            continue;
        }
        if (!common::startsWith(arg, "--")) {
            err << "homc: bad argument '" << arg << "'\n";
            return ParseResult::kError;
        }
        // Gate every flag against the known set right here, so a
        // misspelled boolean flag (--progess) gets the same
        // did-you-mean treatment as a misspelled value flag and never
        // swallows the next token as its value.
        std::string name = arg.substr(2);
        if (!isValueFlag(name)) {
            err << "homc: unknown flag '--" << name << "'";
            std::string hint = nearestFlag(name);
            if (!hint.empty())
                err << " (did you mean '--" << hint << "'?)";
            err << "\n";
            return ParseResult::kError;
        }
        if (i + 1 >= argc) {
            err << "homc: --" << name << " expects a value\n";
            return ParseResult::kError;
        }
        // --serve-model is the one repeatable flag: each NAME=FILE adds
        // a model (or stacks a version onto an already-named one), so
        // it is consumed here instead of the last-one-wins flag map.
        if (name == "serve-model") {
            std::string value = argv[++i];
            auto eq = value.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 == value.size()) {
                err << "homc: --serve-model expects NAME=IR_FILE, got '"
                    << value << "'\n";
                return ParseResult::kError;
            }
            options.serveModels.emplace_back(
                common::trim(value.substr(0, eq)),
                common::trim(value.substr(eq + 1)));
            continue;
        }
        // --serve-fault is repeatable too: each SITE:RATE[:SEED] arms
        // one injection site. Validated right here so a typo'd spec
        // errors before any serving starts.
        if (name == "serve-fault") {
            std::string value = common::trim(argv[++i]);
            try {
                if (runtime::faults::FaultInjector::parseSpec(value)
                        .empty())
                    throw std::runtime_error(
                        "faults: empty spec '" + value + "'");
            } catch (const std::exception &e) {
                err << "homc: --serve-fault: " << e.what() << "\n";
                return ParseResult::kError;
            }
            options.serveFaults.push_back(std::move(value));
            continue;
        }
        flags[name] = argv[++i];
    }

    // Every take* consumes its entry, so whatever is left in the map
    // afterwards is a flag we do not know — an error, not a silent
    // no-op (--serve-max-dely-us used to be accepted and ignored).
    bool ok = true;
    auto take = [&](const char *name, std::string &into) {
        auto it = flags.find(name);
        if (it == flags.end())
            return;
        into = it->second;
        flags.erase(it);
    };
    auto take_size = [&](const char *name, std::size_t &into) {
        auto it = flags.find(name);
        if (it == flags.end())
            return;
        ok = parseSize(name, it->second, into, err) && ok;
        flags.erase(it);
    };
    auto take_u64 = [&](const char *name, std::uint64_t &into) {
        auto it = flags.find(name);
        if (it == flags.end())
            return;
        ok = parseU64(name, it->second, into, err) && ok;
        flags.erase(it);
    };
    auto take_double = [&](const char *name, double &into, bool *set) {
        auto it = flags.find(name);
        if (it == flags.end())
            return;
        ok = parseDouble(name, it->second, into, err) && ok;
        if (set)
            *set = true;
        flags.erase(it);
    };

    take("app", options.app);
    take("train", options.trainCsv);
    take("test", options.testCsv);
    take("platform", options.platform);
    take("algorithms", options.algorithms);
    take("out", options.outPath);
    take("save", options.savePath);
    take("pareto", options.paretoMetric);
    take("passes", options.passes);
    take("replay", options.replay);
    take_size("replay-batch", options.replayBatch);
    take("serve", options.serve);
    take_double("serve-rate", options.serveRate, nullptr);
    take_size("serve-max-batch", options.serveMaxBatch);
    take_u64("serve-max-delay-us", options.serveMaxDelayUs);
    take_size("serve-depth", options.serveDepth);
    take_size("serve-lanes", options.serveLanes);
    take_u64("serve-block-timeout-us", options.serveBlockTimeoutUs);
    take_size("serve-probe-every", options.serveProbeEvery);
    if (auto it = flags.find("serve-backpressure"); it != flags.end()) {
        std::string mode = common::toLower(common::trim(it->second));
        if (mode == "shed") {
            options.serveBackpressure = runtime::BackpressureMode::kShed;
        } else if (mode == "block") {
            options.serveBackpressure =
                runtime::BackpressureMode::kBlockWithTimeout;
        } else if (mode == "early-drop") {
            options.serveBackpressure =
                runtime::BackpressureMode::kEarlyDrop;
        } else {
            err << "homc: --serve-backpressure expects "
                   "shed|block|early-drop, got '"
                << it->second << "'\n";
            ok = false;
        }
        flags.erase(it);
    }
    if (auto it = flags.find("serve-lane-delays-us"); it != flags.end()) {
        ok = parseU64List("serve-lane-delays-us", it->second,
                          options.serveLaneDelaysUs, err) &&
             ok;
        flags.erase(it);
    }
    if (auto it = flags.find("serve-lane-depths"); it != flags.end()) {
        ok = parseSizeList("serve-lane-depths", it->second,
                           options.serveLaneDepths, err) &&
             ok;
        flags.erase(it);
    }
    if (auto it = flags.find("serve-lane-batches"); it != flags.end()) {
        ok = parseSizeList("serve-lane-batches", it->second,
                           options.serveLaneBatches, err) &&
             ok;
        flags.erase(it);
    }
    if (auto it = flags.find("serve-lane-models"); it != flags.end()) {
        options.serveLaneModels.clear();
        for (const std::string &field : common::split(it->second, ','))
            options.serveLaneModels.push_back(common::trim(field));
        flags.erase(it);
    }
    if (auto it = flags.find("serve-chain"); it != flags.end()) {
        for (const std::string &field : common::split(it->second, ',')) {
            std::string entry = common::trim(field);
            auto eq = entry.find('=');
            auto colon =
                eq == std::string::npos ? eq : entry.rfind(':', eq);
            std::uint64_t label = 0;
            if (eq == std::string::npos || colon == std::string::npos ||
                colon == 0 || colon + 1 >= eq || eq + 1 >= entry.size() ||
                !parseU64("serve-chain",
                          entry.substr(colon + 1, eq - colon - 1), label,
                          err)) {
                err << "homc: --serve-chain entries are FROM:LABEL=TO, "
                       "got '"
                    << entry << "'\n";
                ok = false;
                continue;
            }
            runtime::ChainRule rule;
            rule.fromModel = entry.substr(0, colon);
            rule.label = static_cast<int>(label);
            rule.toModel = entry.substr(eq + 1);
            options.serveChain.push_back(std::move(rule));
        }
        flags.erase(it);
    }
    if (auto it = flags.find("serve-swap-after"); it != flags.end()) {
        std::string value = common::trim(it->second);
        auto colon = value.find(':');
        auto eq = value.rfind('=');
        if (colon == std::string::npos || eq == std::string::npos ||
            colon == 0 || eq <= colon + 1 || eq + 1 >= value.size() ||
            !parseSize("serve-swap-after", value.substr(0, colon),
                       options.serveSwapAfter, err) ||
            !parseU64("serve-swap-after", value.substr(eq + 1),
                      options.serveSwapVersion, err) ||
            options.serveSwapAfter == 0 || options.serveSwapVersion == 0) {
            err << "homc: --serve-swap-after expects N:NAME=V (N, V "
                   "positive), got '"
                << it->second << "'\n";
            ok = false;
        } else {
            options.serveSwapModel =
                value.substr(colon + 1, eq - colon - 1);
        }
        flags.erase(it);
    }
    take_size("serve-retry-depth", options.serveRetryDepth);
    take_size("serve-breaker-threshold", options.serveBreakerThreshold);
    take_u64("serve-deadline-us", options.serveDeadlineUs);
    take_size("serve-shards", options.serveShards);
    take_u64("serve-aging-us", options.serveAgingUs);
    take("serve-stats-json", options.serveStatsJson);
    take_size("serve-stats-every", options.serveStatsEvery);
    if (auto it = flags.find("serve-fallback"); it != flags.end()) {
        for (const std::string &field : common::split(it->second, ',')) {
            std::string entry = common::trim(field);
            auto eq = entry.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 >= entry.size()) {
                err << "homc: --serve-fallback entries are "
                       "MODEL=NAME|LABEL, got '"
                    << entry << "'\n";
                ok = false;
                continue;
            }
            runtime::FallbackRule rule;
            rule.model = common::trim(entry.substr(0, eq));
            std::string to = common::trim(entry.substr(eq + 1));
            // An all-digits destination is a static verdict label;
            // anything else names the fallback model.
            if (to.find_first_not_of("0123456789") ==
                std::string::npos) {
                std::uint64_t label = 0;
                if (!parseU64("serve-fallback", to, label, err)) {
                    ok = false;
                    continue;
                }
                rule.label = static_cast<int>(label);
            } else {
                rule.toModel = std::move(to);
            }
            options.serveFallbacks.push_back(std::move(rule));
        }
        flags.erase(it);
    }
    take_size("init", options.init);
    take_size("iters", options.iters);
    take_size("jobs", options.jobs);
    take_size("infer-jobs", options.inferJobs);
    take_size("grid", options.grid);
    take_size("tables", options.tables);
    take_double("throughput", options.throughputGpps,
                &options.throughputSet);
    take_double("latency", options.latencyNs, &options.latencySet);
    take_u64("seed", options.seed);
    if (auto it = flags.find("kernel"); it != flags.end()) {
        std::string target = common::toLower(common::trim(it->second));
        if (target != "auto" && target != "scalar" && target != "avx2" &&
            target != "neon") {
            err << "homc: --kernel expects auto|scalar|avx2|neon, got '"
                << it->second << "'\n";
            ok = false;
        } else {
            options.kernel = target;
        }
        flags.erase(it);
    }

    if (!flags.empty()) {
        // The parse loop admitted only kValueFlags entries, so a
        // leftover means a flag is listed there without a take* call —
        // a table/parser drift, not a user error.
        for (const auto &[name, value] : flags) {
            (void)value;
            err << "homc: flag '--" << name
                << "' is known but unhandled (flag-table drift)\n";
        }
        return ParseResult::kError;
    }
    if (!ok)
        return ParseResult::kError;

    if (options.serveLanes == 0) {
        err << "homc: --serve-lanes expects at least 1 lane\n";
        return ParseResult::kError;
    }
    if (options.serveProbeEvery == 0) {
        err << "homc: --serve-probe-every expects a positive number\n";
        return ParseResult::kError;
    }
    if (options.serveShards == 0) {
        err << "homc: --serve-shards expects at least 1 shard\n";
        return ParseResult::kError;
    }
    if (options.serve.empty() &&
        (options.serveShards != 1 || options.serveAgingUs != 0)) {
        err << "homc: --serve-shards/--serve-aging-us require --serve\n";
        return ParseResult::kError;
    }
    if (options.serve.empty() && (!options.serveStatsJson.empty() ||
                                  options.serveStatsEvery != 0)) {
        err << "homc: --serve-stats-json/--serve-stats-every require "
               "--serve\n";
        return ParseResult::kError;
    }
    auto lane_list_fits = [&](const char *name, std::size_t length) {
        if (length == 0 || length == options.serveLanes)
            return true;
        err << "homc: --" << name << " lists " << length
            << " lanes but --serve-lanes is " << options.serveLanes
            << "\n";
        return false;
    };
    if (!lane_list_fits("serve-lane-delays-us",
                        options.serveLaneDelaysUs.size()) ||
        !lane_list_fits("serve-lane-depths",
                        options.serveLaneDepths.size()) ||
        !lane_list_fits("serve-lane-batches",
                        options.serveLaneBatches.size()) ||
        !lane_list_fits("serve-lane-models",
                        options.serveLaneModels.size()))
        return ParseResult::kError;

    if (!options.serveModels.empty() && options.serve.empty()) {
        err << "homc: --serve-model requires --serve\n";
        return ParseResult::kError;
    }
    if (options.serveModels.empty() &&
        (!options.serveLaneModels.empty() ||
         !options.serveChain.empty() || options.serveSwapAfter != 0)) {
        err << "homc: --serve-lane-models/--serve-chain/"
               "--serve-swap-after require --serve-model\n";
        return ParseResult::kError;
    }
    if (options.serve.empty() &&
        (!options.serveFaults.empty() || options.serveRetryDepth != 0)) {
        err << "homc: --serve-fault/--serve-retry-depth require "
               "--serve\n";
        return ParseResult::kError;
    }
    if (options.serveModels.empty() &&
        (!options.serveFallbacks.empty() ||
         options.serveBreakerThreshold != 0 ||
         options.serveDeadlineUs != 0)) {
        err << "homc: --serve-fallback/--serve-breaker-threshold/"
               "--serve-deadline-us require --serve-model\n";
        return ParseResult::kError;
    }
    if (!options.serveModels.empty()) {
        // Resolve every model reference against the --serve-model list
        // here, where the error can name the flag, instead of letting
        // the registry throw mid-run.
        auto loads_of = [&](const std::string &name) {
            std::size_t count = 0;
            for (const auto &[model, path] : options.serveModels) {
                (void)path;
                count += model == name;
            }
            return count;
        };
        auto known_model = [&](const char *flag,
                               const std::string &name) {
            if (name.empty() || loads_of(name) > 0)
                return true;
            err << "homc: --" << flag << " references model '" << name
                << "' but no --serve-model loads it\n";
            return false;
        };
        for (const std::string &name : options.serveLaneModels)
            if (!known_model("serve-lane-models", name))
                return ParseResult::kError;
        for (const runtime::ChainRule &rule : options.serveChain)
            if (!known_model("serve-chain", rule.fromModel) ||
                !known_model("serve-chain", rule.toModel))
                return ParseResult::kError;
        for (const runtime::FallbackRule &rule : options.serveFallbacks)
            if (!known_model("serve-fallback", rule.model) ||
                !known_model("serve-fallback", rule.toModel))
                return ParseResult::kError;
        if (options.serveSwapAfter != 0) {
            if (!known_model("serve-swap-after", options.serveSwapModel))
                return ParseResult::kError;
            if (options.serveSwapVersion >
                loads_of(options.serveSwapModel)) {
                err << "homc: --serve-swap-after wants '"
                    << options.serveSwapModel << "' v"
                    << options.serveSwapVersion << " but only "
                    << loads_of(options.serveSwapModel)
                    << " version(s) are loaded\n";
                return ParseResult::kError;
            }
        }
    }

    if (options.listPlatforms || options.listPasses ||
        options.listKernels)
        return ParseResult::kOk;
    // Registry serving runs pre-compiled artifacts — no --app/--train
    // needed (and none is consulted).
    if (!options.serveModels.empty())
        return ParseResult::kOk;
    if (options.app.empty() && options.trainCsv.empty()) {
        err << "homc: need --app or --train/--test\n";
        return ParseResult::kError;
    }
    return ParseResult::kOk;
}

std::vector<runtime::QueuePolicy>
lanePolicies(const CliOptions &options)
{
    std::vector<runtime::QueuePolicy> policies(options.serveLanes);
    for (std::size_t lane = 0; lane < options.serveLanes; ++lane) {
        runtime::QueuePolicy &policy = policies[lane];
        // Apply the queue's clamps here too, so --serve's printout
        // shows the policy actually in force, not the raw flags.
        policy.maxBatch = options.serveLaneBatches.empty()
                              ? options.serveMaxBatch
                              : options.serveLaneBatches[lane];
        if (policy.maxBatch == 0)
            policy.maxBatch = 1;
        policy.maxDelayUs =
            std::min(options.serveLaneDelaysUs.empty()
                         ? options.serveMaxDelayUs
                         : options.serveLaneDelaysUs[lane],
                     runtime::kMaxQueueDelayUs);
        policy.maxDepth = options.serveLaneDepths.empty()
                              ? options.serveDepth
                              : options.serveLaneDepths[lane];
    }
    return policies;
}

std::size_t
laneForFrame(std::size_t index, const CliOptions &options)
{
    if (options.serveLanes <= 1)
        return 0;
    if (index % options.serveProbeEvery == 0)
        return 0;
    // Round-robin by bulk ordinal, not by the global index: the global
    // index modulo (lanes - 1) skips the residues probe frames occupy,
    // which can starve a bulk lane outright when probe-every shares a
    // factor with the bulk-lane count (e.g. 3 lanes, probe-every 2).
    std::size_t probes_before = (index - 1) / options.serveProbeEvery + 1;
    std::size_t bulk_ordinal = index - probes_before;
    return 1 + bulk_ordinal % (options.serveLanes - 1);
}

void
printUsage(std::ostream &out)
{
    out <<
        "homc — Homunculus data-plane ML compiler\n"
        "  --app ad|tc|bd           built-in application\n"
        "  --train FILE --test FILE CSV data (last column = label)\n"
        "  --platform NAME          target backend (see --list-platforms)\n"
        "  --list-platforms         enumerate registered backends\n"
        "  --algorithms LIST        comma-separated family pool\n"
        "  --init N --iters N       search budget\n"
        "  --jobs N                 parallel family searches (0 = #cores)\n"
        "  --infer-jobs N           row-shard width for scoring + replay\n"
        "                           (0 = #cores)\n"
        "  --replay TRACE           serving mode: replay iot:N or a\n"
        "                           hex-frame file through the winner\n"
        "  --replay-batch N         replay micro-batch rows (default 1024)\n"
        "  --replay-raw             skip feature standardization on replay\n"
        "                           and --serve\n"
        "  --serve TRACE            async serving mode: feed the trace\n"
        "                           through the admission queue + \n"
        "                           size-or-deadline batcher\n"
        "  --serve-rate RPS         arrival rate, rows/s (0 = max speed)\n"
        "  --serve-max-batch N      flush at N rows (default 1024)\n"
        "  --serve-max-delay-us N   flush at N us queueing (default 1000)\n"
        "  --serve-depth N          shed beyond N queued rows (0 = inf)\n"
        "  --serve-lanes N          priority lanes, lane 0 most urgent\n"
        "                           (default 1)\n"
        "  --serve-backpressure M   shed|block|early-drop (default shed)\n"
        "  --serve-block-timeout-us N  block mode: producer wait bound\n"
        "  --serve-lane-delays-us L comma list, per-lane maxDelay us\n"
        "  --serve-lane-depths L    comma list, per-lane shed depth\n"
        "  --serve-lane-batches L   comma list, per-lane flush size\n"
        "  --serve-probe-every N    every Nth frame -> lane 0 (default 16)\n"
        "  --serve-model NAME=FILE  registry serving: load a homunculus-ir\n"
        "                           artifact under NAME (repeatable; same\n"
        "                           NAME again stacks v2, v3, ...; first\n"
        "                           NAME is the default model; skips the\n"
        "                           compile entirely)\n"
        "  --serve-lane-models L    comma list, per-lane entry model\n"
        "                           (empty entry = default model)\n"
        "  --serve-chain L          comma list of FROM:LABEL=TO rules:\n"
        "                           rows FROM labels LABEL go on to TO\n"
        "  --serve-swap-after N:NAME=V  after frame N, hot-swap NAME's\n"
        "                           active plan to version V (test hook)\n"
        "  --serve-fault SITE:RATE[:SEED]  arm deterministic fault\n"
        "                           injection at SITE (engine.run,\n"
        "                           router.hop, queue.flush, ...) with\n"
        "                           Bernoulli RATE (repeatable; also via\n"
        "                           HOMUNCULUS_FAULTS env)\n"
        "  --serve-retry-depth N    bisect-retry failed batches up to N\n"
        "                           splits to isolate poison rows\n"
        "                           (default 0 = fail whole batch)\n"
        "  --serve-fallback L       comma list of MODEL=NAME|LABEL rules:\n"
        "                           while MODEL's breaker is open, rows\n"
        "                           go to model NAME or resolve as the\n"
        "                           static verdict LABEL\n"
        "  --serve-breaker-threshold N  consecutive failures that open a\n"
        "                           model's circuit breaker (default 3\n"
        "                           when --serve-fallback is given,\n"
        "                           else off)\n"
        "  --serve-deadline-us N    per-request chain budget from\n"
        "                           admission; over-budget rows skip\n"
        "                           further chain hops (0 = unbounded)\n"
        "  --serve-shards N         scale out: N independent servers\n"
        "                           (queue + batcher + engine each),\n"
        "                           frames hashed to shards by 5-tuple\n"
        "                           flow key; prints per-shard + merged\n"
        "                           stats (default 1 = unsharded)\n"
        "  --serve-aging-us N       lane-fairness aging: a lane overdue\n"
        "                           past its own deadline by N us may\n"
        "                           preempt strict priority (default 0\n"
        "                           = strict)\n"
        "  --serve-stats-json PATH  end-of-run telemetry dump: every\n"
        "                           metric (queue, lanes, models,\n"
        "                           breakers, faults, shards) + request\n"
        "                           spans as JSON ('-' = stdout)\n"
        "  --serve-stats-every N    every N submitted frames, print one\n"
        "                           live counters line to stderr\n"
        "                           (default 0 = off)\n"
        "  --kernel T               pin the CPU kernel table: auto|\n"
        "                           scalar|avx2|neon (default auto =\n"
        "                           probe; errors when T is not\n"
        "                           available on this host)\n"
        "  --list-kernels           enumerate kernel targets: which are\n"
        "                           available here and which the probe\n"
        "                           (or HOMUNCULUS_KERNELS) picks\n"
        "  --grid N                 Taurus grid side\n"
        "  --tables N               MAT stage budget\n"
        "  --throughput GPPS --latency NS\n"
        "  --pareto METRIC          multi-objective cost (cus|mus|...)\n"
        "  --passes LIST            emit-stage IR passes (--list-passes)\n"
        "  --dump-ir[=PASS]         print the IR after each emit pass\n"
        "  --list-passes            enumerate registered IR passes\n"
        "  --progress               print compile-stage progress\n"
        "  --seed N --out FILE --save ARTIFACT\n";
}

}  // namespace homunculus::tools
