/**
 * @file
 * Figure 7 reproduction: V-measure regret for Homunculus-generated
 * KMeans traffic classification under varying MAT budgets (IIsy backend).
 *
 * Paper reference: five series KMeans1..KMeans5, where KMeansN runs with
 * N available tables (1 table per cluster). More tables -> finer cluster
 * groupings -> higher V-measure; Homunculus automatically coarsens the
 * clustering when tables are scarce, trading fidelity for fit.
 */
#include <benchmark/benchmark.h>

#include <iostream>

#include "backends/mat_platform.hpp"
#include "bench_common.hpp"
#include "common/table_printer.hpp"
#include "ml/metrics.hpp"

using namespace homunculus;
using namespace homunculus::bench;

namespace {

/** Search a KMeans TC model under an N-table MAT budget. */
core::GeneratedModel
searchWithBudget(std::size_t tables, const ml::DataSplit &split)
{
    backends::MatConfig mat_config;
    mat_config.numTables = tables;
    auto platform = core::Platforms::tofino(mat_config);
    platform.constrain({1.0, 600.0}, {{}, {}, tables});

    core::ModelSpec spec;
    spec.name = "kmeans_tc_" + std::to_string(tables);
    spec.optimizationMetric = core::Metric::kVMeasure;
    spec.algorithms = {core::Algorithm::kKMeans};
    spec.dataLoader = [split] { return split; };

    auto options = searchBudget(3, 6);
    return core::searchSpec(spec, platform, options, split).value();
}

void
BM_MatPipelineProcess(benchmark::State &state)
{
    auto split = loadTc();
    ml::KMeansConfig config;
    config.numClusters = 5;
    ml::KMeans kmeans(config);
    kmeans.fit(split.train.x);
    auto ir = ir::lowerKMeans(kmeans, common::FixedPointFormat::q88(),
                              "km", split.train.numFeatures());
    auto pipeline = backends::MatPipeline::compileKMeans(ir);
    std::size_t row = 0;
    for (auto _ : state) {
        int label = pipeline.process(
            split.test.x.row(row++ % split.test.numSamples()));
        benchmark::DoNotOptimize(label);
    }
}
BENCHMARK(BM_MatPipelineProcess);

}  // namespace

int
main(int argc, char **argv)
{
    std::cout << "=== Figure 7: V-measure for generated KMeans under "
                 "1..5 available MATs (IIsy backend) ===\n\n";

    auto split = loadTcClustering();

    common::TablePrinter table({"Series", "MAT budget", "Clusters",
                                "Tables used", "Best V-score",
                                "Per-iter V-scores"});
    std::vector<double> best_scores;

    // KMeans1: a single table can only host one coarse grouping — every
    // packet lands in the same cluster, V-measure 0 by definition.
    {
        std::vector<int> one_cluster(split.test.numSamples(), 0);
        double v = ml::vMeasure(split.test.y, one_cluster);
        best_scores.push_back(v);
        table.addRow({"KMeans1", "1", "1", "1",
                      common::TablePrinter::cell(100.0 * v, 2),
                      "(degenerate single grouping)"});
    }

    for (std::size_t budget = 2; budget <= 5; ++budget) {
        auto generated = searchWithBudget(budget, split);
        best_scores.push_back(generated.objective);

        std::string series;
        for (const auto &record : generated.searchHistory.history) {
            if (!series.empty())
                series += " ";
            series += common::TablePrinter::cell(
                100.0 * record.result.objective, 1);
        }
        table.addRow(
            {"KMeans" + std::to_string(budget), std::to_string(budget),
             std::to_string(generated.model.centroids.size()),
             std::to_string(generated.report.matTables),
             common::TablePrinter::cell(100.0 * generated.objective, 2),
             series});
    }
    table.print();

    std::cout << "\n";
    printPaperNote("V-score rises with table budget: K5 > K4 > ... > K1; "
                   "Homunculus coarsens clusters to fit scarce MATs");
    bool monotone = true;
    for (std::size_t i = 1; i < best_scores.size(); ++i)
        monotone &= best_scores[i] >= best_scores[i - 1] - 0.02;
    std::cout << "  [shape] best V-score non-decreasing in MAT budget: "
              << (monotone ? "YES" : "NO") << "\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
