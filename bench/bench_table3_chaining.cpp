/**
 * @file
 * Table 3 reproduction: resource scaling for application-chaining
 * strategies on a single Taurus switch.
 *
 * Paper reference (Table 3) — four copies of the AD DNN:
 *   DNN > DNN > DNN > DNN          24 CUs  24 MUs
 *   DNN | DNN | DNN | DNN          24 CUs  24 MUs
 *   DNN > (DNN | DNN) > DNN        24 CUs  24 MUs
 *
 * The paper's observation: resource totals are identical across chaining
 * strategies because model-management glue folds into CUs already in use.
 * We reproduce the invariance (same totals for all three strategies) and
 * additionally report the latency/throughput composition, which *does*
 * depend on the strategy.
 */
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/table_printer.hpp"
#include "core/schedule.hpp"

using namespace homunculus;
using namespace homunculus::bench;

namespace {

/** Micro-timing: schedule composition over a 4-model DAG. */
void
BM_ComposeResources(benchmark::State &state)
{
    core::ModelSpec a = appSpec(App::kAd);
    a.name = "ad_0";
    core::ModelSpec b = a, c = a, d = a;
    b.name = "ad_1";
    c.name = "ad_2";
    d.name = "ad_3";
    std::map<std::string, backends::ResourceReport> reports;
    for (const auto &name : {"ad_0", "ad_1", "ad_2", "ad_3"}) {
        backends::ResourceReport report;
        report.computeUnits = 6;
        report.memoryUnits = 6;
        report.latencyNs = 40;
        report.throughputGpps = 1.0;
        reports[name] = report;
    }
    auto node = core::leaf(a) > (b | c) > core::leaf(d);
    for (auto _ : state) {
        auto resources = core::composeResources(node, reports);
        benchmark::DoNotOptimize(resources.computeUnits);
    }
}
BENCHMARK(BM_ComposeResources);

}  // namespace

int
main(int argc, char **argv)
{
    std::cout << "=== Table 3: resource scaling for app-chaining "
                 "strategies (4x AD DNN on one Taurus switch) ===\n\n";

    // Train one AD model and virtualize four copies of it, exactly like
    // the paper's experiment.
    auto platform = paperTaurus();
    auto split = loadAd();
    auto trained = trainBaseline(App::kAd, split, platform.platform());

    core::ModelSpec specs[4];
    std::map<std::string, backends::ResourceReport> reports;
    for (int i = 0; i < 4; ++i) {
        specs[i] = appSpec(App::kAd);
        specs[i].name = "ad_" + std::to_string(i);
        reports[specs[i].name] = trained.report;
    }

    struct Strategy
    {
        std::string notation;
        core::ScheduleNode node;
    };
    std::vector<Strategy> strategies;
    strategies.push_back(
        {"DNN > DNN > DNN > DNN",
         specs[0] > specs[1] > specs[2] > specs[3]});
    strategies.push_back(
        {"DNN | DNN | DNN | DNN",
         specs[0] | specs[1] | specs[2] | specs[3]});
    strategies.push_back(
        {"DNN > (DNN | DNN) > DNN",
         core::leaf(specs[0]) > (specs[1] | specs[2]) >
             core::leaf(specs[3])});

    common::TablePrinter table(
        {"Model", "CUs", "MUs", "Latency(ns)", "Thr(Gpps)"});
    std::vector<core::ScheduleResources> totals;
    for (const auto &strategy : strategies) {
        auto resources = core::composeResources(strategy.node, reports);
        totals.push_back(resources);
        table.addRow({strategy.notation,
                      common::TablePrinter::cell(
                          static_cast<long long>(resources.computeUnits)),
                      common::TablePrinter::cell(
                          static_cast<long long>(resources.memoryUnits)),
                      common::TablePrinter::cell(resources.latencyNs, 1),
                      common::TablePrinter::cell(resources.throughputGpps,
                                                 2)});
    }
    table.print();

    std::cout << "\n";
    printPaperNote("all three strategies: 24 CUs / 24 MUs (identical "
                   "totals; glue logic is negligible)");
    bool invariant = totals[0].computeUnits == totals[1].computeUnits &&
                     totals[1].computeUnits == totals[2].computeUnits &&
                     totals[0].memoryUnits == totals[1].memoryUnits &&
                     totals[1].memoryUnits == totals[2].memoryUnits;
    std::cout << "  [shape] CU/MU totals invariant across strategies: "
              << (invariant ? "YES" : "NO") << "\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
