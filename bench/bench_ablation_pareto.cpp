/**
 * @file
 * Ablation: multi-objective search — the F1 / compute-unit trade-off.
 *
 * The paper's §3 framing ("the most efficient model will use as many
 * resources as needed without over-provisioning") is fundamentally a
 * Pareto statement. This bench runs the optimizer in random-scalarization
 * multi-objective mode (objective = F1, cost = CUs) on the AD design
 * space and prints the resulting front: the menu of models an operator
 * can pick from when the switch is shared.
 */
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/table_printer.hpp"
#include "core/design_space.hpp"
#include "core/trainer.hpp"

using namespace homunculus;
using namespace homunculus::bench;

int
main(int argc, char **argv)
{
    std::cout << "=== Ablation: Pareto front of F1 vs. compute units "
                 "(AD DNN, multi-objective BO) ===\n\n";

    auto platform = paperTaurus();
    core::ModelSpec spec = appSpec(App::kAd);
    auto split = spec.dataLoader();
    auto space = core::buildDesignSpace(core::Algorithm::kDnn, spec,
                                        platform.platform());

    auto objective =
        [&](const opt::Configuration &config) -> opt::EvalResult {
        auto evaluation = core::evaluateCandidate(
            core::Algorithm::kDnn, config, spec, split,
            platform.platform(), kBenchSeed);
        return core::toEvalResult(evaluation);
    };

    opt::BoConfig bo_config;
    bo_config.numInitSamples = 6;
    bo_config.numIterations = 18;
    bo_config.costMetricKey = "cus";
    bo_config.seed = kBenchSeed;
    opt::BayesianOptimizer optimizer(space, bo_config);
    auto result = optimizer.optimize(objective);

    common::TablePrinter table({"CUs", "F1", "Configuration"});
    for (const auto &point : result.front.sortedByCost()) {
        table.addRow({common::TablePrinter::cell(point.cost, 0),
                      common::TablePrinter::cell(100.0 * point.objective,
                                                 2),
                      point.config.toString().substr(0, 60)});
    }
    table.print();

    std::cout << "\n  front size: " << result.front.size()
              << " non-dominated models out of "
              << result.history.size() << " evaluations\n"
              << "  hypervolume (ref 0 F1 / 256 CUs): "
              << common::TablePrinter::cell(
                     result.front.hypervolume(0.0, 256.0), 1)
              << "\n";

    auto sorted = result.front.sortedByCost();
    bool trade_off = sorted.size() >= 2 &&
                     sorted.front().cost < sorted.back().cost &&
                     sorted.front().objective < sorted.back().objective;
    std::cout << "  [shape] front exposes a real quality/resource "
                 "trade-off: "
              << (trade_off ? "YES" : "NO") << "\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
