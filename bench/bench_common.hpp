/**
 * @file
 * Shared experiment setup for the paper-reproduction benches.
 *
 * Defines the three applications of the paper's evaluation (§5) — anomaly
 * detection (AD), traffic classification (TC), botnet detection (BD) —
 * with their hand-tuned baseline architectures and data loaders, plus the
 * helpers every bench uses to train baselines and run Homunculus searches
 * under the paper's constraints (1 GPkt/s, 500 ns, 16x16 Taurus grid).
 */
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/generate.hpp"
#include "data/anomaly_generator.hpp"
#include "data/flowmarker.hpp"
#include "data/iot_traffic_generator.hpp"
#include "data/p2p_traces.hpp"

namespace homunculus::bench {

/** Global experiment seed; every bench derives from it. */
constexpr std::uint64_t kBenchSeed = 2206'05592;  // arXiv id of the paper.

/** The three §5 applications. */
enum class App { kAd, kTc, kBd };

std::string appName(App app);

/** Data loaders (deterministic, paper-like difficulty). */
ml::DataSplit loadAd();
ml::DataSplit loadTc();

/**
 * TC data for the Figure 7 clustering experiment: lower overlap so the
 * 5 device archetypes form real clusters (unsupervised KMeans can only
 * reward extra tables when the cluster structure exists).
 */
ml::DataSplit loadTcClustering();

/**
 * BD data: train on flow-level flowmarkers, test on per-packet partial
 * histograms (paper §5.1.2's reaction-time evaluation).
 */
ml::DataSplit loadBd();

/** ModelSpec for an app (DNN family, F1 objective). */
core::ModelSpec appSpec(App app);

/** The hand-tuned baseline architectures (paper Table 2). */
ml::MlpConfig baselineConfig(App app, const ml::DataSplit &split);

/** Train the baseline and evaluate it on @p platform (quantized). */
core::CandidateEvaluation trainBaseline(App app, const ml::DataSplit &split,
                                        const backends::Platform &platform);

/** The paper's Taurus target: 16x16 grid, 1 GPkt/s, 500 ns. */
core::PlatformHandle paperTaurus();

/**
 * Search options used by the table benches (paper-scale-ish budget).
 * Returned as the session API's CompileOptions; pass to core::Compiler
 * or core::searchSpec().
 */
core::CompileOptions searchBudget(std::size_t init = 5,
                                  std::size_t iterations = 15);

/** Print a "paper reported vs. measured" footnote line. */
void printPaperNote(const std::string &note);

/**
 * Random quantized IRs at paper-plausible sizes (hundreds to a few
 * thousand parameters — they must fit a switch pipeline) for the
 * throughput benches; inference cost does not depend on the weight
 * values, so training is skipped. One per family:
 * MLP 16 -> 32 -> 32 -> 2 (the AD-like baseline shape), 8-centroid
 * KMeans, 4-class SVM, depth-8 complete tree — all on 16 features.
 */
ir::ModelIr benchMlpIr();
ir::ModelIr benchKMeansIr();
ir::ModelIr benchSvmIr();
ir::ModelIr benchTreeIr();

/** Random feature matrix for the bench models (16 columns). */
math::Matrix benchFeatures(std::size_t rows, std::size_t cols);

/**
 * Machine-readable bench output. Benches accept `--json PATH`
 * (extractJsonPath strips it from argv before the bench library parses
 * the rest), collect one flat record per measurement, and write a single
 * JSON document: {"benchmarks": [{"name": ..., <metric>: <number>,
 * ...}]}. CI runs the throughput benches with --json and uploads the
 * files, so the repo's perf trajectory is tracked per commit.
 */
class BenchJson
{
  public:
    /** Add one record: a name plus (metric, value) pairs. */
    void add(const std::string &name,
             const std::vector<std::pair<std::string, double>> &metrics);

    bool empty() const { return records_.empty(); }

    /** Serialize all records; returns false (and prints to stderr) when
     *  the file cannot be written. */
    bool write(const std::string &path) const;

  private:
    struct Record
    {
        std::string name;
        std::vector<std::pair<std::string, double>> metrics;
    };
    std::vector<Record> records_;
};

/** Find and remove "--json PATH" from argv; returns PATH or "". */
std::string extractJsonPath(int &argc, char **argv);

}  // namespace homunculus::bench
