/**
 * @file
 * Micro-kernel timings (google-benchmark): the hot paths of the compiler
 * and its simulators — matrix multiply, MLP training epoch, fixed-point
 * inference, MAT pipeline lookup, MapReduce stream simulation, surrogate
 * fit + acquisition.
 */
#include <benchmark/benchmark.h>

#include "backends/mapreduce_sim.hpp"
#include "backends/mat_platform.hpp"
#include "bench_common.hpp"
#include "opt/bayes_opt.hpp"

using namespace homunculus;
using namespace homunculus::bench;

namespace {

void
BM_MatMul(benchmark::State &state)
{
    auto n = static_cast<std::size_t>(state.range(0));
    common::Rng rng(1);
    math::Matrix a(n, n), b(n, n);
    for (double &v : a.data())
        v = rng.gaussian(0, 1);
    for (double &v : b.data())
        v = rng.gaussian(0, 1);
    for (auto _ : state) {
        auto c = a.matmul(b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128)->Complexity();

void
BM_MlpTrainEpoch(benchmark::State &state)
{
    auto split = loadAd();
    ml::MlpConfig config = baselineConfig(App::kAd, split);
    config.epochs = 1;
    for (auto _ : state) {
        ml::Mlp mlp(config);
        double loss = mlp.train(split.train);
        benchmark::DoNotOptimize(loss);
    }
}
BENCHMARK(BM_MlpTrainEpoch)->Unit(benchmark::kMillisecond);

void
BM_QuantizedMlpInference(benchmark::State &state)
{
    auto split = loadAd();
    auto platform = paperTaurus();
    auto baseline = trainBaseline(App::kAd, split, platform.platform());
    std::size_t row = 0;
    for (auto _ : state) {
        int label = ir::executeIr(
            baseline.model,
            split.test.x.row(row++ % split.test.numSamples()));
        benchmark::DoNotOptimize(label);
    }
}
BENCHMARK(BM_QuantizedMlpInference);

void
BM_MapReduceStream(benchmark::State &state)
{
    auto split = loadAd();
    auto platform = paperTaurus();
    auto baseline = trainBaseline(App::kAd, split, platform.platform());
    backends::MapReduceSimulator sim;
    for (auto _ : state) {
        auto stream = sim.runStream(baseline.model, split.test.x);
        benchmark::DoNotOptimize(stream.labels.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(split.test.numSamples()));
}
BENCHMARK(BM_MapReduceStream)->Unit(benchmark::kMillisecond);

void
BM_MatLookupPipeline(benchmark::State &state)
{
    auto split = loadTc();
    ml::KMeansConfig config;
    config.numClusters = 5;
    ml::KMeans kmeans(config);
    kmeans.fit(split.train.x);
    auto ir_model = ir::lowerKMeans(kmeans, common::FixedPointFormat::q88(),
                                    "km", split.train.numFeatures());
    auto pipeline = backends::MatPipeline::compileKMeans(ir_model);
    std::size_t row = 0;
    for (auto _ : state) {
        int label = pipeline.process(
            split.test.x.row(row++ % split.test.numSamples()));
        benchmark::DoNotOptimize(label);
    }
}
BENCHMARK(BM_MatLookupPipeline);

void
BM_SurrogateFitAndSuggest(benchmark::State &state)
{
    // Cost of one BO iteration's model machinery on synthetic history.
    common::Rng rng(5);
    std::vector<std::vector<double>> rows;
    std::vector<double> objectives;
    for (int i = 0; i < 30; ++i) {
        rows.push_back({rng.uniform(0, 1), rng.uniform(0, 1),
                        rng.uniform(0, 1)});
        objectives.push_back(rng.uniform(0, 1));
    }
    auto x = math::Matrix::fromRows(rows);
    for (auto _ : state) {
        ml::ForestConfig config;
        config.numTrees = 30;
        ml::RandomForestRegressor surrogate(config);
        surrogate.train(x, objectives);
        double total = 0;
        for (int c = 0; c < 600; ++c) {
            auto pred = surrogate.predictWithVariance(
                {rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)});
            total += pred.mean;
        }
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_SurrogateFitAndSuggest)->Unit(benchmark::kMillisecond);

void
BM_SpatialCodegen(benchmark::State &state)
{
    auto split = loadAd();
    auto platform = paperTaurus();
    auto baseline = trainBaseline(App::kAd, split, platform.platform());
    for (auto _ : state) {
        auto code = platform.platform().generateCode(baseline.model);
        benchmark::DoNotOptimize(code.data());
    }
}
BENCHMARK(BM_SpatialCodegen);

}  // namespace

BENCHMARK_MAIN();
