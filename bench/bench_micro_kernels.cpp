/**
 * @file
 * Micro-kernel throughput per dispatch target (google-benchmark): every
 * vectorized kernel in src/kernels/ measured rows/s against the scalar
 * reference table, on paper-plausible model shapes. Benchmarks are
 * registered dynamically, one per target the host can actually run, so
 * an AVX2 box reports int8_gemm/scalar next to int8_gemm/avx2 and the
 * speedup is a single division away.
 *
 * This bench is also the vectorization acceptance bar: when the AVX2
 * table is available, the int8 GEMM must deliver >= 1.5x the scalar
 * table's rows/s or the process exits non-zero — CI runs it, so a
 * regression that quietly falls back to scalar (or a "vectorized"
 * kernel that is not actually faster) fails the build instead of
 * shipping. The ratio lands in the --json report (record
 * `int8_gemm_speedup`) alongside the per-kernel rows/s records.
 *
 * Inputs are pre-quantized (ir::QuantizedMatrix), so the measured loop
 * is the kernel itself, not the double->raw-word front end.
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <map>
#include <string>

#include "backends/mat_pipeline.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "ir/exec_plan.hpp"
#include "ir/model_ir.hpp"
#include "kernels/kernel_dispatch.hpp"

using namespace homunculus;

namespace {

constexpr std::size_t kBatchRows = 4096;

std::int32_t
randomWord(common::Rng &rng, const common::FixedPointFormat &format)
{
    std::int64_t hi = (std::int64_t{1} << (format.totalBits() - 1)) - 1;
    return static_cast<std::int32_t>(rng.uniformInt(-hi - 1, hi));
}

/** AD-baseline-shaped MLP (16 -> 32 -> 32 -> 2) at @p format. */
ir::ModelIr
gemmModel(const common::FixedPointFormat &format)
{
    common::Rng rng(11);
    ir::ModelIr model;
    model.kind = ir::ModelKind::kMlp;
    model.format = format;
    model.inputDim = 16;
    model.numClasses = 2;
    model.activation = ml::Activation::kRelu;
    std::size_t prev = model.inputDim;
    for (std::size_t width : {std::size_t{32}, std::size_t{32},
                              std::size_t{2}}) {
        ir::QuantizedLayer layer;
        layer.inputDim = prev;
        layer.outputDim = width;
        layer.weights.resize(prev * width);
        layer.biases.resize(width);
        for (auto &w : layer.weights)
            w = randomWord(rng, format);
        for (auto &b : layer.biases)
            b = randomWord(rng, format);
        model.layers.push_back(std::move(layer));
        prev = width;
    }
    model.validate();
    return model;
}

ir::ModelIr
kmeansModel(const common::FixedPointFormat &format)
{
    common::Rng rng(13);
    ir::ModelIr model;
    model.kind = ir::ModelKind::kKMeans;
    model.format = format;
    model.inputDim = 16;
    model.numClasses = 8;
    for (int c = 0; c < 8; ++c) {
        std::vector<std::int32_t> centroid(model.inputDim);
        for (auto &v : centroid)
            v = randomWord(rng, format);
        model.centroids.push_back(std::move(centroid));
    }
    model.validate();
    return model;
}

ir::ModelIr
svmModel(const common::FixedPointFormat &format)
{
    common::Rng rng(17);
    ir::ModelIr model;
    model.kind = ir::ModelKind::kSvm;
    model.format = format;
    model.inputDim = 16;
    model.numClasses = 4;
    for (int c = 0; c < 4; ++c) {
        std::vector<std::int32_t> weights(model.inputDim);
        for (auto &v : weights)
            v = randomWord(rng, format);
        model.svmWeights.push_back(std::move(weights));
        model.svmBiases.push_back(randomWord(rng, format));
    }
    model.validate();
    return model;
}

/** Complete depth-8 tree on 16 features. */
ir::ModelIr
treeModel(const common::FixedPointFormat &format)
{
    common::Rng rng(19);
    ir::ModelIr model;
    model.kind = ir::ModelKind::kDecisionTree;
    model.format = format;
    model.inputDim = 16;
    model.numClasses = 3;
    model.treeDepth = 8;
    std::function<int(std::size_t)> build = [&](std::size_t level) -> int {
        int index = static_cast<int>(model.treeNodes.size());
        model.treeNodes.emplace_back();
        if (level == model.treeDepth) {
            model.treeNodes[static_cast<std::size_t>(index)].classLabel =
                static_cast<int>(rng.uniformInt(0, 2));
            return index;
        }
        auto &fill = model.treeNodes[static_cast<std::size_t>(index)];
        fill.isLeaf = false;
        fill.feature = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(model.inputDim) - 1));
        fill.threshold = randomWord(rng, format);
        int left = build(level + 1);
        int right = build(level + 1);
        model.treeNodes[static_cast<std::size_t>(index)].left = left;
        model.treeNodes[static_cast<std::size_t>(index)].right = right;
        return index;
    };
    build(0);
    model.validate();
    return model;
}

/** Plan-executed kernel bench: the plan is pinned to @p target, the
 *  batch is pre-quantized, the loop is runRange over the whole batch. */
void
planBench(benchmark::State &state, const ir::ModelIr &model,
          kernels::KernelTarget target)
{
    auto plan = ir::ExecutablePlan::compile(model);
    plan.forceKernelTarget(target);
    ir::QuantizedMatrix x(bench::benchFeatures(kBatchRows, model.inputDim),
                          model.format);
    std::vector<int> labels(kBatchRows);
    ir::ExecutablePlan::Scratch scratch;
    for (auto _ : state) {
        plan.runRange(x, 0, x.rows(), labels.data(), scratch);
        benchmark::DoNotOptimize(labels.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kBatchRows));
}

/** MAT batch walk bench: the target is pinned per pipeline
 *  (MatPipeline::forceKernelTarget), so nothing here touches the
 *  process-wide dispatch state. */
void
matBench(benchmark::State &state, const ir::ModelIr &model,
         kernels::KernelTarget target)
{
    auto pipeline = model.kind == ir::ModelKind::kSvm
                        ? backends::MatPipeline::compileSvm(model, 16)
                        : backends::MatPipeline::compileKMeans(model);
    pipeline.forceKernelTarget(target);
    auto x = bench::benchFeatures(kBatchRows, model.inputDim);
    for (auto _ : state) {
        auto labels = pipeline.processBatch(x);
        benchmark::DoNotOptimize(labels.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kBatchRows));
}

/** Console output as usual, plus rows/s captured per run: once for the
 *  --json report, once keyed by name for the speedup gate below. */
class JsonCaptureReporter : public benchmark::ConsoleReporter
{
  public:
    void ReportRuns(const std::vector<Run> &runs) override
    {
        benchmark::ConsoleReporter::ReportRuns(runs);
        for (const Run &run : runs) {
            auto items = run.counters.find("items_per_second");
            if (run.run_type != Run::RT_Iteration ||
                items == run.counters.end())
                continue;
            double rows_per_sec = static_cast<double>(items->second);
            json.add(run.benchmark_name(),
                     {{"real_time_s",
                       run.GetAdjustedRealTime() /
                           benchmark::GetTimeUnitMultiplier(run.time_unit)},
                      {"rows_per_sec", rows_per_sec}});
            rowsPerSec[run.benchmark_name()] = rows_per_sec;
        }
    }

    homunculus::bench::BenchJson json;
    std::map<std::string, double> rowsPerSec;
};

}  // namespace

int
main(int argc, char **argv)
{
    std::string json_path = homunculus::bench::extractJsonPath(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    const auto int8_mlp = gemmModel({4, 4});     // int8-weight panels.
    const auto int16_mlp = gemmModel({8, 8});    // Q8.8, int16 panels.
    const auto wide_mlp = gemmModel({12, 12});   // int64 fallback path.
    const auto kmeans = kmeansModel({8, 8});
    const auto svm = svmModel({8, 8});
    const auto tree = treeModel({8, 8});

    auto available = kernels::KernelDispatch::available();
    auto register_plan = [&](const char *kernel, const ir::ModelIr &model) {
        for (kernels::KernelTarget target : available) {
            std::string name = std::string(kernel) + "/" +
                               kernels::kernelTargetName(target);
            benchmark::RegisterBenchmark(
                name.c_str(), [&model, target](benchmark::State &state) {
                    planBench(state, model, target);
                });
        }
    };
    register_plan("int8_gemm", int8_mlp);
    register_plan("int16_gemm", int16_mlp);
    register_plan("tree_traverse", tree);
    register_plan("kmeans_argmin", kmeans);
    register_plan("svm_argmax", svm);
    // The wide path is target-invariant (shared int64 reference loops);
    // one row documents its baseline next to the narrow tiers.
    benchmark::RegisterBenchmark(
        "wide_gemm/reference", [&wide_mlp](benchmark::State &state) {
            planBench(state, wide_mlp, kernels::KernelTarget::kScalar);
        });
    for (kernels::KernelTarget target : available) {
        std::string name = std::string("mat_range_match/") +
                           kernels::kernelTargetName(target);
        benchmark::RegisterBenchmark(
            name.c_str(), [&svm, target](benchmark::State &state) {
                matBench(state, svm, target);
            });
    }

    JsonCaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    // The vectorization acceptance bar. Only judged when both sides
    // actually ran (a --benchmark_filter run must not trip it).
    constexpr double kInt8GemmBar = 1.5;
    auto scalar_rows = reporter.rowsPerSec.find("int8_gemm/scalar");
    auto avx2_rows = reporter.rowsPerSec.find("int8_gemm/avx2");
    if (scalar_rows != reporter.rowsPerSec.end() &&
        avx2_rows != reporter.rowsPerSec.end()) {
        double ratio = avx2_rows->second / scalar_rows->second;
        reporter.json.add("int8_gemm_speedup",
                          {{"avx2_over_scalar", ratio},
                           {"bar", kInt8GemmBar}});
        std::printf("int8 GEMM avx2/scalar: %.2fx (bar %.1fx)\n", ratio,
                    kInt8GemmBar);
        if (ratio < kInt8GemmBar) {
            std::fprintf(stderr,
                         "FAIL: int8 GEMM avx2 is %.2fx scalar, below "
                         "the %.1fx acceptance bar\n",
                         ratio, kInt8GemmBar);
            if (!json_path.empty())
                reporter.json.write(json_path);
            return 1;
        }
    }
    if (!json_path.empty() && !reporter.json.write(json_path))
        return 1;
    return 0;
}
