/**
 * @file
 * Ablation: feasibility pruning of the design space (paper §3.2.2).
 *
 * Quantifies the two pruning mechanisms:
 *   1. Candidate-family pruning — families the platform cannot host (DNN
 *      on a MAT switch) or whose minimal configuration is infeasible.
 *   2. Bound tightening — physical resources shrink variable bounds
 *      (KMeans cluster count capped by the MAT budget), multiplying down
 *      the design-space cardinality.
 */
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/table_printer.hpp"
#include "core/design_space.hpp"

using namespace homunculus;
using namespace homunculus::bench;

int
main(int argc, char **argv)
{
    std::cout << "=== Ablation: feasibility pruning of candidates and "
                 "design-space bounds ===\n\n";

    // ---- 1. Candidate-family pruning per platform. ---------------------
    core::ModelSpec spec;
    spec.name = "tc";
    spec.optimizationMetric = core::Metric::kF1;

    common::TablePrinter families({"Platform", "Families kept", "Pruned"});
    struct Target
    {
        std::string name;
        core::PlatformHandle handle;
    };
    std::vector<Target> targets;
    targets.push_back({"taurus (16x16)", core::Platforms::taurus()});
    targets.push_back({"tofino-mat (12 MATs)", core::Platforms::tofino()});
    {
        backends::MatConfig tiny;
        tiny.numTables = 2;
        targets.push_back({"tofino-mat (2 MATs)",
                           core::Platforms::tofino(tiny)});
    }
    targets.push_back({"fpga (U250)", core::Platforms::fpga()});

    for (auto &target : targets) {
        auto kept = core::selectCandidates(spec, target.handle.platform(),
                                           /*input_dim=*/7,
                                           /*num_classes=*/5);
        std::string kept_names;
        for (auto algorithm : kept) {
            if (!kept_names.empty())
                kept_names += ", ";
            kept_names += core::algorithmName(algorithm);
        }
        families.addRow({target.name, kept_names,
                         std::to_string(core::allAlgorithms().size() -
                                        kept.size())});
    }
    families.print();

    // ---- 2. Bound tightening: KMeans space size vs. MAT budget. --------
    std::cout << "\n--- KMeans design-space cardinality vs. MAT budget "
                 "---\n";
    common::TablePrinter bounds(
        {"MAT budget", "k upper bound", "Space cardinality"});
    for (std::size_t budget : {2, 3, 4, 5, 8, 12}) {
        backends::MatConfig config;
        config.numTables = budget;
        auto handle = core::Platforms::tofino(config);
        auto space = core::buildDesignSpace(core::Algorithm::kKMeans, spec,
                                            handle.platform());
        const auto *param = space.find("num_clusters");
        const auto &domain =
            std::get<opt::IntDomain>(param->domain);
        bounds.addRow({std::to_string(budget), std::to_string(domain.hi),
                       common::TablePrinter::cell(
                           space.cardinalityEstimate(), 0)});
    }
    bounds.print();

    std::cout << "\n";
    printPaperNote("resource/network constraints shrink the search space "
                   "rather than expand it (paper §3.2.3)");
    std::cout << "\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
