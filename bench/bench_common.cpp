#include "bench_common.hpp"

#include <iostream>

#include "ml/metrics.hpp"
#include "ml/preprocess.hpp"

namespace homunculus::bench {

std::string
appName(App app)
{
    switch (app) {
      case App::kAd: return "AD";
      case App::kTc: return "TC";
      case App::kBd: return "BD";
    }
    return "?";
}

ml::DataSplit
loadAd()
{
    data::AnomalyConfig config;
    config.numSamples = 4000;
    // Paper-band difficulty: heavy class overlap plus stealthy attacks
    // and annotation noise put the hand-tuned baseline near F1 ~0.75.
    config.noiseLevel = 1.8;
    config.stealthFraction = 0.12;
    config.labelNoise = 0.04;
    config.seed = kBenchSeed;
    return data::generateAnomalySplit(config);
}

ml::DataSplit
loadTc()
{
    data::IotTrafficConfig config;
    config.numSamples = 5000;
    config.noiseLevel = 1.6;
    config.seed = kBenchSeed ^ 0x7Cull;
    return data::generateIotTrafficSplit(config);
}

ml::DataSplit
loadTcClustering()
{
    data::IotTrafficConfig config;
    config.numSamples = 4000;
    config.noiseLevel = 0.45;
    config.seed = kBenchSeed ^ 0xF7ull;
    return data::generateIotTrafficSplit(config);
}

ml::DataSplit
loadBd()
{
    data::P2pTraceConfig config;
    config.numFlows = 700;
    config.seed = kBenchSeed ^ 0xBDull;
    auto flows = data::generateP2pFlows(config);
    auto marker_config = data::homunculusCompressedConfig();

    // Train on full flow-level histograms; test on per-packet partial
    // histograms from held-out flows (the paper's protocol).
    std::size_t train_flows = (flows.size() * 7) / 10;
    std::vector<data::Flow> train_set(flows.begin(),
                                      flows.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              train_flows));
    std::vector<data::Flow> test_set(flows.begin() +
                                         static_cast<std::ptrdiff_t>(
                                             train_flows),
                                     flows.end());

    ml::DataSplit split;
    split.train = data::buildFlowLevelDataset(train_set, marker_config);
    split.test = data::buildPerPacketDataset(test_set, marker_config,
                                             /*stride=*/2);
    // Scale with train-set statistics only (fit on flow-level rows).
    ml::StandardScaler scaler;
    split.train.x = scaler.fitTransform(split.train.x);
    split.test.x = scaler.transform(split.test.x);
    return split;
}

core::ModelSpec
appSpec(App app)
{
    core::ModelSpec spec;
    spec.optimizationMetric = core::Metric::kF1;
    spec.algorithms = {core::Algorithm::kDnn};
    switch (app) {
      case App::kAd:
        spec.name = "anomaly_detection";
        spec.dataLoader = loadAd;
        spec.maxHiddenLayers = 4;
        break;
      case App::kTc:
        spec.name = "traffic_classification";
        spec.dataLoader = loadTc;
        spec.maxHiddenLayers = 4;
        break;
      case App::kBd:
        spec.name = "botnet_detection";
        spec.dataLoader = loadBd;
        // The paper's Hom-BD distributes neurons across many layers.
        spec.maxHiddenLayers = 10;
        spec.maxNeuronsPerLayer = 16;
        break;
    }
    return spec;
}

ml::MlpConfig
baselineConfig(App app, const ml::DataSplit &split)
{
    ml::MlpConfig config;
    config.inputDim = split.train.numFeatures();
    config.numClasses = split.train.numClasses;
    config.learningRate = 0.01;
    config.batchSize = 32;
    config.epochs = core::kCandidateTrainEpochs;
    config.seed = kBenchSeed;
    switch (app) {
      case App::kAd:
        // Hand-crafted AD model from Taurus [85]/[86]: ~200 params.
        config.hiddenLayers = {12, 8};
        break;
      case App::kTc:
        // The paper's hand-written TC DNN: 3 hidden layers (10, 10, 5).
        config.hiddenLayers = {10, 10, 5};
        break;
      case App::kBd:
        // FlowLens-derived baseline: 4 hidden layers of 10 (662 params).
        config.hiddenLayers = {10, 10, 10, 10};
        break;
    }
    return config;
}

core::CandidateEvaluation
trainBaseline(App app, const ml::DataSplit &split,
              const backends::Platform &platform)
{
    ml::MlpConfig config = baselineConfig(app, split);
    ml::Mlp mlp(config);
    mlp.train(split.train);
    core::CandidateEvaluation evaluation;
    evaluation.model = ir::lowerMlp(mlp, common::FixedPointFormat::q88(),
                                    "base_" + appName(app));
    evaluation.report = platform.estimate(evaluation.model);
    if (evaluation.report.feasible) {
        auto predicted = platform.evaluate(evaluation.model, split.test.x);
        evaluation.objective = ml::f1ForTask(split.test.y, predicted,
                                             split.test.numClasses);
    }
    return evaluation;
}

core::PlatformHandle
paperTaurus()
{
    auto handle = core::Platforms::taurus();
    handle.constrain({/*minThroughputGpps=*/1.0, /*maxLatencyNs=*/500.0},
                     {/*gridRows=*/16, /*gridCols=*/16, /*matTables=*/{}});
    return handle;
}

core::CompileOptions
searchBudget(std::size_t init, std::size_t iterations)
{
    core::CompileOptions options;
    options.bo.numInitSamples = init;
    options.bo.numIterations = iterations;
    options.seed = kBenchSeed;
    return options;
}

void
printPaperNote(const std::string &note)
{
    std::cout << "  [paper] " << note << "\n";
}

}  // namespace homunculus::bench
