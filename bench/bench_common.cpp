#include "bench_common.hpp"

#include <fstream>
#include <functional>
#include <iostream>

#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "ml/metrics.hpp"
#include "ml/preprocess.hpp"

namespace homunculus::bench {

std::string
appName(App app)
{
    switch (app) {
      case App::kAd: return "AD";
      case App::kTc: return "TC";
      case App::kBd: return "BD";
    }
    return "?";
}

ml::DataSplit
loadAd()
{
    data::AnomalyConfig config;
    config.numSamples = 4000;
    // Paper-band difficulty: heavy class overlap plus stealthy attacks
    // and annotation noise put the hand-tuned baseline near F1 ~0.75.
    config.noiseLevel = 1.8;
    config.stealthFraction = 0.12;
    config.labelNoise = 0.04;
    config.seed = kBenchSeed;
    return data::generateAnomalySplit(config);
}

ml::DataSplit
loadTc()
{
    data::IotTrafficConfig config;
    config.numSamples = 5000;
    config.noiseLevel = 1.6;
    config.seed = kBenchSeed ^ 0x7Cull;
    return data::generateIotTrafficSplit(config);
}

ml::DataSplit
loadTcClustering()
{
    data::IotTrafficConfig config;
    config.numSamples = 4000;
    config.noiseLevel = 0.45;
    config.seed = kBenchSeed ^ 0xF7ull;
    return data::generateIotTrafficSplit(config);
}

ml::DataSplit
loadBd()
{
    data::P2pTraceConfig config;
    config.numFlows = 700;
    config.seed = kBenchSeed ^ 0xBDull;
    auto flows = data::generateP2pFlows(config);
    auto marker_config = data::homunculusCompressedConfig();

    // Train on full flow-level histograms; test on per-packet partial
    // histograms from held-out flows (the paper's protocol).
    std::size_t train_flows = (flows.size() * 7) / 10;
    std::vector<data::Flow> train_set(flows.begin(),
                                      flows.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              train_flows));
    std::vector<data::Flow> test_set(flows.begin() +
                                         static_cast<std::ptrdiff_t>(
                                             train_flows),
                                     flows.end());

    ml::DataSplit split;
    split.train = data::buildFlowLevelDataset(train_set, marker_config);
    split.test = data::buildPerPacketDataset(test_set, marker_config,
                                             /*stride=*/2);
    // Scale with train-set statistics only (fit on flow-level rows).
    ml::StandardScaler scaler;
    split.train.x = scaler.fitTransform(split.train.x);
    split.test.x = scaler.transform(split.test.x);
    split.scalerMeans = scaler.means();
    split.scalerStds = scaler.stddevs();
    return split;
}

core::ModelSpec
appSpec(App app)
{
    core::ModelSpec spec;
    spec.optimizationMetric = core::Metric::kF1;
    spec.algorithms = {core::Algorithm::kDnn};
    switch (app) {
      case App::kAd:
        spec.name = "anomaly_detection";
        spec.dataLoader = loadAd;
        spec.maxHiddenLayers = 4;
        break;
      case App::kTc:
        spec.name = "traffic_classification";
        spec.dataLoader = loadTc;
        spec.maxHiddenLayers = 4;
        break;
      case App::kBd:
        spec.name = "botnet_detection";
        spec.dataLoader = loadBd;
        // The paper's Hom-BD distributes neurons across many layers.
        spec.maxHiddenLayers = 10;
        spec.maxNeuronsPerLayer = 16;
        break;
    }
    return spec;
}

ml::MlpConfig
baselineConfig(App app, const ml::DataSplit &split)
{
    ml::MlpConfig config;
    config.inputDim = split.train.numFeatures();
    config.numClasses = split.train.numClasses;
    config.learningRate = 0.01;
    config.batchSize = 32;
    config.epochs = core::kCandidateTrainEpochs;
    config.seed = kBenchSeed;
    switch (app) {
      case App::kAd:
        // Hand-crafted AD model from Taurus [85]/[86]: ~200 params.
        config.hiddenLayers = {12, 8};
        break;
      case App::kTc:
        // The paper's hand-written TC DNN: 3 hidden layers (10, 10, 5).
        config.hiddenLayers = {10, 10, 5};
        break;
      case App::kBd:
        // FlowLens-derived baseline: 4 hidden layers of 10 (662 params).
        config.hiddenLayers = {10, 10, 10, 10};
        break;
    }
    return config;
}

core::CandidateEvaluation
trainBaseline(App app, const ml::DataSplit &split,
              const backends::Platform &platform)
{
    ml::MlpConfig config = baselineConfig(app, split);
    ml::Mlp mlp(config);
    mlp.train(split.train);
    core::CandidateEvaluation evaluation;
    evaluation.model = ir::lowerMlp(mlp, common::FixedPointFormat::q88(),
                                    "base_" + appName(app));
    evaluation.report = platform.estimate(evaluation.model);
    if (evaluation.report.feasible) {
        auto predicted = platform.evaluate(evaluation.model, split.test.x);
        evaluation.objective = ml::f1ForTask(split.test.y, predicted,
                                             split.test.numClasses);
    }
    return evaluation;
}

core::PlatformHandle
paperTaurus()
{
    auto handle = core::Platforms::taurus();
    handle.constrain({/*minThroughputGpps=*/1.0, /*maxLatencyNs=*/500.0},
                     {/*gridRows=*/16, /*gridCols=*/16, /*matTables=*/{}});
    return handle;
}

core::CompileOptions
searchBudget(std::size_t init, std::size_t iterations)
{
    core::CompileOptions options;
    options.bo.numInitSamples = init;
    options.bo.numIterations = iterations;
    options.seed = kBenchSeed;
    return options;
}

void
printPaperNote(const std::string &note)
{
    std::cout << "  [paper] " << note << "\n";
}

namespace {

std::int32_t
randomWord(common::Rng &rng)
{
    return static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
}

}  // namespace

ir::ModelIr
benchMlpIr()
{
    common::Rng rng(11);
    ir::ModelIr model;
    model.kind = ir::ModelKind::kMlp;
    model.inputDim = 16;
    model.numClasses = 2;
    std::size_t prev = 16;
    for (std::size_t width : {std::size_t{32}, std::size_t{32},
                              std::size_t{2}}) {
        ir::QuantizedLayer layer;
        layer.inputDim = prev;
        layer.outputDim = width;
        layer.weights.resize(prev * width);
        layer.biases.resize(width);
        for (auto &w : layer.weights)
            w = randomWord(rng);
        for (auto &b : layer.biases)
            b = randomWord(rng);
        model.layers.push_back(std::move(layer));
        prev = width;
    }
    model.validate();
    return model;
}

ir::ModelIr
benchKMeansIr()
{
    common::Rng rng(13);
    ir::ModelIr model;
    model.kind = ir::ModelKind::kKMeans;
    model.inputDim = 16;
    model.numClasses = 8;
    for (int c = 0; c < 8; ++c) {
        std::vector<std::int32_t> centroid(16);
        for (auto &v : centroid)
            v = randomWord(rng);
        model.centroids.push_back(std::move(centroid));
    }
    model.validate();
    return model;
}

ir::ModelIr
benchSvmIr()
{
    common::Rng rng(17);
    ir::ModelIr model;
    model.kind = ir::ModelKind::kSvm;
    model.inputDim = 16;
    model.numClasses = 4;
    for (int c = 0; c < 4; ++c) {
        std::vector<std::int32_t> weights(16);
        for (auto &v : weights)
            v = randomWord(rng);
        model.svmWeights.push_back(std::move(weights));
        model.svmBiases.push_back(randomWord(rng));
    }
    model.validate();
    return model;
}

ir::ModelIr
benchTreeIr()
{
    common::Rng rng(19);
    ir::ModelIr model;
    model.kind = ir::ModelKind::kDecisionTree;
    model.inputDim = 16;
    model.numClasses = 3;
    model.treeDepth = 8;
    std::function<int(std::size_t)> build = [&](std::size_t level) -> int {
        int index = static_cast<int>(model.treeNodes.size());
        model.treeNodes.emplace_back();
        if (level == 8) {
            model.treeNodes[static_cast<std::size_t>(index)].classLabel =
                static_cast<int>(rng.uniformInt(0, 2));
            return index;
        }
        auto &node = model.treeNodes[static_cast<std::size_t>(index)];
        node.isLeaf = false;
        node.feature = static_cast<std::size_t>(rng.uniformInt(0, 15));
        node.threshold = randomWord(rng);
        int left = build(level + 1);
        int right = build(level + 1);
        model.treeNodes[static_cast<std::size_t>(index)].left = left;
        model.treeNodes[static_cast<std::size_t>(index)].right = right;
        return index;
    };
    build(0);
    model.validate();
    return model;
}

math::Matrix
benchFeatures(std::size_t rows, std::size_t cols)
{
    common::Rng rng(7);
    math::Matrix x(rows, cols);
    for (double &v : x.data())
        v = rng.uniform(-8.0, 8.0);
    return x;
}

namespace {

/** JSON string escaping for bench/metric names (quotes + backslashes). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

}  // namespace

void
BenchJson::add(const std::string &name,
               const std::vector<std::pair<std::string, double>> &metrics)
{
    records_.push_back({name, metrics});
}

bool
BenchJson::write(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "bench: cannot write JSON to '" << path << "'\n";
        return false;
    }
    out << "{\n  \"benchmarks\": [\n";
    for (std::size_t r = 0; r < records_.size(); ++r) {
        const Record &record = records_[r];
        out << "    {\"name\": \"" << jsonEscape(record.name) << "\"";
        for (const auto &[metric, value] : record.metrics)
            out << ", \"" << jsonEscape(metric) << "\": "
                << common::format("%.8g", value);
        out << "}" << (r + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "bench: wrote " << records_.size() << " records to "
              << path << "\n";
    return true;
}

std::string
extractJsonPath(int &argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) != "--json")
            continue;
        if (i + 1 >= argc) {
            std::cerr << "bench: --json needs a path\n";
            return "";
        }
        std::string path = argv[i + 1];
        for (int j = i; j + 2 < argc; ++j)
            argv[j] = argv[j + 2];
        argc -= 2;
        return path;
    }
    return "";
}

}  // namespace homunculus::bench
