/**
 * @file
 * Ablation: Bayesian optimization vs. uniform random search at equal
 * evaluation budget, on the AD-DNN design space (the paper's §5 setup
 * justifies the HyperMapper RF+EI configuration; this bench quantifies
 * what that machinery buys over the trivial sampler).
 */
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/table_printer.hpp"
#include "core/design_space.hpp"
#include "core/trainer.hpp"

using namespace homunculus;
using namespace homunculus::bench;

int
main(int argc, char **argv)
{
    std::cout << "=== Ablation: BO (RF surrogate + EI + feasibility "
                 "model) vs. random search, equal budget ===\n\n";

    auto platform = paperTaurus();
    core::ModelSpec spec = appSpec(App::kAd);
    auto split = spec.dataLoader();
    auto space = core::buildDesignSpace(core::Algorithm::kDnn, spec,
                                        platform.platform());

    const std::size_t budget = 18;
    common::TablePrinter table(
        {"Seed", "BO best F1", "Random best F1", "BO iters to 82",
         "Random iters to 82"});

    // First evaluation that clears the threshold (budget+1 = never).
    auto iters_to = [budget](const opt::BoResult &result,
                             double threshold) {
        for (std::size_t i = 0; i < result.history.size(); ++i)
            if (result.history[i].result.feasible &&
                result.history[i].result.objective >= threshold)
                return i + 1;
        return budget + 1;
    };

    double bo_total = 0.0, random_total = 0.0;
    double bo_iters = 0.0, random_iters = 0.0;
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        auto objective =
            [&](const opt::Configuration &config) -> opt::EvalResult {
            auto evaluation = core::evaluateCandidate(
                core::Algorithm::kDnn, config, spec, split,
                platform.platform(), kBenchSeed + seed);
            return core::toEvalResult(evaluation);
        };

        opt::BoConfig bo_config;
        bo_config.numInitSamples = 5;
        bo_config.numIterations = budget - 5;
        bo_config.seed = seed;
        opt::BayesianOptimizer optimizer(space, bo_config);
        auto bo = optimizer.optimize(objective);

        auto random =
            opt::randomSearch(space, objective, budget, true, seed + 100);

        const double threshold = 0.82;
        bo_total += bo.bestResult.objective;
        random_total += random.bestResult.objective;
        bo_iters += static_cast<double>(iters_to(bo, threshold));
        random_iters += static_cast<double>(iters_to(random, threshold));
        table.addRow(
            {std::to_string(seed),
             common::TablePrinter::cell(100.0 * bo.bestResult.objective, 2),
             common::TablePrinter::cell(
                 100.0 * random.bestResult.objective, 2),
             std::to_string(iters_to(bo, threshold)),
             std::to_string(iters_to(random, threshold))});
    }
    table.print();

    std::cout << "\n  mean best F1: BO "
              << common::TablePrinter::cell(bo_total / 3.0 * 100.0, 2)
              << " vs random "
              << common::TablePrinter::cell(random_total / 3.0 * 100.0, 2)
              << "\n";
    std::cout << "  mean iterations to F1 >= 82: BO "
              << common::TablePrinter::cell(bo_iters / 3.0, 1)
              << " vs random "
              << common::TablePrinter::cell(random_iters / 3.0, 1) << "\n";
    // The AD landscape plateaus near F1 ~83, so both samplers reach the
    // plateau; BO must match random's best within noise and should not
    // need more evaluations to get there.
    bool best_ok = bo_total >= random_total - 0.01 * 3;
    bool efficiency_ok = bo_iters <= random_iters + 3.0;
    std::cout << "  [shape] BO best within noise of random: "
              << (best_ok ? "YES" : "NO") << "\n"
              << "  [shape] BO sample efficiency >= random: "
              << (efficiency_ok ? "YES" : "NO") << "\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
