/**
 * @file
 * Interpreter vs ExecutablePlan batch-inference throughput, per family
 * (google-benchmark). The acceptance bar for the compile-then-execute
 * refactor: the plan must deliver >= 3x the scalar interpreter's rows/sec
 * on MLP inference at batch >= 1024. `items_per_second` in the report is
 * classified rows per second.
 *
 * Models are random quantized IRs at paper-plausible sizes (hundreds to a
 * few thousand parameters — they must fit a switch pipeline); inference
 * cost does not depend on the weight values, so training is skipped.
 */
#include <benchmark/benchmark.h>

#include <functional>

#include "common/rng.hpp"
#include "ir/exec_plan.hpp"
#include "ir/model_ir.hpp"

using namespace homunculus;

namespace {

std::int32_t
randomWord(common::Rng &rng)
{
    return static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
}

math::Matrix
randomFeatures(std::size_t rows, std::size_t cols)
{
    common::Rng rng(7);
    math::Matrix x(rows, cols);
    for (double &v : x.data())
        v = rng.uniform(-8.0, 8.0);
    return x;
}

/** The AD-like baseline shape: 16 -> 32 -> 32 -> 2. */
ir::ModelIr
mlpModel()
{
    common::Rng rng(11);
    ir::ModelIr model;
    model.kind = ir::ModelKind::kMlp;
    model.inputDim = 16;
    model.numClasses = 2;
    std::size_t prev = 16;
    for (std::size_t width : {std::size_t{32}, std::size_t{32},
                              std::size_t{2}}) {
        ir::QuantizedLayer layer;
        layer.inputDim = prev;
        layer.outputDim = width;
        layer.weights.resize(prev * width);
        layer.biases.resize(width);
        for (auto &w : layer.weights)
            w = randomWord(rng);
        for (auto &b : layer.biases)
            b = randomWord(rng);
        model.layers.push_back(std::move(layer));
        prev = width;
    }
    model.validate();
    return model;
}

ir::ModelIr
kmeansModel()
{
    common::Rng rng(13);
    ir::ModelIr model;
    model.kind = ir::ModelKind::kKMeans;
    model.inputDim = 16;
    model.numClasses = 8;
    for (int c = 0; c < 8; ++c) {
        std::vector<std::int32_t> centroid(16);
        for (auto &v : centroid)
            v = randomWord(rng);
        model.centroids.push_back(std::move(centroid));
    }
    model.validate();
    return model;
}

ir::ModelIr
svmModel()
{
    common::Rng rng(17);
    ir::ModelIr model;
    model.kind = ir::ModelKind::kSvm;
    model.inputDim = 16;
    model.numClasses = 4;
    for (int c = 0; c < 4; ++c) {
        std::vector<std::int32_t> weights(16);
        for (auto &v : weights)
            v = randomWord(rng);
        model.svmWeights.push_back(std::move(weights));
        model.svmBiases.push_back(randomWord(rng));
    }
    model.validate();
    return model;
}

ir::ModelIr
treeModel()
{
    common::Rng rng(19);
    ir::ModelIr model;
    model.kind = ir::ModelKind::kDecisionTree;
    model.inputDim = 16;
    model.numClasses = 3;
    model.treeDepth = 8;
    std::function<int(std::size_t)> build = [&](std::size_t level) -> int {
        int index = static_cast<int>(model.treeNodes.size());
        model.treeNodes.emplace_back();
        if (level == 8) {
            model.treeNodes[static_cast<std::size_t>(index)].classLabel =
                static_cast<int>(rng.uniformInt(0, 2));
            return index;
        }
        auto &node = model.treeNodes[static_cast<std::size_t>(index)];
        node.isLeaf = false;
        node.feature = static_cast<std::size_t>(rng.uniformInt(0, 15));
        node.threshold = randomWord(rng);
        int left = build(level + 1);
        int right = build(level + 1);
        model.treeNodes[static_cast<std::size_t>(index)].left = left;
        model.treeNodes[static_cast<std::size_t>(index)].right = right;
        return index;
    };
    build(0);
    model.validate();
    return model;
}

/** The legacy path: scalar interpreter re-walked per row (incl. the
 *  per-row heap copy every pre-plan caller paid). */
void
interpBench(benchmark::State &state, const ir::ModelIr &model)
{
    auto batch = static_cast<std::size_t>(state.range(0));
    auto x = randomFeatures(batch, model.inputDim);
    for (auto _ : state) {
        int last = 0;
        for (std::size_t r = 0; r < x.rows(); ++r)
            last = ir::executeIr(model, x.row(r));
        benchmark::DoNotOptimize(last);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(batch));
}

/** The compiled path: one plan reused across the batch. */
void
planBench(benchmark::State &state, const ir::ModelIr &model)
{
    auto batch = static_cast<std::size_t>(state.range(0));
    auto x = randomFeatures(batch, model.inputDim);
    auto plan = ir::ExecutablePlan::compile(model);
    for (auto _ : state) {
        auto labels = plan.run(x);
        benchmark::DoNotOptimize(labels.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(batch));
}

void
BM_InterpMlp(benchmark::State &state)
{
    interpBench(state, mlpModel());
}
void
BM_PlanMlp(benchmark::State &state)
{
    planBench(state, mlpModel());
}
void
BM_InterpKMeans(benchmark::State &state)
{
    interpBench(state, kmeansModel());
}
void
BM_PlanKMeans(benchmark::State &state)
{
    planBench(state, kmeansModel());
}
void
BM_InterpSvm(benchmark::State &state)
{
    interpBench(state, svmModel());
}
void
BM_PlanSvm(benchmark::State &state)
{
    planBench(state, svmModel());
}
void
BM_InterpTree(benchmark::State &state)
{
    interpBench(state, treeModel());
}
void
BM_PlanTree(benchmark::State &state)
{
    planBench(state, treeModel());
}

}  // namespace

BENCHMARK(BM_InterpMlp)->Arg(64)->Arg(1024)->Arg(4096);
BENCHMARK(BM_PlanMlp)->Arg(64)->Arg(1024)->Arg(4096);
BENCHMARK(BM_InterpKMeans)->Arg(1024)->Arg(4096);
BENCHMARK(BM_PlanKMeans)->Arg(1024)->Arg(4096);
BENCHMARK(BM_InterpSvm)->Arg(1024)->Arg(4096);
BENCHMARK(BM_PlanSvm)->Arg(1024)->Arg(4096);
BENCHMARK(BM_InterpTree)->Arg(1024)->Arg(4096);
BENCHMARK(BM_PlanTree)->Arg(1024)->Arg(4096);

BENCHMARK_MAIN();
