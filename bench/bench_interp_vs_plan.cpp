/**
 * @file
 * Interpreter vs ExecutablePlan batch-inference throughput, per family
 * (google-benchmark). The acceptance bar for the compile-then-execute
 * refactor: the plan must deliver >= 3x the scalar interpreter's rows/sec
 * on MLP inference at batch >= 1024. `items_per_second` in the report is
 * classified rows per second.
 *
 * Models are random quantized IRs at paper-plausible sizes (hundreds to a
 * few thousand parameters — they must fit a switch pipeline); inference
 * cost does not depend on the weight values, so training is skipped.
 */
#include <benchmark/benchmark.h>

#include <functional>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "ir/exec_plan.hpp"
#include "ir/model_ir.hpp"

using namespace homunculus;

namespace {

using homunculus::bench::benchFeatures;
using homunculus::bench::benchKMeansIr;
using homunculus::bench::benchMlpIr;
using homunculus::bench::benchSvmIr;
using homunculus::bench::benchTreeIr;

/** The legacy path: scalar interpreter re-walked per row (incl. the
 *  per-row heap copy every pre-plan caller paid). */
void
interpBench(benchmark::State &state, const ir::ModelIr &model)
{
    auto batch = static_cast<std::size_t>(state.range(0));
    auto x = benchFeatures(batch, model.inputDim);
    for (auto _ : state) {
        int last = 0;
        for (std::size_t r = 0; r < x.rows(); ++r)
            last = ir::executeIr(model, x.row(r));
        benchmark::DoNotOptimize(last);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(batch));
}

/** The compiled path: one plan reused across the batch. */
void
planBench(benchmark::State &state, const ir::ModelIr &model)
{
    auto batch = static_cast<std::size_t>(state.range(0));
    auto x = benchFeatures(batch, model.inputDim);
    auto plan = ir::ExecutablePlan::compile(model);
    for (auto _ : state) {
        auto labels = plan.run(x);
        benchmark::DoNotOptimize(labels.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(batch));
}

void
BM_InterpMlp(benchmark::State &state)
{
    interpBench(state, benchMlpIr());
}
void
BM_PlanMlp(benchmark::State &state)
{
    planBench(state, benchMlpIr());
}
void
BM_InterpKMeans(benchmark::State &state)
{
    interpBench(state, benchKMeansIr());
}
void
BM_PlanKMeans(benchmark::State &state)
{
    planBench(state, benchKMeansIr());
}
void
BM_InterpSvm(benchmark::State &state)
{
    interpBench(state, benchSvmIr());
}
void
BM_PlanSvm(benchmark::State &state)
{
    planBench(state, benchSvmIr());
}
void
BM_InterpTree(benchmark::State &state)
{
    interpBench(state, benchTreeIr());
}
void
BM_PlanTree(benchmark::State &state)
{
    planBench(state, benchTreeIr());
}

}  // namespace

BENCHMARK(BM_InterpMlp)->Arg(64)->Arg(1024)->Arg(4096);
BENCHMARK(BM_PlanMlp)->Arg(64)->Arg(1024)->Arg(4096);
BENCHMARK(BM_InterpKMeans)->Arg(1024)->Arg(4096);
BENCHMARK(BM_PlanKMeans)->Arg(1024)->Arg(4096);
BENCHMARK(BM_InterpSvm)->Arg(1024)->Arg(4096);
BENCHMARK(BM_PlanSvm)->Arg(1024)->Arg(4096);
BENCHMARK(BM_InterpTree)->Arg(1024)->Arg(4096);
BENCHMARK(BM_PlanTree)->Arg(1024)->Arg(4096);

namespace {

/** Console output as usual, plus a flat rows/s record per run so --json
 *  can persist the interp-vs-plan trajectory (bench_common::BenchJson). */
class JsonCaptureReporter : public benchmark::ConsoleReporter
{
  public:
    void ReportRuns(const std::vector<Run> &runs) override
    {
        benchmark::ConsoleReporter::ReportRuns(runs);
        for (const Run &run : runs) {
            // Keying on the items_per_second counter (instead of the
            // error/skipped state) keeps this portable across the
            // benchmark 1.7 -> 1.8 Run API change: errored or skipped
            // runs never set the counter.
            auto items = run.counters.find("items_per_second");
            if (run.run_type != Run::RT_Iteration ||
                items == run.counters.end())
                continue;
            json.add(run.benchmark_name(),
                     {{"real_time_s",
                       run.GetAdjustedRealTime() /
                           benchmark::GetTimeUnitMultiplier(run.time_unit)},
                      {"rows_per_sec",
                       static_cast<double>(items->second)}});
        }
    }

    homunculus::bench::BenchJson json;
};

}  // namespace

int
main(int argc, char **argv)
{
    std::string json_path = homunculus::bench::extractJsonPath(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    JsonCaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    if (!json_path.empty() && !reporter.json.write(json_path))
        return 1;
    return 0;
}
