/**
 * @file
 * Ablation: Q-format fractional-bit sweep for data-plane inference.
 *
 * DESIGN.md decision 4: the compiler reports the accuracy of the
 * *quantized* artifact the backend deploys. This bench quantifies the
 * F1 cost of the default Q8.8 format against coarser and finer formats,
 * on the trained AD model.
 */
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/table_printer.hpp"
#include "ml/metrics.hpp"

using namespace homunculus;
using namespace homunculus::bench;

namespace {

void
BM_QuantizedInference(benchmark::State &state)
{
    auto split = loadAd();
    auto platform = paperTaurus();
    auto baseline = trainBaseline(App::kAd, split, platform.platform());
    std::size_t row = 0;
    for (auto _ : state) {
        int label = ir::executeIr(
            baseline.model,
            split.test.x.row(row++ % split.test.numSamples()));
        benchmark::DoNotOptimize(label);
    }
}
BENCHMARK(BM_QuantizedInference);

}  // namespace

int
main(int argc, char **argv)
{
    std::cout << "=== Ablation: fixed-point precision sweep (AD DNN, "
                 "Q8.n for n in 1..12) ===\n\n";

    auto split = loadAd();
    ml::MlpConfig config = baselineConfig(App::kAd, split);
    ml::Mlp mlp(config);
    mlp.train(split.train);

    // Float reference.
    double float_f1 = ml::f1ForTask(split.test.y, mlp.predict(split.test.x),
                                    split.test.numClasses);

    common::TablePrinter table(
        {"Format", "Frac bits", "F1", "Delta vs float"});
    double prev_f1 = 0.0;
    std::vector<double> f1_series;
    for (int frac : {1, 2, 4, 6, 8, 10, 12}) {
        common::FixedPointFormat format(8, frac);
        auto ir_model = ir::lowerMlp(mlp, format, "ad_q");
        auto predicted = ir::executeIrBatch(ir_model, split.test.x);
        double f1 = ml::f1ForTask(split.test.y, predicted,
                                  split.test.numClasses);
        f1_series.push_back(f1);
        table.addRow({"Q8." + std::to_string(frac), std::to_string(frac),
                      common::TablePrinter::cell(100.0 * f1, 2),
                      common::TablePrinter::cell(100.0 * (f1 - float_f1),
                                                 2)});
        prev_f1 = f1;
    }
    (void)prev_f1;
    table.print();

    std::cout << "\n  float32 reference F1: "
              << common::TablePrinter::cell(100.0 * float_f1, 2) << "\n";
    bool q88_close = std::fabs(f1_series[4] - float_f1) < 0.03;
    bool coarse_hurts = f1_series[0] < f1_series.back() + 1e-9;
    std::cout << "  [shape] Q8.8 within 3 F1 points of float: "
              << (q88_close ? "YES" : "NO") << "\n"
              << "  [shape] 1 fractional bit degrades vs 12: "
              << (coarse_hurts ? "YES" : "NO") << "\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
