/**
 * @file
 * Figure 4 reproduction: regret plot with the F1-score metric for the
 * anomaly-detection DNN on the MapReduce grid.
 *
 * Paper reference: F1 starts poor (~20-40), stabilizes within a few
 * iterations, then jumps when the optimizer discovers a significantly
 * better variant (exploitation/exploration trade) — reaching ~80+ by
 * iteration ~20.
 *
 * Output: one line per optimization iteration with the evaluated F1 and
 * the best-so-far envelope, plus an ASCII sparkline of the series.
 */
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/table_printer.hpp"

using namespace homunculus;
using namespace homunculus::bench;

namespace {

std::string
sparkline(const std::vector<double> &values, double lo, double hi)
{
    static const char *levels[] = {"_", ".", ":", "-", "=", "+", "*", "#"};
    std::string out;
    for (double v : values) {
        double t = (v - lo) / (hi - lo);
        int idx = std::clamp(static_cast<int>(t * 7.0), 0, 7);
        out += levels[idx];
    }
    return out;
}

void
BM_BoIteration(benchmark::State &state)
{
    // Cost of one surrogate-guided iteration, amortized: run a 3-eval
    // search and divide.
    auto platform = paperTaurus();
    core::ModelSpec spec = appSpec(App::kAd);
    auto split = spec.dataLoader();
    for (auto _ : state) {
        auto options = searchBudget(2, 1);
        auto model = core::searchSpec(spec, platform, options, split).value();
        benchmark::DoNotOptimize(model.objective);
    }
}
BENCHMARK(BM_BoIteration)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

int
main(int argc, char **argv)
{
    std::cout << "=== Figure 4: regret plot, F1 vs. BO iteration "
                 "(AD DNN on the Taurus MapReduce grid) ===\n\n";

    auto platform = paperTaurus();
    core::ModelSpec spec = appSpec(App::kAd);
    auto split = spec.dataLoader();
    auto options = searchBudget(5, 20);
    auto generated = core::searchSpec(spec, platform, options, split).value();

    const auto &history = generated.searchHistory.history;
    common::TablePrinter table(
        {"Iter", "Phase", "F1", "Best-so-far", "Feasible"});
    std::vector<double> evaluated;
    for (std::size_t i = 0; i < history.size(); ++i) {
        const auto &record = history[i];
        evaluated.push_back(100.0 * record.result.objective);
        table.addRow({common::TablePrinter::cell(
                          static_cast<long long>(i + 1)),
                      record.fromWarmup ? "warmup" : "bayes-opt",
                      common::TablePrinter::cell(
                          100.0 * record.result.objective, 2),
                      common::TablePrinter::cell(100.0 * record.bestSoFar,
                                                 2),
                      record.result.feasible ? "yes" : "no"});
    }
    table.print();

    std::cout << "\n  evaluated F1 per iteration: "
              << sparkline(evaluated, 0.0, 100.0) << "\n";
    auto best = generated.searchHistory.bestSoFarSeries();
    for (double &v : best)
        v *= 100.0;
    std::cout << "  best-so-far envelope:       "
              << sparkline(best, 0.0, 100.0) << "\n\n";

    printPaperNote("initial iterations poor, quick stabilization, "
                   "occasional exploration dips, best F1 ~83 at "
                   "iteration ~20");
    bool improves = best.back() > best.front() + 1e-9;
    bool monotone = true;
    for (std::size_t i = 1; i < best.size(); ++i)
        monotone &= best[i] >= best[i - 1] - 1e-12;
    std::cout << "  [shape] best-so-far envelope monotone: "
              << (monotone ? "YES" : "NO")
              << "; improves over warmup: " << (improves ? "YES" : "NO")
              << "\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
