/**
 * @file
 * Figure 6 reproduction: botnet vs. benign flow-level packet-length (PL)
 * and inter-arrival-time (IPT) histograms averaged across all flows.
 *
 * Paper reference: PL bin size 64 B (bins 2-22 shown), IPT bin size 512 s
 * (bins 1-6). Benign P2P mass spans the full packet-size range with a
 * heavy tail; botnet mass concentrates in the small-packet bins and its
 * IPT histogram has mass in the later (long-gap) bins. Certain bins stay
 * near-empty for botnets early on — the divergence that makes per-packet
 * partial-histogram detection possible.
 */
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/table_printer.hpp"
#include "data/flowmarker.hpp"

using namespace homunculus;
using namespace homunculus::bench;

namespace {

void
BM_FlowMarkerComputation(benchmark::State &state)
{
    data::P2pTraceConfig config;
    config.numFlows = 50;
    auto flows = data::generateP2pFlows(config);
    auto marker_config = data::homunculusCompressedConfig();
    for (auto _ : state) {
        for (const auto &flow : flows) {
            auto marker = data::computeFlowMarker(flow, marker_config);
            benchmark::DoNotOptimize(marker.data());
        }
    }
}
BENCHMARK(BM_FlowMarkerComputation)->Unit(benchmark::kMicrosecond);

}  // namespace

int
main(int argc, char **argv)
{
    std::cout << "=== Figure 6: botnet vs. benign flow-level PL and IPT "
                 "histograms (averaged across flows) ===\n\n";

    data::P2pTraceConfig config;
    config.numFlows = 600;
    config.seed = kBenchSeed ^ 0xF16ull;
    auto flows = data::generateP2pFlows(config);
    auto marker_config = data::homunculusCompressedConfig();
    auto histograms = data::averageClassHistograms(flows, marker_config);

    std::cout << "--- Avg. packet-length counts (bin size 64 B) ---\n";
    common::TablePrinter pl({"Bin", "Benign", "Malicious"});
    for (std::size_t b = 0; b < marker_config.plBins; ++b) {
        pl.addRow({common::TablePrinter::cell(static_cast<long long>(b)),
                   common::TablePrinter::cell(histograms.benignPl[b], 3),
                   common::TablePrinter::cell(histograms.botnetPl[b], 3)});
    }
    pl.print();

    std::cout << "\n--- Avg. inter-arrival-time counts (bin size 512 s) "
                 "---\n";
    common::TablePrinter ipt({"Bin", "Benign", "Malicious"});
    for (std::size_t b = 0; b < marker_config.iptBins; ++b) {
        ipt.addRow({common::TablePrinter::cell(static_cast<long long>(b)),
                    common::TablePrinter::cell(histograms.benignIpt[b], 3),
                    common::TablePrinter::cell(histograms.botnetIpt[b],
                                               3)});
    }
    ipt.print();

    std::cout << "\n";
    printPaperNote("benign flows: heavy-tailed PL spanning all bins, IPT "
                   "mass in bin 0; botnet flows: PL concentrated in small "
                   "bins, IPT mass spread into later bins");

    double benign_pl_tail = 0, botnet_pl_tail = 0;
    for (std::size_t b = 8; b < marker_config.plBins; ++b) {
        benign_pl_tail += histograms.benignPl[b];
        botnet_pl_tail += histograms.botnetPl[b];
    }
    double botnet_ipt_late = 0, benign_ipt_late = 0;
    for (std::size_t b = 1; b < marker_config.iptBins; ++b) {
        botnet_ipt_late += histograms.botnetIpt[b];
        benign_ipt_late += histograms.benignIpt[b];
    }
    std::cout << "  [shape] benign PL tail mass > botnet PL tail mass: "
              << (benign_pl_tail > botnet_pl_tail ? "YES" : "NO") << "\n"
              << "  [shape] botnet late-IPT mass > benign late-IPT mass: "
              << (botnet_ipt_late > benign_ipt_late ? "YES" : "NO")
              << "\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
