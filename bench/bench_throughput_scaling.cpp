/**
 * @file
 * Multi-core batch-inference scaling of runtime::InferenceEngine.
 *
 * Sweeps jobs (1 -> N cores) x batch size {64, 1024, 16384} across all
 * four model families and reports rows/s, p50/p99 per-run latency, and
 * the speedup over the 1-job engine on the same (family, batch). The
 * acceptance bar for the sharded runtime: >= 3x MLP rows/s at 4 jobs vs
 * 1 job on batch 16384 — checked and printed at the end (the verdict is
 * meaningful only on a host with >= 4 physical cores; the line states
 * the visible core count).
 *
 * Every engine result is also cross-checked against the single-threaded
 * plan labels, so a scaling number can never come from a wrong answer.
 *
 * Usage: bench_throughput_scaling [--json PATH]
 * (custom harness, not google-benchmark: the jobs sweep and latency
 * percentiles need direct control of the measurement loop; --json writes
 * bench_common's machine-readable record set.)
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "math/stats.hpp"
#include "runtime/inference_engine.hpp"

using namespace homunculus;

namespace {

using Clock = std::chrono::steady_clock;

struct Measurement
{
    double rowsPerSec = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    std::size_t iterations = 0;
};

/**
 * Time repeated engine.run(x) calls: warm up once, then measure until
 * >= 0.25 s and >= 20 iterations have accumulated (keeps percentile
 * estimates meaningful at every batch size).
 */
Measurement
measure(const runtime::InferenceEngine &engine, const math::Matrix &x,
        const std::vector<int> &reference)
{
    std::vector<int> labels(x.rows());
    engine.run(x, labels.data());  // warm-up + correctness gate.
    if (labels != reference)
        throw std::runtime_error(
            "scaling bench: engine labels diverge from the "
            "single-threaded plan");

    Measurement out;
    std::vector<double> samples_ms;
    double total_seconds = 0.0;
    while (total_seconds < 0.25 || samples_ms.size() < 20) {
        auto started = Clock::now();
        engine.run(x, labels.data());
        double seconds =
            std::chrono::duration<double>(Clock::now() - started).count();
        samples_ms.push_back(seconds * 1e3);
        total_seconds += seconds;
    }
    out.iterations = samples_ms.size();
    out.rowsPerSec = static_cast<double>(x.rows()) *
                     static_cast<double>(samples_ms.size()) / total_seconds;
    out.p50Ms = math::percentileNearestRank(samples_ms, 0.50);
    out.p99Ms = math::percentileNearestRank(samples_ms, 0.99);
    return out;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string json_path = bench::extractJsonPath(argc, argv);
    (void)argc;
    (void)argv;

    std::size_t hardware = std::thread::hardware_concurrency();
    if (hardware == 0)
        hardware = 1;

    // 1 -> N in powers of two, always including 4 (the acceptance point)
    // and the visible core count.
    std::vector<std::size_t> jobs_sweep;
    for (std::size_t j = 1; j <= std::max<std::size_t>(4, hardware);
         j *= 2)
        jobs_sweep.push_back(j);
    if (std::find(jobs_sweep.begin(), jobs_sweep.end(), hardware) ==
            jobs_sweep.end() &&
        hardware <= 16)
        jobs_sweep.push_back(hardware);
    std::sort(jobs_sweep.begin(), jobs_sweep.end());

    const std::vector<std::size_t> batches = {64, 1024, 16384};
    const std::vector<std::pair<std::string, ir::ModelIr>> families = {
        {"mlp", bench::benchMlpIr()},
        {"kmeans", bench::benchKMeansIr()},
        {"svm", bench::benchSvmIr()},
        {"tree", bench::benchTreeIr()},
    };

    std::cout << "=== InferenceEngine per-core scaling (" << hardware
              << " hardware threads visible) ===\n";
    std::cout << "family   batch  jobs      rows/s   speedup   p50 ms"
                 "   p99 ms\n";

    bench::BenchJson json;
    // (family, batch) -> rows/s at the swept jobs widths; [1] and [4]
    // feed the acceptance verdict.
    std::map<std::pair<std::string, std::size_t>,
             std::map<std::size_t, double>>
        rows_per_sec;

    for (const auto &[family, model] : families) {
        auto plan = ir::ExecutablePlan::compile(model);
        for (std::size_t batch : batches) {
            auto x = bench::benchFeatures(batch, model.inputDim);
            std::vector<int> reference = plan.run(x);
            for (std::size_t jobs : jobs_sweep) {
                runtime::EngineOptions options;
                options.jobs = jobs;
                // The sweep's whole point is sharding behavior, so let
                // every batch size shard (the default keeps sub-2048-row
                // batches inline).
                options.minRowsToShard = 1;
                runtime::InferenceEngine engine(plan, options);

                Measurement m = measure(engine, x, reference);
                rows_per_sec[{family, batch}][jobs] = m.rowsPerSec;
                double speedup =
                    m.rowsPerSec / rows_per_sec[{family, batch}][1];
                std::cout << common::format(
                    "%-7s %6zu %5zu %11.0f %8.2fx %8.3f %8.3f\n",
                    family.c_str(), batch, jobs, m.rowsPerSec, speedup,
                    m.p50Ms, m.p99Ms);

                json.add(common::format("%s/batch%zu/jobs%zu",
                                        family.c_str(), batch, jobs),
                         {{"rows_per_sec", m.rowsPerSec},
                          {"speedup_vs_jobs1", speedup},
                          {"p50_ms", m.p50Ms},
                          {"p99_ms", m.p99Ms},
                          {"iterations",
                           static_cast<double>(m.iterations)}});
            }
        }
    }

    // Acceptance bar: >= 3x MLP rows/s at 4 jobs vs 1 job, batch 16384.
    const auto &mlp_16384 = rows_per_sec[{"mlp", 16384}];
    double scaling = mlp_16384.count(4) && mlp_16384.at(1) > 0.0
                         ? mlp_16384.at(4) / mlp_16384.at(1)
                         : 0.0;
    bool pass = scaling >= 3.0;
    std::cout << common::format(
        "\nMLP batch-16384 scaling, 4 jobs vs 1: %.2fx — %s", scaling,
        hardware >= 4
            ? (pass ? "PASS (>= 3x)" : "FAIL (< 3x)")
            : "n/a (host exposes < 4 cores; bar needs >= 4)");
    std::cout << "\n";
    json.add("mlp/batch16384/scaling_4v1",
             {{"speedup", scaling},
              {"hardware_threads", static_cast<double>(hardware)}});

    if (!json_path.empty() && !json.write(json_path))
        return 1;
    // Only fail the run on a real miss: a sub-4-core host cannot
    // demonstrate 4-way scaling, so the verdict is informational there.
    return (hardware >= 4 && !pass) ? 1 : 0;
}
