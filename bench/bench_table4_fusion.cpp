/**
 * @file
 * Table 4 reproduction: model fusion resource usage.
 *
 * Paper reference (Table 4):
 *   AD: Part 1   44 PCUs   81 PMUs
 *   AD: Part 2   51 PCUs   96 PMUs
 *   AD: Fused    48 PCUs   83 PMUs
 *
 * Setup: the AD dataset is split into two halves and a model is searched
 * for each half independently (as if two tenants each brought half the
 * data). Since the two halves share all features, Homunculus fuses them
 * into a single model trained on the union. The paper's observation:
 * the fused model costs about the same as ONE split model — i.e. roughly
 * half the resources of deploying both — because the two halves encode
 * the same network characteristics.
 */
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/table_printer.hpp"
#include "core/fusion.hpp"

using namespace homunculus;
using namespace homunculus::bench;

namespace {

core::GeneratedModel
searchOn(const ml::DataSplit &split, const std::string &name)
{
    auto platform = paperTaurus();
    core::ModelSpec spec = appSpec(App::kAd);
    spec.name = name;
    spec.dataLoader = [split] { return split; };
    auto options = searchBudget(4, 8);
    return core::searchSpec(spec, platform, options, split).value();
}

void
BM_FeatureOverlapAssessment(benchmark::State &state)
{
    auto split = loadAd();
    for (auto _ : state) {
        auto overlap =
            core::assessFeatureOverlap(split.train, split.train);
        benchmark::DoNotOptimize(overlap.fraction);
    }
}
BENCHMARK(BM_FeatureOverlapAssessment);

}  // namespace

int
main(int argc, char **argv)
{
    std::cout << "=== Table 4: fused resource usage (AD dataset split "
                 "into two halves) ===\n\n";

    auto full = loadAd();
    auto [part1, part2] = core::halveSplit(full, kBenchSeed);

    // Fusion policy check: the halves share every feature.
    auto overlap = core::assessFeatureOverlap(part1.train, part2.train);
    std::cout << "  feature overlap: " << overlap.fraction * 100.0
              << "% -> fuse = "
              << (core::shouldFuse(part1.train, part2.train) ? "yes" : "no")
              << "\n\n";

    auto model1 = searchOn(part1, "ad_part1");
    auto model2 = searchOn(part2, "ad_part2");
    auto fused_split = core::fuseSplits(part1, part2);
    auto fused = searchOn(fused_split, "ad_fused");

    common::TablePrinter table({"Application", "PCUs", "PMUs", "F1"});
    auto add = [&](const std::string &name,
                   const core::GeneratedModel &model) {
        table.addRow({name,
                      common::TablePrinter::cell(static_cast<long long>(
                          model.report.computeUnits)),
                      common::TablePrinter::cell(static_cast<long long>(
                          model.report.memoryUnits)),
                      common::TablePrinter::cell(100.0 * model.objective,
                                                 2)});
    };
    add("AD: Part 1", model1);
    add("AD: Part 2", model2);
    add("AD: Fused", fused);
    table.print();

    std::cout << "\n";
    printPaperNote("Part1 44/81, Part2 51/96, Fused 48/83 — fused cost is "
                   "about one split model, i.e. ~2x saving vs deploying "
                   "both");
    std::size_t both_cus =
        model1.report.computeUnits + model2.report.computeUnits;
    std::size_t both_mus =
        model1.report.memoryUnits + model2.report.memoryUnits;
    bool shape = fused.report.computeUnits < both_cus &&
                 fused.report.memoryUnits < both_mus;
    std::cout << "  [shape] fused < part1 + part2 on both CU and MU: "
              << (shape ? "YES" : "NO") << " (both = " << both_cus << "/"
              << both_mus << ")\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
