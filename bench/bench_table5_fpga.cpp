/**
 * @file
 * Table 5 reproduction: resource consumption and power of the Table 2
 * models on the Taurus FPGA testbed (Alveo-style bump-in-the-wire).
 *
 * Paper reference (Table 5):
 *   Loopback  -    LUT 5.36  FF 3.64  BRAM 4.15  15.131 W
 *   Base-AD   DNN  LUT 6.55  FF 4.30  BRAM 4.15  16.969 W
 *   Hom-AD    DNN  LUT 6.61  FF 4.43  BRAM 4.15  17.440 W
 *   Base-TC   DNN  LUT 6.69  FF 4.48  BRAM 4.15  17.553 W
 *   Hom-TC    DNN  LUT 7.48  FF 4.77  BRAM 4.15  18.405 W
 *   Base-BD   DNN  LUT 7.29  FF 4.68  BRAM 4.15  17.807 W
 *   Hom-BD    DNN  LUT 6.72  FF 4.49  BRAM 4.15  17.309 W
 *
 * Shape: every model costs more than loopback; resource use (and hence
 * power) tracks parameter count, so larger Hom models for AD/TC cost
 * more than their baselines, while a smaller winning model costs less.
 */
#include <benchmark/benchmark.h>

#include <iostream>

#include "backends/fpga.hpp"
#include "bench_common.hpp"
#include "common/table_printer.hpp"

using namespace homunculus;
using namespace homunculus::bench;

namespace {

void
BM_FpgaEstimate(benchmark::State &state)
{
    backends::FpgaPlatform fpga;
    auto split = loadAd();
    auto baseline = trainBaseline(App::kAd, split, fpga);
    for (auto _ : state) {
        auto report = fpga.estimate(baseline.model);
        benchmark::DoNotOptimize(report.powerWatts);
    }
}
BENCHMARK(BM_FpgaEstimate);

}  // namespace

int
main(int argc, char **argv)
{
    std::cout << "=== Table 5: FPGA testbed resource/power for the "
                 "Table 2 models ===\n\n";

    backends::FpgaPlatform fpga;
    common::TablePrinter table({"Application", "Model", "LUT%", "FFs%",
                                "BRAM%", "Power (W)"});

    auto loopback = fpga.loopbackReport();
    table.addRow({"Loopback", "-",
                  common::TablePrinter::cell(loopback.lutPercent, 2),
                  common::TablePrinter::cell(loopback.ffPercent, 2),
                  common::TablePrinter::cell(loopback.bramPercent, 2),
                  common::TablePrinter::cell(loopback.powerWatts, 3)});

    std::vector<double> power;
    std::vector<std::size_t> params;
    for (App app : {App::kAd, App::kTc, App::kBd}) {
        core::ModelSpec spec = appSpec(app);
        auto split = spec.dataLoader();

        auto baseline = trainBaseline(app, split, fpga);
        auto base_report = fpga.estimate(baseline.model);

        auto taurus = paperTaurus();
        auto options = searchBudget(4, 10);
        auto generated = core::searchSpec(spec, taurus, options, split).value();
        auto hom_report = fpga.estimate(generated.model);

        auto add = [&](const std::string &name,
                       const backends::ResourceReport &report,
                       std::size_t param_count) {
            table.addRow({name, "DNN",
                          common::TablePrinter::cell(report.lutPercent, 2),
                          common::TablePrinter::cell(report.ffPercent, 2),
                          common::TablePrinter::cell(report.bramPercent, 2),
                          common::TablePrinter::cell(report.powerWatts, 3)});
            power.push_back(report.powerWatts);
            params.push_back(param_count);
        };
        add("Base-" + appName(app), base_report,
            baseline.model.paramCount());
        add("Hom-" + appName(app), hom_report,
            generated.model.paramCount());
    }
    table.print();

    std::cout << "\n";
    printPaperNote("loopback 15.131 W; every model adds 1.8-3.3 W; power "
                   "tracks parameter count (LUTs store the parameters)");
    bool all_above = true;
    for (double p : power)
        all_above &= p > loopback.powerWatts;
    // Power should order with parameter count.
    bool monotone = true;
    for (std::size_t i = 0; i < power.size(); ++i)
        for (std::size_t j = 0; j < power.size(); ++j)
            if (params[i] < params[j] && power[i] > power[j] + 1e-9)
                monotone = false;
    std::cout << "  [shape] all models above loopback power: "
              << (all_above ? "YES" : "NO") << "\n"
              << "  [shape] power monotone in parameter count: "
              << (monotone ? "YES" : "NO") << "\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
