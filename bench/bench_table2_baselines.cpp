/**
 * @file
 * Table 2 reproduction: hand-tuned baseline models vs. Homunculus-
 * generated models for AD, TC, and BD on the Taurus target.
 *
 * Paper reference (Table 2):
 *   Base-AD  7 feat  203 params  F1 71.10  CUs  24  MUs  48
 *   Hom-AD   7 feat  254 params  F1 83.10  CUs  41  MUs  67
 *   Base-TC  7 feat  275 params  F1 61.04  CUs  31  MUs  59
 *   Hom-TC   7 feat  370 params  F1 68.75  CUs  54  MUs  97
 *   Base-BD 30 feat  662 params  F1 77.00  CUs 167  MUs  45
 *   Hom-BD  30 feat  501 params  F1 79.80  CUs  53  MUs 151
 *
 * Expected shape on our synthetic substrate: Hom-* beats Base-* on F1 for
 * every application; Hom models use the platform more aggressively; the
 * BD evaluation runs on per-packet partial histograms (reaction time in
 * nanoseconds instead of FlowLens's 3600 s aggregation window).
 *
 * A google-benchmark timing section at the end measures the per-candidate
 * training + feasibility evaluation cost.
 */
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "common/table_printer.hpp"

using namespace homunculus;
using namespace homunculus::bench;

namespace {

struct Row
{
    std::string name;
    std::size_t features = 0;
    std::size_t params = 0;
    double f1 = 0.0;
    std::size_t cus = 0;
    std::size_t mus = 0;
};

Row
makeRow(const std::string &name, std::size_t features,
        const core::CandidateEvaluation &evaluation)
{
    Row row;
    row.name = name;
    row.features = features;
    row.params = evaluation.model.paramCount();
    row.f1 = 100.0 * evaluation.objective;
    row.cus = evaluation.report.computeUnits;
    row.mus = evaluation.report.memoryUnits;
    return row;
}

void
runApp(App app, std::vector<Row> &rows)
{
    auto platform = paperTaurus();
    core::ModelSpec spec = appSpec(app);
    ml::DataSplit split = spec.dataLoader();

    auto baseline = trainBaseline(app, split, platform.platform());
    rows.push_back(makeRow("Base-" + appName(app),
                           split.train.numFeatures(), baseline));

    auto options = searchBudget(5, 15);
    auto generated = core::searchSpec(spec, platform, options, split).value();
    core::CandidateEvaluation hom;
    hom.model = generated.model;
    hom.report = generated.report;
    hom.objective = generated.objective;
    rows.push_back(
        makeRow("Hom-" + appName(app), split.train.numFeatures(), hom));
}

/** Micro-timing: one candidate evaluation (train + lower + estimate). */
void
BM_CandidateEvaluation(benchmark::State &state)
{
    auto platform = paperTaurus();
    auto split = loadAd();
    for (auto _ : state) {
        auto evaluation =
            trainBaseline(App::kAd, split, platform.platform());
        benchmark::DoNotOptimize(evaluation.objective);
    }
}
BENCHMARK(BM_CandidateEvaluation)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

int
main(int argc, char **argv)
{
    std::cout << "=== Table 2: hand-tuned baselines vs. Homunculus "
                 "(Taurus, 1 GPkt/s, 500 ns, 16x16) ===\n\n";

    std::vector<Row> rows;
    runApp(App::kAd, rows);
    runApp(App::kTc, rows);
    runApp(App::kBd, rows);

    common::TablePrinter table(
        {"Application", "Features", "# NN Param", "F1 Score", "CUs", "MUs"});
    for (const auto &row : rows) {
        table.addRow({row.name,
                      common::TablePrinter::cell(
                          static_cast<long long>(row.features)),
                      common::TablePrinter::cell(
                          static_cast<long long>(row.params)),
                      common::TablePrinter::cell(row.f1, 2),
                      common::TablePrinter::cell(
                          static_cast<long long>(row.cus)),
                      common::TablePrinter::cell(
                          static_cast<long long>(row.mus))});
    }
    table.print();

    std::cout << "\n";
    printPaperNote("Base-AD 71.10 vs Hom-AD 83.10; Base-TC 61.04 vs "
                   "Hom-TC 68.75; Base-BD 77.00 vs Hom-BD 79.80");
    printPaperNote("shape check: Hom-* F1 > Base-* F1 for every app; BD "
                   "tested on per-packet partial histograms");

    bool shape_holds = rows[1].f1 > rows[0].f1 && rows[3].f1 > rows[2].f1 &&
                       rows[5].f1 > rows[4].f1;
    std::cout << "  [shape] Homunculus beats baseline on all apps: "
              << (shape_holds ? "YES" : "NO") << "\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
