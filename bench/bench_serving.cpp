/**
 * @file
 * Serving-path benchmark: persistent-executor dispatch cost and the
 * RequestQueue/Server batching policies under open-loop arrivals.
 *
 * Part 1 — dispatch micro-bench: p50/p99 latency of sharding one small
 * (64-row) batch through InferenceEngine on the warm persistent
 * executor, against a faithful reimplementation of the PR 3 baseline
 * that spawned fresh std::threads per dispatch. This isolates the
 * ~tens-of-us fan-out cost the executor removes from every serving
 * micro-batch (labels cross-checked on both paths). Acceptance: the
 * executor's small-batch p50 beats the spawn baseline (verdict printed;
 * enforced via exit code on hosts with >= 4 cores, like the scaling
 * bench).
 *
 * Part 2 — batching-policy sweep: requests arrive open-loop at a
 * fraction of measured capacity, in bursts, and are served through
 * runtime::Server under size-only vs deadline policies. Reported per
 * config: request p50/p99 latency (admission -> verdict), shed
 * fraction, mean batch rows, flush-reason split. Acceptance: with a
 * deadline policy at sub-capacity load, request p99 stays bounded by
 * ~maxDelay (a small multiple — the bound is the point of the policy),
 * while the size-only policy's p99 blows up with the batch-fill time.
 * This part runs the exact single-lane kShed configuration PR 4
 * shipped, so its verdicts double as the no-regression check for the
 * multi-lane queue redesign.
 *
 * Part 3 — two-lane QoS sweep: a probe lane (tight maxDelay, lane 0)
 * and a bulk lane (full batches, lane 1) fed by two open-loop
 * producers, the bulk one at ~1.2x capacity so its lane saturates with
 * size flushes. Acceptance: the probe lane's request p99 stays bounded
 * by ~its own maxDelay (plus one in-flight batch — strict priority
 * cannot preempt the engine) even while the bulk lane is saturated.
 *
 * Part 4 — backpressure under 2x-capacity overload: the same single
 * lane served in kShed vs kEarlyDrop mode. Shed keeps everything it
 * admitted and serves it arbitrarily late (p99 grows with queue
 * depth); early-drop sheds rows that already blew twice their delay
 * budget at flush time, so the p99 of *served* rows stays bounded.
 * Acceptance: early-drop served p99 within a small multiple of its
 * drop threshold, and at least one row actually early-dropped.
 *
 * Part 5 — multi-model hot swap: two co-resident models (a 2-class
 * front model and the 4-class SVM as the deep model) behind
 * ModelRegistry + Router, two lanes at sub-capacity load, a chain rule
 * escalating front-label-1 rows to the deep model, and a mid-run
 * atomic swap of the front model to a second version. Every request's
 * route trace is replayed single-threaded through the exact plan
 * version that executed it. Acceptance: zero verdict errors (every hop
 * label bit-identical to the admitting plan version — enforced via
 * exit code on every host), both front versions observed, and request
 * p99 still bounded by ~maxDelay across the swap.
 *
 * Part 6 — availability under injected faults: the part-4 overload
 * rerun with a deterministic FaultInjector armed at engine.run, over
 * a (fault rate x bisect-retry depth) grid. Acceptance (every host —
 * the invariants are count-based, not timed): every admitted row
 * resolves as exactly one of {verdict, failure}, every delivered
 * verdict is bit-identical to a single-threaded replay through the
 * same plan, the disarmed leg fails nothing, and the 0.1%-rate legs
 * keep availability >= 99%.
 *
 * Part 7 — submit-path contention sweep: the lock-free MPSC admission
 * door against an in-bench reimplementation of the PR 8 door (one
 * mutex + deque + CV around every push), driven by 1..8 tight-loop
 * submitter threads against a draining consumer, across 1 and 4
 * lanes; then a ShardedServer shard sweep (1/2/4 shards) fed from
 * concurrent producers with per-row flow keys. Acceptance: submit p99
 * stays flat within 2x as submitters grow 1 -> 8 (the mutex door
 * convoys instead — that contrast is the point), single-submitter
 * door throughput is not regressed vs the mutex baseline (>= 0.9x),
 * and every sharded verdict is bit-identical to a single plan run
 * (count-based, enforced on every host; the two timing bars join the
 * >= 4-core gate).
 *
 * Usage: bench_serving [--json PATH]
 * (custom harness: the sweep needs open-loop pacing and direct control
 * of the measurement loop; --json writes bench_common's records.)
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "math/stats.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/request_queue.hpp"
#include "runtime/router.hpp"
#include "runtime/server.hpp"
#include "runtime/sharded_server.hpp"

using namespace homunculus;

namespace {

using Clock = std::chrono::steady_clock;

struct DispatchStats
{
    double p50Us = 0.0;
    double p99Us = 0.0;
};

/**
 * The PR 3 dispatch, reproduced as a baseline: every call spawns fresh
 * threads that work-steal chunks off an atomic counter, then joins
 * them. Same chunking, same per-worker Scratch arenas as the engine —
 * the only difference from the executor path is thread creation per
 * batch.
 */
void
spawnPerBatchRun(const ir::ExecutablePlan &plan, const math::Matrix &x,
                 std::size_t jobs, std::size_t shard_rows, int *labels)
{
    std::size_t num_chunks = (x.rows() + shard_rows - 1) / shard_rows;
    std::size_t workers = std::min(jobs, num_chunks);
    std::vector<ir::ExecutablePlan::Scratch> scratches(workers);
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        threads.emplace_back([&, w] {
            for (;;) {
                std::size_t chunk = next.fetch_add(1);
                if (chunk >= num_chunks)
                    return;
                std::size_t begin = chunk * shard_rows;
                std::size_t end = std::min(begin + shard_rows, x.rows());
                plan.runRange(x, begin, end, labels + begin,
                              scratches[w]);
            }
        });
    for (auto &thread : threads)
        thread.join();
}

DispatchStats
measureDispatch(const std::function<void()> &dispatch, std::size_t iters)
{
    std::vector<double> samples_us;
    samples_us.reserve(iters);
    for (std::size_t i = 0; i < iters; ++i) {
        auto started = Clock::now();
        dispatch();
        samples_us.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      started)
                .count());
    }
    return {math::percentileNearestRank(samples_us, 0.50),
            math::percentileNearestRank(samples_us, 0.99)};
}

struct SweepResult
{
    runtime::ServerStats stats;
    double offeredRate = 0.0;  ///< rows/s actually offered.
};

/**
 * A second version of the part-5 front model: bench::benchMlpIr()'s
 * exact shape (16 features, 2 classes — the registry's drop-in
 * invariant) with reseeded weights, so v1 and v2 label some rows
 * differently and a batch that mixed plans would be caught.
 */
ir::ModelIr
frontModelV2()
{
    common::Rng rng(bench::kBenchSeed + 2);
    ir::ModelIr model;
    model.kind = ir::ModelKind::kMlp;
    model.inputDim = 16;
    model.numClasses = 2;
    std::size_t prev = 16;
    for (std::size_t width : {std::size_t{32}, std::size_t{32},
                              std::size_t{2}}) {
        ir::QuantizedLayer layer;
        layer.inputDim = prev;
        layer.outputDim = width;
        layer.weights.resize(prev * width);
        layer.biases.resize(width);
        for (auto &w : layer.weights)
            w = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        for (auto &b : layer.biases)
            b = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        model.layers.push_back(std::move(layer));
        prev = width;
    }
    model.validate();
    return model;
}

/**
 * Open-loop arrival process: bursts of @p burst rows, burst start times
 * scheduled at the target rate regardless of server progress. Rows are
 * pre-built feature vectors (producer-side extraction is measured
 * elsewhere; this sweep isolates the queueing policy).
 */
SweepResult
sweepConfig(const ir::ModelIr &model, const math::Matrix &rows,
            double rate_rows_per_sec, const runtime::QueuePolicy &policy,
            std::size_t engine_jobs,
            runtime::BackpressureMode mode =
                runtime::BackpressureMode::kShed)
{
    runtime::EngineOptions engine_options;
    engine_options.jobs = engine_jobs;
    engine_options.minRowsToShard = 1;

    runtime::ServerConfig config;
    config.queue = policy;
    config.backpressure = mode;
    std::atomic<std::size_t> delivered{0};
    runtime::Server server(
        runtime::InferenceEngine::fromModel(model, engine_options),
        config,
        [&](const runtime::Request &, int) { delivered.fetch_add(1); });

    constexpr std::size_t kBurst = 32;
    auto started = Clock::now();
    for (std::size_t i = 0; i < rows.rows(); ++i) {
        if (i % kBurst == 0 && rate_rows_per_sec > 0.0) {
            auto due = started +
                       std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               static_cast<double>(i) /
                               rate_rows_per_sec));
            std::this_thread::sleep_until(due);
        }
        server.submit(rows.row(i));
    }
    double offered_seconds =
        std::chrono::duration<double>(Clock::now() - started).count();

    SweepResult result;
    result.stats = server.stop();
    result.offeredRate =
        offered_seconds > 0.0
            ? static_cast<double>(rows.rows()) / offered_seconds
            : 0.0;
    return result;
}

/**
 * The PR 8 admission door, reproduced as the part-7 baseline: one
 * mutex + deque per lane and a CV, taken on *every* push. Same
 * observable semantics as kShed RequestQueue admission (bounded depth,
 * shed beyond it, batch pops), so the sweep isolates exactly the door:
 * lock convoy vs lock-free ticket + ring.
 */
class MutexDoorQueue
{
  public:
    MutexDoorQueue(std::size_t lanes, std::size_t max_depth,
                   std::size_t max_batch)
        : rows_(lanes), maxDepth_(max_depth), maxBatch_(max_batch)
    {
    }

    runtime::Admission push(runtime::Request request, std::size_t lane)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return runtime::Admission::kRejectedClosed;
        if (rows_[lane].size() >= maxDepth_)
            return runtime::Admission::kShed;
        rows_[lane].push_back(std::move(request));
        readyCv_.notify_one();
        return runtime::Admission::kAdmitted;
    }

    /** Blocking batch pop; false once closed and drained. */
    bool pop(std::vector<runtime::Request> &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        readyCv_.wait(lock, [&] {
            if (closed_)
                return true;
            for (const auto &lane : rows_)
                if (!lane.empty())
                    return true;
            return false;
        });
        for (auto &lane : rows_) {
            if (lane.empty())
                continue;
            std::size_t take = std::min(maxBatch_, lane.size());
            out.assign(std::make_move_iterator(lane.begin()),
                       std::make_move_iterator(lane.begin() +
                                               static_cast<long>(take)));
            lane.erase(lane.begin(),
                       lane.begin() + static_cast<long>(take));
            return true;
        }
        return false;  // closed and empty.
    }

    void close()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        readyCv_.notify_all();
    }

  private:
    std::mutex mutex_;
    std::condition_variable readyCv_;
    std::vector<std::deque<runtime::Request>> rows_;
    std::size_t maxDepth_;
    std::size_t maxBatch_;
    bool closed_ = false;
};

struct ContentionResult
{
    double p50SubmitUs = 0.0;
    double p99SubmitUs = 0.0;
    double pushesPerSec = 0.0;  ///< door attempts/s (admitted + shed).
};

/**
 * Run @p threads tight-loop submitters for @p seconds against a
 * draining consumer, timing every 16th push. @p push is
 * (thread, sequence) -> void (it owns building the Request and picking
 * the lane); @p stop closes the queue, @p drained joins the consumer.
 */
ContentionResult
measureDoor(std::size_t threads, double seconds,
            const std::function<void(std::size_t, std::uint64_t)> &push,
            const std::function<void()> &stop)
{
    constexpr std::uint64_t kSampleMask = 15;
    std::vector<std::vector<double>> samples(threads);
    std::vector<std::uint64_t> attempts(threads, 0);
    auto bench_start = Clock::now();
    auto deadline = bench_start + std::chrono::duration<double>(seconds);
    std::vector<std::thread> producers;
    for (std::size_t t = 0; t < threads; ++t)
        producers.emplace_back([&, t] {
            samples[t].reserve(1 << 16);
            std::uint64_t i = 0;
            for (;; ++i) {
                if ((i & kSampleMask) == 0) {
                    if (Clock::now() >= deadline)
                        break;
                    auto started = Clock::now();
                    push(t, i);
                    samples[t].push_back(
                        std::chrono::duration<double, std::micro>(
                            Clock::now() - started)
                            .count());
                } else {
                    push(t, i);
                }
            }
            attempts[t] = i;
        });
    for (auto &producer : producers)
        producer.join();
    double wall =
        std::chrono::duration<double>(Clock::now() - bench_start)
            .count();
    stop();

    ContentionResult result;
    std::vector<double> merged;
    std::uint64_t total = 0;
    for (std::size_t t = 0; t < threads; ++t) {
        merged.insert(merged.end(), samples[t].begin(),
                      samples[t].end());
        total += attempts[t];
    }
    result.p50SubmitUs = math::percentileNearestRank(merged, 0.50);
    result.p99SubmitUs = math::percentileNearestRank(merged, 0.99);
    result.pushesPerSec =
        wall > 0.0 ? static_cast<double>(total) / wall : 0.0;
    return result;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string json_path = bench::extractJsonPath(argc, argv);
    (void)argc;
    (void)argv;

    std::size_t hardware = std::thread::hardware_concurrency();
    if (hardware == 0)
        hardware = 1;
    std::size_t jobs = std::min<std::size_t>(4, hardware);

    bench::BenchJson json;
    ir::ModelIr model = bench::benchMlpIr();
    auto plan = ir::ExecutablePlan::compile(model);

    // ---------------------------------------- part 1: dispatch cost ---
    constexpr std::size_t kSmallBatch = 64;
    constexpr std::size_t kShardRows = 16;  // 4 shards for 4 workers.
    auto small = bench::benchFeatures(kSmallBatch, model.inputDim);
    std::vector<int> reference = plan.run(small);

    runtime::EngineOptions engine_options;
    engine_options.jobs = jobs;
    engine_options.minRowsToShard = 1;
    engine_options.maxShardRows = kShardRows;
    runtime::InferenceEngine engine(plan, engine_options);

    std::vector<int> labels(kSmallBatch);
    engine.run(small, labels.data());  // warm the executor.
    if (labels != reference)
        throw std::runtime_error("serving bench: executor labels diverge");
    DispatchStats pooled = measureDispatch(
        [&] { engine.run(small, labels.data()); }, 3000);

    spawnPerBatchRun(plan, small, jobs, kShardRows, labels.data());
    if (labels != reference)
        throw std::runtime_error("serving bench: spawn labels diverge");
    DispatchStats spawned = measureDispatch(
        [&] {
            spawnPerBatchRun(plan, small, jobs, kShardRows,
                             labels.data());
        },
        1500);

    double dispatch_speedup =
        pooled.p50Us > 0.0 ? spawned.p50Us / pooled.p50Us : 0.0;
    std::cout << common::format(
        "=== 64-row dispatch, %zu jobs (%zu hardware threads) ===\n"
        "executor   p50 %8.1f us   p99 %8.1f us\n"
        "spawn      p50 %8.1f us   p99 %8.1f us   (executor %.2fx)\n",
        jobs, hardware, pooled.p50Us, pooled.p99Us, spawned.p50Us,
        spawned.p99Us, dispatch_speedup);
    json.add("dispatch64/executor",
             {{"p50_us", pooled.p50Us}, {"p99_us", pooled.p99Us}});
    json.add("dispatch64/spawn",
             {{"p50_us", spawned.p50Us},
              {"p99_us", spawned.p99Us},
              {"executor_speedup_p50", dispatch_speedup}});

    // ------------------------------------ part 2: batching policies ---
    // Capacity: steady-state engine throughput on full batches.
    auto big = bench::benchFeatures(1024, model.inputDim);
    std::vector<int> big_labels(big.rows());
    engine.run(big, big_labels.data());
    double capacity;
    {
        auto started = Clock::now();
        std::size_t iters = 0;
        while (std::chrono::duration<double>(Clock::now() - started)
                   .count() < 0.25)
            engine.run(big, big_labels.data()), ++iters;
        capacity = static_cast<double>(iters * big.rows()) /
                   std::chrono::duration<double>(Clock::now() - started)
                       .count();
    }
    std::cout << common::format(
        "\n=== batching policies (capacity ~%.0f rows/s) ===\n",
        capacity);
    std::cout << "policy                rate      offered   p50 req us "
                 " p99 req us  shed%  batch  flushes(sz/dl/dr)\n";

    struct Policy
    {
        std::string name;
        runtime::QueuePolicy queue;
        bool deadline;  ///< participates in the p99 acceptance check.
    };
    std::vector<Policy> policies;
    {
        Policy size_only;
        size_only.name = "size-1024";
        size_only.queue.maxBatch = 1024;
        size_only.queue.maxDelayUs = 5'000'000;  // deadline ~never.
        size_only.queue.maxDepth = 65536;
        size_only.deadline = false;
        policies.push_back(size_only);

        Policy deadline_1ms = size_only;
        deadline_1ms.name = "deadline-1000us";
        deadline_1ms.queue.maxDelayUs = 1000;
        deadline_1ms.deadline = true;
        policies.push_back(deadline_1ms);

        Policy deadline_250us = size_only;
        deadline_250us.name = "deadline-250us";
        deadline_250us.queue.maxDelayUs = 250;
        deadline_250us.deadline = true;
        policies.push_back(deadline_250us);
    }

    bool deadline_bounded = true;
    for (double fraction : {0.1, 0.4}) {
        double rate = capacity * fraction;
        // Enough rows to reach steady state, capped so one config stays
        // under ~2 s of wall time even on slow hosts.
        auto rows_wanted = static_cast<std::size_t>(
            std::min(30'000.0, std::max(4'000.0, rate * 1.5)));
        auto arrivals = bench::benchFeatures(rows_wanted, model.inputDim);

        for (const Policy &policy : policies) {
            SweepResult result = sweepConfig(model, arrivals, rate,
                                             policy.queue, jobs);
            const runtime::ServerStats &stats = result.stats;
            double shed_pct =
                stats.queue.accepted + stats.queue.shed > 0
                    ? 100.0 * static_cast<double>(stats.queue.shed) /
                          static_cast<double>(stats.queue.accepted +
                                              stats.queue.shed)
                    : 0.0;
            std::cout << common::format(
                "%-20s %8.0f/s %8.0f/s %11.1f %11.1f %6.2f %6.1f"
                "  %llu/%llu/%llu\n",
                policy.name.c_str(), rate, result.offeredRate,
                stats.p50RequestLatencyUs, stats.p99RequestLatencyUs,
                shed_pct, stats.meanBatchRows,
                static_cast<unsigned long long>(stats.queue.sizeFlushes),
                static_cast<unsigned long long>(
                    stats.queue.deadlineFlushes),
                static_cast<unsigned long long>(
                    stats.queue.drainFlushes));
            json.add(common::format("serve/%s/rate%.0f",
                                    policy.name.c_str(), rate),
                     {{"target_rate_rows_per_sec", rate},
                      {"offered_rate_rows_per_sec", result.offeredRate},
                      {"p50_request_us", stats.p50RequestLatencyUs},
                      {"p99_request_us", stats.p99RequestLatencyUs},
                      {"p99_batch_infer_us", stats.p99BatchLatencyUs},
                      {"shed_pct", shed_pct},
                      {"mean_batch_rows", stats.meanBatchRows},
                      {"size_flushes",
                       static_cast<double>(stats.queue.sizeFlushes)},
                      {"deadline_flushes",
                       static_cast<double>(
                           stats.queue.deadlineFlushes)},
                      {"max_delay_us",
                       static_cast<double>(policy.queue.maxDelayUs)}});

            // The deadline guarantee under sub-capacity bursts: p99
            // request latency stays within a small multiple of
            // maxDelay (queueing bounded by the policy; the rest is
            // one batch of inference and scheduler jitter).
            if (policy.deadline) {
                double bound =
                    static_cast<double>(policy.queue.maxDelayUs) * 4.0 +
                    stats.p99BatchLatencyUs + 2000.0;
                if (stats.p99RequestLatencyUs > bound) {
                    deadline_bounded = false;
                    std::cout << common::format(
                        "  ^ p99 %.1f us exceeds bound %.1f us\n",
                        stats.p99RequestLatencyUs, bound);
                }
            }
        }
    }

    // ------------------------------------- part 3: two-lane QoS sweep ---
    // A probe lane with a tight delay budget in front of a bulk lane
    // that saturates the engine with full batches. Strict priority
    // means a ready probe flush jumps every queued bulk batch; the only
    // wait it cannot skip is the batch already inside the engine.
    runtime::QueuePolicy probe_policy;
    probe_policy.maxBatch = 64;
    probe_policy.maxDelayUs = 500;
    probe_policy.maxDepth = 8192;
    runtime::QueuePolicy bulk_policy;
    bulk_policy.maxBatch = 1024;
    bulk_policy.maxDelayUs = 20'000;
    bulk_policy.maxDepth = 16384;

    double bulk_rate = capacity * 1.2;
    double probe_rate = std::max(2'000.0, capacity * 0.02);
    auto bulk_rows_wanted = static_cast<std::size_t>(
        std::min(40'000.0, std::max(8'000.0, bulk_rate * 0.75)));
    double lane_wall =
        static_cast<double>(bulk_rows_wanted) / bulk_rate;
    auto probe_rows_wanted = static_cast<std::size_t>(
        std::max(200.0, probe_rate * lane_wall));
    auto bulk_rows = bench::benchFeatures(bulk_rows_wanted,
                                          model.inputDim);
    auto probe_rows = bench::benchFeatures(probe_rows_wanted,
                                           model.inputDim);

    runtime::ServerStats lane_stats;
    {
        runtime::EngineOptions serve_engine_options;
        serve_engine_options.jobs = jobs;
        serve_engine_options.minRowsToShard = 1;
        runtime::ServerConfig config;
        config.queue = probe_policy;
        config.extraLanes = {bulk_policy};
        runtime::Server server(
            runtime::InferenceEngine::fromModel(model,
                                                serve_engine_options),
            config);
        // Two open-loop producers: bursty bulk at 1.2x capacity on a
        // second thread, paced probes here.
        std::thread bulk_producer([&] {
            constexpr std::size_t kBurst = 32;
            auto started = Clock::now();
            for (std::size_t i = 0; i < bulk_rows.rows(); ++i) {
                if (i % kBurst == 0) {
                    auto due = started +
                               std::chrono::duration_cast<
                                   Clock::duration>(
                                   std::chrono::duration<double>(
                                       static_cast<double>(i) /
                                       bulk_rate));
                    std::this_thread::sleep_until(due);
                }
                server.submit(bulk_rows.row(i), 1);
            }
        });
        auto started = Clock::now();
        for (std::size_t i = 0; i < probe_rows.rows(); ++i) {
            auto due = started + std::chrono::duration_cast<
                                     Clock::duration>(
                                     std::chrono::duration<double>(
                                         static_cast<double>(i) /
                                         probe_rate));
            std::this_thread::sleep_until(due);
            server.submit(probe_rows.row(i), 0);
        }
        bulk_producer.join();
        lane_stats = server.stop();
    }

    const runtime::LaneStats &probe_lane = lane_stats.lanes.at(0);
    const runtime::LaneStats &bulk_lane = lane_stats.lanes.at(1);
    std::cout << common::format(
        "\n=== two-lane QoS: probe (maxDelay %llu us) vs bulk at 1.2x "
        "capacity ===\n"
        "probe lane  served %7zu  p50 %8.1f us  p99 %8.1f us\n"
        "bulk  lane  served %7zu  p50 %8.1f us  p99 %8.1f us  "
        "(%.1f-row batches, %llu size flushes, %llu shed)\n",
        static_cast<unsigned long long>(probe_policy.maxDelayUs),
        probe_lane.rowsServed, probe_lane.p50RequestLatencyUs,
        probe_lane.p99RequestLatencyUs, bulk_lane.rowsServed,
        bulk_lane.p50RequestLatencyUs, bulk_lane.p99RequestLatencyUs,
        bulk_lane.batches > 0
            ? static_cast<double>(bulk_lane.rowsServed) /
                  static_cast<double>(bulk_lane.batches)
            : 0.0,
        static_cast<unsigned long long>(bulk_lane.queue.sizeFlushes),
        static_cast<unsigned long long>(bulk_lane.queue.shed));

    // The probe bound: its own deadline budget (small multiple for
    // scheduler jitter) plus the one bulk batch that may already be in
    // the engine when a probe flush becomes ready.
    double probe_bound =
        static_cast<double>(probe_policy.maxDelayUs) * 4.0 +
        lane_stats.p99BatchLatencyUs + 2000.0;
    bool probe_bounded =
        probe_lane.p99RequestLatencyUs <= probe_bound &&
        probe_lane.rowsServed > 0;
    json.add("lanes/probe",
             {{"p50_request_us", probe_lane.p50RequestLatencyUs},
              {"p99_request_us", probe_lane.p99RequestLatencyUs},
              {"rows_served",
               static_cast<double>(probe_lane.rowsServed)},
              {"bound_us", probe_bound},
              {"max_delay_us",
               static_cast<double>(probe_policy.maxDelayUs)}});
    json.add("lanes/bulk",
             {{"p50_request_us", bulk_lane.p50RequestLatencyUs},
              {"p99_request_us", bulk_lane.p99RequestLatencyUs},
              {"rows_served", static_cast<double>(bulk_lane.rowsServed)},
              {"size_flushes",
               static_cast<double>(bulk_lane.queue.sizeFlushes)},
              {"shed", static_cast<double>(bulk_lane.queue.shed)}});

    // --------------------- part 4: shed vs early-drop at 2x capacity ---
    runtime::QueuePolicy overload_policy;
    overload_policy.maxBatch = 256;
    overload_policy.maxDelayUs = 1000;   // drop threshold = 2000 us.
    overload_policy.maxDepth = 8192;     // deep: shed mode queues long.
    double overload_rate = capacity * 2.0;
    auto overload_rows_wanted = static_cast<std::size_t>(
        std::min(40'000.0, std::max(8'000.0, overload_rate * 0.5)));
    auto overload_rows = bench::benchFeatures(overload_rows_wanted,
                                              model.inputDim);

    SweepResult shed_result =
        sweepConfig(model, overload_rows, overload_rate,
                    overload_policy, jobs,
                    runtime::BackpressureMode::kShed);
    SweepResult drop_result =
        sweepConfig(model, overload_rows, overload_rate,
                    overload_policy, jobs,
                    runtime::BackpressureMode::kEarlyDrop);

    double drop_bound =
        static_cast<double>(overload_policy.effectiveDropAfterUs()) *
            4.0 +
        drop_result.stats.p99BatchLatencyUs + 2000.0;
    bool early_drop_bounded =
        drop_result.stats.p99RequestLatencyUs <= drop_bound &&
        drop_result.stats.rowsServed > 0 &&
        drop_result.stats.queue.earlyDropped > 0;
    std::cout << common::format(
        "\n=== 2x-capacity overload: shed vs early-drop (drop after "
        "%llu us) ===\n"
        "shed        served %7zu  p99 %8.1f us  (%llu shed)\n"
        "early-drop  served %7zu  p99 %8.1f us  (%llu shed, %llu "
        "dropped; bound %.1f us)\n",
        static_cast<unsigned long long>(
            overload_policy.effectiveDropAfterUs()),
        shed_result.stats.rowsServed,
        shed_result.stats.p99RequestLatencyUs,
        static_cast<unsigned long long>(shed_result.stats.queue.shed),
        drop_result.stats.rowsServed,
        drop_result.stats.p99RequestLatencyUs,
        static_cast<unsigned long long>(drop_result.stats.queue.shed),
        static_cast<unsigned long long>(
            drop_result.stats.queue.earlyDropped),
        drop_bound);
    json.add("overload/shed",
             {{"p99_request_us", shed_result.stats.p99RequestLatencyUs},
              {"rows_served",
               static_cast<double>(shed_result.stats.rowsServed)},
              {"shed",
               static_cast<double>(shed_result.stats.queue.shed)}});
    json.add("overload/early_drop",
             {{"p99_request_us",
               drop_result.stats.p99RequestLatencyUs},
              {"rows_served",
               static_cast<double>(drop_result.stats.rowsServed)},
              {"early_dropped",
               static_cast<double>(
                   drop_result.stats.queue.earlyDropped)},
              {"bound_us", drop_bound}});

    // ------------------- part 5: multi-model serving with hot swap ---
    // Two co-resident models on two lanes, a chain rule escalating
    // front-label-1 rows to the deep model, and a mid-run atomic swap
    // of the front model. The route trace of every request is replayed
    // single-threaded through the exact plan version that executed it:
    // "zero verdict errors" here means bit-identical labels against
    // the admitting version, across the swap.
    auto registry = std::make_shared<runtime::ModelRegistry>([&] {
        runtime::EngineOptions options;
        options.jobs = jobs;
        options.minRowsToShard = 1;
        return options;
    }());
    registry->load("front", model);          // v1 (the part-1 MLP).
    registry->load("front", frontModelV2()); // v2, idle until the swap.
    registry->load("deep", bench::benchSvmIr());

    runtime::RouteConfig route;
    route.defaultModel = "front";
    route.laneModels = {"front", "deep"};
    route.chain = {{"front", 1, "deep"}};

    runtime::QueuePolicy swap_policy;
    swap_policy.maxBatch = 256;
    swap_policy.maxDelayUs = 1000;
    swap_policy.maxDepth = 8192;
    runtime::ServerConfig swap_config;
    swap_config.queue = swap_policy;
    swap_config.extraLanes = {swap_policy};

    double swap_rate = std::max(4'000.0, capacity * 0.2);
    auto swap_rows_wanted = static_cast<std::size_t>(
        std::min(20'000.0, std::max(4'000.0, swap_rate * 0.5)));
    auto front_rows = bench::benchFeatures(swap_rows_wanted, 16);
    auto deep_rows = bench::benchFeatures(swap_rows_wanted, 16);

    struct ObservedRoute
    {
        std::vector<double> features;
        runtime::RouteTrace trace;
    };
    std::mutex trace_mutex;
    std::vector<ObservedRoute> observed;
    observed.reserve(2 * swap_rows_wanted);

    runtime::ServerStats swap_stats;
    {
        runtime::Server server(
            registry, route, swap_config, {},
            [&](const runtime::Request &request,
                const runtime::RouteTrace &trace) {
                std::lock_guard<std::mutex> lock(trace_mutex);
                observed.push_back({request.features, trace});
            });
        auto pace = [&](const math::Matrix &rows, std::size_t lane) {
            constexpr std::size_t kBurst = 32;
            auto started = Clock::now();
            for (std::size_t i = 0; i < rows.rows(); ++i) {
                if (i % kBurst == 0) {
                    auto due = started +
                               std::chrono::duration_cast<
                                   Clock::duration>(
                                   std::chrono::duration<double>(
                                       static_cast<double>(i) /
                                       swap_rate));
                    std::this_thread::sleep_until(due);
                }
                server.submit(rows.row(i), lane);
            }
        };
        std::thread deep_producer([&] { pace(deep_rows, 1); });
        // Swap mid-run from a third thread so the flip races live
        // batches: in-flight ones finish on their pinned v1, later
        // ones pick up v2.
        std::thread swapper([&] {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(0.5 * swap_rows_wanted /
                                              swap_rate));
            registry->swap("front", 2);
        });
        pace(front_rows, 0);
        deep_producer.join();
        swapper.join();
        swap_stats = server.stop();
    }

    std::size_t verdict_errors = 0;
    std::set<std::uint64_t> front_versions;
    for (const ObservedRoute &entry : observed) {
        for (const runtime::RouteHop &hop : entry.trace.hops) {
            if (hop.model == "front")
                front_versions.insert(hop.version);
            auto epoch = registry->version(hop.model, hop.version);
            if (!epoch ||
                hop.label != epoch->engine.plan().runRow(
                                 entry.features.data(),
                                 entry.features.size()))
                ++verdict_errors;
        }
    }
    bool swap_exact = verdict_errors == 0 &&
                      observed.size() == swap_stats.rowsServed &&
                      swap_stats.rowsServed > 0;
    bool swap_saw_both = front_versions.count(1) > 0 &&
                         front_versions.count(2) > 0;
    double swap_bound =
        static_cast<double>(swap_policy.maxDelayUs) * 4.0 +
        swap_stats.p99BatchLatencyUs + 2000.0;
    bool swap_p99_bounded =
        swap_stats.p99RequestLatencyUs <= swap_bound;

    std::cout << common::format(
        "\n=== multi-model hot swap: front v1 -> v2 mid-run, deep lane "
        "+ chain front:1=deep ===\n"
        "served %zu rows (%zu traces), %zu verdict errors vs admitting "
        "plan, front versions seen:%s%s\n"
        "request p50 %8.1f us  p99 %8.1f us  (bound %.1f us)\n",
        swap_stats.rowsServed, observed.size(), verdict_errors,
        front_versions.count(1) ? " v1" : "",
        front_versions.count(2) ? " v2" : "",
        swap_stats.p50RequestLatencyUs, swap_stats.p99RequestLatencyUs,
        swap_bound);
    for (const runtime::ModelStats &model_stats : swap_stats.models)
        std::cout << common::format(
            "model %-6s %8zu rows / %5zu steps   step p50 %8.1f us  "
            "p99 %8.1f us   (active v%llu)\n",
            model_stats.name.c_str(), model_stats.rowsServed,
            model_stats.batches, model_stats.p50StepLatencyUs,
            model_stats.p99StepLatencyUs,
            static_cast<unsigned long long>(model_stats.activeVersion));
    json.add("swap/run",
             {{"rows_served",
               static_cast<double>(swap_stats.rowsServed)},
              {"verdict_errors",
               static_cast<double>(verdict_errors)},
              {"p50_request_us", swap_stats.p50RequestLatencyUs},
              {"p99_request_us", swap_stats.p99RequestLatencyUs},
              {"bound_us", swap_bound},
              {"target_rate_rows_per_sec", swap_rate}});
    for (const runtime::ModelStats &model_stats : swap_stats.models)
        json.add("swap/model_" + model_stats.name,
                 {{"rows_served",
                   static_cast<double>(model_stats.rowsServed)},
                  {"steps", static_cast<double>(model_stats.batches)},
                  {"step_p99_us", model_stats.p99StepLatencyUs},
                  {"active_version",
                   static_cast<double>(model_stats.activeVersion)}});

    // ----------- part 6: availability under injected engine faults ---
    // The part-4 overload (2x capacity, kShed) rerun with a
    // deterministic fault injector armed at the engine.run site, over
    // a (rate x bisect-retry) grid. Every admitted row must resolve
    // as exactly one of {verdict, failure} (no early-drop in shed
    // mode), every delivered verdict must be bit-identical to a
    // single-threaded replay through the same plan, and the 0.1%-rate
    // legs must keep served-verdict availability >= 99%.
    struct FaultLeg
    {
        const char *key;
        double rate;
        std::size_t retry;
    };
    const FaultLeg fault_legs[] = {
        {"rate0_retry0", 0.0, 0},     {"rate001_retry0", 0.001, 0},
        {"rate001_retry5", 0.001, 5}, {"rate01_retry0", 0.01, 0},
        {"rate01_retry5", 0.01, 5},
    };
    // Small batches so the per-mille rates actually fire: ~500
    // engine.run draws per leg instead of part 4's ~60.
    runtime::QueuePolicy fault_policy;
    fault_policy.maxBatch = 32;
    fault_policy.maxDelayUs = 1000;
    fault_policy.maxDepth = 8192;
    runtime::EngineOptions fault_ref_options;
    fault_ref_options.jobs = 1;
    runtime::InferenceEngine fault_ref =
        runtime::InferenceEngine::fromModel(model, fault_ref_options);

    bool fault_partition_ok = true;    // served + failed == accepted.
    bool fault_zero_rate_clean = true; // disarmed leg fails nothing.
    std::size_t fault_mismatches = 0;  // verdicts vs replayed plan.
    double fault_availability = 1.0;  // worst 0.1%-rate-leg ratio.
    std::cout << common::format(
        "\n=== injected engine.run faults at 2x capacity (kShed, "
        "maxBatch %zu) ===\n",
        fault_policy.maxBatch);
    for (const FaultLeg &leg : fault_legs) {
        runtime::faults::FaultInjector injector;
        if (leg.rate > 0.0)
            injector.arm(runtime::faults::kSiteEngineRun, leg.rate,
                         bench::kBenchSeed);

        runtime::EngineOptions fault_engine_options;
        fault_engine_options.jobs = jobs;
        fault_engine_options.minRowsToShard = 1;
        runtime::ServerConfig fault_config;
        fault_config.queue = fault_policy;
        fault_config.backpressure = runtime::BackpressureMode::kShed;
        fault_config.retryDepth = leg.retry;
        fault_config.injector = &injector;

        std::mutex verdict_mutex;
        std::vector<std::pair<std::vector<double>, int>> verdicts;
        verdicts.reserve(overload_rows.rows());
        std::atomic<std::size_t> failures{0};
        fault_config.onFailure = [&](std::uint64_t, std::size_t,
                                     const std::string &) {
            failures.fetch_add(1);
        };
        runtime::Server server(
            runtime::InferenceEngine::fromModel(model,
                                                fault_engine_options),
            fault_config,
            [&](const runtime::Request &request, int verdict) {
                std::lock_guard<std::mutex> lock(verdict_mutex);
                verdicts.emplace_back(request.features, verdict);
            });
        constexpr std::size_t kBurst = 32;
        auto started = Clock::now();
        for (std::size_t i = 0; i < overload_rows.rows(); ++i) {
            if (i % kBurst == 0) {
                auto due = started +
                           std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   static_cast<double>(i) /
                                   overload_rate));
                std::this_thread::sleep_until(due);
            }
            server.submit(overload_rows.row(i));
        }
        runtime::ServerStats stats = server.stop();

        std::size_t mismatches = 0;
        for (const auto &[features, verdict] : verdicts)
            if (verdict != fault_ref.plan().runRow(features.data(),
                                                   features.size()))
                ++mismatches;
        fault_mismatches += mismatches;

        bool partition = stats.queue.accepted ==
                             stats.rowsServed + stats.failedRows +
                                 stats.queue.earlyDropped &&
                         verdicts.size() == stats.rowsServed &&
                         failures.load() == stats.failedRows;
        fault_partition_ok = fault_partition_ok && partition;
        if (leg.rate == 0.0)
            fault_zero_rate_clean = fault_zero_rate_clean &&
                                    stats.failedRows == 0 &&
                                    stats.failedBatches == 0;
        double availability =
            stats.queue.accepted > 0
                ? static_cast<double>(stats.rowsServed) /
                      static_cast<double>(stats.queue.accepted)
                : 0.0;
        if (leg.rate == 0.001)
            fault_availability =
                std::min(fault_availability, availability);

        std::cout << common::format(
            "rate %-6.3f retry %zu  served %7zu / %7zu accepted  "
            "failed %5zu rows / %4zu batches  (%zu bisect retries, "
            "availability %.4f, %zu mismatches)\n",
            leg.rate, leg.retry, stats.rowsServed,
            static_cast<std::size_t>(stats.queue.accepted),
            stats.failedRows, stats.failedBatches,
            stats.retriedBatches, availability, mismatches);
        json.add(std::string("faults/") + leg.key,
                 {{"fault_rate", leg.rate},
                  {"retry_depth", static_cast<double>(leg.retry)},
                  {"accepted",
                   static_cast<double>(stats.queue.accepted)},
                  {"rows_served",
                   static_cast<double>(stats.rowsServed)},
                  {"failed_rows",
                   static_cast<double>(stats.failedRows)},
                  {"failed_batches",
                   static_cast<double>(stats.failedBatches)},
                  {"retried_batches",
                   static_cast<double>(stats.retriedBatches)},
                  {"availability", availability},
                  {"verdict_mismatches",
                   static_cast<double>(mismatches)}});
    }
    bool fault_exact = fault_mismatches == 0;
    bool fault_available = fault_availability >= 0.99;

    // --------------- part 7: submit-door contention + sharded sweep ---
    // Tight-loop submitters against a draining consumer: the mutex+CV
    // baseline door convoys as submitters grow; the lock-free ticket +
    // MPSC ring door must keep its submit p99 flat within 2x from 1 to
    // 8 threads, without giving up single-submitter throughput.
    constexpr double kDoorSeconds = 0.2;
    constexpr std::size_t kDoorDepth = 8192;
    constexpr std::size_t kDoorBatch = 256;
    const std::vector<std::size_t> door_threads = {1, 2, 4, 8};
    const std::vector<double> door_features(4, 0.5);
    auto door_request = [&](std::uint64_t id) {
        runtime::Request request;
        request.id = id;
        request.features = door_features;
        return request;
    };

    std::cout << common::format(
        "\n=== submit-door contention (%0.1fs tight-loop legs, depth "
        "%zu) ===\n"
        "door   threads lanes    p50 us    p99 us     pushes/s\n",
        kDoorSeconds, kDoorDepth);
    std::map<std::string, ContentionResult> door_results;
    for (std::size_t threads : door_threads) {
        MutexDoorQueue baseline(1, kDoorDepth, kDoorBatch);
        std::thread drain([&] {
            std::vector<runtime::Request> batch;
            while (baseline.pop(batch))
                batch.clear();
        });
        ContentionResult result = measureDoor(
            threads, kDoorSeconds,
            [&](std::size_t, std::uint64_t i) {
                baseline.push(door_request(i), 0);
            },
            [&] { baseline.close(); });
        drain.join();
        std::string key = common::format("q_mutex_t%zu_l1", threads);
        door_results[key] = result;
        std::cout << common::format(
            "mutex  %7zu %5d %9.2f %9.2f %12.0f\n", threads, 1,
            result.p50SubmitUs, result.p99SubmitUs,
            result.pushesPerSec);
        json.add("contention/" + key,
                 {{"threads", static_cast<double>(threads)},
                  {"lanes", 1.0},
                  {"p50_submit_us", result.p50SubmitUs},
                  {"p99_submit_us", result.p99SubmitUs},
                  {"pushes_per_sec", result.pushesPerSec}});
    }
    for (std::size_t lanes : {std::size_t{1}, std::size_t{4}}) {
        for (std::size_t threads : door_threads) {
            runtime::QueuePolicy door_policy;
            door_policy.maxBatch = kDoorBatch;
            door_policy.maxDelayUs = 1000;
            door_policy.maxDepth = kDoorDepth;
            runtime::QueueConfig door_config;
            door_config.lanes.assign(lanes, door_policy);
            runtime::RequestQueue queue(door_config);
            std::thread drain([&] {
                while (queue.pop()) {
                }
            });
            ContentionResult result = measureDoor(
                threads, kDoorSeconds,
                [&](std::size_t t, std::uint64_t i) {
                    queue.push(door_request(i), t % lanes);
                },
                [&] { queue.close(); });
            drain.join();
            std::string key = common::format("q_mpsc_t%zu_l%zu",
                                             threads, lanes);
            door_results[key] = result;
            std::cout << common::format(
                "mpsc   %7zu %5zu %9.2f %9.2f %12.0f\n", threads,
                lanes, result.p50SubmitUs, result.p99SubmitUs,
                result.pushesPerSec);
            json.add("contention/" + key,
                     {{"threads", static_cast<double>(threads)},
                      {"lanes", static_cast<double>(lanes)},
                      {"p50_submit_us", result.p50SubmitUs},
                      {"p99_submit_us", result.p99SubmitUs},
                      {"pushes_per_sec", result.pushesPerSec}});
        }
    }

    // Flatness: p99 at 8 submitters within 2x of 1 submitter per lane
    // count (the 1-thread p99 is floored at 5 us so timer quantization
    // on a near-zero baseline cannot fail an absolutely-fine door).
    bool contention_flat = true;
    double worst_growth = 0.0;
    for (std::size_t lanes : {std::size_t{1}, std::size_t{4}}) {
        double base = std::max(
            door_results[common::format("q_mpsc_t1_l%zu", lanes)]
                .p99SubmitUs,
            5.0);
        double contended =
            door_results[common::format("q_mpsc_t8_l%zu", lanes)]
                .p99SubmitUs;
        worst_growth = std::max(worst_growth, contended / base);
        if (contended > 2.0 * base)
            contention_flat = false;
    }
    double single_thread_ratio =
        door_results["q_mutex_t1_l1"].pushesPerSec > 0.0
            ? door_results["q_mpsc_t1_l1"].pushesPerSec /
                  door_results["q_mutex_t1_l1"].pushesPerSec
            : 0.0;
    bool single_thread_ok = single_thread_ratio >= 0.9;

    // Sharded sweep: verdict exactness is the bar (count-based, every
    // host); the submit rate is reported for the scaling story.
    constexpr std::size_t kShardSweepRows = 3000;
    auto shard_rows = bench::benchFeatures(kShardSweepRows,
                                           model.inputDim);
    runtime::EngineOptions shard_engine_options;
    shard_engine_options.jobs = 1;
    std::vector<int> shard_reference =
        runtime::InferenceEngine::fromModel(model, shard_engine_options)
            .run(shard_rows);
    std::cout << common::format(
        "\n=== sharded serving sweep (%zu rows, per-row flow keys) "
        "===\n"
        "shards threads   served   mismatches    submit rows/s\n",
        kShardSweepRows);
    bool sharded_exact = true;
    for (std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            runtime::ShardedServerConfig sharded_config;
            sharded_config.shards = shards;
            sharded_config.server.queue.maxBatch = kDoorBatch;
            sharded_config.server.queue.maxDelayUs = 1000;
            sharded_config.server.queue.maxDepth = 0;  // admit all.
            std::mutex verdict_mutex;
            std::map<std::uint64_t, int> verdicts;
            runtime::ShardedServer server(
                runtime::InferenceEngine::fromModel(
                    model, shard_engine_options),
                sharded_config,
                [&](const runtime::Request &request, int verdict) {
                    std::lock_guard<std::mutex> lock(verdict_mutex);
                    verdicts[request.id] = verdict;
                });
            std::vector<std::map<std::uint64_t, std::size_t>>
                ticket_rows(threads);
            auto submit_start = Clock::now();
            std::vector<std::thread> submitters;
            for (std::size_t t = 0; t < threads; ++t)
                submitters.emplace_back([&, t] {
                    for (std::size_t r = t; r < kShardSweepRows;
                         r += threads) {
                        auto admitted = server.submit(
                            r * 0x9e3779b97f4a7c15ull,
                            shard_rows.row(r));
                        if (admitted.admitted())
                            ticket_rows[t][admitted.ticket] = r;
                    }
                });
            for (auto &submitter : submitters)
                submitter.join();
            double submit_seconds =
                std::chrono::duration<double>(Clock::now() -
                                              submit_start)
                    .count();
            runtime::ServerStats stats = server.stop();

            std::size_t matched = 0, mismatches = 0;
            for (const auto &per_thread : ticket_rows)
                for (const auto &[ticket, row] : per_thread) {
                    auto verdict = verdicts.find(ticket);
                    if (verdict == verdicts.end() ||
                        verdict->second != shard_reference[row])
                        ++mismatches;
                    else
                        ++matched;
                }
            bool exact = mismatches == 0 &&
                         matched == kShardSweepRows &&
                         stats.rowsServed == kShardSweepRows;
            sharded_exact = sharded_exact && exact;
            double submit_rate =
                submit_seconds > 0.0
                    ? static_cast<double>(kShardSweepRows) /
                          submit_seconds
                    : 0.0;
            std::cout << common::format(
                "%6zu %7zu %8zu %12zu %16.0f\n", shards, threads,
                stats.rowsServed, mismatches, submit_rate);
            json.add(common::format("contention/sharded_s%zu_t%zu",
                                    shards, threads),
                     {{"shards", static_cast<double>(shards)},
                      {"threads", static_cast<double>(threads)},
                      {"rows_served",
                       static_cast<double>(stats.rowsServed)},
                      {"verdict_mismatches",
                       static_cast<double>(mismatches)},
                      {"submit_rows_per_sec", submit_rate}});
        }
    }

    bool dispatch_pass = dispatch_speedup > 1.0;
    std::cout << common::format(
        "\nsmall-batch dispatch: executor %.2fx vs spawn-per-batch — "
        "%s\n",
        dispatch_speedup,
        hardware >= 4 ? (dispatch_pass ? "PASS (> 1x)" : "FAIL (<= 1x)")
                      : "n/a (host exposes < 4 cores)");
    std::cout << common::format(
        "deadline-policy p99 bounded by ~maxDelay: %s\n",
        hardware >= 4 ? (deadline_bounded ? "PASS" : "FAIL")
                      : (deadline_bounded ? "pass (informational)"
                                          : "miss (informational)"));
    std::cout << common::format(
        "probe-lane p99 bounded under saturated bulk lane: %s\n",
        hardware >= 4 ? (probe_bounded ? "PASS" : "FAIL")
                      : (probe_bounded ? "pass (informational)"
                                       : "miss (informational)"));
    std::cout << common::format(
        "early-drop served p99 bounded at 2x capacity: %s\n",
        hardware >= 4 ? (early_drop_bounded ? "PASS" : "FAIL")
                      : (early_drop_bounded ? "pass (informational)"
                                            : "miss (informational)"));
    // Verdict exactness is timing-independent, so it is enforced on
    // every host; the swap's latency bound and seeing both versions
    // mid-run join the >= 4-core timing bars.
    std::cout << common::format(
        "hot-swap verdicts bit-identical to admitting plan: %s\n",
        swap_exact ? "PASS" : "FAIL");
    std::cout << common::format(
        "hot-swap p99 bounded, both front versions served: %s\n",
        hardware >= 4
            ? (swap_p99_bounded && swap_saw_both ? "PASS" : "FAIL")
            : (swap_p99_bounded && swap_saw_both
                   ? "pass (informational)"
                   : "miss (informational)"));
    // The fault bars are timing-independent (the injector draws from a
    // fixed seed and the invariants are counts, not latencies), so all
    // three hold on every host.
    std::cout << common::format(
        "fault legs: served verdicts bit-identical to replayed plan: "
        "%s\n",
        fault_exact ? "PASS" : "FAIL");
    std::cout << common::format(
        "fault legs: accepted == served + failed on every leg: %s\n",
        fault_partition_ok && fault_zero_rate_clean ? "PASS" : "FAIL");
    std::cout << common::format(
        "availability >= 0.99 at the 0.1%% fault rate: %s (worst "
        "%.4f)\n",
        fault_available ? "PASS" : "FAIL", fault_availability);
    std::cout << common::format(
        "submit p99 flat within 2x from 1 to 8 submitters: %s (worst "
        "growth %.2fx)\n",
        hardware >= 4 ? (contention_flat ? "PASS" : "FAIL")
                      : (contention_flat ? "pass (informational)"
                                         : "miss (informational)"),
        worst_growth);
    std::cout << common::format(
        "single-submitter door throughput >= 0.9x mutex baseline: %s "
        "(%.2fx)\n",
        hardware >= 4 ? (single_thread_ok ? "PASS" : "FAIL")
                      : (single_thread_ok ? "pass (informational)"
                                          : "miss (informational)"),
        single_thread_ratio);
    std::cout << common::format(
        "sharded verdicts bit-identical to one plan run: %s\n",
        sharded_exact ? "PASS" : "FAIL");
    json.add("acceptance",
             {{"dispatch_speedup_p50", dispatch_speedup},
              {"deadline_p99_bounded", deadline_bounded ? 1.0 : 0.0},
              {"probe_lane_p99_bounded", probe_bounded ? 1.0 : 0.0},
              {"early_drop_p99_bounded",
               early_drop_bounded ? 1.0 : 0.0},
              {"swap_verdicts_exact", swap_exact ? 1.0 : 0.0},
              {"swap_p99_bounded", swap_p99_bounded ? 1.0 : 0.0},
              {"swap_observed_both_versions",
               swap_saw_both ? 1.0 : 0.0},
              {"fault_verdicts_exact", fault_exact ? 1.0 : 0.0},
              {"fault_resolution_partition",
               fault_partition_ok && fault_zero_rate_clean ? 1.0
                                                           : 0.0},
              {"fault_availability_ok", fault_available ? 1.0 : 0.0},
              {"contention_p99_flat", contention_flat ? 1.0 : 0.0},
              {"contention_p99_worst_growth", worst_growth},
              {"contention_single_thread_ok",
               single_thread_ok ? 1.0 : 0.0},
              {"contention_single_thread_ratio", single_thread_ratio},
              {"contention_sharded_verdicts_exact",
               sharded_exact ? 1.0 : 0.0},
              {"hardware_threads", static_cast<double>(hardware)}});

    if (!json_path.empty() && !json.write(json_path))
        return 1;
    if (!swap_exact)
        return 1;  // exactness holds on any host or the swap is broken.
    if (!fault_exact || !fault_partition_ok || !fault_zero_rate_clean ||
        !fault_available)
        return 1;  // fault invariants are count-based: any-host bars.
    if (!sharded_exact)
        return 1;  // sharding must never change a verdict, anywhere.
    // Enforce the timing bars only where the claims are testable: a
    // sub-4-core host can neither shard a 64-row batch 4 ways nor
    // absorb bursts while batching (nor contend 8 submitters), so
    // those verdicts are informational there.
    return (hardware >= 4 &&
            (!dispatch_pass || !deadline_bounded || !probe_bounded ||
             !early_drop_bounded || !swap_p99_bounded ||
             !swap_saw_both || !contention_flat || !single_thread_ok))
               ? 1
               : 0;
}
