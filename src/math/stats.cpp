#include "math/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace homunculus::math {

using common::panic;

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double v : values)
        total += v;
    return total / static_cast<double>(values.size());
}

double
variance(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    double m = mean(values);
    double total = 0.0;
    for (double v : values)
        total += (v - m) * (v - m);
    return total / static_cast<double>(values.size() - 1);
}

double
stddev(const std::vector<double> &values)
{
    return std::sqrt(variance(values));
}

double
median(std::vector<double> values)
{
    return quantile(std::move(values), 0.5);
}

double
percentileNearestRank(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    std::sort(values.begin(), values.end());
    auto rank = static_cast<std::size_t>(
        std::llround(p * static_cast<double>(values.size() - 1)));
    return values[rank];
}

double
quantile(std::vector<double> values, double q)
{
    if (values.empty())
        panic("stats", "quantile of empty vector");
    q = std::clamp(q, 0.0, 1.0);
    std::sort(values.begin(), values.end());
    double pos = q * static_cast<double>(values.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
minValue(const std::vector<double> &values)
{
    if (values.empty())
        panic("stats", "minValue of empty vector");
    return *std::min_element(values.begin(), values.end());
}

double
maxValue(const std::vector<double> &values)
{
    if (values.empty())
        panic("stats", "maxValue of empty vector");
    return *std::max_element(values.begin(), values.end());
}

double
entropy(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (total <= 0.0)
        return 0.0;
    double h = 0.0;
    for (double w : weights) {
        if (w <= 0.0)
            continue;
        double p = w / total;
        h -= p * std::log(p);
    }
    return h;
}

double
normalPdf(double z)
{
    static const double inv_sqrt_2pi = 0.3989422804014327;
    return inv_sqrt_2pi * std::exp(-0.5 * z * z);
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size() || a.size() < 2)
        return 0.0;
    double ma = mean(a);
    double mb = mean(b);
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        cov += (a[i] - ma) * (b[i] - mb);
        va += (a[i] - ma) * (a[i] - ma);
        vb += (b[i] - mb) * (b[i] - mb);
    }
    if (va <= 0.0 || vb <= 0.0)
        return 0.0;
    return cov / std::sqrt(va * vb);
}

std::vector<std::size_t>
histogram(const std::vector<double> &values, double lo, double hi,
          std::size_t bins)
{
    if (bins == 0 || hi <= lo)
        panic("stats", "histogram: invalid bin specification");
    std::vector<std::size_t> counts(bins, 0);
    double width = (hi - lo) / static_cast<double>(bins);
    for (double v : values) {
        if (v < lo || v > hi)
            continue;
        auto idx = static_cast<std::size_t>((v - lo) / width);
        if (idx >= bins)
            idx = bins - 1;
        ++counts[idx];
    }
    return counts;
}

}  // namespace homunculus::math
