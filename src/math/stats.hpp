/**
 * @file
 * Scalar statistics helpers used by metrics, surrogates, and generators.
 */
#pragma once

#include <cstddef>
#include <vector>

namespace homunculus::math {

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &values);

/** Unbiased sample variance (n-1 denominator); 0 when n < 2. */
double variance(const std::vector<double> &values);

/** Sample standard deviation. */
double stddev(const std::vector<double> &values);

/** Median (copies and sorts). */
double median(std::vector<double> values);

/** Linear-interpolated quantile in [0, 1] (copies and sorts). */
double quantile(std::vector<double> values, double q);

/**
 * Nearest-rank percentile in [0, 1] (copies and sorts); 0 for an empty
 * vector. The latency-reporting convention shared by the serving
 * runtime and the benches — distinct from quantile()'s interpolation,
 * so a reported p99 is always a latency that actually occurred.
 */
double percentileNearestRank(std::vector<double> values, double p);

/** Min / max of a non-empty vector. */
double minValue(const std::vector<double> &values);
double maxValue(const std::vector<double> &values);

/** Shannon entropy (nats) of a non-negative weight vector. */
double entropy(const std::vector<double> &weights);

/** Standard normal probability density function. */
double normalPdf(double z);

/** Standard normal cumulative distribution function. */
double normalCdf(double z);

/** Pearson correlation of two equal-length vectors; 0 if degenerate. */
double pearson(const std::vector<double> &a, const std::vector<double> &b);

/** Histogram of @p values into @p bins equal-width buckets over [lo, hi]. */
std::vector<std::size_t> histogram(const std::vector<double> &values,
                                   double lo, double hi, std::size_t bins);

}  // namespace homunculus::math
