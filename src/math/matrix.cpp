#include "math/matrix.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace homunculus::math {

using common::panic;

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    if (rows.empty())
        return {};
    Matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != m.cols_)
            panic("matrix", "fromRows: ragged input");
        for (std::size_t c = 0; c < m.cols_; ++c)
            m(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

std::vector<double>
Matrix::row(std::size_t r) const
{
    return {rowPtr(r), rowPtr(r) + cols_};
}

std::vector<double>
Matrix::col(std::size_t c) const
{
    std::vector<double> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        out[r] = (*this)(r, c);
    return out;
}

Matrix
Matrix::matmul(const Matrix &other) const
{
    if (cols_ != other.rows_)
        panic("matrix", "matmul: inner dimensions disagree");
    Matrix out(rows_, other.cols_);
    // i-k-j loop order keeps the inner loop streaming over contiguous rows.
    for (std::size_t i = 0; i < rows_; ++i) {
        const double *a_row = rowPtr(i);
        double *out_row = out.rowPtr(i);
        for (std::size_t k = 0; k < cols_; ++k) {
            double a_ik = a_row[k];
            if (a_ik == 0.0)
                continue;
            const double *b_row = other.rowPtr(k);
            for (std::size_t j = 0; j < other.cols_; ++j)
                out_row[j] += a_ik * b_row[j];
        }
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("matrix", "operator+=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("matrix", "operator-=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

Matrix &
Matrix::operator*=(double scalar)
{
    for (double &v : data_)
        v *= scalar;
    return *this;
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    Matrix out = *this;
    out += other;
    return out;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    Matrix out = *this;
    out -= other;
    return out;
}

Matrix
Matrix::operator*(double scalar) const
{
    Matrix out = *this;
    out *= scalar;
    return out;
}

Matrix
Matrix::hadamard(const Matrix &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("matrix", "hadamard: shape mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] *= other.data_[i];
    return out;
}

Matrix
Matrix::map(const std::function<double(double)> &fn) const
{
    Matrix out = *this;
    for (double &v : out.data_)
        v = fn(v);
    return out;
}

Matrix &
Matrix::addRowVector(const std::vector<double> &v)
{
    if (v.size() != cols_)
        panic("matrix", "addRowVector: width mismatch");
    for (std::size_t r = 0; r < rows_; ++r) {
        double *row_ptr = rowPtr(r);
        for (std::size_t c = 0; c < cols_; ++c)
            row_ptr[c] += v[c];
    }
    return *this;
}

double
Matrix::sum() const
{
    double total = 0.0;
    for (double v : data_)
        total += v;
    return total;
}

std::vector<double>
Matrix::colSums() const
{
    std::vector<double> sums(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        const double *row_ptr = rowPtr(r);
        for (std::size_t c = 0; c < cols_; ++c)
            sums[c] += row_ptr[c];
    }
    return sums;
}

double
Matrix::frobeniusNorm() const
{
    double total = 0.0;
    for (double v : data_)
        total += v * v;
    return std::sqrt(total);
}

std::size_t
Matrix::argmaxRow(std::size_t r) const
{
    const double *row_ptr = rowPtr(r);
    std::size_t best = 0;
    for (std::size_t c = 1; c < cols_; ++c)
        if (row_ptr[c] > row_ptr[best])
            best = c;
    return best;
}

Matrix
Matrix::selectRows(const std::vector<std::size_t> &indices) const
{
    Matrix out(indices.size(), cols_);
    for (std::size_t i = 0; i < indices.size(); ++i) {
        if (indices[i] >= rows_)
            panic("matrix", "selectRows: index out of range");
        const double *src = rowPtr(indices[i]);
        double *dst = out.rowPtr(i);
        for (std::size_t c = 0; c < cols_; ++c)
            dst[c] = src[c];
    }
    return out;
}

Matrix
Matrix::selectCols(const std::vector<std::size_t> &indices) const
{
    Matrix out(rows_, indices.size());
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t i = 0; i < indices.size(); ++i) {
            if (indices[i] >= cols_)
                panic("matrix", "selectCols: index out of range");
            out(r, i) = (*this)(r, indices[i]);
        }
    }
    return out;
}

Matrix
Matrix::vstack(const Matrix &below) const
{
    if (empty())
        return below;
    if (below.empty())
        return *this;
    if (cols_ != below.cols_)
        panic("matrix", "vstack: column mismatch");
    Matrix out(rows_ + below.rows_, cols_);
    std::copy(data_.begin(), data_.end(), out.data_.begin());
    std::copy(below.data_.begin(), below.data_.end(),
              out.data_.begin() + static_cast<std::ptrdiff_t>(data_.size()));
    return out;
}

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        panic("matrix", "dot: length mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        total += a[i] * b[i];
    return total;
}

double
squaredDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        panic("matrix", "squaredDistance: length mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        total += d * d;
    }
    return total;
}

double
l2Distance(const std::vector<double> &a, const std::vector<double> &b)
{
    return std::sqrt(squaredDistance(a, b));
}

void
axpy(double alpha, const std::vector<double> &x, std::vector<double> &y)
{
    if (x.size() != y.size())
        panic("matrix", "axpy: length mismatch");
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] += alpha * x[i];
}

}  // namespace homunculus::math
