/**
 * @file
 * Dense row-major matrix used throughout the ML substrate.
 *
 * The models Homunculus searches are small (hundreds to a few thousand
 * parameters — they must fit a switch pipeline), so a straightforward
 * cache-friendly kernel set is both sufficient and fully deterministic.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace homunculus::math {

/** A dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct rows x cols, zero-initialized (or @p fill). */
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /** Construct from nested initializer data (row-major). */
    static Matrix fromRows(const std::vector<std::vector<double>> &rows);

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    double &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Raw storage access (row-major). */
    std::vector<double> &data() { return data_; }
    const std::vector<double> &data() const { return data_; }

    /**
     * Change the row count in place, keeping existing rows and the
     * underlying capacity — shrinking (and re-growing within capacity)
     * never reallocates, which is what lets per-batch consumers reuse
     * one buffer across varying batch sizes. New rows are
     * zero-initialized.
     */
    void resizeRows(std::size_t rows)
    {
        data_.resize(rows * cols_);
        rows_ = rows;
    }

    /** Pointer to the start of row @p r. */
    double *rowPtr(std::size_t r) { return data_.data() + r * cols_; }
    const double *rowPtr(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    /** Copy of row @p r as a vector. */
    std::vector<double> row(std::size_t r) const;

    /** Copy of column @p c as a vector. */
    std::vector<double> col(std::size_t c) const;

    /** Matrix product this * other. Dimensions must agree. */
    Matrix matmul(const Matrix &other) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /** Elementwise in-place operations. */
    Matrix &operator+=(const Matrix &other);
    Matrix &operator-=(const Matrix &other);
    Matrix &operator*=(double scalar);

    Matrix operator+(const Matrix &other) const;
    Matrix operator-(const Matrix &other) const;
    Matrix operator*(double scalar) const;

    /** Elementwise (Hadamard) product. */
    Matrix hadamard(const Matrix &other) const;

    /** Apply a scalar function to every element (returns a copy). */
    Matrix map(const std::function<double(double)> &fn) const;

    /** Add a row vector to every row (bias broadcast). */
    Matrix &addRowVector(const std::vector<double> &v);

    /** Sum of every element. */
    double sum() const;

    /** Column-wise sums (length cols). */
    std::vector<double> colSums() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Index of the max element in row @p r. */
    std::size_t argmaxRow(std::size_t r) const;

    /** Select a subset of rows by index. */
    Matrix selectRows(const std::vector<std::size_t> &indices) const;

    /** Select a subset of columns by index. */
    Matrix selectCols(const std::vector<std::size_t> &indices) const;

    /** Stack another matrix below this one (same column count). */
    Matrix vstack(const Matrix &below) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/** Dot product of equal-length vectors. */
double dot(const std::vector<double> &a, const std::vector<double> &b);

/** Euclidean (L2) distance between equal-length vectors. */
double l2Distance(const std::vector<double> &a, const std::vector<double> &b);

/** Squared Euclidean distance (avoids the sqrt for comparisons). */
double squaredDistance(const std::vector<double> &a,
                       const std::vector<double> &b);

/** In-place y += alpha * x. */
void axpy(double alpha, const std::vector<double> &x, std::vector<double> &y);

}  // namespace homunculus::math
