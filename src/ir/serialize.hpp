/**
 * @file
 * ModelIr artifact (de)serialization.
 *
 * A compiler needs durable artifacts: the control plane that installs a
 * generated pipeline at 3am is not the process that searched for it.
 * This module round-trips a ModelIr through a line-oriented text format
 * (versioned, self-describing, diff-friendly) so compiled models can be
 * cached, shipped, and re-deployed without re-running the search.
 *
 * Format sketch (v3; v2 — identical minus the `scaler_*` lines — and
 * v1 — additionally minus the `passes` line — still parse):
 *   homunculus-ir v3
 *   kind dnn
 *   name anomaly_detection
 *   input_dim 7
 *   num_classes 2
 *   format 8 8
 *   passes quantize validate
 *   scaler_means <7 doubles...>
 *   scaler_stds <7 doubles...>
 *   activation relu
 *   layer 7 16
 *   weights <112 ints...>
 *   biases <16 ints...>
 *   ...
 *   end
 */
#pragma once

#include <string>

#include "ir/model_ir.hpp"

namespace homunculus::ir {

/** Serialize a validated model to the textual artifact format. */
std::string serializeModel(const ModelIr &model);

/**
 * Parse an artifact back into a ModelIr.
 * @throws std::runtime_error on version mismatch or malformed content;
 *         the returned model is validate()d before being returned.
 */
ModelIr deserializeModel(const std::string &text);

/** Convenience file wrappers. */
void saveModel(const std::string &path, const ModelIr &model);
ModelIr loadModel(const std::string &path);

}  // namespace homunculus::ir
