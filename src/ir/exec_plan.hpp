/**
 * @file
 * ExecutablePlan: a ModelIr compiled once into flat, cache-friendly
 * buffers for batched fixed-point inference.
 *
 * The scalar reference interpreter (ir::executeIr) re-walks the ModelIr
 * struct graph per row: it heap-copies the feature row, re-quantizes it
 * through pow()-per-element calls, allocates a fresh activation vector
 * per layer, and strides across out-major weight storage. Black-box
 * candidate scoring (paper §3.2.3–§3.2.4) runs that loop over the whole
 * test partition for every search candidate, making IR execution the
 * innermost loop of the compiler.
 *
 * An ExecutablePlan lowers the ModelIr once into contiguous storage —
 * transposed (out x in) int32 layer weights for unit-stride MLP dot
 * products, flattened centroid/class-weight blocks with fused
 * distance/arg-min and score/arg-max loops, and structure-of-arrays tree
 * nodes for branch-light array-indexed traversal — then processes a whole
 * math::Matrix in row blocks with zero per-row allocation.
 *
 * Execution entry points compose for the multi-core serving runtime
 * (runtime::InferenceEngine):
 *  - run() processes a whole matrix on the calling thread;
 *  - runRange() processes a contiguous row shard into caller storage
 *    with a caller-owned Scratch arena, so N workers can execute one
 *    shared immutable plan concurrently (the plan itself is never
 *    mutated after compile());
 *  - a QuantizedMatrix overload skips input quantization entirely when
 *    the caller already holds the matrix in the plan's Q-format (the
 *    compile session caches one per format across search candidates).
 *
 * The semantics contract: every entry point is bit-identical to per-row
 * ir::executeIr() for every model family and format. It replays the
 * exact saturating add/multiply sequence of the interpreter (term order
 * included), so the accuracy the compiler reports is still the accuracy
 * of the deployed quantized artifact, at any shard width
 * (tests/test_exec_plan.cpp and tests/test_inference_engine.cpp hold
 * the implementations together).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ir/model_ir.hpp"
#include "kernels/kernel_api.hpp"
#include "math/matrix.hpp"

namespace homunculus::ir {

/**
 * A feature matrix held in a fixed-point format's raw words: the result
 * of FixedPointFormat::quantizeInto over every row of a double matrix,
 * row-major. Quantization is the row-independent front half of every
 * plan execution, so candidate scoring caches one QuantizedMatrix per
 * format and shares it across all candidates with that format
 * (runtime::QuantCache) — values are bit-identical to the words the
 * plan would produce internally.
 */
class QuantizedMatrix
{
  public:
    QuantizedMatrix() = default;

    /** Quantize every row of @p x into @p format raw words. */
    QuantizedMatrix(const math::Matrix &x,
                    const common::FixedPointFormat &format);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    const common::FixedPointFormat &format() const { return format_; }

    const std::int32_t *rowPtr(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

  private:
    common::FixedPointFormat format_ = common::FixedPointFormat::q88();
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::int32_t> data_;
};

/** A compiled, immutable inference plan for one ModelIr. */
class ExecutablePlan
{
  public:
    /**
     * Reusable per-caller scratch buffers. One run()/runRange() call
     * resizes these on first use and then executes allocation-free;
     * keeping one Scratch per worker thread (or per long-lived caller)
     * makes repeated executions allocation-free too. A Scratch must not
     * be shared between concurrent calls.
     */
    struct Scratch
    {
        std::vector<std::int32_t> quantized;
        std::vector<std::int32_t> actA;
        std::vector<std::int32_t> actB;
        /** int16 mirrors for the int8-weight GEMM path (<= 8-bit
         *  formats run 16 lanes of all-int16 arithmetic). */
        std::vector<std::int16_t> quantized16;
        std::vector<std::int16_t> act16A;
        std::vector<std::int16_t> act16B;
    };

    /** One-time compilation; validates the model first. */
    static ExecutablePlan compile(const ModelIr &model);

    /** Batched inference over a feature matrix (one label per row). */
    std::vector<int> run(const math::Matrix &x) const;

    /** Batched inference over a pre-quantized matrix (format and width
     *  must match the plan's). */
    std::vector<int> run(const QuantizedMatrix &x) const;

    /**
     * Inference over the row shard [row_begin, row_end) of @p x, writing
     * labels[i - row_begin] for each row i. @p scratch is caller-owned
     * (see Scratch); the plan itself stays immutable, so any number of
     * threads may execute disjoint shards of one plan concurrently.
     */
    void runRange(const math::Matrix &x, std::size_t row_begin,
                  std::size_t row_end, int *labels,
                  Scratch &scratch) const;

    /** Shard execution over a pre-quantized matrix (skips quantization;
     *  @p x.format() must equal the plan's format). */
    void runRange(const QuantizedMatrix &x, std::size_t row_begin,
                  std::size_t row_end, int *labels,
                  Scratch &scratch) const;

    /** Single-row inference into a caller-owned scratch: allocation-free
     *  after the scratch's first use. @p width must equal inputDim(). */
    int runRow(const double *features, std::size_t width,
               Scratch &scratch) const;

    /** Single-row convenience overload with a transient scratch (one
     *  allocation per call; prefer the Scratch overload in loops). */
    int runRow(const double *features, std::size_t width) const;

    ModelKind kind() const { return kind_; }
    std::size_t inputDim() const { return inputDim_; }
    int numClasses() const { return numClasses_; }
    const common::FixedPointFormat &format() const { return format_; }

    /**
     * Pin this plan to one kernel target instead of the process-wide
     * KernelDispatch resolution — the per-plan knob behind
     * EngineOptions::forceScalarKernels and the differential tests
     * that execute several targets side by side. Labels never change
     * (every target is bit-identical); only the instruction mix does.
     * @throws std::runtime_error when the target is unavailable here.
     */
    void forceKernelTarget(kernels::KernelTarget target);

    /** The pinned table, or nullptr when following KernelDispatch. */
    const kernels::KernelOps *forcedKernels() const
    {
        return forcedOps_;
    }

  private:
    ExecutablePlan() = default;

    /** Transposed dense layer: weightsT[out * inputDim + in]. The
     *  packed mirrors are built at compile() for narrow formats: int16
     *  panels when the format fits 16 bits, int8 panels (plus int16
     *  biases) when it fits 8 — same [out * inputDim + in] order, so
     *  the dense kernels stream half/quarter the weight bytes. */
    struct Layer
    {
        std::size_t inputDim = 0;
        std::size_t outputDim = 0;
        std::vector<std::int32_t> weightsT;
        std::vector<std::int32_t> biases;
        std::vector<std::int16_t> weights16;
        std::vector<std::int8_t> weights8;
        std::vector<std::int16_t> biases16;
    };

    void quantizeRow(const double *row, std::int32_t *out) const;
    /** Blocked int32 GEMM over interleaved lanes (formats <= 16 bits),
     *  executed through @p ops.denseI32/argmaxI32.
     *  @p quantized_rows is the pre-quantized matrix when non-null. */
    void runMlpRangeNarrow(const math::Matrix *x,
                           const QuantizedMatrix *qx,
                           std::size_t row_begin, std::size_t row_end,
                           int *labels, Scratch &scratch,
                           const kernels::KernelOps &ops) const;
    /** int8-weight GEMM over 16 int16 lanes (formats <= 8 bits). */
    void runMlpRangeI8(const math::Matrix *x, const QuantizedMatrix *qx,
                       std::size_t row_begin, std::size_t row_end,
                       int *labels, Scratch &scratch,
                       const kernels::KernelOps &ops) const;
    /** Generic-format blocked range path (int64 arithmetic). */
    void runMlpRangeWide(const math::Matrix *x, const QuantizedMatrix *qx,
                         std::size_t row_begin, std::size_t row_end,
                         int *labels, Scratch &scratch) const;
    /** Blocked tree traversal (kTreeLanes rows per descent). */
    void runTreeRange(const math::Matrix *x, const QuantizedMatrix *qx,
                      std::size_t row_begin, std::size_t row_end,
                      int *labels, Scratch &scratch,
                      const kernels::KernelOps &ops) const;
    void runRangeImpl(const math::Matrix *x, const QuantizedMatrix *qx,
                      std::size_t row_begin, std::size_t row_end,
                      int *labels, Scratch &scratch) const;
    void checkRange(std::size_t rows, std::size_t cols,
                    std::size_t row_begin, std::size_t row_end) const;
    int inferRow(const std::int32_t *q, Scratch &scratch) const;
    int inferMlp(const std::int32_t *q, Scratch &scratch) const;
    int inferKMeans(const std::int32_t *q) const;
    int inferSvm(const std::int32_t *q) const;
    int inferTree(const std::int32_t *q) const;

    ModelKind kind_ = ModelKind::kMlp;
    std::size_t inputDim_ = 0;
    int numClasses_ = 2;

    // Fixed-point constants hoisted out of the per-element hot path.
    common::FixedPointFormat format_ = common::FixedPointFormat::q88();
    int fracBits_ = 8;
    std::int64_t rawMax_ = 0;    ///< saturation bounds of the format.
    std::int64_t rawMin_ = 0;
    bool narrow_ = true;         ///< format <= 16 bits: int32 MACs exact.
    bool int8_ = false;          ///< format <= 8 bits: int16 MACs exact.

    /** Pinned kernel table (forceKernelTarget); nullptr = follow the
     *  process-wide KernelDispatch. Points at immutable static data,
     *  so plan copies stay valid. */
    const kernels::KernelOps *forcedOps_ = nullptr;

    // --- MLP ------------------------------------------------------------
    std::vector<Layer> layers_;
    std::int32_t actLo_ = 0;     ///< hidden-activation clamp window;
    std::int32_t actHi_ = 0;     ///< ReLU is clamp(acc, 0, rawMax).
    std::size_t maxWidth_ = 0;   ///< widest activation vector.

    // --- KMeans: k x d centroid block, fused distance/arg-min -----------
    std::vector<std::int32_t> centroids_;
    std::size_t numCentroids_ = 0;

    // --- SVM: classes x d weight block, fused score/arg-max -------------
    std::vector<std::int32_t> svmWeights_;
    std::vector<std::int64_t> svmBiases_;

    // --- Decision tree: structure-of-arrays nodes (left < 0 == leaf) ----
    std::vector<std::int32_t> nodeFeature_;
    std::vector<std::int32_t> nodeThreshold_;
    std::vector<std::int32_t> nodeLeft_;
    std::vector<std::int32_t> nodeRight_;
    std::vector<std::int32_t> nodeLabel_;
};

}  // namespace homunculus::ir
