/**
 * @file
 * ExecutablePlan: a ModelIr compiled once into flat, cache-friendly
 * buffers for batched fixed-point inference.
 *
 * The scalar reference interpreter (ir::executeIr) re-walks the ModelIr
 * struct graph per row: it heap-copies the feature row, re-quantizes it
 * through pow()-per-element calls, allocates a fresh activation vector
 * per layer, and strides across out-major weight storage. Black-box
 * candidate scoring (paper §3.2.3–§3.2.4) runs that loop over the whole
 * test partition for every search candidate, making IR execution the
 * innermost loop of the compiler.
 *
 * An ExecutablePlan lowers the ModelIr once into contiguous storage —
 * transposed (out x in) int32 layer weights for unit-stride MLP dot
 * products, flattened centroid/class-weight blocks with fused
 * distance/arg-min and score/arg-max loops, and structure-of-arrays tree
 * nodes for branch-light array-indexed traversal — then processes a whole
 * math::Matrix in row blocks with zero per-row allocation.
 *
 * The semantics contract: ExecutablePlan::run() is bit-identical to
 * per-row ir::executeIr() for every model family and format. It replays
 * the exact saturating add/multiply sequence of the interpreter (term
 * order included), so the accuracy the compiler reports is still the
 * accuracy of the deployed quantized artifact
 * (tests/test_exec_plan.cpp holds the two implementations together).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ir/model_ir.hpp"
#include "math/matrix.hpp"

namespace homunculus::ir {

/** A compiled, immutable inference plan for one ModelIr. */
class ExecutablePlan
{
  public:
    /** One-time compilation; validates the model first. */
    static ExecutablePlan compile(const ModelIr &model);

    /** Batched inference over a feature matrix (one label per row). */
    std::vector<int> run(const math::Matrix &x) const;

    /** Single-row inference (compatibility path; still allocation-free
     *  beyond one scratch buffer). @p width must equal inputDim(). */
    int runRow(const double *features, std::size_t width) const;

    ModelKind kind() const { return kind_; }
    std::size_t inputDim() const { return inputDim_; }
    int numClasses() const { return numClasses_; }

  private:
    ExecutablePlan() = default;

    /** Transposed dense layer: weightsT[out * inputDim + in]. */
    struct Layer
    {
        std::size_t inputDim = 0;
        std::size_t outputDim = 0;
        std::vector<std::int32_t> weightsT;
        std::vector<std::int32_t> biases;
    };

    /** Scratch buffers reused across rows of one run() call. */
    struct Scratch
    {
        std::vector<std::int32_t> quantized;
        std::vector<std::int32_t> actA;
        std::vector<std::int32_t> actB;
    };

    void quantizeRow(const double *row, std::int32_t *out) const;
    /** Blocked int32 GEMM over interleaved lanes (formats <= 16 bits). */
    void runMlpBatchNarrow(const math::Matrix &x,
                           std::vector<int> &labels) const;
    /** Generic-format blocked batch path (int64 arithmetic). */
    void runMlpBatchWide(const math::Matrix &x,
                         std::vector<int> &labels) const;
    int inferRow(const std::int32_t *q, Scratch &scratch) const;
    int inferMlp(const std::int32_t *q, Scratch &scratch) const;
    int inferKMeans(const std::int32_t *q) const;
    int inferSvm(const std::int32_t *q) const;
    int inferTree(const std::int32_t *q) const;

    ModelKind kind_ = ModelKind::kMlp;
    std::size_t inputDim_ = 0;
    int numClasses_ = 2;

    // Fixed-point constants hoisted out of the per-element hot path.
    common::FixedPointFormat format_ = common::FixedPointFormat::q88();
    int fracBits_ = 8;
    std::int64_t rawMax_ = 0;    ///< saturation bounds of the format.
    std::int64_t rawMin_ = 0;
    bool narrow_ = true;         ///< format <= 16 bits: int32 MACs exact.

    // --- MLP ------------------------------------------------------------
    std::vector<Layer> layers_;
    std::int32_t actLo_ = 0;     ///< hidden-activation clamp window;
    std::int32_t actHi_ = 0;     ///< ReLU is clamp(acc, 0, rawMax).
    std::size_t maxWidth_ = 0;   ///< widest activation vector.

    // --- KMeans: k x d centroid block, fused distance/arg-min -----------
    std::vector<std::int32_t> centroids_;
    std::size_t numCentroids_ = 0;

    // --- SVM: classes x d weight block, fused score/arg-max -------------
    std::vector<std::int32_t> svmWeights_;
    std::vector<std::int64_t> svmBiases_;

    // --- Decision tree: structure-of-arrays nodes (left < 0 == leaf) ----
    std::vector<std::int32_t> nodeFeature_;
    std::vector<std::int32_t> nodeThreshold_;
    std::vector<std::int32_t> nodeLeft_;
    std::vector<std::int32_t> nodeRight_;
    std::vector<std::int32_t> nodeLabel_;
};

}  // namespace homunculus::ir
