/**
 * @file
 * ModelIr: the backend-neutral description of a trained model.
 *
 * This is the compiler contract at the heart of Homunculus's black-box
 * split (paper §3.2.3): the optimization core trains models and lowers
 * them to a ModelIr; backends consume the ModelIr to (a) estimate
 * resources/latency/throughput, (b) execute fixed-point inference in
 * simulation, and (c) emit platform code. Weights are stored quantized in
 * the data plane's Q-format so every downstream consumer sees exactly the
 * artifact that would be deployed.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/fixed_point.hpp"
#include "ml/decision_tree.hpp"
#include "ml/kmeans.hpp"
#include "ml/mlp.hpp"
#include "ml/svm.hpp"

namespace homunculus::ir {

/** Model families the backends understand. */
enum class ModelKind { kMlp, kKMeans, kSvm, kDecisionTree };

std::string modelKindName(ModelKind kind);

/** One dense layer with quantized weights (row-major in x out) + biases. */
struct QuantizedLayer
{
    std::size_t inputDim = 0;
    std::size_t outputDim = 0;
    std::vector<std::int32_t> weights;  ///< inputDim * outputDim words.
    std::vector<std::int32_t> biases;   ///< outputDim words.

    std::int32_t weight(std::size_t in, std::size_t out) const
    {
        return weights[in * outputDim + out];
    }
};

/** Flattened decision-tree node for table-friendly traversal. */
struct IrTreeNode
{
    bool isLeaf = true;
    std::size_t feature = 0;
    std::int32_t threshold = 0;  ///< quantized split threshold.
    int classLabel = 0;
    int left = -1;   ///< child indices into the node array.
    int right = -1;
};

/** The backend-neutral trained model. */
struct ModelIr
{
    ModelKind kind = ModelKind::kMlp;
    std::string name = "model";
    std::size_t inputDim = 0;
    int numClasses = 2;
    common::FixedPointFormat format = common::FixedPointFormat::q88();

    // --- MLP payload ---------------------------------------------------
    std::vector<QuantizedLayer> layers;
    ml::Activation activation = ml::Activation::kRelu;

    // --- KMeans payload ------------------------------------------------
    std::vector<std::vector<std::int32_t>> centroids;  ///< k x d.

    // --- SVM payload ---------------------------------------------------
    std::vector<std::vector<std::int32_t>> svmWeights;  ///< classes x d.
    std::vector<std::int32_t> svmBiases;                ///< classes.

    // --- Decision-tree payload ------------------------------------------
    std::vector<IrTreeNode> treeNodes;  ///< node 0 is the root.
    std::size_t treeDepth = 0;

    /**
     * Audit trail of the lowering passes that produced this artifact, in
     * execution order (see ir/passes.hpp). Serialized with the artifact
     * (format v2) so a deployed model records how it was lowered.
     */
    std::vector<std::string> passes;

    /**
     * Training-time StandardScaler moments. Serialized with the
     * artifact (format v3) so the serving path applies (x - mean) / std
     * with the exact statistics the model was trained against instead
     * of refitting them on live traffic.
     *
     * `scalerRecorded` says the compile pipeline stated the scaler
     * provenance either way: moments present = standardized training,
     * absent = the model was genuinely trained on raw features
     * (serialized as `scaler_none`). Both false/empty = a legacy
     * pre-v3 artifact whose provenance is unknown — only then may
     * serving fall back to refitting on the trace.
     */
    std::vector<double> scalerMeans;
    std::vector<double> scalerStds;
    bool scalerRecorded = false;

    bool hasScaler() const { return !scalerMeans.empty(); }

    /** Total stored parameter count (weights + biases or equivalents). */
    std::size_t paramCount() const;

    /** Hidden-layer count for MLPs (0 otherwise). */
    std::size_t hiddenLayerCount() const;

    /** Largest layer MAC width (max over layers of in*out); 0 if no MLP. */
    std::size_t maxLayerMacs() const;

    /** Sanity checks; throws std::runtime_error on inconsistency. */
    void validate() const;
};

/**
 * Lower a trained MLP to IR, quantizing weights into @p format.
 *
 * All lower*() entry points stage the trained model into the float domain
 * and run ir::PassManager::loweringPipeline() (quantize + validate); see
 * ir/passes.hpp for the pipeline machinery and the optimization passes.
 */
ModelIr lowerMlp(const ml::Mlp &mlp, const common::FixedPointFormat &format,
                 const std::string &name);

/** Lower a fitted KMeans model to IR. */
ModelIr lowerKMeans(const ml::KMeans &kmeans,
                    const common::FixedPointFormat &format,
                    const std::string &name, std::size_t input_dim);

/** Lower a trained linear SVM to IR. */
ModelIr lowerSvm(const ml::LinearSvm &svm,
                 const common::FixedPointFormat &format,
                 const std::string &name, std::size_t input_dim);

/** Lower a trained decision-tree classifier to IR. */
ModelIr lowerDecisionTree(const ml::DecisionTreeClassifier &tree,
                          const common::FixedPointFormat &format,
                          const std::string &name, std::size_t input_dim);

/**
 * Reference fixed-point executor for the IR — the semantics every backend
 * simulator must agree with. Returns the predicted class for one input.
 *
 * This is the scalar reference interpreter. Hot paths should compile an
 * ir::ExecutablePlan instead (bit-identical, batched, allocation-free);
 * tests/test_exec_plan.cpp holds the two together.
 */
int executeIr(const ModelIr &ir, const std::vector<double> &features);

/**
 * Batch form of executeIr over a feature matrix. Thin shim over
 * ir::ExecutablePlan (compile once, run batched) — kept so existing
 * callers get the batched path without changes.
 */
std::vector<int> executeIrBatch(const ModelIr &ir, const math::Matrix &x);

}  // namespace homunculus::ir
