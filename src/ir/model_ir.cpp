#include "ir/model_ir.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "ir/exec_plan.hpp"
#include "ir/passes.hpp"

namespace homunculus::ir {

std::string
modelKindName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::kMlp: return "dnn";
      case ModelKind::kKMeans: return "kmeans";
      case ModelKind::kSvm: return "svm";
      case ModelKind::kDecisionTree: return "decision_tree";
    }
    return "unknown";
}

std::size_t
ModelIr::paramCount() const
{
    switch (kind) {
      case ModelKind::kMlp: {
        std::size_t total = 0;
        for (const auto &layer : layers)
            total += layer.weights.size() + layer.biases.size();
        return total;
      }
      case ModelKind::kKMeans: {
        std::size_t total = 0;
        for (const auto &c : centroids)
            total += c.size();
        return total;
      }
      case ModelKind::kSvm: {
        std::size_t total = svmBiases.size();
        for (const auto &w : svmWeights)
            total += w.size();
        return total;
      }
      case ModelKind::kDecisionTree:
        // Each internal node stores (feature, threshold); leaves a label.
        return treeNodes.size() * 2;
    }
    return 0;
}

std::size_t
ModelIr::hiddenLayerCount() const
{
    return layers.empty() ? 0 : layers.size() - 1;
}

std::size_t
ModelIr::maxLayerMacs() const
{
    std::size_t max_macs = 0;
    for (const auto &layer : layers)
        max_macs = std::max(max_macs, layer.inputDim * layer.outputDim);
    return max_macs;
}

void
ModelIr::validate() const
{
    if (inputDim == 0)
        throw std::runtime_error("ModelIr: inputDim is zero");
    if (numClasses < 2)
        throw std::runtime_error("ModelIr: numClasses must be >= 2");
    if (!scalerMeans.empty() || !scalerStds.empty()) {
        if (scalerMeans.size() != inputDim ||
            scalerStds.size() != inputDim)
            throw std::runtime_error(
                "ModelIr: scaler moment width != inputDim");
        for (double sd : scalerStds)
            if (!(sd > 0.0))
                throw std::runtime_error(
                    "ModelIr: scaler std must be positive");
    }
    switch (kind) {
      case ModelKind::kMlp: {
        if (layers.empty())
            throw std::runtime_error("ModelIr: MLP with no layers");
        std::size_t prev = inputDim;
        for (const auto &layer : layers) {
            if (layer.inputDim != prev)
                throw std::runtime_error("ModelIr: layer width chain broken");
            if (layer.weights.size() != layer.inputDim * layer.outputDim)
                throw std::runtime_error("ModelIr: weight size mismatch");
            if (layer.biases.size() != layer.outputDim)
                throw std::runtime_error("ModelIr: bias size mismatch");
            prev = layer.outputDim;
        }
        if (prev != static_cast<std::size_t>(numClasses))
            throw std::runtime_error("ModelIr: output width != numClasses");
        break;
      }
      case ModelKind::kKMeans:
        if (centroids.empty())
            throw std::runtime_error("ModelIr: KMeans with no centroids");
        for (const auto &c : centroids)
            if (c.size() != inputDim)
                throw std::runtime_error("ModelIr: centroid width mismatch");
        break;
      case ModelKind::kSvm:
        if (svmWeights.size() != static_cast<std::size_t>(numClasses) ||
            svmBiases.size() != static_cast<std::size_t>(numClasses))
            throw std::runtime_error("ModelIr: SVM class count mismatch");
        for (const auto &w : svmWeights)
            if (w.size() != inputDim)
                throw std::runtime_error("ModelIr: SVM weight width mismatch");
        break;
      case ModelKind::kDecisionTree:
        if (treeNodes.empty())
            throw std::runtime_error("ModelIr: tree with no nodes");
        for (const auto &node : treeNodes) {
            if (!node.isLeaf) {
                if (node.left < 0 || node.right < 0 ||
                    node.left >= static_cast<int>(treeNodes.size()) ||
                    node.right >= static_cast<int>(treeNodes.size()))
                    throw std::runtime_error("ModelIr: tree child invalid");
                if (node.feature >= inputDim)
                    throw std::runtime_error("ModelIr: tree feature invalid");
            }
        }
        break;
    }
}

ModelIr
lowerMlp(const ml::Mlp &mlp, const common::FixedPointFormat &format,
         const std::string &name)
{
    return PassManager::loweringPipeline().lower(stageMlp(mlp, name),
                                                 format);
}

ModelIr
lowerKMeans(const ml::KMeans &kmeans, const common::FixedPointFormat &format,
            const std::string &name, std::size_t input_dim)
{
    return PassManager::loweringPipeline().lower(
        stageKMeans(kmeans, name, input_dim), format);
}

ModelIr
lowerSvm(const ml::LinearSvm &svm, const common::FixedPointFormat &format,
         const std::string &name, std::size_t input_dim)
{
    return PassManager::loweringPipeline().lower(
        stageSvm(svm, name, input_dim), format);
}

ModelIr
lowerDecisionTree(const ml::DecisionTreeClassifier &tree,
                  const common::FixedPointFormat &format,
                  const std::string &name, std::size_t input_dim)
{
    return PassManager::loweringPipeline().lower(
        stageDecisionTree(tree, name, input_dim), format);
}

namespace {

/** Fixed-point MLP forward pass returning the argmax class. */
int
executeMlp(const ModelIr &ir, const std::vector<double> &features)
{
    const common::FixedPointFormat &fmt = ir.format;
    std::vector<std::int32_t> current = fmt.quantizeVector(features);

    for (std::size_t l = 0; l < ir.layers.size(); ++l) {
        const QuantizedLayer &layer = ir.layers[l];
        std::vector<std::int32_t> next(layer.outputDim);
        for (std::size_t out = 0; out < layer.outputDim; ++out) {
            std::int32_t acc = layer.biases[out];
            for (std::size_t in = 0; in < layer.inputDim; ++in)
                acc = fmt.add(acc,
                              fmt.multiply(current[in],
                                           layer.weight(in, out)));
            bool is_output = (l + 1 == ir.layers.size());
            if (!is_output) {
                // Data-plane activations: ReLU is a max; tanh/sigmoid are
                // approximated by hard clamping, which is what a
                // lookup-free switch implementation does.
                switch (ir.activation) {
                  case ml::Activation::kRelu:
                    acc = std::max(acc, 0);
                    break;
                  case ml::Activation::kTanh:
                    acc = std::clamp(acc, fmt.quantize(-1.0),
                                     fmt.quantize(1.0));
                    break;
                  case ml::Activation::kSigmoid:
                    acc = std::clamp(acc, fmt.quantize(0.0),
                                     fmt.quantize(1.0));
                    break;
                }
            }
            next[out] = acc;
        }
        current = std::move(next);
    }

    // Argmax replaces softmax: monotone, so the class decision is equal.
    std::size_t best = 0;
    for (std::size_t c = 1; c < current.size(); ++c)
        if (current[c] > current[best])
            best = c;
    return static_cast<int>(best);
}

int
executeKMeans(const ModelIr &ir, const std::vector<double> &features)
{
    const common::FixedPointFormat &fmt = ir.format;
    std::vector<std::int32_t> q = fmt.quantizeVector(features);
    std::int64_t best_dist = std::numeric_limits<std::int64_t>::max();
    int best = 0;
    for (std::size_t c = 0; c < ir.centroids.size(); ++c) {
        std::int64_t dist = 0;
        for (std::size_t f = 0; f < ir.inputDim; ++f) {
            std::int64_t d = static_cast<std::int64_t>(q[f]) -
                             ir.centroids[c][f];
            dist += d * d;
        }
        if (dist < best_dist) {
            best_dist = dist;
            best = static_cast<int>(c);
        }
    }
    return best;
}

int
executeSvm(const ModelIr &ir, const std::vector<double> &features)
{
    const common::FixedPointFormat &fmt = ir.format;
    std::vector<std::int32_t> q = fmt.quantizeVector(features);
    std::int64_t best_score = std::numeric_limits<std::int64_t>::min();
    int best = 0;
    for (std::size_t c = 0; c < ir.svmWeights.size(); ++c) {
        std::int64_t score = ir.svmBiases[c];
        for (std::size_t f = 0; f < ir.inputDim; ++f)
            score += fmt.multiply(q[f], ir.svmWeights[c][f]);
        if (score > best_score) {
            best_score = score;
            best = static_cast<int>(c);
        }
    }
    return best;
}

int
executeTree(const ModelIr &ir, const std::vector<double> &features)
{
    const common::FixedPointFormat &fmt = ir.format;
    std::vector<std::int32_t> q = fmt.quantizeVector(features);
    int index = 0;
    while (!ir.treeNodes[static_cast<std::size_t>(index)].isLeaf) {
        const IrTreeNode &node = ir.treeNodes[static_cast<std::size_t>(index)];
        index = q[node.feature] <= node.threshold ? node.left : node.right;
    }
    return ir.treeNodes[static_cast<std::size_t>(index)].classLabel;
}

}  // namespace

int
executeIr(const ModelIr &ir, const std::vector<double> &features)
{
    if (features.size() != ir.inputDim)
        throw std::runtime_error("executeIr: feature width mismatch");
    switch (ir.kind) {
      case ModelKind::kMlp: return executeMlp(ir, features);
      case ModelKind::kKMeans: return executeKMeans(ir, features);
      case ModelKind::kSvm: return executeSvm(ir, features);
      case ModelKind::kDecisionTree: return executeTree(ir, features);
    }
    return 0;
}

std::vector<int>
executeIrBatch(const ModelIr &ir, const math::Matrix &x)
{
    return ExecutablePlan::compile(ir).run(x);
}

}  // namespace homunculus::ir
