/**
 * @file
 * The IR pass pipeline: trained model -> ModelIr lowering as explicit,
 * auditable passes.
 *
 * Lowering used to be a monolith: each lower*() call quantized weights
 * inline and validated at the end, and nothing between training and the
 * backend could be observed or extended. This module restructures that
 * path as a compiler-style pipeline:
 *
 *   trained model --stage--> FloatModel --quantize--> ModelIr
 *                                             |
 *                              [validate, prune-dead, fold-constants, ...]
 *
 * Staging captures the trained model's topology with real-valued weights;
 * the `quantize` pass is the single place float weights become Q-format
 * words; every subsequent pass is a ModelIr -> ModelIr rewrite registered
 * in the PassRegistry by name. A PassManager holds an ordered pipeline,
 * records each executed pass into ModelIr::passes (serialized with the
 * artifact), and can invoke a dump hook after every pass — the mechanism
 * behind `homc --dump-ir`.
 *
 * Every registered pass is semantics-preserving on format-conforming
 * artifacts: predictions of the IR under ir::executeIr /
 * ir::ExecutablePlan are bit-identical before and after the pass
 * (tests/test_exec_plan.cpp enforces this). The registered `quantize`
 * pass additionally forces out-of-range payload words of hand-built IRs
 * back onto the format — the identity on anything the pipeline lowered.
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/model_ir.hpp"

namespace homunculus::ir {

/**
 * Float-domain staging artifact: the trained model's topology with
 * real-valued parameters, before any Q-format commitment. Mirrors the
 * ModelIr payload layout so the quantize pass is a straight map.
 */
struct FloatModel
{
    ModelKind kind = ModelKind::kMlp;
    std::string name = "model";
    std::size_t inputDim = 0;
    int numClasses = 2;

    // --- MLP payload ---------------------------------------------------
    struct Layer
    {
        std::size_t inputDim = 0;
        std::size_t outputDim = 0;
        std::vector<double> weights;  ///< row-major in x out.
        std::vector<double> biases;
    };
    std::vector<Layer> layers;
    ml::Activation activation = ml::Activation::kRelu;

    // --- KMeans payload ------------------------------------------------
    std::vector<std::vector<double>> centroids;

    // --- SVM payload ---------------------------------------------------
    std::vector<std::vector<double>> svmWeights;
    std::vector<double> svmBiases;

    // --- Decision-tree payload ------------------------------------------
    struct TreeNode
    {
        bool isLeaf = true;
        std::size_t feature = 0;
        double threshold = 0.0;
        int classLabel = 0;
        int left = -1;
        int right = -1;
    };
    std::vector<TreeNode> treeNodes;
    std::size_t treeDepth = 0;
};

/** Stage a trained model into the float domain (no quantization yet). */
FloatModel stageMlp(const ml::Mlp &mlp, const std::string &name);
FloatModel stageKMeans(const ml::KMeans &kmeans, const std::string &name,
                       std::size_t input_dim);
FloatModel stageSvm(const ml::LinearSvm &svm, const std::string &name,
                    std::size_t input_dim);
FloatModel stageDecisionTree(const ml::DecisionTreeClassifier &tree,
                             const std::string &name, std::size_t input_dim);

/**
 * The quantize pass: commit a staged float model to a Q-format ModelIr.
 * This is the only place trained weights are quantized; records "quantize"
 * in the result's pass metadata.
 */
ModelIr quantizePass(const FloatModel &staged,
                     const common::FixedPointFormat &format);

/** An IR -> IR rewrite; returns true when the model was changed. */
using PassFn = std::function<bool(ModelIr &)>;

/** Observer invoked after each executed pass (homc --dump-ir). */
using PassDumpHook =
    std::function<void(const std::string &pass_name, const ModelIr &model)>;

/** A named, registered pass. */
struct PassInfo
{
    std::string name;
    std::string description;
    PassFn run;
};

/**
 * Name -> pass registry. Built-in passes (validate, prune-dead,
 * fold-constants) self-register; plugins may add more. Mirrors the
 * backends::BackendRegistry idiom so tools can enumerate passes and give
 * registry-aware "unknown pass" diagnostics.
 */
class PassRegistry
{
  public:
    static PassRegistry &instance();

    /** Register a pass; returns false (keeps the first) on a name clash. */
    bool registerPass(const std::string &name, const std::string &description,
                      PassFn fn);

    /** Look up a pass by name; nullptr when unknown. */
    const PassInfo *find(const std::string &name) const;

    /** Registered pass names, sorted (for diagnostics and --list-passes). */
    std::vector<std::string> names() const;

  private:
    PassRegistry();

    std::vector<PassInfo> passes_;
};

/**
 * An ordered pass pipeline. Executes registered passes in sequence,
 * appending each executed pass name to ModelIr::passes and firing the
 * dump hook after every pass.
 */
class PassManager
{
  public:
    PassManager() = default;

    /**
     * The default lowering pipeline run by every lower*() entry point:
     * quantize (implicit, via lower()) followed by validate. Behaviorally
     * identical to the historical monolithic lowering.
     */
    static PassManager loweringPipeline();

    /**
     * The optimization pipeline the emit stage runs on winning models:
     * validate, prune-dead, fold-constants, prune-dead, validate. All
     * passes preserve predictions bit-for-bit.
     */
    static PassManager optimizationPipeline();

    /**
     * Append a registered pass by name.
     * @throws std::runtime_error naming the known passes when unknown.
     */
    PassManager &append(const std::string &pass_name);

    /** Hook fired after each executed pass (and after quantization). */
    void setDumpHook(PassDumpHook hook) { dump_ = std::move(hook); }

    /** Run the pipeline in place; returns true if any pass changed it. */
    bool run(ModelIr &model) const;

    /** Quantize a staged model, then run the pipeline on the result. */
    ModelIr lower(const FloatModel &staged,
                  const common::FixedPointFormat &format) const;

    /** Names of the pipeline's passes, in order. */
    std::vector<std::string> passNames() const;

  private:
    std::vector<PassInfo> pipeline_;
    PassDumpHook dump_;
};

}  // namespace homunculus::ir
