#include "ir/exec_plan.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "kernels/kernel_dispatch.hpp"

namespace homunculus::ir {

namespace {

/** Rows quantized together so layer weights stay hot across the block. */
constexpr std::size_t kRowBlock = 32;

/** Saturate to the format's raw range (same math as FixedPointFormat). */
inline std::int32_t
saturateRaw(std::int64_t raw, std::int64_t raw_min, std::int64_t raw_max)
{
    if (raw > raw_max)
        raw = raw_max;
    if (raw < raw_min)
        raw = raw_min;
    return static_cast<std::int32_t>(raw);
}

}  // namespace

// -------------------------------------------------------- QuantizedMatrix

QuantizedMatrix::QuantizedMatrix(const math::Matrix &x,
                                 const common::FixedPointFormat &format)
    : format_(format), rows_(x.rows()), cols_(x.cols())
{
    data_.resize(rows_ * cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        format_.quantizeInto(x.rowPtr(r), data_.data() + r * cols_, cols_);
}

// --------------------------------------------------------- ExecutablePlan

ExecutablePlan
ExecutablePlan::compile(const ModelIr &model)
{
    model.validate();

    ExecutablePlan plan;
    plan.kind_ = model.kind;
    plan.inputDim_ = model.inputDim;
    plan.numClasses_ = model.numClasses;
    plan.format_ = model.format;
    plan.fracBits_ = model.format.fracBits();
    int total_bits = model.format.totalBits();
    plan.rawMax_ = (std::int64_t{1} << (total_bits - 1)) - 1;
    plan.rawMin_ = -(std::int64_t{1} << (total_bits - 1));
    plan.narrow_ = total_bits <= 16;
    plan.int8_ = total_bits <= 8;

    switch (model.kind) {
      case ModelKind::kMlp: {
        plan.maxWidth_ = model.inputDim;
        for (const QuantizedLayer &layer : model.layers) {
            Layer compiled;
            compiled.inputDim = layer.inputDim;
            compiled.outputDim = layer.outputDim;
            compiled.biases = layer.biases;
            compiled.weightsT.resize(layer.inputDim * layer.outputDim);
            for (std::size_t in = 0; in < layer.inputDim; ++in)
                for (std::size_t out = 0; out < layer.outputDim; ++out)
                    compiled.weightsT[out * layer.inputDim + in] =
                        layer.weights[in * layer.outputDim + out];
            plan.maxWidth_ = std::max(plan.maxWidth_, layer.outputDim);
            plan.layers_.push_back(std::move(compiled));
        }
        // Packed-weight panels for the narrow dense kernels: every raw
        // word of a <= 16-bit format fits int16 (and of a <= 8-bit
        // format, int8), so repacking at compile time is lossless and
        // the GEMM streams half (or a quarter of) the weight bytes.
        for (Layer &layer : plan.layers_) {
            if (plan.narrow_) {
                layer.weights16.resize(layer.weightsT.size());
                for (std::size_t i = 0; i < layer.weightsT.size(); ++i)
                    layer.weights16[i] =
                        static_cast<std::int16_t>(layer.weightsT[i]);
            }
            if (plan.int8_) {
                layer.weights8.resize(layer.weightsT.size());
                for (std::size_t i = 0; i < layer.weightsT.size(); ++i)
                    layer.weights8[i] =
                        static_cast<std::int8_t>(layer.weightsT[i]);
                layer.biases16.resize(layer.biases.size());
                for (std::size_t i = 0; i < layer.biases.size(); ++i)
                    layer.biases16[i] =
                        static_cast<std::int16_t>(layer.biases[i]);
            }
        }
        // Hidden activations as one clamp window: ReLU's max(acc, 0) is
        // clamp(acc, 0, rawMax) because acc is already saturated.
        switch (model.activation) {
          case ml::Activation::kRelu:
            plan.actLo_ = 0;
            plan.actHi_ = static_cast<std::int32_t>(plan.rawMax_);
            break;
          case ml::Activation::kTanh:
            plan.actLo_ = model.format.quantize(-1.0);
            plan.actHi_ = model.format.quantize(1.0);
            break;
          case ml::Activation::kSigmoid:
            plan.actLo_ = model.format.quantize(0.0);
            plan.actHi_ = model.format.quantize(1.0);
            break;
        }
        break;
      }
      case ModelKind::kKMeans: {
        plan.numCentroids_ = model.centroids.size();
        plan.centroids_.reserve(plan.numCentroids_ * model.inputDim);
        for (const auto &centroid : model.centroids)
            plan.centroids_.insert(plan.centroids_.end(), centroid.begin(),
                                   centroid.end());
        break;
      }
      case ModelKind::kSvm: {
        plan.svmWeights_.reserve(model.svmWeights.size() * model.inputDim);
        for (const auto &weights : model.svmWeights)
            plan.svmWeights_.insert(plan.svmWeights_.end(), weights.begin(),
                                    weights.end());
        plan.svmBiases_.assign(model.svmBiases.begin(),
                               model.svmBiases.end());
        break;
      }
      case ModelKind::kDecisionTree: {
        std::size_t n = model.treeNodes.size();
        plan.nodeFeature_.resize(n);
        plan.nodeThreshold_.resize(n);
        plan.nodeLeft_.resize(n);
        plan.nodeRight_.resize(n);
        plan.nodeLabel_.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            const IrTreeNode &node = model.treeNodes[i];
            plan.nodeFeature_[i] = static_cast<std::int32_t>(node.feature);
            plan.nodeThreshold_[i] = node.threshold;
            plan.nodeLeft_[i] = node.isLeaf ? -1 : node.left;
            plan.nodeRight_[i] = node.isLeaf ? -1 : node.right;
            plan.nodeLabel_[i] = node.classLabel;
        }
        break;
      }
    }
    return plan;
}

void
ExecutablePlan::runMlpRangeNarrow(const math::Matrix *x,
                                  const QuantizedMatrix *qx,
                                  std::size_t row_begin,
                                  std::size_t row_end, int *labels,
                                  Scratch &scratch,
                                  const kernels::KernelOps &ops) const
{
    // The blocked int32 GEMM path for formats of <= 16 total bits (the
    // Q8.8 default). kLanes rows are processed together in a lane-major
    // interleaved layout (element `in` of lane `l` lives at
    // in * kLanes + l), which makes the lane dimension stride-1 — the
    // dense kernel holds the accumulators in one vector register. With
    // a narrow format every |raw| <= 2^15, so a weight * activation
    // product fits int32 exactly and the whole MAC — product,
    // renormalizing shift, both saturations — runs in int32 lanes.
    // Each lane still replays the interpreter's exact saturating term
    // order (the kernel contract), so labels are bit-identical to
    // executeIr regardless of where a shard's lane groups fall or
    // which dispatch target runs them.
    constexpr std::size_t kLanes = kernels::kDenseLanes32;
    scratch.quantized.resize(kLanes * inputDim_);
    scratch.actA.resize(kLanes * maxWidth_);
    scratch.actB.resize(kLanes * maxWidth_);
    std::int32_t *quantized = scratch.quantized.data();

    kernels::DenseI32Args args;
    args.fracBits = fracBits_;
    args.rawMin = static_cast<std::int32_t>(rawMin_);
    args.rawMax = static_cast<std::int32_t>(rawMax_);
    args.actLo = actLo_;
    args.actHi = actHi_;

    std::size_t base = row_begin;
    for (; base + kLanes <= row_end; base += kLanes) {
        if (qx != nullptr) {
            for (std::size_t lane = 0; lane < kLanes; ++lane) {
                const std::int32_t *q = qx->rowPtr(base + lane);
                for (std::size_t in = 0; in < inputDim_; ++in)
                    quantized[in * kLanes + lane] = q[in];
            }
        } else {
            for (std::size_t lane = 0; lane < kLanes; ++lane)
                format_.quantizeInto(x->rowPtr(base + lane),
                                     &quantized[lane], inputDim_, kLanes);
        }

        const std::int32_t *current = quantized;
        std::int32_t *front = scratch.actA.data();
        std::int32_t *back = scratch.actB.data();
        for (std::size_t l = 0; l < layers_.size(); ++l) {
            const Layer &layer = layers_[l];
            args.input = current;
            args.output = front;
            args.weightsT = layer.weights16.data();
            args.biases = layer.biases.data();
            args.inputDim = layer.inputDim;
            args.outputDim = layer.outputDim;
            args.clampAct = l + 1 < layers_.size();
            ops.denseI32(args);
            current = front;
            std::swap(front, back);
        }

        ops.argmaxI32(current, layers_.back().outputDim,
                      labels + (base - row_begin));
    }

    for (; base < row_end; ++base) {
        const std::int32_t *q;
        if (qx != nullptr) {
            q = qx->rowPtr(base);
        } else {
            quantizeRow(x->rowPtr(base), quantized);
            q = quantized;
        }
        labels[base - row_begin] = inferMlp(q, scratch);
    }
}

void
ExecutablePlan::runMlpRangeI8(const math::Matrix *x,
                              const QuantizedMatrix *qx,
                              std::size_t row_begin, std::size_t row_end,
                              int *labels, Scratch &scratch,
                              const kernels::KernelOps &ops) const
{
    // The int8-weight fast path for formats of <= 8 total bits: 16
    // rows per group in all-int16 arithmetic (|raw| <= 2^7 keeps every
    // product within int16 and every post-clamp sum within [-256, 255],
    // so int16 replays the int64 reference exactly). Same interleaved
    // layout as the int32 path, twice the lanes per register.
    constexpr std::size_t kLanes = kernels::kDenseLanes16;
    scratch.quantized.resize(inputDim_);  // int32 quantizer staging.
    scratch.quantized16.resize(kLanes * inputDim_);
    scratch.act16A.resize(kLanes * maxWidth_);
    scratch.act16B.resize(kLanes * maxWidth_);
    std::int16_t *quantized16 = scratch.quantized16.data();

    kernels::DenseI16Args args;
    args.fracBits = fracBits_;
    args.rawMin = static_cast<std::int16_t>(rawMin_);
    args.rawMax = static_cast<std::int16_t>(rawMax_);
    args.actLo = static_cast<std::int16_t>(actLo_);
    args.actHi = static_cast<std::int16_t>(actHi_);

    std::size_t base = row_begin;
    for (; base + kLanes <= row_end; base += kLanes) {
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
            const std::int32_t *q;
            if (qx != nullptr) {
                q = qx->rowPtr(base + lane);
            } else {
                format_.quantizeInto(x->rowPtr(base + lane),
                                     scratch.quantized.data(),
                                     inputDim_);
                q = scratch.quantized.data();
            }
            // Narrowing copy is lossless: the quantizer saturates to
            // the format's <= 8-bit raw range.
            for (std::size_t in = 0; in < inputDim_; ++in)
                quantized16[in * kLanes + lane] =
                    static_cast<std::int16_t>(q[in]);
        }

        const std::int16_t *current = quantized16;
        std::int16_t *front = scratch.act16A.data();
        std::int16_t *back = scratch.act16B.data();
        for (std::size_t l = 0; l < layers_.size(); ++l) {
            const Layer &layer = layers_[l];
            args.input = current;
            args.output = front;
            args.weightsT = layer.weights8.data();
            args.biases = layer.biases16.data();
            args.inputDim = layer.inputDim;
            args.outputDim = layer.outputDim;
            args.clampAct = l + 1 < layers_.size();
            ops.denseI16(args);
            current = front;
            std::swap(front, back);
        }

        ops.argmaxI16(current, layers_.back().outputDim,
                      labels + (base - row_begin));
    }

    for (; base < row_end; ++base) {
        const std::int32_t *q;
        if (qx != nullptr) {
            q = qx->rowPtr(base);
        } else {
            quantizeRow(x->rowPtr(base), scratch.quantized.data());
            q = scratch.quantized.data();
        }
        labels[base - row_begin] = inferMlp(q, scratch);
    }
}

void
ExecutablePlan::runTreeRange(const math::Matrix *x,
                             const QuantizedMatrix *qx,
                             std::size_t row_begin, std::size_t row_end,
                             int *labels, Scratch &scratch,
                             const kernels::KernelOps &ops) const
{
    // Blocked descent: kTreeLanes rows walk the SoA node arrays
    // together (vectorized compare+select per level) instead of the
    // branchy per-row loop; a lane that reaches its leaf early just
    // stops advancing while the group finishes.
    constexpr std::size_t kLanes = kernels::kTreeLanes;
    scratch.quantized.resize(kLanes * inputDim_);
    std::int32_t *quantized = scratch.quantized.data();

    kernels::TreeTraverseArgs args;
    args.nodeFeature = nodeFeature_.data();
    args.nodeThreshold = nodeThreshold_.data();
    args.nodeLeft = nodeLeft_.data();
    args.nodeRight = nodeRight_.data();
    args.nodeLabel = nodeLabel_.data();

    std::size_t base = row_begin;
    for (; base + kLanes <= row_end; base += kLanes) {
        if (qx != nullptr) {
            for (std::size_t lane = 0; lane < kLanes; ++lane) {
                const std::int32_t *q = qx->rowPtr(base + lane);
                for (std::size_t in = 0; in < inputDim_; ++in)
                    quantized[in * kLanes + lane] = q[in];
            }
        } else {
            for (std::size_t lane = 0; lane < kLanes; ++lane)
                format_.quantizeInto(x->rowPtr(base + lane),
                                     &quantized[lane], inputDim_, kLanes);
        }
        args.input = quantized;
        args.labels = labels + (base - row_begin);
        ops.treeTraverse(args);
    }

    for (; base < row_end; ++base) {
        const std::int32_t *q;
        if (qx != nullptr) {
            q = qx->rowPtr(base);
        } else {
            quantizeRow(x->rowPtr(base), quantized);
            q = quantized;
        }
        labels[base - row_begin] = inferTree(q);
    }
}

void
ExecutablePlan::runMlpRangeWide(const math::Matrix *x,
                                const QuantizedMatrix *qx,
                                std::size_t row_begin, std::size_t row_end,
                                int *labels, Scratch &scratch) const
{
    // Generic-format path: same blocked structure, int64 arithmetic.
    // Rows are blocked so each layer's transposed weights are reused
    // while resident in cache; kLanes independent saturating-MAC chains
    // interleave to fill the pipeline. Pre-quantized input is consumed
    // in place (the QuantizedMatrix is row-major contiguous).
    constexpr std::size_t kLanes = 4;
    scratch.quantized.resize(kRowBlock * inputDim_);
    scratch.actA.resize(kRowBlock * maxWidth_);
    scratch.actB.resize(kRowBlock * maxWidth_);
    for (std::size_t block_base = row_begin; block_base < row_end;
         block_base += kRowBlock) {
        std::size_t block = std::min(kRowBlock, row_end - block_base);
        const std::int32_t *current;
        if (qx != nullptr) {
            current = qx->rowPtr(block_base);
        } else {
            for (std::size_t i = 0; i < block; ++i)
                quantizeRow(x->rowPtr(block_base + i),
                            &scratch.quantized[i * inputDim_]);
            current = scratch.quantized.data();
        }

        std::size_t current_width = inputDim_;
        std::int32_t *front = scratch.actA.data();
        std::int32_t *back = scratch.actB.data();
        for (std::size_t l = 0; l < layers_.size(); ++l) {
            const Layer &layer = layers_[l];
            bool hidden = l + 1 < layers_.size();
            std::size_t i = 0;
            for (; i + kLanes <= block; i += kLanes) {
                const std::int32_t *in_rows = current + i * current_width;
                std::int32_t *out_rows = front + i * layer.outputDim;
                for (std::size_t out = 0; out < layer.outputDim; ++out) {
                    const std::int32_t *w =
                        &layer.weightsT[out * layer.inputDim];
                    std::int32_t acc[kLanes];
                    for (std::size_t lane = 0; lane < kLanes; ++lane)
                        acc[lane] = layer.biases[out];
                    for (std::size_t in = 0; in < layer.inputDim; ++in) {
                        std::int64_t weight = w[in];
                        for (std::size_t lane = 0; lane < kLanes; ++lane) {
                            std::int64_t product =
                                in_rows[lane * current_width + in] * weight;
                            product >>= fracBits_;
                            std::int32_t term =
                                saturateRaw(product, rawMin_, rawMax_);
                            acc[lane] = saturateRaw(
                                static_cast<std::int64_t>(acc[lane]) + term,
                                rawMin_, rawMax_);
                        }
                    }
                    for (std::size_t lane = 0; lane < kLanes; ++lane) {
                        std::int32_t a = acc[lane];
                        if (hidden)
                            a = std::clamp(a, actLo_, actHi_);
                        out_rows[lane * layer.outputDim + out] = a;
                    }
                }
            }
            for (; i < block; ++i) {
                const std::int32_t *in_row = current + i * current_width;
                std::int32_t *out_row = front + i * layer.outputDim;
                for (std::size_t out = 0; out < layer.outputDim; ++out) {
                    const std::int32_t *w =
                        &layer.weightsT[out * layer.inputDim];
                    std::int32_t acc = layer.biases[out];
                    for (std::size_t in = 0; in < layer.inputDim; ++in) {
                        std::int64_t product =
                            static_cast<std::int64_t>(in_row[in]) * w[in];
                        product >>= fracBits_;
                        std::int32_t term =
                            saturateRaw(product, rawMin_, rawMax_);
                        acc = saturateRaw(
                            static_cast<std::int64_t>(acc) + term,
                            rawMin_, rawMax_);
                    }
                    if (hidden)
                        acc = std::clamp(acc, actLo_, actHi_);
                    out_row[out] = acc;
                }
            }
            current = front;
            current_width = layer.outputDim;
            std::swap(front, back);
        }

        for (std::size_t i = 0; i < block; ++i) {
            const std::int32_t *scores = current + i * current_width;
            std::size_t best = 0;
            for (std::size_t c = 1; c < current_width; ++c)
                if (scores[c] > scores[best])
                    best = c;
            labels[block_base + i - row_begin] = static_cast<int>(best);
        }
    }
}

void
ExecutablePlan::quantizeRow(const double *row, std::int32_t *out) const
{
    format_.quantizeInto(row, out, inputDim_);
}

int
ExecutablePlan::inferMlp(const std::int32_t *q, Scratch &scratch) const
{
    if (scratch.actA.size() < maxWidth_)
        scratch.actA.resize(maxWidth_);
    if (scratch.actB.size() < maxWidth_)
        scratch.actB.resize(maxWidth_);
    const std::int32_t *current = q;
    std::int32_t *front = scratch.actA.data();
    std::int32_t *back = scratch.actB.data();

    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        bool hidden = l + 1 < layers_.size();
        for (std::size_t out = 0; out < layer.outputDim; ++out) {
            const std::int32_t *w = &layer.weightsT[out * layer.inputDim];
            std::int32_t acc = layer.biases[out];
            for (std::size_t in = 0; in < layer.inputDim; ++in) {
                std::int64_t product =
                    static_cast<std::int64_t>(current[in]) * w[in];
                product >>= fracBits_;
                std::int32_t term = saturateRaw(product, rawMin_, rawMax_);
                acc = saturateRaw(static_cast<std::int64_t>(acc) + term,
                                  rawMin_, rawMax_);
            }
            if (hidden)
                acc = std::clamp(acc, actLo_, actHi_);
            front[out] = acc;
        }
        current = front;
        std::swap(front, back);
    }

    std::size_t width = layers_.back().outputDim;
    std::size_t best = 0;
    for (std::size_t c = 1; c < width; ++c)
        if (current[c] > current[best])
            best = c;
    return static_cast<int>(best);
}

int
ExecutablePlan::inferKMeans(const std::int32_t *q) const
{
    std::int64_t best_dist = std::numeric_limits<std::int64_t>::max();
    int best = 0;
    const std::int32_t *centroid = centroids_.data();
    for (std::size_t c = 0; c < numCentroids_; ++c) {
        std::int64_t dist = 0;
        for (std::size_t f = 0; f < inputDim_; ++f) {
            std::int64_t d =
                static_cast<std::int64_t>(q[f]) - centroid[f];
            dist += d * d;
        }
        if (dist < best_dist) {
            best_dist = dist;
            best = static_cast<int>(c);
        }
        centroid += inputDim_;
    }
    return best;
}

int
ExecutablePlan::inferSvm(const std::int32_t *q) const
{
    std::int64_t best_score = std::numeric_limits<std::int64_t>::min();
    int best = 0;
    const std::int32_t *weights = svmWeights_.data();
    for (std::size_t c = 0; c < svmBiases_.size(); ++c) {
        std::int64_t score = svmBiases_[c];
        for (std::size_t f = 0; f < inputDim_; ++f) {
            std::int64_t product =
                static_cast<std::int64_t>(q[f]) * weights[f];
            product >>= fracBits_;
            score += saturateRaw(product, rawMin_, rawMax_);
        }
        if (score > best_score) {
            best_score = score;
            best = static_cast<int>(c);
        }
        weights += inputDim_;
    }
    return best;
}

int
ExecutablePlan::inferTree(const std::int32_t *q) const
{
    std::size_t index = 0;
    while (nodeLeft_[index] >= 0) {
        bool go_left = q[nodeFeature_[index]] <= nodeThreshold_[index];
        index = static_cast<std::size_t>(go_left ? nodeLeft_[index]
                                                 : nodeRight_[index]);
    }
    return nodeLabel_[index];
}

int
ExecutablePlan::inferRow(const std::int32_t *q, Scratch &scratch) const
{
    switch (kind_) {
      case ModelKind::kMlp: return inferMlp(q, scratch);
      case ModelKind::kKMeans: return inferKMeans(q);
      case ModelKind::kSvm: return inferSvm(q);
      case ModelKind::kDecisionTree: return inferTree(q);
    }
    return 0;
}

void
ExecutablePlan::checkRange(std::size_t rows, std::size_t cols,
                           std::size_t row_begin, std::size_t row_end) const
{
    if (rows > 0 && cols != inputDim_)
        throw std::runtime_error("ExecutablePlan: feature width mismatch");
    if (row_begin > row_end || row_end > rows)
        throw std::runtime_error("ExecutablePlan: row range out of bounds");
}

void
ExecutablePlan::runRangeImpl(const math::Matrix *x,
                             const QuantizedMatrix *qx,
                             std::size_t row_begin, std::size_t row_end,
                             int *labels, Scratch &scratch) const
{
    if (row_begin == row_end)
        return;

    // One dispatch resolution per shard: a plan-level pin wins, else
    // the process-wide probe/env/force result.
    const kernels::KernelOps &ops =
        forcedOps_ != nullptr ? *forcedOps_
                              : kernels::KernelDispatch::ops();

    if (kind_ == ModelKind::kMlp && int8_) {
        runMlpRangeI8(x, qx, row_begin, row_end, labels, scratch, ops);
        return;
    }
    if (kind_ == ModelKind::kMlp && narrow_) {
        runMlpRangeNarrow(x, qx, row_begin, row_end, labels, scratch,
                          ops);
        return;
    }
    if (kind_ == ModelKind::kMlp) {
        runMlpRangeWide(x, qx, row_begin, row_end, labels, scratch);
        return;
    }
    if (kind_ == ModelKind::kDecisionTree) {
        runTreeRange(x, qx, row_begin, row_end, labels, scratch, ops);
        return;
    }

    if (scratch.quantized.size() < inputDim_)
        scratch.quantized.resize(inputDim_);
    for (std::size_t r = row_begin; r < row_end; ++r) {
        const std::int32_t *q;
        if (qx != nullptr) {
            q = qx->rowPtr(r);
        } else {
            quantizeRow(x->rowPtr(r), scratch.quantized.data());
            q = scratch.quantized.data();
        }
        // Fused reduction kernels carry the narrow contract (terms and
        // differences must fit int32); wide formats keep the int64
        // reference loops.
        if (kind_ == ModelKind::kKMeans && narrow_)
            labels[r - row_begin] = ops.kmeansArgmin(
                q, centroids_.data(), numCentroids_, inputDim_);
        else if (kind_ == ModelKind::kSvm && narrow_)
            labels[r - row_begin] = ops.svmArgmaxNarrow(
                q, svmWeights_.data(), svmBiases_.data(),
                svmBiases_.size(), inputDim_, fracBits_,
                static_cast<std::int32_t>(rawMin_),
                static_cast<std::int32_t>(rawMax_));
        else
            labels[r - row_begin] = inferRow(q, scratch);
    }
}

void
ExecutablePlan::forceKernelTarget(kernels::KernelTarget target)
{
    const kernels::KernelOps *ops = kernels::KernelDispatch::find(target);
    if (ops == nullptr)
        throw std::runtime_error(
            std::string("ExecutablePlan: kernel target '") +
            kernels::kernelTargetName(target) +
            "' is not available on this host");
    forcedOps_ = ops;
}

void
ExecutablePlan::runRange(const math::Matrix &x, std::size_t row_begin,
                         std::size_t row_end, int *labels,
                         Scratch &scratch) const
{
    checkRange(x.rows(), x.cols(), row_begin, row_end);
    runRangeImpl(&x, nullptr, row_begin, row_end, labels, scratch);
}

void
ExecutablePlan::runRange(const QuantizedMatrix &x, std::size_t row_begin,
                         std::size_t row_end, int *labels,
                         Scratch &scratch) const
{
    if (x.format().integerBits() != format_.integerBits() ||
        x.format().fracBits() != format_.fracBits())
        throw std::runtime_error(
            "ExecutablePlan: quantized matrix format mismatch");
    checkRange(x.rows(), x.cols(), row_begin, row_end);
    runRangeImpl(nullptr, &x, row_begin, row_end, labels, scratch);
}

std::vector<int>
ExecutablePlan::run(const math::Matrix &x) const
{
    std::vector<int> labels(x.rows());
    Scratch scratch;
    runRange(x, 0, x.rows(), labels.data(), scratch);
    return labels;
}

std::vector<int>
ExecutablePlan::run(const QuantizedMatrix &x) const
{
    std::vector<int> labels(x.rows());
    Scratch scratch;
    runRange(x, 0, x.rows(), labels.data(), scratch);
    return labels;
}

int
ExecutablePlan::runRow(const double *features, std::size_t width,
                       Scratch &scratch) const
{
    if (width != inputDim_)
        throw std::runtime_error("ExecutablePlan: feature width mismatch");
    if (scratch.quantized.size() < inputDim_)
        scratch.quantized.resize(inputDim_);
    quantizeRow(features, scratch.quantized.data());
    return inferRow(scratch.quantized.data(), scratch);
}

int
ExecutablePlan::runRow(const double *features, std::size_t width) const
{
    Scratch scratch;
    return runRow(features, width, scratch);
}

}  // namespace homunculus::ir
