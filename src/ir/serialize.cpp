#include "ir/serialize.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/string_util.hpp"

namespace homunculus::ir {

namespace {

constexpr const char *kMagic = "homunculus-ir";
// v3 adds the optional `scaler_means`/`scaler_stds` provenance lines
// (the training-time StandardScaler, so serving stops refitting
// statistics on the trace); v2 added the optional `passes ...`
// lowering-audit line. v1 and v2 artifacts remain parseable.
constexpr const char *kVersion = "v3";

ModelKind
kindFromName(const std::string &name)
{
    if (name == "dnn")
        return ModelKind::kMlp;
    if (name == "kmeans")
        return ModelKind::kKMeans;
    if (name == "svm")
        return ModelKind::kSvm;
    if (name == "decision_tree")
        return ModelKind::kDecisionTree;
    throw std::runtime_error("ir: unknown model kind '" + name + "'");
}

void
writeInts(std::ostringstream &out, const char *tag,
          const std::vector<std::int32_t> &values)
{
    out << tag;
    for (std::int32_t v : values)
        out << " " << v;
    out << "\n";
}

/**
 * Checked numeric parsing: an artifact is untrusted input, so every
 * number must consume its whole token and stay in range — bare
 * std::sto* would accept "12junk", and its std::invalid_argument
 * leaks a libc++ message instead of an "ir:" diagnostic.
 */
long
parseLong(const std::string &token)
{
    try {
        std::size_t consumed = 0;
        long value = std::stol(token, &consumed);
        if (consumed != token.size() || token.empty())
            throw std::invalid_argument(token);
        return value;
    } catch (const std::exception &) {
        throw std::runtime_error("ir: bad number '" + token + "'");
    }
}

std::size_t
parseSize(const std::string &token)
{
    try {
        if (token.empty() || token.find('-') != std::string::npos)
            throw std::invalid_argument(token);
        std::size_t consumed = 0;
        unsigned long value = std::stoul(token, &consumed);
        if (consumed != token.size())
            throw std::invalid_argument(token);
        return value;
    } catch (const std::exception &) {
        throw std::runtime_error("ir: bad number '" + token + "'");
    }
}

int
parseInt(const std::string &token)
{
    try {
        std::size_t consumed = 0;
        int value = std::stoi(token, &consumed);
        if (consumed != token.size() || token.empty())
            throw std::invalid_argument(token);
        return value;
    } catch (const std::exception &) {
        throw std::runtime_error("ir: bad number '" + token + "'");
    }
}

double
parseDouble(const std::string &token)
{
    try {
        std::size_t consumed = 0;
        double value = std::stod(token, &consumed);
        if (consumed != token.size() || token.empty())
            throw std::invalid_argument(token);
        return value;
    } catch (const std::exception &) {
        throw std::runtime_error("ir: bad number '" + token + "'");
    }
}

std::vector<std::int32_t>
readInts(const std::vector<std::string> &tokens, std::size_t from)
{
    std::vector<std::int32_t> values;
    values.reserve(tokens.size() - from);
    for (std::size_t i = from; i < tokens.size(); ++i)
        values.push_back(static_cast<std::int32_t>(parseLong(tokens[i])));
    return values;
}

void
writeDoubles(std::ostringstream &out, const char *tag,
             const std::vector<double> &values)
{
    out << tag;
    char buffer[40];
    for (double v : values) {
        // %.17g round-trips every IEEE double exactly, so the stored
        // scaler reproduces training-time transforms bit-for-bit.
        std::snprintf(buffer, sizeof(buffer), "%.17g", v);
        out << " " << buffer;
    }
    out << "\n";
}

std::vector<double>
readDoubles(const std::vector<std::string> &tokens, std::size_t from)
{
    std::vector<double> values;
    values.reserve(tokens.size() - from);
    for (std::size_t i = from; i < tokens.size(); ++i)
        values.push_back(parseDouble(tokens[i]));
    return values;
}

}  // namespace

std::string
serializeModel(const ModelIr &model)
{
    model.validate();
    std::ostringstream out;
    out << kMagic << " " << kVersion << "\n"
        << "kind " << modelKindName(model.kind) << "\n"
        << "name " << model.name << "\n"
        << "input_dim " << model.inputDim << "\n"
        << "num_classes " << model.numClasses << "\n"
        << "format " << model.format.integerBits() << " "
        << model.format.fracBits() << "\n";
    if (!model.passes.empty()) {
        out << "passes";
        for (const std::string &pass : model.passes)
            out << " " << pass;
        out << "\n";
    }
    if (model.hasScaler()) {
        writeDoubles(out, "scaler_means", model.scalerMeans);
        writeDoubles(out, "scaler_stds", model.scalerStds);
    } else if (model.scalerRecorded) {
        // Provenance stated either way: this model was trained on raw
        // features, so serving must not invent a scaler for it.
        out << "scaler_none\n";
    }

    switch (model.kind) {
      case ModelKind::kMlp: {
        out << "activation " << ml::activationName(model.activation)
            << "\n";
        for (const auto &layer : model.layers) {
            out << "layer " << layer.inputDim << " " << layer.outputDim
                << "\n";
            writeInts(out, "weights", layer.weights);
            writeInts(out, "biases", layer.biases);
        }
        break;
      }
      case ModelKind::kKMeans:
        for (const auto &centroid : model.centroids)
            writeInts(out, "centroid", centroid);
        break;
      case ModelKind::kSvm:
        for (std::size_t c = 0; c < model.svmWeights.size(); ++c) {
            writeInts(out, "svm_weights", model.svmWeights[c]);
            out << "svm_bias " << model.svmBiases[c] << "\n";
        }
        break;
      case ModelKind::kDecisionTree:
        out << "tree_depth " << model.treeDepth << "\n";
        for (const auto &node : model.treeNodes) {
            out << "node " << (node.isLeaf ? 1 : 0) << " " << node.feature
                << " " << node.threshold << " " << node.classLabel << " "
                << node.left << " " << node.right << "\n";
        }
        break;
    }
    out << "end\n";
    return out.str();
}

ModelIr
deserializeModel(const std::string &text)
{
    std::istringstream in(text);
    std::string line;

    std::string header = std::getline(in, line) ? common::trim(line)
                                                : std::string();
    if (header != std::string(kMagic) + " v3" &&
        header != std::string(kMagic) + " v2" &&
        header != std::string(kMagic) + " v1")
        throw std::runtime_error("ir: bad artifact header");

    ModelIr model;
    bool saw_end = false;
    QuantizedLayer *open_layer = nullptr;
    int format_int = 8, format_frac = 8;

    while (std::getline(in, line)) {
        line = common::trim(line);
        if (line.empty())
            continue;
        std::vector<std::string> tokens = common::split(line, ' ');
        const std::string &tag = tokens[0];

        if (tag == "end") {
            saw_end = true;
            break;
        }
        // Every line parses inside this guard: a corrupt artifact may
        // be missing tokens (tokens.at throws std::out_of_range) or
        // carry garbage numbers, and either way the caller must see an
        // "ir:" diagnostic — never a bare library exception, and never
        // a crash.
        try {
            if (tag == "kind") {
                model.kind = kindFromName(tokens.at(1));
            } else if (tag == "name") {
                model.name = tokens.at(1);
            } else if (tag == "input_dim") {
                model.inputDim = parseSize(tokens.at(1));
            } else if (tag == "num_classes") {
                model.numClasses = parseInt(tokens.at(1));
            } else if (tag == "format") {
                format_int = parseInt(tokens.at(1));
                format_frac = parseInt(tokens.at(2));
                // Pre-validate: the FixedPointFormat constructor treats
                // a bad Q-format as a programming error and aborts the
                // process; from an artifact it is just corrupt input.
                if (format_int < 1 || format_frac < 0 ||
                    format_int + format_frac > 31)
                    throw std::runtime_error(common::format(
                        "ir: invalid fixed-point format Q%d.%d",
                        format_int, format_frac));
                model.format = common::FixedPointFormat(format_int,
                                                        format_frac);
            } else if (tag == "passes") {
                for (std::size_t i = 1; i < tokens.size(); ++i)
                    model.passes.push_back(tokens[i]);
            } else if (tag == "scaler_means") {
                model.scalerMeans = readDoubles(tokens, 1);
                model.scalerRecorded = true;
            } else if (tag == "scaler_stds") {
                model.scalerStds = readDoubles(tokens, 1);
                model.scalerRecorded = true;
            } else if (tag == "scaler_none") {
                model.scalerRecorded = true;
            } else if (tag == "activation") {
                model.activation = ml::activationFromName(tokens.at(1));
            } else if (tag == "layer") {
                QuantizedLayer layer;
                layer.inputDim = parseSize(tokens.at(1));
                layer.outputDim = parseSize(tokens.at(2));
                model.layers.push_back(std::move(layer));
                open_layer = &model.layers.back();
            } else if (tag == "weights") {
                if (!open_layer)
                    throw std::runtime_error("ir: weights before layer");
                open_layer->weights = readInts(tokens, 1);
            } else if (tag == "biases") {
                if (!open_layer)
                    throw std::runtime_error("ir: biases before layer");
                open_layer->biases = readInts(tokens, 1);
            } else if (tag == "centroid") {
                model.centroids.push_back(readInts(tokens, 1));
            } else if (tag == "svm_weights") {
                model.svmWeights.push_back(readInts(tokens, 1));
            } else if (tag == "svm_bias") {
                model.svmBiases.push_back(
                    static_cast<std::int32_t>(parseLong(tokens.at(1))));
            } else if (tag == "tree_depth") {
                model.treeDepth = parseSize(tokens.at(1));
            } else if (tag == "node") {
                IrTreeNode node;
                node.isLeaf = tokens.at(1) == "1";
                node.feature = parseSize(tokens.at(2));
                node.threshold =
                    static_cast<std::int32_t>(parseLong(tokens.at(3)));
                node.classLabel = parseInt(tokens.at(4));
                node.left = parseInt(tokens.at(5));
                node.right = parseInt(tokens.at(6));
                model.treeNodes.push_back(node);
            } else {
                throw std::runtime_error("ir: unknown artifact tag '" +
                                         tag + "'");
            }
        } catch (const std::exception &e) {
            std::string what = e.what();
            if (what.rfind("ir: ", 0) == 0)
                throw;
            throw std::runtime_error("ir: malformed '" + tag +
                                     "' line: " + what);
        }
    }

    if (!saw_end)
        throw std::runtime_error("ir: truncated artifact (no 'end')");
    // The structural validator's "ModelIr: ..." messages are written
    // for in-memory construction bugs; surfaced from an artifact they
    // get the ir: prefix like every other corrupt-input diagnostic.
    try {
        model.validate();
    } catch (const std::exception &e) {
        std::string what = e.what();
        if (what.rfind("ir: ", 0) == 0)
            throw;
        throw std::runtime_error(
            std::string("ir: invalid artifact model: ") + e.what());
    }
    return model;
}

void
saveModel(const std::string &path, const ModelIr &model)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("ir: cannot write '" + path + "'");
    out << serializeModel(model);
}

ModelIr
loadModel(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("ir: cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return deserializeModel(buffer.str());
}

}  // namespace homunculus::ir
