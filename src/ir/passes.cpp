#include "ir/passes.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace homunculus::ir {

// ------------------------------------------------------------- staging ---

FloatModel
stageMlp(const ml::Mlp &mlp, const std::string &name)
{
    FloatModel staged;
    staged.kind = ModelKind::kMlp;
    staged.name = name;
    staged.inputDim = mlp.config().inputDim;
    staged.numClasses = mlp.config().numClasses;
    staged.activation = mlp.config().activation;

    for (std::size_t l = 0; l < mlp.weights().size(); ++l) {
        const math::Matrix &w = mlp.weights()[l];
        FloatModel::Layer layer;
        layer.inputDim = w.rows();
        layer.outputDim = w.cols();
        layer.weights = w.data();
        layer.biases = mlp.biases()[l];
        staged.layers.push_back(std::move(layer));
    }
    return staged;
}

FloatModel
stageKMeans(const ml::KMeans &kmeans, const std::string &name,
            std::size_t input_dim)
{
    FloatModel staged;
    staged.kind = ModelKind::kKMeans;
    staged.name = name;
    staged.inputDim = input_dim;
    for (std::size_t c = 0; c < kmeans.centroids().rows(); ++c)
        staged.centroids.push_back(kmeans.centroids().row(c));
    // A 1-cluster model still validates with numClasses >= 2 semantics:
    // clamp to 2 so downstream class vectors are well-formed.
    staged.numClasses =
        std::max(static_cast<int>(kmeans.centroids().rows()), 2);
    while (staged.centroids.size() < 2)
        staged.centroids.push_back(staged.centroids.front());
    return staged;
}

FloatModel
stageSvm(const ml::LinearSvm &svm, const std::string &name,
         std::size_t input_dim)
{
    FloatModel staged;
    staged.kind = ModelKind::kSvm;
    staged.name = name;
    staged.inputDim = input_dim;
    staged.numClasses = svm.numClasses();
    for (int c = 0; c < svm.numClasses(); ++c) {
        auto cu = static_cast<std::size_t>(c);
        staged.svmWeights.push_back(svm.weights().row(cu));
        staged.svmBiases.push_back(svm.biases()[cu]);
    }
    return staged;
}

FloatModel
stageDecisionTree(const ml::DecisionTreeClassifier &tree,
                  const std::string &name, std::size_t input_dim)
{
    FloatModel staged;
    staged.kind = ModelKind::kDecisionTree;
    staged.name = name;
    staged.inputDim = input_dim;
    staged.numClasses = tree.numClasses();
    staged.treeDepth = tree.depth();

    // Children appended after the parent so node 0 is always the root.
    std::function<int(const ml::TreeNode *)> flatten =
        [&](const ml::TreeNode *node) -> int {
        int index = static_cast<int>(staged.treeNodes.size());
        staged.treeNodes.emplace_back();
        auto at = [&](int i) -> FloatModel::TreeNode & {
            return staged.treeNodes[static_cast<std::size_t>(i)];
        };
        at(index).isLeaf = node->isLeaf;
        at(index).classLabel = node->classLabel;
        if (!node->isLeaf) {
            at(index).feature = node->feature;
            at(index).threshold = node->threshold;
            int left = flatten(node->left.get());
            int right = flatten(node->right.get());
            at(index).left = left;
            at(index).right = right;
        }
        return index;
    };
    if (!tree.root())
        throw std::runtime_error("stageDecisionTree: untrained tree");
    flatten(tree.root());
    return staged;
}

// ------------------------------------------------------------ quantize ---

ModelIr
quantizePass(const FloatModel &staged, const common::FixedPointFormat &format)
{
    ModelIr model;
    model.kind = staged.kind;
    model.name = staged.name;
    model.inputDim = staged.inputDim;
    model.numClasses = staged.numClasses;
    model.format = format;
    model.activation = staged.activation;
    model.treeDepth = staged.treeDepth;

    for (const FloatModel::Layer &layer : staged.layers) {
        QuantizedLayer quantized;
        quantized.inputDim = layer.inputDim;
        quantized.outputDim = layer.outputDim;
        quantized.weights = format.quantizeVector(layer.weights);
        quantized.biases = format.quantizeVector(layer.biases);
        model.layers.push_back(std::move(quantized));
    }
    for (const auto &centroid : staged.centroids)
        model.centroids.push_back(format.quantizeVector(centroid));
    for (const auto &weights : staged.svmWeights)
        model.svmWeights.push_back(format.quantizeVector(weights));
    for (double bias : staged.svmBiases)
        model.svmBiases.push_back(format.quantize(bias));
    for (const FloatModel::TreeNode &node : staged.treeNodes) {
        IrTreeNode quantized;
        quantized.isLeaf = node.isLeaf;
        quantized.feature = node.feature;
        quantized.classLabel = node.classLabel;
        quantized.left = node.left;
        quantized.right = node.right;
        if (!node.isLeaf)
            quantized.threshold = format.quantize(node.threshold);
        model.treeNodes.push_back(quantized);
    }

    model.passes.push_back("quantize");
    return model;
}

// -------------------------------------------------------------- passes ---

namespace {

/** Max edge-depth reachable from the root (0 for a lone leaf). */
std::size_t
reachableTreeDepth(const ModelIr &model)
{
    std::size_t max_depth = 0;
    std::vector<std::pair<int, std::size_t>> stack{{0, 0}};
    while (!stack.empty()) {
        auto [index, depth] = stack.back();
        stack.pop_back();
        max_depth = std::max(max_depth, depth);
        const IrTreeNode &node =
            model.treeNodes[static_cast<std::size_t>(index)];
        if (!node.isLeaf) {
            stack.push_back({node.left, depth + 1});
            stack.push_back({node.right, depth + 1});
        }
    }
    return max_depth;
}

/** Drop tree nodes unreachable from the root; preserves node order. */
bool
pruneDeadTree(ModelIr &model)
{
    std::vector<char> reachable(model.treeNodes.size(), 0);
    std::vector<int> stack{0};
    while (!stack.empty()) {
        int index = stack.back();
        stack.pop_back();
        auto u = static_cast<std::size_t>(index);
        if (reachable[u])
            continue;
        reachable[u] = 1;
        if (!model.treeNodes[u].isLeaf) {
            stack.push_back(model.treeNodes[u].left);
            stack.push_back(model.treeNodes[u].right);
        }
    }
    if (std::all_of(reachable.begin(), reachable.end(),
                    [](char r) { return r != 0; }))
        return false;

    std::vector<int> remap(model.treeNodes.size(), -1);
    int next = 0;
    for (std::size_t i = 0; i < model.treeNodes.size(); ++i)
        if (reachable[i])
            remap[i] = next++;

    std::vector<IrTreeNode> kept;
    kept.reserve(static_cast<std::size_t>(next));
    for (std::size_t i = 0; i < model.treeNodes.size(); ++i) {
        if (!reachable[i])
            continue;
        IrTreeNode node = model.treeNodes[i];
        if (!node.isLeaf) {
            node.left = remap[static_cast<std::size_t>(node.left)];
            node.right = remap[static_cast<std::size_t>(node.right)];
        }
        kept.push_back(node);
    }
    model.treeNodes = std::move(kept);
    model.treeDepth = reachableTreeDepth(model);
    return true;
}

/**
 * Drop dead hidden units: a unit whose outgoing weights are all zero
 * contributes nothing downstream, and a unit with all-zero incoming
 * weights and zero bias always outputs zero (every supported activation
 * maps 0 to 0), which the next layer multiplies into zero. Removing
 * either keeps the saturating accumulation sequence of the remaining
 * terms unchanged, so predictions are bit-identical.
 */
bool
pruneDeadMlpUnits(ModelIr &model)
{
    bool changed = false;
    bool again = true;
    while (again) {
        again = false;
        for (std::size_t l = 0; l + 1 < model.layers.size(); ++l) {
            QuantizedLayer &layer = model.layers[l];
            QuantizedLayer &next = model.layers[l + 1];

            std::vector<std::size_t> keep;
            for (std::size_t j = 0; j < layer.outputDim; ++j) {
                bool out_zero = true;
                for (std::size_t k = 0; out_zero && k < next.outputDim; ++k)
                    out_zero = next.weights[j * next.outputDim + k] == 0;
                bool in_zero = layer.biases[j] == 0;
                for (std::size_t i = 0; in_zero && i < layer.inputDim; ++i)
                    in_zero = layer.weights[i * layer.outputDim + j] == 0;
                if (!out_zero && !in_zero)
                    keep.push_back(j);
            }
            if (keep.empty())
                keep.push_back(0);  // keep the layer structurally valid.
            if (keep.size() == layer.outputDim)
                continue;

            QuantizedLayer pruned;
            pruned.inputDim = layer.inputDim;
            pruned.outputDim = keep.size();
            pruned.weights.resize(pruned.inputDim * pruned.outputDim);
            pruned.biases.resize(pruned.outputDim);
            for (std::size_t i = 0; i < pruned.inputDim; ++i)
                for (std::size_t jj = 0; jj < keep.size(); ++jj)
                    pruned.weights[i * pruned.outputDim + jj] =
                        layer.weights[i * layer.outputDim + keep[jj]];
            for (std::size_t jj = 0; jj < keep.size(); ++jj)
                pruned.biases[jj] = layer.biases[keep[jj]];

            QuantizedLayer shrunk;
            shrunk.inputDim = keep.size();
            shrunk.outputDim = next.outputDim;
            shrunk.weights.resize(shrunk.inputDim * shrunk.outputDim);
            shrunk.biases = next.biases;
            for (std::size_t jj = 0; jj < keep.size(); ++jj)
                for (std::size_t k = 0; k < next.outputDim; ++k)
                    shrunk.weights[jj * next.outputDim + k] =
                        next.weights[keep[jj] * next.outputDim + k];

            layer = std::move(pruned);
            next = std::move(shrunk);
            changed = again = true;
        }
    }
    return changed;
}

bool
pruneDeadPass(ModelIr &model)
{
    switch (model.kind) {
      case ModelKind::kDecisionTree: return pruneDeadTree(model);
      case ModelKind::kMlp: return pruneDeadMlpUnits(model);
      case ModelKind::kKMeans:
      case ModelKind::kSvm:
        // Cluster/class slots double as output labels; dropping one would
        // renumber predictions, so there is nothing safely removable.
        return false;
    }
    return false;
}

/**
 * Constant-fold decision trees: a split whose branches both land on the
 * same label is that label, and a split against a saturated threshold
 * (every quantized feature value satisfies it) is its left subtree.
 * Orphaned children are left for a following prune-dead pass.
 */
bool
foldConstantsPass(ModelIr &model)
{
    if (model.kind != ModelKind::kDecisionTree)
        return false;
    std::int64_t raw_max =
        (std::int64_t{1} << (model.format.totalBits() - 1)) - 1;
    bool changed = false;
    bool again = true;
    while (again) {
        again = false;
        for (IrTreeNode &node : model.treeNodes) {
            if (node.isLeaf)
                continue;
            if (node.threshold >= raw_max) {
                node = model.treeNodes[static_cast<std::size_t>(node.left)];
                changed = again = true;
                continue;
            }
            const IrTreeNode &left =
                model.treeNodes[static_cast<std::size_t>(node.left)];
            const IrTreeNode &right =
                model.treeNodes[static_cast<std::size_t>(node.right)];
            if (left.isLeaf && right.isLeaf &&
                left.classLabel == right.classLabel) {
                node.isLeaf = true;
                node.classLabel = left.classLabel;
                node.feature = 0;
                node.threshold = 0;
                node.left = -1;
                node.right = -1;
                changed = again = true;
            }
        }
    }
    if (changed)
        model.treeDepth = reachableTreeDepth(model);
    return changed;
}

/**
 * The IR-level quantize pass: re-saturate every stored payload word into
 * the artifact's Q-format range. Lowering's float->fixed quantization
 * (quantizePass) already saturates, so this is the identity on every
 * pipeline-lowered artifact; it exists so hand-built or externally
 * patched IRs can be forced back onto the format contract, and so the
 * registry matches the documented pipeline (quantize is lowering's
 * implicit first pass).
 */
bool
requantizePass(ModelIr &model)
{
    std::int64_t raw_max =
        (std::int64_t{1} << (model.format.totalBits() - 1)) - 1;
    std::int64_t raw_min = -(std::int64_t{1} << (model.format.totalBits() - 1));
    bool changed = false;
    auto clampWord = [&](std::int32_t &word) {
        auto clamped = static_cast<std::int32_t>(
            std::clamp<std::int64_t>(word, raw_min, raw_max));
        changed |= clamped != word;
        word = clamped;
    };
    for (QuantizedLayer &layer : model.layers) {
        for (std::int32_t &w : layer.weights)
            clampWord(w);
        for (std::int32_t &b : layer.biases)
            clampWord(b);
    }
    for (auto &centroid : model.centroids)
        for (std::int32_t &v : centroid)
            clampWord(v);
    for (auto &weights : model.svmWeights)
        for (std::int32_t &v : weights)
            clampWord(v);
    for (std::int32_t &bias : model.svmBiases)
        clampWord(bias);
    for (IrTreeNode &node : model.treeNodes)
        if (!node.isLeaf)
            clampWord(node.threshold);
    return changed;
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string joined;
    for (const std::string &name : names) {
        if (!joined.empty())
            joined += ", ";
        joined += name;
    }
    return joined;
}

}  // namespace

// ------------------------------------------------------------ registry ---

PassRegistry::PassRegistry()
{
    registerPass("validate", "structural consistency checks (never rewrites)",
                 [](ModelIr &model) {
                     model.validate();
                     return false;
                 });
    registerPass("quantize",
                 "re-saturate payload words into the Q-format (lowering's "
                 "implicit first pass; identity on conforming artifacts)",
                 requantizePass);
    registerPass("prune-dead",
                 "drop unreachable tree nodes and dead MLP hidden units",
                 pruneDeadPass);
    registerPass("fold-constants",
                 "collapse same-label tree splits and saturated comparisons",
                 foldConstantsPass);
}

PassRegistry &
PassRegistry::instance()
{
    static PassRegistry registry;
    return registry;
}

bool
PassRegistry::registerPass(const std::string &name,
                           const std::string &description, PassFn fn)
{
    if (find(name) != nullptr)
        return false;
    passes_.push_back({name, description, std::move(fn)});
    return true;
}

const PassInfo *
PassRegistry::find(const std::string &name) const
{
    for (const PassInfo &pass : passes_)
        if (pass.name == name)
            return &pass;
    return nullptr;
}

std::vector<std::string>
PassRegistry::names() const
{
    std::vector<std::string> names;
    names.reserve(passes_.size());
    for (const PassInfo &pass : passes_)
        names.push_back(pass.name);
    std::sort(names.begin(), names.end());
    return names;
}

// --------------------------------------------------------- PassManager ---

PassManager
PassManager::loweringPipeline()
{
    PassManager manager;
    manager.append("validate");
    return manager;
}

PassManager
PassManager::optimizationPipeline()
{
    PassManager manager;
    manager.append("validate");
    manager.append("prune-dead");
    manager.append("fold-constants");
    manager.append("prune-dead");  // clean up children orphaned by folding.
    manager.append("validate");
    return manager;
}

PassManager &
PassManager::append(const std::string &pass_name)
{
    const PassInfo *pass = PassRegistry::instance().find(pass_name);
    if (pass == nullptr)
        throw std::runtime_error(
            "unknown pass '" + pass_name + "' (known passes: " +
            joinNames(PassRegistry::instance().names()) + ")");
    pipeline_.push_back(*pass);
    return *this;
}

bool
PassManager::run(ModelIr &model) const
{
    bool changed = false;
    for (const PassInfo &pass : pipeline_) {
        changed |= pass.run(model);
        model.passes.push_back(pass.name);
        if (dump_)
            dump_(pass.name, model);
    }
    return changed;
}

ModelIr
PassManager::lower(const FloatModel &staged,
                   const common::FixedPointFormat &format) const
{
    ModelIr model = quantizePass(staged, format);
    if (dump_)
        dump_("quantize", model);
    run(model);
    return model;
}

std::vector<std::string>
PassManager::passNames() const
{
    std::vector<std::string> names;
    names.reserve(pipeline_.size());
    for (const PassInfo &pass : pipeline_)
        names.push_back(pass.name);
    return names;
}

}  // namespace homunculus::ir
