#include "opt/search_space.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace homunculus::opt {

void
Configuration::set(const std::string &name, ConfigValue value)
{
    values_[name] = std::move(value);
}

bool
Configuration::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

double
Configuration::real(const std::string &name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        throw std::runtime_error("Configuration: missing '" + name + "'");
    if (const double *v = std::get_if<double>(&it->second))
        return *v;
    if (const std::int64_t *v = std::get_if<std::int64_t>(&it->second))
        return static_cast<double>(*v);
    throw std::runtime_error("Configuration: '" + name + "' is not numeric");
}

std::int64_t
Configuration::integer(const std::string &name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        throw std::runtime_error("Configuration: missing '" + name + "'");
    if (const std::int64_t *v = std::get_if<std::int64_t>(&it->second))
        return *v;
    if (const double *v = std::get_if<double>(&it->second))
        return static_cast<std::int64_t>(std::llround(*v));
    throw std::runtime_error("Configuration: '" + name + "' is not numeric");
}

const std::string &
Configuration::categorical(const std::string &name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        throw std::runtime_error("Configuration: missing '" + name + "'");
    if (const std::string *v = std::get_if<std::string>(&it->second))
        return *v;
    throw std::runtime_error("Configuration: '" + name +
                             "' is not categorical");
}

std::string
Configuration::toString() const
{
    std::ostringstream out;
    bool first = true;
    for (const auto &[name, value] : values_) {
        if (!first)
            out << " ";
        first = false;
        out << name << "=";
        if (const double *v = std::get_if<double>(&value))
            out << *v;
        else if (const std::int64_t *v = std::get_if<std::int64_t>(&value))
            out << *v;
        else
            out << std::get<std::string>(value);
    }
    return out.str();
}

void
SearchSpace::addReal(const std::string &name, double lo, double hi,
                     bool log_scale)
{
    if (hi < lo)
        throw std::runtime_error("SearchSpace: real bounds inverted");
    if (log_scale && lo <= 0.0)
        throw std::runtime_error("SearchSpace: log scale needs lo > 0");
    params_.push_back({name, RealDomain{lo, hi, log_scale}});
}

void
SearchSpace::addInteger(const std::string &name, std::int64_t lo,
                        std::int64_t hi)
{
    if (hi < lo)
        throw std::runtime_error("SearchSpace: integer bounds inverted");
    params_.push_back({name, IntDomain{lo, hi}});
}

void
SearchSpace::addOrdinal(const std::string &name, std::vector<double> values)
{
    if (values.empty())
        throw std::runtime_error("SearchSpace: empty ordinal set");
    params_.push_back({name, OrdinalDomain{std::move(values)}});
}

void
SearchSpace::addCategorical(const std::string &name,
                            std::vector<std::string> options)
{
    if (options.empty())
        throw std::runtime_error("SearchSpace: empty categorical set");
    params_.push_back({name, CategoricalDomain{std::move(options)}});
}

const Parameter &
SearchSpace::param(std::size_t index) const
{
    return params_.at(index);
}

const Parameter *
SearchSpace::find(const std::string &name) const
{
    for (const auto &p : params_)
        if (p.name == name)
            return &p;
    return nullptr;
}

namespace {

ConfigValue
sampleDomain(const Domain &domain, common::Rng &rng)
{
    if (const auto *d = std::get_if<RealDomain>(&domain)) {
        if (d->logScale) {
            double lo = std::log(d->lo);
            double hi = std::log(d->hi);
            return std::exp(rng.uniform(lo, hi));
        }
        return rng.uniform(d->lo, d->hi);
    }
    if (const auto *d = std::get_if<IntDomain>(&domain))
        return rng.uniformInt(d->lo, d->hi);
    if (const auto *d = std::get_if<OrdinalDomain>(&domain)) {
        auto idx = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(d->values.size()) - 1));
        return d->values[idx];
    }
    const auto &d = std::get<CategoricalDomain>(domain);
    auto idx = static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(d.options.size()) - 1));
    return d.options[idx];
}

}  // namespace

Configuration
SearchSpace::sample(common::Rng &rng) const
{
    Configuration config;
    for (const auto &p : params_)
        config.set(p.name, sampleDomain(p.domain, rng));
    return config;
}

std::vector<double>
SearchSpace::encode(const Configuration &config) const
{
    std::vector<double> row;
    row.reserve(params_.size());
    for (const auto &p : params_) {
        if (std::holds_alternative<CategoricalDomain>(p.domain)) {
            const auto &d = std::get<CategoricalDomain>(p.domain);
            const std::string &value = config.categorical(p.name);
            double index = 0.0;
            for (std::size_t i = 0; i < d.options.size(); ++i)
                if (d.options[i] == value)
                    index = static_cast<double>(i);
            row.push_back(index);
        } else {
            row.push_back(config.real(p.name));
        }
    }
    return row;
}

Configuration
SearchSpace::perturb(const Configuration &config, common::Rng &rng) const
{
    if (params_.empty())
        return config;
    Configuration out = config;
    auto which = static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(params_.size()) - 1));
    out.set(params_[which].name, sampleDomain(params_[which].domain, rng));
    return out;
}

Configuration
SearchSpace::perturbLocal(const Configuration &config,
                          common::Rng &rng) const
{
    if (params_.empty())
        return config;
    Configuration out = config;
    auto which = static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(params_.size()) - 1));
    const Parameter &p = params_[which];

    if (const auto *d = std::get_if<RealDomain>(&p.domain)) {
        double current = config.real(p.name);
        double value;
        if (d->logScale) {
            double log_lo = std::log(d->lo);
            double log_hi = std::log(d->hi);
            double step = 0.1 * (log_hi - log_lo);
            value = std::exp(std::clamp(
                std::log(current) + rng.gaussian(0.0, step), log_lo,
                log_hi));
        } else {
            double step = 0.1 * (d->hi - d->lo);
            value = std::clamp(current + rng.gaussian(0.0, step), d->lo,
                               d->hi);
        }
        out.set(p.name, value);
    } else if (const auto *d = std::get_if<IntDomain>(&p.domain)) {
        std::int64_t current = config.integer(p.name);
        std::int64_t delta = rng.uniformInt(1, 2) *
                             (rng.bernoulli(0.5) ? 1 : -1);
        out.set(p.name, std::clamp(current + delta, d->lo, d->hi));
    } else if (const auto *d = std::get_if<OrdinalDomain>(&p.domain)) {
        double current = config.real(p.name);
        std::size_t index = 0;
        for (std::size_t i = 0; i < d->values.size(); ++i)
            if (d->values[i] == current)
                index = i;
        std::size_t last = d->values.size() - 1;
        std::size_t next =
            rng.bernoulli(0.5) ? std::min(index + 1, last)
                               : (index == 0 ? 0 : index - 1);
        out.set(p.name, d->values[next]);
    } else {
        out.set(p.name, sampleDomain(p.domain, rng));
    }
    return out;
}

double
SearchSpace::cardinalityEstimate() const
{
    double total = 1.0;
    for (const auto &p : params_) {
        if (const auto *d = std::get_if<IntDomain>(&p.domain))
            total *= static_cast<double>(d->hi - d->lo + 1);
        else if (const auto *d = std::get_if<OrdinalDomain>(&p.domain))
            total *= static_cast<double>(d->values.size());
        else if (const auto *d = std::get_if<CategoricalDomain>(&p.domain))
            total *= static_cast<double>(d->options.size());
        else
            total *= 1e6;  // continuous: effectively unbounded.
    }
    return total;
}

}  // namespace homunculus::opt
