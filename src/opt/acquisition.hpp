/**
 * @file
 * Acquisition functions for Bayesian optimization.
 *
 * The paper selects Expected Improvement (Mockus et al. [64]) over a
 * random-forest surrogate; feasibility-weighted EI multiplies by the
 * constraint model's predicted feasibility probability (Gardner et al.
 * [30] / Gelbart et al. [31] style), which is how Homunculus folds
 * resource and network constraints into the search.
 */
#pragma once

namespace homunculus::opt {

/**
 * Expected improvement of a Gaussian posterior over the incumbent.
 *
 * @param mean surrogate posterior mean at the candidate
 * @param variance surrogate posterior variance at the candidate
 * @param best incumbent objective value
 * @param maximize true when larger objectives are better
 * @param xi exploration jitter (>= 0)
 * @return expected improvement (>= 0)
 */
double expectedImprovement(double mean, double variance, double best,
                           bool maximize, double xi = 0.01);

/**
 * Upper/lower confidence bound (exploration knob beta).
 * Used by the ablation bench to contrast acquisition choices.
 */
double confidenceBound(double mean, double variance, bool maximize,
                       double beta = 2.0);

}  // namespace homunculus::opt
