#include "opt/pareto.hpp"

#include <algorithm>

namespace homunculus::opt {

bool
dominates(const ParetoPoint &a, const ParetoPoint &b)
{
    bool no_worse = a.objective >= b.objective && a.cost <= b.cost;
    bool strictly_better = a.objective > b.objective || a.cost < b.cost;
    return no_worse && strictly_better;
}

bool
ParetoFront::insert(ParetoPoint point)
{
    for (const auto &incumbent : points_) {
        if (dominates(incumbent, point))
            return false;
        // Duplicate coordinates: keep the incumbent.
        if (incumbent.objective == point.objective &&
            incumbent.cost == point.cost)
            return false;
    }
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [&](const ParetoPoint &incumbent) {
                                     return dominates(point, incumbent);
                                 }),
                  points_.end());
    points_.push_back(std::move(point));
    return true;
}

std::vector<ParetoPoint>
ParetoFront::sortedByCost() const
{
    std::vector<ParetoPoint> sorted = points_;
    std::sort(sorted.begin(), sorted.end(),
              [](const ParetoPoint &a, const ParetoPoint &b) {
                  return a.cost < b.cost;
              });
    return sorted;
}

double
ParetoFront::hypervolume(double objective_ref, double cost_ref) const
{
    // 2-D hypervolume: sweep points by ascending cost; each contributes
    // a rectangle from the previous objective level up to its own.
    std::vector<ParetoPoint> sorted = sortedByCost();
    double volume = 0.0;
    double best_objective = objective_ref;
    for (const auto &point : sorted) {
        if (point.cost >= cost_ref || point.objective <= objective_ref)
            continue;
        if (point.objective > best_objective) {
            volume += (cost_ref - point.cost) *
                      (point.objective - best_objective);
            best_objective = point.objective;
        }
    }
    return volume;
}

double
scalarize(double objective, double cost, double objective_lo,
          double objective_hi, double cost_lo, double cost_hi,
          double weight)
{
    double obj_range = objective_hi - objective_lo;
    double cost_range = cost_hi - cost_lo;
    double obj_norm =
        obj_range > 1e-12 ? (objective - objective_lo) / obj_range : 0.0;
    double cost_norm =
        cost_range > 1e-12 ? (cost - cost_lo) / cost_range : 0.0;
    return weight * obj_norm - (1.0 - weight) * cost_norm;
}

}  // namespace homunculus::opt
