#include "opt/bayes_opt.hpp"

#include <algorithm>
#include <limits>

#include "common/logging.hpp"
#include "opt/acquisition.hpp"

namespace homunculus::opt {

std::vector<double>
BoResult::bestSoFarSeries() const
{
    std::vector<double> series;
    series.reserve(history.size());
    for (const auto &record : history)
        series.push_back(record.bestSoFar);
    return series;
}

BayesianOptimizer::BayesianOptimizer(SearchSpace space, BoConfig config)
    : space_(std::move(space)), config_(config)
{
    if (space_.size() == 0)
        common::panic("bayes_opt", "empty search space");
    // Surrogate trees consider every dimension at each split: the spaces
    // are low-dimensional and the default d/3 subsampling starves them.
    if (config_.surrogate.tree.maxFeatures == 0)
        config_.surrogate.tree.maxFeatures = space_.size();
}

BoResult
BayesianOptimizer::optimize(const ObjectiveFn &objective)
{
    common::Rng rng(config_.seed);
    BoResult result;
    double best = config_.maximize ? -std::numeric_limits<double>::infinity()
                                   : std::numeric_limits<double>::infinity();

    std::vector<std::vector<double>> encoded;
    std::vector<double> objectives;
    std::vector<double> costs;     // multi-objective cost per evaluation.
    std::vector<int> feasibility;  // 1 = feasible.
    const bool multi_objective = !config_.costMetricKey.empty();

    const std::size_t planned_evals =
        config_.numInitSamples + config_.numIterations;
    auto stop_requested = [&] {
        return config_.shouldStop && config_.shouldStop();
    };

    auto record_eval = [&](const Configuration &config,
                           const EvalResult &eval, bool warmup) {
        encoded.push_back(space_.encode(config));
        objectives.push_back(eval.objective);
        double cost = 0.0;
        if (multi_objective) {
            auto it = eval.metrics.find(config_.costMetricKey);
            if (it != eval.metrics.end())
                cost = it->second;
        }
        costs.push_back(cost);
        feasibility.push_back(eval.feasible ? 1 : 0);
        if (multi_objective && eval.feasible) {
            ParetoPoint point;
            point.config = config;
            point.objective = eval.objective;
            point.cost = cost;
            result.front.insert(std::move(point));
        }

        bool better = eval.feasible &&
                      (config_.maximize ? eval.objective > best
                                        : eval.objective < best);
        if (better || (eval.feasible && !result.foundFeasible)) {
            best = eval.objective;
            result.bestConfig = config;
            result.bestResult = eval;
            result.foundFeasible = true;
        }
        BoRecord record;
        record.config = config;
        record.result = eval;
        record.bestSoFar = result.foundFeasible ? best : 0.0;
        record.fromWarmup = warmup;
        result.history.push_back(std::move(record));
        if (config_.onEvaluation)
            config_.onEvaluation(result.history.size(), planned_evals);
    };

    // --- Phase 1: uniform random sampling (paper §5 initialization). ----
    for (std::size_t i = 0; i < config_.numInitSamples; ++i) {
        if (stop_requested()) {
            result.cancelled = true;
            return result;
        }
        Configuration config = space_.sample(rng);
        record_eval(config, objective(config), true);
    }

    // --- Phase 2: surrogate-guided iterations. ---------------------------
    for (std::size_t iter = 0; iter < config_.numIterations; ++iter) {
        if (stop_requested()) {
            result.cancelled = true;
            return result;
        }
        // Random scalarization (multi-objective mode): redraw the
        // objective/cost trade-off weight every iteration so successive
        // iterations chase different regions of the Pareto front.
        double weight = multi_objective ? rng.uniform(0.15, 1.0) : 1.0;
        double obj_lo = 0.0, obj_hi = 1.0, cost_lo = 0.0, cost_hi = 1.0;
        if (multi_objective) {
            bool first = true;
            for (std::size_t i = 0; i < encoded.size(); ++i) {
                if (feasibility[i] != 1)
                    continue;
                if (first) {
                    obj_lo = obj_hi = objectives[i];
                    cost_lo = cost_hi = costs[i];
                    first = false;
                } else {
                    obj_lo = std::min(obj_lo, objectives[i]);
                    obj_hi = std::max(obj_hi, objectives[i]);
                    cost_lo = std::min(cost_lo, costs[i]);
                    cost_hi = std::max(cost_hi, costs[i]);
                }
            }
        }

        // Fit the objective surrogate on feasible observations (objective
        // values of infeasible points are dominated by the constraint
        // model and would only distort the regression). In multi-
        // objective mode the regression target is the scalarized value.
        math::Matrix fx;
        std::vector<double> fy;
        double scalarized_best =
            -std::numeric_limits<double>::infinity();
        {
            std::vector<std::vector<double>> rows;
            for (std::size_t i = 0; i < encoded.size(); ++i) {
                if (feasibility[i] == 1) {
                    rows.push_back(encoded[i]);
                    double target =
                        multi_objective
                            ? scalarize(objectives[i], costs[i], obj_lo,
                                        obj_hi, cost_lo, cost_hi, weight)
                            : objectives[i];
                    fy.push_back(target);
                    scalarized_best = std::max(scalarized_best, target);
                }
            }
            if (!rows.empty())
                fx = math::Matrix::fromRows(rows);
        }

        bool have_surrogate = fx.rows() >= 3;
        ml::RandomForestRegressor surrogate(config_.surrogate);
        if (have_surrogate)
            surrogate.train(fx, fy);

        // Feasibility model: only meaningful once both verdicts observed.
        bool have_feasibility_model = false;
        ml::ForestConfig feas_config = config_.surrogate;
        feas_config.seed ^= 0xFEA51B1Eull;
        ml::RandomForestClassifier feasibility_model(feas_config);
        {
            bool any_infeasible =
                std::any_of(feasibility.begin(), feasibility.end(),
                            [](int f) { return f == 0; });
            bool any_feasible =
                std::any_of(feasibility.begin(), feasibility.end(),
                            [](int f) { return f == 1; });
            if (any_infeasible && any_feasible) {
                ml::Dataset feas_data;
                feas_data.x = math::Matrix::fromRows(encoded);
                feas_data.y = feasibility;
                feas_data.numClasses = 2;
                feasibility_model.train(feas_data);
                have_feasibility_model = true;
            }
        }

        // Acquisition: best feasibility-weighted EI over a random pool,
        // refined with local perturbations of the incumbent.
        Configuration best_candidate = space_.sample(rng);
        double best_score = -std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < config_.candidatePool; ++c) {
            Configuration candidate;
            if (result.foundFeasible && c % 4 == 0) {
                candidate = space_.perturb(result.bestConfig, rng);
            } else if (result.foundFeasible && c % 4 == 1) {
                candidate = space_.perturbLocal(result.bestConfig, rng);
            } else {
                candidate = space_.sample(rng);
            }
            std::vector<double> row = space_.encode(candidate);

            double score;
            if (have_surrogate) {
                ml::ForestPrediction pred =
                    surrogate.predictWithVariance(row);
                double incumbent = multi_objective ? scalarized_best : best;
                bool maximize =
                    multi_objective ? true : config_.maximize;
                score = expectedImprovement(pred.mean, pred.variance,
                                            incumbent, maximize,
                                            config_.xi);
            } else {
                score = 1.0;  // no model yet: rank by feasibility alone.
            }
            if (have_feasibility_model) {
                std::vector<double> probs =
                    feasibility_model.predictProbaPoint(row);
                score *= std::max(probs[1], 1e-3);
            }
            // Deterministic tie-break jitter keeps the argmax unique.
            score += rng.uniform(0.0, 1e-9);
            if (score > best_score) {
                best_score = score;
                best_candidate = candidate;
            }
        }

        record_eval(best_candidate, objective(best_candidate), false);
    }
    return result;
}

BoResult
randomSearch(const SearchSpace &space, const ObjectiveFn &objective,
             std::size_t num_evaluations, bool maximize, std::uint64_t seed)
{
    common::Rng rng(seed);
    BoResult result;
    double best = maximize ? -std::numeric_limits<double>::infinity()
                           : std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < num_evaluations; ++i) {
        Configuration config = space.sample(rng);
        EvalResult eval = objective(config);
        bool better = eval.feasible && (maximize ? eval.objective > best
                                                 : eval.objective < best);
        if (better || (eval.feasible && !result.foundFeasible)) {
            best = eval.objective;
            result.bestConfig = config;
            result.bestResult = eval;
            result.foundFeasible = true;
        }
        BoRecord record;
        record.config = config;
        record.result = eval;
        record.bestSoFar = result.foundFeasible ? best : 0.0;
        record.fromWarmup = false;
        result.history.push_back(std::move(record));
    }
    return result;
}

}  // namespace homunculus::opt
