/**
 * @file
 * Constrained Bayesian optimization over a mixed search space.
 *
 * This is the paper's optimization core (§3.2.3-§3.2.4), i.e. the
 * HyperMapper configuration it describes (§5): a uniform random-sampling
 * initialization phase, a random-forest surrogate (well-suited to the
 * discrete, non-continuous response surfaces of systems workloads), the
 * Expected Improvement criterion, and a feasibility model learned from
 * the backend's constraint verdicts that multiplies the acquisition so
 * infeasible regions are vacated quickly.
 */
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ml/random_forest.hpp"
#include "opt/pareto.hpp"
#include "opt/search_space.hpp"

namespace homunculus::opt {

/** What one black-box evaluation reports back. */
struct EvalResult
{
    double objective = 0.0;   ///< e.g. F1 score of the trained model.
    bool feasible = false;    ///< backend constraint verdict.
    std::map<std::string, double> metrics;  ///< extra telemetry (CUs, ns…).
};

/** The black box: train + map + test one configuration. */
using ObjectiveFn = std::function<EvalResult(const Configuration &)>;

/** Optimizer settings. */
struct BoConfig
{
    std::size_t numInitSamples = 6;   ///< uniform warmup evaluations.
    std::size_t numIterations = 20;   ///< model-guided evaluations.
    std::size_t candidatePool = 600;  ///< acquisition sampling budget.
    bool maximize = true;
    double xi = 0.01;                 ///< EI exploration jitter.
    ml::ForestConfig surrogate;       ///< RF surrogate settings.
    std::uint64_t seed = 2024;

    /**
     * Multi-objective mode (paper §6: "multi-objective optimization is
     * a crucial matter"): when non-empty, the named EvalResult metric is
     * treated as a cost to minimize alongside the maximized objective.
     * The optimizer then runs random-scalarization BO (Paria et al.)
     * and reports the Pareto front of feasible evaluations.
     */
    std::string costMetricKey;

    /**
     * Cooperative cancellation: polled before every black-box evaluation.
     * When it returns true the run stops, marks the result cancelled, and
     * returns the partial trace. NOTE: when the optimizer runs inside a
     * parallel compile session, these hooks fire concurrently from pool
     * worker threads (unlike the session's serialized ProgressObserver)
     * — they must be thread-safe.
     */
    std::function<bool()> shouldStop;

    /** Progress hook: (evaluations completed, evaluations planned).
     *  Same threading caveat as shouldStop. */
    std::function<void(std::size_t, std::size_t)> onEvaluation;
};

/** One step of the optimization trace (regret-plot material). */
struct BoRecord
{
    Configuration config;
    EvalResult result;
    double bestSoFar = 0.0;  ///< best feasible objective after this step.
    bool fromWarmup = false;
};

/** Final outcome. */
struct BoResult
{
    bool foundFeasible = false;
    bool cancelled = false;  ///< BoConfig::shouldStop ended the run early.
    Configuration bestConfig;
    EvalResult bestResult;
    std::vector<BoRecord> history;

    /** Non-dominated (objective, cost) set; empty in single-objective
     *  mode. */
    ParetoFront front;

    /** Best-so-far series (one point per evaluation) for regret plots. */
    std::vector<double> bestSoFarSeries() const;
};

/** The optimizer. */
class BayesianOptimizer
{
  public:
    BayesianOptimizer(SearchSpace space, BoConfig config);

    /** Run warmup + BO iterations against the black box. */
    BoResult optimize(const ObjectiveFn &objective);

    const SearchSpace &space() const { return space_; }
    const BoConfig &config() const { return config_; }

  private:
    SearchSpace space_;
    BoConfig config_;
};

/** Uniform random search at equal budget — the ablation baseline. */
BoResult randomSearch(const SearchSpace &space, const ObjectiveFn &objective,
                      std::size_t num_evaluations, bool maximize,
                      std::uint64_t seed);

}  // namespace homunculus::opt
