/**
 * @file
 * Mixed-domain hyperparameter search space (HyperMapper-style).
 *
 * The paper formulates design-space exploration as black-box optimization
 * over real, integer, ordinal, and categorical variables (§3.2.3). A
 * SearchSpace declares the variables and their bounds; Configurations are
 * concrete assignments; encode() flattens a configuration into a numeric
 * vector the random-forest surrogate can consume (categoricals become
 * their option index — trees split on them natively).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.hpp"

namespace homunculus::opt {

/** Continuous variable in [lo, hi]; optionally sampled log-uniformly. */
struct RealDomain
{
    double lo = 0.0;
    double hi = 1.0;
    bool logScale = false;
};

/** Integer variable in [lo, hi] inclusive. */
struct IntDomain
{
    std::int64_t lo = 0;
    std::int64_t hi = 1;
};

/** Ordered discrete set of numeric values (e.g. batch sizes). */
struct OrdinalDomain
{
    std::vector<double> values;
};

/** Unordered set of named options (e.g. activation functions). */
struct CategoricalDomain
{
    std::vector<std::string> options;
};

using Domain =
    std::variant<RealDomain, IntDomain, OrdinalDomain, CategoricalDomain>;

/** A named variable. */
struct Parameter
{
    std::string name;
    Domain domain;
};

/** A concrete value: real, integer, or categorical option. */
using ConfigValue = std::variant<double, std::int64_t, std::string>;

/** A full assignment of values to the space's parameters. */
class Configuration
{
  public:
    void set(const std::string &name, ConfigValue value);
    bool has(const std::string &name) const;

    double real(const std::string &name) const;
    std::int64_t integer(const std::string &name) const;
    const std::string &categorical(const std::string &name) const;

    const std::map<std::string, ConfigValue> &values() const
    {
        return values_;
    }

    /** Stable human-readable rendering ("a=1 b=relu c=0.5"). */
    std::string toString() const;

  private:
    std::map<std::string, ConfigValue> values_;
};

/** The declared search space. */
class SearchSpace
{
  public:
    void addReal(const std::string &name, double lo, double hi,
                 bool log_scale = false);
    void addInteger(const std::string &name, std::int64_t lo,
                    std::int64_t hi);
    void addOrdinal(const std::string &name, std::vector<double> values);
    void addCategorical(const std::string &name,
                        std::vector<std::string> options);

    std::size_t size() const { return params_.size(); }
    const Parameter &param(std::size_t index) const;
    const Parameter *find(const std::string &name) const;

    /** Uniform random configuration. */
    Configuration sample(common::Rng &rng) const;

    /** Flatten a configuration into the surrogate's numeric feature row. */
    std::vector<double> encode(const Configuration &config) const;

    /**
     * Mutate one variable of @p config to a fresh random value — the
     * local-perturbation move used to refine acquisition optimization.
     */
    Configuration perturb(const Configuration &config,
                          common::Rng &rng) const;

    /**
     * Local neighborhood move: one variable steps a short distance
     * (Gaussian for reals at ~10% of the range, +-1/2 for integers,
     * adjacent value for ordinals, resample for categoricals). Drives the
     * exploitation half of acquisition optimization.
     */
    Configuration perturbLocal(const Configuration &config,
                               common::Rng &rng) const;

    /** Total combinatorial size estimate (inf-like for real spaces). */
    double cardinalityEstimate() const;

  private:
    std::vector<Parameter> params_;
};

}  // namespace homunculus::opt
