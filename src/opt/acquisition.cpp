#include "opt/acquisition.hpp"

#include <algorithm>
#include <cmath>

#include "math/stats.hpp"

namespace homunculus::opt {

double
expectedImprovement(double mean, double variance, double best, bool maximize,
                    double xi)
{
    double sigma = std::sqrt(std::max(variance, 0.0));
    double improvement = maximize ? mean - best - xi : best - mean - xi;
    if (sigma < 1e-12)
        return std::max(improvement, 0.0);
    double z = improvement / sigma;
    return improvement * math::normalCdf(z) + sigma * math::normalPdf(z);
}

double
confidenceBound(double mean, double variance, bool maximize, double beta)
{
    double sigma = std::sqrt(std::max(variance, 0.0));
    return maximize ? mean + beta * sigma : -(mean - beta * sigma);
}

}  // namespace homunculus::opt
