/**
 * @file
 * Pareto-front utilities for multi-objective optimization.
 *
 * The paper builds on HyperMapper's *multi-objective* formulation:
 * real deployments trade model quality against data-plane resources.
 * This module maintains the non-dominated set over (objective, cost)
 * pairs — objective maximized, cost minimized — and provides the random
 * scalarization used to fold the trade-off into a single-acquisition BO
 * loop (Paria et al. [72], the paper's citation for the technique).
 */
#pragma once

#include <vector>

#include "opt/search_space.hpp"

namespace homunculus::opt {

/** One point of the quality/cost trade-off. */
struct ParetoPoint
{
    Configuration config;
    double objective = 0.0;  ///< maximized (e.g. F1).
    double cost = 0.0;       ///< minimized (e.g. CUs, power, tables).
};

/** True when @p a dominates @p b (>= on objective, <= on cost, one strict). */
bool dominates(const ParetoPoint &a, const ParetoPoint &b);

/** Maintains the non-dominated set incrementally. */
class ParetoFront
{
  public:
    /**
     * Offer a point.
     * @return true if the point joined the front (i.e. it was not
     *         dominated); dominated incumbents are evicted.
     */
    bool insert(ParetoPoint point);

    const std::vector<ParetoPoint> &points() const { return points_; }
    std::size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }

    /** Points sorted by ascending cost (for plotting/printing). */
    std::vector<ParetoPoint> sortedByCost() const;

    /**
     * Hypervolume indicator against a reference point (objective_ref
     * below all points, cost_ref above all points): the standard scalar
     * measure of front quality for 2-D fronts.
     */
    double hypervolume(double objective_ref, double cost_ref) const;

  private:
    std::vector<ParetoPoint> points_;
};

/**
 * Random linear scalarization: objective' = w * objective_norm -
 * (1 - w) * cost_norm with w ~ U(0,1) redrawn per call. Normalization
 * bounds come from the observed ranges.
 */
double scalarize(double objective, double cost, double objective_lo,
                 double objective_hi, double cost_lo, double cost_hi,
                 double weight);

}  // namespace homunculus::opt
