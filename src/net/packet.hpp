/**
 * @file
 * Raw packet headers and wire-format (de)serialization.
 *
 * The data-plane pipelines Homunculus generates begin with packet
 * parsing and feature extraction (paper Figure 5's first two template
 * stages). This module provides the packet substrate: Ethernet, IPv4,
 * TCP and UDP headers with big-endian serialization, an IPv4 header
 * checksum, and a parser that recovers the header stack from bytes —
 * the same job the emitted P4 parser / Spatial StreamIn front-end does
 * on hardware.
 */
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

namespace homunculus::net {

using MacAddress = std::array<std::uint8_t, 6>;

/** EtherType values this substrate understands. */
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

/** IPv4 protocol numbers. */
constexpr std::uint8_t kProtoTcp = 6;
constexpr std::uint8_t kProtoUdp = 17;

/** 14-byte Ethernet II header. */
struct EthernetHeader
{
    MacAddress dst{};
    MacAddress src{};
    std::uint16_t etherType = kEtherTypeIpv4;

    static constexpr std::size_t kWireSize = 14;
};

/** 20-byte IPv4 header (no options). */
struct Ipv4Header
{
    std::uint8_t versionIhl = 0x45;   ///< version 4, IHL 5.
    std::uint8_t tos = 0;
    std::uint16_t totalLength = 0;
    std::uint16_t identification = 0;
    std::uint16_t flagsFragment = 0;
    std::uint8_t ttl = 64;
    std::uint8_t protocol = kProtoTcp;
    std::uint16_t checksum = 0;       ///< filled by serialize().
    std::uint32_t srcAddr = 0;
    std::uint32_t dstAddr = 0;

    static constexpr std::size_t kWireSize = 20;
};

/** 20-byte TCP header (no options). */
struct TcpHeader
{
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    std::uint8_t dataOffset = 5;  ///< 32-bit words.
    std::uint8_t flags = 0;
    std::uint16_t window = 0;
    std::uint16_t checksum = 0;
    std::uint16_t urgentPtr = 0;

    static constexpr std::size_t kWireSize = 20;
};

/** 8-byte UDP header. */
struct UdpHeader
{
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint16_t length = 0;
    std::uint16_t checksum = 0;

    static constexpr std::size_t kWireSize = 8;
};

/** A full parsed packet: header stack + payload + arrival time. */
struct RawPacket
{
    EthernetHeader eth;
    Ipv4Header ipv4;
    std::optional<TcpHeader> tcp;   ///< exactly one of tcp/udp is set.
    std::optional<UdpHeader> udp;
    std::vector<std::uint8_t> payload;
    double timestampSec = 0.0;

    /** On-wire length (headers + payload). */
    std::size_t wireSize() const;
};

/** Compute the standard 16-bit ones-complement IPv4 header checksum. */
std::uint16_t ipv4Checksum(const std::uint8_t *header, std::size_t length);

/**
 * Serialize a packet to its wire format. Fills ipv4.totalLength and the
 * IPv4 checksum; transport checksums are left zero (as many NIC offloads
 * would on transmit).
 */
std::vector<std::uint8_t> serialize(const RawPacket &packet);

/**
 * Parse a wire-format buffer back into a packet.
 *
 * @return the packet, or std::nullopt when the buffer is truncated, not
 *         IPv4, carries an unknown transport, or fails the checksum.
 */
std::optional<RawPacket> parse(const std::vector<std::uint8_t> &bytes,
                               double timestamp_sec = 0.0);

}  // namespace homunculus::net
