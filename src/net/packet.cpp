#include "net/packet.hpp"

#include <cstring>

namespace homunculus::net {

namespace {

void
put16(std::vector<std::uint8_t> &out, std::uint16_t value)
{
    out.push_back(static_cast<std::uint8_t>(value >> 8));
    out.push_back(static_cast<std::uint8_t>(value & 0xFF));
}

void
put32(std::vector<std::uint8_t> &out, std::uint32_t value)
{
    out.push_back(static_cast<std::uint8_t>(value >> 24));
    out.push_back(static_cast<std::uint8_t>((value >> 16) & 0xFF));
    out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xFF));
    out.push_back(static_cast<std::uint8_t>(value & 0xFF));
}

std::uint16_t
get16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t
get32(const std::uint8_t *p)
{
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) |
           static_cast<std::uint32_t>(p[3]);
}

}  // namespace

std::size_t
RawPacket::wireSize() const
{
    std::size_t size = EthernetHeader::kWireSize + Ipv4Header::kWireSize +
                       payload.size();
    if (tcp)
        size += TcpHeader::kWireSize;
    if (udp)
        size += UdpHeader::kWireSize;
    return size;
}

std::uint16_t
ipv4Checksum(const std::uint8_t *header, std::size_t length)
{
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i + 1 < length; i += 2)
        sum += get16(header + i);
    if (length % 2 == 1)
        sum += static_cast<std::uint32_t>(header[length - 1]) << 8;
    while (sum >> 16)
        sum = (sum & 0xFFFF) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::vector<std::uint8_t>
serialize(const RawPacket &packet)
{
    std::vector<std::uint8_t> out;
    out.reserve(packet.wireSize());

    // --- Ethernet ------------------------------------------------------
    out.insert(out.end(), packet.eth.dst.begin(), packet.eth.dst.end());
    out.insert(out.end(), packet.eth.src.begin(), packet.eth.src.end());
    put16(out, packet.eth.etherType);

    // --- IPv4 ------------------------------------------------------------
    std::size_t transport_size =
        packet.tcp ? TcpHeader::kWireSize
                   : (packet.udp ? UdpHeader::kWireSize : 0);
    auto total_length = static_cast<std::uint16_t>(
        Ipv4Header::kWireSize + transport_size + packet.payload.size());

    std::size_t ipv4_start = out.size();
    out.push_back(packet.ipv4.versionIhl);
    out.push_back(packet.ipv4.tos);
    put16(out, total_length);
    put16(out, packet.ipv4.identification);
    put16(out, packet.ipv4.flagsFragment);
    out.push_back(packet.ipv4.ttl);
    out.push_back(packet.ipv4.protocol);
    put16(out, 0);  // checksum placeholder.
    put32(out, packet.ipv4.srcAddr);
    put32(out, packet.ipv4.dstAddr);

    std::uint16_t checksum =
        ipv4Checksum(out.data() + ipv4_start, Ipv4Header::kWireSize);
    out[ipv4_start + 10] = static_cast<std::uint8_t>(checksum >> 8);
    out[ipv4_start + 11] = static_cast<std::uint8_t>(checksum & 0xFF);

    // --- Transport ---------------------------------------------------------
    if (packet.tcp) {
        const TcpHeader &tcp = *packet.tcp;
        put16(out, tcp.srcPort);
        put16(out, tcp.dstPort);
        put32(out, tcp.seq);
        put32(out, tcp.ack);
        out.push_back(static_cast<std::uint8_t>(tcp.dataOffset << 4));
        out.push_back(tcp.flags);
        put16(out, tcp.window);
        put16(out, tcp.checksum);
        put16(out, tcp.urgentPtr);
    } else if (packet.udp) {
        const UdpHeader &udp = *packet.udp;
        put16(out, udp.srcPort);
        put16(out, udp.dstPort);
        put16(out, static_cast<std::uint16_t>(UdpHeader::kWireSize +
                                              packet.payload.size()));
        put16(out, udp.checksum);
    }

    out.insert(out.end(), packet.payload.begin(), packet.payload.end());
    return out;
}

std::optional<RawPacket>
parse(const std::vector<std::uint8_t> &bytes, double timestamp_sec)
{
    if (bytes.size() < EthernetHeader::kWireSize + Ipv4Header::kWireSize)
        return std::nullopt;

    RawPacket packet;
    packet.timestampSec = timestamp_sec;
    const std::uint8_t *p = bytes.data();

    std::memcpy(packet.eth.dst.data(), p, 6);
    std::memcpy(packet.eth.src.data(), p + 6, 6);
    packet.eth.etherType = get16(p + 12);
    if (packet.eth.etherType != kEtherTypeIpv4)
        return std::nullopt;
    p += EthernetHeader::kWireSize;

    packet.ipv4.versionIhl = p[0];
    if ((packet.ipv4.versionIhl >> 4) != 4 ||
        (packet.ipv4.versionIhl & 0x0F) != 5)
        return std::nullopt;  // options unsupported by this substrate.
    packet.ipv4.tos = p[1];
    packet.ipv4.totalLength = get16(p + 2);
    packet.ipv4.identification = get16(p + 4);
    packet.ipv4.flagsFragment = get16(p + 6);
    packet.ipv4.ttl = p[8];
    packet.ipv4.protocol = p[9];
    packet.ipv4.checksum = get16(p + 10);
    packet.ipv4.srcAddr = get32(p + 12);
    packet.ipv4.dstAddr = get32(p + 16);

    // Verify the checksum: recompute with the field zeroed.
    std::array<std::uint8_t, Ipv4Header::kWireSize> header_copy;
    std::memcpy(header_copy.data(), p, Ipv4Header::kWireSize);
    header_copy[10] = 0;
    header_copy[11] = 0;
    if (ipv4Checksum(header_copy.data(), Ipv4Header::kWireSize) !=
        packet.ipv4.checksum)
        return std::nullopt;
    p += Ipv4Header::kWireSize;

    std::size_t consumed = EthernetHeader::kWireSize + Ipv4Header::kWireSize;
    if (packet.ipv4.protocol == kProtoTcp) {
        if (bytes.size() < consumed + TcpHeader::kWireSize)
            return std::nullopt;
        TcpHeader tcp;
        tcp.srcPort = get16(p);
        tcp.dstPort = get16(p + 2);
        tcp.seq = get32(p + 4);
        tcp.ack = get32(p + 8);
        tcp.dataOffset = static_cast<std::uint8_t>(p[12] >> 4);
        tcp.flags = p[13];
        tcp.window = get16(p + 14);
        tcp.checksum = get16(p + 16);
        tcp.urgentPtr = get16(p + 18);
        packet.tcp = tcp;
        consumed += TcpHeader::kWireSize;
        p += TcpHeader::kWireSize;
    } else if (packet.ipv4.protocol == kProtoUdp) {
        if (bytes.size() < consumed + UdpHeader::kWireSize)
            return std::nullopt;
        UdpHeader udp;
        udp.srcPort = get16(p);
        udp.dstPort = get16(p + 2);
        udp.length = get16(p + 4);
        udp.checksum = get16(p + 6);
        packet.udp = udp;
        consumed += UdpHeader::kWireSize;
        p += UdpHeader::kWireSize;
    } else {
        return std::nullopt;
    }

    packet.payload.assign(bytes.begin() +
                              static_cast<std::ptrdiff_t>(consumed),
                          bytes.end());
    return packet;
}

}  // namespace homunculus::net
