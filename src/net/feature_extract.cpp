#include "net/feature_extract.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "math/stats.hpp"

namespace homunculus::net {

FeatureExtractor::FeatureExtractor(FeatureExtractorConfig config)
    : config_(config)
{
}

std::vector<std::string>
FeatureExtractor::featureNames()
{
    return {"pkt_size", "ipv4_ttl", "ip_proto", "src_port_bkt",
            "dst_port_bkt", "tos_dscp", "payload_entropy"};
}

double
FeatureExtractor::payloadEntropy(
    const std::vector<std::uint8_t> &payload) const
{
    if (payload.empty())
        return 0.0;
    std::size_t sample = std::min(config_.entropySampleBytes,
                                  payload.size());
    std::vector<double> counts(256, 0.0);
    for (std::size_t i = 0; i < sample; ++i)
        counts[payload[i]] += 1.0;
    // Normalize to [0, 1] against the maximum entropy of the sample.
    double h = math::entropy(counts);
    double h_max = std::log(static_cast<double>(std::min<std::size_t>(
        256, sample)));
    return h_max > 0.0 ? std::clamp(h / h_max, 0.0, 1.0) : 0.0;
}

std::vector<double>
FeatureExtractor::extract(const RawPacket &packet) const
{
    std::uint16_t src_port = 0, dst_port = 0;
    if (packet.tcp) {
        src_port = packet.tcp->srcPort;
        dst_port = packet.tcp->dstPort;
    } else if (packet.udp) {
        src_port = packet.udp->srcPort;
        dst_port = packet.udp->dstPort;
    }

    std::vector<double> features(kNumTcFeatures);
    features[0] = static_cast<double>(packet.wireSize());
    features[1] = static_cast<double>(packet.ipv4.ttl);
    features[2] = static_cast<double>(packet.ipv4.protocol);
    features[3] = static_cast<double>(src_port % config_.portBuckets);
    features[4] = static_cast<double>(dst_port % config_.portBuckets);
    features[5] = static_cast<double>(packet.ipv4.tos) / 255.0;
    features[6] = payloadEntropy(packet.payload);
    return features;
}

std::optional<std::vector<double>>
FeatureExtractor::extractFromWire(
    const std::vector<std::uint8_t> &bytes) const
{
    std::optional<RawPacket> packet = parse(bytes);
    if (!packet)
        return std::nullopt;
    return extract(*packet);
}

namespace {

/** Per-archetype wire behavior mirroring data::kProfiles. */
struct DeviceWireProfile
{
    double payloadMean, payloadStddev;
    std::uint8_t ttl;
    std::uint8_t protocol;
    std::uint16_t srcPortBase, dstPortBase;
    std::uint8_t tos;
    double entropyLevel;  ///< 0 = constant bytes, 1 = random bytes.
};

constexpr DeviceWireProfile kWireProfiles[] = {
    // camera: large UDP video with near-random (compressed) payload.
    {1000.0, 120.0, 62, kProtoUdp, 40004, 5005, 0x50, 0.95},
    // sensor: tiny UDP telemetry, highly structured payload.
    {60.0, 16.0, 64, kProtoUdp, 20002, 1883, 0x08, 0.25},
    // speaker: mid-size TCP audio.
    {560.0, 90.0, 58, kProtoTcp, 30003, 4444, 0x88, 0.80},
    // hub: mixed TCP control traffic.
    {280.0, 70.0, 60, kProtoTcp, 50005, 2880, 0x60, 0.55},
    // thermostat: sparse small TCP reports.
    {110.0, 30.0, 63, kProtoTcp, 10001, 2121, 0x10, 0.20},
};

}  // namespace

std::vector<LabeledPacket>
generateIotPackets(const IotPacketConfig &config)
{
    common::Rng rng(config.seed);
    std::vector<LabeledPacket> out;
    out.reserve(config.numPackets);
    int classes = std::clamp(config.numDeviceClasses, 2,
                             static_cast<int>(std::size(kWireProfiles)));

    for (std::size_t i = 0; i < config.numPackets; ++i) {
        int label = static_cast<int>(rng.uniformInt(0, classes - 1));
        const DeviceWireProfile &profile =
            kWireProfiles[static_cast<std::size_t>(label)];

        LabeledPacket labeled;
        labeled.deviceClass = label;
        RawPacket &packet = labeled.packet;

        for (std::size_t b = 0; b < 6; ++b) {
            packet.eth.src[b] = static_cast<std::uint8_t>(
                rng.uniformInt(0, 255));
            packet.eth.dst[b] = static_cast<std::uint8_t>(
                rng.uniformInt(0, 255));
        }
        packet.ipv4.ttl = profile.ttl;
        packet.ipv4.protocol = profile.protocol;
        packet.ipv4.tos = profile.tos;
        packet.ipv4.srcAddr = static_cast<std::uint32_t>(
            rng.uniformInt(0x0A000001, 0x0A00FFFF));
        packet.ipv4.dstAddr = static_cast<std::uint32_t>(
            rng.uniformInt(0x0A010001, 0x0A01FFFF));

        auto src_port = static_cast<std::uint16_t>(
            profile.srcPortBase + rng.uniformInt(0, 15));
        auto dst_port = static_cast<std::uint16_t>(profile.dstPortBase);
        if (profile.protocol == kProtoTcp) {
            TcpHeader tcp;
            tcp.srcPort = src_port;
            tcp.dstPort = dst_port;
            tcp.seq = static_cast<std::uint32_t>(
                rng.uniformInt(0, 0x7FFFFFFF));
            tcp.flags = 0x18;  // PSH|ACK data segment.
            tcp.window = 0xFFFF;
            packet.tcp = tcp;
        } else {
            UdpHeader udp;
            udp.srcPort = src_port;
            udp.dstPort = dst_port;
            packet.udp = udp;
        }

        auto payload_size = static_cast<std::size_t>(std::clamp(
            rng.gaussian(profile.payloadMean, profile.payloadStddev), 8.0,
            1400.0));
        packet.payload.resize(payload_size);
        for (std::size_t b = 0; b < payload_size; ++b) {
            // Entropy control: mix random bytes with a constant filler.
            packet.payload[b] =
                rng.bernoulli(profile.entropyLevel)
                    ? static_cast<std::uint8_t>(rng.uniformInt(0, 255))
                    : static_cast<std::uint8_t>(0x42);
        }
        packet.timestampSec = static_cast<double>(i) * 1e-5;
        out.push_back(std::move(labeled));
    }
    return out;
}

ml::Dataset
datasetFromPackets(const std::vector<LabeledPacket> &packets,
                   const FeatureExtractor &extractor)
{
    std::vector<std::vector<double>> rows;
    std::vector<int> labels;
    int max_label = 0;
    for (const auto &labeled : packets) {
        // Round-trip through the wire format: what the switch would see.
        auto features =
            extractor.extractFromWire(serialize(labeled.packet));
        if (!features)
            continue;
        rows.push_back(std::move(*features));
        labels.push_back(labeled.deviceClass);
        max_label = std::max(max_label, labeled.deviceClass);
    }
    ml::Dataset out;
    out.x = math::Matrix::fromRows(rows);
    out.y = std::move(labels);
    out.numClasses = max_label + 1;
    out.featureNames = FeatureExtractor::featureNames();
    out.validate();
    return out;
}

}  // namespace homunculus::net
