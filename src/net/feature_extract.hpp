/**
 * @file
 * Packet feature extraction — Figure 5's "Feature Extraction" template.
 *
 * Turns raw packets into the 7-feature row the TC models consume
 * (matching data::IotTrafficConfig's schema): on-wire size, IPv4 TTL,
 * protocol, src/dst port buckets, TOS, and a payload-entropy proxy. Also
 * provides a raw-packet generator for the IoT device archetypes so the
 * whole parse -> extract -> classify path can run from bytes, and a
 * feature-extraction pipeline stage usable in front of any Platform.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.hpp"
#include "net/packet.hpp"

namespace homunculus::net {

/** Number of features the TC extractor emits. */
constexpr std::size_t kNumTcFeatures = 7;

/** Extraction parameters (port bucketing, entropy sampling). */
struct FeatureExtractorConfig
{
    /** Ports are hashed into this many buckets (switch-friendly). */
    std::size_t portBuckets = 8;
    /** Bytes of payload sampled for the entropy proxy. */
    std::size_t entropySampleBytes = 64;
};

/** Stateless per-packet feature extraction. */
class FeatureExtractor
{
  public:
    explicit FeatureExtractor(FeatureExtractorConfig config = {});

    /** Feature vector for one parsed packet (length kNumTcFeatures). */
    std::vector<double> extract(const RawPacket &packet) const;

    /** Parse bytes then extract; nullopt when the packet is malformed. */
    std::optional<std::vector<double>> extractFromWire(
        const std::vector<std::uint8_t> &bytes) const;

    /** The feature names, aligned with the IoT generator's schema. */
    static std::vector<std::string> featureNames();

    const FeatureExtractorConfig &config() const { return config_; }

  private:
    double payloadEntropy(const std::vector<std::uint8_t> &payload) const;

    FeatureExtractorConfig config_;
};

/** Knobs for the raw IoT packet generator. */
struct IotPacketConfig
{
    std::size_t numPackets = 1000;
    int numDeviceClasses = 5;
    std::uint64_t seed = 99;
};

/** One labeled raw packet. */
struct LabeledPacket
{
    RawPacket packet;
    int deviceClass = 0;
};

/**
 * Generate raw packets for the 5 IoT device archetypes (camera, sensor,
 * speaker, hub, thermostat) — the byte-level counterpart of
 * data::generateIotTrafficDataset.
 */
std::vector<LabeledPacket> generateIotPackets(const IotPacketConfig &config);

/**
 * Full front-end: serialize + parse + extract every packet into a
 * labeled Dataset (rows whose packets fail parsing are dropped).
 */
ml::Dataset datasetFromPackets(const std::vector<LabeledPacket> &packets,
                               const FeatureExtractor &extractor);

}  // namespace homunculus::net
