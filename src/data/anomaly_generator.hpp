/**
 * @file
 * Synthetic NSL-KDD-style anomaly-detection dataset.
 *
 * Substitution (see DESIGN.md): the paper trains its anomaly-detection
 * model on NSL-KDD packet-level traces. We synthesize a dataset with the
 * same 7-feature schema the Taurus AD model consumes and the same
 * structural properties the compiler exercises: a benign majority class,
 * three attack archetypes (DoS flood, port probe, remote-to-local) whose
 * feature distributions overlap the benign cloud enough that model
 * capacity matters — so the F1-vs-size trade the BO loop explores is real.
 */
#pragma once

#include <cstdint>

#include "ml/dataset.hpp"

namespace homunculus::data {

/** Knobs for the anomaly-detection generator. */
struct AnomalyConfig
{
    std::size_t numSamples = 4000;
    double maliciousFraction = 0.35;  ///< attack share (NSL-KDD-like).
    /** Relative mix of DoS / probe / R2L within the malicious share. */
    double dosWeight = 0.5;
    double probeWeight = 0.3;
    double r2lWeight = 0.2;
    /** Class-overlap noise; larger is harder (0.5 ~ paper-like F1 band). */
    double noiseLevel = 0.5;
    /**
     * Fraction of malicious samples that mimic benign feature profiles
     * (stealthy attacks). Caps achievable recall — the lever that places
     * baseline F1 in the paper's 0.6-0.8 band.
     */
    double stealthFraction = 0.0;
    /** Fraction of flipped labels (annotation noise in IDS captures). */
    double labelNoise = 0.0;
    std::uint64_t seed = 42;
};

/**
 * Generate a binary-labeled anomaly dataset (0 = benign, 1 = malicious)
 * over features: duration, src_bytes, dst_bytes, conn_count, srv_count,
 * serror_rate, same_srv_rate.
 */
ml::Dataset generateAnomalyDataset(const AnomalyConfig &config);

/** Convenience: generated, split, and standardized in one call. */
ml::DataSplit generateAnomalySplit(const AnomalyConfig &config,
                                   double test_fraction = 0.3);

}  // namespace homunculus::data
