#include "data/loaders.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/csv.hpp"

namespace homunculus::data {

namespace {

ml::Dataset
datasetFromTable(const common::CsvTable &table)
{
    if (table.rows.empty())
        throw std::runtime_error("loader: empty CSV");
    std::size_t width = table.rows.front().size();
    if (width < 2)
        throw std::runtime_error("loader: need >= 1 feature + label column");

    ml::Dataset out;
    out.x = math::Matrix(table.rows.size(), width - 1);
    out.y.resize(table.rows.size());
    int max_label = 0;
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        for (std::size_t c = 0; c + 1 < width; ++c)
            out.x(r, c) = table.rows[r][c];
        double raw_label = table.rows[r][width - 1];
        int label = static_cast<int>(std::llround(raw_label));
        if (label < 0 || std::fabs(raw_label - label) > 1e-9)
            throw std::runtime_error(
                "loader: label column must hold non-negative integers");
        out.y[r] = label;
        max_label = std::max(max_label, label);
    }
    out.numClasses = max_label + 1;
    if (!table.header.empty()) {
        out.featureNames.assign(table.header.begin(),
                                table.header.end() - 1);
    }
    out.validate();
    return out;
}

}  // namespace

ml::Dataset
datasetFromCsv(const std::string &csv_content, bool has_header)
{
    return datasetFromTable(common::parseCsv(csv_content, has_header));
}

ml::Dataset
datasetFromCsvFile(const std::string &path, bool has_header)
{
    return datasetFromTable(common::readCsvFile(path, has_header));
}

std::string
datasetToCsv(const ml::Dataset &data)
{
    common::CsvTable table;
    if (!data.featureNames.empty()) {
        table.header = data.featureNames;
        table.header.push_back("label");
    }
    table.rows.reserve(data.numSamples());
    for (std::size_t r = 0; r < data.numSamples(); ++r) {
        std::vector<double> row = data.x.row(r);
        row.push_back(static_cast<double>(data.y[r]));
        table.rows.push_back(std::move(row));
    }
    return common::writeCsv(table);
}

void
datasetToCsvFile(const std::string &path, const ml::Dataset &data)
{
    common::CsvTable table;
    table.rows.reserve(data.numSamples());
    if (!data.featureNames.empty()) {
        table.header = data.featureNames;
        table.header.push_back("label");
    }
    for (std::size_t r = 0; r < data.numSamples(); ++r) {
        std::vector<double> row = data.x.row(r);
        row.push_back(static_cast<double>(data.y[r]));
        table.rows.push_back(std::move(row));
    }
    common::writeCsvFile(path, table);
}

DataLoaderFn
csvLoader(const std::string &train_path, const std::string &test_path,
          bool has_header)
{
    return [train_path, test_path, has_header]() {
        ml::DataSplit split;
        split.train = datasetFromCsvFile(train_path, has_header);
        split.test = datasetFromCsvFile(test_path, has_header);
        return split;
    };
}

}  // namespace homunculus::data
