#include "data/anomaly_generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "ml/preprocess.hpp"

namespace homunculus::data {

namespace {

/** Feature vector layout for the AD schema (7 features). */
enum AdFeature : std::size_t {
    kDuration = 0,
    kSrcBytes,
    kDstBytes,
    kConnCount,
    kSrvCount,
    kSerrorRate,
    kSameSrvRate,
    kNumAdFeatures,
};

/** Benign connection: moderate duration, balanced byte counts. */
std::vector<double>
benignSample(common::Rng &rng, double noise)
{
    std::vector<double> f(kNumAdFeatures);
    f[kDuration] = std::max(0.0, rng.exponential(0.08));
    f[kSrcBytes] = std::max(0.0, rng.gaussian(2200.0, 900.0 * (1 + noise)));
    f[kDstBytes] = std::max(0.0, rng.gaussian(3800.0, 1500.0 * (1 + noise)));
    f[kConnCount] = std::max(0.0, rng.gaussian(10.0, 6.0 * (1 + noise)));
    f[kSrvCount] = std::max(0.0, rng.gaussian(8.0, 5.0 * (1 + noise)));
    f[kSerrorRate] = std::clamp(rng.gaussian(0.04, 0.05 * (1 + noise)),
                                0.0, 1.0);
    f[kSameSrvRate] = std::clamp(rng.gaussian(0.85, 0.12 * (1 + noise)),
                                 0.0, 1.0);
    return f;
}

/** DoS flood: tiny payloads, huge connection counts, high SYN errors. */
std::vector<double>
dosSample(common::Rng &rng, double noise)
{
    std::vector<double> f(kNumAdFeatures);
    f[kDuration] = std::max(0.0, rng.exponential(2.0));
    f[kSrcBytes] = std::max(0.0, rng.gaussian(120.0, 220.0 * (1 + noise)));
    f[kDstBytes] = std::max(0.0, rng.gaussian(40.0, 120.0 * (1 + noise)));
    f[kConnCount] = std::max(0.0, rng.gaussian(180.0, 70.0 * (1 + noise)));
    f[kSrvCount] = std::max(0.0, rng.gaussian(150.0, 60.0 * (1 + noise)));
    f[kSerrorRate] = std::clamp(rng.gaussian(0.7, 0.22 * (1 + noise)),
                                0.0, 1.0);
    f[kSameSrvRate] = std::clamp(rng.gaussian(0.95, 0.1 * (1 + noise)),
                                 0.0, 1.0);
    return f;
}

/** Port probe: short bursts touching many distinct services. */
std::vector<double>
probeSample(common::Rng &rng, double noise)
{
    std::vector<double> f(kNumAdFeatures);
    f[kDuration] = std::max(0.0, rng.exponential(1.0));
    f[kSrcBytes] = std::max(0.0, rng.gaussian(300.0, 280.0 * (1 + noise)));
    f[kDstBytes] = std::max(0.0, rng.gaussian(900.0, 700.0 * (1 + noise)));
    f[kConnCount] = std::max(0.0, rng.gaussian(60.0, 30.0 * (1 + noise)));
    f[kSrvCount] = std::max(0.0, rng.gaussian(45.0, 25.0 * (1 + noise)));
    f[kSerrorRate] = std::clamp(rng.gaussian(0.35, 0.2 * (1 + noise)),
                                0.0, 1.0);
    f[kSameSrvRate] = std::clamp(rng.gaussian(0.25, 0.18 * (1 + noise)),
                                 0.0, 1.0);
    return f;
}

/** Remote-to-local: looks close to benign, long-duration, low error. */
std::vector<double>
r2lSample(common::Rng &rng, double noise)
{
    std::vector<double> f(kNumAdFeatures);
    f[kDuration] = std::max(0.0, rng.gaussian(45.0, 30.0 * (1 + noise)));
    f[kSrcBytes] = std::max(0.0, rng.gaussian(1800.0, 900.0 * (1 + noise)));
    f[kDstBytes] = std::max(0.0, rng.gaussian(5200.0, 2200.0 * (1 + noise)));
    f[kConnCount] = std::max(0.0, rng.gaussian(6.0, 5.0 * (1 + noise)));
    f[kSrvCount] = std::max(0.0, rng.gaussian(4.0, 4.0 * (1 + noise)));
    f[kSerrorRate] = std::clamp(rng.gaussian(0.08, 0.08 * (1 + noise)),
                                0.0, 1.0);
    f[kSameSrvRate] = std::clamp(rng.gaussian(0.7, 0.2 * (1 + noise)),
                                 0.0, 1.0);
    return f;
}

}  // namespace

ml::Dataset
generateAnomalyDataset(const AnomalyConfig &config)
{
    common::Rng rng(config.seed);
    ml::Dataset out;
    out.numClasses = 2;
    out.featureNames = {"duration", "src_bytes", "dst_bytes", "conn_count",
                        "srv_count", "serror_rate", "same_srv_rate"};
    out.x = math::Matrix(config.numSamples, kNumAdFeatures);
    out.y.resize(config.numSamples);

    std::vector<double> attack_mix = {config.dosWeight, config.probeWeight,
                                      config.r2lWeight};
    for (std::size_t i = 0; i < config.numSamples; ++i) {
        bool malicious = rng.bernoulli(config.maliciousFraction);
        std::vector<double> features;
        if (!malicious || rng.bernoulli(config.stealthFraction)) {
            // Benign profile — also used by stealthy attacks that blend
            // into normal traffic.
            features = benignSample(rng, config.noiseLevel);
        } else {
            switch (rng.categorical(attack_mix)) {
              case 0: features = dosSample(rng, config.noiseLevel); break;
              case 1: features = probeSample(rng, config.noiseLevel); break;
              default: features = r2lSample(rng, config.noiseLevel); break;
            }
        }
        for (std::size_t c = 0; c < kNumAdFeatures; ++c)
            out.x(i, c) = features[c];
        int label = malicious ? 1 : 0;
        if (rng.bernoulli(config.labelNoise))
            label ^= 1;
        out.y[i] = label;
    }
    return out;
}

ml::DataSplit
generateAnomalySplit(const AnomalyConfig &config, double test_fraction)
{
    ml::Dataset full = generateAnomalyDataset(config);
    ml::DataSplit split = ml::stratifiedSplit(full, test_fraction,
                                              config.seed ^ 0x1234ull);
    return ml::standardizeSplit(split);
}

}  // namespace homunculus::data
