/**
 * @file
 * FlowLens-style flowmarker featurization of packet flows.
 *
 * A flowmarker is a pair of coarse histograms per flow: packet-length (PL)
 * counts and inter-packet-time (IPT) counts. FlowLens uses 151 bins
 * aggregated over 3600 s; the paper's Homunculus BD application compresses
 * this to 30 bins (23 PL + 7 IPT) by fusing adjacent bins, and — crucially —
 * evaluates on *partial* histograms built from only the first k packets of
 * a flow, enabling per-packet reaction instead of waiting the full hour.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "data/p2p_traces.hpp"
#include "ml/dataset.hpp"

namespace homunculus::data {

/** Binning scheme of a flowmarker. */
struct FlowMarkerConfig
{
    std::size_t plBins = 23;       ///< packet-length bins.
    double plBinWidth = 64.0;      ///< bytes per PL bin (paper: 64 B).
    std::size_t iptBins = 7;       ///< inter-packet-time bins.
    double iptBinWidthSec = 512.0; ///< seconds per IPT bin (paper: 512 s).

    std::size_t totalBins() const { return plBins + iptBins; }
};

/** The FlowLens original scheme: 94 PL + 57 IPT = 151 bins. */
FlowMarkerConfig flowLensOriginalConfig();

/** The Homunculus-compressed scheme: 23 PL + 7 IPT = 30 bins. */
FlowMarkerConfig homunculusCompressedConfig();

/**
 * Build the flowmarker feature vector for one flow.
 *
 * @param flow source packet flow
 * @param config binning scheme
 * @param max_packets truncate to the first k packets (0 = whole flow),
 *        producing the *partial* histogram used for per-packet inference
 * @return PL histogram followed by IPT histogram, length totalBins()
 */
std::vector<double> computeFlowMarker(const Flow &flow,
                                      const FlowMarkerConfig &config,
                                      std::size_t max_packets = 0);

/** Flow-level dataset: one row per flow, label 1 = botnet. */
ml::Dataset buildFlowLevelDataset(const std::vector<Flow> &flows,
                                  const FlowMarkerConfig &config);

/**
 * Per-packet dataset: for each flow, one row per packet prefix (every
 * @p stride packets), each row a partial histogram with the flow's label.
 * This is the 120M-test-packet evaluation of paper §5.1.2 in miniature.
 */
ml::Dataset buildPerPacketDataset(const std::vector<Flow> &flows,
                                  const FlowMarkerConfig &config,
                                  std::size_t stride = 1);

/** Per-class average histograms for Figure 6. */
struct ClassHistograms
{
    std::vector<double> benignPl, botnetPl;    ///< avg PL counts per bin.
    std::vector<double> benignIpt, botnetIpt;  ///< avg IPT counts per bin.
};

/** Average the flow-level histograms per class (Figure 6 series). */
ClassHistograms averageClassHistograms(const std::vector<Flow> &flows,
                                       const FlowMarkerConfig &config);

}  // namespace homunculus::data
