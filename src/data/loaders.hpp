/**
 * @file
 * Dataset <-> CSV bridging, the C++ analogue of Alchemy's @DataLoader.
 *
 * The Alchemy DSL wraps a user function that loads and preprocesses a
 * labeled dataset. In this library a DataLoader is any callable returning
 * a DataSplit; these helpers cover the common case of CSV files whose
 * last column is the integer class label.
 */
#pragma once

#include <functional>
#include <string>

#include "ml/dataset.hpp"

namespace homunculus::data {

/** The loader signature the Alchemy frontend accepts. */
using DataLoaderFn = std::function<ml::DataSplit()>;

/**
 * Parse a Dataset from an in-memory CSV table. The last column holds the
 * class label; remaining columns are features.
 */
ml::Dataset datasetFromCsv(const std::string &csv_content, bool has_header);

/** Read a labeled dataset from a CSV file (last column = label). */
ml::Dataset datasetFromCsvFile(const std::string &path, bool has_header);

/** Serialize a dataset to CSV text (features then label column). */
std::string datasetToCsv(const ml::Dataset &data);

/** Write a dataset to a CSV file. */
void datasetToCsvFile(const std::string &path, const ml::Dataset &data);

/**
 * Build a DataLoaderFn over train/test CSV files, mirroring the paper's
 * Figure 3 example (train_ad.csv / test_ad.csv).
 */
DataLoaderFn csvLoader(const std::string &train_path,
                       const std::string &test_path, bool has_header);

}  // namespace homunculus::data
