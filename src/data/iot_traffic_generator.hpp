/**
 * @file
 * Synthetic IoT traffic-classification dataset (IIsy-style).
 *
 * Substitution (see DESIGN.md): the paper's TC application identifies IoT
 * device types from packet-header features in datacenter traces. We
 * synthesize 5 device archetypes (camera, sensor, speaker, hub, thermostat)
 * over 7 header-derived features: packet size, IPv4 TTL, protocol number,
 * source port bucket, destination port bucket, TOS/DSCP, payload entropy
 * proxy. Device classes are separable but overlapping, which is what the
 * clustering (Figure 7) and DNN-TC (Table 2) experiments require.
 */
#pragma once

#include <cstdint>

#include "ml/dataset.hpp"

namespace homunculus::data {

/** Knobs for the IoT traffic generator. */
struct IotTrafficConfig
{
    std::size_t numSamples = 5000;
    int numDeviceClasses = 5;   ///< up to 5 archetypes.
    double noiseLevel = 0.6;    ///< class overlap control.
    std::uint64_t seed = 77;
};

/** Generate the multi-class IoT device dataset. */
ml::Dataset generateIotTrafficDataset(const IotTrafficConfig &config);

/** Generated, split, and standardized in one call. */
ml::DataSplit generateIotTrafficSplit(const IotTrafficConfig &config,
                                      double test_fraction = 0.3);

}  // namespace homunculus::data
