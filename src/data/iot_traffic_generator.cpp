#include "data/iot_traffic_generator.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "ml/preprocess.hpp"

namespace homunculus::data {

namespace {

constexpr std::size_t kNumTcFeatures = 7;

/** Mean feature profile per device archetype. */
struct DeviceProfile
{
    const char *name;
    double pktSize, ttl, proto, srcPort, dstPort, tos, entropy;
};

// Archetypes: cameras stream large UDP packets; sensors send tiny
// telemetry; speakers mid-size TCP; hubs mixed control traffic;
// thermostats sparse small TCP reports.
constexpr DeviceProfile kProfiles[] = {
    {"camera",      1080.0, 62.0, 17.0, 4.2, 5.6, 0.30, 0.90},
    {"sensor",       96.0,  64.0, 17.0, 2.0, 1.3, 0.05, 0.35},
    {"speaker",     620.0,  58.0,  6.0, 3.1, 4.4, 0.55, 0.75},
    {"hub",         340.0,  60.0,  6.0, 5.0, 2.8, 0.40, 0.55},
    {"thermostat",  150.0,  63.0,  6.0, 1.4, 2.1, 0.10, 0.25},
};

}  // namespace

ml::Dataset
generateIotTrafficDataset(const IotTrafficConfig &config)
{
    if (config.numDeviceClasses < 2 ||
        config.numDeviceClasses > static_cast<int>(std::size(kProfiles))) {
        throw std::runtime_error("iot generator: classes must be in [2, 5]");
    }
    common::Rng rng(config.seed);
    ml::Dataset out;
    out.numClasses = config.numDeviceClasses;
    out.featureNames = {"pkt_size", "ipv4_ttl", "ip_proto", "src_port_bkt",
                        "dst_port_bkt", "tos_dscp", "payload_entropy"};
    out.x = math::Matrix(config.numSamples, kNumTcFeatures);
    out.y.resize(config.numSamples);

    double n = config.noiseLevel;
    for (std::size_t i = 0; i < config.numSamples; ++i) {
        int label = static_cast<int>(
            rng.uniformInt(0, config.numDeviceClasses - 1));
        const DeviceProfile &p = kProfiles[static_cast<std::size_t>(label)];
        out.x(i, 0) = std::max(40.0, rng.gaussian(p.pktSize,
                                                  120.0 * (0.5 + n)));
        out.x(i, 1) = std::clamp(rng.gaussian(p.ttl, 3.0 * (0.5 + n)),
                                 1.0, 255.0);
        // Protocol flips between the archetype's native protocol and the
        // other one with noise-dependent probability.
        double flip = 0.05 + 0.15 * n;
        double proto = rng.bernoulli(flip) ? (p.proto == 6.0 ? 17.0 : 6.0)
                                           : p.proto;
        out.x(i, 2) = proto;
        out.x(i, 3) = std::max(0.0, rng.gaussian(p.srcPort, 1.0 * (0.5 + n)));
        out.x(i, 4) = std::max(0.0, rng.gaussian(p.dstPort, 1.0 * (0.5 + n)));
        out.x(i, 5) = std::clamp(rng.gaussian(p.tos, 0.15 * (0.5 + n)),
                                 0.0, 1.0);
        out.x(i, 6) = std::clamp(rng.gaussian(p.entropy, 0.18 * (0.5 + n)),
                                 0.0, 1.0);
        out.y[i] = label;
    }
    return out;
}

ml::DataSplit
generateIotTrafficSplit(const IotTrafficConfig &config, double test_fraction)
{
    ml::Dataset full = generateIotTrafficDataset(config);
    ml::DataSplit split = ml::stratifiedSplit(full, test_fraction,
                                              config.seed ^ 0x5678ull);
    return ml::standardizeSplit(split);
}

}  // namespace homunculus::data
