#include "data/flowmarker.hpp"

#include <algorithm>
#include <stdexcept>

namespace homunculus::data {

FlowMarkerConfig
flowLensOriginalConfig()
{
    FlowMarkerConfig config;
    config.plBins = 94;
    config.plBinWidth = 16.0;
    config.iptBins = 57;
    config.iptBinWidthSec = 64.0;
    return config;
}

FlowMarkerConfig
homunculusCompressedConfig()
{
    return {};  // defaults are the 23 + 7 scheme.
}

std::vector<double>
computeFlowMarker(const Flow &flow, const FlowMarkerConfig &config,
                  std::size_t max_packets)
{
    std::vector<double> marker(config.totalBins(), 0.0);
    std::size_t count = flow.packets.size();
    if (max_packets > 0)
        count = std::min(count, max_packets);

    for (std::size_t i = 0; i < count; ++i) {
        const Packet &pkt = flow.packets[i];
        auto pl_bin = static_cast<std::size_t>(pkt.sizeBytes /
                                               config.plBinWidth);
        pl_bin = std::min(pl_bin, config.plBins - 1);
        marker[pl_bin] += 1.0;

        if (i > 0) {
            double gap = pkt.timestampSec -
                         flow.packets[i - 1].timestampSec;
            auto ipt_bin = static_cast<std::size_t>(
                std::max(0.0, gap) / config.iptBinWidthSec);
            ipt_bin = std::min(ipt_bin, config.iptBins - 1);
            marker[config.plBins + ipt_bin] += 1.0;
        }
    }
    return marker;
}

namespace {

std::vector<std::string>
markerFeatureNames(const FlowMarkerConfig &config)
{
    std::vector<std::string> names;
    for (std::size_t b = 0; b < config.plBins; ++b)
        names.push_back("pl_bin_" + std::to_string(b));
    for (std::size_t b = 0; b < config.iptBins; ++b)
        names.push_back("ipt_bin_" + std::to_string(b));
    return names;
}

}  // namespace

ml::Dataset
buildFlowLevelDataset(const std::vector<Flow> &flows,
                      const FlowMarkerConfig &config)
{
    if (flows.empty())
        throw std::runtime_error("flowmarker: no flows");
    ml::Dataset out;
    out.numClasses = 2;
    out.featureNames = markerFeatureNames(config);
    out.x = math::Matrix(flows.size(), config.totalBins());
    out.y.resize(flows.size());
    for (std::size_t i = 0; i < flows.size(); ++i) {
        std::vector<double> marker = computeFlowMarker(flows[i], config);
        for (std::size_t c = 0; c < marker.size(); ++c)
            out.x(i, c) = marker[c];
        out.y[i] = flows[i].botnet ? 1 : 0;
    }
    return out;
}

ml::Dataset
buildPerPacketDataset(const std::vector<Flow> &flows,
                      const FlowMarkerConfig &config, std::size_t stride)
{
    if (flows.empty())
        throw std::runtime_error("flowmarker: no flows");
    if (stride == 0)
        stride = 1;

    std::vector<std::vector<double>> rows;
    std::vector<int> labels;
    for (const Flow &flow : flows) {
        for (std::size_t k = 1; k <= flow.packets.size(); k += stride) {
            rows.push_back(computeFlowMarker(flow, config, k));
            labels.push_back(flow.botnet ? 1 : 0);
        }
    }

    ml::Dataset out;
    out.numClasses = 2;
    out.featureNames = markerFeatureNames(config);
    out.x = math::Matrix::fromRows(rows);
    out.y = std::move(labels);
    return out;
}

ClassHistograms
averageClassHistograms(const std::vector<Flow> &flows,
                       const FlowMarkerConfig &config)
{
    ClassHistograms out;
    out.benignPl.assign(config.plBins, 0.0);
    out.botnetPl.assign(config.plBins, 0.0);
    out.benignIpt.assign(config.iptBins, 0.0);
    out.botnetIpt.assign(config.iptBins, 0.0);

    std::size_t benign_count = 0, botnet_count = 0;
    for (const Flow &flow : flows) {
        std::vector<double> marker = computeFlowMarker(flow, config);
        auto &pl = flow.botnet ? out.botnetPl : out.benignPl;
        auto &ipt = flow.botnet ? out.botnetIpt : out.benignIpt;
        for (std::size_t b = 0; b < config.plBins; ++b)
            pl[b] += marker[b];
        for (std::size_t b = 0; b < config.iptBins; ++b)
            ipt[b] += marker[config.plBins + b];
        (flow.botnet ? botnet_count : benign_count) += 1;
    }

    auto normalize = [](std::vector<double> &values, std::size_t count) {
        if (count == 0)
            return;
        for (double &v : values)
            v /= static_cast<double>(count);
    };
    normalize(out.benignPl, benign_count);
    normalize(out.botnetPl, botnet_count);
    normalize(out.benignIpt, benign_count);
    normalize(out.botnetIpt, botnet_count);
    return out;
}

}  // namespace homunculus::data
