#include "data/p2p_traces.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace homunculus::data {

namespace {

/** Botnet C&C: periodic keep-alives with ±25% jitter over the window. */
Flow
generateBotnetFlow(const P2pTraceConfig &config, common::Rng &rng)
{
    Flow flow;
    flow.botnet = true;
    double t = rng.uniform(0.0, config.botnetMeanGapSec);
    while (t < config.observationWindowSec) {
        Packet pkt;
        pkt.timestampSec = t;
        pkt.sizeBytes = std::clamp(
            rng.gaussian(config.botnetPacketMean, config.botnetPacketStddev),
            40.0, 1500.0);
        flow.packets.push_back(pkt);
        double jitter = rng.uniform(0.6, 1.4);
        double gap = config.botnetMeanGapSec * jitter;
        // Dormant periods stretch the inter-arrival tail across several
        // 512 s histogram bins (Figure 6's IPT divergence).
        if (rng.bernoulli(config.botnetDormancyProb))
            gap *= rng.uniform(2.0, 6.0);
        t += gap;
        // Occasional command burst: 2-4 packets back-to-back.
        if (rng.bernoulli(0.08)) {
            auto burst = static_cast<std::size_t>(rng.uniformInt(2, 4));
            for (std::size_t b = 0; b < burst &&
                                    t < config.observationWindowSec;
                 ++b) {
                Packet extra;
                extra.timestampSec = t;
                extra.sizeBytes = std::clamp(
                    rng.gaussian(config.botnetPacketMean * 1.5,
                                 config.botnetPacketStddev),
                    40.0, 1500.0);
                flow.packets.push_back(extra);
                t += rng.uniform(0.1, 2.0);
            }
        }
    }
    return flow;
}

/** Benign P2P: Poisson bursts of heavy-tailed (Pareto) packet sizes. */
Flow
generateBenignFlow(const P2pTraceConfig &config, common::Rng &rng)
{
    Flow flow;
    flow.botnet = false;
    double duration = std::min(
        config.observationWindowSec,
        rng.exponential(1.0 / config.benignMeanDurationSec));
    // Ensure even short benign flows carry a handful of packets.
    duration = std::max(duration, 30.0);

    double t = rng.uniform(0.0, 5.0);
    while (t < duration) {
        auto burst_len = static_cast<std::size_t>(std::max<std::int64_t>(
            1, rng.poisson(config.benignMeanBurstLen)));
        for (std::size_t b = 0; b < burst_len && t < duration; ++b) {
            Packet pkt;
            pkt.timestampSec = t;
            pkt.sizeBytes = std::clamp(
                rng.pareto(120.0, config.benignParetoShape), 40.0, 1500.0);
            flow.packets.push_back(pkt);
            t += rng.exponential(50.0);  // intra-burst: ~20 ms gaps.
        }
        t += rng.exponential(config.benignBurstRatePerSec);
    }
    if (flow.packets.empty()) {
        Packet pkt;
        pkt.timestampSec = 0.0;
        pkt.sizeBytes = 120.0;
        flow.packets.push_back(pkt);
    }
    return flow;
}

}  // namespace

std::vector<Flow>
generateP2pFlows(const P2pTraceConfig &config)
{
    common::Rng rng(config.seed);
    std::vector<Flow> flows;
    flows.reserve(config.numFlows);
    for (std::size_t i = 0; i < config.numFlows; ++i) {
        bool botnet = rng.bernoulli(config.botnetFraction);
        flows.push_back(botnet ? generateBotnetFlow(config, rng)
                               : generateBenignFlow(config, rng));
    }
    return flows;
}

}  // namespace homunculus::data
