/**
 * @file
 * Synthetic P2P packet traces with botnet vs. benign signatures.
 *
 * Substitution (see DESIGN.md): the paper's botnet-detection application
 * uses PeerRush P2P captures (Storm/Waledac botnets vs. uTorrent, Vuze,
 * eMule, FrostWire). Those pcaps are not available offline, so this module
 * synthesizes packet-level flows reproducing the two statistical facts the
 * experiments depend on (paper §5.1.1 and Figure 6):
 *
 *  - Botnet C&C flows are low-volume and high-duration: few, small,
 *    narrowly-sized packets with long, regular inter-arrival gaps.
 *  - Benign P2P flows are bursty and heavy-tailed: many packets spanning
 *    the full MTU range with short inter-arrival times.
 *
 * Consequently the packet-length / inter-arrival histograms of the two
 * classes diverge after only a few packets — the property that makes
 * per-packet partial-histogram inference (reaction time) viable.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace homunculus::data {

/** A single observed packet within a flow. */
struct Packet
{
    double timestampSec = 0.0;  ///< seconds since flow start.
    double sizeBytes = 0.0;     ///< on-wire length.
};

/** A conversation-level flow (src/dst pair, ports ignored as in FlowLens). */
struct Flow
{
    bool botnet = false;
    std::vector<Packet> packets;  ///< sorted by timestamp.

    double durationSec() const
    {
        return packets.empty() ? 0.0 : packets.back().timestampSec;
    }
};

/** Knobs for the P2P trace generator. */
struct P2pTraceConfig
{
    std::size_t numFlows = 600;
    double botnetFraction = 0.5;
    double observationWindowSec = 3600.0;  ///< FlowLens aggregation window.
    std::uint64_t seed = 1337;

    // Botnet C&C behavior: sparse keep-alives with jittered periodicity
    // and occasional long dormancy (gaps span multiple 512 s IPT bins).
    double botnetMeanGapSec = 400.0;
    double botnetDormancyProb = 0.25;   ///< chance of a 2-6x longer gap.
    double botnetPacketMean = 140.0;   ///< bytes; narrow distribution.
    double botnetPacketStddev = 40.0;

    // Benign P2P behavior: bursts of heavy-tailed packets.
    double benignBurstRatePerSec = 0.8;   ///< burst arrival rate.
    double benignMeanBurstLen = 14.0;     ///< packets per burst.
    double benignParetoShape = 1.3;       ///< packet-size tail index.
    double benignMeanDurationSec = 700.0; ///< flows end well before window.
};

/** Generate a deterministic set of labeled flows. */
std::vector<Flow> generateP2pFlows(const P2pTraceConfig &config);

}  // namespace homunculus::data
