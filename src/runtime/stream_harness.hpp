/**
 * @file
 * StreamHarness: trace-replay serving loop over the inference engine.
 *
 * The software twin of the deployed line-rate path, built for throughput
 * measurement rather than per-packet stepping (core::PipelineHarness):
 * a packet trace is replayed through net::FeatureExtractor into
 * fixed-size micro-batches, and extraction is pipelined against
 * inference with two buffers — while the engine classifies batch b, a
 * producer thread parses/extracts/scales batch b+1. Inference itself
 * shards each micro-batch across cores (runtime::InferenceEngine).
 *
 * Reported per replay: rows/s over the whole trace, p50/p99 per-batch
 * inference latency, and extract-vs-infer second splits (the visible
 * pipeline-overlap win). Verdicts come back in trace order and are
 * bit-identical to running the plan over the whole extracted matrix in
 * one call, pipelined or not — end-of-trace drain included (the final
 * partial batch is classified like any other).
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ml/preprocess.hpp"
#include "net/feature_extract.hpp"
#include "runtime/inference_engine.hpp"

namespace homunculus::runtime {

/** Replay knobs. */
struct StreamConfig
{
    /** Rows per micro-batch handed to the engine. */
    std::size_t batchRows = 1024;
    /** Overlap extraction with inference (double-buffered). Disable to
     *  run strictly sequentially (same verdicts; used by tests). */
    bool pipelined = true;
};

/** Everything one replay produced. */
struct StreamStats
{
    std::size_t packetsOffered = 0;
    std::size_t packetsParsed = 0;   ///< malformed wire frames drop.
    std::size_t rowsClassified = 0;  ///< == packetsParsed after drain.
    std::size_t batches = 0;         ///< micro-batches incl. final partial.
    std::vector<int> verdicts;       ///< one per parsed packet, in order.

    double wallSeconds = 0.0;        ///< extract + infer critical path.
    double extractSeconds = 0.0;     ///< producer-side work (summed).
    double inferSeconds = 0.0;       ///< engine-side work (summed).
    double rowsPerSec = 0.0;         ///< rowsClassified / wallSeconds.
    double p50BatchLatencyUs = 0.0;  ///< per-batch inference latency.
    double p99BatchLatencyUs = 0.0;
};

/** Bind extractor + scaler + engine once, then replay traces. */
class StreamHarness
{
  public:
    /**
     * @param engine compiled model + execution policy (jobs width)
     * @param extractor packet feature extractor; its feature count must
     *        equal the engine plan's inputDim
     * @param scaler optional fitted feature scaler (the one used in
     *        training); nullopt replays raw features
     */
    StreamHarness(InferenceEngine engine, net::FeatureExtractor extractor,
                  std::optional<ml::StandardScaler> scaler = std::nullopt,
                  StreamConfig config = {});

    /** Replay parsed packets. */
    StreamStats replay(const std::vector<net::RawPacket> &packets) const;

    /** Replay wire-format frames (malformed frames are dropped). */
    StreamStats replayWire(
        const std::vector<std::vector<std::uint8_t>> &frames) const;

    const InferenceEngine &engine() const { return engine_; }
    const StreamConfig &config() const { return config_; }

  private:
    StreamStats replayParsed(const std::vector<net::RawPacket> &packets,
                             std::size_t offered) const;

    InferenceEngine engine_;
    net::FeatureExtractor extractor_;
    std::optional<ml::StandardScaler> scaler_;
    StreamConfig config_;
};

}  // namespace homunculus::runtime
