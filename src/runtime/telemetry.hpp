/**
 * @file
 * Unified telemetry: one metric registry behind every stats struct.
 *
 * Every layer of the serving plane (queue, server, router, model
 * registry, fault injector, engine, shards) used to keep bespoke
 * counters and latency reservoirs and hand-roll its own merge
 * arithmetic. This header extracts that machinery once:
 *
 *  - Counter    — monotonically increasing, relaxed-atomic add.
 *  - Gauge      — settable signed level (queue depth, active version).
 *  - Histogram  — the bounded uniform reservoir (Vitter Algorithm R)
 *                 extracted from the server's latency tracking, with
 *                 nearest-rank percentiles over the retained sample.
 *
 * Instruments live in a MetricRegistry addressed by name plus a label
 * set ("queue.accepted" {lane=2}, "engine.rows" {target=avx2}). The
 * registry resolves an instrument once under a mutex and hands back a
 * stable pointer; hot-path updates after that are lock-free for
 * counters/gauges and per-instrument-mutex for histograms — no shared
 * lock is ever taken on the serving fast path. snapshot() captures a
 * consistent view, and MetricsSnapshot::merge implements the one true
 * cross-shard merge (counters sum, gauges sum, reservoirs concatenate)
 * that ShardedServer::stop and the stats exporter both use.
 *
 * The legacy public structs (QueueCounters, ServerStats, LaneStats,
 * BreakerSnapshot, ...) survive as thin views materialized from these
 * instruments, bit-identical to their pre-refactor values.
 *
 * Request-lifecycle spans ride alongside: an opt-in TraceSink records
 * one fixed-size RequestSpan per finished request (ticket, lane,
 * enqueue/flush timestamps, model hops, retries, outcome, latency)
 * into a preallocated ring — zero allocation at steady state. homc
 * exports both via --serve-stats-json / --serve-stats-every.
 */
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace homunculus::runtime::telemetry {

/** One label dimension of an instrument, e.g. {"lane", "2"}. */
struct Label
{
    std::string key;
    std::string value;
};

/** A (possibly empty) label set; canonicalized by key internally. */
using Labels = std::vector<Label>;

/** Retained-sample cap of a Histogram reservoir (power of two). */
constexpr std::size_t kHistogramReservoirSize = 65536;

/** Monotonic event count; relaxed-atomic, safe from any thread. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** A settable signed level (depths, active versions); relaxed-atomic. */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Bounded uniform reservoir over a stream of doubles — Vitter's
 * Algorithm R at kHistogramReservoirSize capacity, exactly the policy
 * the server's latency reservoirs used: below capacity every
 * observation is retained (percentiles are exact), above it each new
 * observation replaces a uniformly chosen slot. Guarded by a
 * per-histogram mutex; the serving hot path observes from exactly one
 * batcher thread per histogram, so the lock is uncontended there.
 */
class Histogram
{
  public:
    explicit Histogram(std::uint64_t seed) : rng_(seed) {}

    /** Record one observation. */
    void observe(double value);

    /** Total observations ever recorded (not capped by the reservoir). */
    std::uint64_t count() const;

    /** Copy of the retained sample (<= kHistogramReservoirSize values). */
    std::vector<double> samples() const;

    /** Nearest-rank percentile of the retained sample; 0 when empty. */
    double percentile(double p) const;

  private:
    mutable std::mutex mutex_;
    std::vector<double> samples_;
    std::uint64_t seen_ = 0;
    common::Rng rng_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/**
 * A consistent point-in-time capture of a registry (or a merge of
 * several). Entries are kept sorted by (name, canonical labels) so
 * exports are deterministic.
 */
struct MetricsSnapshot
{
    struct Entry
    {
        std::string name;
        Labels labels;  ///< sorted by key
        MetricKind kind = MetricKind::kCounter;
        std::uint64_t count = 0;  ///< counter value, or histogram count
        std::int64_t gauge = 0;
        std::vector<double> samples;  ///< histogram reservoir contents

        /** Nearest-rank percentile of samples; 0 when empty. */
        double percentile(double p) const;
    };

    std::vector<Entry> entries;

    /**
     * Fold another snapshot in: matching (name, labels, kind) entries
     * sum their counters/gauges and concatenate reservoir samples;
     * unmatched entries are appended. This is the cross-shard merge.
     */
    MetricsSnapshot &merge(const MetricsSnapshot &other);

    /** Add a label (e.g. shard=0) to every entry; returns *this. */
    MetricsSnapshot &withLabel(const std::string &key,
                               const std::string &value);

    /** Entry with this name + exact label set, or nullptr. */
    const Entry *find(const std::string &name,
                      const Labels &labels = {}) const;

    /** Counter/histogram-count convenience; 0 when absent. */
    std::uint64_t counterValue(const std::string &name,
                               const Labels &labels = {}) const;

    /** Sum of `count` over every entry with this name (any labels). */
    std::uint64_t sumCounters(const std::string &name) const;
};

/**
 * Owns instruments keyed by name + label set. Resolution takes the
 * registry mutex once; the returned references are stable for the
 * registry's lifetime, so callers cache them and update lock-free.
 * Requesting the same (name, labels) with a different kind throws.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    Counter &counter(const std::string &name, const Labels &labels = {});
    Gauge &gauge(const std::string &name, const Labels &labels = {});
    Histogram &histogram(const std::string &name, const Labels &labels = {});

    MetricsSnapshot snapshot() const;

    /**
     * Process-wide registry for layers with no natural owner (engine
     * and kernel counters, global fault-injector fires, model-registry
     * events). Servers and queues get their own registries instead so
     * shards stay independently mergeable.
     */
    static MetricRegistry &global();

  private:
    struct Instrument
    {
        std::string name;
        Labels labels;  ///< sorted by key
        MetricKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Instrument &resolve(const std::string &name, const Labels &labels,
                        MetricKind kind);

    mutable std::mutex mutex_;
    std::map<std::string, Instrument> instruments_;  ///< by canonical key
};

// ------------------------------------------------- request-lifecycle spans

/** Most model hops a span can record (the default chain-depth cap). */
constexpr std::size_t kSpanMaxHops = 4;

enum class SpanOutcome : std::uint8_t { kServed, kFailed, kDropped };

/** Printable name of a span outcome ("served" / "failed" / "dropped"). */
const char *spanOutcomeName(SpanOutcome outcome);

/**
 * One request's journey through the serving plane. Fixed-size: model
 * hops are interned ids into the owning TraceSink's name table, so
 * recording allocates nothing.
 */
struct RequestSpan
{
    std::uint64_t ticket = 0;
    std::uint32_t lane = 0;
    std::int64_t enqueuedAtUs = 0;  ///< microseconds since sink epoch
    std::int64_t flushedAtUs = 0;   ///< completion time, same epoch
    std::array<std::uint16_t, kSpanMaxHops> hops{};  ///< interned model ids
    std::uint8_t hopCount = 0;
    std::uint8_t retries = 0;  ///< bisect depth at which the row resolved
    SpanOutcome outcome = SpanOutcome::kServed;
    double latencyUs = 0.0;
};

/**
 * Opt-in ring buffer of RequestSpans. The ring is preallocated at
 * construction; record() claims a slot with one relaxed fetch_add and
 * writes in place — no locks, no allocation. When more spans arrive
 * than the ring holds, the oldest are overwritten (and a writer that
 * laps another by a full capacity may tear that one slot — the sink is
 * a diagnostic buffer, not an audit log). Model names are interned
 * once at server construction so steady-state recording never touches
 * the name table. snapshot() is meant for a quiesced sink (after
 * Server::stop), where it returns the retained spans oldest-first.
 */
class TraceSink
{
  public:
    explicit TraceSink(std::size_t capacity = 4096);

    /** Register a model name; returns its stable span id. */
    std::uint16_t internModel(const std::string &name);

    /** Name for an interned id ("?" when out of range). */
    const std::string &modelName(std::uint16_t id) const;

    /** Microseconds from the sink's epoch to `t` (for span stamps). */
    std::int64_t
    sinceEpochUs(std::chrono::steady_clock::time_point t) const
    {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   t - epoch_)
            .count();
    }

    /** Record one span (lock-free slot claim + in-place write). */
    void record(const RequestSpan &span);

    /** Total spans ever recorded (may exceed capacity). */
    std::uint64_t
    recorded() const
    {
        return head_.load(std::memory_order_relaxed);
    }

    std::size_t
    capacity() const
    {
        return ring_.size();
    }

    /** Retained spans, oldest-first. Call on a quiesced sink. */
    std::vector<RequestSpan> snapshot() const;

  private:
    std::vector<RequestSpan> ring_;
    std::atomic<std::uint64_t> head_{0};
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex namesMutex_;
    std::vector<std::string> names_;
};

// ----------------------------------------------------------- JSON export

/** Schema id stamped into every --serve-stats-json dump. */
constexpr const char *kServeStatsSchema = "homunculus.serve-stats.v1";

/**
 * Write the machine-readable end-of-run stats dump: the schema id, one
 * record per instrument (counters/gauges carry "value", histograms
 * carry "count"/"p50"/"p99"), and — when `spans` is non-null — the
 * retained request spans with hop ids resolved back to model names.
 * Same key style as the BENCH_*.json records.
 */
void writeServeStatsJson(std::ostream &out, const MetricsSnapshot &snapshot,
                         const TraceSink *spans);

}  // namespace homunculus::runtime::telemetry
