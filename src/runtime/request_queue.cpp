#include "runtime/request_queue.hpp"

#include <algorithm>

namespace homunculus::runtime {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

RequestQueue::RequestQueue(QueuePolicy policy) : policy_(policy)
{
    if (policy_.maxBatch == 0)
        policy_.maxBatch = 1;
}

bool
RequestQueue::push(Request request)
{
    bool notify = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_) {
            ++counters_.rejectedClosed;
            return false;
        }
        if (policy_.maxDepth != 0 && pending_.size() >= policy_.maxDepth) {
            ++counters_.shed;
            return false;
        }
        request.enqueuedAt = Clock::now();
        pending_.push_back(std::move(request));
        ++counters_.accepted;
        // A consumer may be blocked on an empty queue (no deadline to
        // wait for yet) or waiting for the size trigger.
        notify = pending_.size() == 1 ||
                 pending_.size() >= policy_.maxBatch;
    }
    if (notify)
        readyCv_.notify_one();
    return true;
}

RequestBatch
RequestQueue::takeBatchLocked(FlushReason reason)
{
    RequestBatch batch;
    batch.reason = reason;
    std::size_t take = std::min(pending_.size(), policy_.maxBatch);
    batch.requests.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
        batch.requests.push_back(std::move(pending_.front()));
        pending_.pop_front();
    }
    switch (reason) {
      case FlushReason::kSize: ++counters_.sizeFlushes; break;
      case FlushReason::kDeadline: ++counters_.deadlineFlushes; break;
      case FlushReason::kDrain: ++counters_.drainFlushes; break;
    }
    return batch;
}

std::optional<RequestBatch>
RequestQueue::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (pending_.size() >= policy_.maxBatch || closed_) {
            if (pending_.empty())
                return std::nullopt;  // closed and drained.
            return takeBatchLocked(pending_.size() >= policy_.maxBatch
                                       ? FlushReason::kSize
                                       : FlushReason::kDrain);
        }

        if (pending_.empty()) {
            readyCv_.wait(lock);
            continue;
        }

        // Rows pending but below the size trigger: wait out the oldest
        // row's deadline, re-checking whenever new arrivals (or close)
        // signal. A wakeup past the deadline flushes what is pending.
        auto deadline =
            pending_.front().enqueuedAt +
            std::chrono::microseconds(policy_.maxDelayUs);
        if (Clock::now() >= deadline)
            return takeBatchLocked(FlushReason::kDeadline);
        readyCv_.wait_until(lock, deadline);
    }
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    readyCv_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

std::size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.size();
}

QueueCounters
RequestQueue::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

}  // namespace homunculus::runtime
