#include "runtime/request_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace homunculus::runtime {

namespace {

using Clock = std::chrono::steady_clock;

constexpr auto kNoLane = static_cast<std::size_t>(-1);

/** One policy with every delay knob inside the overflow-safe range. */
QueuePolicy
clampPolicy(QueuePolicy policy)
{
    if (policy.maxBatch == 0)
        policy.maxBatch = 1;
    policy.maxDelayUs = std::min(policy.maxDelayUs, kMaxQueueDelayUs);
    policy.dropAfterUs = std::min(policy.dropAfterUs, kMaxQueueDelayUs);
    return policy;
}

}  // namespace

const char *
backpressureModeName(BackpressureMode mode)
{
    switch (mode) {
      case BackpressureMode::kShed: return "shed";
      case BackpressureMode::kBlockWithTimeout: return "block";
      case BackpressureMode::kEarlyDrop: return "early-drop";
    }
    return "?";
}

RequestQueue::RequestQueue(QueuePolicy policy)
    : RequestQueue([&] {
          QueueConfig config;
          config.lanes.push_back(policy);
          return config;
      }())
{
}

RequestQueue::RequestQueue(QueueConfig config) : config_(std::move(config))
{
    if (config_.lanes.empty())
        config_.lanes.push_back(QueuePolicy{});
    for (QueuePolicy &lane : config_.lanes)
        lane = clampPolicy(lane);
    config_.blockTimeoutUs =
        std::min(config_.blockTimeoutUs, kMaxQueueDelayUs);
    lanes_.resize(config_.lanes.size());
}

Admission
RequestQueue::push(Request request, std::size_t lane)
{
    if (lane >= lanes_.size())
        throw std::out_of_range("RequestQueue: lane out of range");
    const QueuePolicy &policy = config_.lanes[lane];
    bool notify = false;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        Lane &state = lanes_[lane];
        if (closed_) {
            ++state.counters.rejectedClosed;
            return Admission::kRejectedClosed;
        }
        if (policy.maxDepth != 0 &&
            state.pending.size() >= policy.maxDepth) {
            if (config_.backpressure !=
                BackpressureMode::kBlockWithTimeout) {
                ++state.counters.shed;
                return Admission::kShed;
            }
            // Wait for a flush to free space in this lane; close()
            // wakes us too, so a shutting-down queue fails fast
            // instead of serving the full timeout.
            auto give_up = Clock::now() + std::chrono::microseconds(
                                              config_.blockTimeoutUs);
            spaceCv_.wait_until(lock, give_up, [&] {
                return closed_ ||
                       state.pending.size() < policy.maxDepth;
            });
            if (closed_) {
                ++state.counters.rejectedClosed;
                return Admission::kRejectedClosed;
            }
            if (state.pending.size() >= policy.maxDepth) {
                ++state.counters.shed;
                ++state.counters.blockTimeouts;
                return Admission::kTimedOut;
            }
        }
        request.enqueuedAt = Clock::now();
        request.lane = lane;
        state.pending.push_back(std::move(request));
        ++state.counters.accepted;
        // A consumer may be blocked on an all-empty queue (no deadline
        // to wait for yet), waiting out another lane's later deadline
        // (this lane's new front may be earlier), or waiting for the
        // size trigger.
        notify = state.pending.size() == 1 ||
                 state.pending.size() >= policy.maxBatch;
    }
    if (notify)
        readyCv_.notify_one();
    return Admission::kAdmitted;
}

std::size_t
RequestQueue::readyLaneLocked(Clock::time_point now,
                              FlushReason &reason) const
{
    for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
        const Lane &state = lanes_[lane];
        if (state.pending.empty())
            continue;
        const QueuePolicy &policy = config_.lanes[lane];
        if (state.pending.size() >= policy.maxBatch) {
            reason = FlushReason::kSize;
            return lane;
        }
        if (now >= state.pending.front().enqueuedAt +
                       std::chrono::microseconds(policy.maxDelayUs)) {
            reason = FlushReason::kDeadline;
            return lane;
        }
    }
    return kNoLane;
}

RequestBatch
RequestQueue::takeBatchLocked(std::size_t lane, FlushReason reason,
                              std::vector<DroppedRow> &dropped)
{
    Lane &state = lanes_[lane];
    const QueuePolicy &policy = config_.lanes[lane];
    RequestBatch batch;
    batch.reason = reason;
    batch.lane = lane;

    if (config_.backpressure == BackpressureMode::kEarlyDrop) {
        // Late rows form a prefix (arrival order = age order): shed
        // them now rather than spending engine capacity on rows that
        // already blew their budget.
        auto now = Clock::now();
        auto cutoff = now - std::chrono::microseconds(
                                policy.effectiveDropAfterUs());
        while (!state.pending.empty() &&
               state.pending.front().enqueuedAt < cutoff) {
            if (config_.onDrop) {
                const Request &front = state.pending.front();
                DroppedRow drop;
                drop.ticket = front.id;
                drop.lane = lane;
                drop.waitedUs = static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        now - front.enqueuedAt)
                        .count());
                dropped.push_back(drop);
            }
            state.pending.pop_front();
            ++state.counters.earlyDropped;
        }
        if (state.pending.empty())
            return batch;  // everything aged out; no flush to count.
    }

    std::size_t take = std::min(state.pending.size(), policy.maxBatch);
    batch.requests.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
        batch.requests.push_back(std::move(state.pending.front()));
        state.pending.pop_front();
    }
    switch (reason) {
      case FlushReason::kSize: ++state.counters.sizeFlushes; break;
      case FlushReason::kDeadline:
        ++state.counters.deadlineFlushes;
        break;
      case FlushReason::kDrain: ++state.counters.drainFlushes; break;
    }
    return batch;
}

void
RequestQueue::fireDropsLocked(std::unique_lock<std::mutex> &lock,
                              std::vector<DroppedRow> &dropped)
{
    if (dropped.empty() || !config_.onDrop)
        return;
    lock.unlock();
    for (const DroppedRow &drop : dropped)
        config_.onDrop(drop.ticket, drop.lane, drop.waitedUs);
    dropped.clear();
    lock.lock();
}

std::optional<RequestBatch>
RequestQueue::pop()
{
    std::vector<DroppedRow> dropped;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (closed_) {
            // Drain: highest-priority non-empty lane, full batches
            // counted as size flushes like before, the rest as drain.
            std::size_t lane = kNoLane;
            for (std::size_t i = 0; i < lanes_.size(); ++i)
                if (!lanes_[i].pending.empty()) {
                    lane = i;
                    break;
                }
            if (lane == kNoLane)
                return std::nullopt;  // closed and drained.
            FlushReason reason =
                lanes_[lane].pending.size() >=
                        config_.lanes[lane].maxBatch
                    ? FlushReason::kSize
                    : FlushReason::kDrain;
            RequestBatch batch = takeBatchLocked(lane, reason, dropped);
            if (batch.requests.empty()) {
                // Every row early-dropped: report (lock released while
                // the callbacks run) and keep draining.
                fireDropsLocked(lock, dropped);
                continue;
            }
            lock.unlock();
            for (const DroppedRow &drop : dropped)
                config_.onDrop(drop.ticket, drop.lane, drop.waitedUs);
            return batch;
        }

        FlushReason reason = FlushReason::kSize;
        auto now = Clock::now();
        if (std::size_t lane = readyLaneLocked(now, reason);
            lane != kNoLane) {
            RequestBatch batch = takeBatchLocked(lane, reason, dropped);
            if (batch.requests.empty()) {
                fireDropsLocked(lock, dropped);
                continue;  // every row early-dropped; look again.
            }
            // Both notifications and drop callbacks happen after
            // dropping the lock: woken producers would otherwise just
            // pile up on a mutex the consumer still holds, and onDrop
            // may legally call back into push().
            lock.unlock();
            if (config_.backpressure ==
                BackpressureMode::kBlockWithTimeout)
                spaceCv_.notify_all();
            for (const DroppedRow &drop : dropped)
                config_.onDrop(drop.ticket, drop.lane, drop.waitedUs);
            return batch;
        }

        // No lane ready: sleep until the earliest pending deadline
        // across all lanes, re-checking whenever new arrivals (or
        // close) signal. A wakeup past a deadline flushes that lane.
        bool any_pending = false;
        Clock::time_point earliest = Clock::time_point::max();
        for (std::size_t i = 0; i < lanes_.size(); ++i) {
            if (lanes_[i].pending.empty())
                continue;
            any_pending = true;
            auto deadline = lanes_[i].pending.front().enqueuedAt +
                            std::chrono::microseconds(
                                config_.lanes[i].maxDelayUs);
            earliest = std::min(earliest, deadline);
        }
        if (!any_pending)
            readyCv_.wait(lock);
        else
            readyCv_.wait_until(lock, earliest);
    }
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    readyCv_.notify_all();
    spaceCv_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

std::size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const Lane &lane : lanes_)
        total += lane.pending.size();
    return total;
}

std::size_t
RequestQueue::depth(std::size_t lane) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lanes_.at(lane).pending.size();
}

QueueCounters
RequestQueue::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    QueueCounters total;
    for (const Lane &lane : lanes_)
        total += lane.counters;
    return total;
}

QueueCounters
RequestQueue::counters(std::size_t lane) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lanes_.at(lane).counters;
}

}  // namespace homunculus::runtime
