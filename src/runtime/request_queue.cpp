#include "runtime/request_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace homunculus::runtime {

namespace {

using Clock = std::chrono::steady_clock;

constexpr auto kNoLane = static_cast<std::size_t>(-1);

/**
 * Ring sizing: a bounded lane gets a ring at least as large as its
 * maxDepth, so the depth tickets — never more than maxDepth
 * outstanding — guarantee an admitted row always finds a free slot and
 * the publish loop cannot spin in steady state. Unbounded lanes (and
 * depths past the cap) fall back to the largest ring and flow-control
 * through the transient-full path instead.
 */
constexpr std::size_t kMinRingCapacity = 64;
constexpr std::size_t kMaxRingCapacity = std::size_t{1} << 16;

std::size_t
ringCapacityFor(const QueuePolicy &policy)
{
    if (policy.maxDepth == 0)
        return kMaxRingCapacity;
    return std::min(std::max(policy.maxDepth, kMinRingCapacity),
                    kMaxRingCapacity);
}

/** One policy with every delay knob inside the overflow-safe range. */
QueuePolicy
clampPolicy(QueuePolicy policy)
{
    if (policy.maxBatch == 0)
        policy.maxBatch = 1;
    policy.maxDelayUs = std::min(policy.maxDelayUs, kMaxQueueDelayUs);
    policy.dropAfterUs = std::min(policy.dropAfterUs, kMaxQueueDelayUs);
    return policy;
}

}  // namespace

const char *
backpressureModeName(BackpressureMode mode)
{
    switch (mode) {
      case BackpressureMode::kShed: return "shed";
      case BackpressureMode::kBlockWithTimeout: return "block";
      case BackpressureMode::kEarlyDrop: return "early-drop";
    }
    return "?";
}

void
RequestQueue::LaneCounters::bind(telemetry::MetricRegistry &registry,
                                 std::size_t lane)
{
    telemetry::Labels labels{{"lane", std::to_string(lane)}};
    accepted = &registry.counter("queue.accepted", labels);
    shed = &registry.counter("queue.shed", labels);
    blockTimeouts = &registry.counter("queue.block_timeouts", labels);
    earlyDropped = &registry.counter("queue.early_dropped", labels);
    rejectedClosed = &registry.counter("queue.rejected_closed", labels);
    sizeFlushes = &registry.counter("queue.size_flushes", labels);
    deadlineFlushes = &registry.counter("queue.deadline_flushes", labels);
    drainFlushes = &registry.counter("queue.drain_flushes", labels);
    agedFlushes = &registry.counter("queue.aged_flushes", labels);
}

QueueCounters
RequestQueue::LaneCounters::snapshot() const
{
    QueueCounters c;
    c.accepted = accepted->value();
    c.shed = shed->value();
    c.blockTimeouts = blockTimeouts->value();
    c.earlyDropped = earlyDropped->value();
    c.rejectedClosed = rejectedClosed->value();
    c.sizeFlushes = sizeFlushes->value();
    c.deadlineFlushes = deadlineFlushes->value();
    c.drainFlushes = drainFlushes->value();
    c.agedFlushes = agedFlushes->value();
    return c;
}

QueueConfig
RequestQueue::normalizeConfig(QueueConfig config)
{
    if (config.lanes.empty())
        config.lanes.push_back(QueuePolicy{});
    for (QueuePolicy &lane : config.lanes)
        lane = clampPolicy(lane);
    config.blockTimeoutUs =
        std::min(config.blockTimeoutUs, kMaxQueueDelayUs);
    config.fairnessAgingUs =
        std::min(config.fairnessAgingUs, kMaxQueueDelayUs);
    return config;
}

RequestQueue::RequestQueue(QueuePolicy policy)
    : RequestQueue([&] {
          QueueConfig config;
          config.lanes.push_back(policy);
          return config;
      }())
{
}

RequestQueue::RequestQueue(QueueConfig config)
    : config_(normalizeConfig(std::move(config))),
      metricsOwned_(config_.metrics != nullptr
                        ? nullptr
                        : std::make_unique<telemetry::MetricRegistry>()),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : metricsOwned_.get()),
      lanes_(config_.lanes.size())
{
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        lanes_[i].ring = std::make_unique<MpscRing<Request>>(
            ringCapacityFor(config_.lanes[i]));
        lanes_[i].counters.bind(*metrics_, i);
    }
}

void
RequestQueue::wakeConsumer()
{
    // Store-buffering handshake with sleepUntilWork(): our ring publish
    // (release store) is ordered before this fence, the consumer's
    // sleeping_ store before its fence — so either we observe
    // sleeping_ == true here and notify, or the consumer's post-flag
    // recheck observes our row and never parks. Both fences are
    // seq_cst; a wakeup cannot be lost.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!sleeping_.load(std::memory_order_relaxed))
        return;
    {
        // Empty critical section: once we saw the flag, the consumer
        // either still holds the mutex (it parks before releasing it —
        // we wait here until it is actually inside wait) or has
        // already woken; either way the notify below lands.
        std::lock_guard<std::mutex> lock(mutex_);
    }
    readyCv_.notify_one();
}

void
RequestQueue::publishAdmitted(std::size_t lane_index, Request request)
{
    Lane &state = lanes_[lane_index];
    request.enqueuedAt = Clock::now();
    request.lane = lane_index;
    // A bounded lane can't fill its ring (capacity >= maxDepth >=
    // outstanding tickets), so this loop runs once on the hot path.
    // Unbounded or over-cap lanes can hit a full lap when producers
    // outrun the consumer — keep the consumer awake and yield until it
    // frees slots; that IS the flow control for those lanes.
    while (!state.ring->tryPush(request)) {
        wakeConsumer();
        std::this_thread::yield();
    }
    state.counters.accepted->add();
    wakeConsumer();
}

Admission
RequestQueue::push(Request request, std::size_t lane)
{
    if (lane >= lanes_.size())
        throw std::out_of_range("RequestQueue: lane out of range");
    Lane &state = lanes_[lane];
    if (closed_.load(std::memory_order_acquire)) {
        state.counters.rejectedClosed->add();
        return Admission::kRejectedClosed;
    }
    const QueuePolicy &policy = config_.lanes[lane];
    if (policy.maxDepth != 0) {
        // The door: take a depth ticket optimistically and hand it
        // back when the lane is over depth. Counting both directions
        // with RMWs keeps shed decisions exact under any interleaving
        // — exactly maxDepth pushes admit into an unconsumed lane no
        // matter how many producers race.
        std::size_t held =
            state.depthTickets.fetch_add(1, std::memory_order_relaxed);
        if (held >= policy.maxDepth) {
            state.depthTickets.fetch_sub(1, std::memory_order_relaxed);
            if (config_.backpressure !=
                BackpressureMode::kBlockWithTimeout) {
                state.counters.shed->add();
                return Admission::kShed;
            }
            return pushBlocking(std::move(request), lane);
        }
    } else {
        state.depthTickets.fetch_add(1, std::memory_order_relaxed);
    }
    publishAdmitted(lane, std::move(request));
    return Admission::kAdmitted;
}

Admission
RequestQueue::pushBlocking(Request request, std::size_t lane_index)
{
    Lane &state = lanes_[lane_index];
    const QueuePolicy &policy = config_.lanes[lane_index];
    auto give_up = Clock::now() +
                   std::chrono::microseconds(config_.blockTimeoutUs);
    BlockedWaiter self;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (closed_.load(std::memory_order_relaxed)) {
            state.counters.rejectedClosed->add();
            return Admission::kRejectedClosed;
        }
        // Register in the FIFO first, retry the door second: the
        // consumer hands freed tickets to registered waiters under
        // this same mutex, so a flush between our lock-free attempt
        // and here either granted us already or left a door ticket
        // the retry sees. (Ungranted waiters imply an empty door —
        // releaseSpace only returns tickets once the FIFO is empty —
        // so the retry can never overtake an earlier waiter.)
        state.waiters.push_back(&self);
        std::size_t held =
            state.depthTickets.fetch_add(1, std::memory_order_relaxed);
        if (held < policy.maxDepth) {
            state.waiters.pop_back();  // still the tail; nobody else
                                       // registered while we hold the
                                       // mutex.
        } else {
            state.depthTickets.fetch_sub(1, std::memory_order_relaxed);
            spaceCv_.wait_until(lock, give_up, [&] {
                return self.granted ||
                       closed_.load(std::memory_order_relaxed);
            });
            // A grant is a transferred ticket and wins over a
            // concurrent close or timeout — the space is already ours.
            if (!self.granted) {
                auto it = std::find(state.waiters.begin(),
                                    state.waiters.end(), &self);
                if (it != state.waiters.end())
                    state.waiters.erase(it);
                if (closed_.load(std::memory_order_relaxed)) {
                    state.counters.rejectedClosed->add();
                    return Admission::kRejectedClosed;
                }
                state.counters.shed->add();
                state.counters.blockTimeouts->add();
                return Admission::kTimedOut;
            }
        }
    }
    publishAdmitted(lane_index, std::move(request));
    return Admission::kAdmitted;
}

void
RequestQueue::releaseSpace(std::size_t lane_index, std::size_t freed)
{
    if (freed == 0)
        return;
    Lane &state = lanes_[lane_index];
    if (config_.backpressure != BackpressureMode::kBlockWithTimeout ||
        config_.lanes[lane_index].maxDepth == 0) {
        state.depthTickets.fetch_sub(freed, std::memory_order_relaxed);
        return;
    }
    // Block mode: freed tickets go to the head of the waiter FIFO
    // first (arrival-order admission — the grant IS the ticket
    // transfer), and only the remainder returns to the lock-free door.
    bool granted_any = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::size_t to_door = freed;
        while (to_door > 0 && !state.waiters.empty()) {
            state.waiters.front()->granted = true;
            state.waiters.pop_front();
            --to_door;
            granted_any = true;
        }
        if (to_door > 0)
            state.depthTickets.fetch_sub(to_door,
                                         std::memory_order_relaxed);
    }
    if (granted_any)
        spaceCv_.notify_all();
}

void
RequestQueue::drainRings()
{
    for (Lane &state : lanes_) {
        Request row;
        while (state.ring->tryPop(row))
            state.staged.push_back(std::move(row));
    }
}

bool
RequestQueue::ringsEmpty() const
{
    for (const Lane &state : lanes_)
        if (state.ring->canPop())
            return false;
    return true;
}

std::size_t
RequestQueue::totalTickets() const
{
    std::size_t total = 0;
    for (const Lane &state : lanes_)
        total += state.depthTickets.load(std::memory_order_relaxed);
    return total;
}

std::size_t
RequestQueue::readyLane(Clock::time_point now, FlushReason &reason,
                        bool &aged) const
{
    std::size_t best = kNoLane;
    FlushReason best_reason = FlushReason::kSize;
    std::size_t aged_lane = kNoLane;
    std::uint64_t aged_overdue = 0;
    for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
        const Lane &state = lanes_[lane];
        if (state.staged.empty())
            continue;
        const QueuePolicy &policy = config_.lanes[lane];
        bool size_ready = state.staged.size() >= policy.maxBatch;
        auto deadline = state.staged.front().enqueuedAt +
                        std::chrono::microseconds(policy.maxDelayUs);
        bool deadline_ready = now >= deadline;
        if (!size_ready && !deadline_ready)
            continue;
        if (best == kNoLane) {
            best = lane;
            best_reason =
                size_ready ? FlushReason::kSize : FlushReason::kDeadline;
        }
        // Fairness aging: a lane overdue past its own deadline by more
        // than the budget may preempt strict priority; the most
        // overdue starving lane wins (ties go to the higher-priority
        // one, scanned first).
        if (config_.fairnessAgingUs > 0 && deadline_ready) {
            auto overdue = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    now - deadline)
                    .count());
            if (overdue > config_.fairnessAgingUs &&
                overdue > aged_overdue) {
                aged_lane = lane;
                aged_overdue = overdue;
            }
        }
    }
    if (aged_lane != kNoLane && aged_lane != best) {
        aged = true;
        reason = FlushReason::kDeadline;
        return aged_lane;
    }
    aged = false;
    reason = best_reason;
    return best;
}

RequestBatch
RequestQueue::takeBatch(std::size_t lane_index, FlushReason reason,
                        bool aged, std::vector<DroppedRow> &dropped)
{
    Lane &state = lanes_[lane_index];
    const QueuePolicy &policy = config_.lanes[lane_index];
    RequestBatch batch;
    batch.reason = reason;
    batch.lane = lane_index;

    std::size_t freed = 0;
    if (config_.backpressure == BackpressureMode::kEarlyDrop) {
        // Late rows form a prefix (ring order tracks stamp order up to
        // the reservation race, and the filter is conservative — it
        // stops at the first fresh-enough row): shed them now rather
        // than spending engine capacity on rows that already blew
        // their budget.
        auto now = Clock::now();
        auto cutoff = now - std::chrono::microseconds(
                                policy.effectiveDropAfterUs());
        while (!state.staged.empty() &&
               state.staged.front().enqueuedAt < cutoff) {
            if (config_.onDrop) {
                const Request &front = state.staged.front();
                DroppedRow drop;
                drop.ticket = front.id;
                drop.lane = lane_index;
                drop.waitedUs = static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        now - front.enqueuedAt)
                        .count());
                dropped.push_back(drop);
            }
            state.staged.pop_front();
            state.counters.earlyDropped->add();
            ++freed;
        }
        if (state.staged.empty()) {
            releaseSpace(lane_index, freed);
            return batch;  // everything aged out; no flush to count.
        }
    }

    std::size_t take = std::min(state.staged.size(), policy.maxBatch);
    batch.requests.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
        batch.requests.push_back(std::move(state.staged.front()));
        state.staged.pop_front();
    }
    freed += take;
    switch (reason) {
      case FlushReason::kSize:
        state.counters.sizeFlushes->add();
        break;
      case FlushReason::kDeadline:
        state.counters.deadlineFlushes->add();
        break;
      case FlushReason::kDrain:
        state.counters.drainFlushes->add();
        break;
    }
    if (aged)
        state.counters.agedFlushes->add();
    releaseSpace(lane_index, freed);
    return batch;
}

void
RequestQueue::fireDrops(std::vector<DroppedRow> &dropped)
{
    if (dropped.empty())
        return;
    if (config_.onDrop)
        for (const DroppedRow &drop : dropped)
            config_.onDrop(drop.ticket, drop.lane, drop.waitedUs);
    dropped.clear();
}

void
RequestQueue::sleepUntilWork(bool any_pending,
                             Clock::time_point earliest)
{
    std::unique_lock<std::mutex> lock(mutex_);
    sleeping_.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Post-flag recheck (the other half of wakeConsumer()'s
    // handshake): anything published before we raised the flag is
    // visible here, so parking is safe only when both checks come up
    // empty.
    if (closed_.load(std::memory_order_relaxed) || !ringsEmpty()) {
        sleeping_.store(false, std::memory_order_relaxed);
        return;
    }
    if (any_pending)
        readyCv_.wait_until(lock, earliest);
    else
        readyCv_.wait(lock);
    sleeping_.store(false, std::memory_order_relaxed);
}

std::optional<RequestBatch>
RequestQueue::pop()
{
    std::vector<DroppedRow> dropped;
    for (;;) {
        bool was_closed = closed_.load(std::memory_order_acquire);
        drainRings();
        if (was_closed) {
            // Drain: highest-priority non-empty lane, full batches
            // counted as size flushes like before, the rest as drain.
            std::size_t lane = kNoLane;
            for (std::size_t i = 0; i < lanes_.size(); ++i)
                if (!lanes_[i].staged.empty()) {
                    lane = i;
                    break;
                }
            if (lane == kNoLane) {
                if (totalTickets() == 0 && ringsEmpty())
                    return std::nullopt;  // closed and drained.
                // An admitted row is still in flight between its door
                // ticket and its ring slot (or a granted waiter has
                // not published yet); it must drain, not vanish.
                std::this_thread::yield();
                continue;
            }
            FlushReason reason =
                lanes_[lane].staged.size() >=
                        config_.lanes[lane].maxBatch
                    ? FlushReason::kSize
                    : FlushReason::kDrain;
            RequestBatch batch =
                takeBatch(lane, reason, false, dropped);
            fireDrops(dropped);
            if (batch.requests.empty())
                continue;  // every row early-dropped; keep draining.
            return batch;
        }

        FlushReason reason = FlushReason::kSize;
        bool aged = false;
        auto now = Clock::now();
        if (std::size_t lane = readyLane(now, reason, aged);
            lane != kNoLane) {
            RequestBatch batch = takeBatch(lane, reason, aged, dropped);
            // Drop callbacks run with no lock held and after the
            // tickets went back — onDrop may legally push().
            fireDrops(dropped);
            if (batch.requests.empty())
                continue;  // every row early-dropped; look again.
            return batch;
        }

        // No lane ready: sleep until the earliest staged deadline (a
        // producer wakes us for anything new — including lanes that
        // reach their size trigger before any deadline).
        bool any_pending = false;
        Clock::time_point earliest = Clock::time_point::max();
        for (std::size_t i = 0; i < lanes_.size(); ++i) {
            if (lanes_[i].staged.empty())
                continue;
            any_pending = true;
            auto deadline = lanes_[i].staged.front().enqueuedAt +
                            std::chrono::microseconds(
                                config_.lanes[i].maxDelayUs);
            earliest = std::min(earliest, deadline);
        }
        sleepUntilWork(any_pending, earliest);
    }
}

void
RequestQueue::close()
{
    closed_.store(true, std::memory_order_seq_cst);
    {
        // Empty critical section: serialize against a consumer (or
        // blocked producer) that checked closed_ and is committing to
        // its wait — the notify below can then never fall into the
        // check-to-wait window.
        std::lock_guard<std::mutex> lock(mutex_);
    }
    readyCv_.notify_all();
    spaceCv_.notify_all();
}

bool
RequestQueue::closed() const
{
    return closed_.load(std::memory_order_acquire);
}

std::size_t
RequestQueue::depth() const
{
    return totalTickets();
}

std::size_t
RequestQueue::depth(std::size_t lane) const
{
    if (lane >= lanes_.size())
        throw std::out_of_range("RequestQueue: lane out of range");
    return lanes_[lane].depthTickets.load(std::memory_order_relaxed);
}

QueueCounters
RequestQueue::counters() const
{
    QueueCounters total;
    for (const Lane &lane : lanes_)
        total += lane.counters.snapshot();
    return total;
}

QueueCounters
RequestQueue::counters(std::size_t lane) const
{
    if (lane >= lanes_.size())
        throw std::out_of_range("RequestQueue: lane out of range");
    return lanes_[lane].counters.snapshot();
}

}  // namespace homunculus::runtime
