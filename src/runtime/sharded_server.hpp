/**
 * @file
 * ShardedServer: N independent Servers behind one front door.
 *
 * One Server is one admission queue and one batcher thread — the
 * lock-free queue keeps its submit path flat under contention, but a
 * single consumer still bounds drain throughput, and the ROADMAP
 * north-star (millions of flows on >16-core boxes) wants the data
 * plane to scale *out*, not just contend less. The scale-out unit here
 * is the whole serving pipeline: each shard owns a private
 * RequestQueue, batcher thread, and engine, so shards share nothing on
 * the hot path (the well-known shared-nothing receive-side-scaling
 * shape: RSS hashes flows to rings, we hash flows to shards).
 *
 * Flow affinity: submissions carry a 64-bit flow key (for packets, the
 * 5-tuple via flowKey()). A consistent-hash ring — virtualNodes points
 * per shard, splitmix64-placed — maps key -> shard, so
 *
 *   - one flow's requests always land on one shard, whose single
 *     batcher serves them in admission order: per-flow verdict order
 *     is preserved without any cross-shard coordination;
 *   - shard counts can change between runs with only ~1/N of flows
 *     remapping (the consistent-hash property), keeping A/B sweeps
 *     comparable.
 *
 * Tickets stay globally unique across shards: shard s issues from
 * ticketBase s << 48 (ShardedServer::shardOfTicket recovers the shard
 * from a ticket), so merged drop/failure reports never collide.
 *
 * stop() stops every shard and merges their ServerStats: counters,
 * lane slices, and model slices are summed field-wise; latency
 * percentiles are recomputed from the concatenated reservoir
 * snapshots (exact whenever no shard overflowed its 64k reservoir —
 * merging two reservoirs by concatenation is sample-count-weighted,
 * which is the right weighting when both are exhaustive). Per-shard
 * stats stay available via shardStats() for per-shard reporting
 * (homc --serve-shards prints both).
 *
 * Verdict/trace/drop/failure callbacks are shared by all shards and
 * run on N batcher threads concurrently — they must be thread-safe
 * (the single-Server contract already required thread-safety against
 * producers; here it is batcher-vs-batcher too).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "runtime/server.hpp"

namespace homunculus::runtime {

/** Bit position of the shard index inside a sharded ticket. */
constexpr std::uint64_t kShardTicketShift = 48;

/** Stable 64-bit flow key of a parsed packet: the 5-tuple
 *  (addresses, ports, protocol), mixed through splitmix64. Frames of
 *  one TCP/UDP flow always map to the same key. */
std::uint64_t flowKey(const net::RawPacket &packet);

/** Scale-out knobs. */
struct ShardedServerConfig
{
    /** Independent Server instances (queue + batcher + engine each).
     *  Clamped to at least 1. */
    std::size_t shards = 2;
    /** Consistent-hash ring points per shard. More points smooth the
     *  key distribution across shards at the cost of a larger (still
     *  binary-searched) ring. */
    std::size_t virtualNodes = 64;
    /** Replicated per shard (ticketBase is overridden per shard to
     *  keep tickets globally unique). */
    ServerConfig server;
};

class ShardedServer
{
  public:
    /**
     * Single-model sharded server: every shard gets a copy of
     * @p engine (same plan, same execution policy — verdicts are
     * bit-identical across shards by the engine's own contract).
     */
    ShardedServer(const InferenceEngine &engine,
                  ShardedServerConfig config,
                  Server::VerdictFn on_verdict = {},
                  std::optional<ml::StandardScaler> scaler =
                      std::nullopt);

    /** Routed sharded server: shards share @p registry (hot swaps hit
     *  every shard) but each runs its own Router over @p route. */
    ShardedServer(std::shared_ptr<ModelRegistry> registry,
                  RouteConfig route, ShardedServerConfig config,
                  Server::VerdictFn on_verdict = {},
                  Server::RouteTraceFn on_trace = {});

    ~ShardedServer();

    ShardedServer(const ShardedServer &) = delete;
    ShardedServer &operator=(const ShardedServer &) = delete;

    /** Admit one feature row for @p flow_key's shard. Same contract
     *  as Server::submit (width check, scaler, lane). */
    SubmitResult submit(std::uint64_t flow_key,
                        std::vector<double> features,
                        std::size_t lane = 0);

    /** Parse a wire frame, key it by 5-tuple, and admit it on the
     *  owning shard. A malformed frame never reaches a shard: the
     *  front door counts it, issues a ticket from its own namespace
     *  (shard index == shards(), recoverable via shardOfTicket), and
     *  reports it through the shared onFailure sink under that
     *  ticket — same per-ticket contract as Server::submitFrame. */
    SubmitResult submitFrame(const std::vector<std::uint8_t> &frame,
                             std::size_t lane = 0);

    /** Extract + admit an already-parsed packet on its flow's shard. */
    SubmitResult submitPacket(const net::RawPacket &packet,
                              std::size_t lane = 0);

    /** Stop every shard, merge the stats (see file comment).
     *  Idempotent. */
    ServerStats stop();

    /** Per-shard stats, index == shard; valid after stop(). */
    const std::vector<ServerStats> &shardStats() const;

    /**
     * One merged telemetry snapshot of the whole fleet: every shard's
     * registry tagged {shard=N} plus the front door's {shard=front},
     * folded with MetricsSnapshot::merge. Live — callable mid-run (the
     * instruments are atomics) and after stop(). This is what
     * homc --serve-stats-json dumps for sharded runs.
     */
    telemetry::MetricsSnapshot metricsSnapshot() const;

    std::size_t shards() const { return servers_.size(); }
    /** The shard @p flow_key routes to (stable for a fixed config). */
    std::size_t shardFor(std::uint64_t flow_key) const;
    /** Recover the issuing shard from a sharded ticket. */
    static std::size_t shardOfTicket(std::uint64_t ticket)
    {
        return static_cast<std::size_t>(ticket >> kShardTicketShift);
    }

    /** Direct shard access (tests / per-shard introspection). */
    Server &shard(std::size_t index) { return *servers_.at(index); }
    const Server &shard(std::size_t index) const
    {
        return *servers_.at(index);
    }

    /** Rows queued across every shard and lane. */
    std::size_t depth() const;

  private:
    /** One consistent-hash ring point: hash -> owning shard. */
    struct RingPoint
    {
        std::uint64_t hash = 0;
        std::size_t shard = 0;

        bool operator<(const RingPoint &other) const
        {
            return hash < other.hash;
        }
    };

    void buildRing(std::size_t shard_count, std::size_t virtual_nodes);
    /** Bind the front door's instruments + ticket namespace (both
     *  constructors, after servers_ is sized). */
    void initFrontDoor(const ServerConfig &base);

    std::vector<std::unique_ptr<Server>> servers_;
    std::vector<RingPoint> ring_;  ///< sorted; immutable after ctor.

    /** The front door's own registry: events that belong to no shard
     *  (malformed frames rejected at parse, their onFailure callback
     *  errors). Merged into metricsSnapshot() as {shard=front}. */
    telemetry::MetricRegistry frontMetrics_;
    telemetry::Counter *frontMalformed_ = nullptr;
    telemetry::Counter *frontCallbackErrors_ = nullptr;
    /** Tickets for front-door malformed frames: namespace shards()
     *  << kShardTicketShift, disjoint from every shard's. */
    std::atomic<std::uint64_t> frontNextId_{0};
    FailureFn onFailure_;  ///< the shared sink (may be empty).

    std::mutex stopMutex_;  ///< serializes stop() callers.
    bool stopped_ = false;
    ServerStats mergedStats_;              ///< valid once stopped_.
    std::vector<ServerStats> shardStats_;  ///< valid once stopped_.
};

}  // namespace homunculus::runtime
