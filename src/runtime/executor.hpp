/**
 * @file
 * Executor: the process's long-lived worker pool.
 *
 * PR 3 measured ~50 us of thread fan-out per parallel dispatch — paid on
 * every micro-batch the serving path classifies and every candidate the
 * search scores, because common::parallelFor spawned fresh std::threads
 * per call. This executor replaces that with one persistent pool:
 *
 *  - lazy-started: no threads exist until the first dispatch that can
 *    use them, and the pool grows on demand — never beyond its
 *    configured parallelism, so an oversized jobs knob on one call
 *    cannot pin extra threads for the rest of the process;
 *  - resizable: resize() retargets the width and restarts the workers,
 *    shutdown() drops them entirely; either way the next dispatch
 *    transparently respawns;
 *  - stable worker ids: every dispatch hands each participant a slot id
 *    in [0, width) that is stable for the whole dispatch, so callers
 *    keep indexing per-worker scratch arenas exactly as before;
 *  - deterministic failures: every task runs, per-task exceptions are
 *    captured, and the lowest-index one is rethrown after the dispatch
 *    completes — the same contract the spawning pool had, so failure
 *    behavior is independent of scheduling;
 *  - safe nesting: a dispatch issued from inside a pool worker runs
 *    inline on that worker instead of fanning out again, which is what
 *    keeps search-over-inference (family searches scoring candidates on
 *    the same pool) from oversubscribing the machine or deadlocking.
 *
 * The submitting thread always participates in its own dispatch, so a
 * dispatch completes even when every pool worker is busy elsewhere —
 * concurrent submitters share the pool instead of competing spawns.
 *
 * common::parallelFor / parallelForChunks are thin shims over
 * processDefault(), so every existing call site stopped paying per-batch
 * spawn cost without changing. Code that wants an isolated pool (a
 * latency-critical server next to a background search) constructs its
 * own Executor and threads it through EngineOptions / EvalOptions /
 * CompileOptions.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace homunculus::runtime {

/** A long-lived, resizable worker pool. */
class Executor
{
  public:
    /** Task callback: (task index, participant slot in [0, width)). */
    using TaskFn = std::function<void(std::size_t task, std::size_t worker)>;

    /** @param jobs target parallelism (0 = one per hardware thread).
     *  No threads start until the first dispatch needs them. */
    explicit Executor(std::size_t jobs = 0);

    /** Joins every worker; outstanding dispatches must have returned. */
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /**
     * Run fn(0..num_tasks-1) across up to @p width participants
     * (0 = parallelism(); always clamped to parallelism() and
     * num_tasks). The calling thread is participant 0 and works too;
     * pool workers join as participants 1..width-1 as they free up.
     * Blocks until every task completed; rethrows the lowest-index
     * captured exception, if any. With width <= 1, a single task, or
     * when called from inside a pool worker (nested parallelism), the
     * tasks run inline on the caller in index order, same contract.
     */
    void run(std::size_t width, std::size_t num_tasks, const TaskFn &fn);

    /**
     * Chunked variant mirroring common::parallelForChunks: fn receives
     * contiguous [begin, end) slices of [0, count) of up to
     * @p chunk_size indices plus the participant slot.
     */
    void runChunks(std::size_t width, std::size_t count,
                   std::size_t chunk_size, const common::ChunkFn &fn);

    /** The configured target width (the constructor's jobs, resolved). */
    std::size_t parallelism() const;

    /** Resolve a caller-facing jobs knob: 0 -> parallelism(). */
    std::size_t resolve(std::size_t jobs) const
    {
        return jobs != 0 ? jobs : parallelism();
    }

    /**
     * Retarget the pool width (0 = hardware) and restart: current
     * workers drain their in-flight work and exit; the next dispatch
     * lazily respawns at the new width. Blocks until the old workers
     * joined.
     */
    void resize(std::size_t jobs);

    /** Drop every worker (join them); the pool stays usable — the next
     *  dispatch lazily respawns. */
    void shutdown();

    /** Currently live pool threads (excludes submitting threads). */
    std::size_t liveWorkers() const;

    /** True when the calling thread is a pool worker of any Executor.
     *  Dispatches issued here run inline (see class comment). */
    static bool onWorkerThread();

    /** Total pool threads ever spawned, process-wide — the test hook
     *  behind the "zero thread creations per batch after warm-up"
     *  guarantee: repeated dispatches must leave this counter flat. */
    static std::uint64_t threadsSpawned();

    /**
     * The process-default executor shared by common::parallelFor /
     * parallelForChunks and every EngineOptions/EvalOptions/
     * CompileOptions with executor == nullptr. Sized to the hardware;
     * also the single place a jobs value of 0 resolves (hoisted out of
     * the old per-call-site hardware_concurrency lookups).
     */
    static Executor &processDefault();

  private:
    /** One in-flight dispatch; lives on the submitter's stack. */
    struct Job
    {
        const TaskFn *fn = nullptr;
        std::size_t numTasks = 0;
        std::size_t width = 0;           ///< max participants.
        std::atomic<std::size_t> next{0};  ///< task-claim cursor.
        /** Guarded by the pool mutex: slots handed out / still running
         *  (both include the submitter). The submitter may not return —
         *  and the Job may not be destroyed — until active reaches 0. */
        std::size_t participants = 1;
        std::size_t active = 1;
        std::vector<char> failed;          ///< per-task failure flags.
        std::vector<std::string> errors;   ///< per-task messages.
    };

    void workerMain(std::uint64_t epoch);
    void runJobTasks(Job &job, std::size_t slot);
    void ensureWorkersLocked(std::size_t wanted);
    void eraseQueuedLocked(Job *job);

    mutable std::mutex mutex_;
    std::condition_variable workCv_;   ///< workers wait for queued jobs.
    std::condition_variable doneCv_;   ///< submitters wait for active==0.
    std::deque<Job *> queue_;          ///< jobs still accepting helpers.
    std::vector<std::thread> threads_;
    std::size_t target_ = 1;           ///< configured width, resolved.
    std::uint64_t epoch_ = 0;  ///< bumped to retire the current workers.
};

}  // namespace homunculus::runtime
