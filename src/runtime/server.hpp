/**
 * @file
 * Server: asynchronous serving front-end over the inference runtime.
 *
 * The live-traffic counterpart of StreamHarness's trace replay. Callers
 * submit individual rows or wire frames from any thread and get a
 * ticket back immediately; a dedicated batcher thread drains a
 * RequestQueue (size-or-deadline flush, bounded-depth admission — see
 * request_queue.hpp), runs each released batch through the
 * InferenceEngine (which shards it on the shared persistent
 * runtime::Executor), and delivers verdicts through a callback. So the
 * full pipeline is: admission -> batching policy -> one long-lived
 * worker pool — no thread is created per request, per batch, or per
 * dispatch after warm-up.
 *
 * Producer-side work stays on the producer: submitFrame() parses,
 * extracts, and standardizes on the calling thread (the same split
 * StreamHarness uses), so the batcher thread spends its time in the
 * engine. Verdicts are bit-identical to running the same rows through
 * ExecutablePlan in one call — batching never changes labels.
 *
 * stop() closes admissions, drains every admitted row (final partial
 * batch included), joins the batcher, and returns the run's statistics;
 * the destructor stops implicitly.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ml/preprocess.hpp"
#include "net/feature_extract.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/request_queue.hpp"

namespace homunculus::runtime {

/** Serving knobs. */
struct ServerConfig
{
    QueuePolicy queue;
};

/** Everything one serving run produced (valid after stop()). */
struct ServerStats
{
    QueueCounters queue;             ///< admission/flush counters.
    std::size_t rowsServed = 0;      ///< verdicts delivered.
    std::size_t batches = 0;
    std::size_t malformedFrames = 0; ///< submitFrame parse drops.
    double meanBatchRows = 0.0;
    /**
     * Latency percentiles: exact for runs up to the sampling-reservoir
     * capacity (64k batches / 64k requests), uniform-reservoir
     * estimates beyond it — memory stays O(1) no matter how long the
     * server lives.
     */
    double p50BatchLatencyUs = 0.0;  ///< engine time per batch.
    double p99BatchLatencyUs = 0.0;
    double p50RequestLatencyUs = 0.0;  ///< admission -> verdict.
    double p99RequestLatencyUs = 0.0;
    double wallSeconds = 0.0;          ///< construction -> stop().
};

class Server
{
  public:
    /** Verdict delivery, invoked on the batcher thread once per request
     *  after its batch completes. Must be fast and thread-safe. */
    using VerdictFn =
        std::function<void(const Request &request, int verdict)>;

    /**
     * Starts the batcher thread.
     * @param engine compiled model + execution policy (jobs, pool)
     * @param config batching/admission policy
     * @param on_verdict optional verdict sink
     * @param scaler optional fitted feature scaler applied to every
     *        submitted row (the training-time one; see ModelIr scaler
     *        provenance); nullopt serves raw features
     */
    explicit Server(InferenceEngine engine, ServerConfig config = {},
                    VerdictFn on_verdict = {},
                    std::optional<ml::StandardScaler> scaler =
                        std::nullopt);

    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Admit one feature row (extractor-domain values; the scaler, when
     * bound, is applied here on the calling thread). Returns the
     * request ticket, or nullopt when the row was shed by admission
     * control or the server is stopping.
     */
    std::optional<std::uint64_t> submit(std::vector<double> features);

    /** Parse a wire frame and admit it (malformed frames are counted
     *  and dropped). The engine's model must consume the packet
     *  extractor's schema. */
    std::optional<std::uint64_t> submitFrame(
        const std::vector<std::uint8_t> &frame);

    /** Extract + admit an already-parsed packet. */
    std::optional<std::uint64_t> submitPacket(const net::RawPacket &packet);

    /** Close admissions, drain, join, and return the stats. Idempotent
     *  (later calls return the same snapshot). */
    ServerStats stop();

    /** Rows currently queued (admission backlog). */
    std::size_t depth() const { return queue_.depth(); }

    const InferenceEngine &engine() const { return engine_; }
    const ServerConfig &config() const { return config_; }

  private:
    void serveLoop();

    InferenceEngine engine_;
    ServerConfig config_;
    VerdictFn onVerdict_;
    std::optional<ml::StandardScaler> scaler_;
    net::FeatureExtractor extractor_;
    RequestQueue queue_;
    std::thread batcher_;
    std::atomic<std::uint64_t> nextId_{1};
    std::atomic<std::uint64_t> malformed_{0};
    std::chrono::steady_clock::time_point startedAt_;

    /**
     * Bounded uniform reservoir (Vitter's algorithm R): a long-lived
     * server keeps O(1) latency-sample memory instead of one double
     * per request forever. Touched only under statsMutex_.
     */
    struct LatencyReservoir
    {
        std::vector<double> samples;
        std::uint64_t seen = 0;
        void add(double value, common::Rng &rng);
    };

    /** Guards the reservoirs the batcher appends to. */
    mutable std::mutex statsMutex_;
    std::size_t rowsServed_ = 0;
    std::size_t batches_ = 0;
    LatencyReservoir batchLatenciesUs_;
    LatencyReservoir requestLatenciesUs_;
    common::Rng reservoirRng_{0x5E7Eull};

    std::mutex stopMutex_;    ///< serializes stop() callers.
    bool stopped_ = false;
    ServerStats finalStats_;  ///< valid once stopped_.
};

}  // namespace homunculus::runtime
