/**
 * @file
 * Server: asynchronous serving front-end over the inference runtime.
 *
 * The live-traffic counterpart of StreamHarness's trace replay. Callers
 * submit individual rows or wire frames from any thread — into one of
 * N priority lanes — and get a typed SubmitResult back immediately
 * (except in kBlockWithTimeout mode, where a submit to a full lane
 * blocks the calling thread up to blockTimeoutUs waiting for space); a
 * dedicated batcher thread drains a multi-lane RequestQueue (per-lane
 * size-or-deadline flush, strict priority among ready lanes, shed /
 * block-with-timeout / early-drop backpressure — see
 * request_queue.hpp), runs each released batch through the
 * InferenceEngine (which shards it on the shared persistent
 * runtime::Executor), and delivers verdicts through a callback. So the
 * full pipeline is: per-lane admission -> per-lane batching policy ->
 * one long-lived worker pool — no thread is created per request, per
 * batch, or per dispatch after warm-up.
 *
 * Producer-side work stays on the producer: submitFrame() parses,
 * extracts, and standardizes on the calling thread (the same split
 * StreamHarness uses), so the batcher thread spends its time in the
 * engine. Verdicts are bit-identical to running the same rows through
 * ExecutablePlan in one call — batching never changes labels. (In
 * kEarlyDrop mode an admitted row can still be dropped at flush time
 * if it aged past its lane's budget; dropped rows get no verdict and
 * are counted per lane.)
 *
 * stop() closes admissions, drains every admitted row (final partial
 * batches included), joins the batcher, and returns the run's
 * statistics — aggregate and per lane; the destructor stops
 * implicitly.
 *
 * Fault tolerance: the batcher thread is supervised. A throw anywhere
 * in batch execution (engine, router hop, fault injection, a poison
 * row) is caught per batch and — after an optional bisect-retry that
 * splits the batch in half up to retryDepth times to isolate the
 * poison rows — converted into per-request failure notifications
 * (ServerConfig::onFailure) and failedBatches/failedRows counters.
 * User callbacks (onVerdict/onTrace/onDrop/onFailure) are individually
 * guarded: a throwing callback is counted in callbackErrors and never
 * kills the batcher or loses later verdicts. Every admitted request
 * therefore resolves as exactly one of {verdict, failure, drop}.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ml/preprocess.hpp"
#include "net/feature_extract.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/request_queue.hpp"
#include "runtime/router.hpp"
#include "runtime/telemetry.hpp"

namespace homunculus::runtime {

/** Per-request failure sink: the batch carrying this request threw
 *  terminally (past any bisect-retry budget). Runs on the batcher
 *  thread; a throwing sink is counted, not fatal. */
using FailureFn = std::function<void(
    std::uint64_t ticket, std::size_t lane, const std::string &error)>;

/** Serving knobs. */
struct ServerConfig
{
    /** Lane 0 (most urgent) batching/admission policy. A single-lane
     *  kShed config is exactly the PR 4 server. */
    QueuePolicy queue;
    /** Policies for lanes 1..N, in decreasing priority. */
    std::vector<QueuePolicy> extraLanes;
    BackpressureMode backpressure = BackpressureMode::kShed;
    /** kBlockWithTimeout: longest a submit may wait for lane space. */
    std::uint64_t blockTimeoutUs = 10'000;
    /** Optional flush-time drop sink (kEarlyDrop aging a row out) so
     *  producers can retry or degrade instead of reading counters
     *  after the fact. Runs on the batcher thread, lock-free w.r.t.
     *  the queue — see runtime::DropFn. */
    DropFn onDrop;
    /** Optional per-request failure sink (see FailureFn). */
    FailureFn onFailure;
    /** Bisect-retry budget for a failed batch: how many times it may
     *  be split in half before its rows fail. 0 fails the whole batch
     *  on first throw; log2(maxBatch) isolates single poison rows. */
    std::size_t retryDepth = 0;
    /** Lane-fairness aging budget (µs) for the queue: 0 keeps strict
     *  priority; > 0 lets a lane overdue past its own deadline by this
     *  much preempt higher-priority ready lanes. See
     *  QueueConfig::fairnessAgingUs. */
    std::uint64_t fairnessAgingUs = 0;
    /**
     * First ticket value this server issues (tickets count up from
     * here). The default matches the historical "tickets start at 1".
     * ShardedServer hands each shard a disjoint high-bits namespace
     * (shard index << 48) so tickets stay globally unique — and
     * shard-recoverable — after stats merge.
     */
    std::uint64_t ticketBase = 1;
    /** Fault injector consulted at the serving sites ("engine.run",
     *  "queue.flush", "router.hop", "callback.dispatch"). nullptr uses
     *  the process-global injector (HOMUNCULUS_FAULTS) — which is
     *  disarmed, and free, unless the operator armed it. */
    faults::FaultInjector *injector = nullptr;
    /**
     * Registry every instrument of this server lives in — its own, its
     * queue's, and its router's. nullptr (the default) gives the
     * server a private registry, so each shard of a ShardedServer
     * stays independently snapshotable/mergeable. The public stats
     * structs are views materialized from this registry at stop().
     */
    std::shared_ptr<telemetry::MetricRegistry> metrics;
    /**
     * Opt-in request-lifecycle span sink (see telemetry::TraceSink).
     * Non-owning; must outlive the server. When set, every admitted
     * request records one span — served, failed, or dropped — with its
     * lane, timestamps, routed model hops, and bisect-retry depth.
     */
    telemetry::TraceSink *trace = nullptr;
};

/** How a submit was disposed of. */
enum class SubmitStatus
{
    kAdmitted,        ///< queued; a verdict will follow (or a drain).
    kShed,            ///< admission control rejected it (lane full).
    kTimedOut,        ///< block-with-timeout waited, still no space.
    kRejectedClosed,  ///< the server is stopping.
    kMalformed,       ///< submitFrame could not parse the frame.
};

/**
 * Result of one submit: the outcome, and the ticket when admitted.
 * Parse failure (kMalformed) is distinguishable from admission
 * rejection (kShed/kTimedOut) — they used to collapse into one
 * nullopt, which made overload invisible to frame producers.
 */
struct SubmitResult
{
    SubmitStatus status = SubmitStatus::kShed;
    /** Valid when admitted() — and for kMalformed, where it names the
     *  onFailure notification the parse failure was reported under, so
     *  frame producers can correlate instead of counting anonymously. */
    std::uint64_t ticket = 0;

    bool admitted() const { return status == SubmitStatus::kAdmitted; }
    explicit operator bool() const { return admitted(); }
};

/** Per-lane slice of a serving run (valid after stop()). */
struct LaneStats
{
    QueueCounters queue;             ///< this lane's admission/flushes.
    std::size_t rowsServed = 0;      ///< verdicts delivered from it.
    std::size_t rowsFailed = 0;      ///< failure notifications from it.
    std::size_t batches = 0;
    double p50RequestLatencyUs = 0.0;  ///< admission -> verdict.
    double p99RequestLatencyUs = 0.0;
    /** The lane's request-latency reservoir snapshot (µs) — what the
     *  percentiles above were computed from; ShardedServer concatenates
     *  these across shards to recompute merged percentiles. */
    std::vector<double> requestLatencySamplesUs;
};

/** Per-model slice of a routed serving run (valid after stop();
 *  empty for single-model servers). */
struct ModelStats
{
    std::string name;
    std::uint64_t activeVersion = 0;  ///< at stop() time.
    std::size_t rowsServed = 0;       ///< rows this model executed
                                      ///< (chained rows count per hop).
    std::size_t batches = 0;          ///< model executions (DAG steps).
    double p50StepLatencyUs = 0.0;    ///< engine time per execution.
    double p99StepLatencyUs = 0.0;
    /** Step-latency reservoir snapshot (µs), for cross-shard merging. */
    std::vector<double> stepLatencySamplesUs;
    /** Circuit-breaker slice at stop() time (all-zero / "closed" when
     *  breakers are disabled). */
    std::string breakerState = "closed";
    std::uint64_t breakerOpens = 0;
    std::uint64_t breakerFallbackRows = 0;
};

/** Everything one serving run produced (valid after stop()). */
struct ServerStats
{
    QueueCounters queue;             ///< counters summed over lanes.
    std::size_t rowsServed = 0;      ///< verdicts delivered.
    std::size_t batches = 0;
    std::size_t malformedFrames = 0; ///< submitFrame parse drops.
    double meanBatchRows = 0.0;
    /**
     * Latency percentiles: exact for runs up to the sampling-reservoir
     * capacity (64k batches / 64k requests), uniform-reservoir
     * estimates beyond it — memory stays O(1) no matter how long the
     * server lives. All-zero when the run served nothing.
     */
    double p50BatchLatencyUs = 0.0;  ///< engine time per batch.
    double p99BatchLatencyUs = 0.0;
    double p50RequestLatencyUs = 0.0;  ///< admission -> verdict.
    double p99RequestLatencyUs = 0.0;
    double wallSeconds = 0.0;          ///< construction -> stop().
    /**
     * Fault-tolerance counters. An admitted request resolves exactly
     * once: rowsServed + failedRows + queue.earlyDropped ==
     * queue.accepted after stop().
     */
    std::size_t failedBatches = 0;   ///< terminal batch-slice failures.
    std::size_t failedRows = 0;      ///< requests failed (not served).
    std::size_t retriedBatches = 0;  ///< bisect splits performed.
    std::size_t callbackErrors = 0;  ///< throwing user callbacks caught.
    std::size_t deadlineTruncated = 0;  ///< chain hops skipped (routed).
    std::size_t fallbackRows = 0;    ///< breaker-fallback rows (routed).
    /**
     * Latency reservoir snapshots (µs) the percentiles were computed
     * from. ShardedServer::stop() concatenates them across shards and
     * recomputes — exact whenever no shard overflowed its 64k
     * reservoir (the common case), a shard-sample-weighted estimate
     * beyond that.
     */
    std::vector<double> batchLatencySamplesUs;
    std::vector<double> requestLatencySamplesUs;
    std::vector<LaneStats> lanes;      ///< one entry per lane.
    std::vector<ModelStats> models;    ///< routed servers only.
};

class Server
{
  public:
    /** Verdict delivery, invoked on the batcher thread once per request
     *  after its batch completes (request.lane identifies the lane).
     *  Must be fast and thread-safe. */
    using VerdictFn =
        std::function<void(const Request &request, int verdict)>;

    /** Routed servers only: the full hop-by-hop execution record of a
     *  request (which models, which pinned versions, which labels),
     *  delivered with the verdict on the batcher thread. */
    using RouteTraceFn =
        std::function<void(const Request &request,
                           const RouteTrace &trace)>;

    /**
     * Starts the batcher thread.
     * @param engine compiled model + execution policy (jobs, pool)
     * @param config lane policies + backpressure mode
     * @param on_verdict optional verdict sink
     * @param scaler optional fitted feature scaler applied to every
     *        submitted row (the training-time one; see ModelIr scaler
     *        provenance); nullopt serves raw features
     */
    explicit Server(InferenceEngine engine, ServerConfig config = {},
                    VerdictFn on_verdict = {},
                    std::optional<ml::StandardScaler> scaler =
                        std::nullopt);

    /**
     * Routed (multi-model) server: the batcher thread executes the
     * router's schedule-DAG per batch — lane bindings pick the entry
     * model, chain rules move rows between models — against epochs
     * pinned from @p registry once per batch, so a concurrent
     * registry.swap() never mixes plan versions inside a batch.
     *
     * Submission differences from the single-model form: submit()
     * stores *raw* features (each hop standardizes with its own
     * epoch's artifact scaler inside the router — one shared producer
     * side scaler can't serve models with different training moments),
     * and every routed model must consume one shared input width.
     */
    Server(std::shared_ptr<ModelRegistry> registry, RouteConfig route,
           ServerConfig config = {}, VerdictFn on_verdict = {},
           RouteTraceFn on_trace = {});

    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Admit one feature row (extractor-domain values; the scaler, when
     * bound, is applied here on the calling thread) into @p lane.
     * Throws std::out_of_range for an unknown lane and
     * std::runtime_error for a row of the wrong width.
     */
    SubmitResult submit(std::vector<double> features,
                        std::size_t lane = 0);

    /** Parse a wire frame and admit it. A malformed frame is counted,
     *  assigned a ticket, reported through onFailure under that
     *  ticket, and returned as kMalformed. The engine's model must
     *  consume the packet extractor's schema. */
    SubmitResult submitFrame(const std::vector<std::uint8_t> &frame,
                             std::size_t lane = 0);

    /** Extract + admit an already-parsed packet. */
    SubmitResult submitPacket(const net::RawPacket &packet,
                              std::size_t lane = 0);

    /** Close admissions, drain, join, and return the stats. Idempotent
     *  (later calls return the same snapshot). */
    ServerStats stop();

    /** Rows currently queued across all lanes (admission backlog). */
    std::size_t depth() const { return queue_.depth(); }
    /** Rows currently queued in one lane. */
    std::size_t depth(std::size_t lane) const
    {
        return queue_.depth(lane);
    }
    std::size_t lanes() const { return queue_.lanes(); }

    /** Single-model servers only (routed servers have no single
     *  engine — ask the registry). */
    const InferenceEngine &engine() const { return *engine_; }
    /** Routed servers only; nullptr for the single-model form. */
    const Router *router() const
    {
        return router_ ? &*router_ : nullptr;
    }
    const std::shared_ptr<ModelRegistry> &registry() const
    {
        return registry_;
    }
    const ServerConfig &config() const { return config_; }

    /** The registry holding every instrument of this server (the
     *  config's, or the private one created at construction). Live —
     *  snapshot() works mid-run; the stats structs returned by stop()
     *  are views materialized from it. */
    telemetry::MetricRegistry &metrics() const { return *metrics_; }
    const std::shared_ptr<telemetry::MetricRegistry> &
    metricsHandle() const
    {
        return metrics_;
    }

  private:
    /** The batcher loop's reusable buffers, threaded through the slice
     *  recursion so a bisect-retry allocates nothing new. */
    struct ServeBuffers
    {
        math::Matrix features;
        std::vector<int> labels;
        Router::Scratch scratch;
        std::vector<RouteTrace> traces;
        std::vector<RouteStepStats> steps;
    };

    void serveLoop();
    /**
     * Execute requests [begin, end) of @p batch as one engine batch,
     * supervised: a throw bisects (while depth < retryDepth and the
     * slice splits) or fails the slice. Success records stats and
     * delivers guarded callbacks.
     */
    void runSlice(RequestBatch &batch, std::size_t begin,
                  std::size_t end, std::size_t depth,
                  ServeBuffers &buffers);
    /** Terminal failure of [begin, end): counters + onFailure each
     *  (@p depth is the bisect depth the slice died at, for spans). */
    void failSlice(const RequestBatch &batch, std::size_t begin,
                   std::size_t end, std::size_t depth,
                   const std::string &error);
    /** Record one served slice into the registry instruments (lane +
     *  aggregate; @p steps adds per-model instruments when routed). */
    void servedSliceStats(const RequestBatch &batch, std::size_t begin,
                          std::size_t end,
                          std::chrono::steady_clock::time_point finished,
                          double batch_us,
                          const std::vector<RouteStepStats> *steps,
                          const RouteBatchOutcome &outcome);
    /** Record one span per request of [begin, end) into the trace
     *  sink (no-op when no sink is bound). @p traces supplies routed
     *  hop records, index-aligned with the slice rows. */
    void recordSpans(const RequestBatch &batch, std::size_t begin,
                     std::size_t end,
                     std::chrono::steady_clock::time_point finished,
                     std::size_t depth, telemetry::SpanOutcome outcome,
                     const std::vector<RouteTrace> *traces);
    /** Resolve every aggregate/lane/model instrument in metrics_
     *  (constructor body, before the batcher starts). */
    void bindInstruments();
    /** The queue config, with the user's onDrop wrapped in the
     *  callback guard (and span recording when a sink is bound). */
    QueueConfig makeQueueConfig();

    /** The one model (single-model form) or nothing (routed form —
     *  plans live in registry_ and are pinned per batch). */
    std::optional<InferenceEngine> engine_;
    std::shared_ptr<ModelRegistry> registry_;  ///< routed form only.
    std::optional<Router> router_;             ///< routed form only.
    std::size_t inputDim_ = 0;  ///< submit-side width check.
    ServerConfig config_;
    VerdictFn onVerdict_;
    RouteTraceFn onTrace_;
    std::optional<ml::StandardScaler> scaler_;
    net::FeatureExtractor extractor_;
    /** Fault-injection hook point (never null after construction). */
    faults::FaultInjector *injector_ = nullptr;
    /** The registry behind every stat of this server (the config's or
     *  a private one). Declared before queue_ so makeQueueConfig() can
     *  hand it to the queue's lane counters. */
    std::shared_ptr<telemetry::MetricRegistry> metrics_;
    RequestQueue queue_;
    std::thread batcher_;
    std::atomic<std::uint64_t> nextId_{1};
    std::chrono::steady_clock::time_point startedAt_;

    /**
     * The server's aggregate instruments, resolved once from metrics_
     * by bindInstruments() — the hot path updates through these stable
     * pointers (relaxed-atomic counters, per-histogram-mutex
     * reservoirs) and never takes a shared stats lock. The old
     * statsMutex_-guarded tallies and reservoirs live in the registry
     * now; stop() materializes ServerStats from a snapshot.
     */
    struct Instruments
    {
        telemetry::Counter *rowsServed = nullptr;
        telemetry::Counter *batches = nullptr;
        telemetry::Counter *failedBatches = nullptr;
        telemetry::Counter *failedRows = nullptr;
        telemetry::Counter *retriedBatches = nullptr;
        telemetry::Counter *deadlineTruncated = nullptr;
        telemetry::Counter *fallbackRows = nullptr;
        telemetry::Counter *callbackErrors = nullptr;
        telemetry::Counter *malformedFrames = nullptr;
        telemetry::Histogram *batchLatencyUs = nullptr;
        telemetry::Histogram *requestLatencyUs = nullptr;
    };

    /** Per-lane instruments ("server.lane.*" {lane=N}). */
    struct LaneInstruments
    {
        telemetry::Counter *rowsServed = nullptr;
        telemetry::Counter *rowsFailed = nullptr;
        telemetry::Counter *batches = nullptr;
        telemetry::Histogram *requestLatencyUs = nullptr;
    };

    /** Per-model instruments of a routed run ("server.model.*"
     *  {model=name}), index-aligned with router_->models(). */
    struct ModelInstruments
    {
        telemetry::Counter *rows = nullptr;
        telemetry::Counter *steps = nullptr;  ///< DAG executions.
        telemetry::Histogram *stepLatencyUs = nullptr;
    };

    Instruments ins_;
    std::vector<LaneInstruments> laneIns_;
    std::vector<ModelInstruments> modelIns_;
    /** Span ids of router_->models(), interned into config_.trace at
     *  construction so hop recording is an array write. */
    std::vector<std::uint16_t> spanModelIds_;

    std::mutex stopMutex_;    ///< serializes stop() callers.
    bool stopped_ = false;
    ServerStats finalStats_;  ///< valid once stopped_.
};

}  // namespace homunculus::runtime
