/**
 * @file
 * MpscRing: bounded lock-free multi-producer / single-consumer ring.
 *
 * The admission fast path of runtime::RequestQueue. Under contention
 * the old mutex made every submitting core bounce one lock line (and
 * one deque) across the socket; here a producer's footprint is one CAS
 * on the reservation counter plus a release-store on its own slot, so
 * submit-path cache traffic stays local to the slot being written
 * instead of serializing on a lock.
 *
 * The design is the classic bounded-MPMC sequence-number queue
 * (Vyukov), restricted to one consumer:
 *
 *   - every slot carries an atomic sequence number. A slot whose
 *     seq == position is free for the producer that reserves that
 *     position; seq == position + 1 means "published, poppable";
 *     seq == position + capacity means the consumer freed it for the
 *     next lap.
 *   - producers reserve a position by CAS on head_, write the value
 *     into their private slot, then release-store seq = pos + 1. The
 *     release pairs with the consumer's acquire load of the same seq,
 *     so the value write happens-before the pop that reads it — the
 *     only handoff edge the ring needs (the "Instantaneous Instruction
 *     Execution" memory-model framing: one acquire/release pair per
 *     slot, no global fences on the ring itself).
 *   - the single consumer owns tail_ outright (a plain member, not an
 *     atomic): it acquire-loads the tail slot's seq, moves the value
 *     out, and release-stores seq = pos + capacity.
 *
 * FIFO: positions are handed out by one fetch-style CAS, so pop order
 * is exactly reservation order — a total order over all producers.
 *
 * tryPush deliberately takes an lvalue reference and consumes it only
 * on success: a full ring leaves the caller's value intact so callers
 * can retry (RequestQueue's publish loop) or shed without copies.
 *
 * Capacity is rounded up to a power of two (index masking instead of
 * modulo). One lap of the ring can hold capacity() values; a push into
 * a ring whose next slot has not been freed yet returns false ("full")
 * rather than blocking — flow control lives in the caller.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace homunculus::runtime {

template <typename T>
class MpscRing
{
  public:
    /** @p capacity is rounded up to a power of two, minimum 2. */
    explicit MpscRing(std::size_t capacity)
        : capacity_(roundUpPow2(capacity < 2 ? 2 : capacity)),
          mask_(capacity_ - 1), slots_(new Slot[capacity_])
    {
        for (std::size_t i = 0; i < capacity_; ++i)
            slots_[i].seq.store(i, std::memory_order_relaxed);
    }

    MpscRing(const MpscRing &) = delete;
    MpscRing &operator=(const MpscRing &) = delete;

    /**
     * Reserve a slot and publish @p value into it. Returns false when
     * the ring is full; @p value is moved from only on success. Safe
     * from any number of threads concurrently.
     */
    bool tryPush(T &value)
    {
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Slot &slot = slots_[pos & mask_];
            std::size_t seq = slot.seq.load(std::memory_order_acquire);
            auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos);
            if (dif == 0) {
                // Slot free for this lap; race other producers for it.
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    slot.value = std::move(value);
                    slot.seq.store(pos + 1, std::memory_order_release);
                    return true;
                }
                // CAS refreshed pos; retry against the new position.
            } else if (dif < 0) {
                return false;  // a full lap behind the consumer.
            } else {
                // Another producer took pos; chase the head.
                pos = head_.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Move the oldest published value into @p out. Returns false when
     * nothing is poppable (empty, or the next slot is reserved but not
     * yet published). Single consumer only.
     */
    bool tryPop(T &out)
    {
        Slot &slot = slots_[tail_ & mask_];
        std::size_t seq = slot.seq.load(std::memory_order_acquire);
        if (seq != tail_ + 1)
            return false;
        out = std::move(slot.value);
        slot.seq.store(tail_ + capacity_, std::memory_order_release);
        ++tail_;
        return true;
    }

    /** True when tryPop() would return a value. Consumer side only. */
    bool canPop() const
    {
        const Slot &slot = slots_[tail_ & mask_];
        return slot.seq.load(std::memory_order_acquire) == tail_ + 1;
    }

    std::size_t capacity() const { return capacity_; }

  private:
    struct Slot
    {
        std::atomic<std::size_t> seq{0};
        T value{};
    };

    static std::size_t roundUpPow2(std::size_t v)
    {
        std::size_t p = 1;
        while (p < v)
            p <<= 1;
        return p;
    }

    std::size_t capacity_;
    std::size_t mask_;
    std::unique_ptr<Slot[]> slots_;
    /** Producer reservation counter — the one contended line. */
    alignas(64) std::atomic<std::size_t> head_{0};
    /** Consumer position; plain because exactly one thread pops. */
    alignas(64) std::size_t tail_ = 0;
};

}  // namespace homunculus::runtime
